package flowercdn

import (
	"fmt"
	"strings"

	"flowercdn/internal/metrics"
	"flowercdn/internal/sweep"
)

// SweepCell is one grid point of a sweep: a named Config. The Seed
// field of the config is ignored; the sweep substitutes each seed of
// the seed set in turn.
type SweepCell struct {
	Name   string
	Config Config
}

// SweepCellResult aggregates one cell over every seed: the paper's
// metrics as mean / stddev / 95% CI (Stat), plus the per-seed Results.
type SweepCellResult struct {
	Name       string
	Protocol   Protocol
	Population int
	Seeds      []uint64

	HitRatio       metrics.Stat
	TailHitRatio   metrics.Stat
	MeanLookupMs   metrics.Stat
	MeanTransferMs metrics.Stat
	// MeanHops is the overlay routing cost per routed query (0 for
	// deployments without an overlay).
	MeanHops   metrics.Stat
	Queries    metrics.Stat
	Unresolved metrics.Stat

	// Runs holds the underlying per-seed results, index-aligned with
	// Seeds.
	Runs []*Result
}

// SweepResult is the outcome of a Sweep. Its aggregates depend only on
// the grid and seed set — never on the worker count.
type SweepResult struct {
	Cells     []SweepCellResult
	Workers   int
	TotalRuns int

	inner *sweep.Result
}

// Table renders the sweep as an aligned text table.
func (r *SweepResult) Table() string { return r.inner.Table() }

// CSV renders the sweep as comma-separated values with a header row.
func (r *SweepResult) CSV() string { return r.inner.CSV() }

// SeriesCSV renders every run's per-window hit-ratio/latency series as
// plot-friendly CSV: one row per (cell, seed, window). flowerbench
// -series-csv writes it next to the aggregate CSV.
func (r *SweepResult) SeriesCSV() string { return r.inner.SeriesCSV() }

// Sweep runs every cell under every seed, fanning the independent
// simulations out over at most workers goroutines (workers <= 0 uses
// GOMAXPROCS). Identical cells and seeds produce identical results at
// any worker count.
func Sweep(cells []SweepCell, seeds []uint64, workers int) (*SweepResult, error) {
	spec, err := lowerSpec(cells, seeds, workers)
	if err != nil {
		return nil, err
	}
	res, err := sweep.Run(spec)
	if err != nil {
		return nil, err
	}
	return wrapSweep(res), nil
}

// lowerSpec lowers public sweep cells onto the internal spec — the
// shared front half of Sweep, DistSweepCoordinator and DistSweepWorker
// (which must all lower identically for spec fingerprints to agree).
func lowerSpec(cells []SweepCell, seeds []uint64, workers int) (sweep.Spec, error) {
	spec := sweep.Spec{Seeds: seeds, Workers: workers}
	for _, c := range cells {
		hc, err := c.Config.lower()
		if err != nil {
			return sweep.Spec{}, fmt.Errorf("flowercdn: sweep cell %q: %w", c.Name, err)
		}
		spec.Cells = append(spec.Cells, sweep.Cell{Name: c.Name, Config: hc})
	}
	return spec, nil
}

// wrapSweep lifts an internal sweep result onto the public facade.
func wrapSweep(res *sweep.Result) *SweepResult {
	out := &SweepResult{Workers: res.Workers, TotalRuns: res.TotalRuns, inner: res}
	for _, c := range res.Cells {
		cr := SweepCellResult{
			Name:           c.Name,
			Protocol:       Protocol(c.Protocol),
			Population:     c.Population,
			Seeds:          c.Seeds,
			HitRatio:       c.HitRatio,
			TailHitRatio:   c.TailHitRatio,
			MeanLookupMs:   c.MeanLookupMs,
			MeanTransferMs: c.MeanTransferMs,
			MeanHops:       c.MeanHops,
			Queries:        c.Queries,
			Unresolved:     c.Unresolved,
		}
		for _, r := range c.Runs {
			cr.Runs = append(cr.Runs, wrap(r))
		}
		out.Cells = append(out.Cells, cr)
	}
	return out
}

// SeedSet returns n consecutive seeds starting at base — the usual way
// to name a sweep's seed set ("seeds 1..10").
func SeedSet(base uint64, n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}

// Grid expands a cross-product of configuration axes into sweep cells.
// Every axis left nil inherits the base config's value, so a Grid with
// only Protocols set varies just the protocol. Cell names encode only
// the axes that actually vary ("flower/P=3000/m=30").
type Grid struct {
	// Base supplies every parameter the axes don't override.
	Base Config
	// Protocols varies the system under test.
	Protocols []Protocol
	// Populations varies P.
	Populations []int
	// MeanUptimes varies the churn intensity m, in minutes.
	MeanUptimes []int
	// GossipPeriods varies the gossip/keepalive period, in minutes.
	GossipPeriods []int
	// CacheCapacities varies the per-peer store capacity in objects.
	// A 0 entry means unbounded (the cell runs policy "none" — the
	// paper's model); positive entries run the base config's
	// CachePolicy, defaulting to "lru" when the base is unbounded.
	CacheCapacities []int
}

// Cells expands the grid in deterministic order (protocol-major).
func (g Grid) Cells() []SweepCell {
	protos := g.Protocols
	if len(protos) == 0 {
		protos = []Protocol{g.Base.Protocol}
	}
	pops := g.Populations
	if len(pops) == 0 {
		pops = []int{g.Base.Population}
	}
	uptimes := g.MeanUptimes
	if len(uptimes) == 0 {
		uptimes = []int{g.Base.MeanUptimeMinutes}
	}
	gossips := g.GossipPeriods
	if len(gossips) == 0 {
		gossips = []int{g.Base.GossipEveryMinutes}
	}
	caps := g.CacheCapacities
	if len(caps) == 0 {
		caps = []int{g.Base.CacheCapacity}
	}
	var cells []SweepCell
	for _, proto := range protos {
		for _, p := range pops {
			for _, m := range uptimes {
				for _, gp := range gossips {
					for _, cap := range caps {
						cfg := g.Base
						cfg.Protocol = proto
						cfg.Population = p
						cfg.MeanUptimeMinutes = m
						cfg.GossipEveryMinutes = gp
						cfg.CacheCapacity = cap
						if len(g.CacheCapacities) > 0 {
							if cap <= 0 {
								// The unbounded reference cell.
								cfg.CachePolicy = "none"
								cfg.CacheCapacity = 0
							} else if cfg.CachePolicy == "" || cfg.CachePolicy == "none" {
								cfg.CachePolicy = "lru"
							}
						}
						var parts []string
						parts = append(parts, string(proto))
						if len(pops) > 1 {
							parts = append(parts, fmt.Sprintf("P=%d", p))
						}
						if len(uptimes) > 1 {
							parts = append(parts, fmt.Sprintf("m=%d", m))
						}
						if len(gossips) > 1 {
							parts = append(parts, fmt.Sprintf("g=%d", gp))
						}
						if len(caps) > 1 {
							if cap <= 0 {
								parts = append(parts, "cap=inf")
							} else {
								parts = append(parts, fmt.Sprintf("cap=%d", cap))
							}
						}
						cells = append(cells, SweepCell{Name: strings.Join(parts, "/"), Config: cfg})
					}
				}
			}
		}
	}
	return cells
}

// Scenario names a preset workload shape layered on top of a base
// configuration (so quick- and paper-scale bases both work).
type Scenario string

const (
	// ScenarioTable1 is the paper's Table 1 workload, unchanged.
	ScenarioTable1 Scenario = "table1"
	// ScenarioFlashCrowd concentrates the whole query mix on a single
	// hot website queried 3x as often with a sharper popularity curve —
	// the flash-crowd situation PetalUp-CDN's directory splitting
	// targets (Sec. 4).
	ScenarioFlashCrowd Scenario = "flash-crowd"
	// ScenarioLocalitySkew Zipf-concentrates client arrivals into a few
	// localities instead of the paper's uniform spread, stressing the
	// per-locality petal sizing.
	ScenarioLocalitySkew Scenario = "locality-skew"
	// ScenarioCachePressure bounds every peer's store with an LRU
	// policy at a capacity well under the per-site catalog — the first
	// scenario the paper's unbounded storage model cannot express.
	// Combine with the capacity sweep grid to trace the hit-ratio knee
	// as capacity shrinks.
	ScenarioCachePressure Scenario = "cache-pressure"
)

// Scenarios lists the presets.
func Scenarios() []Scenario {
	return []Scenario{ScenarioTable1, ScenarioFlashCrowd, ScenarioLocalitySkew, ScenarioCachePressure}
}

// ApplyScenario overlays a scenario preset on cfg.
func ApplyScenario(cfg Config, s Scenario) (Config, error) {
	switch s {
	case ScenarioTable1, "":
		return cfg, nil
	case ScenarioFlashCrowd:
		// One active site everyone piles onto: interest Zipf-concentrates
		// on site 0 (~60% of peers at skew 2), which is queried 3x as
		// often with a sharper object-popularity curve.
		cfg.ActiveSites = 1
		cfg.InterestSkew = 2.0
		cfg.QueryEveryMinutes = 2
		cfg.ZipfAlpha = 1.2
		return cfg, nil
	case ScenarioLocalitySkew:
		cfg.LocalitySkew = 1.2
		return cfg, nil
	case ScenarioCachePressure:
		// LRU at a small fraction of the catalog; a capacity grid
		// overrides the capacity per cell and keeps the policy.
		if cfg.CachePolicy == "" || cfg.CachePolicy == "none" {
			cfg.CachePolicy = "lru"
		}
		if cfg.CacheCapacity <= 0 {
			cfg.CacheCapacity = 16
		}
		return cfg, nil
	default:
		return cfg, fmt.Errorf("flowercdn: unknown scenario %q (have %v)", s, Scenarios())
	}
}
