// Churn robustness: the paper's headline experiment (Fig. 3). Every
// peer fails — never leaves gracefully — after an exponential uptime of
// one hour on average, yet Flower-CDN's hit ratio keeps climbing while
// Squirrel's flattens: petal gossip and push exchanges let a
// replacement directory rebuild the index that Squirrel loses forever
// with each failed home node.
package main

import (
	"fmt"
	"log"

	"flowercdn"
)

func main() {
	cfg := flowercdn.QuickConfig()
	cfg.Seed = 7
	// Crank churn even harder than Table 1: mean uptime 45 minutes.
	cfg.MeanUptimeMinutes = 45

	fmt.Printf("comparing under churn (mean uptime %d min, fail-only)...\n\n", cfg.MeanUptimeMinutes)
	flower, squirrel, err := flowercdn.RunComparison(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(flowercdn.FormatFig3(flower, squirrel))
	fmt.Println()
	fmt.Print(flowercdn.FormatFig4(flower, squirrel))
	fmt.Println()
	fmt.Print(flowercdn.FormatFig5(flower, squirrel))
	fmt.Println()

	gain := 0.0
	if squirrel.TailHitRatio > 0 {
		gain = (flower.TailHitRatio/squirrel.TailHitRatio - 1) * 100
	}
	fmt.Printf("Flower-CDN hit-ratio improvement under churn: %+.0f%%\n", gain)
	if flower.MeanLookupMs > 0 {
		fmt.Printf("lookup speed-up: x%.1f\n", squirrel.MeanLookupMs/flower.MeanLookupMs)
	}
}
