// Scalability: the paper's Table 2. Flower-CDN "leverages larger
// scales to achieve higher improvements" — bigger populations mean
// denser petals, wider gossip reach and more content peers per
// directory index, so hit ratio rises and lookup/transfer latencies
// fall as P grows, while Squirrel's DHT paths only get longer.
package main

import (
	"fmt"
	"log"

	"flowercdn"
)

func main() {
	cfg := flowercdn.QuickConfig()
	cfg.Seed = 3
	cfg.Hours = 6

	populations := []int{200, 300, 400, 500}
	fmt.Printf("sweeping P over %v (%d h each, both protocols)...\n\n", populations, cfg.Hours)

	rows, err := flowercdn.RunScalability(cfg, populations)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(flowercdn.FormatTable2(rows))

	fmt.Println("\nper-P improvement factors (Squirrel / Flower):")
	for _, r := range rows {
		if r.Flower.MeanLookupMs == 0 || r.Flower.MeanTransferMs == 0 {
			continue
		}
		fmt.Printf("  P=%-5d lookup x%.1f   transfer x%.2f   hit %+.0f%%\n",
			r.Population,
			r.Squirrel.MeanLookupMs/r.Flower.MeanLookupMs,
			r.Squirrel.MeanTransferMs/r.Flower.MeanTransferMs,
			(r.Flower.TailHitRatio-r.Squirrel.TailHitRatio)*100)
	}
}
