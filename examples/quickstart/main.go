// Quickstart: run one Flower-CDN simulation at laptop scale and print
// the paper's three metrics — hit ratio, lookup latency and transfer
// distance — plus the hourly hit-ratio series.
package main

import (
	"fmt"
	"log"

	"flowercdn"
)

func main() {
	// QuickConfig preserves the paper's Table 1 proportions at a scale
	// that finishes in a few seconds.
	cfg := flowercdn.QuickConfig()
	cfg.Seed = 42

	res, err := flowercdn.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Flower-CDN with P=%d peers under heavy churn:\n\n", res.Population)
	fmt.Printf("  hit ratio        %.3f (final hours: %.3f)\n", res.HitRatio, res.TailHitRatio)
	fmt.Printf("  lookup latency   %.0f ms mean, %.0f%% within 150 ms\n",
		res.MeanLookupMs, 100*res.LookupWithin150ms)
	fmt.Printf("  transfer distance %.0f ms mean, %.0f%% within 100 ms\n",
		res.MeanTransferMs, 100*res.TransferWithin100ms)
	fmt.Printf("  queries          %d (%d hits, %d misses)\n\n", res.Queries, res.Hits, res.Misses)

	fmt.Println("hour  hit-ratio")
	for _, pt := range res.Series {
		bar := ""
		for i := 0; i < int(pt.HitRatio*40); i++ {
			bar += "#"
		}
		fmt.Printf("%4d  %.3f %s\n", pt.Hour, pt.HitRatio, bar)
	}
}
