// Sweep: run a small protocol-comparison grid under several seeds in
// parallel and print mean ± 95% CI aggregates — the multi-seed version
// of the paper's single-run Fig. 3/Table 2 numbers. The aggregates are
// identical for any worker count; only the wall clock changes.
package main

import (
	"fmt"
	"log"

	"flowercdn"
)

func main() {
	// One cell per protocol, everything else from the quick-scale
	// Table 1 proportions. Grid axes left nil inherit the base config.
	base := flowercdn.QuickConfig()
	base.Population = 200
	base.Hours = 4
	grid := flowercdn.Grid{
		Base:      base,
		Protocols: []flowercdn.Protocol{flowercdn.Flower, flowercdn.PetalUp, flowercdn.Squirrel},
	}

	// Five seeds per cell, fanned out over GOMAXPROCS workers (0).
	res, err := flowercdn.Sweep(grid.Cells(), flowercdn.SeedSet(1, 5), 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Table())
	fmt.Println()

	// Per-cell aggregates carry the full Stat (mean, stddev, CI95,
	// min/max) and the underlying per-seed results.
	for _, c := range res.Cells {
		fmt.Printf("%-10s tail hit ratio %.3f ±%.3f (seeds %d, min %.3f, max %.3f)\n",
			c.Name, c.TailHitRatio.Mean, c.TailHitRatio.CI95,
			c.TailHitRatio.N, c.TailHitRatio.Min, c.TailHitRatio.Max)
	}
}
