// PetalUp flash crowd: a suddenly popular website floods one locality
// with new clients. Classic Flower-CDN funnels every arrival into a
// single directory peer whose view grows without bound; PetalUp-CDN
// (Sec. 4) splits the directory role across successive D-ring
// instances d^0, d^1, ... so no instance's load exceeds the limit.
//
// This example drives the two configurations with the same crowd and
// reports the resulting per-instance directory loads, using the
// experiment machinery in internal/petalup.
package main

import (
	"fmt"
	"log"

	"flowercdn/internal/content"
	"flowercdn/internal/flower"
	"flowercdn/internal/metrics"
	"flowercdn/internal/petalup"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/simrt"
	"flowercdn/internal/topology"
	"flowercdn/internal/workload"
)

type world struct {
	*simrt.Runtime
	sys *flower.System
}

// build assembles a small Flower/PetalUp deployment with a seeded
// D-ring, mirroring what the harness does for full experiments.
func build(seed uint64, cfg flower.Config) (*world, error) {
	rng := rnd.New(seed)
	tcfg := topology.DefaultConfig()
	tcfg.Localities = 2
	topo, err := topology.New(tcfg, rng.Split("topo"))
	if err != nil {
		return nil, err
	}
	rt := simrt.New(topo)
	clock, net := rt.Clock(), rt.Net()
	wcfg := workload.DefaultConfig()
	wcfg.Sites = 2
	wcfg.ActiveSites = 1
	wcfg.ObjectsPerSite = 100
	wcfg.QueryMeanInterval = 2 * runtime.Minute
	work, err := workload.New(wcfg)
	if err != nil {
		return nil, err
	}
	origins := workload.NewOrigins(work, net, rng.Split("origins"))
	cfg.Gossip.Period = 5 * runtime.Minute
	cfg.KeepaliveInterval = 10 * runtime.Minute
	sys, err := flower.NewSystem(cfg, flower.Deps{
		Net: net, RNG: rng.Split("flower"), Workload: work,
		Origins: origins, Metrics: metrics.NewCollector(runtime.Hour),
	})
	if err != nil {
		return nil, err
	}
	for s := 0; s < wcfg.Sites; s++ {
		for l := 0; l < tcfg.Localities; l++ {
			site, loc := content.SiteID(s), topology.Locality(l)
			clock.Schedule(int64(s*tcfg.Localities+l)*200, func() {
				sys.SpawnSeedDirectory(site, loc)
			})
		}
	}
	rt.Run(clock.Now() + 10*runtime.Minute)
	return &world{Runtime: rt, sys: sys}, nil
}

func main() {
	spec := petalup.FlashCrowdSpec{
		Site:       0,
		Loc:        0,
		Arrivals:   60,
		ArrivalGap: 20 * runtime.Second,
		Settle:     90 * runtime.Minute,
	}
	fmt.Printf("flash crowd: %d clients hitting petal(site %d, locality %d)\n\n",
		spec.Arrivals, spec.Site, spec.Loc)

	const limit = 8
	up, err := build(1, petalup.Config(limit))
	if err != nil {
		log.Fatal(err)
	}
	upRep, err := petalup.RunFlashCrowd(up.sys, up, spec)
	if err != nil {
		log.Fatal(err)
	}

	classic, err := build(1, flower.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	clRep, err := petalup.RunFlashCrowd(classic.sys, classic, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("classic Flower-CDN : %s\n", clRep)
	fmt.Printf("PetalUp (limit %2d) : %s\n\n", limit, upRep)
	fmt.Printf("classic max per-directory load grew to %d members;\n", clRep.MaxMembers)
	fmt.Printf("PetalUp split the petal across %d instances, max load %d.\n",
		upRep.Instances, upRep.MaxMembers)
}
