package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"flowercdn/internal/harness"
	"flowercdn/internal/metrics"
	"flowercdn/internal/runtime"
)

// This file is the socket-backend face of flowersim: one process per
// peer group, meshed over TCP.
//
// Direct mode — run each process yourself (any mix of terminals or
// machines sharing a loopback/LAN):
//
//	flowersim -backend socket -listen 127.0.0.1:7001 \
//	    -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -population 50 -horizon 5s
//	flowersim -backend socket -listen 127.0.0.1:7002 -peers ... (same list)
//	flowersim -backend socket -listen 127.0.0.1:7003 -peers ... (same list)
//
// The group index defaults to the position of -listen in -peers; give
// -group to override (e.g. when listening on 0.0.0.0). -groups, when
// set, asserts the expected group count against the peer list.
//
// Convenience mode — fork the whole group locally (demos, CI):
//
//	flowersim -backend socket -spawn-local 3 -population 50 -horizon 5s

// socketFlags collects the direct-mode flag values (spawn-local mode
// is handled in main.go before runSocket is reached).
type socketFlags struct {
	listen   string
	peers    string
	group    int
	groups   int
	codec    string
	traceCSV string
	obsAddr  string
}

// runSocket executes one process of a socket-backend population and
// exits non-zero unless the run completed with live queries answered —
// the contract the socket-smoke CI job enforces.
func runSocket(protocol string, seed uint64, population int, horizon time.Duration, loss float64,
	cachePolicy string, cacheCap int, sf socketFlags) {
	peers := splitPeers(sf.peers)
	if len(peers) == 0 {
		fatal(fmt.Errorf("socket backend needs -peers (or -spawn-local N)"))
	}
	if sf.groups > 0 && sf.groups != len(peers) {
		fatal(fmt.Errorf("-groups %d but -peers lists %d addresses", sf.groups, len(peers)))
	}
	group := sf.group
	if group < 0 { // default: find -listen in the peer list
		for i, p := range peers {
			if p == sf.listen {
				group = i
				break
			}
		}
		if group < 0 {
			fatal(fmt.Errorf("-listen %s not in -peers %s; give -group explicitly", sf.listen, sf.peers))
		}
	}

	cfg := harness.SocketDemoConfig(population, horizon.Milliseconds(), runtime.SocketConfig{
		Listen: sf.listen,
		Peers:  peers,
		Group:  group,
		Codec:  sf.codec,
	})
	cfg.Protocol = harness.Protocol(protocol)
	cfg.Seed = seed
	cfg.MessageLossRate = loss
	if cachePolicy != "" && cachePolicy != "none" {
		cfg.Options["cache-policy"] = cachePolicy
		cfg.Options["cache-capacity"] = cacheCap
	}
	// Tracing is enabled group-wide (followers ship their records home
	// over the bus); the CSV and observability endpoint belong to
	// group 0, where the whole population's records accumulate.
	if sf.traceCSV != "" || sf.obsAddr != "" {
		cfg.Trace = &harness.TraceConfig{}
	}
	if sf.obsAddr != "" && group == 0 {
		stop := startObs(&cfg, sf.obsAddr)
		defer stop()
	}
	cfg.OnWindow = func(p metrics.SeriesPoint) {
		fmt.Printf("[%5.1fs] hit-ratio %.3f  queries %4d  lookup %5.0fms  transfer %4.0fms\n",
			float64(p.Start+cfg.SeriesWindow)/1000, p.HitRatio, p.Queries, p.MeanLookupMs, p.MeanTransferMs)
	}

	fmt.Printf("socket group %d/%d on %s: %s, population %d (group-wide), horizon %v\n",
		group, len(peers), sf.listen, protocol, population, horizon)
	start := time.Now()
	res, err := harness.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("completed in %v wall time (%d events, %d messages sent, %d delivered here)\n",
		time.Since(start).Round(time.Millisecond), res.EventsProcessed,
		res.NetStats.MessagesSent, res.NetStats.MessagesDelivered)
	if w := res.Wire; w != nil {
		perBatch := float64(0)
		if w.BatchesSent > 0 {
			perBatch = float64(w.FramesSent) / float64(w.BatchesSent)
		}
		fmt.Printf("wire: codec=%s, %d frames in %d batches out (%.1f frames/batch), %d bytes out, %d bytes in\n",
			w.Codec, w.FramesSent, w.BatchesSent, perBatch, w.BytesSent, w.BytesRead)
	}
	if sf.traceCSV != "" && group == 0 {
		writeTraceCSV(sf.traceCSV, res.Traces)
	}
	fmt.Print(harness.FormatSummary(res))

	// The smoke contract: this process issued queries and they were
	// answered (served from a peer or the origin — not abandoned).
	if res.Queries == 0 {
		fatal(fmt.Errorf("no live queries issued in group %d", group))
	}
	if res.Hits+res.Misses == 0 {
		fatal(fmt.Errorf("no live query answered in group %d (%d issued)", group, res.Queries))
	}
	fmt.Printf("group %d: clean shutdown, %d/%d queries answered\n",
		group, res.Hits+res.Misses, res.Queries)
}

// spawnLocalGroup forks this binary N times into one localhost
// population and relays the children's output, prefixed by group. It
// exits non-zero if any child does — the single-command entry point
// `make socket-smoke` builds on.
func spawnLocalGroup(n int, passthrough []string) {
	if n < 2 {
		fatal(fmt.Errorf("-spawn-local needs at least 2 processes, got %d", n))
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	addrs, err := reservePorts(n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("spawning %d local processes: %s\n", n, strings.Join(addrs, " "))

	cmds := make([]*exec.Cmd, n)
	var out sync.WaitGroup
	for g := 0; g < n; g++ {
		args := append([]string{
			"-backend", "socket",
			"-listen", addrs[g],
			"-peers", strings.Join(addrs, ","),
			"-group", strconv.Itoa(g),
		}, passthrough...)
		cmd := exec.Command(exe, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		cmd.Stderr = cmd.Stdout // interleave, same prefix
		if err := cmd.Start(); err != nil {
			fatal(fmt.Errorf("spawn group %d: %w", g, err))
		}
		cmds[g] = cmd
		out.Add(1)
		go func(g int, r io.Reader) {
			defer out.Done()
			sc := bufio.NewScanner(r)
			for sc.Scan() {
				fmt.Printf("[g%d] %s\n", g, sc.Text())
			}
		}(g, stdout)
	}

	failed := false
	for g, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "flowersim: group %d failed: %v\n", g, err)
			failed = true
		}
	}
	out.Wait()
	if failed {
		os.Exit(1)
	}
	fmt.Printf("all %d processes completed cleanly\n", n)
}

// reservePorts picks n free localhost ports. The listeners are closed
// before the children bind them — the classic tiny race, harmless on a
// loopback CI box.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = lis
		addrs[i] = lis.Addr().String()
	}
	for _, lis := range listeners {
		lis.Close()
	}
	return addrs, nil
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
