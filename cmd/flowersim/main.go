// Command flowersim runs a single experiment with every Table 1
// parameter exposed as a flag and prints the run's metrics.
//
// Usage:
//
//	flowersim -protocol flower -p 3000 -hours 24
//	flowersim -protocol squirrel -p 500 -hours 6 -seed 7
//	flowersim -protocol origin-only -p 400   # the floor any CDN must beat
//	flowersim -cache-policy lru -cache-capacity 16   # capacity-bounded peer stores
//	flowersim -protocols                     # list registered protocols
//	flowersim -print-params
//
// With -backend realtime the identical protocol code runs on
// wall-clock timers instead of the deterministic simulator: the run
// takes -horizon of real time and prints each metric window live as it
// closes. Timescales are compressed (~3600×) so seconds exhibit the
// full protocol lifecycle:
//
//	flowersim -backend realtime -population 50 -horizon 5s
//
// With -backend socket the same live run spans cooperating OS
// processes over TCP — one listener per process, the population
// partitioned across them (see socket.go for the direct per-process
// flags):
//
//	flowersim -backend socket -spawn-local 3 -population 50 -horizon 5s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flowercdn"
	"flowercdn/internal/harness"
	"flowercdn/internal/metrics"
	"flowercdn/internal/obs"
	"flowercdn/internal/prof"
	"flowercdn/internal/trace"
)

func main() {
	var (
		protocol    = flag.String("protocol", "flower", fmt.Sprintf("one of %v", flowercdn.Protocols()))
		listProtos  = flag.Bool("protocols", false, "list registered protocols and exit")
		backend     = flag.String("backend", "sim", fmt.Sprintf("runtime backend, one of %v", flowercdn.Backends()))
		population  = flag.Int("population", 50, "realtime backend: mean population size")
		horizon     = flag.Duration("horizon", 5*time.Second, "realtime backend: wall-clock run length")
		printFP     = flag.Bool("print-fingerprint", false, "print only the run fingerprint (for cross-process determinism checks)")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		p           = flag.Int("p", 400, "mean population size P")
		hours       = flag.Int("hours", 8, "simulated duration in hours")
		sites       = flag.Int("sites", 20, "number of websites |W|")
		active      = flag.Int("active", 3, "number of active (queried) websites")
		objects     = flag.Int("objects", 200, "objects per website")
		localities  = flag.Int("k", 6, "number of localities")
		uptime      = flag.Int("uptime", 60, "mean peer uptime m, minutes")
		queryEvery  = flag.Int("query-every", 6, "mean minutes between queries")
		gossipEvery = flag.Int("gossip-every", 60, "gossip/keepalive period, minutes")
		push        = flag.Float64("push", 0.5, "push threshold")
		alpha       = flag.Float64("zipf", 0.8, "Zipf popularity exponent")
		collab      = flag.Bool("collab", true, "directory collaboration across localities")
		loadLimit   = flag.Int("load-limit", 30, "PetalUp per-directory load limit")
		loss        = flag.Float64("loss", 0, "one-way message loss rate (0 = reliable links)")
		exact       = flag.Bool("exact-summaries", false, "exact key sets instead of Bloom gossip summaries (ablation)")
		locSkew     = flag.Float64("locality-skew", 0, "Zipf skew of client arrivals over localities (0 = uniform)")
		intSkew     = flag.Float64("interest-skew", 0, "Zipf skew of peer interest over websites (0 = uniform)")
		cachePolicy = flag.String("cache-policy", "none", fmt.Sprintf("per-peer store eviction policy, one of %v", flowercdn.CachePolicies()))
		cacheCap    = flag.Int("cache-capacity", 0, "per-peer store capacity in objects (required >= 1 for any policy but none)")
		series      = flag.Bool("series", false, "print the hourly hit-ratio series")
		printParams = flag.Bool("print-params", false, "print the Table 1 parameter sheet and exit")
		measureMem  = flag.Bool("measure-mem", false, "sample the live heap after the run (forced GC) and print bytes/node")
		traceCSV    = flag.String("trace-csv", "", "enable per-query tracing and write hop-by-hop records to this CSV file (socket backend: group 0 only)")
		obsAddr     = flag.String("obs", "", "wall-clock backends: serve live /metrics and /traces on this address during the run (implies tracing)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write an end-of-run heap profile to this file")

		// Socket-backend process-group flags (see socket.go).
		listen     = flag.String("listen", "", "socket backend: this process's TCP listen address")
		peersList  = flag.String("peers", "", "socket backend: comma-separated index-ordered group addresses")
		groupIdx   = flag.Int("group", -1, "socket backend: this process's index in -peers (default: position of -listen)")
		groupCount = flag.Int("groups", 0, "socket backend: expected group count (asserted against -peers)")
		spawnLocal = flag.Int("spawn-local", 0, "socket backend: fork N local processes into one population")
		codecName  = flag.String("codec", "", fmt.Sprintf("socket backend: wire codec, one of %v (empty = gob)", flowercdn.Codecs()))
	)
	flag.Parse()

	if *listProtos {
		for _, p := range flowercdn.Protocols() {
			fmt.Printf("%-14s %s\n", p, flowercdn.ProtocolSummary(p))
		}
		return
	}

	if *backend == "socket" {
		// Like the realtime demo, the socket demo derives its scale from
		// -population/-horizon; warn about explicitly-set simulation-scale
		// flags it ignores instead of silently dropping them.
		socketFlagNames := map[string]bool{
			"backend": true, "protocol": true, "seed": true,
			"population": true, "horizon": true, "loss": true,
			"cache-policy": true, "cache-capacity": true,
			"listen": true, "peers": true, "group": true, "groups": true,
			"spawn-local": true, "codec": true,
			"trace-csv": true, "obs": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if !socketFlagNames[f.Name] {
				fmt.Fprintf(os.Stderr, "flowersim: -%s is ignored with -backend socket (scale comes from -population/-horizon)\n", f.Name)
			}
		})
		if *spawnLocal > 0 {
			// Parent mode: fork the whole group locally, passing the
			// experiment shape through to every child.
			passthrough := []string{
				"-protocol", *protocol,
				"-population", fmt.Sprint(*population),
				"-horizon", horizon.String(),
				"-seed", fmt.Sprint(*seed),
				"-loss", fmt.Sprint(*loss),
				"-cache-policy", *cachePolicy,
				"-cache-capacity", fmt.Sprint(*cacheCap),
				"-codec", *codecName,
				// Tracing flags reach every child; only group 0 writes
				// the CSV or binds the observability endpoint.
				"-trace-csv", *traceCSV,
				"-obs", *obsAddr,
			}
			spawnLocalGroup(*spawnLocal, passthrough)
			return
		}
		runSocket(*protocol, *seed, *population, *horizon, *loss, *cachePolicy, *cacheCap, socketFlags{
			listen:   *listen,
			peers:    *peersList,
			group:    *groupIdx,
			groups:   *groupCount,
			codec:    *codecName,
			traceCSV: *traceCSV,
			obsAddr:  *obsAddr,
		})
		return
	}

	if *backend == "realtime" {
		// The realtime demo derives its scale from -population/-horizon;
		// warn about explicitly-set simulation-scale flags it ignores
		// instead of silently dropping them.
		realtimeFlags := map[string]bool{
			"backend": true, "protocol": true, "seed": true,
			"population": true, "horizon": true, "loss": true,
			"print-fingerprint": true,
			"cache-policy":      true, "cache-capacity": true,
			"cpuprofile": true, "memprofile": true,
			"trace-csv": true, "obs": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if !realtimeFlags[f.Name] {
				fmt.Fprintf(os.Stderr, "flowersim: -%s is ignored with -backend realtime (scale comes from -population/-horizon)\n", f.Name)
			}
		})
		stopCPU, err := prof.StartCPU(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		runRealtime(*protocol, *seed, *population, *horizon, *loss, *printFP, *cachePolicy, *cacheCap, *traceCSV, *obsAddr)
		stopCPU()
		if err := prof.WriteHeap(*memProfile); err != nil {
			fatal(err)
		}
		return
	}

	cfg := flowercdn.Config{
		Protocol:           flowercdn.Protocol(*protocol),
		Seed:               *seed,
		Population:         *p,
		Hours:              *hours,
		Sites:              *sites,
		ActiveSites:        *active,
		ObjectsPerSite:     *objects,
		Localities:         *localities,
		MeanUptimeMinutes:  *uptime,
		QueryEveryMinutes:  *queryEvery,
		ZipfAlpha:          *alpha,
		GossipEveryMinutes: *gossipEvery,
		PushThreshold:      *push,
		DirCollaboration:   *collab,
		ExactSummaries:     *exact,
		PetalUpLoadLimit:   *loadLimit,
		MessageLossRate:    *loss,
		LocalitySkew:       *locSkew,
		InterestSkew:       *intSkew,
		CachePolicy:        *cachePolicy,
		CacheCapacity:      *cacheCap,
		MeasureMem:         *measureMem,
		Trace:              *traceCSV != "",
	}
	if *obsAddr != "" {
		fmt.Fprintln(os.Stderr, "flowersim: -obs is for wall-clock backends (realtime/socket); ignored on sim")
	}

	if *printParams {
		t1, err := flowercdn.FormatTable1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(t1)
		return
	}

	cfg.Backend = *backend

	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := flowercdn.Run(cfg)
	stopCPU()
	if err != nil {
		fatal(err)
	}
	if err := prof.WriteHeap(*memProfile); err != nil {
		fatal(err)
	}
	if *printFP {
		// Exactly one line, stable across equivalent runs: the contract
		// of the cross-process determinism check (make fingerprint-check).
		fmt.Printf("%016x\n", res.Fingerprint)
		return
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
	if *traceCSV != "" {
		writeTraceCSV(*traceCSV, res.Traces())
	}
	fmt.Print(res.Summary())
	fmt.Printf("lookup: %.0f%% within 150 ms, %.0f%% beyond 1200 ms\n",
		100*res.LookupWithin150ms, 100*res.LookupBeyond1200ms)
	fmt.Printf("transfer: %.0f%% within 100 ms\n", 100*res.TransferWithin100ms)
	if res.MemStats != nil {
		fmt.Printf("memory: %.0f B/node live heap (%.1f MiB total, %d mallocs)\n",
			res.MemStats.BytesPerNode,
			float64(res.MemStats.HeapAllocBytes)/(1<<20),
			res.MemStats.Mallocs)
	}
	if *series {
		fmt.Println("hour  hit-ratio  queries")
		for _, pt := range res.Series {
			fmt.Printf("%4d  %9.3f  %7d\n", pt.Hour, pt.HitRatio, pt.Queries)
		}
	}
}

// runRealtime executes a live wall-clock run: compressed timescales,
// per-window stats printed as each window closes.
func runRealtime(protocol string, seed uint64, population int, horizon time.Duration, loss float64, printFP bool,
	cachePolicy string, cacheCap int, traceCSV, obsAddr string) {
	cfg := harness.RealtimeDemoConfig(population, horizon.Milliseconds())
	cfg.Protocol = harness.Protocol(protocol)
	cfg.Seed = seed
	cfg.MessageLossRate = loss
	if cachePolicy != "" && cachePolicy != "none" {
		cfg.Options["cache-policy"] = cachePolicy
		cfg.Options["cache-capacity"] = cacheCap
	}
	if traceCSV != "" || obsAddr != "" {
		cfg.Trace = &harness.TraceConfig{}
	}
	if obsAddr != "" {
		stop := startObs(&cfg, obsAddr)
		defer stop()
	}
	if printFP {
		// One line, like the sim path — though on this backend the value
		// is not reproducible across runs.
		res, err := harness.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%016x\n", res.Fingerprint)
		return
	}
	cfg.OnWindow = func(p metrics.SeriesPoint) {
		fmt.Printf("[%5.1fs] hit-ratio %.3f  queries %4d  lookup %5.0fms  transfer %4.0fms\n",
			float64(p.Start+cfg.SeriesWindow)/1000, p.HitRatio, p.Queries, p.MeanLookupMs, p.MeanTransferMs)
	}
	fmt.Printf("live %s run: population %d, horizon %v, %d ms windows\n",
		protocol, population, horizon, cfg.SeriesWindow)
	start := time.Now()
	res, err := harness.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("completed in %v wall time (%d events, %d messages)\n",
		time.Since(start).Round(time.Millisecond), res.EventsProcessed, res.NetStats.MessagesSent)
	if traceCSV != "" {
		writeTraceCSV(traceCSV, res.Traces)
	}
	fmt.Print(harness.FormatSummary(res))
}

// writeTraceCSV writes collected trace records to path (stdout for
// "-"), reporting the count.
func writeTraceCSV(path string, recs []*trace.Record) {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, recs); err != nil {
		fatal(err)
	}
	fmt.Printf("traces: %d records written to %s\n", len(recs), path)
}

// startObs binds the live observability endpoint, attaches it to the
// run config, and returns its stop function. The harness also stops
// the server when the run returns (Stop is idempotent); the returned
// function covers paths that fatal out before the run starts.
func startObs(cfg *harness.Config, addr string) func() {
	srv := obs.NewServer(0)
	bound, err := srv.Start(addr)
	if err != nil {
		fatal(err)
	}
	cfg.Obs = srv
	fmt.Printf("observability: serving /metrics and /traces on http://%s\n", bound)
	return func() { srv.Stop() }
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowersim:", err)
	os.Exit(1)
}
