// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark trajectories can be committed
// and diffed across PRs (see the Makefile's bench target, which emits
// BENCH_PR<n>.json).
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_PR2.json
//
// Each benchmark line becomes one record keyed by its full name, with
// every reported metric (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units like flower-hit) parsed into a metrics map.
//
// Delta mode compares two committed trajectory files instead of
// reading stdin (see the Makefile's bench-delta target):
//
//	benchjson -delta BENCH_PR6.json BENCH_PR7.json
//
// It prints per-benchmark ns/op and allocs/op changes for every name
// the files share, flagging slowdowns past 10% — informational, since
// trajectory files may come from different machines. Machine-portable
// named metrics are gated, however: a >20% regression on a memory
// metric (bytes/node, allocs/query — deterministic functions of the
// code, not the machine) makes delta mode exit non-zero. Set
// BENCH_DELTA_WARN_ONLY=1 to downgrade that gate to a warning (e.g.
// while a PR intentionally trades memory for something else).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	// Name is the benchmark's full name including sub-benchmark path
	// and the -cpu suffix (BenchmarkFoo/case-8).
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in ("" when the
	// input carries no pkg: header, e.g. single-package runs piped
	// without verbose headers).
	Package string `json:"package,omitempty"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value ("ns/op": 205.2, "allocs/op": 0, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the document structure.
type Output struct {
	// Env echoes the goos/goarch/cpu headers go test prints.
	Env map[string]string `json:"env,omitempty"`
	// Benchmarks holds one record per result line, in input order.
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	delta := flag.Bool("delta", false, "compare two trajectory JSON files: benchjson -delta OLD NEW")
	flag.Parse()
	if *delta {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -delta needs exactly two files: benchjson -delta OLD NEW")
			os.Exit(2)
		}
		regressions, err := printDelta(flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressions > 0 {
			if os.Getenv("BENCH_DELTA_WARN_ONLY") != "" {
				fmt.Fprintf(os.Stderr, "benchjson: %d memory-metric regression(s) past %.0f%% (BENCH_DELTA_WARN_ONLY set; not failing)\n",
					regressions, gatedRegressionPct)
				return
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d memory-metric regression(s) past %.0f%% (set BENCH_DELTA_WARN_ONLY=1 to override)\n",
				regressions, gatedRegressionPct)
			os.Exit(1)
		}
		return
	}
	out := Output{Env: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if rec, ok := parseLine(line); ok {
				rec.Package = pkg
				out.Benchmarks = append(out.Benchmarks, rec)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line:
//
//	BenchmarkName-8   1000   123.4 ns/op   56 B/op   2 allocs/op   0.71 hit
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false // e.g. "BenchmarkFoo   --- FAIL" lines
	}
	rec := Record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The rest alternates value unit pairs.
	rest := fields[2:]
	for i := 0; i+1 < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			continue
		}
		rec.Metrics[rest[i+1]] = v
	}
	return rec, len(rec.Metrics) > 0
}

// loadTrajectory reads one committed BENCH_PR*.json document and
// indexes its records by package-qualified benchmark name.
func loadTrajectory(path string) (map[string]Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out Output
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	recs := make(map[string]Record, len(out.Benchmarks))
	for _, r := range out.Benchmarks {
		recs[r.Package+" "+r.Name] = r
	}
	return recs, nil
}

// gatedMetrics are the named benchmark metrics delta mode gates on:
// unlike ns/op they are deterministic functions of the code (allocation
// counts and live-heap footprints), so a regression between trajectory
// files is a real regression even across machines.
var gatedMetrics = []string{"bytes/node", "allocs/query"}

// gatedRegressionPct is how far a gated metric may rise before delta
// mode fails.
const gatedRegressionPct = 20.0

// printDelta renders the ns/op and allocs/op movement between two
// trajectory files for every benchmark they share, then the gated
// memory metrics. It returns how many gated metrics regressed past
// gatedRegressionPct.
func printDelta(oldPath, newPath string) (int, error) {
	oldRecs, err := loadTrajectory(oldPath)
	if err != nil {
		return 0, err
	}
	newRecs, err := loadTrajectory(newPath)
	if err != nil {
		return 0, err
	}
	keys := make([]string, 0, len(newRecs))
	for k := range newRecs {
		if _, ok := oldRecs[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	fmt.Printf("%-64s %14s %14s %8s %16s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	slower := 0
	for _, k := range keys {
		o, n := oldRecs[k], newRecs[k]
		oNs, nNs := o.Metrics["ns/op"], n.Metrics["ns/op"]
		if oNs == 0 || nNs == 0 {
			continue
		}
		pct := (nNs - oNs) / oNs * 100
		mark := ""
		if pct > 10 {
			mark = "  ! slower"
			slower++
		}
		allocs := fmt.Sprintf("%.0f -> %.0f", o.Metrics["allocs/op"], n.Metrics["allocs/op"])
		fmt.Printf("%-64s %14.1f %14.1f %+7.1f%% %16s%s\n", n.Name, oNs, nNs, pct, allocs, mark)
	}
	fmt.Printf("%d shared benchmarks (%d only in %s, %d only in %s), %d past the 10%% slowdown mark\n",
		len(keys), len(oldRecs)-len(keys), oldPath, len(newRecs)-len(keys), newPath, slower)

	// Gated memory metrics: print every shared occurrence, count the
	// regressions past the threshold.
	regressions, header := 0, false
	for _, k := range keys {
		o, n := oldRecs[k], newRecs[k]
		for _, metric := range gatedMetrics {
			oV, oOK := o.Metrics[metric]
			nV, nOK := n.Metrics[metric]
			if !oOK || !nOK || oV == 0 {
				continue
			}
			if !header {
				fmt.Printf("\n%-64s %-14s %14s %14s %8s\n", "benchmark", "metric", "old", "new", "delta")
				header = true
			}
			pct := (nV - oV) / oV * 100
			mark := ""
			if pct > gatedRegressionPct {
				mark = "  ! regression"
				regressions++
			}
			fmt.Printf("%-64s %-14s %14.1f %14.1f %+7.1f%%%s\n", n.Name, metric, oV, nV, pct, mark)
		}
	}
	if header {
		fmt.Printf("%d memory-metric regression(s) past the %.0f%% gate\n", regressions, gatedRegressionPct)
	}
	return regressions, nil
}
