// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark trajectories can be committed
// and diffed across PRs (see the Makefile's bench target, which emits
// BENCH_PR<n>.json).
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_PR2.json
//
// Each benchmark line becomes one record keyed by its full name, with
// every reported metric (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units like flower-hit) parsed into a metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	// Name is the benchmark's full name including sub-benchmark path
	// and the -cpu suffix (BenchmarkFoo/case-8).
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in ("" when the
	// input carries no pkg: header, e.g. single-package runs piped
	// without verbose headers).
	Package string `json:"package,omitempty"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value ("ns/op": 205.2, "allocs/op": 0, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the document structure.
type Output struct {
	// Env echoes the goos/goarch/cpu headers go test prints.
	Env map[string]string `json:"env,omitempty"`
	// Benchmarks holds one record per result line, in input order.
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	out := Output{Env: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if rec, ok := parseLine(line); ok {
				rec.Package = pkg
				out.Benchmarks = append(out.Benchmarks, rec)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line:
//
//	BenchmarkName-8   1000   123.4 ns/op   56 B/op   2 allocs/op   0.71 hit
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false // e.g. "BenchmarkFoo   --- FAIL" lines
	}
	rec := Record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The rest alternates value unit pairs.
	rest := fields[2:]
	for i := 0; i+1 < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			continue
		}
		rec.Metrics[rest[i+1]] = v
	}
	return rec, len(rec.Metrics) > 0
}
