// Command flowerbench regenerates the paper's evaluation artifacts and
// runs parallel multi-seed sweeps over configuration grids.
//
// Sweep mode (-grid) is the primary interface: it expands a named grid
// of configurations, runs every cell under -seeds seeds across
// -workers concurrent simulations, and prints per-cell mean ± 95% CI
// aggregates (with optional CSV output). Aggregates are identical for
// any worker count; only the wall clock changes.
//
//	flowerbench -grid compare -seeds 5                 # all registered protocols x 5 seeds
//	flowerbench -grid scalability -seeds 10 -workers 8 # Table 2 with error bars
//	flowerbench -grid churn -scenario flash-crowd      # churn axis, hot-site workload
//	flowerbench -grid capacity -scenario cache-pressure # hit ratio vs per-peer cache capacity
//	flowerbench -grid compare -csv out.csv             # machine-readable aggregates
//
// Sweeps also run distributed: -dist-coordinator shards the grid's
// (cell, seed) jobs across worker processes (-dist-worker, or forked
// locally via -spawn-workers), with resumable result files under
// -out-dir and aggregates byte-identical to the in-process sweep at
// any worker count. See dist.go and docs/OPERATIONS.md.
//
// Grids: compare (every protocol registered with the runtime: flower,
// petalup, squirrel, chord-global — origin-only is reachable via
// flowersim -protocol origin-only), scalability (flower/squirrel x
// population), churn (mean-uptime axis), gossip (gossip-period axis),
// capacity (per-peer cache-capacity axis, unbounded reference cell
// included). Scenarios: table1 (default), flash-crowd, locality-skew,
// cache-pressure.
//
// Without -grid it renders the paper's single-run artifacts: Fig. 3
// (hit ratio over time), Fig. 4 (lookup latency distribution), Fig. 5
// (transfer distance distribution) and Table 2 (scalability sweep),
// plus the PetalUp flash-crowd extension experiment.
//
// By default everything runs at a reduced scale that finishes in
// seconds; pass -full for the paper's Table 1 scale (P up to 5000, 24
// simulated hours — several minutes of wall time per run).
//
//	flowerbench                 # all artifacts, quick scale
//	flowerbench -fig 3          # just Fig. 3
//	flowerbench -table 2 -full  # Table 2 at paper scale
//	flowerbench -extra petalup  # flash-crowd load-bounding experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flowercdn"
	"flowercdn/internal/prof"
	"flowercdn/internal/trace"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "regenerate one figure (3, 4 or 5); 0 = all")
		table = flag.Int("table", 0, "regenerate one table (1 or 2); 0 = all")
		extra = flag.String("extra", "", "extension experiment: 'petalup'")
		full  = flag.Bool("full", false, "paper scale (P up to 5000, 24 h) instead of quick scale")
		seed  = flag.Uint64("seed", 1, "simulation seed (sweeps use seeds seed..seed+n-1)")
		pop   = flag.Int("p", 0, "override population P")

		traceFlag = flag.Bool("trace", false, "run every comparable protocol with per-query tracing and print the per-hop latency breakdown")

		grid       = flag.String("grid", "", "run a sweep over a named grid: compare, scalability, churn, gossip, capacity")
		scenario   = flag.String("scenario", "table1", "workload scenario: table1, flash-crowd, locality-skew, cache-pressure")
		seeds      = flag.Int("seeds", 5, "number of seeds per sweep cell")
		workers    = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		csvPath    = flag.String("csv", "", "also write sweep aggregates as CSV to this file ('-' = stdout)")
		seriesPath = flag.String("series-csv", "", "also write the per-window hit-ratio/latency series as CSV to this file ('-' = stdout)")

		distCoordinator = flag.String("dist-coordinator", "", "run the -grid sweep as a distributed coordinator listening on this address (':0' for an ephemeral port)")
		distWorker      = flag.String("dist-worker", "", "serve a distributed sweep as a worker of the coordinator at this address (same sweep flags required)")
		spawnN          = flag.Int("spawn-workers", 0, "with -dist-coordinator: also fork N local worker processes")
		outDir          = flag.String("out-dir", "dist-out", "coordinator result-record directory (makes the sweep resumable)")
		distCodec       = flag.String("dist-codec", "", "coordinator/worker wire codec: binary (default) or gob")
		distLease       = flag.Duration("lease", 0, "per-job liveness deadline before reassignment (default 2m)")
		distVerbose     = flag.Bool("dist-verbose", false, "print coordinator scheduling events (assignments, completions, reassignments)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering every run to this file")
		memProfile = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	)
	flag.Parse()

	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := prof.WriteHeap(*memProfile); err != nil {
			fatal(err)
		}
	}()

	cfg := flowercdn.QuickConfig()
	pops := []int{200, 300, 400, 500}
	if *full {
		cfg = flowercdn.DefaultConfig()
		pops = []int{2000, 3000, 4000, 5000}
	}
	cfg.Seed = *seed
	if *pop > 0 {
		cfg.Population = *pop
	}

	if *traceFlag {
		runTraceBreakdown(cfg)
		return
	}

	if *distCoordinator != "" || *distWorker != "" {
		if *grid == "" {
			fatal(fmt.Errorf("distributed mode needs -grid (the sweep definition every process shares)"))
		}
		cells, seedSet := buildSweepInputs(cfg, pops, *grid, *scenario, *seed, *seeds)
		df := distFlags{
			coordinator:  *distCoordinator,
			worker:       *distWorker,
			spawnWorkers: *spawnN,
			outDir:       *outDir,
			codec:        *distCodec,
			lease:        *distLease,
			verbose:      *distVerbose,
		}
		if *distWorker != "" {
			runDistWorker(cells, seedSet, df)
			return
		}
		runDistCoordinator(cells, seedSet, *grid, *scenario, df, *csvPath, *seriesPath)
		return
	}

	if *grid != "" {
		runSweep(cfg, pops, *grid, *scenario, *seed, *seeds, *workers, *csvPath, *seriesPath)
		return
	}

	all := *fig == 0 && *table == 0 && *extra == ""

	if all || *table == 1 {
		t1, err := flowercdn.FormatTable1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(t1)
		fmt.Println()
	}

	needComparison := all || *fig != 0
	if needComparison {
		start := time.Now()
		fmt.Printf("running %s vs %s at P=%d for %d h (seed %d)...\n",
			flowercdn.Flower, flowercdn.Squirrel, cfg.Population, cfg.Hours, cfg.Seed)
		f, s, err := flowercdn.RunComparison(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))
		if all || *fig == 3 {
			fmt.Print(flowercdn.FormatFig3(f, s))
			fmt.Println()
		}
		if all || *fig == 4 {
			fmt.Print(flowercdn.FormatFig4(f, s))
			fmt.Println()
		}
		if all || *fig == 5 {
			fmt.Print(flowercdn.FormatFig5(f, s))
			fmt.Println()
		}
		fmt.Print(f.Summary())
		fmt.Print(s.Summary())
		fmt.Println()
	}

	if all || *table == 2 {
		start := time.Now()
		fmt.Printf("running Table 2 sweep over P=%v...\n", pops)
		rows, err := flowercdn.RunScalability(cfg, pops)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Print(flowercdn.FormatTable2(rows))
		fmt.Println()
	}

	if *extra == "petalup" || all {
		runPetalUpExtra(cfg)
	}
}

// buildGrid expands the named grid preset around the base config.
func buildGrid(base flowercdn.Config, pops []int, name string) ([]flowercdn.SweepCell, error) {
	switch name {
	case "compare":
		// Every registered comparable protocol, automatically: a new
		// deployment only has to register itself with internal/proto to
		// appear here. (origin-only is the degenerate floor; run it via
		// flowersim -protocol origin-only.)
		return flowercdn.Grid{
			Base:      base,
			Protocols: flowercdn.CompareProtocols(),
		}.Cells(), nil
	case "scalability":
		return flowercdn.Grid{
			Base:        base,
			Protocols:   []flowercdn.Protocol{flowercdn.Flower, flowercdn.Squirrel},
			Populations: pops,
		}.Cells(), nil
	case "churn":
		return flowercdn.Grid{
			Base:        base,
			Protocols:   []flowercdn.Protocol{flowercdn.Flower, flowercdn.Squirrel},
			MeanUptimes: []int{15, 30, 60, 120},
		}.Cells(), nil
	case "gossip":
		return flowercdn.Grid{
			Base:          base,
			Protocols:     []flowercdn.Protocol{flowercdn.Flower},
			GossipPeriods: []int{15, 30, 60, 120},
		}.Cells(), nil
	case "capacity":
		// Per-peer cache capacity in objects, smallest first, with the
		// unbounded paper model (0 → policy none) as the reference
		// ceiling. The base policy comes from -scenario cache-pressure
		// (or defaults to lru).
		return flowercdn.Grid{
			Base:            base,
			Protocols:       []flowercdn.Protocol{flowercdn.Flower},
			CacheCapacities: []int{4, 8, 16, 32, 64, 0},
		}.Cells(), nil
	default:
		return nil, fmt.Errorf("unknown grid %q (have compare, scalability, churn, gossip, capacity)", name)
	}
}

// buildSweepInputs expands the sweep definition flags into the cells
// and seed set — deterministically, so a distributed coordinator and
// its workers (same flags, same binary) derive the identical spec.
func buildSweepInputs(base flowercdn.Config, pops []int, gridName, scenarioName string,
	seedBase uint64, nSeeds int) ([]flowercdn.SweepCell, []uint64) {

	cfg, err := flowercdn.ApplyScenario(base, flowercdn.Scenario(scenarioName))
	if err != nil {
		fatal(err)
	}
	cells, err := buildGrid(cfg, pops, gridName)
	if err != nil {
		fatal(err)
	}
	if nSeeds < 1 {
		fatal(fmt.Errorf("need at least one seed, got %d", nSeeds))
	}
	return cells, flowercdn.SeedSet(seedBase, nSeeds)
}

// runSweep is the -grid entry point: expand, fan out, aggregate, print.
func runSweep(base flowercdn.Config, pops []int, gridName, scenarioName string,
	seedBase uint64, nSeeds, workers int, csvPath, seriesPath string) {

	cells, seedSet := buildSweepInputs(base, pops, gridName, scenarioName, seedBase, nSeeds)
	// Fail on an unwritable CSV path before the sweep, not after
	// minutes of simulation (O_CREATE without O_TRUNC keeps any
	// existing content until the real write).
	for _, path := range []string{csvPath, seriesPath} {
		if path != "" && path != "-" {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				fatal(err)
			}
			f.Close()
		}
	}

	fmt.Printf("sweep %q (scenario %s): %d cells x %d seeds...\n",
		gridName, scenarioName, len(cells), nSeeds)
	start := time.Now()
	res, err := flowercdn.Sweep(cells, seedSet, workers)
	if err != nil {
		fatal(err)
	}
	// res.Workers is the resolved parallelism (GOMAXPROCS default,
	// capped at the job count) — the sweep's own number, not a
	// re-derivation that could drift from it.
	fmt.Printf("done in %v (%d runs, %d workers)\n\n",
		time.Since(start).Round(time.Millisecond), res.TotalRuns, res.Workers)
	fmt.Print(res.Table())

	writeArtifact(csvPath, res.CSV)
	writeArtifact(seriesPath, res.SeriesCSV)
}

// writeArtifact sends one artifact to a file or stdout ("-"); with no
// path the artifact is never rendered.
func writeArtifact(path string, render func() string) {
	if path == "" {
		return
	}
	content := render()
	switch path {
	case "-":
		fmt.Println()
		fmt.Print(content)
	default:
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", path)
	}
}

// runTraceBreakdown answers "where does flower's locality win come
// from?" with data instead of argument: every comparable protocol runs
// on the same cell with per-query tracing on, and each run's hop-by-hop
// records are folded into a per-hop-kind latency breakdown (link vs
// queue split via the modeled topology latency).
func runTraceBreakdown(cfg flowercdn.Config) {
	cfg.Trace = true
	for _, p := range flowercdn.CompareProtocols() {
		c := cfg
		c.Protocol = p
		start := time.Now()
		res, err := flowercdn.Run(c)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s (P=%d, %d h, seed %d; %d queries, hit %.3f, lookup %.0f ms; %v)\n",
			p, c.Population, c.Hours, c.Seed,
			res.Queries, res.TailHitRatio, res.MeanLookupMs,
			time.Since(start).Round(time.Millisecond))
		fmt.Print(trace.Analyze(res.Traces(), res.HopLatency()).Format())
		fmt.Println()
	}
}

// runPetalUpExtra contrasts PetalUp-CDN with classic Flower-CDN on the
// same settings: the per-directory load stays bounded while hit
// performance is preserved (the Sec. 4 claim).
func runPetalUpExtra(cfg flowercdn.Config) {
	fmt.Println("PetalUp extension: directory-load bounding")
	up := cfg
	up.Protocol = flowercdn.PetalUp
	up.PetalUpLoadLimit = 15
	upRes, err := flowercdn.Run(up)
	if err != nil {
		fatal(err)
	}
	cl := cfg
	cl.Protocol = flowercdn.Flower
	clRes, err := flowercdn.Run(cl)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  classic  : hit %.3f, lookup %.0f ms\n", clRes.TailHitRatio, clRes.MeanLookupMs)
	fmt.Printf("  petalup  : hit %.3f, lookup %.0f ms (load limit %d)\n",
		upRes.TailHitRatio, upRes.MeanLookupMs, up.PetalUpLoadLimit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowerbench:", err)
	os.Exit(1)
}
