// Command flowerbench regenerates the paper's evaluation artifacts:
// Fig. 3 (hit ratio over time), Fig. 4 (lookup latency distribution),
// Fig. 5 (transfer distance distribution) and Table 2 (scalability
// sweep), plus the PetalUp flash-crowd extension experiment.
//
// By default it runs at a reduced scale that finishes in seconds; pass
// -full for the paper's Table 1 scale (P up to 5000, 24 simulated
// hours — several minutes of wall time per run).
//
// Usage:
//
//	flowerbench                 # all artifacts, quick scale
//	flowerbench -fig 3          # just Fig. 3
//	flowerbench -table 2 -full  # Table 2 at paper scale
//	flowerbench -extra petalup  # flash-crowd load-bounding experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flowercdn"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "regenerate one figure (3, 4 or 5); 0 = all")
		table = flag.Int("table", 0, "regenerate one table (1 or 2); 0 = all")
		extra = flag.String("extra", "", "extension experiment: 'petalup'")
		full  = flag.Bool("full", false, "paper scale (P up to 5000, 24 h) instead of quick scale")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		pop   = flag.Int("p", 0, "override population P for figures")
	)
	flag.Parse()

	cfg := flowercdn.QuickConfig()
	pops := []int{200, 300, 400, 500}
	if *full {
		cfg = flowercdn.DefaultConfig()
		pops = []int{2000, 3000, 4000, 5000}
	}
	cfg.Seed = *seed
	if *pop > 0 {
		cfg.Population = *pop
	}

	all := *fig == 0 && *table == 0 && *extra == ""

	if all || *table == 1 {
		t1, err := flowercdn.FormatTable1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(t1)
		fmt.Println()
	}

	needComparison := all || *fig != 0
	if needComparison {
		start := time.Now()
		fmt.Printf("running %s vs %s at P=%d for %d h (seed %d)...\n",
			flowercdn.Flower, flowercdn.Squirrel, cfg.Population, cfg.Hours, cfg.Seed)
		f, s, err := flowercdn.RunComparison(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))
		if all || *fig == 3 {
			fmt.Print(flowercdn.FormatFig3(f, s))
			fmt.Println()
		}
		if all || *fig == 4 {
			fmt.Print(flowercdn.FormatFig4(f, s))
			fmt.Println()
		}
		if all || *fig == 5 {
			fmt.Print(flowercdn.FormatFig5(f, s))
			fmt.Println()
		}
		fmt.Print(f.Summary())
		fmt.Print(s.Summary())
		fmt.Println()
	}

	if all || *table == 2 {
		start := time.Now()
		fmt.Printf("running Table 2 sweep over P=%v...\n", pops)
		rows, err := flowercdn.RunScalability(cfg, pops)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Print(flowercdn.FormatTable2(rows))
		fmt.Println()
	}

	if *extra == "petalup" || all {
		runPetalUpExtra(cfg)
	}
}

// runPetalUpExtra contrasts PetalUp-CDN with classic Flower-CDN on the
// same settings: the per-directory load stays bounded while hit
// performance is preserved (the Sec. 4 claim).
func runPetalUpExtra(cfg flowercdn.Config) {
	fmt.Println("PetalUp extension: directory-load bounding")
	up := cfg
	up.Protocol = flowercdn.PetalUp
	up.PetalUpLoadLimit = 15
	upRes, err := flowercdn.Run(up)
	if err != nil {
		fatal(err)
	}
	cl := cfg
	cl.Protocol = flowercdn.Flower
	clRes, err := flowercdn.Run(cl)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  classic  : hit %.3f, lookup %.0f ms\n", clRes.TailHitRatio, clRes.MeanLookupMs)
	fmt.Printf("  petalup  : hit %.3f, lookup %.0f ms (load limit %d)\n",
		upRes.TailHitRatio, upRes.MeanLookupMs, up.PetalUpLoadLimit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowerbench:", err)
	os.Exit(1)
}
