package main

// The distributed face of -grid sweeps: one coordinator process shards
// the sweep's (cell, seed) jobs over worker processes.
//
// Manual mode — start each process yourself (terminals, machines):
//
//	flowerbench -grid compare -seeds 5 -dist-coordinator 127.0.0.1:7100
//	flowerbench -grid compare -seeds 5 -dist-worker 127.0.0.1:7100   # x N, anywhere
//
// Convenience mode — fork the workers locally (demos, CI):
//
//	flowerbench -grid compare -seeds 5 -dist-coordinator 127.0.0.1:0 -spawn-workers 2
//
// Every process must be given the same sweep flags (-grid, -scenario,
// -seeds, -seed, -full, -p) on the same binary: configurations never
// cross the wire; the coordinator verifies a spec fingerprint at
// connect time and refuses a worker whose flags drifted.
//
// The sweep is resumable: completed runs persist under -out-dir, and a
// restarted coordinator (same flags, same directory) re-runs only what
// is missing. Aggregates are bit-identical to the in-process sweep at
// any worker count — `make dist-smoke` diffs the two CSVs in CI.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"flowercdn"
)

// distFlags collects the distributed-mode flag values.
type distFlags struct {
	coordinator  string // -dist-coordinator listen address
	worker       string // -dist-worker coordinator address
	spawnWorkers int
	outDir       string
	codec        string
	lease        time.Duration
	verbose      bool
}

// runDistCoordinator shards the sweep across workers and prints the
// same artifacts runSweep would.
func runDistCoordinator(cells []flowercdn.SweepCell, seedSet []uint64,
	gridName, scenarioName string, df distFlags, csvPath, seriesPath string) {

	fmt.Printf("distributed sweep %q (scenario %s): %d cells x %d seeds, out-dir %s\n",
		gridName, scenarioName, len(cells), len(seedSet), df.outDir)

	var spawned sync.WaitGroup
	start := time.Now()
	res, err := flowercdn.DistSweepCoordinator(cells, seedSet, flowercdn.DistSweepOptions{
		Listen: df.coordinator,
		OutDir: df.outDir,
		Codec:  df.codec,
		Lease:  df.lease,
		OnListen: func(addr string) {
			fmt.Printf("coordinator listening on %s\n", addr)
			if df.spawnWorkers > 0 {
				spawnWorkers(df.spawnWorkers, addr, &spawned)
			}
		},
		OnEvent: func(e string) {
			if df.verbose {
				fmt.Printf("[coord] %s\n", e)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	// Spawned workers exit on the coordinator's Shutdown; collect them
	// so their trailing output lands before the table.
	spawned.Wait()
	fmt.Printf("done in %v (%d runs, %d workers)\n\n",
		time.Since(start).Round(time.Millisecond), res.TotalRuns, res.Workers)
	fmt.Print(res.Table())

	writeArtifact(csvPath, res.CSV)
	writeArtifact(seriesPath, res.SeriesCSV)
}

// runDistWorker serves one worker process until the coordinator
// finishes the sweep.
func runDistWorker(cells []flowercdn.SweepCell, seedSet []uint64, df distFlags) {
	err := flowercdn.DistSweepWorker(cells, seedSet, flowercdn.DistSweepWorkerOptions{
		Coordinator: df.worker,
		Codec:       df.codec,
		OnEvent:     func(e string) { fmt.Println(e) },
	})
	if err != nil {
		fatal(err)
	}
}

// spawnWorkers forks this binary as -dist-worker children pointed at
// addr, relaying their output with a [wN] prefix. Children re-derive
// the sweep from the same flags this process was started with, minus
// the coordinator/spawn flags.
func spawnWorkers(n int, addr string, wg *sync.WaitGroup) {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	args := []string{"-dist-worker", addr}
	args = append(args, sweepArgs(os.Args[1:])...)
	for w := 0; w < n; w++ {
		cmd := exec.Command(exe, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			fatal(fmt.Errorf("spawn worker %d: %w", w, err))
		}
		wg.Add(1)
		go func(w int, cmd *exec.Cmd, r io.Reader) {
			defer wg.Done()
			sc := bufio.NewScanner(r)
			for sc.Scan() {
				fmt.Printf("[w%d] %s\n", w, sc.Text())
			}
			if err := cmd.Wait(); err != nil {
				// The coordinator's own failure surfaces the cause; a worker
				// exit here is informational.
				fmt.Fprintf(os.Stderr, "flowerbench: worker %d: %v\n", w, err)
			}
		}(w, cmd, stdout)
	}
	fmt.Printf("spawned %d local worker(s) -> %s\n", n, addr)
}

// sweepArgs filters this process's arguments down to the ones that
// define the sweep itself, dropping coordinator-only and output flags
// so children don't recurse or clobber artifacts.
func sweepArgs(args []string) []string {
	drop := map[string]bool{
		"-dist-coordinator": true, "-spawn-workers": true,
		"-dist-worker": true, "-csv": true, "-series-csv": true,
		"-out-dir": true, "-cpuprofile": true, "-memprofile": true,
	}
	var out []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		name := strings.TrimPrefix(a, "-") // flag accepts - and --
		name = "-" + name
		hasValue := false
		if j := strings.IndexByte(name, '='); j >= 0 {
			name = name[:j]
			hasValue = true
		}
		if drop[name] {
			if !hasValue && i+1 < len(args) { // separate value form
				i++
			}
			continue
		}
		out = append(out, a)
	}
	return out
}
