// Command tracediff compares two per-query trace CSVs (written by
// flowersim -trace-csv) and reports structural differences: record
// counts, per-kind hop mixes, mean route hops, and — for query numbers
// present in both — whether each query took the same node path.
//
// Its intended use is checking that a socket run of a cell routes the
// same way the simulator says it should:
//
//	flowersim -p 50 -hours 1 -trace-csv sim.csv
//	flowersim -backend socket -spawn-local 2 -population 50 \
//	    -horizon 5s -trace-csv sock.csv
//	tracediff sim.csv sock.csv
//
// Exit status is 0 when the traces are structurally identical and 1
// when they differ (2 on usage/IO errors), so it slots into CI.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"flowercdn/internal/trace"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: tracediff <a.csv> <b.csv>")
		os.Exit(2)
	}
	a := readTraces(os.Args[1])
	b := readTraces(os.Args[2])

	labelA := filepath.Base(os.Args[1])
	labelB := filepath.Base(os.Args[2])
	if labelA == labelB {
		labelA, labelB = os.Args[1], os.Args[2]
	}

	rep := trace.Diff(labelA, a, labelB, b)
	fmt.Print(rep.Format())
	if len(rep.Warnings) > 0 {
		os.Exit(1)
	}
}

func readTraces(path string) []*trace.Record {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadCSV(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return recs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracediff:", err)
	os.Exit(2)
}
