//go:build !race

package flowercdn

// raceEnabled reports whether the test binary was built with the race
// detector (see race_enabled_test.go).
const raceEnabled = false
