package flowercdn

import (
	"strings"
	"testing"
)

func tiny() Config {
	cfg := QuickConfig()
	cfg.Population = 150
	cfg.Hours = 3
	cfg.Sites = 10
	cfg.ActiveSites = 2
	cfg.ObjectsPerSite = 100
	return cfg
}

func TestRunFlowerFacade(t *testing.T) {
	res, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != Flower {
		t.Fatalf("protocol = %q", res.Protocol)
	}
	if res.Queries == 0 || res.Hits == 0 {
		t.Fatalf("no activity: queries=%d hits=%d", res.Queries, res.Hits)
	}
	if len(res.Series) == 0 || res.Series[0].Hour != 1 {
		t.Fatalf("series malformed: %+v", res.Series)
	}
	if res.HitRatio <= 0 || res.HitRatio > 1 {
		t.Fatalf("hit ratio out of range: %g", res.HitRatio)
	}
	if !strings.Contains(res.Summary(), "hit ratio") {
		t.Fatal("summary render broken")
	}
	if res.LookupDistribution().Total == 0 || res.TransferDistribution().Total == 0 {
		t.Fatal("distributions empty")
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range []Protocol{Flower, PetalUp, Squirrel} {
		cfg := tiny()
		cfg.Protocol = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Queries == 0 {
			t.Fatalf("%s: no queries", p)
		}
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	cfg := tiny()
	cfg.Protocol = "gopherswarm"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestEmptyProtocolDefaultsToFlower(t *testing.T) {
	cfg := tiny()
	cfg.Protocol = ""
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != Flower {
		t.Fatalf("protocol = %q, want flower default", res.Protocol)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := tiny()
	cfg.Population = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero population accepted")
	}
	cfg = tiny()
	cfg.PushThreshold = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero push threshold accepted")
	}
}

func TestComparisonAndFormatters(t *testing.T) {
	f, s, err := RunComparison(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if f.Protocol != Flower || s.Protocol != Squirrel {
		t.Fatalf("protocols: %q %q", f.Protocol, s.Protocol)
	}
	for name, out := range map[string]string{
		"fig3": FormatFig3(f, s),
		"fig4": FormatFig4(f, s),
		"fig5": FormatFig5(f, s),
	} {
		if !strings.Contains(out, "Flower") {
			t.Fatalf("%s render broken:\n%s", name, out)
		}
	}
	t1, err := FormatTable1(tiny())
	if err != nil || !strings.Contains(t1, "Table 1") {
		t.Fatalf("table1: %v\n%s", err, t1)
	}
}

func TestScalabilitySweep(t *testing.T) {
	cfg := tiny()
	cfg.Hours = 2
	rows, err := RunScalability(cfg, []int{100, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Flower-CDN") {
		t.Fatalf("table2 render broken:\n%s", out)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.Queries != b.Queries || a.Hits != b.Hits {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", a.Queries, a.Hits, b.Queries, b.Hits)
	}
}
