module flowercdn

go 1.23
