module flowercdn

go 1.24
