// Package flowercdn is a from-scratch reproduction of "Leveraging P2P
// overlays for Large-scale and Highly Robust Content Distribution and
// Search" (Manal El Dick, VLDB 2009 Ph.D. Workshop): the Flower-CDN
// and PetalUp-CDN peer-to-peer content distribution networks, their
// churn-maintenance protocols, and the simulation study comparing them
// against the Squirrel decentralized web cache.
//
// The package is a façade over the full machinery in internal/: a
// discrete-event engine, a landmark latency topology, a complete Chord
// DHT, Cyclon-style gossip, the protocols themselves, workload and
// churn generators, and the experiment harness. Typical use:
//
//	cfg := flowercdn.DefaultConfig()
//	cfg.Population = 3000
//	res, err := flowercdn.Run(cfg)
//	fmt.Println(res.HitRatio, res.MeanLookupMs)
//
// or, for the paper's head-to-head figures:
//
//	f, s, _ := flowercdn.RunComparison(cfg)
//	fmt.Print(flowercdn.FormatFig3(f, s))
package flowercdn

import (
	"fmt"

	"flowercdn/internal/cache"
	"flowercdn/internal/harness"
	"flowercdn/internal/metrics"
	"flowercdn/internal/proto"
	_ "flowercdn/internal/protocols" // register every built-in protocol driver
	"flowercdn/internal/runtime"
	"flowercdn/internal/trace"
)

// Protocol selects which system a run simulates. Any name registered
// with the protocol runtime is valid; Protocols lists them.
type Protocol string

// The built-in deployable systems.
const (
	// Flower is classic Flower-CDN (Sec. 3 of the paper).
	Flower Protocol = "flower"
	// PetalUp is Flower-CDN with directory splitting (Sec. 4).
	PetalUp Protocol = "petalup"
	// Squirrel is the baseline P2P web cache the paper compares against.
	Squirrel Protocol = "squirrel"
	// ChordGlobal is a single global Chord directory with no locality
	// petals — it isolates how much of Flower-CDN's win comes from
	// locality awareness versus from directory caching at all.
	ChordGlobal Protocol = "chord-global"
	// KoordeGlobal is ChordGlobal's deployment routed over a Koorde de
	// Bruijn overlay (Kaashoek & Karger, IPTPS 2003) instead of Chord
	// fingers — same directory scheme, O(log n / log b) lookup hops.
	KoordeGlobal Protocol = "koorde-global"
	// OriginOnly sends every query to the origin server — the floor any
	// CDN must beat (hit ratio zero by construction).
	OriginOnly Protocol = "origin-only"
)

// Protocols returns every registered protocol, in presentation order.
func Protocols() []Protocol {
	return toProtocols(proto.Names())
}

// Backends returns the registered runtime backends ("sim", "realtime").
func Backends() []string { return runtime.Backends() }

// CachePolicies returns the registered cache-eviction policies ("none"
// first, then alphabetical).
func CachePolicies() []string { return cache.Names() }

// Codecs returns the registered wire codecs the socket backend can
// frame payloads with ("gob", "binary").
func Codecs() []string { return runtime.Codecs() }

// CachePolicySummary returns the one-line description of a registered
// cache policy ("" for unknown names).
func CachePolicySummary(name string) string {
	info, _ := cache.Lookup(name)
	return info.Summary
}

// CompareProtocols returns the protocols that belong in head-to-head
// comparison grids (everything registered except degenerate floors
// like origin-only, which stays reachable by name).
func CompareProtocols() []Protocol {
	return toProtocols(proto.CompareNames())
}

// ProtocolSummary returns the one-line description of a registered
// protocol ("" for unknown names).
func ProtocolSummary(p Protocol) string {
	info, _ := proto.Lookup(string(p))
	return info.Summary
}

func toProtocols(names []string) []Protocol {
	out := make([]Protocol, len(names))
	for i, n := range names {
		out[i] = Protocol(n)
	}
	return out
}

// Config is the user-facing experiment configuration. The zero value is
// not runnable; start from DefaultConfig (the paper's Table 1) and
// adjust.
type Config struct {
	// Protocol selects the system under test.
	Protocol Protocol
	// Backend selects the runtime backend: "" or "sim" is the
	// deterministic discrete-event simulation; "realtime" executes the
	// identical protocol code on wall-clock timers (the run genuinely
	// takes Hours of wall time — use harness.RealtimeDemoConfig-style
	// compressed settings, or the flowersim -backend realtime demo, for
	// seconds-scale live runs); "socket" executes it across cooperating
	// OS processes over TCP (set Socket; every process runs the same
	// Config differing only in Socket.Group). Backends lists the
	// registered names.
	Backend string
	// Socket describes this process's slot in a socket-backend group.
	// Required when Backend is "socket"; leave nil otherwise.
	Socket *SocketConfig
	// Seed makes runs reproducible: equal seeds, equal results.
	Seed uint64
	// Population is P, the mean number of concurrently-online peers.
	Population int
	// Hours is the simulated experiment length.
	Hours int

	// Sites is |W|; ActiveSites of them receive queries.
	Sites       int
	ActiveSites int
	// ObjectsPerSite is each website's catalog size.
	ObjectsPerSite int
	// Localities is k, the number of landmark localities.
	Localities int
	// MeanUptimeMinutes is m, the mean session length (fail-only churn).
	MeanUptimeMinutes int
	// QueryEveryMinutes is the mean think time between queries.
	QueryEveryMinutes int
	// ZipfAlpha shapes object popularity.
	ZipfAlpha float64

	// GossipEveryMinutes is the petal gossip/keepalive period.
	GossipEveryMinutes int
	// PushThreshold is the changed-store fraction that triggers a push.
	PushThreshold float64
	// DirCollaboration enables same-website directory collaboration.
	DirCollaboration bool
	// ExactSummaries swaps Bloom gossip summaries for exact key sets
	// (ablation).
	ExactSummaries bool
	// PetalUpLoadLimit is the per-directory member limit when Protocol
	// is PetalUp.
	PetalUpLoadLimit int
	// MessageLossRate injects random one-way message loss on top of
	// churn (failure injection; 0 = the paper's reliable links).
	MessageLossRate float64
	// LocalitySkew biases client arrivals toward low-index localities
	// (Zipf exponent; 0 = the paper's uniform spread). See the
	// locality-skew scenario preset.
	LocalitySkew float64
	// InterestSkew biases peer interest toward low-index websites (Zipf
	// exponent; 0 = the paper's uniform assignment), turning site 0
	// into a hot site. See the flash-crowd scenario preset.
	InterestSkew float64
	// CachePolicy bounds every peer's content store with a pluggable
	// eviction policy: "none" (or "", the paper's unbounded model),
	// "lru", "lfu" or "size-aware" — any name CachePolicies lists. See
	// the cache-pressure scenario preset and the capacity sweep grid.
	CachePolicy string
	// CacheCapacity is the per-peer store capacity in objects (the
	// size-aware policy converts it to a byte budget at the workload's
	// 8 KiB mean object size). Required >= 1 for any policy but none.
	CacheCapacity int
	// MeasureMem samples end-of-run heap statistics (live heap after a
	// forced GC, bytes per node) into Result.MemStats — the measurement
	// the big-cell benchmarks track. Single-process backends only.
	MeasureMem bool
	// Trace opts the run into per-query lookup tracing: every completed
	// query records its hop-by-hop resolution path (overlay forwardings,
	// directory consults, provider probes with false-positive flags,
	// the serving node), retrievable via Result.Traces. False — the
	// default — is the zero-overhead disabled state; enabling tracing
	// does not change modeled traffic or the run fingerprint.
	Trace bool
}

// SocketConfig describes one process of a socket-backend group: the
// full index-ordered peer address list (identical in every process)
// and this process's position in it. See the README's "Backends"
// section for the process-group topology.
type SocketConfig struct {
	// Listen is this process's TCP listen address (host:port).
	Listen string
	// Peers lists every group's address, index-ordered; Peers[Group]
	// names this process.
	Peers []string
	// Group is this process's index into Peers.
	Group int
	// Codec names the wire codec framing message payloads: "" or "gob"
	// for the self-describing compatibility default, "binary" for the
	// hand-rolled canonical encoding (~10× faster per frame). Every
	// process of a group must agree; the connection handshake enforces
	// it.
	Codec string
}

// DefaultConfig returns the paper's Table 1 parameters (P = 3000,
// 24 h, 100 websites with 6 active, 500 objects each, k = 6,
// m = 60 min, one query per 6 min, gossip/keepalive hourly, push
// threshold 0.5).
func DefaultConfig() Config {
	return Config{
		Protocol:           Flower,
		Seed:               1,
		Population:         3000,
		Hours:              24,
		Sites:              100,
		ActiveSites:        6,
		ObjectsPerSite:     500,
		Localities:         6,
		MeanUptimeMinutes:  60,
		QueryEveryMinutes:  6,
		ZipfAlpha:          0.8,
		GossipEveryMinutes: 60,
		PushThreshold:      0.5,
		DirCollaboration:   true,
		PetalUpLoadLimit:   30,
	}
}

// QuickConfig returns a scaled-down configuration (P = 400, 8 h, 20
// sites) that preserves the paper's proportions but finishes in a few
// seconds — what the examples and default benchmarks use.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Population = 400
	cfg.Hours = 8
	cfg.Sites = 20
	cfg.ActiveSites = 3
	cfg.ObjectsPerSite = 200
	return cfg
}

// lower translates the façade config into the internal harness config:
// generic experiment knobs map onto harness fields, protocol knobs onto
// the generic options map each registered driver reads its own keys
// from (keys a protocol does not understand are ignored, so one option
// set serves a whole comparison grid).
func (c Config) lower() (harness.Config, error) {
	hc := harness.DefaultConfig()
	switch {
	case c.Protocol == "":
		hc.Protocol = harness.ProtocolFlower
	case proto.Registered(string(c.Protocol)):
		hc.Protocol = harness.Protocol(c.Protocol)
	default:
		return hc, fmt.Errorf("flowercdn: unknown protocol %q (have %v)", c.Protocol, Protocols())
	}
	hc.Backend = c.Backend
	if c.Socket != nil {
		hc.Socket = &runtime.SocketConfig{
			Listen: c.Socket.Listen,
			Peers:  c.Socket.Peers,
			Group:  c.Socket.Group,
			Codec:  c.Socket.Codec,
		}
	}
	hc.Seed = c.Seed
	hc.Population = c.Population
	hc.Duration = int64(c.Hours) * runtime.Hour
	hc.Workload.Sites = c.Sites
	hc.Workload.ActiveSites = c.ActiveSites
	hc.Workload.ObjectsPerSite = c.ObjectsPerSite
	hc.Workload.QueryMeanInterval = int64(c.QueryEveryMinutes) * runtime.Minute
	hc.Workload.ZipfAlpha = c.ZipfAlpha
	hc.Workload.InterestSkew = c.InterestSkew
	hc.Topology.Localities = c.Localities
	hc.MeanUptime = int64(c.MeanUptimeMinutes) * runtime.Minute
	hc.MessageLossRate = c.MessageLossRate
	hc.LocalitySkew = c.LocalitySkew
	cachePolicy := c.CachePolicy
	if cachePolicy == "" {
		cachePolicy = "none"
	}
	hc.Options = proto.Options{
		"gossip-period":      int64(c.GossipEveryMinutes) * runtime.Minute,
		"keepalive-interval": int64(c.GossipEveryMinutes) * runtime.Minute,
		"push-threshold":     c.PushThreshold,
		"dir-collaboration":  c.DirCollaboration,
		"exact-summaries":    c.ExactSummaries,
		"load-limit":         c.PetalUpLoadLimit,
		"cache-policy":       cachePolicy,
		"cache-capacity":     c.CacheCapacity,
	}
	hc.MeasureMem = c.MeasureMem
	if c.Trace {
		hc.Trace = &harness.TraceConfig{}
	}
	return hc, nil
}

// SeriesPoint is one window of the hit-ratio time series (Fig. 3).
type SeriesPoint struct {
	Hour     int
	HitRatio float64
	Queries  uint64
}

// Result is the outcome of one run — the paper's three metrics plus
// diagnostics.
type Result struct {
	Protocol   Protocol
	Population int

	// HitRatio is cumulative; TailHitRatio covers the final hours (the
	// numbers Table 2 reports).
	HitRatio     float64
	TailHitRatio float64
	// MeanLookupMs is the mean lookup latency over served queries.
	MeanLookupMs float64
	// MeanTransferMs is the mean client→provider distance.
	MeanTransferMs float64
	// MeanHops is the mean overlay hop count per routed directory query
	// (0 for deployments without an overlay).
	MeanHops float64

	// LookupWithin150ms and TransferWithin100ms are the headline
	// distribution points of Fig. 4 and Fig. 5.
	LookupWithin150ms   float64
	LookupBeyond1200ms  float64
	TransferWithin100ms float64

	Series []SeriesPoint

	Queries uint64
	Hits    uint64
	Misses  uint64

	// Backend is the runtime backend the run executed on.
	Backend string
	// Fingerprint is the FNV-1a hash over the run's per-window query,
	// transfer and message counts; on the sim backend it is a
	// deterministic function of the configuration (see the harness
	// documentation and make fingerprint-check).
	Fingerprint uint64
	// MemStats is the end-of-run heap sample (nil unless
	// Config.MeasureMem was set).
	MemStats *harness.MemStats

	inner *harness.Result
}

func wrap(r *harness.Result) *Result {
	out := &Result{
		Protocol:            Protocol(r.Protocol),
		Population:          r.Population,
		HitRatio:            r.HitRatio,
		TailHitRatio:        r.TailHitRatio,
		MeanLookupMs:        r.MeanLookupMs,
		MeanTransferMs:      r.MeanTransferMs,
		MeanHops:            r.MeanHops,
		LookupWithin150ms:   r.Lookup.CDFAt(150),
		LookupBeyond1200ms:  r.Lookup.TailFraction(1200),
		TransferWithin100ms: r.Transfer.CDFAt(100),
		Queries:             r.Queries,
		Hits:                r.Hits,
		Misses:              r.Misses,
		Backend:             r.Backend,
		Fingerprint:         r.Fingerprint,
		MemStats:            r.MemStats,
		inner:               r,
	}
	for i, p := range r.Series {
		out.Series = append(out.Series, SeriesPoint{Hour: i + 1, HitRatio: p.HitRatio, Queries: p.Queries})
	}
	return out
}

// LookupDistribution returns the Fig. 4 histogram.
func (r *Result) LookupDistribution() metrics.Distribution { return r.inner.Lookup }

// TransferDistribution returns the Fig. 5 histogram.
func (r *Result) TransferDistribution() metrics.Distribution { return r.inner.Transfer }

// Summary renders the run's headline numbers.
func (r *Result) Summary() string { return harness.FormatSummary(r.inner) }

// ProtoStat reads one of the run's generic protocol counters/gauges
// ("alive_directories", "dir_promotions", "summary_pushes", ... — each
// driver documents its vocabulary; 0 when absent).
func (r *Result) ProtoStat(name string) float64 { return r.inner.ProtoStat(name) }

// Traces returns the run's per-query trace records (nil unless
// Config.Trace was set). See internal/trace for the record model and
// the Analyze/WriteCSV helpers.
func (r *Result) Traces() []*trace.Record { return r.inner.Traces }

// HopLatency returns the run's modeled link-latency function — the
// attribution input trace.Analyze uses to split each hop's latency
// contribution into link vs queue/processing time.
func (r *Result) HopLatency() trace.LatencyFunc { return r.inner.HopLatency }

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	hc, err := cfg.lower()
	if err != nil {
		return nil, err
	}
	res, err := harness.Run(hc)
	if err != nil {
		return nil, err
	}
	return wrap(res), nil
}

// RunComparison runs Flower-CDN and Squirrel on identical settings and
// seed — the paper's head-to-head setup behind Fig. 3–5.
func RunComparison(cfg Config) (flower, squirrel *Result, err error) {
	hc, err := cfg.lower()
	if err != nil {
		return nil, nil, err
	}
	f, s, err := harness.RunComparison(hc)
	if err != nil {
		return nil, nil, err
	}
	return wrap(f), wrap(s), nil
}

// ScalabilityRow is one Table 2 data point.
type ScalabilityRow struct {
	Population int
	Flower     *Result
	Squirrel   *Result
}

// RunScalability sweeps populations, reproducing Table 2.
func RunScalability(cfg Config, populations []int) ([]ScalabilityRow, error) {
	hc, err := cfg.lower()
	if err != nil {
		return nil, err
	}
	rows, err := harness.RunTable2(hc, populations)
	if err != nil {
		return nil, err
	}
	out := make([]ScalabilityRow, len(rows))
	for i, r := range rows {
		out[i] = ScalabilityRow{Population: r.Population, Flower: wrap(r.Flower), Squirrel: wrap(r.Squirrel)}
	}
	return out, nil
}

// FormatTable1 renders the parameter sheet of the run.
func FormatTable1(cfg Config) (string, error) {
	hc, err := cfg.lower()
	if err != nil {
		return "", err
	}
	return harness.FormatTable1(hc), nil
}

// FormatFig3 renders the hit-ratio-over-time comparison.
func FormatFig3(f, s *Result) string { return harness.FormatFig3(f.inner, s.inner) }

// FormatFig4 renders the lookup-latency distributions.
func FormatFig4(f, s *Result) string { return harness.FormatFig4(f.inner, s.inner) }

// FormatFig5 renders the transfer-distance distributions.
func FormatFig5(f, s *Result) string { return harness.FormatFig5(f.inner, s.inner) }

// FormatTable2 renders the scalability sweep.
func FormatTable2(rows []ScalabilityRow) string {
	inner := make([]harness.Table2Row, len(rows))
	for i, r := range rows {
		inner[i] = harness.Table2Row{Population: r.Population, Flower: r.Flower.inner, Squirrel: r.Squirrel.inner}
	}
	return harness.FormatTable2(inner)
}
