package flowercdn

// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. 6), plus the ablations DESIGN.md calls out. Each
// bench runs the relevant experiment at a reduced scale that preserves
// the paper's proportions (use `cmd/flowerbench -full` for the 24-hour,
// P-up-to-5000 runs) and reports the headline numbers as custom bench
// metrics, so `go test -bench=.` doubles as a regression harness for
// the reproduction's *shapes*: who wins, by roughly what factor, and
// where the crossovers fall.

import (
	"fmt"
	goruntime "runtime"
	"testing"

	"flowercdn/internal/petalup"
	"flowercdn/internal/sim"
)

// benchConfig is the shared reduced-scale setup.
func benchConfig() Config {
	cfg := QuickConfig()
	cfg.Population = 250
	cfg.Hours = 5
	cfg.Sites = 12
	cfg.ActiveSites = 2
	cfg.ObjectsPerSite = 150
	return cfg
}

// BenchmarkTable1Defaults measures a full configuration lowering and
// validation pass — the Table 1 parameter sheet machinery.
func BenchmarkTable1Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FormatTable1(DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3HitRatioOverTime regenerates Fig. 3: hit ratio over
// time for Flower-CDN vs Squirrel under churn.
func BenchmarkFig3HitRatioOverTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		f, s, err := RunComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.TailHitRatio, "flower-hit")
		b.ReportMetric(s.TailHitRatio, "squirrel-hit")
		if s.TailHitRatio > 0 {
			b.ReportMetric(f.TailHitRatio/s.TailHitRatio, "hit-factor")
		}
	}
}

// BenchmarkFig4LookupLatencyDistribution regenerates Fig. 4: the
// lookup-latency distributions and their headline CDF points.
func BenchmarkFig4LookupLatencyDistribution(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		f, s, err := RunComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.MeanLookupMs, "flower-lookup-ms")
		b.ReportMetric(s.MeanLookupMs, "squirrel-lookup-ms")
		b.ReportMetric(100*f.LookupWithin150ms, "flower-within-150ms-%")
		b.ReportMetric(100*s.LookupBeyond1200ms, "squirrel-beyond-1200ms-%")
	}
}

// BenchmarkFig5TransferDistanceDistribution regenerates Fig. 5: the
// transfer-distance distributions.
func BenchmarkFig5TransferDistanceDistribution(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		f, s, err := RunComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.MeanTransferMs, "flower-transfer-ms")
		b.ReportMetric(s.MeanTransferMs, "squirrel-transfer-ms")
		b.ReportMetric(100*f.TransferWithin100ms, "flower-within-100ms-%")
		b.ReportMetric(100*s.TransferWithin100ms, "squirrel-within-100ms-%")
	}
}

// BenchmarkTable2Scalability regenerates Table 2: the population sweep
// with both protocols. It reports the largest-population improvement
// factors (the paper's headline scalability claim) plus the memory
// trajectory the big-cell path budgets against: live-heap bytes/node at
// the largest population and mean allocations per query over the whole
// sweep.
func BenchmarkTable2Scalability(b *testing.B) {
	cfg := benchConfig()
	cfg.Hours = 4
	cfg.MeasureMem = true
	pops := []int{150, 250, 350}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		var before goruntime.MemStats
		goruntime.ReadMemStats(&before)
		rows, err := RunScalability(cfg, pops)
		if err != nil {
			b.Fatal(err)
		}
		var after goruntime.MemStats
		goruntime.ReadMemStats(&after)
		last := rows[len(rows)-1]
		if last.Flower.MeanLookupMs > 0 {
			b.ReportMetric(last.Squirrel.MeanLookupMs/last.Flower.MeanLookupMs, "lookup-factor")
		}
		if last.Flower.MeanTransferMs > 0 {
			b.ReportMetric(last.Squirrel.MeanTransferMs/last.Flower.MeanTransferMs, "transfer-factor")
		}
		b.ReportMetric(last.Flower.TailHitRatio, "flower-hit-largest-P")
		if last.Flower.MemStats != nil {
			b.ReportMetric(last.Flower.MemStats.BytesPerNode, "bytes/node")
		}
		var queries uint64
		for _, r := range rows {
			queries += r.Flower.Queries + r.Squirrel.Queries
		}
		if queries > 0 {
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(queries), "allocs/query")
		}
	}
}

// bigCellBudgetBytes is the per-node live-heap budget the big-cell
// scale path holds: a 100k-node cell must fit one process in ≤4 KiB of
// steady-state heap per node (≈400 MiB for the whole cell).
const bigCellBudgetBytes = 4096

// BenchmarkBigCell runs the big-cell scale path: one process hosting a
// P=100k flower cell on the sim backend over a short horizon, reporting
// live-heap bytes/node (forced-GC heap over population) and failing the
// benchmark if the footprint leaves the 4 KiB/node budget. Excluded
// from race builds — the detector's shadow memory would both blow the
// budget it measures and dominate the run time.
func BenchmarkBigCell(b *testing.B) {
	if raceEnabled {
		b.Skip("100k-node cell skipped under the race detector")
	}
	cfg := benchConfig()
	cfg.Population = 100000
	cfg.Hours = 1
	cfg.MeasureMem = true
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.MemStats == nil {
			b.Fatal("MeasureMem set but no MemStats in result")
		}
		b.ReportMetric(res.MemStats.BytesPerNode, "bytes/node")
		b.ReportMetric(res.TailHitRatio, "hit")
		if res.MemStats.BytesPerNode > bigCellBudgetBytes {
			b.Errorf("big cell over budget: %.0f B/node live heap (budget %d)",
				res.MemStats.BytesPerNode, bigCellBudgetBytes)
		}
	}
}

// BenchmarkPetalUpFlashCrowd regenerates the extension experiment: the
// per-directory load bound under a flash crowd (Sec. 4's qualitative
// claim, measured).
func BenchmarkPetalUpFlashCrowd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		up := benchConfig()
		up.Protocol = PetalUp
		up.PetalUpLoadLimit = 10
		up.Seed = uint64(i + 1)
		upRes, err := Run(up)
		if err != nil {
			b.Fatal(err)
		}
		cl := benchConfig()
		cl.Seed = uint64(i + 1)
		clRes, err := Run(cl)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(upRes.TailHitRatio, "petalup-hit")
		b.ReportMetric(clRes.TailHitRatio, "classic-hit")
	}
	// The per-instance load inspection itself is exercised through
	// internal/petalup's tests; keep its API referenced here so the
	// bench file documents the entry point.
	_ = petalup.DefaultFlashCrowd
}

// BenchmarkAblationGossipPeriod sweeps the gossip/keepalive period —
// the paper calibrates it at 1 hour; this quantifies what faster
// dissemination buys.
func BenchmarkAblationGossipPeriod(b *testing.B) {
	for _, minutes := range []int{15, 60, 120} {
		minutes := minutes
		b.Run(benchName("gossip", minutes, "min"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.GossipEveryMinutes = minutes
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TailHitRatio, "hit")
				b.ReportMetric(res.MeanLookupMs, "lookup-ms")
			}
		})
	}
}

// BenchmarkAblationPushThreshold sweeps the push threshold (Table 1:
// 0.5): lower thresholds keep directory indexes fresher at the cost of
// more push traffic.
func BenchmarkAblationPushThreshold(b *testing.B) {
	for _, th := range []float64{0.25, 0.5, 0.9} {
		th := th
		b.Run(benchName("push", int(th*100), "pct"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.PushThreshold = th
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TailHitRatio, "hit")
			}
		})
	}
}

// BenchmarkAblationCollaboration toggles same-website directory
// collaboration (Sec. 3.2) — the mechanism that widens a query's reach
// from one petal to the whole website.
func BenchmarkAblationCollaboration(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run("collab-"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.DirCollaboration = on
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TailHitRatio, "hit")
			}
		})
	}
}

// BenchmarkAblationSummaries contrasts Bloom summaries against exact
// key sets in petal gossip.
func BenchmarkAblationSummaries(b *testing.B) {
	for _, exact := range []bool{false, true} {
		exact := exact
		name := "bloom"
		if exact {
			name = "exact"
		}
		b.Run("summaries-"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.ExactSummaries = exact
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TailHitRatio, "hit")
			}
		})
	}
}

// BenchmarkAblationLocalities sweeps k, the number of landmark
// localities: more localities mean tighter petals but thinner caches.
func BenchmarkAblationLocalities(b *testing.B) {
	for _, k := range []int{2, 6, 10} {
		k := k
		b.Run(benchName("k", k, ""), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Localities = k
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TailHitRatio, "hit")
				b.ReportMetric(res.MeanTransferMs, "transfer-ms")
			}
		})
	}
}

// BenchmarkAblationMessageLoss injects random one-way message loss —
// the failure-injection knob beyond churn. The confirm-before-replace
// maintenance probe is what keeps the curve flat-ish.
func BenchmarkAblationMessageLoss(b *testing.B) {
	for _, loss := range []float64{0, 0.02, 0.05} {
		loss := loss
		b.Run(benchName("loss", int(loss*100), "pct"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.MessageLossRate = loss
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TailHitRatio, "hit")
			}
		})
	}
}

// BenchmarkBaselineBracket runs the reference baselines the pluggable
// runtime added: origin-only (the floor), chord-global (directory
// caching without locality) and koorde-global (the same directory over
// de Bruijn routing). Their headline hit ratios — and the two overlays'
// mean lookup hop counts — are reported so the trajectory files track
// both the comparison's bracket and the routing-geometry gap.
func BenchmarkBaselineBracket(b *testing.B) {
	for i := 0; i < b.N; i++ {
		og := benchConfig()
		og.Protocol = OriginOnly
		og.Seed = uint64(i + 1)
		ogRes, err := Run(og)
		if err != nil {
			b.Fatal(err)
		}
		cg := benchConfig()
		cg.Protocol = ChordGlobal
		cg.Seed = uint64(i + 1)
		cgRes, err := Run(cg)
		if err != nil {
			b.Fatal(err)
		}
		kg := benchConfig()
		kg.Protocol = KoordeGlobal
		kg.Seed = uint64(i + 1)
		kgRes, err := Run(kg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ogRes.TailHitRatio, "origin-hit")
		b.ReportMetric(cgRes.TailHitRatio, "chord-global-hit")
		b.ReportMetric(cgRes.MeanTransferMs, "chord-global-transfer-ms")
		b.ReportMetric(kgRes.TailHitRatio, "koorde-global-hit")
		b.ReportMetric(cgRes.MeanHops, "chord-global-hops")
		b.ReportMetric(kgRes.MeanHops, "koorde-global-hops")
	}
}

// BenchmarkTraceOverhead runs the same cell with tracing off and on.
// The untraced leg is the zero-overhead contract's run-scale view (the
// nil-tracer fast path; its alloc-free guarantee is pinned exactly by
// internal/trace's AllocsPerRun test), the traced leg prices what
// -trace-csv/-trace actually costs, and the pair in the trajectory
// file keeps that price visible across PRs.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		traced := traced
		name := "untraced"
		if traced {
			name = "traced"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Trace = traced
				cfg.Seed = uint64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if traced != (len(res.Traces()) > 0) {
					b.Fatalf("traced=%v but %d trace records", traced, len(res.Traces()))
				}
				b.ReportMetric(float64(len(res.Traces())), "trace-records")
				b.ReportMetric(res.TailHitRatio, "hit")
			}
		})
	}
}

// BenchmarkEngineThroughput measures the raw discrete-event engine —
// the substrate every experiment's cost reduces to. The engine's
// allocation work (slab timers, reused periodic timers, pre-sized
// heap) is measured in detail by internal/sim's benchmarks; this one
// tracks the end-to-end schedule+run cost (0 allocs/op steady-state).
func BenchmarkEngineThroughput(b *testing.B) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(rng.Int63n(1000), func() {})
		if i%1024 == 1023 {
			eng.Run(eng.Now() + 1000)
		}
	}
	eng.RunAll()
}

func benchName(prefix string, v int, unit string) string {
	return fmt.Sprintf("%s-%d%s", prefix, v, unit)
}
