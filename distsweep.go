package flowercdn

import (
	"time"

	"flowercdn/internal/distsweep"
)

// DistSweepOptions configures the coordinator side of a distributed
// sweep (DistSweepCoordinator).
type DistSweepOptions struct {
	// Listen is the TCP address workers dial; ":0" or "127.0.0.1:0"
	// binds an ephemeral port, reported through OnListen.
	Listen string
	// OutDir holds the per-cell result record files that make the sweep
	// resumable: a restarted coordinator pointed at the same directory
	// skips every already-completed (cell, seed) job. Required.
	OutDir string
	// Codec names the wire codec ("binary" by default); workers must use
	// the same.
	Codec string
	// Lease is the per-job liveness deadline — a worker silent this long
	// forfeits its job to reassignment (2 minutes by default).
	Lease time.Duration
	// OnListen, when set, receives the bound listen address before the
	// coordinator blocks — the hook process spawners use to hand workers
	// the actual port behind ":0".
	OnListen func(addr string)
	// OnEvent, when set, receives one-line progress events (worker
	// connects, job completions, lease reassignments). It may be called
	// from multiple goroutines and must not block.
	OnEvent func(string)
}

// DistSweepWorkerOptions configures one worker process
// (DistSweepWorker).
type DistSweepWorkerOptions struct {
	// Coordinator is the coordinator's dial address.
	Coordinator string
	// Codec must match the coordinator's wire codec ("binary" default).
	Codec string
	// Name labels the worker in coordinator events ("worker-<pid>" by
	// default).
	Name string
	// OnEvent, when set, receives one-line progress events.
	OnEvent func(string)
}

// DistSweepCoordinator runs the coordinator side of a distributed
// sweep: it shards the (cell, seed) jobs of the given grid over however
// many DistSweepWorker processes connect, persists completed results
// under OutDir, and aggregates exactly as Sweep does — the returned
// aggregates are bit-identical to an in-process Sweep of the same cells
// and seeds, at any worker count, including across worker loss and
// coordinator restarts.
//
// Workers must be handed the identical cells and seeds (in practice:
// the same CLI flags on the same binary); the connection handshake
// verifies a spec fingerprint and refuses drifted workers.
func DistSweepCoordinator(cells []SweepCell, seeds []uint64, opts DistSweepOptions) (*SweepResult, error) {
	spec, err := lowerSpec(cells, seeds, 0)
	if err != nil {
		return nil, err
	}
	coord, err := distsweep.StartCoordinator(distsweep.CoordinatorConfig{
		Listen:  opts.Listen,
		Spec:    spec,
		OutDir:  opts.OutDir,
		Codec:   opts.Codec,
		Lease:   opts.Lease,
		OnEvent: opts.OnEvent,
	})
	if err != nil {
		return nil, err
	}
	if opts.OnListen != nil {
		opts.OnListen(coord.Addr())
	}
	res, werr := coord.Wait()
	if cerr := coord.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	if werr != nil {
		return nil, werr
	}
	return wrapSweep(res), nil
}

// DistSweepWorker runs one worker process against a coordinator: it
// pulls (cell, seed) jobs, simulates each locally, and streams results
// back until the coordinator reports the sweep complete. The cells and
// seeds must be the ones the coordinator was started with.
func DistSweepWorker(cells []SweepCell, seeds []uint64, opts DistSweepWorkerOptions) error {
	spec, err := lowerSpec(cells, seeds, 0)
	if err != nil {
		return err
	}
	return distsweep.RunWorker(distsweep.WorkerConfig{
		Coordinator: opts.Coordinator,
		Spec:        spec,
		Codec:       opts.Codec,
		Name:        opts.Name,
		OnEvent:     opts.OnEvent,
	})
}
