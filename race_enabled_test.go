//go:build race

package flowercdn

// raceEnabled reports whether the test binary was built with the race
// detector. The 100k-node big-cell benchmark skips itself under race:
// the detector's per-allocation shadow memory multiplies the cell's
// footprint and run time far past CI budgets, and the benchmark's
// subject (bytes/node) is meaningless with shadow overhead included.
const raceEnabled = true
