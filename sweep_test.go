package flowercdn

import (
	"strings"
	"testing"
)

// sweepTiny is a CI-sized cell so grids finish in seconds.
func sweepTiny() Config {
	cfg := tiny()
	cfg.Population = 100
	cfg.Hours = 2
	cfg.Sites = 8
	cfg.ObjectsPerSite = 50
	return cfg
}

func TestSeedSet(t *testing.T) {
	got := SeedSet(5, 3)
	if len(got) != 3 || got[0] != 5 || got[1] != 6 || got[2] != 7 {
		t.Fatalf("SeedSet(5, 3) = %v", got)
	}
	if got := SeedSet(1, 0); len(got) != 0 {
		t.Fatalf("SeedSet(1, 0) = %v", got)
	}
}

func TestGridExpansion(t *testing.T) {
	g := Grid{
		Base:        sweepTiny(),
		Protocols:   []Protocol{Flower, Squirrel},
		Populations: []int{100, 200, 300},
	}
	cells := g.Cells()
	if len(cells) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}
	// Protocol-major order, names encode only varying axes.
	if cells[0].Name != "flower/P=100" || cells[5].Name != "squirrel/P=300" {
		t.Fatalf("names: %q ... %q", cells[0].Name, cells[5].Name)
	}
	if cells[4].Config.Protocol != Squirrel || cells[4].Config.Population != 200 {
		t.Fatalf("cell 4 config: %+v", cells[4].Config)
	}
	// Axes left nil inherit the base.
	if cells[0].Config.MeanUptimeMinutes != g.Base.MeanUptimeMinutes {
		t.Fatal("nil axis did not inherit base")
	}

	// A single-valued axis keeps names bare.
	solo := Grid{Base: sweepTiny()}.Cells()
	if len(solo) != 1 || solo[0].Name != "flower" {
		t.Fatalf("solo grid: %+v", solo)
	}
}

func TestSweepFacade(t *testing.T) {
	g := Grid{Base: sweepTiny(), Protocols: []Protocol{Flower, Squirrel}}
	seeds := SeedSet(1, 3)
	res, err := Sweep(g.Cells(), seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRuns != 6 || len(res.Cells) != 2 {
		t.Fatalf("runs=%d cells=%d", res.TotalRuns, len(res.Cells))
	}
	fl := res.Cells[0]
	if fl.Protocol != Flower || fl.HitRatio.N != 3 || len(fl.Runs) != 3 {
		t.Fatalf("flower cell: %+v", fl)
	}
	if fl.HitRatio.Mean <= 0 {
		t.Fatal("flower hit ratio zero")
	}
	// Façade Runs are fully wrapped results.
	if fl.Runs[0].Queries == 0 || len(fl.Runs[0].Series) == 0 {
		t.Fatal("wrapped run empty")
	}
	if !strings.Contains(res.Table(), "flower") || !strings.Contains(res.CSV(), "hit_mean") {
		t.Fatal("table/CSV render broken")
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	g := Grid{Base: sweepTiny(), Protocols: []Protocol{Flower, Squirrel}}
	seeds := SeedSet(1, 3)
	a, err := Sweep(g.Cells(), seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(g.Cells(), seeds, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Fatalf("CSV differs between worker counts:\n%s\nvs\n%s", a.CSV(), b.CSV())
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	if _, err := Sweep(nil, SeedSet(1, 2), 1); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := Sweep(Grid{Base: sweepTiny()}.Cells(), nil, 1); err == nil {
		t.Fatal("empty seed set accepted")
	}
	bad := sweepTiny()
	bad.Protocol = "gopherswarm"
	if _, err := Sweep([]SweepCell{{Name: "x", Config: bad}}, SeedSet(1, 1), 1); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

func TestScenarios(t *testing.T) {
	base := sweepTiny()

	same, err := ApplyScenario(base, ScenarioTable1)
	if err != nil || same != base {
		t.Fatalf("table1 changed config: %v %+v", err, same)
	}

	fc, err := ApplyScenario(base, ScenarioFlashCrowd)
	if err != nil {
		t.Fatal(err)
	}
	if fc.ActiveSites != 1 || fc.QueryEveryMinutes >= base.QueryEveryMinutes {
		t.Fatalf("flash crowd preset wrong: %+v", fc)
	}

	ls, err := ApplyScenario(base, ScenarioLocalitySkew)
	if err != nil {
		t.Fatal(err)
	}
	if ls.LocalitySkew <= 0 {
		t.Fatalf("locality skew preset wrong: %+v", ls)
	}

	if _, err := ApplyScenario(base, "heat-death"); err == nil {
		t.Fatal("unknown scenario accepted")
	}

	// Every listed scenario must apply cleanly and produce a runnable
	// config.
	for _, s := range Scenarios() {
		cfg, err := ApplyScenario(base, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if _, err := cfg.lower(); err != nil {
			t.Fatalf("%s: lower: %v", s, err)
		}
	}
}

func TestScenarioRunsEndToEnd(t *testing.T) {
	for _, s := range []Scenario{ScenarioFlashCrowd, ScenarioLocalitySkew} {
		cfg, err := ApplyScenario(sweepTiny(), s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Queries == 0 {
			t.Fatalf("%s: no queries", s)
		}
	}
}

func TestCapacityGridExpansion(t *testing.T) {
	g := Grid{
		Base:            sweepTiny(),
		CacheCapacities: []int{8, 32, 0},
	}
	cells := g.Cells()
	if len(cells) != 3 {
		t.Fatalf("expanded %d cells, want 3", len(cells))
	}
	if cells[0].Name != "flower/cap=8" || cells[2].Name != "flower/cap=inf" {
		t.Fatalf("names: %q ... %q", cells[0].Name, cells[2].Name)
	}
	// Bounded cells default to LRU when the base is unbounded; the 0
	// entry is the unbounded reference cell.
	if cells[0].Config.CachePolicy != "lru" || cells[0].Config.CacheCapacity != 8 {
		t.Fatalf("bounded cell config: %+v", cells[0].Config)
	}
	if cells[2].Config.CachePolicy != "none" || cells[2].Config.CacheCapacity != 0 {
		t.Fatalf("unbounded cell config: %+v", cells[2].Config)
	}
	// A base policy survives the axis.
	base := sweepTiny()
	base.CachePolicy = "lfu"
	lfu := Grid{Base: base, CacheCapacities: []int{8}}.Cells()
	if lfu[0].Config.CachePolicy != "lfu" {
		t.Fatalf("base policy overridden: %+v", lfu[0].Config)
	}
	// Every expanded cell must lower and validate.
	for _, c := range cells {
		if _, err := c.Config.lower(); err != nil {
			t.Fatalf("cell %q: %v", c.Name, err)
		}
	}
}

func TestCachePressureScenario(t *testing.T) {
	cfg, err := ApplyScenario(sweepTiny(), ScenarioCachePressure)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CachePolicy != "lru" || cfg.CacheCapacity <= 0 {
		t.Fatalf("cache-pressure preset wrong: policy %q capacity %d", cfg.CachePolicy, cfg.CacheCapacity)
	}
	// An explicit policy/capacity survives the preset.
	base := sweepTiny()
	base.CachePolicy = "size-aware"
	base.CacheCapacity = 99
	kept, err := ApplyScenario(base, ScenarioCachePressure)
	if err != nil {
		t.Fatal(err)
	}
	if kept.CachePolicy != "size-aware" || kept.CacheCapacity != 99 {
		t.Fatalf("preset clobbered explicit cache settings: %+v", kept)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("cache-pressure run produced no queries")
	}
}

// TestCapacitySweepKnee is the façade-level acceptance check behind
// `flowerbench -grid capacity -scenario cache-pressure`: over a small
// capacity grid the flower hit ratio must degrade monotonically as
// capacity shrinks, with the unbounded reference on top.
func TestCapacitySweepKnee(t *testing.T) {
	base, err := ApplyScenario(sweepTiny(), ScenarioCachePressure)
	if err != nil {
		t.Fatal(err)
	}
	cells := Grid{Base: base, CacheCapacities: []int{4, 24, 0}}.Cells()
	res, err := Sweep(cells, SeedSet(1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	small, medium, unbounded := res.Cells[0], res.Cells[1], res.Cells[2]
	t.Logf("hit ratio: cap4 %.3f, cap24 %.3f, inf %.3f",
		small.HitRatio.Mean, medium.HitRatio.Mean, unbounded.HitRatio.Mean)
	if small.HitRatio.Mean > medium.HitRatio.Mean || medium.HitRatio.Mean > unbounded.HitRatio.Mean {
		t.Fatalf("hit ratio not monotone in capacity: %.3f / %.3f / %.3f",
			small.HitRatio.Mean, medium.HitRatio.Mean, unbounded.HitRatio.Mean)
	}
}
