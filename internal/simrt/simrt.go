// Package simrt is the deterministic reference backend: it bundles the
// discrete-event engine (internal/sim) and the simulated message layer
// (internal/simnet) behind the backend-agnostic internal/runtime seam.
// It registers itself as the "sim" backend; runs on it are bit-for-bit
// reproducible for a given seed, which is what every determinism test
// and the paper-reproduction sweeps rely on.
package simrt

import (
	"flowercdn/internal/runtime"
	"flowercdn/internal/sim"
	"flowercdn/internal/simnet"
	"flowercdn/internal/topology"
)

func init() {
	runtime.RegisterBackend("sim", func(cfg runtime.BackendConfig) (runtime.Runtime, error) {
		rt := New(cfg.Topo)
		if cfg.LossRate > 0 {
			rt.net.SetLossRate(cfg.LossRate, cfg.LossRNG)
		}
		return rt, nil
	})
}

// Runtime implements runtime.Runtime over a fresh engine and network.
// Tests that need engine-level control (RunAll, event counts) use the
// concrete type; everything above the seam sees only the interface.
type Runtime struct {
	eng *sim.Engine
	net *simnet.Network
}

// New builds the deterministic backend over the given topology.
func New(topo *topology.Topology) *Runtime {
	eng := sim.NewEngine()
	return &Runtime{eng: eng, net: simnet.New(eng.Clock(), topo)}
}

// Clock returns the engine viewed through the Clock seam.
func (r *Runtime) Clock() runtime.Clock { return r.eng.Clock() }

// Net returns the simulated message layer viewed through the Transport
// seam.
func (r *Runtime) Net() runtime.Transport { return r.net }

// Run executes events until the virtual clock passes `until` or the
// queue drains, at full speed; it returns the events processed.
func (r *Runtime) Run(until int64) uint64 { return r.eng.Run(until) }

// RunAll executes events until the queue is empty — test-only engine
// control (periodic timers never drain; use Run with a horizon then).
func (r *Runtime) RunAll() uint64 { return r.eng.RunAll() }

// Engine exposes the underlying engine for engine-level assertions.
func (r *Runtime) Engine() *sim.Engine { return r.eng }

// Now, Schedule, At and Every delegate to the clock — conveniences so
// fixtures can drive a deterministic world through one handle.
func (r *Runtime) Now() int64 { return r.eng.Now() }

// Schedule runs fn after delay simulated milliseconds.
func (r *Runtime) Schedule(delay int64, fn func()) runtime.Timer { return r.eng.Schedule(delay, fn) }

// At runs fn at absolute simulated time t.
func (r *Runtime) At(t int64, fn func()) runtime.Timer { return r.eng.At(t, fn) }

// Every schedules fn every period simulated milliseconds.
func (r *Runtime) Every(firstDelay, period int64, fn func()) runtime.Ticker {
	return r.eng.Every(firstDelay, period, fn)
}

// Network exposes the concrete network (loss injection, etc.).
func (r *Runtime) Network() *simnet.Network { return r.net }
