// Package gossip implements the petal membership protocol: a
// Cyclon-inspired (Voulgaris et al. [17]) age-based partial-view
// shuffle. Content peers of a petal "periodically exchange contacts
// (addresses of other known content peers) and summaries of their
// stored content" (paper Sec. 3.1); those summaries — and Flower-CDN's
// dir-info records — ride along as opaque per-contact metadata.
//
// Deviations from strict Cyclon, matching the paper's description:
//
//   - the view is unbounded by default ("we do not limit the view size
//     of a content peer and allow it to grow with the size of its
//     petal"); it is bounded naturally because a contact found
//     unavailable during a shuffle is removed;
//   - a successful shuffle resets the target's age to zero instead of
//     rotating it out, since the exchange just proved it alive.
package gossip

import (
	"errors"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"
)

// Entry is one contact in a peer's partial view.
type Entry struct {
	// Peer is the contact's network address.
	Peer runtime.NodeID
	// Age counts gossip periods since this contact was last known
	// fresh; higher is staler.
	Age int
	// Meta is application state describing the contact (for Flower-CDN:
	// its content summary and dir-info). It is shipped verbatim in
	// shuffles.
	Meta any
}

// Config tunes the protocol.
type Config struct {
	// Period between shuffles initiated by this peer (Table 1: 1 hour).
	Period int64
	// ShuffleSize bounds the number of contacts shipped per exchange.
	ShuffleSize int
	// MaxView bounds the view; 0 means unbounded (the paper's setting).
	MaxView int
	// RPCTimeout bounds a shuffle exchange; a timeout evicts the target.
	RPCTimeout int64
}

// DefaultConfig returns the paper's gossip parameters.
func DefaultConfig() Config {
	return Config{
		Period:      1 * runtime.Hour,
		ShuffleSize: 6,
		MaxView:     0,
		RPCTimeout:  4 * runtime.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return errors.New("gossip: period must be positive")
	}
	if c.ShuffleSize < 1 {
		return errors.New("gossip: shuffle size must be at least 1")
	}
	if c.MaxView < 0 {
		return errors.New("gossip: negative max view")
	}
	if c.RPCTimeout <= 0 {
		return errors.New("gossip: rpc timeout must be positive")
	}
	return nil
}

// App is the protocol's hook into the owning peer.
type App interface {
	// SelfDescriptor returns the metadata describing this peer that
	// shuffles ship to others (content summary + dir-info).
	SelfDescriptor() any
	// OnExchange runs after entries arrive from peer (both at the
	// initiator, with the response, and at the responder, with the
	// request). The application inspects metadata for its own
	// side-protocols before/independently of the view merge.
	OnExchange(peer runtime.NodeID, received []Entry)
	// OnContactDead runs when a shuffle target timed out and was
	// evicted from the view.
	OnContactDead(peer runtime.NodeID)
}

func init() {
	// Shuffle exchanges cross process boundaries on the socket backend.
	runtime.RegisterWireType(shuffleReq{}, shuffleResp{})
}

// shuffleReq/shuffleResp are the exchange RPC.
type shuffleReq struct {
	From    runtime.NodeID
	Entries []Entry
}

type shuffleResp struct {
	Entries []Entry
}

// WireBytes estimates shuffle traffic: contacts are small, but metadata
// (Bloom summaries) dominates.
func (r shuffleReq) WireBytes() int  { return 32 + len(r.Entries)*192 }
func (r shuffleResp) WireBytes() int { return 16 + len(r.Entries)*192 }

// Protocol is one peer's gossip state. Like everything in the
// simulation it is single-goroutine.
type Protocol struct {
	cfg Config
	net runtime.Transport
	eng runtime.Clock
	rng *rnd.RNG
	me  runtime.NodeID
	app App

	// view holds the contacts in insertion order — the deterministic
	// iteration order everything below relies on — and idx maps a peer
	// to its position in it. One flat slice instead of an order slice
	// plus a map of individually-allocated entries: views grow with
	// petal size, and at 100k-node populations the per-entry pointer
	// and bucket overhead is most of a peer's footprint.
	view []Entry
	idx  map[runtime.NodeID]int32

	timer   runtime.Ticker
	stopped bool

	shuffles  uint64
	evictions uint64
}

// New builds the protocol for the peer at me.
func New(cfg Config, net runtime.Transport, rng *rnd.RNG, me runtime.NodeID, app App) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if app == nil {
		return nil, errors.New("gossip: nil app")
	}
	return &Protocol{
		cfg: cfg,
		net: net,
		eng: net.Clock(),
		rng: rng,
		me:  me,
		app: app,
		idx: make(map[runtime.NodeID]int32),
	}, nil
}

// Start schedules periodic shuffles, de-phased by a random offset so
// petal members do not fire in lockstep.
func (g *Protocol) Start() {
	if g.timer != nil {
		return
	}
	g.timer = g.eng.Every(g.rng.UniformDuration(0, g.cfg.Period), g.cfg.Period, g.Tick)
}

// Stop cancels periodic shuffles.
func (g *Protocol) Stop() {
	g.stopped = true
	if g.timer != nil {
		g.timer.Cancel()
	}
}

// Size returns the current view size.
func (g *Protocol) Size() int { return len(g.view) }

// Contains reports whether peer is in the view.
func (g *Protocol) Contains(peer runtime.NodeID) bool {
	_, ok := g.idx[peer]
	return ok
}

// Entries returns a copy of the view in insertion order.
func (g *Protocol) Entries() []Entry {
	out := make([]Entry, len(g.view))
	copy(out, g.view)
	return out
}

// View returns the live view in insertion order, valid until the next
// protocol call. Read-only: callers must neither mutate nor retain it.
// This is the allocation-free variant of Entries for per-query scans.
func (g *Protocol) View() []Entry { return g.view }

// Meta returns the stored metadata for peer, or nil.
func (g *Protocol) Meta(peer runtime.NodeID) any {
	if i, ok := g.idx[peer]; ok {
		return g.view[i].Meta
	}
	return nil
}

// Shuffles returns how many exchanges this peer initiated.
func (g *Protocol) Shuffles() uint64 { return g.shuffles }

// Evictions returns how many contacts were evicted as dead.
func (g *Protocol) Evictions() uint64 { return g.evictions }

// AddContact inserts or refreshes a contact with age 0. Inserting
// oneself is ignored.
func (g *Protocol) AddContact(peer runtime.NodeID, meta any) {
	g.insert(Entry{Peer: peer, Age: 0, Meta: meta})
}

// UpdateMeta replaces the metadata of an existing contact; unknown
// peers are ignored (use AddContact to insert).
func (g *Protocol) UpdateMeta(peer runtime.NodeID, meta any) {
	if i, ok := g.idx[peer]; ok {
		g.view[i].Meta = meta
	}
}

// removeAt deletes the view entry at position i, preserving insertion
// order (in place: shift the tail and re-index it).
func (g *Protocol) removeAt(i int) {
	delete(g.idx, g.view[i].Peer)
	copy(g.view[i:], g.view[i+1:])
	g.view[len(g.view)-1] = Entry{} // release the Meta reference
	g.view = g.view[:len(g.view)-1]
	for j := i; j < len(g.view); j++ {
		g.idx[g.view[j].Peer] = int32(j)
	}
}

// RemoveContact drops a contact (e.g. the application learned it died
// through another channel).
func (g *Protocol) RemoveContact(peer runtime.NodeID) {
	if i, ok := g.idx[peer]; ok {
		g.removeAt(int(i))
	}
}

// insert merges one entry: unknown peers are appended (evicting the
// oldest entry if MaxView is exceeded); known peers keep whichever copy
// is younger.
func (g *Protocol) insert(e Entry) {
	if e.Peer == g.me || e.Peer == runtime.None {
		return
	}
	if i, ok := g.idx[e.Peer]; ok {
		cur := &g.view[i]
		if e.Age <= cur.Age {
			cur.Age = e.Age
			if e.Meta != nil {
				cur.Meta = e.Meta
			}
		}
		return
	}
	if g.cfg.MaxView > 0 && len(g.view) >= g.cfg.MaxView {
		g.evictOldest()
	}
	g.idx[e.Peer] = int32(len(g.view))
	g.view = append(g.view, e)
}

func (g *Protocol) evictOldest() {
	if len(g.view) == 0 {
		return
	}
	idx := 0
	for i := range g.view {
		if g.view[i].Age > g.view[idx].Age {
			idx = i
		}
	}
	g.removeAt(idx)
}

// Tick runs one gossip round: age the view, pick the oldest contact,
// and exchange samples with it. Exposed so tests and protocols can
// force a round.
func (g *Protocol) Tick() {
	if g.stopped || len(g.view) == 0 {
		return
	}
	for i := range g.view {
		g.view[i].Age++
	}
	target := g.oldest()
	sample := g.sample(target, true)
	g.shuffles++
	g.net.Request(g.me, target, shuffleReq{From: g.me, Entries: sample}, g.cfg.RPCTimeout,
		func(resp any, err error) {
			if g.stopped {
				return
			}
			if err != nil {
				g.evictions++
				g.RemoveContact(target)
				g.app.OnContactDead(target)
				return
			}
			sr := resp.(shuffleResp)
			g.app.OnExchange(target, sr.Entries)
			for _, e := range sr.Entries {
				g.insert(e)
			}
			if i, ok := g.idx[target]; ok {
				g.view[i].Age = 0 // exchange proved it alive
			}
		})
}

func (g *Protocol) oldest() runtime.NodeID {
	best := 0
	for i := range g.view[1:] {
		if g.view[i+1].Age > g.view[best].Age {
			best = i + 1
		}
	}
	return g.view[best].Peer
}

// sample draws up to ShuffleSize entries: our own fresh descriptor plus
// random view entries, excluding the exchange partner.
func (g *Protocol) sample(exclude runtime.NodeID, includeSelf bool) []Entry {
	out := make([]Entry, 0, g.cfg.ShuffleSize)
	if includeSelf {
		out = append(out, Entry{Peer: g.me, Age: 0, Meta: g.app.SelfDescriptor()})
	}
	perm := g.rng.Perm(len(g.view))
	for _, i := range perm {
		if len(out) >= g.cfg.ShuffleSize {
			break
		}
		if g.view[i].Peer == exclude {
			continue
		}
		out = append(out, g.view[i])
	}
	return out
}

// HandleRequest consumes shuffle RPCs. handled reports whether the
// request belonged to gossip.
func (g *Protocol) HandleRequest(from runtime.NodeID, req any) (resp any, err error, handled bool) {
	r, ok := req.(shuffleReq)
	if !ok {
		return nil, nil, false
	}
	if g.stopped {
		return nil, fmt.Errorf("gossip: peer stopped"), true
	}
	reply := shuffleResp{Entries: g.sample(r.From, true)}
	g.app.OnExchange(r.From, r.Entries)
	for _, e := range r.Entries {
		g.insert(e)
	}
	return reply, nil, true
}
