// Package gossip implements the petal membership protocol: a
// Cyclon-inspired (Voulgaris et al. [17]) age-based partial-view
// shuffle. Content peers of a petal "periodically exchange contacts
// (addresses of other known content peers) and summaries of their
// stored content" (paper Sec. 3.1); those summaries — and Flower-CDN's
// dir-info records — ride along as opaque per-contact metadata.
//
// Deviations from strict Cyclon, matching the paper's description:
//
//   - the view is unbounded by default ("we do not limit the view size
//     of a content peer and allow it to grow with the size of its
//     petal"); it is bounded naturally because a contact found
//     unavailable during a shuffle is removed;
//   - a successful shuffle resets the target's age to zero instead of
//     rotating it out, since the exchange just proved it alive.
package gossip

import (
	"errors"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"
)

// Entry is one contact in a peer's partial view.
type Entry struct {
	// Peer is the contact's network address.
	Peer runtime.NodeID
	// Age counts gossip periods since this contact was last known
	// fresh; higher is staler.
	Age int
	// Meta is application state describing the contact (for Flower-CDN:
	// its content summary and dir-info). It is shipped verbatim in
	// shuffles.
	Meta any
}

// Config tunes the protocol.
type Config struct {
	// Period between shuffles initiated by this peer (Table 1: 1 hour).
	Period int64
	// ShuffleSize bounds the number of contacts shipped per exchange.
	ShuffleSize int
	// MaxView bounds the view; 0 means unbounded (the paper's setting).
	MaxView int
	// RPCTimeout bounds a shuffle exchange; a timeout evicts the target.
	RPCTimeout int64
}

// DefaultConfig returns the paper's gossip parameters.
func DefaultConfig() Config {
	return Config{
		Period:      1 * runtime.Hour,
		ShuffleSize: 6,
		MaxView:     0,
		RPCTimeout:  4 * runtime.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return errors.New("gossip: period must be positive")
	}
	if c.ShuffleSize < 1 {
		return errors.New("gossip: shuffle size must be at least 1")
	}
	if c.MaxView < 0 {
		return errors.New("gossip: negative max view")
	}
	if c.RPCTimeout <= 0 {
		return errors.New("gossip: rpc timeout must be positive")
	}
	return nil
}

// App is the protocol's hook into the owning peer.
type App interface {
	// SelfDescriptor returns the metadata describing this peer that
	// shuffles ship to others (content summary + dir-info).
	SelfDescriptor() any
	// OnExchange runs after entries arrive from peer (both at the
	// initiator, with the response, and at the responder, with the
	// request). The application inspects metadata for its own
	// side-protocols before/independently of the view merge.
	OnExchange(peer runtime.NodeID, received []Entry)
	// OnContactDead runs when a shuffle target timed out and was
	// evicted from the view.
	OnContactDead(peer runtime.NodeID)
}

func init() {
	// Shuffle exchanges cross process boundaries on the socket backend.
	runtime.RegisterWireType(shuffleReq{}, shuffleResp{})
}

// shuffleReq/shuffleResp are the exchange RPC.
type shuffleReq struct {
	From    runtime.NodeID
	Entries []Entry
}

type shuffleResp struct {
	Entries []Entry
}

// WireBytes estimates shuffle traffic: contacts are small, but metadata
// (Bloom summaries) dominates.
func (r shuffleReq) WireBytes() int  { return 32 + len(r.Entries)*192 }
func (r shuffleResp) WireBytes() int { return 16 + len(r.Entries)*192 }

// Protocol is one peer's gossip state. Like everything in the
// simulation it is single-goroutine.
type Protocol struct {
	cfg Config
	net runtime.Transport
	eng runtime.Clock
	rng *rnd.RNG
	me  runtime.NodeID
	app App

	order  []runtime.NodeID // deterministic iteration order
	byPeer map[runtime.NodeID]*Entry

	timer   runtime.Ticker
	stopped bool

	shuffles  uint64
	evictions uint64
}

// New builds the protocol for the peer at me.
func New(cfg Config, net runtime.Transport, rng *rnd.RNG, me runtime.NodeID, app App) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if app == nil {
		return nil, errors.New("gossip: nil app")
	}
	return &Protocol{
		cfg:    cfg,
		net:    net,
		eng:    net.Clock(),
		rng:    rng,
		me:     me,
		app:    app,
		byPeer: make(map[runtime.NodeID]*Entry),
	}, nil
}

// Start schedules periodic shuffles, de-phased by a random offset so
// petal members do not fire in lockstep.
func (g *Protocol) Start() {
	if g.timer != nil {
		return
	}
	g.timer = g.eng.Every(g.rng.UniformDuration(0, g.cfg.Period), g.cfg.Period, g.Tick)
}

// Stop cancels periodic shuffles.
func (g *Protocol) Stop() {
	g.stopped = true
	if g.timer != nil {
		g.timer.Cancel()
	}
}

// Size returns the current view size.
func (g *Protocol) Size() int { return len(g.order) }

// Contains reports whether peer is in the view.
func (g *Protocol) Contains(peer runtime.NodeID) bool {
	_, ok := g.byPeer[peer]
	return ok
}

// Entries returns a copy of the view in insertion order.
func (g *Protocol) Entries() []Entry {
	out := make([]Entry, 0, len(g.order))
	for _, p := range g.order {
		out = append(out, *g.byPeer[p])
	}
	return out
}

// Meta returns the stored metadata for peer, or nil.
func (g *Protocol) Meta(peer runtime.NodeID) any {
	if e, ok := g.byPeer[peer]; ok {
		return e.Meta
	}
	return nil
}

// Shuffles returns how many exchanges this peer initiated.
func (g *Protocol) Shuffles() uint64 { return g.shuffles }

// Evictions returns how many contacts were evicted as dead.
func (g *Protocol) Evictions() uint64 { return g.evictions }

// AddContact inserts or refreshes a contact with age 0. Inserting
// oneself is ignored.
func (g *Protocol) AddContact(peer runtime.NodeID, meta any) {
	g.insert(Entry{Peer: peer, Age: 0, Meta: meta})
}

// UpdateMeta replaces the metadata of an existing contact; unknown
// peers are ignored (use AddContact to insert).
func (g *Protocol) UpdateMeta(peer runtime.NodeID, meta any) {
	if e, ok := g.byPeer[peer]; ok {
		e.Meta = meta
	}
}

// RemoveContact drops a contact (e.g. the application learned it died
// through another channel).
func (g *Protocol) RemoveContact(peer runtime.NodeID) {
	if _, ok := g.byPeer[peer]; !ok {
		return
	}
	delete(g.byPeer, peer)
	for i, p := range g.order {
		if p == peer {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

// insert merges one entry: unknown peers are appended (evicting the
// oldest entry if MaxView is exceeded); known peers keep whichever copy
// is younger.
func (g *Protocol) insert(e Entry) {
	if e.Peer == g.me || e.Peer == runtime.None {
		return
	}
	if cur, ok := g.byPeer[e.Peer]; ok {
		if e.Age <= cur.Age {
			cur.Age = e.Age
			if e.Meta != nil {
				cur.Meta = e.Meta
			}
		}
		return
	}
	if g.cfg.MaxView > 0 && len(g.order) >= g.cfg.MaxView {
		g.evictOldest()
	}
	cp := e
	g.byPeer[e.Peer] = &cp
	g.order = append(g.order, e.Peer)
}

func (g *Protocol) evictOldest() {
	if len(g.order) == 0 {
		return
	}
	oldest, idx := g.order[0], 0
	for i, p := range g.order {
		if g.byPeer[p].Age > g.byPeer[oldest].Age {
			oldest, idx = p, i
		}
	}
	delete(g.byPeer, oldest)
	g.order = append(g.order[:idx], g.order[idx+1:]...)
}

// Tick runs one gossip round: age the view, pick the oldest contact,
// and exchange samples with it. Exposed so tests and protocols can
// force a round.
func (g *Protocol) Tick() {
	if g.stopped || len(g.order) == 0 {
		return
	}
	for _, p := range g.order {
		g.byPeer[p].Age++
	}
	target := g.oldest()
	sample := g.sample(target, true)
	g.shuffles++
	g.net.Request(g.me, target, shuffleReq{From: g.me, Entries: sample}, g.cfg.RPCTimeout,
		func(resp any, err error) {
			if g.stopped {
				return
			}
			if err != nil {
				g.evictions++
				g.RemoveContact(target)
				g.app.OnContactDead(target)
				return
			}
			sr := resp.(shuffleResp)
			g.app.OnExchange(target, sr.Entries)
			for _, e := range sr.Entries {
				g.insert(e)
			}
			if e, ok := g.byPeer[target]; ok {
				e.Age = 0 // exchange proved it alive
			}
		})
}

func (g *Protocol) oldest() runtime.NodeID {
	best := g.order[0]
	for _, p := range g.order[1:] {
		if g.byPeer[p].Age > g.byPeer[best].Age {
			best = p
		}
	}
	return best
}

// sample draws up to ShuffleSize entries: our own fresh descriptor plus
// random view entries, excluding the exchange partner.
func (g *Protocol) sample(exclude runtime.NodeID, includeSelf bool) []Entry {
	out := make([]Entry, 0, g.cfg.ShuffleSize)
	if includeSelf {
		out = append(out, Entry{Peer: g.me, Age: 0, Meta: g.app.SelfDescriptor()})
	}
	perm := g.rng.Perm(len(g.order))
	for _, i := range perm {
		if len(out) >= g.cfg.ShuffleSize {
			break
		}
		p := g.order[i]
		if p == exclude {
			continue
		}
		out = append(out, *g.byPeer[p])
	}
	return out
}

// HandleRequest consumes shuffle RPCs. handled reports whether the
// request belonged to gossip.
func (g *Protocol) HandleRequest(from runtime.NodeID, req any) (resp any, err error, handled bool) {
	r, ok := req.(shuffleReq)
	if !ok {
		return nil, nil, false
	}
	if g.stopped {
		return nil, fmt.Errorf("gossip: peer stopped"), true
	}
	reply := shuffleResp{Entries: g.sample(r.From, true)}
	g.app.OnExchange(r.From, r.Entries)
	for _, e := range r.Entries {
		g.insert(e)
	}
	return reply, nil, true
}
