package gossip

import (
	"testing"

	"flowercdn/internal/wiretest"
)

// TestWireRoundTrips covers the shuffle messages under every codec.
// Meta stays nil here — gossip does not know the application's
// metadata types; flower's wire tests shuffle entries carrying real
// ContactMeta.
func TestWireRoundTrips(t *testing.T) {
	for _, msg := range []any{
		shuffleReq{From: 4, Entries: []Entry{{Peer: 1, Age: 0}, {Peer: 9, Age: 3}}},
		shuffleReq{From: 2},
		shuffleResp{Entries: []Entry{{Peer: 5, Age: 1}}},
		shuffleResp{},
	} {
		wiretest.RoundTrip(t, msg)
	}
}
