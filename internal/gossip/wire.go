package gossip

import "flowercdn/internal/runtime"

// Binary wire marshallers for the shuffle RPC. Entry metadata is
// interface-typed (application summaries), so it rides through the
// codec's Any tagging; the entry encoding is exported because
// applications embed gossip entries in their own messages (flower's
// view seeds).

// AppendWire appends one view entry.
func (e Entry) AppendWire(w *runtime.WireWriter) {
	w.Node(e.Peer)
	w.Int(e.Age)
	w.Any(e.Meta)
}

// DecodeEntryWire reads one view entry.
func DecodeEntryWire(r *runtime.WireReader) Entry {
	var e Entry
	e.Peer = r.Node()
	e.Age = r.Int()
	e.Meta = r.Any()
	return e
}

// AppendEntriesWire appends a length-prefixed entry slice.
func AppendEntriesWire(w *runtime.WireWriter, es []Entry) {
	w.Uvarint(uint64(len(es)))
	for _, e := range es {
		e.AppendWire(w)
	}
}

// DecodeEntriesWire reads a length-prefixed entry slice (nil when
// empty). Each entry costs at least three bytes on the wire.
func DecodeEntriesWire(r *runtime.WireReader) []Entry {
	n := r.ArrayLen(3)
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]Entry, n)
	for i := range out {
		out[i] = DecodeEntryWire(r)
	}
	return out
}

func (m shuffleReq) AppendWire(w *runtime.WireWriter) {
	w.Node(m.From)
	AppendEntriesWire(w, m.Entries)
}

func (shuffleReq) DecodeWire(r *runtime.WireReader) any {
	var m shuffleReq
	m.From = r.Node()
	m.Entries = DecodeEntriesWire(r)
	return m
}

func (m shuffleResp) AppendWire(w *runtime.WireWriter) {
	AppendEntriesWire(w, m.Entries)
}

func (shuffleResp) DecodeWire(r *runtime.WireReader) any {
	return shuffleResp{Entries: DecodeEntriesWire(r)}
}
