package gossip

import (
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/simrt"
	"fmt"
	"testing"

	"flowercdn/internal/topology"
)

// gossipPeer wires a Protocol into simnet for tests.
type gossipPeer struct {
	nid       runtime.NodeID
	g         *Protocol
	desc      string
	exchanges int
	deadSeen  []runtime.NodeID
}

func (p *gossipPeer) SelfDescriptor() any { return p.desc }
func (p *gossipPeer) OnExchange(peer runtime.NodeID, received []Entry) {
	p.exchanges++
}
func (p *gossipPeer) OnContactDead(peer runtime.NodeID) {
	p.deadSeen = append(p.deadSeen, peer)
}
func (p *gossipPeer) HandleMessage(from runtime.NodeID, msg any) {}
func (p *gossipPeer) HandleRequest(from runtime.NodeID, req any) (any, error) {
	if resp, err, ok := p.g.HandleRequest(from, req); ok {
		return resp, err
	}
	return nil, fmt.Errorf("unhandled %T", req)
}

type fixture struct {
	t     *testing.T
	eng   *simrt.Runtime
	net   runtime.Transport
	rng   *rnd.RNG
	cfg   Config
	peers []*gossipPeer
}

func newFixture(t *testing.T, seed uint64) *fixture {
	t.Helper()
	rng := rnd.New(seed)
	topo := topology.MustNew(topology.DefaultConfig(), rng)
	eng := simrt.New(topo)
	cfg := DefaultConfig()
	cfg.Period = 10 * runtime.Minute // faster for tests
	return &fixture{t: t, eng: eng, net: eng.Net(), rng: rng, cfg: cfg}
}

func (f *fixture) addPeer() *gossipPeer {
	f.t.Helper()
	p := &gossipPeer{}
	p.nid = f.net.Join(p, f.net.Topology().Place(f.rng))
	p.desc = fmt.Sprintf("desc-%d", p.nid)
	g, err := New(f.cfg, f.net, f.rng.Split(fmt.Sprint(p.nid)), p.nid, p)
	if err != nil {
		f.t.Fatal(err)
	}
	p.g = g
	f.peers = append(f.peers, p)
	return p
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Period = 0 },
		func(c *Config) { c.ShuffleSize = 0 },
		func(c *Config) { c.MaxView = -1 },
		func(c *Config) { c.RPCTimeout = 0 },
	}
	for i, mut := range bads {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	f := newFixture(t, 1)
	p := f.addPeer()
	if _, err := New(f.cfg, f.net, f.rng, p.nid, nil); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestAddRemoveContains(t *testing.T) {
	f := newFixture(t, 2)
	a, b := f.addPeer(), f.addPeer()
	a.g.AddContact(b.nid, "meta-b")
	if !a.g.Contains(b.nid) || a.g.Size() != 1 {
		t.Fatal("contact not added")
	}
	if a.g.Meta(b.nid) != "meta-b" {
		t.Fatal("meta lost")
	}
	// Self-insertion ignored.
	a.g.AddContact(a.nid, "self")
	if a.g.Size() != 1 {
		t.Fatal("self contact accepted")
	}
	a.g.RemoveContact(b.nid)
	if a.g.Contains(b.nid) || a.g.Size() != 0 {
		t.Fatal("contact not removed")
	}
	a.g.RemoveContact(b.nid) // idempotent
}

func TestUpdateMeta(t *testing.T) {
	f := newFixture(t, 3)
	a, b := f.addPeer(), f.addPeer()
	a.g.UpdateMeta(b.nid, "x") // unknown: ignored
	if a.g.Contains(b.nid) {
		t.Fatal("UpdateMeta inserted a contact")
	}
	a.g.AddContact(b.nid, "old")
	a.g.UpdateMeta(b.nid, "new")
	if a.g.Meta(b.nid) != "new" {
		t.Fatal("meta not updated")
	}
}

func TestShuffleSpreadsMembership(t *testing.T) {
	f := newFixture(t, 4)
	const n = 10
	for i := 0; i < n; i++ {
		f.addPeer()
	}
	// Star seeding: everyone knows only peer 0.
	for _, p := range f.peers[1:] {
		p.g.AddContact(f.peers[0].nid, nil)
		f.peers[0].g.AddContact(p.nid, nil)
	}
	for _, p := range f.peers {
		p.g.Start()
	}
	f.eng.Run(12 * f.cfg.Period)
	// After many rounds every peer should know most of the petal.
	for i, p := range f.peers {
		if p.g.Size() < n/2 {
			t.Fatalf("peer %d view size %d, want >= %d after mixing", i, p.g.Size(), n/2)
		}
	}
}

func TestShuffleCarriesDescriptors(t *testing.T) {
	f := newFixture(t, 5)
	a, b, c := f.addPeer(), f.addPeer(), f.addPeer()
	a.g.AddContact(b.nid, nil)
	b.g.AddContact(c.nid, nil)
	// One tick from a: exchanges with b, learns c (with c's stored meta)
	// and b's fresh self-descriptor.
	a.g.Tick()
	f.eng.Run(f.eng.Now() + runtime.Minute)
	if !a.g.Contains(c.nid) {
		t.Fatal("initiator did not learn responder's contacts")
	}
	if a.g.Meta(b.nid) != b.desc {
		t.Fatalf("initiator meta for responder = %v, want fresh descriptor %q", a.g.Meta(b.nid), b.desc)
	}
	if !b.g.Contains(a.nid) {
		t.Fatal("responder did not learn initiator")
	}
	if b.g.Meta(a.nid) != a.desc {
		t.Fatalf("responder meta for initiator = %v, want %q", b.g.Meta(a.nid), a.desc)
	}
}

func TestDeadContactEvictedOnTimeout(t *testing.T) {
	f := newFixture(t, 6)
	a, b := f.addPeer(), f.addPeer()
	a.g.AddContact(b.nid, nil)
	f.net.Fail(b.nid)
	a.g.Tick()
	f.eng.Run(f.eng.Now() + 2*f.cfg.RPCTimeout + runtime.Minute)
	if a.g.Contains(b.nid) {
		t.Fatal("dead contact not evicted")
	}
	if len(a.deadSeen) != 1 || a.deadSeen[0] != b.nid {
		t.Fatalf("OnContactDead calls = %v, want [%d]", a.deadSeen, b.nid)
	}
	if a.g.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", a.g.Evictions())
	}
}

func TestViewNaturallyBoundedUnderChurn(t *testing.T) {
	// With unbounded MaxView, dead contacts are still purged as they are
	// gossiped to, so the view tracks the alive petal.
	f := newFixture(t, 7)
	const n = 12
	for i := 0; i < n; i++ {
		f.addPeer()
	}
	for _, p := range f.peers {
		for _, q := range f.peers {
			if p != q {
				p.g.AddContact(q.nid, nil)
			}
		}
		p.g.Start()
	}
	// Kill half.
	for _, p := range f.peers[:n/2] {
		p.g.Stop()
		f.net.Fail(p.nid)
	}
	f.eng.Run(f.eng.Now() + 30*f.cfg.Period)
	for _, p := range f.peers[n/2:] {
		if p.g.Size() > n-1-n/2+1 { // alive peers minus self, +1 slack
			t.Fatalf("view size %d did not shrink towards alive population", p.g.Size())
		}
	}
}

func TestMaxViewEvictsOldest(t *testing.T) {
	f := newFixture(t, 8)
	f.cfg.MaxView = 3
	p := f.addPeer()
	g, err := New(f.cfg, f.net, f.rng.Split("bounded"), p.nid, p)
	if err != nil {
		t.Fatal(err)
	}
	others := []*gossipPeer{f.addPeer(), f.addPeer(), f.addPeer(), f.addPeer()}
	// Insert with increasing ages via the merge path.
	for i, o := range others[:3] {
		g.insert(Entry{Peer: o.nid, Age: i * 2})
	}
	g.insert(Entry{Peer: others[3].nid, Age: 0})
	if g.Size() != 3 {
		t.Fatalf("size %d, want MaxView 3", g.Size())
	}
	if g.Contains(others[2].nid) {
		t.Fatal("oldest entry survived eviction")
	}
	if !g.Contains(others[3].nid) {
		t.Fatal("new entry not inserted")
	}
}

func TestMergeKeepsYoungerCopy(t *testing.T) {
	f := newFixture(t, 9)
	a, b := f.addPeer(), f.addPeer()
	a.g.insert(Entry{Peer: b.nid, Age: 5, Meta: "old"})
	a.g.insert(Entry{Peer: b.nid, Age: 2, Meta: "young"})
	e := a.g.Entries()[0]
	if e.Age != 2 || e.Meta != "young" {
		t.Fatalf("merge kept %+v, want younger copy", e)
	}
	// Older copy must not overwrite.
	a.g.insert(Entry{Peer: b.nid, Age: 9, Meta: "stale"})
	e = a.g.Entries()[0]
	if e.Age != 2 || e.Meta != "young" {
		t.Fatalf("stale copy overwrote: %+v", e)
	}
}

func TestEntriesDeterministicOrder(t *testing.T) {
	f := newFixture(t, 10)
	a := f.addPeer()
	var nids []runtime.NodeID
	for i := 0; i < 6; i++ {
		p := f.addPeer()
		nids = append(nids, p.nid)
		a.g.AddContact(p.nid, nil)
	}
	es := a.g.Entries()
	for i, e := range es {
		if e.Peer != nids[i] {
			t.Fatalf("entries not in insertion order: %v", es)
		}
	}
}

func TestStopSilencesProtocol(t *testing.T) {
	f := newFixture(t, 11)
	a, b := f.addPeer(), f.addPeer()
	a.g.AddContact(b.nid, nil)
	a.g.Start()
	a.g.Stop()
	before := a.g.Shuffles()
	f.eng.Run(20 * f.cfg.Period)
	if a.g.Shuffles() != before {
		t.Fatal("stopped protocol kept shuffling")
	}
	// Stopped responder returns an error.
	b.g.Stop()
	if _, err, handled := b.g.HandleRequest(a.nid, shuffleReq{From: a.nid}); !handled || err == nil {
		t.Fatal("stopped responder should error")
	}
}

func TestAgesIncreaseWithoutContact(t *testing.T) {
	f := newFixture(t, 12)
	a, b, c := f.addPeer(), f.addPeer(), f.addPeer()
	a.g.AddContact(b.nid, nil)
	a.g.AddContact(c.nid, nil)
	f.net.Fail(c.nid) // c will never respond but b will
	for i := 0; i < 4; i++ {
		a.g.Tick()
		f.eng.Run(f.eng.Now() + f.cfg.RPCTimeout + runtime.Minute)
	}
	// b was shuffled with (alive): age reset; c evicted on its turn.
	if a.g.Contains(c.nid) {
		t.Fatal("dead contact still present after repeated ticks")
	}
	for _, e := range a.g.Entries() {
		if e.Peer == b.nid && e.Age > 1 {
			t.Fatalf("alive contact age %d, want refreshed", e.Age)
		}
	}
}
