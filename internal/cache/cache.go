// Package cache implements pluggable eviction policies for the
// capacity-bounded per-peer content stores (internal/content.Store).
//
// The paper assumes unbounded storage ("a content peer has enough
// storage potential to avoid replacing its content through the
// experiment's duration"); real deployments are capacity-bounded. This
// package is the seam that opens the first capacity-bounded scenario
// family: a Policy tracks residents and nominates victims, a name →
// factory registry mirrors the protocol (internal/proto) and backend
// (internal/runtime) registries, and drivers resolve a policy solely by
// the shared "cache-policy"/"cache-capacity" options.
//
// Keys are packed uint64s (content.Key.Uint64); costs are generic
// units — 1 per object for the count-bounded policies, bytes for the
// byte-cost ones (Info.ByteCost). Policies are single-goroutine, like
// everything else inside one run.
package cache

import (
	"fmt"
	"sort"
	"sync"
)

// Policy is one eviction policy instance, owned by exactly one store.
//
// The store drives it with a strict contract: OnAdd is called once per
// resident key (never for a key already tracked), OnHit only for
// tracked keys, Remove only for tracked keys, and after every OnAdd the
// store drains Victim/Remove pairs until Victim reports false. Victim
// must be deterministic: given the same op history, every
// implementation returns the same victim (ties break by smallest key),
// so bounded runs stay reproducible.
type Policy interface {
	// OnAdd records the insertion of key with the given cost units.
	OnAdd(key uint64, cost int64)
	// OnHit records an access to a tracked key (recency/frequency
	// signal; policies that ignore it may no-op).
	OnHit(key uint64)
	// Victim nominates the next key to evict while the policy is over
	// capacity; ok is false when nothing needs to go. Victim does not
	// remove — the store calls Remove after deleting the object.
	Victim() (key uint64, ok bool)
	// Remove drops a tracked key (eviction or external deletion).
	Remove(key uint64)
	// Len returns the number of tracked keys.
	Len() int
}

// Info describes a registered policy.
type Info struct {
	// Name is the registry key ("none", "lru", ...), the value of the
	// "cache-policy" driver option.
	Name string
	// Summary is a one-line description for CLI listings.
	Summary string
	// ByteCost marks policies whose capacity and costs are byte
	// budgets (size-aware); count-bounded policies take capacity in
	// objects with unit costs.
	ByteCost bool
}

// Factory builds a policy instance with the given capacity (cost
// units). Capacity <= 0 means unbounded: the policy tracks residents
// but never nominates a victim.
type Factory func(capacity int64) Policy

// PolicyNone is the unbounded default — the paper's storage model.
const PolicyNone = "none"

type entry struct {
	info    Info
	factory Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

// Register adds a policy under info.Name. Like the proto registry it
// panics on an empty name, nil factory or duplicate — programmer
// errors surfaced at init time.
func Register(info Info, f Factory) {
	if info.Name == "" {
		panic("cache: Register with empty name")
	}
	if f == nil {
		panic("cache: Register with nil factory for " + info.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic("cache: duplicate registration of " + info.Name)
	}
	registry[info.Name] = entry{info: info, factory: f}
}

// New builds an instance of the named policy.
func New(name string, capacity int64) (Policy, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cache: unknown policy %q (registered: %v)", name, Names())
	}
	return e.factory(capacity), nil
}

// Registered reports whether name resolves to a policy.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Lookup returns a registered policy's descriptor.
func Lookup(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e.info, ok
}

// Names returns every registered policy name, sorted, with "none"
// first (the default reads naturally in listings).
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if (out[i] == PolicyNone) != (out[j] == PolicyNone) {
			return out[i] == PolicyNone
		}
		return out[i] < out[j]
	})
	return out
}
