package cache

import "container/list"

// The built-in policies. All of them treat capacity <= 0 as unbounded
// and break victim ties deterministically by smallest key, so bounded
// runs replay bit-identically.

func init() {
	Register(Info{
		Name:    PolicyNone,
		Summary: "unbounded store — the paper's storage model (never evicts)",
	}, func(int64) Policy { return &nonePolicy{} })
	Register(Info{
		Name:    "lru",
		Summary: "least-recently-used eviction, capacity in objects",
	}, func(capacity int64) Policy {
		return &lruPolicy{
			capacity: capacity,
			order:    list.New(),
			items:    make(map[uint64]*list.Element),
		}
	})
	Register(Info{
		Name:    "lfu",
		Summary: "least-frequently-used eviction (ties: smallest key), capacity in objects",
	}, func(capacity int64) Policy {
		return &lfuPolicy{capacity: capacity, items: make(map[uint64]*lfuEntry)}
	})
	Register(Info{
		Name:     "size-aware",
		Summary:  "largest-object-first eviction over a byte budget (Zipf-sized objects)",
		ByteCost: true,
	}, func(capacity int64) Policy {
		return &sizePolicy{capacity: capacity, items: make(map[uint64]int64)}
	})
}

// nonePolicy tracks nothing but the resident count and never evicts —
// the unbounded paper model behind the "none" name.
type nonePolicy struct{ n int }

func (p *nonePolicy) OnAdd(uint64, int64)    { p.n++ }
func (p *nonePolicy) OnHit(uint64)           {}
func (p *nonePolicy) Victim() (uint64, bool) { return 0, false }
func (p *nonePolicy) Remove(uint64)          { p.n-- }
func (p *nonePolicy) Len() int               { return p.n }

// lruPolicy evicts the least-recently-touched key. O(1) everywhere:
// an intrusive recency list plus a key → element map.
type lruPolicy struct {
	capacity int64
	used     int64
	order    *list.List // front = most recently used
	items    map[uint64]*list.Element
}

type lruEntry struct {
	key  uint64
	cost int64
}

func (p *lruPolicy) OnAdd(key uint64, cost int64) {
	p.items[key] = p.order.PushFront(lruEntry{key: key, cost: cost})
	p.used += cost
}

func (p *lruPolicy) OnHit(key uint64) {
	if el, ok := p.items[key]; ok {
		p.order.MoveToFront(el)
	}
}

func (p *lruPolicy) Victim() (uint64, bool) {
	if p.capacity <= 0 || p.used <= p.capacity {
		return 0, false
	}
	return p.order.Back().Value.(lruEntry).key, true
}

func (p *lruPolicy) Remove(key uint64) {
	el, ok := p.items[key]
	if !ok {
		return
	}
	p.used -= el.Value.(lruEntry).cost
	p.order.Remove(el)
	delete(p.items, key)
}

func (p *lruPolicy) Len() int { return len(p.items) }

// lfuPolicy evicts the least-frequently-hit key (an OnAdd counts as
// the first access), breaking frequency ties by smallest key. Victim
// is an O(n) scan — per-peer stores are small (tens to hundreds of
// objects), and the scan runs only while over capacity.
type lfuPolicy struct {
	capacity int64
	used     int64
	items    map[uint64]*lfuEntry
}

type lfuEntry struct {
	freq int64
	cost int64
}

func (p *lfuPolicy) OnAdd(key uint64, cost int64) {
	p.items[key] = &lfuEntry{freq: 1, cost: cost}
	p.used += cost
}

func (p *lfuPolicy) OnHit(key uint64) {
	if e, ok := p.items[key]; ok {
		e.freq++
	}
}

func (p *lfuPolicy) Victim() (uint64, bool) {
	if p.capacity <= 0 || p.used <= p.capacity {
		return 0, false
	}
	var victim uint64
	var vfreq int64 = -1
	for k, e := range p.items {
		if vfreq < 0 || e.freq < vfreq || (e.freq == vfreq && k < victim) {
			victim, vfreq = k, e.freq
		}
	}
	return victim, vfreq >= 0
}

func (p *lfuPolicy) Remove(key uint64) {
	e, ok := p.items[key]
	if !ok {
		return
	}
	p.used -= e.cost
	delete(p.items, key)
}

func (p *lfuPolicy) Len() int { return len(p.items) }

// sizePolicy evicts the largest object first over a byte budget
// (ties: smallest key). Dropping the biggest objects keeps the most
// distinct objects resident, which is what hit ratio rewards when
// every object counts equally toward it.
type sizePolicy struct {
	capacity int64
	used     int64
	items    map[uint64]int64 // key → byte cost
}

func (p *sizePolicy) OnAdd(key uint64, cost int64) {
	p.items[key] = cost
	p.used += cost
}

func (p *sizePolicy) OnHit(uint64) {}

func (p *sizePolicy) Victim() (uint64, bool) {
	if p.capacity <= 0 || p.used <= p.capacity {
		return 0, false
	}
	var victim uint64
	var vcost int64 = -1
	for k, c := range p.items {
		if c > vcost || (c == vcost && k < victim) {
			victim, vcost = k, c
		}
	}
	return victim, vcost >= 0
}

func (p *sizePolicy) Remove(key uint64) {
	c, ok := p.items[key]
	if !ok {
		return
	}
	p.used -= c
	delete(p.items, key)
}

func (p *sizePolicy) Len() int { return len(p.items) }
