package cache

import (
	"fmt"
	"sort"
	"testing"

	"flowercdn/internal/rnd"
)

// Property suite: every policy is driven through randomized op
// sequences (add / hit / remove, deterministic via internal/rnd) and
// cross-checked after every step against a naive reference model that
// tracks cost, recency and frequency explicitly. Invariants:
//
//   - the drained policy is never over capacity (in cost units);
//   - every victim is a resident the model also holds;
//   - LRU victims are the least-recently-touched residents;
//   - LFU victims are minimal in (frequency, key);
//   - size-aware victims are maximal in (cost, -key);
//   - "none" never nominates anything;
//   - Len always equals the model's population.

type refEntry struct {
	cost int64
	freq int64
	last int64 // logical touch clock (add counts as a touch)
}

type refModel struct {
	capacity int64
	used     int64
	clock    int64
	items    map[uint64]*refEntry
}

func newRefModel(capacity int64) *refModel {
	return &refModel{capacity: capacity, items: make(map[uint64]*refEntry)}
}

func (m *refModel) add(k uint64, cost int64) {
	m.clock++
	m.items[k] = &refEntry{cost: cost, freq: 1, last: m.clock}
	m.used += cost
}

func (m *refModel) hit(k uint64) {
	m.clock++
	e := m.items[k]
	e.freq++
	e.last = m.clock
}

func (m *refModel) remove(k uint64) {
	m.used -= m.items[k].cost
	delete(m.items, k)
}

// expectedVictim computes the model's victim for one policy, or ok =
// false when under capacity.
func (m *refModel) expectedVictim(policy string) (uint64, bool) {
	if policy == PolicyNone || m.capacity <= 0 || m.used <= m.capacity {
		return 0, false
	}
	var victim uint64
	found := false
	for k, e := range m.items {
		if !found {
			victim, found = k, true
			continue
		}
		v := m.items[victim]
		switch policy {
		case "lru":
			if e.last < v.last {
				victim = k
			}
		case "lfu":
			if e.freq < v.freq || (e.freq == v.freq && k < victim) {
				victim = k
			}
		case "size-aware":
			if e.cost > v.cost || (e.cost == v.cost && k < victim) {
				victim = k
			}
		}
	}
	return victim, found
}

// sortedKeys gives a deterministic pick-order over the model's
// residents.
func (m *refModel) sortedKeys() []uint64 {
	out := make([]uint64, 0, len(m.items))
	for k := range m.items {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestPolicyPropertiesAgainstReferenceModel(t *testing.T) {
	const ops = 3000
	for _, policyName := range Names() {
		policyName := policyName
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", policyName, seed), func(t *testing.T) {
				rng := rnd.New(seed)
				// Small capacities keep the policies constantly under
				// pressure; cost spread exercises the cost accounting
				// on every policy, not just the byte-cost one.
				capacity := int64(1 + rng.Intn(64))
				p, err := New(policyName, capacity)
				if err != nil {
					t.Fatal(err)
				}
				m := newRefModel(capacity)
				if policyName == PolicyNone {
					m.capacity = 0 // the model never expects an eviction
				}
				nextKey := uint64(0)

				for i := 0; i < ops; i++ {
					switch op := rng.Intn(10); {
					case op < 6 || len(m.items) == 0: // add a fresh key
						k := nextKey
						nextKey++
						cost := int64(1 + rng.Intn(16))
						p.OnAdd(k, cost)
						m.add(k, cost)
						// Drain victims, checking each against the model.
						for {
							want, wantOK := m.expectedVictim(policyName)
							got, gotOK := p.Victim()
							if gotOK != wantOK {
								t.Fatalf("op %d: Victim ok=%v, model ok=%v (used %d cap %d)",
									i, gotOK, wantOK, m.used, m.capacity)
							}
							if !gotOK {
								break
							}
							if _, resident := m.items[got]; !resident {
								t.Fatalf("op %d: victim %d is not a resident", i, got)
							}
							if got != want {
								t.Fatalf("op %d: victim %d, model wants %d", i, got, want)
							}
							p.Remove(got)
							m.remove(got)
						}
						if policyName != PolicyNone && m.capacity > 0 && m.used > m.capacity {
							t.Fatalf("op %d: model still over capacity after drain: %d > %d",
								i, m.used, m.capacity)
						}
					case op < 8: // touch a resident
						keys := m.sortedKeys()
						k := keys[rng.Intn(len(keys))]
						p.OnHit(k)
						m.hit(k)
					default: // external removal
						keys := m.sortedKeys()
						k := keys[rng.Intn(len(keys))]
						p.Remove(k)
						m.remove(k)
					}
					if p.Len() != len(m.items) {
						t.Fatalf("op %d: Len %d, model %d", i, p.Len(), len(m.items))
					}
				}
				if _, ok := p.Victim(); ok && policyName == PolicyNone {
					t.Fatal("none nominated a victim at the end")
				}
			})
		}
	}
}

// TestPolicyDeterminism replays the same op sequence twice and demands
// identical victim streams — the property that keeps bounded
// simulation runs reproducible.
func TestPolicyDeterminism(t *testing.T) {
	for _, policyName := range Names() {
		run := func() []uint64 {
			rng := rnd.New(42)
			p, err := New(policyName, 32)
			if err != nil {
				t.Fatal(err)
			}
			resident := make(map[uint64]bool)
			var victims []uint64
			var keys []uint64
			for i := uint64(0); i < 2000; i++ {
				p.OnAdd(i, int64(1+rng.Intn(8)))
				resident[i] = true
				keys = append(keys, i)
				if len(keys) > 0 && rng.Bool(0.5) {
					k := keys[rng.Intn(len(keys))]
					if resident[k] {
						p.OnHit(k)
					}
				}
				for {
					v, ok := p.Victim()
					if !ok {
						break
					}
					p.Remove(v)
					resident[v] = false
					victims = append(victims, v)
				}
			}
			return victims
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("%s: victim stream lengths differ: %d vs %d", policyName, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: victim %d differs: %d vs %d", policyName, i, a[i], b[i])
			}
		}
	}
}
