package cache

import (
	"testing"
)

func TestRegistry(t *testing.T) {
	for _, name := range []string{"none", "lru", "lfu", "size-aware"} {
		if !Registered(name) {
			t.Fatalf("built-in policy %q not registered", name)
		}
		info, ok := Lookup(name)
		if !ok || info.Name != name || info.Summary == "" {
			t.Fatalf("bad info for %q: %+v", name, info)
		}
		p, err := New(name, 10)
		if err != nil || p == nil {
			t.Fatalf("New(%q) = %v, %v", name, p, err)
		}
	}
	if Registered("bogus") {
		t.Fatal("bogus policy registered")
	}
	if _, err := New("bogus", 1); err == nil {
		t.Fatal("New accepted an unknown policy")
	}
	names := Names()
	if len(names) < 4 || names[0] != PolicyNone {
		t.Fatalf("Names() = %v, want none first", names)
	}
	info, _ := Lookup("size-aware")
	if !info.ByteCost {
		t.Fatal("size-aware must be byte-cost")
	}
	if info, _ := Lookup("lru"); info.ByteCost {
		t.Fatal("lru must be count-bounded")
	}
}

func TestRegisterPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty name", func() { Register(Info{}, func(int64) Policy { return &nonePolicy{} }) }},
		{"nil factory", func() { Register(Info{Name: "x"}, nil) }},
		{"duplicate", func() { Register(Info{Name: "lru"}, func(int64) Policy { return &nonePolicy{} }) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register with %s did not panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// drain mimics the store's eviction loop: victims are removed until
// the policy reports itself under capacity.
func drain(t *testing.T, p Policy) []uint64 {
	t.Helper()
	var out []uint64
	for i := 0; ; i++ {
		if i > 1<<16 {
			t.Fatal("Victim never settled — eviction loop does not terminate")
		}
		v, ok := p.Victim()
		if !ok {
			return out
		}
		p.Remove(v)
		out = append(out, v)
	}
}

func TestNoneNeverEvicts(t *testing.T) {
	p, _ := New("none", 1)
	for k := uint64(0); k < 1000; k++ {
		p.OnAdd(k, 1<<20)
		if _, ok := p.Victim(); ok {
			t.Fatal("none nominated a victim")
		}
	}
	if p.Len() != 1000 {
		t.Fatalf("none Len = %d, want 1000", p.Len())
	}
	p.Remove(5)
	if p.Len() != 999 {
		t.Fatalf("none Len after Remove = %d", p.Len())
	}
}

func TestLRUEvictsLeastRecentlyTouched(t *testing.T) {
	p, _ := New("lru", 3)
	p.OnAdd(1, 1)
	p.OnAdd(2, 1)
	p.OnAdd(3, 1)
	p.OnHit(1) // 1 is now warmest; 2 coldest
	p.OnAdd(4, 1)
	if vs := drain(t, p); len(vs) != 1 || vs[0] != 2 {
		t.Fatalf("LRU evicted %v, want [2]", vs)
	}
	p.OnAdd(5, 1) // state: 3, 1, 4, 5 → 3 coldest
	if vs := drain(t, p); len(vs) != 1 || vs[0] != 3 {
		t.Fatalf("LRU evicted %v, want [3]", vs)
	}
	if p.Len() != 3 {
		t.Fatalf("LRU Len = %d, want 3", p.Len())
	}
}

func TestLFUEvictsLeastFrequentTieByKey(t *testing.T) {
	p, _ := New("lfu", 3)
	p.OnAdd(10, 1)
	p.OnAdd(20, 1)
	p.OnAdd(30, 1)
	p.OnHit(10)
	p.OnHit(10)
	p.OnHit(30)
	// freqs: 10→3, 20→1, 30→2
	p.OnAdd(40, 1)
	if vs := drain(t, p); len(vs) != 1 || vs[0] != 20 {
		t.Fatalf("LFU evicted %v, want [20]", vs)
	}
	// freqs now: 10→3, 30→2, 40→1; add another fresh key → tie between
	// 40 and 50 at freq 1, smaller key 40 goes.
	p.OnAdd(50, 1)
	if vs := drain(t, p); len(vs) != 1 || vs[0] != 40 {
		t.Fatalf("LFU tie-break evicted %v, want [40]", vs)
	}
}

func TestSizeAwareEvictsLargestFirst(t *testing.T) {
	p, _ := New("size-aware", 100)
	p.OnAdd(1, 40)
	p.OnAdd(2, 50)
	p.OnAdd(3, 30) // used 120 > 100 → evict 2 (largest)
	if vs := drain(t, p); len(vs) != 1 || vs[0] != 2 {
		t.Fatalf("size-aware evicted %v, want [2]", vs)
	}
	p.OnAdd(4, 40) // used 110 → largest is a tie 40/40 between 1 and 4 → key 1
	if vs := drain(t, p); len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("size-aware tie evicted %v, want [1]", vs)
	}
}

func TestSizeAwareOversizedObjectEvictsItself(t *testing.T) {
	p, _ := New("size-aware", 100)
	p.OnAdd(7, 1000)
	vs := drain(t, p)
	if len(vs) != 1 || vs[0] != 7 {
		t.Fatalf("oversized add evicted %v, want [7]", vs)
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after self-eviction", p.Len())
	}
}

func TestZeroCapacityMeansUnbounded(t *testing.T) {
	for _, name := range []string{"lru", "lfu", "size-aware"} {
		p, _ := New(name, 0)
		for k := uint64(0); k < 100; k++ {
			p.OnAdd(k, 100)
		}
		if _, ok := p.Victim(); ok {
			t.Fatalf("%s with capacity 0 nominated a victim", name)
		}
	}
}
