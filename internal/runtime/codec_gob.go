package runtime

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// The gob codec: every payload is an independent, self-describing gob
// stream. It needs no per-type code — any gob-encodable registered
// wire type works — which is why it stays the compatibility default;
// the price is type information in every message and ~300 allocations
// per frame round trip (see BenchmarkFrameRoundTrip), which is what
// the binary codec exists to remove.

func init() {
	RegisterCodec("gob", func() (Codec, error) {
		registerGobWireTypes()
		return gobCodec{}, nil
	})
}

var gobRegOnce sync.Once

// registerGobWireTypes teaches gob every concrete type that may appear
// behind an interface. All wire-type registrations happen in package
// init functions, which have run by the time any codec is constructed;
// gob.Register is idempotent for identical (name, type) pairs, but the
// Once avoids re-walking the registry per transport.
func registerGobWireTypes() {
	gobRegOnce.Do(func() {
		for _, v := range WireTypes() {
			gob.Register(v)
		}
	})
}

// gobPayload wraps the interface-typed message so gob transmits the
// concrete type's identity.
type gobPayload struct {
	M any
}

type gobCodec struct{}

func (gobCodec) Name() string { return "gob" }

var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func (gobCodec) AppendMessage(buf []byte, msg any) ([]byte, error) {
	bb := gobBufPool.Get().(*bytes.Buffer)
	bb.Reset()
	if err := gob.NewEncoder(bb).Encode(gobPayload{M: msg}); err != nil {
		gobBufPool.Put(bb)
		return nil, fmt.Errorf("runtime: gob encode %T: %w", msg, err)
	}
	buf = append(buf, bb.Bytes()...)
	gobBufPool.Put(bb)
	return buf, nil
}

func (gobCodec) DecodeMessage(b []byte) (any, error) {
	var p gobPayload
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("runtime: gob decode: %w", err)
	}
	return p.M, nil
}
