package runtime

import (
	"hash/fnv"
	"reflect"
	"sort"
	"sync"
)

// This file holds the two seams a *multi-process* Transport needs
// beyond the Transport interface itself: a broadcast side-channel for
// the protocol-level bootstrap state that a single-process run keeps
// in plain memory (Bus), and a registry of concrete message types so
// the wire codec can decode interface-typed payloads (RegisterWireType).
// Single-process backends implement neither; protocol code treats both
// as optional capabilities.

// Bus is the cross-process announcement channel a multi-process
// Transport optionally provides. Announce broadcasts msg to every
// OTHER process of the group (never back to the announcing one — the
// announcer already applied the state change locally); each receiving
// process invokes its subscribers on the clock's callback goroutine,
// so subscribers may touch protocol state freely.
//
// Protocols use it for the out-of-band bootstrap state the simulation
// models as shared memory: the gateway registry through which new
// clients discover the overlay. One process registers a ring member,
// every process learns a gateway.
type Bus interface {
	// Announce broadcasts msg to the other processes of the group. The
	// concrete type of msg must be registered with RegisterWireType.
	Announce(msg any)
	// Subscribe adds fn to the processes's announcement subscribers.
	// Subscriptions cannot be removed; subscribe once per run.
	Subscribe(fn func(msg any))
}

// BusOf returns the transport's announcement bus, or nil when the
// backend is single-process (sim, realtime) and has none.
func BusOf(t Transport) Bus {
	b, _ := t.(Bus)
	return b
}

var (
	wireMu    sync.Mutex
	wireTypes []any
)

// RegisterWireType records concrete message types that may cross a
// process boundary inside an interface-typed field (a Send/Request
// payload, a gossip entry's metadata, a Bus announcement). Protocol
// packages call it from init alongside their proto registration; a
// wire codec (internal/socknet's gob framing) registers every recorded
// type with its decoder before any traffic flows. Single-process
// backends never consult the registry, so registration is free there.
func RegisterWireType(vs ...any) {
	wireMu.Lock()
	defer wireMu.Unlock()
	wireTypes = append(wireTypes, vs...)
}

// WireTypes returns a snapshot of every registered wire type.
func WireTypes() []any {
	wireMu.Lock()
	defer wireMu.Unlock()
	out := make([]any, len(wireTypes))
	copy(out, wireTypes)
	return out
}

// WireRegistrySum fingerprints the wire-type registry: FNV-1a over the
// sorted fully qualified type names. Two processes whose sums differ
// were built with different protocol sets and would disagree on binary
// type tags (or gob type availability), so the socket handshake
// exchanges this value and fails fast on mismatch instead of
// corrupting mid-run traffic.
func WireRegistrySum() uint64 {
	names := make([]string, 0, len(wireTypes))
	for _, v := range WireTypes() {
		names = append(names, typeKey(reflect.TypeOf(v)))
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
