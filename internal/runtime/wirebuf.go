package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// This file is the append-based encoding vocabulary the binary wire
// codec and its per-type marshallers share: a WireWriter that appends
// primitives to a growing byte slice, and a WireReader that decodes
// them back with sticky-error semantics. The encoding is canonical —
// minimal varints, fixed-width floats, sorted map keys enforced by the
// strictly-ascending decode helpers — so any accepted byte stream
// re-encodes to exactly the same bytes. That property is what lets the
// fuzz targets assert byte-identical round trips instead of weaker
// structural equality.

// AppendUvarint appends v in minimal (canonical) varint form.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// uvarintLen returns the canonical encoded length of v.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// zigzag maps signed to unsigned so small negatives stay short.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WireWriter appends one message's canonical binary encoding. The
// zero value is not usable; codecs construct writers bound to
// themselves so nested interface-typed fields can be tagged.
type WireWriter struct {
	buf []byte
	// appendAny encodes a nested interface-typed value (tag +
	// payload); set by the binary codec.
	appendAny func(b []byte, msg any) ([]byte, error)
	err       error
}

// NewWireWriter wraps buf for appending. Writers built this way append
// primitives only; Any needs a codec-bound writer.
func NewWireWriter(buf []byte) *WireWriter { return &WireWriter{buf: buf} }

// Finish returns the accumulated encoding.
func (w *WireWriter) Finish() []byte { return w.buf }

// Fail records the first error; subsequent appends are no-ops.
func (w *WireWriter) Fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Err returns the first recorded error.
func (w *WireWriter) Err() error { return w.err }

// Uvarint appends an unsigned varint.
func (w *WireWriter) Uvarint(v uint64) {
	if w.err != nil {
		return
	}
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a signed (zigzag) varint.
func (w *WireWriter) Varint(v int64) { w.Uvarint(zigzag(v)) }

// Int appends an int as a signed varint.
func (w *WireWriter) Int(v int) { w.Varint(int64(v)) }

// U8 appends one raw byte.
func (w *WireWriter) U8(v byte) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, v)
}

// U64 appends a fixed 8-byte big-endian word — the right shape for
// hashed ring identifiers, which are uniform over 64 bits and would
// cost 10 bytes as a varint.
func (w *WireWriter) U64(v uint64) {
	if w.err != nil {
		return
	}
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// F64 appends a float64 as its fixed 8-byte IEEE 754 bit pattern.
func (w *WireWriter) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a 0/1 byte.
func (w *WireWriter) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// String appends a length-prefixed string.
func (w *WireWriter) String(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (w *WireWriter) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, b...)
}

// Node appends a NodeID as a signed varint (None = -1 stays one byte).
func (w *WireWriter) Node(id NodeID) { w.Varint(int64(id)) }

// Nodes appends a length-prefixed NodeID slice.
func (w *WireWriter) Nodes(ns []NodeID) {
	w.Uvarint(uint64(len(ns)))
	for _, id := range ns {
		w.Node(id)
	}
}

// Any appends a nested interface-typed value: a type tag plus the
// value's own encoding (tag 0 for nil). Only writers constructed by
// the binary codec support it.
func (w *WireWriter) Any(msg any) {
	if w.err != nil {
		return
	}
	if w.appendAny == nil {
		w.Fail(errors.New("runtime: WireWriter.Any outside a codec"))
		return
	}
	b, err := w.appendAny(w.buf, msg)
	if err != nil {
		w.Fail(err)
		return
	}
	w.buf = b
}

// maxAnyDepth bounds nested Any decoding so hostile bytes cannot
// recurse the decoder off the stack.
const maxAnyDepth = 32

// WireReader decodes the WireWriter encoding with sticky errors: the
// first failure poisons the reader and every subsequent read returns
// the zero value, so per-type decoders stay branch-free and check
// Err once at the end. All reads are bounds-checked; decoded values
// never alias the input buffer.
type WireReader struct {
	buf []byte
	pos int
	// decodeAny decodes a nested tagged value; set by the binary codec.
	decodeAny func(r *WireReader) (any, error)
	depth     int
	err       error
}

// NewWireReader wraps b for decoding. Readers built this way decode
// primitives only; Any needs a codec-bound reader.
func NewWireReader(b []byte) *WireReader { return &WireReader{buf: b} }

// Fail records the first error.
func (r *WireReader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Err returns the first recorded error.
func (r *WireReader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *WireReader) Len() int { return len(r.buf) - r.pos }

// Rest returns the unread remainder and consumes it.
func (r *WireReader) Rest() []byte {
	out := r.buf[r.pos:]
	r.pos = len(r.buf)
	return out
}

// Uvarint reads a canonical unsigned varint; non-minimal encodings are
// rejected so every accepted stream re-encodes byte-identically.
func (r *WireReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.Fail(errors.New("runtime: truncated or overlong varint"))
		return 0
	}
	if n != uvarintLen(v) {
		r.Fail(errors.New("runtime: non-canonical varint"))
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a signed (zigzag) varint.
func (r *WireReader) Varint() int64 { return unzigzag(r.Uvarint()) }

// Int reads an int-sized signed varint.
func (r *WireReader) Int() int {
	v := r.Varint()
	if int64(int(v)) != v {
		r.Fail(errors.New("runtime: varint overflows int"))
		return 0
	}
	return int(v)
}

// U8 reads one raw byte.
func (r *WireReader) U8() byte {
	if r.err != nil {
		return 0
	}
	if r.Len() < 1 {
		r.Fail(errors.New("runtime: truncated byte"))
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// U64 reads a fixed 8-byte big-endian word.
func (r *WireReader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.Fail(errors.New("runtime: truncated u64"))
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// F64 reads a fixed 8-byte float.
func (r *WireReader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a strict 0/1 byte.
func (r *WireReader) Bool() bool {
	b := r.U8()
	if r.err == nil && b > 1 {
		r.Fail(fmt.Errorf("runtime: bool byte %d", b))
		return false
	}
	return b == 1
}

// String reads a length-prefixed string (copied, never aliased).
func (r *WireReader) String() string {
	n := r.ArrayLen(1)
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

// Bytes reads a length-prefixed byte slice (copied, never aliased).
// Zero length yields nil, mirroring gob's zero-field omission.
func (r *WireReader) Bytes() []byte {
	n := r.ArrayLen(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.pos:])
	r.pos += n
	return out
}

// ArrayLen reads a collection length and bounds it against the unread
// bytes (each element costs at least minElemBytes), so hostile length
// prefixes cannot force huge allocations.
func (r *WireReader) ArrayLen(minElemBytes int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(r.Len()/minElemBytes) {
		r.Fail(fmt.Errorf("runtime: collection length %d exceeds remaining bytes", n))
		return 0
	}
	return int(n)
}

// Node reads a NodeID, rejecting values outside its 32-bit range.
func (r *WireReader) Node() NodeID {
	v := r.Varint()
	if r.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		r.Fail(fmt.Errorf("runtime: node id %d out of range", v))
		return None
	}
	return NodeID(v)
}

// Nodes reads a length-prefixed NodeID slice (nil when empty).
func (r *WireReader) Nodes() []NodeID {
	n := r.ArrayLen(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]NodeID, n)
	for i := range out {
		out[i] = r.Node()
	}
	return out
}

// Any reads a nested tagged value (nil for tag 0). Only readers
// constructed by the binary codec support it.
func (r *WireReader) Any() any {
	if r.err != nil {
		return nil
	}
	if r.decodeAny == nil {
		r.Fail(errors.New("runtime: WireReader.Any outside a codec"))
		return nil
	}
	if r.depth >= maxAnyDepth {
		r.Fail(errors.New("runtime: nested message depth exceeded"))
		return nil
	}
	r.depth++
	v, err := r.decodeAny(r)
	r.depth--
	if err != nil {
		r.Fail(err)
		return nil
	}
	return v
}
