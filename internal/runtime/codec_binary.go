package runtime

import (
	"fmt"
	"reflect"
	"sort"
)

// The binary codec: a hand-rolled, append-based encoding for the
// high-volume wire types. Each message is a one-byte type tag followed
// by the type's own canonical field encoding (WireMessage); the tag
// table is derived from the wire-type registry by sorting the fully
// qualified type names, so every process of one build assigns
// identical tags without negotiation. Cross-build drift is caught at
// the socket handshake, which carries WireRegistrySum.
//
// Compared to gob this removes the per-message type description, the
// reflection walk and nearly every allocation: the encode path appends
// into a pooled buffer, the decode path allocates only the decoded
// values themselves.

// WireMessage is the contract a wire type implements to ride the
// binary codec: append your fields to w, and decode a fresh value from
// r (called on the registered prototype; the receiver's own fields are
// never read). Implementations live next to the type's
// RegisterWireType call; field order is the format, so append and
// decode must mirror exactly.
type WireMessage interface {
	AppendWire(w *WireWriter)
	DecodeWire(r *WireReader) any
}

func init() {
	RegisterCodec("binary", func() (Codec, error) { return newBinaryCodec() })
}

type binaryCodec struct {
	byType map[reflect.Type]byte
	protos []WireMessage // indexed by tag-1
}

// typeKey returns the fully qualified name a type sorts under —
// package path included, so same-named types in different packages
// cannot collide the way %T's short form could.
func typeKey(t reflect.Type) string {
	star := ""
	if t.Kind() == reflect.Pointer {
		star, t = "*", t.Elem()
	}
	return star + t.PkgPath() + "." + t.Name()
}

// newBinaryCodec assigns tags 1..n over the marshallable registry
// snapshot (tag 0 is reserved for nil).
func newBinaryCodec() (Codec, error) {
	type cand struct {
		key   string
		proto WireMessage
	}
	var cands []cand
	for _, v := range WireTypes() {
		if m, ok := v.(WireMessage); ok {
			cands = append(cands, cand{key: typeKey(reflect.TypeOf(v)), proto: m})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	if len(cands) > 255 {
		return nil, fmt.Errorf("runtime: %d binary wire types exceed the one-byte tag space", len(cands))
	}
	c := &binaryCodec{byType: make(map[reflect.Type]byte, len(cands))}
	for i, cd := range cands {
		t := reflect.TypeOf(cd.proto)
		if _, dup := c.byType[t]; dup {
			continue // same type registered twice; first tag wins
		}
		c.byType[t] = byte(i + 1)
		c.protos = append(c.protos, cd.proto)
	}
	return c, nil
}

func (c *binaryCodec) Name() string { return "binary" }

func (c *binaryCodec) AppendMessage(buf []byte, msg any) ([]byte, error) {
	if msg == nil {
		return append(buf, 0), nil
	}
	tag, ok := c.byType[reflect.TypeOf(msg)]
	if !ok {
		return nil, fmt.Errorf("runtime: %T is not binary-marshallable — implement runtime.WireMessage next to its RegisterWireType call", msg)
	}
	w := WireWriter{buf: append(buf, tag), appendAny: c.AppendMessage}
	msg.(WireMessage).AppendWire(&w)
	return w.buf, w.err
}

func (c *binaryCodec) DecodeMessage(b []byte) (any, error) {
	r := WireReader{buf: b, decodeAny: c.decodeAny}
	v := r.Any()
	if r.err != nil {
		return nil, r.err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("runtime: %d trailing bytes after message", r.Len())
	}
	return v, nil
}

// decodeAny reads one tagged value; WireReader.Any handles the depth
// guard and error stickiness around it.
func (c *binaryCodec) decodeAny(r *WireReader) (any, error) {
	tag := r.U8()
	if r.err != nil {
		return nil, r.err
	}
	if tag == 0 {
		return nil, nil
	}
	if int(tag) > len(c.protos) {
		return nil, fmt.Errorf("runtime: unknown wire type tag %d", tag)
	}
	v := c.protos[tag-1].DecodeWire(r)
	if r.err != nil {
		return nil, r.err
	}
	return v, nil
}
