// Package runtime defines the backend-agnostic seams every protocol in
// this repository is written against: a Clock (virtual or wall-clock
// time, timers), a Transport (node lifecycle, one-way messages, RPCs,
// latency and loss semantics, delivery stats) and a Runtime bundling
// the two with run control.
//
// Protocol code — the drivers under internal/flower, internal/petalup,
// internal/squirrel, internal/baseline, the chord and gossip substrates
// — depends only on these interfaces. Two backends implement them:
//
//   - internal/simrt adapts the deterministic discrete-event engine
//     (internal/sim) and the simulated message layer (internal/simnet);
//     it is the reference implementation, bit-for-bit reproducible.
//   - internal/rtnet runs the identical protocol code in real time:
//     wall-clock timers serialized onto a single run loop, with the
//     in-process loopback transport injecting latency sampled from the
//     same topology model.
//
// All times are int64 milliseconds; on the sim backend they are
// simulated milliseconds, on the realtime backend they are wall-clock
// milliseconds since the run started. The constants Millisecond,
// Second, Minute and Hour mirror the time package at that resolution.
package runtime

import (
	"errors"

	"flowercdn/internal/topology"
)

// Time unit constants, in milliseconds.
const (
	Millisecond int64 = 1
	Second            = 1000 * Millisecond
	Minute            = 60 * Second
	Hour              = 60 * Minute
)

// NodeID names a node for the lifetime of a run. IDs are never reused:
// a peer that re-joins after failing gets a fresh NodeID, which mirrors
// the paper's model where a returning peer is a new participant.
type NodeID int32

// None is the zero-ish sentinel for "no node".
const None NodeID = -1

// Handler is implemented by every protocol node. HandleMessage receives
// one-way messages; RPC requests arrive through HandleRequest.
type Handler interface {
	// HandleMessage processes a one-way message. from is the sender at
	// the time of sending (it may already be dead on delivery).
	HandleMessage(from NodeID, msg any)
	// HandleRequest processes an RPC and returns the response or an
	// application error. A non-nil error is delivered to the caller as
	// a failed call (same as a timeout, but immediate on response
	// arrival); protocols use it for "not my role" style rejections.
	HandleRequest(from NodeID, req any) (any, error)
}

// Errors surfaced to Request callers.
var (
	// ErrTimeout: no response within the deadline (dead target, dead
	// requester-side delivery, or dropped en route).
	ErrTimeout = errors.New("runtime: request timed out")
	// ErrNoSuchNode: the target NodeID was never registered.
	ErrNoSuchNode = errors.New("runtime: no such node")
)

// Sizer lets a message report its approximate wire size in bytes for
// overhead accounting. Messages that do not implement it are counted
// with DefaultMessageBytes.
type Sizer interface {
	WireBytes() int
}

// DefaultMessageBytes approximates a small control message (headers +
// a few identifiers).
const DefaultMessageBytes = 64

// TransportStats accumulates traffic counters for a run.
type TransportStats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
	MessagesDropped   uint64 // target dead or unregistered at delivery
	BytesSent         uint64
	RequestsIssued    uint64
	RequestsTimedOut  uint64
}

// Timer is the handle for a one-shot scheduled event. It can be
// cancelled before it fires; cancelling an already-fired or
// already-cancelled timer is a no-op.
type Timer interface {
	// Cancel prevents the timer's function from running. It reports
	// whether the cancellation had any effect.
	Cancel() bool
	// Fired reports whether the timer's function has already run.
	Fired() bool
	// Cancelled reports whether Cancel was called before the timer
	// fired.
	Cancelled() bool
	// When returns the time at which the timer is (or was) scheduled to
	// fire.
	When() int64
}

// Ticker is the handle for a periodic event, firing until cancelled.
type Ticker interface {
	// Cancel stops all future firings.
	Cancel()
	// Cancelled reports whether the ticker has been stopped.
	Cancelled() bool
}

// Clock is the time seam: protocols read the current time and schedule
// one-shot and periodic callbacks through it, never caring whether time
// is simulated or real. All callbacks of one run are serialized — no
// two ever execute concurrently — which is what lets protocol code stay
// lock-free on both backends.
type Clock interface {
	// Now returns the current time in milliseconds.
	Now() int64
	// Schedule runs fn after delay milliseconds. A negative delay is
	// treated as zero. It returns a cancellable Timer handle.
	Schedule(delay int64, fn func()) Timer
	// At runs fn at absolute time t. Times in the past are clamped to
	// the current instant.
	At(t int64, fn func()) Timer
	// Every schedules fn to run every period milliseconds, with the
	// first execution after firstDelay. Period must be positive.
	Every(firstDelay, period int64, fn func()) Ticker
	// Stop makes the currently executing run return after the current
	// event completes. Pending events remain queued.
	Stop()
}

// Transport is the message seam: a registry of nodes with join/fail
// lifecycle (fail-only churn), one-way Send with per-link latency and
// optional loss, Request/response RPCs with timeouts, and message/byte
// accounting. Messages to dead nodes are silently dropped, so failure
// detection is always timeout-driven, like on a real network.
type Transport interface {
	// Clock returns the clock driving this transport's deliveries.
	Clock() Clock
	// Topology returns the latency/locality model deliveries sample
	// from (placement of joining nodes, per-link latency).
	Topology() *topology.Topology

	// Join registers a handler at the given placement and returns its
	// fresh NodeID.
	Join(h Handler, place Placement) NodeID
	// Fail marks a node dead. In-flight messages to it are dropped on
	// delivery; it stops receiving forever (re-joining means a new
	// NodeID). Failing an already-dead node is a no-op.
	Fail(id NodeID)
	// Alive reports whether id is registered and not failed.
	Alive(id NodeID) bool
	// AliveCount returns the number of currently-alive nodes.
	AliveCount() int
	// TotalJoined returns how many nodes have ever joined.
	TotalJoined() int

	// Placement returns where a node sits in the topology. It remains
	// valid after the node fails (used for post-mortem metrics).
	Placement(id NodeID) Placement
	// Locality returns the physical locality of a node.
	Locality(id NodeID) Locality
	// Latency returns the one-way latency between two nodes in ms.
	Latency(a, b NodeID) int64

	// Send delivers msg to `to` after the one-way link latency. If the
	// target is dead at delivery time the message is dropped. Sends to
	// unregistered IDs panic (protocol bug, not churn).
	Send(from, to NodeID, msg any)
	// Request performs an RPC: req travels to the target, the target's
	// HandleRequest runs, and the response travels back. cb runs exactly
	// once: with the response, with the handler's application error, or
	// with ErrTimeout if either leg fails or the deadline expires first.
	// A timeout <= 0 selects the transport's default. If the requester
	// is dead when the response arrives, cb is not run.
	Request(from, to NodeID, req any, timeout int64, cb func(resp any, err error))

	// Stats returns a snapshot of the traffic counters.
	Stats() TransportStats
	// ForEachAlive visits every alive node id (ascending). The visitor
	// must not join or fail nodes while iterating.
	ForEachAlive(visit func(id NodeID))
}

// Runtime bundles the seams of one run with its run control. The
// harness builds one per experiment; every handle is exclusive to that
// run.
type Runtime interface {
	// Clock is the run's time source.
	Clock() Clock
	// Net is the run's message layer.
	Net() Transport
	// Run drives the backend until the clock passes the horizon (ms) or
	// Stop is called, and returns the number of events processed. On the
	// sim backend this consumes the event queue at full speed; on the
	// realtime backend it paces execution against the wall clock.
	Run(until int64) uint64
}
