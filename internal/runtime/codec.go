package runtime

import (
	"fmt"
	"sort"
)

// Codec serializes the interface-typed message payloads that cross a
// process boundary (Send/Request/Response payloads and Bus
// announcements). A codec is per-transport state, not global: the
// socket backend constructs one per Transport so codecs may keep
// internal tables without cross-run interference.
//
// Codecs are name-registered like protocols, backends and cache
// policies. "gob" is the compatibility default — self-describing
// frames, no per-type code; "binary" is the hand-rolled hot-path codec
// built from the wire-type registry's tag table and each type's
// WireMessage implementation.
type Codec interface {
	// Name returns the registered codec name.
	Name() string
	// AppendMessage appends msg's encoding (including any type tag) to
	// buf and returns the extended slice. A nil msg is legal (routed
	// lookups carry nil payloads). The concrete type of msg must be
	// registered with RegisterWireType.
	AppendMessage(buf []byte, msg any) ([]byte, error)
	// DecodeMessage decodes exactly one message from b, consuming all
	// of it. The returned value never aliases b — callers reuse frame
	// buffers. Arbitrary input must fail with an error, never panic.
	DecodeMessage(b []byte) (any, error)
}

// DefaultCodec is the codec used when no name is configured.
const DefaultCodec = "gob"

// CodecFactory builds a fresh Codec instance for one transport.
type CodecFactory func() (Codec, error)

var codecs = map[string]CodecFactory{}

// RegisterCodec adds a named codec to the registry. Registering a
// duplicate name panics — it indicates conflicting packages, not a
// runtime condition.
func RegisterCodec(name string, f CodecFactory) {
	if name == "" || f == nil {
		panic("runtime: RegisterCodec with empty name or nil factory")
	}
	if _, dup := codecs[name]; dup {
		panic(fmt.Sprintf("runtime: codec %q registered twice", name))
	}
	codecs[name] = f
}

// CodecRegistered reports whether name resolves to a codec ("" counts
// as the default).
func CodecRegistered(name string) bool {
	if name == "" {
		name = DefaultCodec
	}
	_, ok := codecs[name]
	return ok
}

// Codecs returns the registered codec names, sorted.
func Codecs() []string {
	out := make([]string, 0, len(codecs))
	for name := range codecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewCodec builds a fresh instance of a registered codec; "" resolves
// to DefaultCodec.
func NewCodec(name string) (Codec, error) {
	if name == "" {
		name = DefaultCodec
	}
	f, ok := codecs[name]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown codec %q (registered: %v)", name, Codecs())
	}
	return f()
}
