package runtime

import (
	"fmt"
	"sort"
	"time"

	"flowercdn/internal/rnd"
	"flowercdn/internal/topology"
)

// Placement and Locality alias the topology model's types so the
// Transport interface can be read without a second import. Protocol
// code may use either spelling.
type (
	Placement = topology.Placement
	Locality  = topology.Locality
)

// BackendConfig is everything a backend needs to build a Runtime. The
// latency/locality model and the loss knob are backend-independent:
// the sim backend applies them to simulated deliveries, the realtime
// backend injects them into its loopback transport, so the same
// topology produces comparable traffic shapes on both.
type BackendConfig struct {
	// Topo is the latency/locality model deliveries sample from.
	Topo *topology.Topology
	// LossRate drops each one-way transmission with this probability
	// (0 = the paper's reliable-link model).
	LossRate float64
	// LossRNG draws the loss decisions; required when LossRate > 0.
	LossRNG *rnd.RNG
	// Socket configures the process group of a multi-process backend
	// ("socket"); single-process backends ignore it.
	Socket *SocketConfig
}

// SocketConfig describes one process of a socket-backend group: the
// full index-ordered peer address list (identical in every process)
// and this process's position in it. Every process hosts one peer
// group — the slice of the population the harness assigns to its
// index — and exchanges the address registry with the others at
// startup before any protocol traffic flows.
type SocketConfig struct {
	// Listen is this process's TCP listen address (host:port).
	Listen string
	// Peers lists every group's address, index-ordered; Peers[Group]
	// names this process. len(Peers) is the group count.
	Peers []string
	// Group is this process's index into Peers.
	Group int
	// Codec names the wire codec for payload serialization; "" means
	// DefaultCodec. Every process of a group must configure the same
	// codec — the handshake rejects mixed groups.
	Codec string
	// BatchWindow bounds how long the write side may hold a frame to
	// coalesce it with successors into one batch (0 = backend default;
	// negative = flush every frame immediately). The effective window
	// adapts per connection to the observed frame rate, from immediate
	// flushing when idle up to this bound under load.
	BatchWindow time.Duration
	// BatchBytes caps the bytes coalesced into one batch before an
	// immediate flush (0 = backend default).
	BatchBytes int
}

// Validate checks the group description.
func (c *SocketConfig) Validate() error {
	if c == nil {
		return fmt.Errorf("runtime: nil socket config")
	}
	if len(c.Peers) < 1 {
		return fmt.Errorf("runtime: socket config needs at least one peer address")
	}
	if c.Group < 0 || c.Group >= len(c.Peers) {
		return fmt.Errorf("runtime: socket group %d out of range [0, %d)", c.Group, len(c.Peers))
	}
	if c.Listen == "" {
		return fmt.Errorf("runtime: socket config needs a listen address")
	}
	if !CodecRegistered(c.Codec) {
		return fmt.Errorf("runtime: unknown codec %q (registered: %v)", c.Codec, Codecs())
	}
	if c.BatchBytes < 0 {
		return fmt.Errorf("runtime: negative batch byte bound %d", c.BatchBytes)
	}
	return nil
}

// Groups returns the number of cooperating processes.
func (c *SocketConfig) Groups() int { return len(c.Peers) }

// BackendFactory builds a Runtime for one run.
type BackendFactory func(cfg BackendConfig) (Runtime, error)

var backends = map[string]BackendFactory{}

// RegisterBackend adds a named backend to the registry. Backends
// register themselves in init functions (internal/simrt: "sim",
// internal/rtnet: "realtime"); registering a duplicate name panics, as
// it indicates conflicting packages rather than a runtime condition.
func RegisterBackend(name string, f BackendFactory) {
	if name == "" || f == nil {
		panic("runtime: RegisterBackend with empty name or nil factory")
	}
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("runtime: backend %q registered twice", name))
	}
	backends[name] = f
}

// BackendRegistered reports whether name resolves to a backend.
func BackendRegistered(name string) bool {
	_, ok := backends[name]
	return ok
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewBackend builds a Runtime from a registered backend.
func NewBackend(name string, cfg BackendConfig) (Runtime, error) {
	f, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown backend %q (registered: %v)", name, Backends())
	}
	if cfg.Topo == nil {
		return nil, fmt.Errorf("runtime: backend %q needs a topology", name)
	}
	if cfg.LossRate > 0 && cfg.LossRNG == nil {
		return nil, fmt.Errorf("runtime: backend %q: loss rate needs an RNG", name)
	}
	return f(cfg)
}
