package metrics

import (
	"testing"
	"testing/quick"

	"flowercdn/internal/sim"
)

func collectorWith(lookups []int64) *Collector {
	c := NewCollector(sim.Hour)
	for _, v := range lookups {
		c.Record(Query{Outcome: HitDirectory, LookupLatency: v, TransferDistance: v * 2})
	}
	return c
}

func TestPercentileBasics(t *testing.T) {
	c := collectorWith([]int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if got := c.LookupPercentile(0.5); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := c.LookupPercentile(1.0); got != 100 {
		t.Fatalf("p100 = %d, want 100", got)
	}
	if got := c.LookupPercentile(0.1); got != 10 {
		t.Fatalf("p10 = %d, want 10", got)
	}
	// Transfer distances are doubled in the fixture.
	if got := c.TransferPercentile(0.5); got != 100 {
		t.Fatalf("transfer p50 = %d, want 100", got)
	}
}

func TestPercentileEmptyAndClamped(t *testing.T) {
	c := NewCollector(sim.Hour)
	if c.LookupPercentile(0.5) != 0 {
		t.Fatal("empty collector percentile should be 0")
	}
	c2 := collectorWith([]int64{42})
	if c2.LookupPercentile(-1) != 42 || c2.LookupPercentile(2) != 42 {
		t.Fatal("out-of-range p not clamped")
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	c := collectorWith([]int64{90, 10, 50, 30, 70})
	if got := c.LookupPercentile(0.5); got != 50 {
		t.Fatalf("p50 over unsorted input = %d, want 50", got)
	}
}

func TestPercentileMonotoneInP(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		c := collectorWith(vals)
		prev := int64(-1)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			cur := c.LookupPercentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileWithinObservedRange(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		lo, hi := int64(raw[0]), int64(raw[0])
		for i, v := range raw {
			vals[i] = int64(v)
			if vals[i] < lo {
				lo = vals[i]
			}
			if vals[i] > hi {
				hi = vals[i]
			}
		}
		c := collectorWith(vals)
		p := float64(pRaw%100+1) / 100
		got := c.LookupPercentile(p)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaries(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	c := collectorWith(vals)
	ls := c.LookupSummary()
	if ls.P50 != 50 || ls.P90 != 90 || ls.P99 != 99 {
		t.Fatalf("lookup summary %+v", ls)
	}
	ts := c.TransferSummary()
	if ts.P50 != 100 {
		t.Fatalf("transfer summary %+v", ts)
	}
}
