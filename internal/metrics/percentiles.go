package metrics

import "sort"

// Percentile returns the p-quantile (0 < p <= 1) of the recorded
// lookup latencies using nearest-rank on a sorted copy. Returns 0 with
// no observations.
func (c *Collector) LookupPercentile(p float64) int64 {
	return percentile(c.lookups, p)
}

// TransferPercentile is Percentile over transfer distances.
func (c *Collector) TransferPercentile(p float64) int64 {
	return percentile(c.transfers, p)
}

func percentile(values []int64, p float64) int64 {
	if len(values) == 0 {
		return 0
	}
	if p <= 0 {
		p = 0.0000001
	}
	if p > 1 {
		p = 1
	}
	sorted := make([]int64, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// LatencySummary bundles the quantiles reported alongside the paper's
// means.
type LatencySummary struct {
	P50, P90, P99 int64
}

// LookupSummary returns lookup-latency quantiles.
func (c *Collector) LookupSummary() LatencySummary {
	return LatencySummary{
		P50: c.LookupPercentile(0.50),
		P90: c.LookupPercentile(0.90),
		P99: c.LookupPercentile(0.99),
	}
}

// TransferSummary returns transfer-distance quantiles.
func (c *Collector) TransferSummary() LatencySummary {
	return LatencySummary{
		P50: c.TransferPercentile(0.50),
		P90: c.TransferPercentile(0.90),
		P99: c.TransferPercentile(0.99),
	}
}
