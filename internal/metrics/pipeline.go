package metrics

import "sort"

// This file is the streaming half of the package: protocols emit typed
// Events into an Emitter, and any number of Sinks (the Collector, the
// generic Windowed series, Counters, or caller-supplied ones) consume
// the stream. The harness wires one Pipeline per run and hands it to
// the protocol deployment; nothing downstream needs to know which
// protocol produced the stream.

// Kind tags an Event.
type Kind int

const (
	// KindQuery is one completed query observation — the stream behind
	// the paper's three metrics (hit ratio, lookup latency, transfer
	// distance).
	KindQuery Kind = iota
	// KindCounter is a named protocol counter increment: promotions,
	// registrations, recoveries — whatever the deployment wants tallied
	// without the harness knowing the vocabulary.
	KindCounter
	// KindTrace carries one completed query's hop-by-hop trace record
	// (a *trace.Record, typed as any to keep this package dependency-
	// free). Only trace-aware sinks consume it; every aggregate sink
	// lets it fall through, so an enabled tracer never perturbs the
	// paper metrics or the run fingerprint.
	KindTrace
)

// Event is one typed observation streamed by a protocol deployment.
type Event struct {
	// When is the simulated emission time.
	When int64
	Kind Kind

	// Query fields (KindQuery).
	Outcome          Outcome
	LookupLatency    int64
	TransferDistance int64

	// Counter fields (KindCounter).
	Counter string
	Delta   float64

	// Trace field (KindTrace): the completed query's *trace.Record.
	Trace any
}

// QueryEvent builds a KindQuery event.
func QueryEvent(when int64, o Outcome, lookup, transfer int64) Event {
	return Event{When: when, Kind: KindQuery, Outcome: o, LookupLatency: lookup, TransferDistance: transfer}
}

// CounterEvent builds a KindCounter event.
func CounterEvent(when int64, name string, delta float64) Event {
	return Event{When: when, Kind: KindCounter, Counter: name, Delta: delta}
}

// TraceEvent builds a KindTrace event carrying one query's trace
// record.
func TraceEvent(when int64, rec any) Event {
	return Event{When: when, Kind: KindTrace, Trace: rec}
}

// CounterEvictions is the well-known counter name bounded content
// stores emit once per evicted object. Windowed breaks it out per
// window (the Fig. 3-style series pairs the hit-ratio knee with the
// eviction churn causing it); everything else treats it as ordinary
// protocol vocabulary.
const CounterEvictions = "evictions"

// Emitter is the write side protocols see: they stream observations and
// never learn who is aggregating them.
type Emitter interface {
	Emit(Event)
}

// Sink is the read side: anything that consumes the event stream.
type Sink interface {
	Observe(Event)
}

// Pipeline fans every emitted event out to its sinks in attach order.
// Like the engine it is single-goroutine.
type Pipeline struct {
	sinks []Sink
}

// NewPipeline builds a pipeline over the given sinks.
func NewPipeline(sinks ...Sink) *Pipeline {
	return &Pipeline{sinks: sinks}
}

// Attach adds a sink. Events emitted before the attach are not
// replayed.
func (p *Pipeline) Attach(s Sink) {
	p.sinks = append(p.sinks, s)
}

// Emit implements Emitter.
func (p *Pipeline) Emit(ev Event) {
	for _, s := range p.sinks {
		s.Observe(ev)
	}
}

// Counters accumulates KindCounter events into a name → total map.
type Counters struct {
	totals map[string]float64
}

// NewCounters builds an empty counter sink.
func NewCounters() *Counters {
	return &Counters{totals: make(map[string]float64)}
}

// Observe implements Sink.
func (c *Counters) Observe(ev Event) {
	if ev.Kind == KindCounter {
		c.totals[ev.Counter] += ev.Delta
	}
}

// Get returns one counter's total (0 when never emitted).
func (c *Counters) Get(name string) float64 { return c.totals[name] }

// Snapshot returns a copy of all totals.
func (c *Counters) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(c.totals))
	for k, v := range c.totals {
		out[k] = v
	}
	return out
}

// Names returns the counter names seen so far, sorted.
func (c *Counters) Names() []string {
	out := make([]string, 0, len(c.totals))
	for k := range c.totals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WindowAgg is one window's aggregates over the query stream.
type WindowAgg struct {
	// Hits and Total count queries by hit/any outcome.
	Hits, Total uint64
	// Served counts queries with a provider (everything but
	// Unresolved); LookupSum and TransferSum accumulate over them.
	Served      uint64
	LookupSum   int64
	TransferSum int64
	// Evictions totals the cache-eviction counter events that fell in
	// the window (0 on unbounded runs).
	Evictions float64
}

// HitRatio returns the window's hit ratio (0 on an empty window).
func (w WindowAgg) HitRatio() float64 {
	if w.Total == 0 {
		return 0
	}
	return float64(w.Hits) / float64(w.Total)
}

// MeanLookupMs returns the window's mean lookup latency over served
// queries.
func (w WindowAgg) MeanLookupMs() float64 {
	if w.Served == 0 {
		return 0
	}
	return float64(w.LookupSum) / float64(w.Served)
}

// MeanTransferMs returns the window's mean transfer distance over
// served queries.
func (w WindowAgg) MeanTransferMs() float64 {
	if w.Served == 0 {
		return 0
	}
	return float64(w.TransferSum) / float64(w.Served)
}

// Windowed buckets the query-event stream into fixed time windows and
// aggregates each window generically — the machinery behind every
// per-window series (Fig. 3's hit ratio over time, per-hour latency
// trends) for any protocol, with no per-protocol plumbing.
type Windowed struct {
	window int64
	wins   []WindowAgg
}

// NewWindowed builds a windowed aggregator; window must be positive.
func NewWindowed(window int64) *Windowed {
	if window <= 0 {
		window = 1
	}
	return &Windowed{window: window}
}

// Window returns the bucket width in simulated ms.
func (w *Windowed) Window() int64 { return w.window }

// Len returns the number of windows touched so far.
func (w *Windowed) Len() int { return len(w.wins) }

// At returns window i's aggregates.
func (w *Windowed) At(i int) WindowAgg { return w.wins[i] }

// Observe implements Sink: KindQuery events are bucketed by When, as
// are eviction counter events; other counters pass through untouched.
func (w *Windowed) Observe(ev Event) {
	switch ev.Kind {
	case KindQuery:
		agg := w.at(ev.When)
		agg.Total++
		if ev.Outcome.IsHit() {
			agg.Hits++
		}
		if ev.Outcome != Unresolved {
			agg.Served++
			agg.LookupSum += ev.LookupLatency
			agg.TransferSum += ev.TransferDistance
		}
	case KindCounter:
		if ev.Counter == CounterEvictions {
			w.at(ev.When).Evictions += ev.Delta
		}
	}
}

// at returns the window covering time t, materializing windows up to
// it.
func (w *Windowed) at(t int64) *WindowAgg {
	i := int(t / w.window)
	for len(w.wins) <= i {
		w.wins = append(w.wins, WindowAgg{})
	}
	return &w.wins[i]
}

// Series renders the windows as the familiar time-series points.
func (w *Windowed) Series() []SeriesPoint {
	out := make([]SeriesPoint, len(w.wins))
	for i, agg := range w.wins {
		out[i] = SeriesPoint{
			Start:          int64(i) * w.window,
			HitRatio:       agg.HitRatio(),
			Queries:        agg.Total,
			MeanLookupMs:   agg.MeanLookupMs(),
			MeanTransferMs: agg.MeanTransferMs(),
			Evictions:      agg.Evictions,
		}
	}
	return out
}

// Tail sums hits and totals over the final n windows (n <= 0 or more
// windows than exist: all of them).
func (w *Windowed) Tail(n int) (hits, total uint64) {
	start := 0
	if n > 0 && n < len(w.wins) {
		start = len(w.wins) - n
	}
	for _, agg := range w.wins[start:] {
		hits += agg.Hits
		total += agg.Total
	}
	return hits, total
}
