// Package metrics implements the paper's three evaluation metrics
// (Sec. 6): hit ratio ("the fraction of queries successfully served
// from the P2P system"), lookup latency ("the latency taken to resolve
// a query and reach the destination that will provide the requested
// object"), and transfer distance ("the network distance, in latency,
// from the querying peer to the peer that will provide the requested
// object") — plus the time-series and distribution views behind Fig. 3,
// Fig. 4 and Fig. 5.
package metrics

import (
	"flowercdn/internal/runtime"
	"fmt"
	"sort"
	"strings"
)

// Outcome classifies how a query was served.
type Outcome int

const (
	// HitLocalGossip: served by a petal contact found via gossip
	// summaries, without involving the directory.
	HitLocalGossip Outcome = iota
	// HitDirectory: served by a content peer the directory redirected
	// to.
	HitDirectory
	// HitDirectorySummary: served via a freshly promoted directory
	// peer's old content summaries (the Sec. 5.2.2 recovery path).
	HitDirectorySummary
	// Miss: served from the origin web server.
	Miss
	// Unresolved: the query could not be completed at all (routing
	// failure with the client gone, etc.). Counted as a non-hit.
	Unresolved
	numOutcomes
)

// String names an outcome.
func (o Outcome) String() string {
	switch o {
	case HitLocalGossip:
		return "hit-gossip"
	case HitDirectory:
		return "hit-directory"
	case HitDirectorySummary:
		return "hit-dir-summary"
	case Miss:
		return "miss"
	case Unresolved:
		return "unresolved"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// IsHit reports whether the outcome counts as a P2P hit.
func (o Outcome) IsHit() bool {
	return o == HitLocalGossip || o == HitDirectory || o == HitDirectorySummary
}

// Query is one completed query observation.
type Query struct {
	// When is the completion time.
	When int64
	// Outcome classifies the provider.
	Outcome Outcome
	// LookupLatency is the simulated time from issuing the query to
	// knowing the provider, in ms.
	LookupLatency int64
	// TransferDistance is the one-way latency from the querying peer to
	// the provider (content peer or origin), in ms.
	TransferDistance int64
}

// Collector accumulates query observations for one run. It is a Sink
// (and an Emitter, for callers that use it standalone) over the typed
// event stream; its per-window series delegates to the generic
// Windowed aggregator.
type Collector struct {
	counts [numOutcomes]uint64

	lookupSum   int64
	transferSum int64
	served      uint64 // queries with a provider (hits + misses)

	lookups   []int64
	transfers []int64

	win *Windowed
}

// NewCollector builds a collector with the given time-series window
// (Fig. 3 uses 1 simulated hour).
func NewCollector(window int64) *Collector {
	if window <= 0 {
		window = runtime.Hour
	}
	return &Collector{win: NewWindowed(window)}
}

// Record ingests one query observation.
func (c *Collector) Record(q Query) {
	c.Observe(QueryEvent(q.When, q.Outcome, q.LookupLatency, q.TransferDistance))
}

// Observe implements Sink: query events feed the run-level aggregates
// and the windowed series; counter events reach the windowed series
// (which breaks out per-window evictions); other kinds pass through
// untouched.
func (c *Collector) Observe(ev Event) {
	if ev.Kind == KindCounter {
		c.win.Observe(ev)
		return
	}
	if ev.Kind != KindQuery {
		return
	}
	if ev.Outcome < 0 || ev.Outcome >= numOutcomes {
		ev.Outcome = Unresolved
	}
	c.counts[ev.Outcome]++
	c.win.Observe(ev)
	if ev.Outcome != Unresolved {
		c.served++
		c.lookupSum += ev.LookupLatency
		c.transferSum += ev.TransferDistance
		c.lookups = append(c.lookups, ev.LookupLatency)
		c.transfers = append(c.transfers, ev.TransferDistance)
	}
}

// Emit implements Emitter, so a bare Collector can stand in for a full
// Pipeline when a test or a library caller needs no other sinks.
func (c *Collector) Emit(ev Event) { c.Observe(ev) }

// Windows exposes the generic per-window aggregates.
func (c *Collector) Windows() *Windowed { return c.win }

// Total returns the number of recorded queries.
func (c *Collector) Total() uint64 {
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Count returns the number of queries with the given outcome.
func (c *Collector) Count(o Outcome) uint64 {
	if o < 0 || o >= numOutcomes {
		return 0
	}
	return c.counts[o]
}

// Hits returns the total number of P2P hits.
func (c *Collector) Hits() uint64 {
	return c.counts[HitLocalGossip] + c.counts[HitDirectory] + c.counts[HitDirectorySummary]
}

// HitRatio returns hits / total over the whole run.
func (c *Collector) HitRatio() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Hits()) / float64(t)
}

// MeanLookupLatency returns the average lookup latency over served
// queries, in ms.
func (c *Collector) MeanLookupLatency() float64 {
	if c.served == 0 {
		return 0
	}
	return float64(c.lookupSum) / float64(c.served)
}

// MeanTransferDistance returns the average transfer distance over
// served queries, in ms.
func (c *Collector) MeanTransferDistance() float64 {
	if c.served == 0 {
		return 0
	}
	return float64(c.transferSum) / float64(c.served)
}

// SeriesPoint is one window of the per-window time series.
type SeriesPoint struct {
	// Start of the window, ms.
	Start int64
	// HitRatio within the window (0 when the window saw no queries).
	HitRatio float64
	// Queries in the window.
	Queries uint64
	// MeanLookupMs and MeanTransferMs average over the window's served
	// queries (0 when none were served).
	MeanLookupMs   float64
	MeanTransferMs float64
	// Evictions counts cache evictions within the window (0 on
	// unbounded runs).
	Evictions float64
}

// HitRatioSeries returns the Fig. 3 time series.
func (c *Collector) HitRatioSeries() []SeriesPoint {
	return c.win.Series()
}

// TailHitRatio returns the hit ratio over the last n windows — the
// "after 24 simulation hours" numbers Table 2 reports.
func (c *Collector) TailHitRatio(n int) float64 {
	if n <= 0 || c.win.Len() == 0 {
		return c.HitRatio()
	}
	hits, total := c.win.Tail(n)
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Distribution is a histogram over latency values with inclusive upper
// bucket bounds; the last bucket is unbounded.
type Distribution struct {
	Bounds []int64  // e.g. 150, 300, ... ; implicit +inf final bucket
	Counts []uint64 // len(Bounds)+1
	Total  uint64
}

// NewDistribution bins values against bounds (which must be sorted
// ascending).
func NewDistribution(bounds []int64, values []int64) Distribution {
	d := Distribution{
		Bounds: append([]int64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
	for _, v := range values {
		idx := sort.Search(len(bounds), func(i int) bool { return v <= bounds[i] })
		d.Counts[idx]++
		d.Total++
	}
	return d
}

// Fraction returns the share of values in bucket i.
func (d Distribution) Fraction(i int) float64 {
	if d.Total == 0 || i < 0 || i >= len(d.Counts) {
		return 0
	}
	return float64(d.Counts[i]) / float64(d.Total)
}

// CDFAt returns the fraction of values <= bound, where bound must be
// one of the bucket bounds (the paper quotes e.g. "66% of queries
// resolved within 150 ms").
func (d Distribution) CDFAt(bound int64) float64 {
	if d.Total == 0 {
		return 0
	}
	var cum uint64
	for i, b := range d.Bounds {
		cum += d.Counts[i]
		if b == bound {
			return float64(cum) / float64(d.Total)
		}
		if b > bound {
			break
		}
	}
	return float64(cum) / float64(d.Total)
}

// TailFraction returns the share of values strictly above bound.
func (d Distribution) TailFraction(bound int64) float64 {
	if d.Total == 0 {
		return 0
	}
	return 1 - d.CDFAt(bound)
}

// String renders the histogram for harness output.
func (d Distribution) String() string {
	var b strings.Builder
	lo := int64(0)
	for i := range d.Counts {
		var label string
		if i < len(d.Bounds) {
			label = fmt.Sprintf("(%4d,%4d]", lo, d.Bounds[i])
			lo = d.Bounds[i]
		} else {
			label = fmt.Sprintf("(%4d, inf)", lo)
		}
		fmt.Fprintf(&b, "%s %6.1f%%  ", label, 100*d.Fraction(i))
	}
	return strings.TrimSpace(b.String())
}

// LookupDistribution bins the recorded lookup latencies (Fig. 4).
func (c *Collector) LookupDistribution(bounds []int64) Distribution {
	return NewDistribution(bounds, c.lookups)
}

// TransferDistribution bins the recorded transfer distances (Fig. 5).
func (c *Collector) TransferDistribution(bounds []int64) Distribution {
	return NewDistribution(bounds, c.transfers)
}

// Fig4Bounds are the lookup-latency buckets used in our Fig. 4
// rendition (ms).
var Fig4Bounds = []int64{150, 300, 600, 900, 1200, 1800, 2400}

// Fig5Bounds are the transfer-distance buckets used in our Fig. 5
// rendition (ms).
var Fig5Bounds = []int64{50, 100, 150, 200, 300, 400}
