package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"flowercdn/internal/sim"
)

func TestOutcomeClassification(t *testing.T) {
	hits := []Outcome{HitLocalGossip, HitDirectory, HitDirectorySummary}
	for _, o := range hits {
		if !o.IsHit() {
			t.Fatalf("%v should be a hit", o)
		}
	}
	for _, o := range []Outcome{Miss, Unresolved} {
		if o.IsHit() {
			t.Fatalf("%v should not be a hit", o)
		}
	}
	if HitDirectory.String() != "hit-directory" || Miss.String() != "miss" {
		t.Fatal("outcome names wrong")
	}
	if Outcome(99).String() == "" {
		t.Fatal("unknown outcome should still render")
	}
}

func TestHitRatio(t *testing.T) {
	c := NewCollector(sim.Hour)
	for i := 0; i < 6; i++ {
		c.Record(Query{When: 0, Outcome: HitDirectory, LookupLatency: 100, TransferDistance: 50})
	}
	for i := 0; i < 4; i++ {
		c.Record(Query{When: 0, Outcome: Miss, LookupLatency: 1000, TransferDistance: 300})
	}
	if got := c.HitRatio(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("HitRatio = %g, want 0.6", got)
	}
	if c.Total() != 10 || c.Hits() != 6 {
		t.Fatalf("totals: %d/%d", c.Hits(), c.Total())
	}
	if c.Count(HitDirectory) != 6 || c.Count(Miss) != 4 {
		t.Fatal("per-outcome counts wrong")
	}
}

func TestEmptyCollectorSafe(t *testing.T) {
	c := NewCollector(0)
	if c.HitRatio() != 0 || c.MeanLookupLatency() != 0 || c.MeanTransferDistance() != 0 {
		t.Fatal("empty collector should report zeros")
	}
	if len(c.HitRatioSeries()) != 0 {
		t.Fatal("empty collector has no series")
	}
	if c.TailHitRatio(5) != 0 {
		t.Fatal("empty tail ratio should be 0")
	}
}

func TestMeans(t *testing.T) {
	c := NewCollector(sim.Hour)
	c.Record(Query{Outcome: HitDirectory, LookupLatency: 100, TransferDistance: 40})
	c.Record(Query{Outcome: Miss, LookupLatency: 300, TransferDistance: 200})
	// Unresolved queries contribute to hit ratio denominator but not to
	// latency means (there is no provider to measure).
	c.Record(Query{Outcome: Unresolved})
	if got := c.MeanLookupLatency(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("MeanLookupLatency = %g, want 200", got)
	}
	if got := c.MeanTransferDistance(); math.Abs(got-120) > 1e-9 {
		t.Fatalf("MeanTransferDistance = %g, want 120", got)
	}
	if got := c.HitRatio(); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("HitRatio = %g, want 1/3", got)
	}
}

func TestHitRatioSeriesWindows(t *testing.T) {
	c := NewCollector(sim.Hour)
	// Window 0: 1 hit, 1 miss. Window 2: 2 hits.
	c.Record(Query{When: 10 * sim.Minute, Outcome: HitLocalGossip})
	c.Record(Query{When: 50 * sim.Minute, Outcome: Miss})
	c.Record(Query{When: 2*sim.Hour + 1, Outcome: HitDirectory})
	c.Record(Query{When: 2*sim.Hour + 2, Outcome: HitDirectory})
	s := c.HitRatioSeries()
	if len(s) != 3 {
		t.Fatalf("series length %d, want 3", len(s))
	}
	if s[0].HitRatio != 0.5 || s[0].Queries != 2 {
		t.Fatalf("window 0: %+v", s[0])
	}
	if s[1].Queries != 0 || s[1].HitRatio != 0 {
		t.Fatalf("empty window 1: %+v", s[1])
	}
	if s[2].HitRatio != 1 || s[2].Queries != 2 {
		t.Fatalf("window 2: %+v", s[2])
	}
	if s[2].Start != 2*sim.Hour {
		t.Fatalf("window 2 start %d", s[2].Start)
	}
}

func TestTailHitRatio(t *testing.T) {
	c := NewCollector(sim.Hour)
	// Hour 0: all misses; hours 1-2: all hits.
	for i := 0; i < 10; i++ {
		c.Record(Query{When: int64(i), Outcome: Miss})
	}
	for i := 0; i < 10; i++ {
		c.Record(Query{When: sim.Hour + int64(i), Outcome: HitDirectory})
		c.Record(Query{When: 2*sim.Hour + int64(i), Outcome: HitDirectory})
	}
	if got := c.TailHitRatio(2); got != 1 {
		t.Fatalf("TailHitRatio(2) = %g, want 1", got)
	}
	if got := c.TailHitRatio(100); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("TailHitRatio(100) = %g, want overall 2/3", got)
	}
	if got := c.TailHitRatio(0); math.Abs(got-c.HitRatio()) > 1e-9 {
		t.Fatal("TailHitRatio(0) should fall back to overall")
	}
}

func TestDistributionBinning(t *testing.T) {
	d := NewDistribution([]int64{100, 200}, []int64{50, 100, 150, 201, 999})
	// Buckets: <=100: {50,100}; <=200: {150}; >200: {201,999}.
	if d.Counts[0] != 2 || d.Counts[1] != 1 || d.Counts[2] != 2 {
		t.Fatalf("counts = %v", d.Counts)
	}
	if math.Abs(d.Fraction(0)-0.4) > 1e-9 {
		t.Fatalf("Fraction(0) = %g", d.Fraction(0))
	}
	if math.Abs(d.CDFAt(100)-0.4) > 1e-9 || math.Abs(d.CDFAt(200)-0.6) > 1e-9 {
		t.Fatalf("CDF: %g %g", d.CDFAt(100), d.CDFAt(200))
	}
	if math.Abs(d.TailFraction(200)-0.4) > 1e-9 {
		t.Fatalf("TailFraction(200) = %g", d.TailFraction(200))
	}
	if d.Fraction(-1) != 0 || d.Fraction(5) != 0 {
		t.Fatal("out-of-range fractions should be 0")
	}
}

func TestDistributionCDFIsMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		bounds := []int64{100, 500, 1000, 5000, 20000}
		d := NewDistribution(bounds, vals)
		prev := 0.0
		for _, b := range bounds {
			cur := d.CDFAt(b)
			if cur+1e-12 < prev {
				return false
			}
			prev = cur
		}
		return len(vals) == 0 || prev <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorDistributions(t *testing.T) {
	c := NewCollector(sim.Hour)
	c.Record(Query{Outcome: HitDirectory, LookupLatency: 120, TransferDistance: 40})
	c.Record(Query{Outcome: Miss, LookupLatency: 1500, TransferDistance: 250})
	ld := c.LookupDistribution(Fig4Bounds)
	if ld.Total != 2 || math.Abs(ld.CDFAt(150)-0.5) > 1e-9 {
		t.Fatalf("lookup distribution wrong: %+v", ld)
	}
	td := c.TransferDistribution(Fig5Bounds)
	if td.Total != 2 || math.Abs(td.CDFAt(100)-0.5) > 1e-9 {
		t.Fatalf("transfer distribution wrong: %+v", td)
	}
}

func TestDistributionString(t *testing.T) {
	d := NewDistribution([]int64{100}, []int64{50, 150})
	s := d.String()
	if !strings.Contains(s, "50.0%") {
		t.Fatalf("render missing percentages: %q", s)
	}
	if !strings.Contains(s, "inf") {
		t.Fatalf("render missing unbounded bucket: %q", s)
	}
}

func TestInvalidOutcomeCoercedToUnresolved(t *testing.T) {
	c := NewCollector(sim.Hour)
	c.Record(Query{Outcome: Outcome(42)})
	if c.Count(Unresolved) != 1 {
		t.Fatal("invalid outcome not coerced")
	}
}
