package metrics

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 || s.CI95 != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{4.2})
	if s.N != 1 || s.Mean != 4.2 || s.Stddev != 0 || s.CI95 != 0 {
		t.Fatalf("single summary wrong: %+v", s)
	}
	if s.Min != 4.2 || s.Max != 4.2 {
		t.Fatalf("single min/max wrong: %+v", s)
	}
	if got := s.String(); got != "4.200" {
		t.Fatalf("single String = %q", got)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// 1..5: mean 3, sample stddev sqrt(2.5), t(4 df) = 2.776.
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bounds wrong: %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("mean = %v, want 3", s.Mean)
	}
	wantSD := math.Sqrt(2.5)
	if math.Abs(s.Stddev-wantSD) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, wantSD)
	}
	wantCI := 2.776 * wantSD / math.Sqrt(5)
	if math.Abs(s.CI95-wantCI) > 1e-9 {
		t.Fatalf("ci95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestTCritical95(t *testing.T) {
	if got := tCritical95(0); got != 0 {
		t.Fatalf("df=0: %v", got)
	}
	if got := tCritical95(1); got != 12.706 {
		t.Fatalf("df=1: %v", got)
	}
	if got := tCritical95(30); got != 2.042 {
		t.Fatalf("df=30: %v", got)
	}
	if got := tCritical95(1000); got != 1.96 {
		t.Fatalf("df=1000: %v", got)
	}
}
