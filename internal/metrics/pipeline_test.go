package metrics

import (
	"reflect"
	"testing"

	"flowercdn/internal/sim"
)

func TestPipelineFansOut(t *testing.T) {
	coll := NewCollector(sim.Hour)
	counters := NewCounters()
	pipe := NewPipeline(coll)
	pipe.Attach(counters)

	pipe.Emit(QueryEvent(10, HitDirectory, 100, 40))
	pipe.Emit(QueryEvent(20, Miss, 300, 200))
	pipe.Emit(CounterEvent(30, "promotions", 1))
	pipe.Emit(CounterEvent(40, "promotions", 2))

	if coll.Total() != 2 || coll.Hits() != 1 {
		t.Fatalf("collector saw %d/%d", coll.Total(), coll.Hits())
	}
	if counters.Get("promotions") != 3 {
		t.Fatalf("promotions = %g", counters.Get("promotions"))
	}
	if counters.Get("absent") != 0 {
		t.Fatal("absent counter non-zero")
	}
	if got := counters.Names(); !reflect.DeepEqual(got, []string{"promotions"}) {
		t.Fatalf("Names() = %v", got)
	}
	snap := counters.Snapshot()
	snap["promotions"] = 99
	if counters.Get("promotions") != 3 {
		t.Fatal("Snapshot aliases internal state")
	}
	// Counter events do not perturb query aggregates and vice versa.
	if coll.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %g", coll.HitRatio())
	}
}

func TestWindowedAggregatesGenerically(t *testing.T) {
	w := NewWindowed(100)
	w.Observe(QueryEvent(10, HitLocalGossip, 50, 20))
	w.Observe(QueryEvent(90, Miss, 150, 100))
	w.Observe(QueryEvent(250, Unresolved, 0, 0))
	w.Observe(CounterEvent(50, "ignored", 1))

	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	first := w.At(0)
	if first.Total != 2 || first.Hits != 1 || first.Served != 2 {
		t.Fatalf("window 0 = %+v", first)
	}
	if first.MeanLookupMs() != 100 || first.MeanTransferMs() != 60 {
		t.Fatalf("window 0 means = %g/%g", first.MeanLookupMs(), first.MeanTransferMs())
	}
	// Unresolved counts toward total, not served.
	third := w.At(2)
	if third.Total != 1 || third.Served != 0 || third.HitRatio() != 0 {
		t.Fatalf("window 2 = %+v", third)
	}
	if third.MeanLookupMs() != 0 {
		t.Fatal("empty served window mean not 0")
	}

	series := w.Series()
	if len(series) != 3 || series[0].HitRatio != 0.5 || series[0].MeanLookupMs != 100 {
		t.Fatalf("series = %+v", series)
	}
	if series[1].Queries != 0 {
		t.Fatal("gap window not empty")
	}

	hits, total := w.Tail(2)
	if hits != 0 || total != 1 {
		t.Fatalf("Tail(2) = %d/%d", hits, total)
	}
	hits, total = w.Tail(0)
	if hits != 1 || total != 3 {
		t.Fatalf("Tail(0) = %d/%d", hits, total)
	}
}

func TestCollectorIsAnEmitter(t *testing.T) {
	// A bare Collector stands in for a Pipeline in library use.
	var e Emitter = NewCollector(sim.Hour)
	e.Emit(QueryEvent(0, HitDirectory, 10, 5))
	c := e.(*Collector)
	if c.Total() != 1 || c.Count(HitDirectory) != 1 {
		t.Fatal("Emit did not record")
	}
	// Record remains equivalent to Emit for existing callers.
	c.Record(Query{When: 1, Outcome: Miss, LookupLatency: 20, TransferDistance: 10})
	if c.Total() != 2 || c.Count(Miss) != 1 {
		t.Fatal("Record did not route through Observe")
	}
}

func TestWindowedBreaksOutEvictions(t *testing.T) {
	w := NewWindowed(100)
	w.Observe(CounterEvent(10, CounterEvictions, 1))
	w.Observe(CounterEvent(20, CounterEvictions, 1))
	w.Observe(CounterEvent(250, CounterEvictions, 3))
	w.Observe(CounterEvent(30, "promotions", 7)) // other counters pass through

	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	if got := w.At(0).Evictions; got != 2 {
		t.Fatalf("window 0 evictions = %g", got)
	}
	if got := w.At(1).Evictions; got != 0 {
		t.Fatalf("window 1 evictions = %g", got)
	}
	if got := w.At(2).Evictions; got != 3 {
		t.Fatalf("window 2 evictions = %g", got)
	}
	series := w.Series()
	if series[0].Evictions != 2 || series[2].Evictions != 3 {
		t.Fatalf("series evictions = %+v", series)
	}
	// Eviction-only windows hold no queries.
	if series[2].Queries != 0 || series[2].HitRatio != 0 {
		t.Fatalf("eviction-only window gained queries: %+v", series[2])
	}
}

func TestCollectorForwardsEvictionsToWindows(t *testing.T) {
	c := NewCollector(100)
	c.Emit(QueryEvent(10, HitDirectory, 50, 20))
	c.Emit(CounterEvent(40, CounterEvictions, 2))
	if got := c.Windows().At(0).Evictions; got != 2 {
		t.Fatalf("collector window evictions = %g", got)
	}
	// Counter events never perturb the query aggregates.
	if c.Total() != 1 || c.Hits() != 1 {
		t.Fatalf("counters leaked into query totals: %d/%d", c.Total(), c.Hits())
	}
	series := c.HitRatioSeries()
	if len(series) != 1 || series[0].Evictions != 2 {
		t.Fatalf("series = %+v", series)
	}
}
