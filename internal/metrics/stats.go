package metrics

import (
	"fmt"
	"math"
)

// Stat summarizes one metric over repeated runs: the sample mean and
// standard deviation plus a 95% confidence half-width for the mean
// (Student's t), the shape multi-seed sweeps report each cell in.
type Stat struct {
	// N is the number of observations.
	N int
	// Mean is the sample mean; 0 when N == 0.
	Mean float64
	// Stddev is the sample (n-1) standard deviation; 0 when N < 2.
	Stddev float64
	// CI95 is the half-width of the two-sided 95% confidence interval
	// for the mean, so the interval is Mean ± CI95; 0 when N < 2.
	CI95 float64
	// Min and Max bound the observations; 0 when N == 0.
	Min, Max float64
}

// Summarize computes a Stat over the given observations.
func Summarize(values []float64) Stat {
	s := Stat{N: len(values)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = values[0], values[0]
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = tCritical95(s.N-1) * s.Stddev / math.Sqrt(float64(s.N))
	return s
}

// String renders "mean ± ci95" (or just the mean for a single run).
func (s Stat) String() string {
	if s.N < 2 {
		return fmt.Sprintf("%.3f", s.Mean)
	}
	return fmt.Sprintf("%.3f ±%.3f", s.Mean, s.CI95)
}

// tTable95 holds two-sided 95% Student's t critical values for 1–30
// degrees of freedom (index 0 is df=1).
var tTable95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% Student's t critical value for
// the given degrees of freedom, falling back to the normal-approximation
// 1.96 beyond the table.
func tCritical95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.96
}
