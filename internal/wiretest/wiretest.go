// Package wiretest is the shared round-trip harness for protocol wire
// messages: each protocol package's wire_test.go pushes realistic,
// fully populated exemplars (nested interface payloads included)
// through every registered codec and asserts nothing changes in
// flight. It complements the socket backend's reflect-driven
// TestCodecEquivalence, which covers every registered type but leaves
// interface-typed fields nil.
package wiretest

import (
	"bytes"
	"reflect"
	"testing"

	"flowercdn/internal/runtime"
)

// RoundTrip encodes msg with every registered codec, decodes it back,
// and fails unless the result is DeepEqual to the original. For the
// binary codec it additionally re-encodes the decoded value and
// requires byte identity — the canonical-encoding property the fuzz
// targets rely on.
//
// Gob drops zero-valued fields and turns empty collections into nil,
// so exemplars should use nil (not empty non-nil) slices and maps for
// absent collections; the binary codec mirrors that convention.
func RoundTrip(t *testing.T, msg any) {
	t.Helper()
	for _, name := range runtime.Codecs() {
		c, err := runtime.NewCodec(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		enc, err := c.AppendMessage(nil, msg)
		if err != nil {
			t.Fatalf("%s: encode %T: %v", name, msg, err)
		}
		dec, err := c.DecodeMessage(enc)
		if err != nil {
			t.Fatalf("%s: decode %T: %v", name, msg, err)
		}
		if !reflect.DeepEqual(dec, msg) {
			t.Fatalf("%s: %T changed across the round trip:\n in: %#v\nout: %#v", name, msg, msg, dec)
		}
		if name != "binary" {
			continue
		}
		re, err := c.AppendMessage(nil, dec)
		if err != nil {
			t.Fatalf("binary: re-encode %T: %v", msg, err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("binary: %T re-encode is not canonical:\n in: %x\nout: %x", msg, enc, re)
		}
	}
}
