package trace

import (
	"bytes"
	"testing"

	"flowercdn/internal/metrics"
	"flowercdn/internal/runtime"
	"flowercdn/internal/wiretest"
)

// exemplar is a fully populated trace record — every field non-zero,
// every hop kind represented — so the round trip exercises the whole
// encoding.
func exemplar() *Record {
	return &Record{
		Query:    7,
		Client:   42,
		Loc:      3,
		Key:      0xdeadbeefcafe,
		Outcome:  metrics.HitDirectory,
		Attempts: 2,
		Hops: []Hop{
			{Kind: HopIssue, Node: 42, Loc: 3, At: 100},
			{Kind: HopRoute, Node: 7, Loc: 1, At: 130},
			{Kind: HopScan, Node: 8, Loc: 2, At: 140},
			{Kind: HopHome, Node: 9, Loc: 0, At: 160},
			{Kind: HopProbe, Node: 11, Loc: 3, At: 180, FalsePositive: true},
			{Kind: HopServe, Node: 12, Loc: 3, At: 200},
		},
	}
}

func TestRecordWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, exemplar())
	wiretest.RoundTrip(t, &Record{Query: 1, Client: runtime.None}) // no hops
}

// FuzzRecordWire is the trace record's binary-wire hardening: records
// cross process boundaries on the socket backend's announcement bus,
// so the decoder must reject arbitrary bytes cleanly — never panic —
// and anything it accepts must re-encode to exactly the input bytes
// (the codec's canonical-encoding property).
func FuzzRecordWire(f *testing.F) {
	for _, rec := range []*Record{
		exemplar(),
		{Query: 1, Client: runtime.None},
		{Hops: []Hop{{Kind: HopServe, Node: 0, At: 1}}},
	} {
		w := runtime.NewWireWriter(nil)
		rec.AppendWire(w)
		if w.Err() != nil {
			f.Fatal(w.Err())
		}
		f.Add(w.Finish())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := runtime.NewWireReader(data)
		dec := (*Record)(nil).DecodeWire(r)
		if r.Err() != nil || r.Len() != 0 {
			return // rejected (or trailing garbage) — that is the contract
		}
		rec, ok := dec.(*Record)
		if !ok {
			t.Fatalf("DecodeWire returned %T", dec)
		}
		w := runtime.NewWireWriter(nil)
		rec.AppendWire(w)
		if w.Err() != nil {
			t.Fatalf("accepted record does not re-encode: %v (%+v)", w.Err(), rec)
		}
		if enc := w.Finish(); !bytes.Equal(enc, data) {
			t.Fatalf("accepted record is not canonical:\n in: %x\nout: %x", data, enc)
		}
	})
}
