package trace

import (
	"flowercdn/internal/metrics"
	"flowercdn/internal/runtime"
)

// The trace record is a registered wire message so socket-backend
// follower processes can ship completed traces home to group 0 over
// the announcement bus. Hop paths embedded in protocol messages
// (route messages, directory responses) reuse the same field
// encoding through AppendHopsWire/DecodeHopsWire. Trace payloads are
// telemetry: no WireBytes method, so modeled traffic accounting — and
// with it the run fingerprint — is independent of tracing.

func init() {
	runtime.RegisterWireType(&Record{})
}

// hopWireBytes is the minimum encoded size of one hop (kind byte +
// three one-byte varints + flag byte), the ArrayLen bound hostile
// length prefixes are checked against.
const hopWireBytes = 5

// AppendHopsWire appends a length-prefixed hop path.
func AppendHopsWire(w *runtime.WireWriter, hops []Hop) {
	w.Uvarint(uint64(len(hops)))
	for _, h := range hops {
		w.U8(byte(h.Kind))
		w.Node(h.Node)
		w.Varint(int64(h.Loc))
		w.Varint(h.At)
		w.Bool(h.FalsePositive)
	}
}

// DecodeHopsWire decodes a length-prefixed hop path (nil when empty).
func DecodeHopsWire(r *runtime.WireReader) []Hop {
	n := r.ArrayLen(hopWireBytes)
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]Hop, n)
	for i := range out {
		// Any kind byte is accepted: the codec contract (socknet's
		// equivalence test) requires binary to deliver exactly what gob
		// delivers, and an unknown kind still re-encodes canonically.
		out[i] = Hop{
			Kind:          HopKind(r.U8()),
			Node:          r.Node(),
			Loc:           runtime.Locality(r.Varint()),
			At:            r.Varint(),
			FalsePositive: r.Bool(),
		}
	}
	return out
}

// AppendWire implements runtime.WireMessage.
func (rec *Record) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(rec.Query)
	w.Node(rec.Client)
	w.Varint(int64(rec.Loc))
	w.U64(rec.Key)
	w.Varint(int64(rec.Outcome))
	w.Varint(int64(rec.Attempts))
	AppendHopsWire(w, rec.Hops)
}

// DecodeWire implements runtime.WireMessage; it returns a *Record to
// match the registered pointer type.
func (*Record) DecodeWire(r *runtime.WireReader) any {
	rec := &Record{
		Query:    r.Uvarint(),
		Client:   r.Node(),
		Loc:      runtime.Locality(r.Varint()),
		Key:      r.U64(),
		Outcome:  metrics.Outcome(r.Varint()),
		Attempts: int(r.Varint()),
	}
	rec.Hops = DecodeHopsWire(r)
	return rec
}
