// Package trace is the opt-in per-query lookup tracer built on the
// metrics pipeline: every completed query can carry a hop-by-hop
// record of its resolution path — which nodes it visited, in which
// localities, at what times, and which probes were summary false
// positives — uniformly across the sim, realtime and socket backends.
//
// The design contract is zero overhead while disabled: a nil *Tracer
// is fully usable (Enabled reports false, Delivered and Emit are
// no-ops), drivers gate every hop append on Enabled(), no message
// grows its modeled WireBytes, and trace events use their own event
// Kind that every aggregate metrics sink lets fall through — so run
// fingerprints are identical with tracing on or off.
package trace

import (
	"fmt"
	"sync"

	"flowercdn/internal/metrics"
	"flowercdn/internal/runtime"
)

// HopKind classifies one step of a query's resolution path.
type HopKind uint8

const (
	// HopIssue marks the querying client at submission time.
	HopIssue HopKind = iota
	// HopRoute is one overlay forwarding (a Chord finger / successor
	// step or a Koorde de Bruijn step) toward the directory position.
	HopRoute
	// HopScan is a PetalUp sequential-scan forward to the next
	// directory instance.
	HopScan
	// HopHome marks the directory/home node that answered the query
	// (or a collaboration sibling consulted on the way).
	HopHome
	// HopProbe is one provider fetch-probe by the client; its
	// FalsePositive flag marks a probe that answered but did not hold
	// the object (stale summary or Bloom false positive).
	HopProbe
	// HopServe is the terminal hop: the node that provided the object
	// (a content peer on hits, the origin server on misses).
	HopServe

	numHopKinds
)

// String names a hop kind (CSV and report vocabulary).
func (k HopKind) String() string {
	switch k {
	case HopIssue:
		return "issue"
	case HopRoute:
		return "route"
	case HopScan:
		return "scan"
	case HopHome:
		return "home"
	case HopProbe:
		return "probe"
	case HopServe:
		return "serve"
	default:
		return fmt.Sprintf("hop(%d)", int(k))
	}
}

// Hop is one step of a query's path.
type Hop struct {
	Kind HopKind
	// Node is the node this step arrived at (for HopRoute: the forward
	// destination).
	Node runtime.NodeID
	// Loc is Node's physical locality.
	Loc runtime.Locality
	// At is the time the step happened, in run milliseconds.
	At int64
	// FalsePositive marks a HopProbe that answered alive but did not
	// hold the object.
	FalsePositive bool
}

// Record is one completed query's trace.
type Record struct {
	// Query is the driver's process-unique query sequence number.
	Query uint64
	// Client is the querying node; Loc its locality.
	Client runtime.NodeID
	Loc    runtime.Locality
	// Key is the queried object key (content.Key.Uint64 form).
	Key uint64
	// Outcome is the query's metrics outcome.
	Outcome metrics.Outcome
	// Attempts counts routed submission attempts (1 = no retry).
	Attempts int
	// Hops is the path, in nondecreasing At order; the last hop is
	// HopServe naming the providing node.
	Hops []Hop
}

// RouteHops counts the overlay forwardings in the record's path.
func (r *Record) RouteHops() int {
	n := 0
	for _, h := range r.Hops {
		if h.Kind == HopRoute {
			n++
		}
	}
	return n
}

// Append adds a hop to a path, clamping its timestamp so the path
// stays nondecreasing even when a late duplicate response merges hops
// recorded before an already-appended step.
func Append(path []Hop, h Hop) []Hop {
	if n := len(path); n > 0 && h.At < path[n-1].At {
		h.At = path[n-1].At
	}
	return append(path, h)
}

// Concat appends a remote path segment (e.g. the ring hops a response
// shipped back) hop by hop, with the same monotonicity clamp.
func Concat(path []Hop, seg []Hop) []Hop {
	for _, h := range seg {
		path = Append(path, h)
	}
	return path
}

// CopyHops returns an owned copy of a path (drivers that pool their
// query state hand records a copy so recycling cannot mutate them).
func CopyHops(path []Hop) []Hop {
	if len(path) == 0 {
		return nil
	}
	out := make([]Hop, len(path))
	copy(out, path)
	return out
}

// Stats is the tracer's delivery tally — the same accounting the
// `lookup_hops`/`routed_queries` counters feed, kept alongside so a
// conformance check can assert the two never drift.
type Stats struct {
	// RoutedQueries counts overlay-routed queries delivered at their
	// home/directory node; RouteHops sums their forwarding counts.
	RoutedQueries uint64
	RouteHops     uint64
}

// MeanHops returns RouteHops/RoutedQueries (0 when nothing routed) —
// by construction identical to the counter-derived Result.MeanHops.
func (s Stats) MeanHops() float64 {
	if s.RoutedQueries == 0 {
		return 0
	}
	return float64(s.RouteHops) / float64(s.RoutedQueries)
}

// Tracer is the per-run trace emitter drivers hold (via proto.Env). A
// nil Tracer is the disabled state: every method is a safe no-op and
// Enabled reports false, so call sites need no nil checks of their
// own and the disabled path allocates nothing.
type Tracer struct {
	sink  metrics.Emitter
	stats Stats
}

// New builds a tracer that emits KindTrace events into sink.
func New(sink metrics.Emitter) *Tracer {
	return &Tracer{sink: sink}
}

// Enabled reports whether tracing is on; drivers gate all hop
// construction on it.
func (t *Tracer) Enabled() bool { return t != nil }

// Delivered tallies one overlay-routed query delivered after hops
// forwardings. Drivers call it unconditionally right beside their
// `lookup_hops`/`routed_queries` counter emissions; on a nil tracer it
// does nothing and allocates nothing.
func (t *Tracer) Delivered(hops int) {
	if t == nil {
		return
	}
	t.stats.RoutedQueries++
	t.stats.RouteHops += uint64(hops)
}

// Stats returns the delivery tally.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return t.stats
}

// Emit streams one completed query's record into the metrics
// pipeline. The record must own its Hops slice (see CopyHops).
func (t *Tracer) Emit(now int64, rec *Record) {
	if t == nil || rec == nil {
		return
	}
	t.sink.Emit(metrics.TraceEvent(now, rec))
}

// Collector is the metrics.Sink that gathers emitted trace records.
// It is mutex-guarded because on wall-clock backends the HTTP
// observability endpoint may read while the run loop appends.
type Collector struct {
	mu   sync.Mutex
	recs []*Record
}

// Observe implements metrics.Sink.
func (c *Collector) Observe(ev metrics.Event) {
	if ev.Kind != metrics.KindTrace {
		return
	}
	if rec, ok := ev.Trace.(*Record); ok {
		c.Add(rec)
	}
}

// Add appends one record (also the entry point for records shipped
// home over a multi-process bus).
func (c *Collector) Add(rec *Record) {
	if rec == nil {
		return
	}
	c.mu.Lock()
	c.recs = append(c.recs, rec)
	c.mu.Unlock()
}

// Records returns a snapshot of everything collected so far.
func (c *Collector) Records() []*Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Record, len(c.recs))
	copy(out, c.recs)
	return out
}

// Len returns the number of collected records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}
