package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"flowercdn/internal/metrics"
	"flowercdn/internal/runtime"
)

// CSV export/import: one row per hop, records ordered by query
// sequence number. The ordering makes the stream a canonical function
// of the record set, so two deterministic runs of the same cell
// produce byte-identical files regardless of collection order — the
// property the determinism test and the sim-vs-socket trace diff rely
// on.

var csvHeader = []string{
	"query", "client", "loc", "key", "outcome", "attempts",
	"hop", "kind", "node", "hop_loc", "at_ms", "false_positive",
}

// SortRecords orders records canonically: by query sequence, then
// client (retry-free tiebreak for merged multi-process streams).
func SortRecords(recs []*Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Query != recs[j].Query {
			return recs[i].Query < recs[j].Query
		}
		return recs[i].Client < recs[j].Client
	})
}

// WriteCSV writes the records (canonically sorted) as CSV.
func WriteCSV(w io.Writer, recs []*Record) error {
	sorted := make([]*Record, len(recs))
	copy(sorted, recs)
	SortRecords(sorted)
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for _, rec := range sorted {
		for i, h := range rec.Hops {
			row[0] = strconv.FormatUint(rec.Query, 10)
			row[1] = strconv.FormatInt(int64(rec.Client), 10)
			row[2] = strconv.Itoa(int(rec.Loc))
			row[3] = strconv.FormatUint(rec.Key, 10)
			row[4] = strconv.Itoa(int(rec.Outcome))
			row[5] = strconv.Itoa(rec.Attempts)
			row[6] = strconv.Itoa(i)
			row[7] = h.Kind.String()
			row[8] = strconv.FormatInt(int64(h.Node), 10)
			row[9] = strconv.Itoa(int(h.Loc))
			row[10] = strconv.FormatInt(h.At, 10)
			row[11] = strconv.FormatBool(h.FalsePositive)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// kindFromString inverts HopKind.String for the CSV reader.
func kindFromString(s string) (HopKind, error) {
	for k := HopKind(0); k < numHopKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown hop kind %q", s)
}

// ReadCSV parses a WriteCSV stream back into records.
func ReadCSV(r io.Reader) ([]*Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	var out []*Record
	var cur *Record
	for _, row := range rows[1:] {
		ints := make([]int64, 0, 9)
		for _, idx := range []int{0, 1, 2, 4, 5, 6, 8, 9, 10} {
			v, err := strconv.ParseInt(row[idx], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad CSV field %q: %w", row[idx], err)
			}
			ints = append(ints, v)
		}
		key, err := strconv.ParseUint(row[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad key %q: %w", row[3], err)
		}
		kind, err := kindFromString(row[7])
		if err != nil {
			return nil, err
		}
		fp, err := strconv.ParseBool(row[11])
		if err != nil {
			return nil, fmt.Errorf("trace: bad false_positive %q: %w", row[11], err)
		}
		query, client, loc := uint64(ints[0]), runtime.NodeID(ints[1]), runtime.Locality(ints[2])
		outcome, attempts, hopIdx := metrics.Outcome(ints[3]), int(ints[4]), int(ints[5])
		if cur == nil || hopIdx == 0 {
			cur = &Record{
				Query: query, Client: client, Loc: loc, Key: key,
				Outcome: outcome, Attempts: attempts,
			}
			out = append(out, cur)
		}
		cur.Hops = append(cur.Hops, Hop{
			Kind:          kind,
			Node:          runtime.NodeID(ints[6]),
			Loc:           runtime.Locality(ints[7]),
			At:            ints[8],
			FalsePositive: fp,
		})
	}
	return out, nil
}
