package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"flowercdn/internal/runtime"
)

// Per-hop latency breakdown: the report answering the paper's "where
// does flower's locality win come from" question. Each consecutive
// hop pair contributes its timestamp delta to the later hop's kind;
// when the caller can supply the backend's modeled link latency
// (harness exposes it as Result.HopLatency), the delta further splits
// into link time vs queue/processing time.

// LatencyFunc returns the modeled one-way link latency between two
// nodes in ms (the topology's distance function).
type LatencyFunc func(from, to runtime.NodeID) int64

// KindStats aggregates the latency contribution of one hop kind.
type KindStats struct {
	// Hops counts hops of this kind across all records.
	Hops int
	// TotalMs sums the timestamp deltas attributed to this kind.
	TotalMs int64
	// LinkMs/QueueMs split TotalMs into modeled propagation vs
	// queue+processing time; both stay 0 without a LatencyFunc.
	LinkMs  int64
	QueueMs int64
}

// Breakdown is the aggregate per-hop latency decomposition of a trace
// set.
type Breakdown struct {
	// Records and Hops count the inputs.
	Records int
	Hops    int
	// ByKind indexes KindStats by HopKind.
	ByKind [numHopKinds]KindStats
	// MeanRouteHops is the mean number of overlay forwardings per
	// record.
	MeanRouteHops float64
	// WithinLocality is the fraction of records whose serving node sits
	// in the client's own locality.
	WithinLocality float64
	// FalsePositives counts probe hops flagged as summary false
	// positives.
	FalsePositives int
	// MeanTotalMs is the mean issue-to-serve wall time per record.
	MeanTotalMs float64
	// Split reports whether a LatencyFunc was available for the
	// link/queue decomposition.
	Split bool
}

// Analyze computes the per-hop latency breakdown of a record set.
// latFn may be nil; then only the per-kind totals are reported.
func Analyze(recs []*Record, latFn LatencyFunc) Breakdown {
	var b Breakdown
	b.Split = latFn != nil
	routeHops := 0
	within := 0
	var totalMs int64
	for _, rec := range recs {
		if rec == nil || len(rec.Hops) == 0 {
			continue
		}
		b.Records++
		prev := rec.Hops[0]
		b.ByKind[prev.Kind].Hops++
		b.Hops++
		for _, h := range rec.Hops[1:] {
			b.Hops++
			ks := &b.ByKind[h.Kind]
			ks.Hops++
			delta := h.At - prev.At
			if delta < 0 {
				delta = 0
			}
			ks.TotalMs += delta
			if latFn != nil {
				link := latFn(prev.Node, h.Node)
				if link > delta {
					link = delta
				}
				if link < 0 {
					link = 0
				}
				ks.LinkMs += link
				ks.QueueMs += delta - link
			}
			if h.Kind == HopRoute {
				routeHops++
			}
			if h.Kind == HopProbe && h.FalsePositive {
				b.FalsePositives++
			}
			prev = h
		}
		totalMs += prev.At - rec.Hops[0].At
		last := rec.Hops[len(rec.Hops)-1]
		if last.Kind == HopServe && last.Loc == rec.Loc {
			within++
		}
	}
	if b.Records > 0 {
		b.MeanRouteHops = float64(routeHops) / float64(b.Records)
		b.WithinLocality = float64(within) / float64(b.Records)
		b.MeanTotalMs = float64(totalMs) / float64(b.Records)
	}
	return b
}

// Format renders the breakdown as the flowerbench report block.
func (b Breakdown) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "traces: %d records, %d hops, mean %.2f route hops, %.1f%% served within locality, mean %.1f ms issue→serve\n",
		b.Records, b.Hops, b.MeanRouteHops, 100*b.WithinLocality, b.MeanTotalMs)
	if b.FalsePositives > 0 {
		fmt.Fprintf(&sb, "summary false positives: %d probe hops\n", b.FalsePositives)
	}
	fmt.Fprintf(&sb, "%-8s %8s %12s", "kind", "hops", "total-ms")
	if b.Split {
		fmt.Fprintf(&sb, " %12s %12s", "link-ms", "queue-ms")
	}
	sb.WriteByte('\n')
	for k := HopKind(0); k < numHopKinds; k++ {
		ks := b.ByKind[k]
		if ks.Hops == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-8s %8d %12d", k.String(), ks.Hops, ks.TotalMs)
		if b.Split {
			fmt.Fprintf(&sb, " %12d %12d", ks.LinkMs, ks.QueueMs)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DiffReport compares two trace sets of the same cell — typically a
// sim run against a socket run — distributionally: per-kind hop
// counts, route-hop distribution, and outcome mix.
type DiffReport struct {
	A, B     Breakdown
	ALabel   string
	BLabel   string
	Warnings []string
}

// Diff analyzes both record sets (without latency split — the two
// backends model time differently, so only structure is comparable)
// and collects structural discrepancies.
func Diff(aLabel string, a []*Record, bLabel string, b []*Record) DiffReport {
	rep := DiffReport{
		A:      Analyze(a, nil),
		B:      Analyze(b, nil),
		ALabel: aLabel,
		BLabel: bLabel,
	}
	if rep.A.Records != rep.B.Records {
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("record count differs: %s=%d %s=%d", aLabel, rep.A.Records, bLabel, rep.B.Records))
	}
	for k := HopKind(0); k < numHopKinds; k++ {
		ah, bh := rep.A.ByKind[k].Hops, rep.B.ByKind[k].Hops
		if ah != bh {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("%s hop count differs: %s=%d %s=%d", k.String(), aLabel, ah, bLabel, bh))
		}
	}
	if d := math.Abs(rep.A.MeanRouteHops - rep.B.MeanRouteHops); d > 1e-9 {
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("mean route hops differ by %.3f: %s=%.3f %s=%.3f",
				d, aLabel, rep.A.MeanRouteHops, bLabel, rep.B.MeanRouteHops))
	}
	// Per-query structural comparison where both sets carry the same
	// query sequence numbers.
	byQuery := func(recs []*Record) map[uint64]*Record {
		m := make(map[uint64]*Record, len(recs))
		for _, r := range recs {
			if r != nil {
				m[r.Query] = r
			}
		}
		return m
	}
	am, bm := byQuery(a), byQuery(b)
	mismatched := 0
	var sample []uint64
	for q, ar := range am {
		br, ok := bm[q]
		if !ok {
			continue
		}
		if !samePath(ar, br) {
			mismatched++
			if len(sample) < 5 {
				sample = append(sample, q)
			}
		}
	}
	if mismatched > 0 {
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("%d shared queries resolve along different paths (e.g. %v)", mismatched, sample))
	}
	return rep
}

// samePath reports whether two records traversed the same node
// sequence with the same hop kinds and outcome (timestamps are
// backend-specific and excluded).
func samePath(a, b *Record) bool {
	if a.Outcome != b.Outcome || len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i].Kind != b.Hops[i].Kind || a.Hops[i].Node != b.Hops[i].Node {
			return false
		}
	}
	return true
}

// Format renders the diff report.
func (d DiffReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n%s", d.ALabel, d.A.Format())
	fmt.Fprintf(&sb, "--- %s\n%s", d.BLabel, d.B.Format())
	if len(d.Warnings) == 0 {
		sb.WriteString("structurally identical: same hop mix, same per-query paths\n")
	} else {
		for _, w := range d.Warnings {
			fmt.Fprintf(&sb, "warn: %s\n", w)
		}
	}
	return sb.String()
}
