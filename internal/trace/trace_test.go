package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"flowercdn/internal/metrics"
)

func TestAppendClampsTimestamps(t *testing.T) {
	path := Append(nil, Hop{Kind: HopIssue, Node: 1, At: 100})
	path = Append(path, Hop{Kind: HopRoute, Node: 2, At: 90}) // late merge
	path = Append(path, Hop{Kind: HopServe, Node: 3, At: 150})
	want := []int64{100, 100, 150}
	for i, h := range path {
		if h.At != want[i] {
			t.Fatalf("hop %d at %d, want %d", i, h.At, want[i])
		}
	}
}

func TestConcatClampsSegments(t *testing.T) {
	client := Append(nil, Hop{Kind: HopIssue, Node: 1, At: 200})
	// A response ships back ring hops recorded before the local clock
	// reached 200: the merged path must stay nondecreasing.
	remote := []Hop{
		{Kind: HopRoute, Node: 5, At: 120},
		{Kind: HopHome, Node: 6, At: 180},
	}
	merged := Concat(client, remote)
	if len(merged) != 3 {
		t.Fatalf("got %d hops, want 3", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At < merged[i-1].At {
			t.Fatalf("non-monotone at hop %d: %d < %d", i, merged[i].At, merged[i-1].At)
		}
	}
	if merged[1].At != 200 || merged[2].At != 200 {
		t.Fatalf("remote hops not clamped: %+v", merged)
	}
}

func TestCopyHopsOwnership(t *testing.T) {
	if CopyHops(nil) != nil {
		t.Fatal("CopyHops(nil) should be nil")
	}
	if CopyHops([]Hop{}) != nil {
		t.Fatal("CopyHops(empty) should be nil")
	}
	orig := []Hop{{Kind: HopIssue, Node: 1, At: 1}}
	cp := CopyHops(orig)
	orig[0].Node = 99 // pooled-state recycling must not reach the copy
	if cp[0].Node != 1 {
		t.Fatalf("copy aliases the original: %+v", cp)
	}
}

func TestStatsMeanHops(t *testing.T) {
	if got := (Stats{}).MeanHops(); got != 0 {
		t.Fatalf("empty stats mean hops = %v, want 0", got)
	}
	s := Stats{RoutedQueries: 4, RouteHops: 10}
	if got := s.MeanHops(); got != 2.5 {
		t.Fatalf("mean hops = %v, want 2.5", got)
	}
}

// TestNilTracerIsDisabled pins the zero-overhead contract: a nil
// *Tracer is the disabled state, every method is safe, and the calls
// drivers make unconditionally (Delivered, Emit) allocate nothing.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Delivered(3) // must not panic
	tr.Emit(10, &Record{Query: 1})
	if s := tr.Stats(); s != (Stats{}) {
		t.Fatalf("nil tracer has stats %+v", s)
	}

	rec := &Record{Query: 1}
	allocs := testing.AllocsPerRun(100, func() {
		if tr.Enabled() {
			t.Fatal("enabled mid-run")
		}
		tr.Delivered(5)
		tr.Emit(42, rec)
	})
	if allocs != 0 {
		t.Fatalf("disabled-path calls allocate %v per run, want 0", allocs)
	}
}

func TestTracerEmitReachesCollector(t *testing.T) {
	coll := &Collector{}
	tr := New(metrics.NewPipeline(coll))
	if !tr.Enabled() {
		t.Fatal("live tracer reports disabled")
	}
	tr.Delivered(2)
	tr.Delivered(4)
	rec := &Record{Query: 7, Client: 3, Key: 99, Hops: []Hop{{Kind: HopServe, Node: 3, At: 5}}}
	tr.Emit(5, rec)
	if got := tr.Stats(); got != (Stats{RoutedQueries: 2, RouteHops: 6}) {
		t.Fatalf("stats %+v", got)
	}
	if coll.Len() != 1 {
		t.Fatalf("collector has %d records, want 1", coll.Len())
	}
	if got := coll.Records()[0]; got != rec {
		t.Fatalf("collector holds %p, want %p", got, rec)
	}
}

// TestCollectorIgnoresOtherKinds: aggregate metrics events must fall
// through the trace collector untouched.
func TestCollectorIgnoresOtherKinds(t *testing.T) {
	coll := &Collector{}
	coll.Observe(metrics.Event{Kind: metrics.KindQuery})
	coll.Observe(metrics.Event{Kind: metrics.KindCounter})
	coll.Add(nil)
	if coll.Len() != 0 {
		t.Fatalf("collector caught %d non-trace events", coll.Len())
	}
}

func TestRecordRouteHops(t *testing.T) {
	rec := &Record{Hops: []Hop{
		{Kind: HopIssue}, {Kind: HopRoute}, {Kind: HopRoute},
		{Kind: HopHome}, {Kind: HopServe},
	}}
	if got := rec.RouteHops(); got != 2 {
		t.Fatalf("route hops = %d, want 2", got)
	}
}

func testRecords() []*Record {
	return []*Record{
		{
			Query: 2, Client: 5, Loc: 1, Key: 42, Outcome: metrics.HitDirectory, Attempts: 1,
			Hops: []Hop{
				{Kind: HopIssue, Node: 5, Loc: 1, At: 10},
				{Kind: HopRoute, Node: 7, Loc: 2, At: 30},
				{Kind: HopHome, Node: 9, Loc: 0, At: 55},
				{Kind: HopProbe, Node: 11, Loc: 1, At: 70, FalsePositive: true},
				{Kind: HopServe, Node: 12, Loc: 1, At: 90},
			},
		},
		{
			Query: 1, Client: 3, Loc: 0, Key: 7, Outcome: metrics.Miss, Attempts: 2,
			Hops: []Hop{
				{Kind: HopIssue, Node: 3, Loc: 0, At: 5},
				{Kind: HopScan, Node: 4, Loc: 2, At: 25},
				{Kind: HopServe, Node: 0, Loc: 0, At: 60},
			},
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := testRecords()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// WriteCSV sorts canonically, so compare against the sorted view.
	want := append([]*Record{}, recs...)
	SortRecords(want)
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip changed records:\n in: %+v\nout: %+v", want, back)
	}
}

// TestCSVCanonicalOrder: the byte stream is a function of the record
// set, not of collection order — the property the determinism test and
// tracediff build on.
func TestCSVCanonicalOrder(t *testing.T) {
	recs := testRecords()
	var a, b bytes.Buffer
	if err := WriteCSV(&a, recs); err != nil {
		t.Fatal(err)
	}
	rev := []*Record{recs[1], recs[0]}
	if err := WriteCSV(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("CSV depends on collection order:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not,a,trace\n",
		strings.Join(csvHeader, ",") + "\n1,2,3,4,5,6,0,warp,8,9,10,false\n",
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadCSV accepted %q", bad)
		}
	}
}
