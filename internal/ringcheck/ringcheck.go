// Package ringcheck is a correctness oracle for the ring overlays: it
// takes a point-in-time snapshot of every alive member's routing state
// (proto.RingInspector) and checks the invariants Zave's "How to Make
// Chord Correct" proves sufficient for eventual lookup correctness —
// there is at least one ring, at most one ring, the ring is ordered,
// and every appendage node is connected to the ring — plus, for Koorde
// deployments, that each member's de Bruijn pointer set actually
// brackets its pointer anchor.
//
// The analysis runs over the EFFECTIVE successor graph: each member's
// first successor-list entry that is alive in the snapshot. That is
// the edge a lookup would actually traverse after the next repair, so
// the oracle tolerates not-yet-noticed failures without tolerating
// real partitions. The whole check is deterministic in the snapshot
// order, so sim-backend runs report identical violations every time.
package ringcheck

import (
	"fmt"
	"sort"

	"flowercdn/internal/ids"
	"flowercdn/internal/proto"
	"flowercdn/internal/runtime"
)

// Options tunes the oracle.
type Options struct {
	// DegreeBits enables the Koorde de Bruijn pointer check: each
	// member's pointer set must bracket predecessor(id << DegreeBits).
	// 0 disables the check (plain Chord rings).
	DegreeBits int
	// StaleSteps is the tolerated ring-position lag between a cached de
	// Bruijn pointer and the true anchor — churn moves the anchor
	// between pointer refreshes, and a lagging pointer only costs
	// correction hops. Defaults to DefaultStaleSteps when 0.
	StaleSteps int
}

// DefaultStaleSteps is the pointer lag tolerance when Options leaves it
// unset.
const DefaultStaleSteps = 8

// Violation is one invariant breach, attributed to a member when the
// breach is local.
type Violation struct {
	// Kind classifies the breach: "broken-chain", "no-ring",
	// "multiple-rings", "disordered-ring", "duplicate-position",
	// "no-pointers" or "bad-pointer".
	Kind string
	// Node is the member the violation is attributed to (None for
	// global breaches like "no-ring").
	Node runtime.NodeID
	// Detail is a human-readable account.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[%v]: %s", v.Kind, v.Node, v.Detail)
}

// Report is the outcome of one snapshot check.
type Report struct {
	// Members is the snapshot size.
	Members int
	// RingSize is the length of the (largest) cycle in the effective
	// successor graph.
	RingSize int
	// Appendages is how many members sit off the cycle but reach it.
	Appendages int
	// Violations lists every invariant breach; empty means the snapshot
	// satisfies all checked invariants.
	Violations []Violation
}

// OK reports whether the snapshot satisfied every invariant.
func (r Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) violate(kind string, node runtime.NodeID, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Kind: kind, Node: node, Detail: fmt.Sprintf(format, args...)})
}

// Check runs the oracle over one snapshot.
func Check(members []proto.RingMember, opts Options) Report {
	rep := Report{Members: len(members)}
	if len(members) == 0 {
		rep.violate("no-ring", runtime.None, "empty snapshot")
		return rep
	}
	if opts.StaleSteps <= 0 {
		opts.StaleSteps = DefaultStaleSteps
	}

	alive := make(map[runtime.NodeID]int, len(members))
	for i, m := range members {
		alive[m.Node] = i
	}

	// Effective successor: the first alive successor-list entry — the
	// edge the member's lookups traverse once repair catches up.
	succ := make([]int, len(members))
	for i, m := range members {
		succ[i] = -1
		for _, s := range m.Succs {
			if !s.Valid() {
				continue
			}
			if j, ok := alive[s.Node]; ok {
				succ[i] = j
				break
			}
		}
		if succ[i] < 0 {
			rep.violate("broken-chain", m.Node,
				"no alive successor among %d entries", len(m.Succs))
		}
	}

	// Walk the effective successor graph: every member either lies on a
	// cycle or on a tail leading into one (a Zave "appendage"). Count
	// the cycles; Chord correctness demands exactly one.
	const (
		unseen = 0
		active = 1
		done   = 2
	)
	state := make([]int, len(members))
	onCycle := make([]bool, len(members))
	var cycles [][]int
	for i := range members {
		if state[i] != unseen {
			continue
		}
		var path []int
		at := i
		for at >= 0 && state[at] == unseen {
			state[at] = active
			path = append(path, at)
			at = succ[at]
		}
		if at >= 0 && state[at] == active {
			// Found a new cycle: the path suffix from the re-entry point.
			var cyc []int
			for j := len(path) - 1; j >= 0; j-- {
				cyc = append([]int{path[j]}, cyc...)
				if path[j] == at {
					break
				}
			}
			for _, v := range cyc {
				onCycle[v] = true
			}
			cycles = append(cycles, cyc)
		}
		for _, v := range path {
			state[v] = done
		}
	}

	switch len(cycles) {
	case 0:
		rep.violate("no-ring", runtime.None, "effective successor graph has no cycle")
		return rep
	case 1:
	default:
		for _, cyc := range cycles[1:] {
			rep.violate("multiple-rings", members[cyc[0]].Node,
				"extra ring of %d members beside the %d-member ring", len(cyc), len(cycles[0]))
		}
	}
	ring := cycles[0]
	for _, cyc := range cycles[1:] {
		if len(cyc) > len(ring) {
			ring = cyc
		}
	}
	rep.RingSize = len(ring)
	rep.Appendages = 0
	for i := range members {
		if !onCycle[i] && succ[i] >= 0 {
			// A functional-graph tail always reaches a cycle; reaching a
			// secondary cycle is already reported as multiple-rings.
			rep.Appendages++
		}
	}

	// Ordered ring: walking the cycle must pass the zero point exactly
	// once — i.e. the members appear in sorted ID order. Adjacent equal
	// IDs are duplicate ring positions, a breach of their own.
	if len(ring) > 1 {
		descents := 0
		for k, i := range ring {
			j := ring[(k+1)%len(ring)]
			a, b := members[i].ID, members[j].ID
			if a == b {
				rep.violate("duplicate-position", members[j].Node,
					"shares ring position %v with %v", b, members[i].Node)
			} else if b < a {
				descents++
			}
		}
		if descents != 1 {
			rep.violate("disordered-ring", runtime.None,
				"%d order wraps around the %d-member ring, want exactly 1", descents, len(ring))
		}
	}

	if opts.DegreeBits > 0 {
		checkPointers(&rep, members, alive, opts)
	}
	return rep
}

// checkPointers validates the Koorde pointer sets: each member's set
// must contain an alive entry within StaleSteps ring positions of the
// true predecessor of id << b over the snapshot's sorted positions.
// Members with an empty set are skipped individually (a freshly joined
// node fixes pointers asynchronously), but a snapshot where nobody has
// pointers fails outright.
func checkPointers(rep *Report, members []proto.RingMember, alive map[runtime.NodeID]int, opts Options) {
	// Ring positions sorted by ID; position index by member.
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return members[order[a]].ID < members[order[b]].ID })
	posOf := make([]int, len(members))
	for p, i := range order {
		posOf[i] = p
	}
	n := len(members)

	// predPos returns the sorted position of the last member with
	// ID <= target (wrapping).
	predPos := func(target ids.ID) int {
		lo := sort.Search(n, func(k int) bool { return members[order[k]].ID > target })
		return ((lo - 1) + n) % n
	}
	ringDist := func(a, b int) int {
		d := a - b
		if d < 0 {
			d = -d
		}
		if n-d < d {
			d = n - d
		}
		return d
	}

	sawSet := false
	for _, m := range members {
		if m.DeBruijn == nil {
			// Not a Koorde member (mixed snapshots route here defensively).
			continue
		}
		if len(m.DeBruijn) == 0 {
			continue // pointer fix still in flight
		}
		sawSet = true
		anchor := predPos(ids.ID(uint64(m.ID) << opts.DegreeBits))
		bestLag := n
		for _, e := range m.DeBruijn {
			if !e.Valid() {
				continue
			}
			j, ok := alive[e.Node]
			if !ok {
				continue
			}
			if lag := ringDist(posOf[j], anchor); lag < bestLag {
				bestLag = lag
			}
		}
		if bestLag > opts.StaleSteps {
			rep.violate("bad-pointer", m.Node,
				"nearest alive de Bruijn pointer is %d ring positions from the anchor (tolerance %d)",
				bestLag, opts.StaleSteps)
		}
	}
	if !sawSet {
		rep.violate("no-pointers", runtime.None,
			"no member of the %d-member snapshot has a de Bruijn pointer set", len(members))
	}
}
