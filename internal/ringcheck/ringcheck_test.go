package ringcheck

import (
	"fmt"
	"sort"
	"testing"

	"flowercdn/internal/ids"
	"flowercdn/internal/proto"
	"flowercdn/internal/runtime"
)

// mkRing builds a healthy snapshot of n members at the given IDs: each
// lists its s ring successors, in order.
func mkRing(nids []runtime.NodeID, ringIDs []ids.ID, s int) []proto.RingMember {
	n := len(nids)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ringIDs[order[a]] < ringIDs[order[b]] })
	members := make([]proto.RingMember, n)
	for p, i := range order {
		m := proto.RingMember{Node: nids[i], ID: ringIDs[i]}
		prev := order[(p-1+n)%n]
		m.Pred = proto.RingNodeOf(nids[prev], ringIDs[prev])
		for k := 1; k <= s && k < n+1; k++ {
			nx := order[(p+k)%n]
			m.Succs = append(m.Succs, proto.RingNodeOf(nids[nx], ringIDs[nx]))
		}
		members[i] = m
	}
	return members
}

func testIDs(n int) ([]runtime.NodeID, []ids.ID) {
	nids := make([]runtime.NodeID, n)
	ringIDs := make([]ids.ID, n)
	for i := range nids {
		nids[i] = runtime.NodeID(i + 1)
		ringIDs[i] = ids.HashString(fmt.Sprintf("rc-%d", i))
	}
	return nids, ringIDs
}

func TestHealthyRingPasses(t *testing.T) {
	nids, ringIDs := testIDs(24)
	rep := Check(mkRing(nids, ringIDs, 4), Options{})
	if !rep.OK() {
		t.Fatalf("healthy ring rejected: %v", rep.Violations)
	}
	if rep.RingSize != 24 || rep.Appendages != 0 {
		t.Fatalf("ring size %d appendages %d, want 24/0", rep.RingSize, rep.Appendages)
	}
}

func TestEffectiveSuccessorSkipsDead(t *testing.T) {
	nids, ringIDs := testIDs(12)
	members := mkRing(nids, ringIDs, 4)
	// Drop three members from the snapshot without repairing anyone's
	// successor lists: the survivors' effective successors skip them.
	var kept []proto.RingMember
	dead := map[runtime.NodeID]bool{nids[2]: true, nids[5]: true, nids[9]: true}
	for _, m := range members {
		if !dead[m.Node] {
			kept = append(kept, m)
		}
	}
	rep := Check(kept, Options{})
	if !rep.OK() {
		t.Fatalf("repairable snapshot rejected: %v", rep.Violations)
	}
	if rep.RingSize != 9 {
		t.Fatalf("ring size %d, want 9", rep.RingSize)
	}
}

func TestBrokenChainReported(t *testing.T) {
	nids, ringIDs := testIDs(8)
	members := mkRing(nids, ringIDs, 2)
	// One member's every successor is dead: it cannot reach the ring.
	members[3].Succs = []proto.RingNode{proto.RingNodeOf(runtime.NodeID(900), ids.ID(1)), proto.RingNodeOf(runtime.NodeID(901), ids.ID(2))}
	rep := Check(members, Options{})
	if rep.OK() {
		t.Fatal("broken chain accepted")
	}
	if rep.Violations[0].Kind != "broken-chain" || rep.Violations[0].Node != members[3].Node {
		t.Fatalf("violation %v, want broken-chain at %v", rep.Violations[0], members[3].Node)
	}
}

func TestLoopyRingReported(t *testing.T) {
	// Two disjoint cycles over one ID space: the classic partitioned
	// "loopy" state Chord stabilization cannot repair.
	nids, ringIDs := testIDs(12)
	a := make([]runtime.NodeID, 0, 6)
	ai := make([]ids.ID, 0, 6)
	b := make([]runtime.NodeID, 0, 6)
	bi := make([]ids.ID, 0, 6)
	for i := range nids {
		if i%2 == 0 {
			a, ai = append(a, nids[i]), append(ai, ringIDs[i])
		} else {
			b, bi = append(b, nids[i]), append(bi, ringIDs[i])
		}
	}
	members := append(mkRing(a, ai, 2), mkRing(b, bi, 2)...)
	rep := Check(members, Options{})
	if rep.OK() {
		t.Fatal("two disjoint rings accepted")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "multiple-rings" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no multiple-rings violation in %v", rep.Violations)
	}
}

func TestDisorderedRingReported(t *testing.T) {
	nids, ringIDs := testIDs(8)
	members := mkRing(nids, ringIDs, 1)
	// Swap two members' successor pointers: the cycle survives but
	// visits positions out of ID order.
	members[1].Succs, members[4].Succs = members[4].Succs, members[1].Succs
	rep := Check(members, Options{})
	if rep.OK() {
		t.Fatal("disordered ring accepted")
	}
	kinds := map[string]bool{}
	for _, v := range rep.Violations {
		kinds[v.Kind] = true
	}
	if !kinds["disordered-ring"] && !kinds["multiple-rings"] {
		t.Fatalf("no order violation in %v", rep.Violations)
	}
}

func TestAppendageCounted(t *testing.T) {
	nids, ringIDs := testIDs(9)
	members := mkRing(nids[:8], ringIDs[:8], 2)
	// A ninth member points INTO the ring but nobody points back yet —
	// a freshly joining appendage. Still a correct configuration.
	app := proto.RingMember{Node: nids[8], ID: ringIDs[8]}
	app.Succs = []proto.RingNode{proto.RingNodeOf(members[0].Node, members[0].ID)}
	members = append(members, app)
	rep := Check(members, Options{})
	if !rep.OK() {
		t.Fatalf("appendage configuration rejected: %v", rep.Violations)
	}
	if rep.RingSize != 8 || rep.Appendages != 1 {
		t.Fatalf("ring %d appendages %d, want 8/1", rep.RingSize, rep.Appendages)
	}
}

func TestDuplicatePositionReported(t *testing.T) {
	nids, ringIDs := testIDs(6)
	members := mkRing(nids, ringIDs, 2)
	// Give one member another's ring ID; its successor edges still make
	// it part of the cycle.
	members[2].ID = members[3].ID
	rep := Check(members, Options{})
	if rep.OK() {
		t.Fatal("duplicate ring position accepted")
	}
}

// deBruijnSets fills each member's pointer set with the true anchor
// neighborhood (predecessor of id << b and a few of its successors).
func deBruijnSets(members []proto.RingMember, b int) {
	n := len(members)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return members[order[x]].ID < members[order[y]].ID })
	for i := range members {
		target := ids.ID(uint64(members[i].ID) << b)
		lo := sort.Search(n, func(k int) bool { return members[order[k]].ID > target })
		pred := ((lo - 1) + n) % n
		set := []proto.RingNode{}
		for k := 0; k < 4 && k < n; k++ {
			j := order[(pred+k)%n]
			set = append(set, proto.RingNodeOf(members[j].Node, members[j].ID))
		}
		members[i].DeBruijn = set
	}
}

func TestDeBruijnPointersChecked(t *testing.T) {
	nids, ringIDs := testIDs(24)
	members := mkRing(nids, ringIDs, 4)
	deBruijnSets(members, 4)
	rep := Check(members, Options{DegreeBits: 4})
	if !rep.OK() {
		t.Fatalf("valid pointer sets rejected: %v", rep.Violations)
	}

	// Point one member's whole set at the ring-opposite of its anchor:
	// far outside any staleness tolerance.
	far := members[11].DeBruijn[0]
	anchor := ids.ID(uint64(members[11].ID)<<4 + 1<<63)
	for i := range members {
		if ids.Distance(anchor, members[i].ID) < ids.Distance(anchor, far.ID) {
			far = proto.RingNodeOf(members[i].Node, members[i].ID)
		}
	}
	members[11].DeBruijn = []proto.RingNode{far}
	rep = Check(members, Options{DegreeBits: 4, StaleSteps: 2})
	if rep.OK() {
		t.Fatal("ring-opposite pointer set accepted")
	}
	var bad *Violation
	for i, v := range rep.Violations {
		if v.Kind == "bad-pointer" {
			bad = &rep.Violations[i]
		}
	}
	if bad == nil || bad.Node != members[11].Node {
		t.Fatalf("no bad-pointer violation at %v in %v", members[11].Node, rep.Violations)
	}
}

func TestNoPointersAnywhereReported(t *testing.T) {
	nids, ringIDs := testIDs(8)
	members := mkRing(nids, ringIDs, 2)
	for i := range members {
		members[i].DeBruijn = []proto.RingNode{}
	}
	rep := Check(members, Options{DegreeBits: 4})
	if rep.OK() {
		t.Fatal("pointerless koorde snapshot accepted")
	}
	if rep.Violations[0].Kind != "no-pointers" {
		t.Fatalf("violation %v, want no-pointers", rep.Violations[0])
	}
}

func TestEmptySnapshotReported(t *testing.T) {
	rep := Check(nil, Options{})
	if rep.OK() {
		t.Fatal("empty snapshot accepted")
	}
}
