package ids

import (
	"testing"
	"testing/quick"
)

func TestBetweenSimpleArc(t *testing.T) {
	if !Between(5, 1, 10) {
		t.Fatal("5 should be in (1,10)")
	}
	if Between(1, 1, 10) {
		t.Fatal("endpoints are exclusive: 1 not in (1,10)")
	}
	if Between(10, 1, 10) {
		t.Fatal("endpoints are exclusive: 10 not in (1,10)")
	}
	if Between(15, 1, 10) {
		t.Fatal("15 not in (1,10)")
	}
}

func TestBetweenWrappedArc(t *testing.T) {
	// Arc wrapping the top of the ring: (2^64-10, 5).
	a := ID(^uint64(0) - 9)
	if !Between(0, a, 5) {
		t.Fatal("0 should be in wrapped arc")
	}
	if !Between(a+1, a, 5) {
		t.Fatal("a+1 should be in wrapped arc")
	}
	if Between(100, a, 5) {
		t.Fatal("100 should not be in wrapped arc")
	}
	if Between(a, a, 5) || Between(5, a, 5) {
		t.Fatal("wrapped arc endpoints are exclusive")
	}
}

func TestBetweenFullCircle(t *testing.T) {
	if Between(7, 7, 7) {
		t.Fatal("a==b arc excludes a itself")
	}
	if !Between(8, 7, 7) {
		t.Fatal("a==b arc includes everything else")
	}
}

func TestBetweenRightIncl(t *testing.T) {
	if !BetweenRightIncl(10, 1, 10) {
		t.Fatal("right endpoint included")
	}
	if BetweenRightIncl(1, 1, 10) {
		t.Fatal("left endpoint excluded")
	}
	if !BetweenRightIncl(3, 1, 10) {
		t.Fatal("interior point")
	}
	// Single node ring: the node owns every key.
	if !BetweenRightIncl(42, 9, 9) {
		t.Fatal("single-node ring owns all keys")
	}
	// Wrapped ownership interval.
	if !BetweenRightIncl(2, ID(^uint64(0)-4), 3) {
		t.Fatal("wrapped (pred, succ] ownership")
	}
}

// Property: Between(k,a,b) is equivalent to Distance(a,k) < Distance(a,b)
// with both distances nonzero, for a != b. This ties the interval test to
// the clockwise-distance definition.
func TestBetweenMatchesDistance(t *testing.T) {
	f := func(k, a, b uint64) bool {
		ka, aa, bb := ID(k), ID(a), ID(b)
		if aa == bb {
			return true
		}
		want := Distance(aa, ka) != 0 && Distance(aa, ka) < Distance(aa, bb)
		return Between(ka, aa, bb) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: exactly one of k==a, k==b, Between(k,a,b), Between(k,b,a)
// holds when a != b — the two open arcs and the two endpoints partition
// the ring.
func TestArcsPartitionRing(t *testing.T) {
	f := func(k, a, b uint64) bool {
		ka, aa, bb := ID(k), ID(a), ID(b)
		if aa == bb {
			return true
		}
		n := 0
		if ka == aa {
			n++
		}
		if ka == bb {
			n++
		}
		if Between(ka, aa, bb) {
			n++
		}
		if Between(ka, bb, aa) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		aa, bb := ID(a), ID(b)
		d1, d2 := Distance(aa, bb), Distance(bb, aa)
		if aa == bb {
			return d1 == 0 && d2 == 0
		}
		return d1+d2 == 0 // full circle wraps to 0 in uint64 arithmetic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddPow2(t *testing.T) {
	k := ID(10)
	if k.AddPow2(0) != 11 {
		t.Fatal("AddPow2(0) should add 1")
	}
	if k.AddPow2(3) != 18 {
		t.Fatal("AddPow2(3) should add 8")
	}
	// Wraparound.
	top := ID(^uint64(0))
	if top.AddPow2(0) != 0 {
		t.Fatal("AddPow2 should wrap")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddPow2(64) should panic")
		}
	}()
	k.AddPow2(64)
}

func TestHashStability(t *testing.T) {
	a := HashString("example.org")
	b := HashString("example.org")
	if a != b {
		t.Fatal("HashString not deterministic")
	}
	if HashString("example.org") == HashString("example.net") {
		t.Fatal("distinct strings collided (astronomically unlikely)")
	}
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Fatal("Hash2 should not be symmetric")
	}
	if Hash2(3, 4) != Hash2(3, 4) {
		t.Fatal("Hash2 not deterministic")
	}
}

func TestHashDispersion(t *testing.T) {
	// Hash values of consecutive inputs should scatter across the ring:
	// check that the top byte takes many distinct values.
	seen := map[byte]bool{}
	for i := 0; i < 256; i++ {
		seen[byte(uint64(Hash2(uint64(i), 0))>>56)] = true
	}
	if len(seen) < 150 {
		t.Fatalf("top-byte dispersion too low: %d/256", len(seen))
	}
}

func TestStringForms(t *testing.T) {
	k := ID(0xDEADBEEF12345678)
	if k.String() != "deadbeef12345678" {
		t.Fatalf("String() = %q", k.String())
	}
	if k.Short() != "dead" {
		t.Fatalf("Short() = %q", k.Short())
	}
}
