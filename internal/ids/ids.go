// Package ids implements the circular 64-bit identifier space shared by
// the Chord substrate, the D-ring key-management service and the
// Squirrel baseline. Identifiers live on a ring of size 2^64; all
// arithmetic is modular.
//
// The paper's D-ring assigns directory peers *structured* identifiers
// derived from (website, locality, instance) rather than uniformly
// hashed ones; both styles are constructed here so that every overlay
// shares one notion of "between", "distance" and "successor of".
package ids

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// ID is a position on the 2^64 identifier ring.
type ID uint64

// Bits is the width of the identifier space.
const Bits = 64

// HashString maps an arbitrary string to a ring position using SHA-1,
// as Chord does, truncated to 64 bits.
func HashString(s string) ID {
	sum := sha1.Sum([]byte(s))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// HashBytes maps a byte slice to a ring position.
func HashBytes(b []byte) ID {
	sum := sha1.Sum(b)
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// Hash2 maps a pair of integers to a ring position. It is used for
// object keys (site, object) in Squirrel.
func Hash2(a, b uint64) ID {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], a)
	binary.BigEndian.PutUint64(buf[8:16], b)
	return HashBytes(buf[:])
}

// Add returns the ring position k + d (mod 2^64).
func (k ID) Add(d uint64) ID { return k + ID(d) }

// AddPow2 returns k + 2^i (mod 2^64). It panics if i is outside
// [0, Bits).
func (k ID) AddPow2(i int) ID {
	if i < 0 || i >= Bits {
		panic(fmt.Sprintf("ids: AddPow2 exponent %d out of range", i))
	}
	return k + ID(uint64(1)<<uint(i))
}

// Between reports whether k lies on the arc (a, b) exclusive of both
// endpoints, walking clockwise from a to b. When a == b the arc is the
// entire ring minus the single point a, matching Chord's convention.
func Between(k, a, b ID) bool {
	if a < b {
		return a < k && k < b
	}
	if a > b {
		return k > a || k < b
	}
	// a == b: full circle, everything except a itself.
	return k != a
}

// BetweenRightIncl reports whether k lies on the half-open arc (a, b]
// walking clockwise — the interval Chord uses for successor ownership:
// node b owns key k iff k ∈ (predecessor(b), b].
func BetweenRightIncl(k, a, b ID) bool {
	if a < b {
		return a < k && k <= b
	}
	if a > b {
		return k > a || k <= b
	}
	return true // a == b: single node owns everything
}

// Distance returns the clockwise distance from a to b, i.e. the number
// of positions a must advance to reach b.
func Distance(a, b ID) uint64 {
	return uint64(b - a)
}

// String formats an identifier as fixed-width hexadecimal.
func (k ID) String() string { return fmt.Sprintf("%016x", uint64(k)) }

// Short returns an abbreviated form used in logs and traces.
func (k ID) Short() string { return fmt.Sprintf("%04x", uint64(k)>>48) }
