package content

import (
	"testing"

	"flowercdn/internal/cache"
)

// TestBoundedAddAllocs pins the bounded-store Add path's steady-state
// allocation count. Unlike the engine and transport hot paths this one
// is not zero — the LRU policy allocates a list element and an entry
// per newly-admitted key — but the store's own bookkeeping (the packed
// sorted key slice, the push delta, the interned summary invalidation)
// must stay allocation-free once warm. The ceiling is the policy's two
// objects per admission; growth past it means store bookkeeping
// regressed onto the heap.
func TestBoundedAddAllocs(t *testing.T) {
	pol, err := cache.New("lru", 8)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreWith(StoreOptions{Policy: pol})
	keys := make([]Key, 32)
	for i := range keys {
		keys[i] = Key{Site: SiteID(i % 4), Object: ObjectID(i)}
	}
	for i := 0; i < 256; i++ { // warm up: slices reach steady capacity
		s.Add(keys[i%len(keys)])
	}
	i := 256
	avg := testing.AllocsPerRun(200, func() {
		s.Add(keys[i%len(keys)])
		i++
	})
	// Every admission is a new key here (the cycle is 4x the capacity,
	// so re-adds never hit): budget the LRU's two allocations, nothing
	// for the store itself.
	const ceiling = 2.0
	if avg > ceiling {
		t.Errorf("bounded Add allocates %.2f objects per admission; ceiling %.0f", avg, ceiling)
	}
}
