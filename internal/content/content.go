// Package content models the requestable content of the supported
// websites: object naming, per-peer stores with the push-delta
// accounting the maintenance protocol needs (paper Sec. 5.1: a content
// peer pushes updates "whenever the percentage of its changes reaches a
// threshold"), and Bloom summaries for gossip.
//
// The paper assumes "a content peer has enough storage potential to
// avoid replacing its content through the experiment's duration" —
// NewStore reproduces that unbounded model exactly. NewStoreWith
// additionally bounds a store with a pluggable eviction policy
// (internal/cache), the seam behind the capacity-bounded scenarios the
// paper cannot express.
package content

import (
	"fmt"

	"flowercdn/internal/bloom"
	"flowercdn/internal/cache"
)

// SiteID identifies a website in W.
type SiteID int32

// ObjectID identifies one object within a website (0..ObjectsPerSite-1).
type ObjectID int32

// Key names one web object globally.
type Key struct {
	Site   SiteID
	Object ObjectID
}

// Uint64 packs the key for hashing, Bloom membership and eviction-
// policy bookkeeping.
func (k Key) Uint64() uint64 {
	return uint64(uint32(k.Site))<<32 | uint64(uint32(k.Object))
}

// KeyFromUint64 unpacks a key packed by Key.Uint64.
func KeyFromUint64(u uint64) Key {
	return Key{Site: SiteID(int32(uint32(u >> 32))), Object: ObjectID(int32(uint32(u)))}
}

// String renders "site/object".
func (k Key) String() string { return fmt.Sprintf("%d/%d", k.Site, k.Object) }

// Catalog describes the universe of content: |W| websites with a fixed
// number of requestable, cacheable objects each (Table 1: 100 websites,
// 500 objects per site).
type Catalog struct {
	sites          int
	objectsPerSite int
}

// NewCatalog validates and builds a catalog.
func NewCatalog(sites, objectsPerSite int) (*Catalog, error) {
	if sites < 1 {
		return nil, fmt.Errorf("content: need at least 1 site, got %d", sites)
	}
	if objectsPerSite < 1 {
		return nil, fmt.Errorf("content: need at least 1 object per site, got %d", objectsPerSite)
	}
	return &Catalog{sites: sites, objectsPerSite: objectsPerSite}, nil
}

// Sites returns |W|.
func (c *Catalog) Sites() int { return c.sites }

// ObjectsPerSite returns the per-site object count.
func (c *Catalog) ObjectsPerSite() int { return c.objectsPerSite }

// Valid reports whether a key is inside the catalog.
func (c *Catalog) Valid(k Key) bool {
	return int(k.Site) >= 0 && int(k.Site) < c.sites &&
		int(k.Object) >= 0 && int(k.Object) < c.objectsPerSite
}

// Store is one peer's local content cache for the single website it is
// interested in, with the delta accounting used by the push protocol.
// The zero value is not usable; use NewStore (unbounded, the paper's
// model) or NewStoreWith (capacity-bounded by an eviction policy).
type Store struct {
	// have holds the cached keys packed (Key.Uint64) and sorted: 8
	// bytes per key against a map's several-times-larger buckets, which
	// is what makes 100k-node populations fit one process. Packed order
	// equals (site, object) order, so every iteration over the store is
	// deterministic for free.
	have  []uint64
	delta []Key // keys added since the last MarkPushed

	// summary is the interned Bloom filter of the current contents,
	// invalidated (set nil) on every membership change and rebuilt
	// lazily. It is shared with everyone Summary was handed to, so it
	// is never mutated in place — see Summary.
	summary *bloom.Filter

	// Eviction seam; all nil/zero on an unbounded store.
	policy  cache.Policy
	cost    func(Key) int64 // nil = unit cost (capacity in objects)
	onEvict func(Key)
	evicted uint64
}

// find returns the insertion index of packed key u and whether it is
// present.
func (s *Store) find(u uint64) (int, bool) {
	lo, hi := 0, len(s.have)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.have[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.have) && s.have[lo] == u
}

// StoreOptions configures a capacity-bounded store.
type StoreOptions struct {
	// Policy nominates eviction victims; nil means unbounded.
	Policy cache.Policy
	// Cost weighs each key against the policy's capacity; nil charges
	// one unit per object.
	Cost func(Key) int64
	// OnEvict observes every evicted key (metrics plumbing).
	OnEvict func(Key)
}

// NewStore returns an empty unbounded store.
func NewStore() *Store {
	return &Store{}
}

// NewStoreWith returns an empty store governed by the given options.
func NewStoreWith(o StoreOptions) *Store {
	s := NewStore()
	s.policy = o.Policy
	s.cost = o.Cost
	s.onEvict = o.OnEvict
	return s
}

// Bounded reports whether an eviction policy governs the store.
func (s *Store) Bounded() bool { return s.policy != nil }

// Evictions returns how many objects the policy has evicted so far.
func (s *Store) Evictions() uint64 { return s.evicted }

// Add records that the peer now caches k. It reports whether the key
// was new. Re-adding an existing key does not count as a change. On a
// bounded store the insertion may evict other keys — or k itself, when
// a single object exceeds the whole budget.
func (s *Store) Add(k Key) bool {
	u := k.Uint64()
	i, ok := s.find(u)
	if ok {
		return false
	}
	s.have = append(s.have, 0)
	copy(s.have[i+1:], s.have[i:])
	s.have[i] = u
	s.summary = nil
	s.delta = append(s.delta, k)
	if s.policy != nil {
		c := int64(1)
		if s.cost != nil {
			c = s.cost(k)
		}
		s.policy.OnAdd(k.Uint64(), c)
		s.evictOverCapacity()
	}
	return true
}

// evictOverCapacity drains the policy's victims until it reports the
// store back under capacity.
func (s *Store) evictOverCapacity() {
	for {
		v, ok := s.policy.Victim()
		if !ok {
			return
		}
		s.policy.Remove(v)
		k := KeyFromUint64(v)
		if i, ok := s.find(v); ok {
			s.have = append(s.have[:i], s.have[i+1:]...)
			s.summary = nil
		}
		// An evicted key must not be advertised by the next push: drop
		// it from the pending delta (linear, but deltas are short —
		// they flush at a fraction of the store size).
		for i, dk := range s.delta {
			if dk == k {
				s.delta = append(s.delta[:i], s.delta[i+1:]...)
				break
			}
		}
		s.evicted++
		if s.onEvict != nil {
			s.onEvict(k)
		}
	}
}

// Has reports whether the peer caches k. On a bounded store a
// successful lookup counts as a touch (recency/frequency signal for
// the eviction policy) — both serving a fetch and skipping an
// already-cached object keep that object warm.
func (s *Store) Has(k Key) bool {
	_, ok := s.find(k.Uint64())
	if ok && s.policy != nil {
		s.policy.OnHit(k.Uint64())
	}
	return ok
}

// Len returns the number of cached objects.
func (s *Store) Len() int { return len(s.have) }

// Keys returns all cached keys in deterministic (sorted) order.
func (s *Store) Keys() []Key {
	out := make([]Key, 0, len(s.have))
	for _, u := range s.have {
		out = append(out, KeyFromUint64(u))
	}
	return out
}

// PendingChanges returns how many keys were added since the last push.
func (s *Store) PendingChanges() int { return len(s.delta) }

// ChangedFraction is the push trigger from Sec. 5.1: the number of
// changes since the last push divided by the current store size. A
// brand-new peer's first object yields 1.0, so it pushes immediately;
// thereafter pushes happen roughly each time the store grows by the
// threshold fraction.
func (s *Store) ChangedFraction() float64 {
	if len(s.have) == 0 {
		return 0
	}
	return float64(len(s.delta)) / float64(len(s.have))
}

// TakeDelta returns the keys accumulated since the last push and resets
// the delta, i.e. "the push happened". The returned slice is owned by
// the caller.
func (s *Store) TakeDelta() []Key {
	d := s.delta
	s.delta = nil
	return d
}

// SummaryFPRate is the Bloom false-positive target for gossip
// summaries. A false positive only costs one wasted fetch attempt
// followed by a directory fallback, so 2% is plenty.
const SummaryFPRate = 0.02

// Summary returns a Bloom filter of everything in the store, sized for
// the store's current population (minimum capacity keeps tiny stores
// from degenerate geometry). The filter is interned: repeated calls
// between membership changes return the same filter, so a peer
// gossiping its summary to its whole view ships one shared filter
// instead of re-building (and re-holding) one per contact. Callers and
// recipients must treat it as immutable — after a change the store
// builds a fresh filter rather than mutating the one already handed
// out, so held references stay consistent snapshots.
func (s *Store) Summary() *bloom.Filter {
	if s.summary != nil {
		return s.summary
	}
	capacity := len(s.have)
	if capacity < 16 {
		capacity = 16
	}
	f := bloom.NewForCapacity(capacity, SummaryFPRate)
	for _, u := range s.have {
		f.Add(u)
	}
	s.summary = f
	return f
}
