package content

import (
	"testing"
	"testing/quick"

	"flowercdn/internal/cache"
	"flowercdn/internal/rnd"
)

func TestKeyFromUint64Roundtrip(t *testing.T) {
	f := func(s, o int32) bool {
		k := Key{SiteID(s), ObjectID(o)}
		return KeyFromUint64(k.Uint64()) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newLRUStore(t *testing.T, capacity int64, onEvict func(Key)) *Store {
	t.Helper()
	pol, err := cache.New("lru", capacity)
	if err != nil {
		t.Fatal(err)
	}
	return NewStoreWith(StoreOptions{Policy: pol, OnEvict: onEvict})
}

func TestBoundedStoreNeverExceedsCapacity(t *testing.T) {
	const capacity = 8
	s := newLRUStore(t, capacity, nil)
	if !s.Bounded() {
		t.Fatal("policy store not bounded")
	}
	for i := 0; i < 100; i++ {
		s.Add(Key{0, ObjectID(i)})
		if s.Len() > capacity {
			t.Fatalf("store at %d objects, capacity %d", s.Len(), capacity)
		}
	}
	if s.Len() != capacity {
		t.Fatalf("store settled at %d, want %d", s.Len(), capacity)
	}
	if s.Evictions() != 100-capacity {
		t.Fatalf("evictions = %d, want %d", s.Evictions(), 100-capacity)
	}
}

func TestBoundedStoreEvictsLRUOrder(t *testing.T) {
	var evicted []Key
	s := newLRUStore(t, 2, func(k Key) { evicted = append(evicted, k) })
	s.Add(Key{0, 0})
	s.Add(Key{0, 1})
	s.Has(Key{0, 0}) // touch: 0 warm, 1 cold
	s.Add(Key{0, 2}) // evicts 1
	if len(evicted) != 1 || evicted[0] != (Key{0, 1}) {
		t.Fatalf("evicted %v, want [0/1]", evicted)
	}
	if !s.Has(Key{0, 0}) || s.Has(Key{0, 1}) || !s.Has(Key{0, 2}) {
		t.Fatal("wrong residents after LRU eviction")
	}
}

func TestEvictedKeysLeaveTheDelta(t *testing.T) {
	s := newLRUStore(t, 2, nil)
	s.Add(Key{0, 0})
	s.Add(Key{0, 1})
	s.Add(Key{0, 2}) // evicts 0/0 before any push
	d := s.TakeDelta()
	if len(d) != 2 {
		t.Fatalf("delta %v, want the two residents", d)
	}
	for _, k := range d {
		if !s.Has(k) {
			t.Fatalf("delta advertises evicted key %v", k)
		}
	}
	// Post-push evictions must not produce a negative or stale delta.
	s.Add(Key{0, 3}) // evicts the colder resident; delta = {0/3}
	d2 := s.TakeDelta()
	if len(d2) != 1 || d2[0] != (Key{0, 3}) {
		t.Fatalf("second delta = %v, want [0/3]", d2)
	}
}

func TestBoundedStoreSummaryTracksResidents(t *testing.T) {
	s := newLRUStore(t, 4, nil)
	for i := 0; i < 32; i++ {
		s.Add(Key{1, ObjectID(i)})
	}
	sum := s.Summary()
	for _, k := range s.Keys() {
		if !sum.Contains(k.Uint64()) {
			t.Fatalf("summary missing resident %v", k)
		}
	}
	if got := len(s.Keys()); got != 4 {
		t.Fatalf("residents = %d, want 4", got)
	}
}

func TestByteCostStoreRespectsBudget(t *testing.T) {
	cost := func(k Key) int64 { return int64(1 + int(k.Object)%7) }
	pol, err := cache.New("size-aware", 20)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreWith(StoreOptions{Policy: pol, Cost: cost})
	for i := 0; i < 200; i++ {
		s.Add(Key{0, ObjectID(i)})
		var used int64
		for _, k := range s.Keys() {
			used += cost(k)
		}
		if used > 20 {
			t.Fatalf("byte budget exceeded: %d > 20", used)
		}
	}
	if s.Evictions() == 0 {
		t.Fatal("no evictions under a 20-unit budget")
	}
}

// TestBoundedStoreMatchesNaiveModel cross-checks the full store (not
// just the policy) against a naive bounded-set model under a random
// add/has workload — membership must agree exactly at every step.
func TestBoundedStoreMatchesNaiveModel(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		rng := rnd.New(seed)
		const capacity = 6
		s := newLRUStore(t, capacity, nil)
		// Naive model: ordered slice, most recent last.
		var model []Key
		touch := func(k Key) {
			for i, mk := range model {
				if mk == k {
					model = append(append(model[:i:i], model[i+1:]...), k)
					return
				}
			}
		}
		for i := 0; i < 4000; i++ {
			k := Key{0, ObjectID(rng.Intn(40))}
			if rng.Bool(0.5) {
				inModel := false
				for _, mk := range model {
					if mk == k {
						inModel = true
						break
					}
				}
				if got := s.Has(k); got != inModel {
					t.Fatalf("step %d: Has(%v) = %v, model %v", i, k, got, inModel)
				}
				if inModel {
					touch(k)
				}
				continue
			}
			// Add: no-op when resident (but Store.Add does not touch —
			// mirror that), else append and evict the oldest.
			resident := false
			for _, mk := range model {
				if mk == k {
					resident = true
					break
				}
			}
			s.Add(k)
			if !resident {
				model = append(model, k)
				if len(model) > capacity {
					model = model[1:]
				}
			}
			if s.Len() != len(model) {
				t.Fatalf("step %d: Len %d, model %d", i, s.Len(), len(model))
			}
		}
	}
}

func TestUnboundedStoreUnchanged(t *testing.T) {
	s := NewStore()
	if s.Bounded() {
		t.Fatal("plain store claims to be bounded")
	}
	for i := 0; i < 5000; i++ {
		s.Add(Key{0, ObjectID(i)})
	}
	if s.Len() != 5000 || s.Evictions() != 0 {
		t.Fatalf("unbounded store: len %d evictions %d", s.Len(), s.Evictions())
	}
}
