package content

import (
	"testing"
	"testing/quick"
)

func TestKeyUint64Injective(t *testing.T) {
	f := func(s1, o1, s2, o2 int32) bool {
		a := Key{SiteID(s1), ObjectID(o1)}
		b := Key{SiteID(s2), ObjectID(o2)}
		if a == b {
			return a.Uint64() == b.Uint64()
		}
		return a.Uint64() != b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(0, 500); err == nil {
		t.Fatal("0 sites accepted")
	}
	if _, err := NewCatalog(100, 0); err == nil {
		t.Fatal("0 objects accepted")
	}
	c, err := NewCatalog(100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sites() != 100 || c.ObjectsPerSite() != 500 {
		t.Fatal("catalog dimensions wrong")
	}
	cases := []struct {
		k    Key
		want bool
	}{
		{Key{0, 0}, true},
		{Key{99, 499}, true},
		{Key{100, 0}, false},
		{Key{0, 500}, false},
		{Key{-1, 0}, false},
		{Key{0, -1}, false},
	}
	for _, c2 := range cases {
		if c.Valid(c2.k) != c2.want {
			t.Fatalf("Valid(%v) = %v, want %v", c2.k, !c2.want, c2.want)
		}
	}
}

func TestStoreAddHasLen(t *testing.T) {
	s := NewStore()
	k := Key{1, 2}
	if s.Has(k) || s.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	if !s.Add(k) {
		t.Fatal("first Add returned false")
	}
	if s.Add(k) {
		t.Fatal("duplicate Add returned true")
	}
	if !s.Has(k) || s.Len() != 1 {
		t.Fatal("store contents wrong after Add")
	}
}

func TestKeysSortedDeterministic(t *testing.T) {
	s := NewStore()
	ks := []Key{{2, 1}, {1, 9}, {1, 2}, {2, 0}}
	for _, k := range ks {
		s.Add(k)
	}
	got := s.Keys()
	want := []Key{{1, 2}, {1, 9}, {2, 0}, {2, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestChangedFractionPushSchedule(t *testing.T) {
	// Reproduce the exponential-ish push schedule from DESIGN: with
	// threshold 0.5, pushes should trigger after objects 1, 2, 4, 8...
	s := NewStore()
	const threshold = 0.5
	var pushAt []int
	for i := 0; i < 16; i++ {
		s.Add(Key{0, ObjectID(i)})
		if s.ChangedFraction() >= threshold {
			pushAt = append(pushAt, s.Len())
			s.TakeDelta()
		}
	}
	want := []int{1, 2, 4, 8, 16}
	if len(pushAt) != len(want) {
		t.Fatalf("pushes at %v, want %v", pushAt, want)
	}
	for i := range want {
		if pushAt[i] != want[i] {
			t.Fatalf("pushes at %v, want %v", pushAt, want)
		}
	}
}

func TestChangedFractionEmptyStore(t *testing.T) {
	s := NewStore()
	if s.ChangedFraction() != 0 {
		t.Fatal("empty store should report 0 changed fraction")
	}
}

func TestTakeDeltaSemantics(t *testing.T) {
	s := NewStore()
	s.Add(Key{0, 1})
	s.Add(Key{0, 2})
	s.Add(Key{0, 1}) // duplicate: not a change
	if s.PendingChanges() != 2 {
		t.Fatalf("PendingChanges = %d, want 2", s.PendingChanges())
	}
	d := s.TakeDelta()
	if len(d) != 2 {
		t.Fatalf("delta = %v, want 2 keys", d)
	}
	if s.PendingChanges() != 0 {
		t.Fatal("delta not reset")
	}
	s.Add(Key{0, 3})
	d2 := s.TakeDelta()
	if len(d2) != 1 || d2[0] != (Key{0, 3}) {
		t.Fatalf("second delta = %v", d2)
	}
}

func TestSummaryContainsAllStored(t *testing.T) {
	s := NewStore()
	for i := 0; i < 40; i++ {
		s.Add(Key{3, ObjectID(i)})
	}
	sum := s.Summary()
	for i := 0; i < 40; i++ {
		if !sum.Contains(Key{3, ObjectID(i)}.Uint64()) {
			t.Fatalf("summary missing stored object %d", i)
		}
	}
}

func TestSummaryOfEmptyStore(t *testing.T) {
	sum := NewStore().Summary()
	if sum.Contains(Key{1, 1}.Uint64()) {
		t.Fatal("empty summary reported membership")
	}
}

func TestSummaryFalsePositivesBounded(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Add(Key{0, ObjectID(i)})
	}
	sum := s.Summary()
	fp := 0
	for i := 100; i < 600; i++ {
		if sum.Contains(Key{0, ObjectID(i)}.Uint64()) {
			fp++
		}
	}
	if rate := float64(fp) / 500; rate > SummaryFPRate*4 {
		t.Fatalf("summary FP rate %.3f too high", rate)
	}
}
