package content

import (
	"fmt"
	"math"

	"flowercdn/internal/runtime"
)

// Binary wire helpers for Key. Keys appear in nearly every protocol
// message, so the encoding lives here once: two signed varints (site,
// object) — both small in practice, so a key usually costs two bytes
// against the eight of its packed form.

// AppendWire appends k's canonical encoding.
func (k Key) AppendWire(w *runtime.WireWriter) {
	w.Varint(int64(k.Site))
	w.Varint(int64(k.Object))
}

// DecodeKeyWire reads one Key, rejecting IDs outside the 32-bit range
// (a wrapped cast would break the canonical re-encode property).
func DecodeKeyWire(r *runtime.WireReader) Key {
	site := r.Varint()
	obj := r.Varint()
	if r.Err() == nil && (site > math.MaxInt32 || site < math.MinInt32 ||
		obj > math.MaxInt32 || obj < math.MinInt32) {
		r.Fail(fmt.Errorf("content: key component out of range (%d, %d)", site, obj))
		return Key{}
	}
	return Key{Site: SiteID(site), Object: ObjectID(obj)}
}

// AppendKeysWire appends a length-prefixed Key slice.
func AppendKeysWire(w *runtime.WireWriter, ks []Key) {
	w.Uvarint(uint64(len(ks)))
	for _, k := range ks {
		k.AppendWire(w)
	}
}

// DecodeKeysWire reads a length-prefixed Key slice (nil when empty).
func DecodeKeysWire(r *runtime.WireReader) []Key {
	n := r.ArrayLen(2)
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]Key, n)
	for i := range out {
		out[i] = DecodeKeyWire(r)
	}
	return out
}
