package content

import (
	"testing"

	"flowercdn/internal/runtime"
)

func TestKeyWireRoundTrip(t *testing.T) {
	for _, k := range []Key{{}, {Site: 3, Object: 9}, {Site: 1<<31 - 1, Object: -(1 << 31)}} {
		w := runtime.NewWireWriter(nil)
		k.AppendWire(w)
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		r := runtime.NewWireReader(w.Finish())
		got := DecodeKeyWire(r)
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if got != k || r.Len() != 0 {
			t.Fatalf("round trip %+v -> %+v (%d trailing)", k, got, r.Len())
		}
	}
}

func TestKeysWireRoundTrip(t *testing.T) {
	for _, ks := range [][]Key{nil, {{Site: 1, Object: 2}, {Site: 3, Object: 4}}} {
		w := runtime.NewWireWriter(nil)
		AppendKeysWire(w, ks)
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		r := runtime.NewWireReader(w.Finish())
		got := DecodeKeysWire(r)
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ks) {
			t.Fatalf("round trip %v -> %v", ks, got)
		}
		for i := range ks {
			if got[i] != ks[i] {
				t.Fatalf("round trip %v -> %v", ks, got)
			}
		}
	}
}

// TestKeyWireRejectsOutOfRange pins the canonical-encoding guard: a
// component outside 32 bits would decode, wrap, and re-encode to
// different bytes, so the decoder must reject it instead.
func TestKeyWireRejectsOutOfRange(t *testing.T) {
	w := runtime.NewWireWriter(nil)
	w.Varint(int64(1) << 40)
	w.Varint(5)
	r := runtime.NewWireReader(w.Finish())
	DecodeKeyWire(r)
	if r.Err() == nil {
		t.Fatal("out-of-range key component accepted")
	}
}
