package content

import (
	"testing"

	"flowercdn/internal/cache"
)

// BenchmarkStoreBounded measures the hot store path under an LRU
// policy held at capacity — every Add past the warm-up evicts, every
// Has touches the recency list. This is the per-query overhead a
// bounded run pays over the paper's unbounded model (BenchmarkStoreUnbounded).
func BenchmarkStoreBounded(b *testing.B) {
	const capacity = 256
	pol, err := cache.New("lru", capacity)
	if err != nil {
		b.Fatal(err)
	}
	s := NewStoreWith(StoreOptions{Policy: pol})
	for i := 0; i < capacity; i++ {
		s.Add(Key{0, ObjectID(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key{0, ObjectID(i % (4 * capacity))}
		if !s.Has(k) {
			s.Add(k)
		}
	}
	b.ReportMetric(float64(s.Evictions())/float64(b.N), "evictions/op")
}

// BenchmarkStoreUnbounded is the baseline: the same access pattern on
// the paper's unbounded store.
func BenchmarkStoreUnbounded(b *testing.B) {
	s := NewStore()
	for i := 0; i < 256; i++ {
		s.Add(Key{0, ObjectID(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key{0, ObjectID(i % 1024)}
		if !s.Has(k) {
			s.Add(k)
		}
	}
}
