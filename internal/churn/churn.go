// Package churn implements the paper's dynamicity model (Sec. 6.1,
// following Stutzbach & Rejaie's churn characterization): the P2P
// population converges to a target size P because peers arrive in a
// Poisson process whose rate equals the mean departure rate P/m, where
// m is the mean peer uptime. Uptimes are exponential with mean m
// (60 minutes in Table 1 — a very high churn rate), and a peer always
// *fails* when its lifetime expires: it never says goodbye, so every
// departure must be discovered by timeout. A peer may re-join later
// with a fresh identity and a fresh uptime draw.
package churn

import (
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"
)

// Config controls the churn process.
type Config struct {
	// TargetPopulation is P, the size the population converges to.
	TargetPopulation int
	// MeanUptime is m in milliseconds (Table 1: 60 minutes).
	MeanUptime int64
}

// DefaultConfig returns Table 1's churn parameters for P = 3000.
func DefaultConfig() Config {
	return Config{TargetPopulation: 3000, MeanUptime: 60 * runtime.Minute}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TargetPopulation < 1 {
		return fmt.Errorf("churn: target population %d", c.TargetPopulation)
	}
	if c.MeanUptime < 1 {
		return fmt.Errorf("churn: mean uptime %d", c.MeanUptime)
	}
	return nil
}

// MeanInterarrival returns the expected gap between arrivals, m/P.
func (c Config) MeanInterarrival() int64 {
	gap := c.MeanUptime / int64(c.TargetPopulation)
	if gap < 1 {
		gap = 1
	}
	return gap
}

// Process drives arrivals. For every arrival it calls spawn, which
// creates a protocol peer and returns a kill function; the process then
// schedules that kill after an exponential lifetime. spawn may return
// nil to decline the arrival (e.g. after the run's cool-down).
type Process struct {
	cfg   Config
	eng   runtime.Clock
	rng   *rnd.RNG
	spawn func() (kill func())

	arrivals uint64
	failures uint64
	ticker   runtime.Timer
	stopped  bool
}

// NewProcess builds a churn process; Start must be called to begin.
func NewProcess(cfg Config, eng runtime.Clock, rng *rnd.RNG, spawn func() func()) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if spawn == nil {
		return nil, fmt.Errorf("churn: nil spawn")
	}
	return &Process{cfg: cfg, eng: eng, rng: rng, spawn: spawn}, nil
}

// Start schedules the first arrival.
func (p *Process) Start() {
	p.scheduleNext()
}

func (p *Process) scheduleNext() {
	if p.stopped {
		return
	}
	gap := p.rng.ExpDuration(p.cfg.MeanInterarrival())
	p.ticker = p.eng.Schedule(gap, func() {
		p.arrive()
		p.scheduleNext()
	})
}

func (p *Process) arrive() {
	kill := p.spawn()
	if kill == nil {
		return
	}
	p.arrivals++
	life := p.Lifetime()
	p.eng.Schedule(life, func() {
		p.failures++
		kill()
	})
}

// SpawnInitial performs n immediate arrivals (used to seed the warm-up
// population); each gets its own exponential lifetime like any other
// arrival.
func (p *Process) SpawnInitial(n int) {
	for i := 0; i < n; i++ {
		p.arrive()
	}
}

// Lifetime draws one exponential uptime with mean m.
func (p *Process) Lifetime() int64 {
	return p.rng.ExpDuration(p.cfg.MeanUptime)
}

// Stop halts future arrivals; peers already alive still fail on
// schedule.
func (p *Process) Stop() {
	p.stopped = true
	if p.ticker != nil {
		p.ticker.Cancel()
	}
}

// Arrivals returns the number of successful spawns so far.
func (p *Process) Arrivals() uint64 { return p.arrivals }

// Failures returns the number of lifetime expiries executed so far.
func (p *Process) Failures() uint64 { return p.failures }
