package churn

import (
	"math"
	"testing"

	"flowercdn/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	if err := (Config{TargetPopulation: 0, MeanUptime: 1}).Validate(); err == nil {
		t.Fatal("zero population accepted")
	}
	if err := (Config{TargetPopulation: 10, MeanUptime: 0}).Validate(); err == nil {
		t.Fatal("zero uptime accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeanInterarrival(t *testing.T) {
	c := Config{TargetPopulation: 3000, MeanUptime: 60 * sim.Minute}
	if got := c.MeanInterarrival(); got != 1200 {
		t.Fatalf("interarrival = %d ms, want 1200 (60 min / 3000)", got)
	}
	// Degenerate: enormous population still yields >= 1ms gaps.
	c2 := Config{TargetPopulation: 1 << 40, MeanUptime: 10}
	if c2.MeanInterarrival() < 1 {
		t.Fatal("interarrival below 1 ms")
	}
}

func TestNewProcessValidation(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	if _, err := NewProcess(Config{}, eng.Clock(), rng, func() func() { return nil }); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewProcess(DefaultConfig(), eng.Clock(), rng, nil); err == nil {
		t.Fatal("nil spawn accepted")
	}
}

func TestPopulationConvergesToTarget(t *testing.T) {
	// The defining property of the model: starting empty, the alive
	// population converges to ~P and stays there.
	eng := sim.NewEngine()
	rng := sim.NewRNG(2)
	cfg := Config{TargetPopulation: 500, MeanUptime: 30 * sim.Minute}
	alive := 0
	p, err := NewProcess(cfg, eng.Clock(), rng, func() func() {
		alive++
		return func() { alive-- }
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	// After several mean lifetimes the process is in steady state.
	eng.Run(4 * 30 * sim.Minute)
	got := alive
	if math.Abs(float64(got)-500) > 100 {
		t.Fatalf("population %d after warm-up, want ~500", got)
	}
	// Sample later; still near target.
	eng.Run(eng.Now() + 2*30*sim.Minute)
	if math.Abs(float64(alive)-500) > 100 {
		t.Fatalf("population %d drifted from target 500", alive)
	}
}

func TestSpawnInitialSeedsImmediately(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(3)
	alive := 0
	p, _ := NewProcess(Config{TargetPopulation: 100, MeanUptime: sim.Hour}, eng.Clock(), rng, func() func() {
		alive++
		return func() { alive-- }
	})
	p.SpawnInitial(60)
	if alive != 60 {
		t.Fatalf("alive = %d right after SpawnInitial, want 60", alive)
	}
	if p.Arrivals() != 60 {
		t.Fatalf("Arrivals = %d, want 60", p.Arrivals())
	}
	// Their lifetimes expire eventually.
	eng.Run(20 * sim.Hour)
	if alive != 0 {
		t.Fatalf("alive = %d after 20 mean lifetimes with no new arrivals", alive)
	}
	if p.Failures() != 60 {
		t.Fatalf("Failures = %d, want 60", p.Failures())
	}
}

func TestStopHaltsArrivals(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(4)
	spawned := 0
	p, _ := NewProcess(Config{TargetPopulation: 1000, MeanUptime: sim.Hour}, eng.Clock(), rng, func() func() {
		spawned++
		return func() {}
	})
	p.Start()
	eng.Run(10 * sim.Minute)
	p.Stop()
	before := spawned
	eng.Run(eng.Now() + sim.Hour)
	if spawned != before {
		t.Fatalf("arrivals continued after Stop: %d -> %d", before, spawned)
	}
}

func TestNilKillDeclinesArrival(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	p, _ := NewProcess(Config{TargetPopulation: 100, MeanUptime: sim.Hour}, eng.Clock(), rng, func() func() {
		return nil // decline every arrival
	})
	p.SpawnInitial(10)
	if p.Arrivals() != 0 {
		t.Fatalf("declined arrivals counted: %d", p.Arrivals())
	}
	eng.Run(2 * sim.Hour)
	if p.Failures() != 0 {
		t.Fatal("declined arrivals produced failures")
	}
}

func TestLifetimeDistribution(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(6)
	p, _ := NewProcess(DefaultConfig(), eng.Clock(), rng, func() func() { return func() {} })
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		l := p.Lifetime()
		if l < 1 {
			t.Fatal("non-positive lifetime")
		}
		sum += float64(l)
	}
	mean := sum / n
	want := float64(60 * sim.Minute)
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean lifetime %.0f, want ~%.0f", mean, want)
	}
}
