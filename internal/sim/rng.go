package sim

import "flowercdn/internal/rnd"

// RNG is the deterministic random source used throughout a simulation.
// The implementation lives in internal/rnd (a leaf package, so that
// protocol code depending only on the internal/runtime seam can draw
// randomness without importing the simulation engine); these aliases
// keep the long-standing sim.RNG spelling working for engine-side code
// and tests.
type RNG = rnd.RNG

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG { return rnd.New(seed) }
