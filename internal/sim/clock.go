package sim

import "flowercdn/internal/runtime"

// This file adapts the engine to the backend-agnostic runtime.Clock
// seam. *Timer and *PeriodicTimer already satisfy runtime.Timer and
// runtime.Ticker structurally, so the adapter only has to re-type the
// return values; no per-call allocation happens beyond the interface
// headers.

// engineClock adapts *Engine to runtime.Clock.
type engineClock struct {
	eng *Engine
}

func (c engineClock) Now() int64 { return c.eng.Now() }

func (c engineClock) Schedule(delay int64, fn func()) runtime.Timer {
	return c.eng.Schedule(delay, fn)
}

func (c engineClock) At(t int64, fn func()) runtime.Timer {
	return c.eng.At(t, fn)
}

func (c engineClock) Every(firstDelay, period int64, fn func()) runtime.Ticker {
	return c.eng.Every(firstDelay, period, fn)
}

func (c engineClock) Stop() { c.eng.Stop() }

// Clock returns the engine viewed through the runtime.Clock seam — the
// reference deterministic clock implementation.
func (e *Engine) Clock() runtime.Clock { return engineClock{eng: e} }
