// Package sim provides the discrete-event simulation engine that every
// other package in this repository runs on. It plays the role PeerSim's
// event-driven framework plays in the paper: a virtual clock with
// millisecond resolution, an ordered event queue, and cancellable and
// periodic timers. The engine models latency only — bandwidth and CPU
// are deliberately out of scope, matching the paper's simulator.
//
// All times are int64 milliseconds of simulated time. The constants
// Millisecond, Second, Minute and Hour mirror the time package at that
// resolution.
package sim

import (
	"container/heap"
	"fmt"
)

// Time unit constants, in simulated milliseconds.
const (
	Millisecond int64 = 1
	Second            = 1000 * Millisecond
	Minute            = 60 * Second
	Hour              = 60 * Minute
)

// Timer is a handle for a scheduled event. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled timer is a
// no-op. The zero value is not a valid timer.
type Timer struct {
	when      int64
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// Cancel prevents the timer's function from running when its time
// arrives. It reports whether the cancellation had any effect (i.e. the
// timer had neither fired nor been cancelled already).
func (t *Timer) Cancel() bool {
	if t == nil || t.cancelled || t.fired {
		return false
	}
	t.cancelled = true
	t.fn = nil // release closure for GC
	return true
}

// Fired reports whether the timer's function has already run.
func (t *Timer) Fired() bool { return t != nil && t.fired }

// Cancelled reports whether Cancel was called before the timer fired.
func (t *Timer) Cancelled() bool { return t != nil && t.cancelled }

// When returns the simulated time at which the timer is (or was)
// scheduled to fire.
func (t *Timer) When() int64 { return t.when }

// eventQueue is a binary heap ordered by (when, seq). The sequence
// number guarantees FIFO order among events scheduled for the same
// instant, which keeps runs deterministic.
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*Timer)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; an entire simulation runs on one goroutine, which
// is what makes runs bit-for-bit reproducible.
type Engine struct {
	now       int64
	seq       uint64
	queue     eventQueue
	processed uint64
	stopped   bool

	// slab is the current chunk of bulk-allocated Timer structs. Timers
	// are handed out pointer-by-pointer from the chunk, amortizing one
	// heap allocation over timerSlabSize Schedule calls. Fired timers
	// are never recycled (callers may hold their handles indefinitely);
	// the chunk is garbage-collected once every handle into it is gone.
	slab []Timer
}

// initialQueueCap pre-sizes the event heap: even tiny runs queue
// thousands of events, and growing the heap through the append ladder
// from 0 costs several re-copies of every pending timer.
const initialQueueCap = 4096

// timerSlabSize is the bulk-allocation chunk for Timer structs.
const timerSlabSize = 512

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{queue: make(eventQueue, 0, initialQueueCap)}
}

// newTimer hands out the next Timer from the slab.
func (e *Engine) newTimer() *Timer {
	if len(e.slab) == 0 {
		e.slab = make([]Timer, timerSlabSize)
	}
	t := &e.slab[0]
	e.slab = e.slab[1:]
	return t
}

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() int64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued, including
// cancelled ones that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay milliseconds of simulated time. A
// negative delay is treated as zero (fn runs at the current instant,
// after all events already queued for it). It returns a cancellable
// Timer handle.
func (e *Engine) Schedule(delay int64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulated time t. Times in the past are
// clamped to the current instant.
func (e *Engine) At(t int64, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	timer := e.newTimer()
	timer.when, timer.seq, timer.fn = t, e.seq, fn
	heap.Push(&e.queue, timer)
	return timer
}

// rearm re-queues a timer that has already fired. Only PeriodicTimer
// uses it: the inner timer is owned exclusively by the periodic
// wrapper, so reusing the struct cannot confuse an outside handle.
func (e *Engine) rearm(t *Timer, delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	t.when = e.now + delay
	t.seq = e.seq
	t.fn = fn
	t.fired = false
	t.cancelled = false
	heap.Push(&e.queue, t)
}

// Every schedules fn to run every period milliseconds, with the first
// execution after firstDelay. The returned PeriodicTimer keeps firing
// until cancelled. Period must be positive.
func (e *Engine) Every(firstDelay, period int64, fn func()) *PeriodicTimer {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive period %d", period))
	}
	p := &PeriodicTimer{eng: e, period: period, fn: fn}
	p.fire = p.doFire
	p.inner = e.Schedule(firstDelay, p.fire)
	return p
}

// PeriodicTimer re-schedules itself after each firing until Cancel is
// called. It owns its inner Timer exclusively and reuses the struct
// across firings (plus a single cached fire closure), so steady-state
// periodic work allocates nothing per firing.
type PeriodicTimer struct {
	eng       *Engine
	period    int64
	fn        func()
	fire      func() // cached method value; one allocation per timer, not per firing
	inner     *Timer
	cancelled bool
}

func (p *PeriodicTimer) doFire() {
	if p.cancelled {
		return
	}
	p.fn()
	if !p.cancelled {
		p.eng.rearm(p.inner, p.period, p.fire)
	}
}

// Cancel stops all future firings.
func (p *PeriodicTimer) Cancel() {
	if p.cancelled {
		return
	}
	p.cancelled = true
	p.inner.Cancel()
	p.fn = nil
	p.fire = nil
}

// Cancelled reports whether the periodic timer has been stopped.
func (p *PeriodicTimer) Cancelled() bool { return p.cancelled }

// Step executes the single next event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		t := heap.Pop(&e.queue).(*Timer)
		if t.cancelled {
			continue
		}
		e.now = t.when
		t.fired = true
		fn := t.fn
		t.fn = nil
		e.processed++
		fn()
		return true
	}
	return false
}

// Run executes events until the clock would pass `until` or the queue
// drains, whichever comes first. Events stamped exactly at `until` are
// executed. It returns the number of events processed by this call.
// After Run returns, the clock is at min(until, time of last event) —
// it is advanced to `until` if the queue drained early, so subsequent
// Schedule calls behave consistently.
func (e *Engine) Run(until int64) uint64 {
	start := e.processed
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.when > until {
			break
		}
		e.Step()
	}
	// Advance the clock to the boundary only if we were not stopped
	// mid-run; a Stop leaves the clock at the last executed event so the
	// caller can resume exactly where it left off.
	if !e.stopped && e.now < until {
		e.now = until
	}
	e.stopped = false
	return e.processed - start
}

// RunAll executes events until the queue is empty. Useful in tests;
// beware of self-rescheduling periodic timers, which never drain.
func (e *Engine) RunAll() uint64 {
	start := e.processed
	for e.Step() {
		if e.stopped {
			break
		}
	}
	e.stopped = false
	return e.processed - start
}

// Stop makes the currently executing Run/RunAll return after the
// current event completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }
