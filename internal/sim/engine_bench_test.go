package sim

// Measured effect of the allocation work in engine.go (pre-sized event
// heap, slab-allocated Timers, reused periodic inner timers), same
// machine, -benchtime 1s:
//
//	                     before                after
//	ScheduleRun          272.8 ns/op  1 alloc  205.2 ns/op  0 allocs
//	ScheduleCancel       209.0 ns/op  1 alloc  176.6 ns/op  0 allocs
//	PeriodicTimers       194.5 ns/op  2 allocs 101.5 ns/op  0 allocs
//
// Periodic maintenance (Chord stabilize/fix-fingers/pings, petal
// keepalives) dominates event volume in long runs, so the periodic
// path's 2-allocs-to-0 is the one that moves whole-simulation numbers.

import "testing"

// BenchmarkScheduleRun measures raw one-shot event throughput: schedule
// batches and drain them, the pattern every protocol message reduces to.
func BenchmarkScheduleRun(b *testing.B) {
	eng := NewEngine()
	rng := NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(rng.Int63n(1000), func() {})
		if i%1024 == 1023 {
			eng.Run(eng.Now() + 1000)
		}
	}
	eng.RunAll()
}

// BenchmarkScheduleCancel measures the schedule-then-cancel churn that
// query timeouts and RPC deadlines produce (most timers never fire).
func BenchmarkScheduleCancel(b *testing.B) {
	eng := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := eng.Schedule(1000, func() {})
		t.Cancel()
		if i%1024 == 1023 {
			eng.Run(eng.Now() + 1)
		}
	}
	eng.RunAll()
}

// BenchmarkPeriodicTimers measures the maintenance-loop pattern: many
// long-lived periodic timers firing over and over (Chord stabilize,
// finger pings, keepalives). Per-firing cost is what matters.
func BenchmarkPeriodicTimers(b *testing.B) {
	eng := NewEngine()
	const timers = 64
	fired := 0
	for i := 0; i < timers; i++ {
		eng.Every(int64(i), 100, func() { fired++ })
	}
	b.ReportAllocs()
	b.ResetTimer()
	// Each Run window fires every periodic timer once per 100 ms.
	for fired < b.N {
		eng.Run(eng.Now() + 100)
	}
}
