package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %d, want 100 (clock advances to until)", e.Now())
	}
}

func TestSameInstantIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", order)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(50, func() {
		e.Schedule(-10, func() {
			if e.Now() != 50 {
				t.Errorf("negative delay fired at %d, want 50", e.Now())
			}
		})
	})
	e.RunAll()
}

func TestAtInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := int64(-1)
	e.Schedule(100, func() {
		e.At(10, func() { fired = e.Now() })
	})
	e.RunAll()
	if fired != 100 {
		t.Fatalf("past At fired at %d, want 100", fired)
	}
}

func TestRunStopsAtBoundaryInclusive(t *testing.T) {
	e := NewEngine()
	var at, after bool
	e.Schedule(100, func() { at = true })
	e.Schedule(101, func() { after = true })
	e.Run(100)
	if !at {
		t.Fatal("event at the boundary did not run")
	}
	if after {
		t.Fatal("event after the boundary ran")
	}
	e.Run(101)
	if !after {
		t.Fatal("event did not run on subsequent Run")
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.Schedule(10, func() { ran = true })
	if !tm.Cancel() {
		t.Fatal("Cancel() = false on pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel() = true, want false")
	}
	e.Run(100)
	if ran {
		t.Fatal("cancelled timer ran")
	}
	if !tm.Cancelled() || tm.Fired() {
		t.Fatalf("timer state: cancelled=%v fired=%v", tm.Cancelled(), tm.Fired())
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(10, func() {})
	e.Run(100)
	if !tm.Fired() {
		t.Fatal("timer did not fire")
	}
	if tm.Cancel() {
		t.Fatal("Cancel() after fire = true, want false")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(1, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("Now() = %d, want 99", e.Now())
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	e := NewEngine()
	var times []int64
	p := e.Every(10, 25, func() { times = append(times, e.Now()) })
	e.Run(100)
	want := []int64{10, 35, 60, 85}
	if len(times) != len(want) {
		t.Fatalf("fired %d times (%v), want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("firing times %v, want %v", times, want)
		}
	}
	p.Cancel()
	if !p.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	before := len(times)
	e.Run(1000)
	if len(times) != before {
		t.Fatal("periodic timer fired after Cancel")
	}
}

func TestEveryCancelFromWithinCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var p *PeriodicTimer
	p = e.Every(0, 10, func() {
		count++
		if count == 3 {
			p.Cancel()
		}
	})
	e.Run(1000)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (cancel from callback)", count)
	}
}

func TestEveryPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(_, 0, _) did not panic")
		}
	}()
	NewEngine().Every(0, 0, func() {})
}

func TestAtNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At with nil fn did not panic")
		}
	}()
	NewEngine().At(5, nil)
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(0, 1, func() {
		count++
		if count == 5 {
			e.Stop()
		}
	})
	e.Run(1000)
	if count != 5 {
		t.Fatalf("count = %d, want 5 after Stop", count)
	}
	if e.Now() != 4 {
		t.Fatalf("Now() = %d after Stop, want 4 (clock not advanced past stop)", e.Now())
	}
	// The engine is reusable after a Stop: the pending periodic firings
	// at t=5,6,7 execute on the next Run.
	e.Run(e.Now() + 3)
	if count != 8 {
		t.Fatalf("count = %d after resume, want 8", count)
	}
}

func TestProcessedCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(int64(i), func() {})
	}
	c := e.Schedule(3, func() {})
	c.Cancel()
	n := e.Run(100)
	if n != 7 {
		t.Fatalf("Run processed %d events, want 7 (cancelled not counted)", n)
	}
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", e.Processed())
	}
}

func TestClockNeverGoesBackwards(t *testing.T) {
	// Property: for any sequence of schedule delays, observed event
	// times are non-decreasing.
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := int64(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(int64(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.RunAll()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []int64 {
		e := NewEngine()
		rng := NewRNG(42)
		var out []int64
		for i := 0; i < 200; i++ {
			e.Schedule(rng.Int63n(1000), func() { out = append(out, e.Now()) })
		}
		e.RunAll()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
