package sim

import "testing"

// TestPeriodicFiringAllocs pins the engine's periodic-timer hot path at
// zero allocations per firing: every experiment reduces to millions of
// gossip/keepalive ticks, so a single allocation here multiplies into
// most of a run's garbage. The reused periodic timer and the slab-based
// event heap are what keep this at zero; this guard keeps it there.
func TestPeriodicFiringAllocs(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.Every(1, 1, func() { fired++ })
	eng.Run(1000) // warm up: slab and heap reach steady-state capacity
	avg := testing.AllocsPerRun(100, func() {
		eng.Run(eng.Now() + 10)
	})
	if fired == 0 {
		t.Fatal("periodic timer never fired")
	}
	if avg > 0 {
		t.Errorf("periodic firing allocates %.2f objects per 10 firings; want 0", avg)
	}
}
