// Package rnd is the deterministic randomness spine of the simulator:
// a splittable PCG-backed RNG where every subsystem draws from its own
// named stream derived from the run's master seed. Splitting by name
// (rng.Split("churn"), rng.Split("workload")) isolates consumption —
// adding draws to one subsystem never perturbs another's sequence — so
// run fingerprints stay stable as the codebase grows and a single seed
// reproduces an entire population across backends and process counts.
package rnd

import (
	"math"
	"math/rand/v2"
)

// RNG is the deterministic random source used throughout a simulation.
// Every subsystem receives its own RNG split from the run's master seed
// so that adding randomness consumption to one subsystem does not
// perturb the draws seen by another (which would otherwise make
// before/after comparisons noisy).
type RNG struct {
	r *rand.Rand
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent generator from this one, labelled by tag.
// Two Splits with different tags from the same parent produce
// uncorrelated streams; the same tag always produces the same stream.
func (g *RNG) Split(tag string) *RNG {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	// Mix the parent stream in once so different master seeds diverge.
	return New(h ^ g.r.Uint64())
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.IntN(n) }

// Int63n returns a uniform int64 draw in [0, n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int64N(n) }

// Uint64 returns a uniform 64-bit draw.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Uniform returns a uniform draw in [lo, hi). If hi <= lo it returns lo.
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*g.r.Float64()
}

// UniformDuration returns a uniform simulated duration in [lo, hi) ms.
func (g *RNG) UniformDuration(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Int64N(hi-lo)
}

// Exp returns an exponential draw with the given mean (not rate). Used
// for peer uptimes and Poisson inter-arrival times. Mean must be
// positive.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// ExpDuration returns an exponential simulated duration with the given
// mean in milliseconds, always at least 1 ms so zero-length lifetimes
// cannot occur.
func (g *RNG) ExpDuration(mean int64) int64 {
	d := int64(math.Round(g.Exp(float64(mean))))
	if d < 1 {
		d = 1
	}
	return d
}

// Norm returns a normal draw with the given mean and standard deviation.
func (g *RNG) Norm(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Pick returns a uniformly random index into a slice of length n, or -1
// if n == 0.
func (g *RNG) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return g.r.IntN(n)
}
