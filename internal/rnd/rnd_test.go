package rnd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(8)
	same := true
	a2 := New(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	x := parent.Split("workload")
	parent2 := New(99)
	y := parent2.Split("workload")
	for i := 0; i < 50; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatal("same tag from same parent state diverged")
		}
	}
	p3 := New(99)
	z := p3.Split("churn")
	w := New(99).Split("workload")
	diff := false
	for i := 0; i < 50; i++ {
		if z.Uint64() != w.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different tags produced identical streams")
	}
}

func TestExpDurationPositiveAndMeanish(t *testing.T) {
	g := New(1)
	const n = 20000
	const mean = int64(60 * int64(60000))
	var sum float64
	for i := 0; i < n; i++ {
		d := g.ExpDuration(mean)
		if d < 1 {
			t.Fatalf("ExpDuration returned %d < 1", d)
		}
		sum += float64(d)
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("empirical mean %.0f, want within 5%% of %d", got, mean)
	}
}

func TestUniformBounds(t *testing.T) {
	g := New(2)
	f := func(a, b int32) bool {
		lo, hi := float64(a), float64(b)
		v := g.Uniform(lo, hi)
		if hi <= lo {
			return v == lo
		}
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDurationBounds(t *testing.T) {
	g := New(3)
	for i := 0; i < 1000; i++ {
		v := g.UniformDuration(10, 500)
		if v < 10 || v >= 500 {
			t.Fatalf("UniformDuration out of range: %d", v)
		}
	}
	if g.UniformDuration(7, 7) != 7 {
		t.Fatal("degenerate range should return lo")
	}
}

func TestPick(t *testing.T) {
	g := New(4)
	if g.Pick(0) != -1 {
		t.Fatal("Pick(0) should be -1")
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := g.Pick(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Pick(5) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Pick(5) over 200 draws hit %d distinct values, want 5", len(seen))
	}
}

func TestBoolProbability(t *testing.T) {
	g := New(5)
	n, hits := 50000, 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) empirical rate %.3f", p)
	}
	if g.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(6)
	p := g.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	g := New(7)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestNormMoments(t *testing.T) {
	g := New(8)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := g.Norm(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 || math.Abs(sd-2) > 0.1 {
		t.Fatalf("Norm(10,2): mean=%.3f sd=%.3f", mean, sd)
	}
}
