package distsweep

import (
	"flowercdn/internal/runtime"
)

// The coordinator/worker protocol, in conversation order:
//
//	worker → Hello        (name + spec fingerprint)
//	coord  → Welcome      (job totals; or Shutdown on mismatch/finish)
//	worker → JobRequest   ─┐ repeated until Shutdown
//	coord  → JobAssign     │ (or Shutdown when the sweep is done)
//	worker → Progress*     │ periodic liveness while the run executes
//	worker → ResultMsg     │ (or JobFailed, which aborts the sweep)
//	                      ─┘
//	coord  → Shutdown     (all jobs done, or abort)
//
// Every type is registered with the runtime wire registry and carries
// a canonical binary marshaller, so the pair can speak either codec —
// the binary codec is the default, and wiretest pins the round trips.

// Hello opens a worker's session: its display name and the fingerprint
// of the spec it built from its own flags. A mismatched fingerprint is
// refused before any job is assigned.
type Hello struct {
	Worker  string
	SpecSum uint64
}

// Welcome answers a Hello: the job totals, so workers can log progress
// against the whole sweep.
type Welcome struct {
	Total int // jobs in the spec (cells × seeds)
	Done  int // already complete, resumed from the out-dir
}

// JobRequest asks for the next job; the worker runs one job at a time.
type JobRequest struct{}

// JobAssign hands a worker one (cell, seed) job under a lease epoch.
// Epochs increase on every (re)assignment of the same job; a result
// returning under an older epoch than the job's current one is a
// straggler's and is discarded.
type JobAssign struct {
	Cell  int
	Seed  int
	Epoch uint64
}

// Progress is the worker's periodic liveness signal while a run
// executes; it renews the job's lease deadline.
type Progress struct {
	Cell      int
	Seed      int
	Epoch     uint64
	ElapsedMs int64
}

// ResultMsg returns a completed job's record.
type ResultMsg struct {
	Cell  int
	Seed  int
	Epoch uint64
	Rec   *RunRecord
}

// JobFailed reports a run error. Run errors are deterministic
// configuration failures (the same config fails everywhere), so the
// coordinator aborts the sweep, mirroring sweep.Run.
type JobFailed struct {
	Cell  int
	Seed  int
	Epoch uint64
	Err   string
}

// Shutdown tells a worker to exit cleanly.
type Shutdown struct {
	Reason string
}

func init() {
	runtime.RegisterWireType(
		&Hello{}, &Welcome{}, &JobRequest{}, &JobAssign{},
		&Progress{}, &ResultMsg{}, &JobFailed{}, &Shutdown{},
	)
}

// AppendWire implements runtime.WireMessage.
func (m *Hello) AppendWire(w *runtime.WireWriter) {
	w.String(m.Worker)
	w.U64(m.SpecSum)
}

// DecodeWire implements runtime.WireMessage.
func (*Hello) DecodeWire(r *runtime.WireReader) any {
	return &Hello{Worker: r.String(), SpecSum: r.U64()}
}

// AppendWire implements runtime.WireMessage.
func (m *Welcome) AppendWire(w *runtime.WireWriter) {
	w.Int(m.Total)
	w.Int(m.Done)
}

// DecodeWire implements runtime.WireMessage.
func (*Welcome) DecodeWire(r *runtime.WireReader) any {
	return &Welcome{Total: r.Int(), Done: r.Int()}
}

// AppendWire implements runtime.WireMessage.
func (*JobRequest) AppendWire(*runtime.WireWriter) {}

// DecodeWire implements runtime.WireMessage.
func (*JobRequest) DecodeWire(*runtime.WireReader) any { return &JobRequest{} }

// AppendWire implements runtime.WireMessage.
func (m *JobAssign) AppendWire(w *runtime.WireWriter) {
	w.Int(m.Cell)
	w.Int(m.Seed)
	w.Uvarint(m.Epoch)
}

// DecodeWire implements runtime.WireMessage.
func (*JobAssign) DecodeWire(r *runtime.WireReader) any {
	return &JobAssign{Cell: r.Int(), Seed: r.Int(), Epoch: r.Uvarint()}
}

// AppendWire implements runtime.WireMessage.
func (m *Progress) AppendWire(w *runtime.WireWriter) {
	w.Int(m.Cell)
	w.Int(m.Seed)
	w.Uvarint(m.Epoch)
	w.Varint(m.ElapsedMs)
}

// DecodeWire implements runtime.WireMessage.
func (*Progress) DecodeWire(r *runtime.WireReader) any {
	return &Progress{Cell: r.Int(), Seed: r.Int(), Epoch: r.Uvarint(), ElapsedMs: r.Varint()}
}

// AppendWire implements runtime.WireMessage.
func (m *ResultMsg) AppendWire(w *runtime.WireWriter) {
	w.Int(m.Cell)
	w.Int(m.Seed)
	w.Uvarint(m.Epoch)
	w.Bool(m.Rec != nil)
	if m.Rec != nil {
		m.Rec.appendWire(w)
	}
}

// DecodeWire implements runtime.WireMessage.
func (*ResultMsg) DecodeWire(r *runtime.WireReader) any {
	m := &ResultMsg{Cell: r.Int(), Seed: r.Int(), Epoch: r.Uvarint()}
	if r.Bool() {
		m.Rec = decodeRunRecord(r)
	}
	return m
}

// AppendWire implements runtime.WireMessage.
func (m *JobFailed) AppendWire(w *runtime.WireWriter) {
	w.Int(m.Cell)
	w.Int(m.Seed)
	w.Uvarint(m.Epoch)
	w.String(m.Err)
}

// DecodeWire implements runtime.WireMessage.
func (*JobFailed) DecodeWire(r *runtime.WireReader) any {
	return &JobFailed{Cell: r.Int(), Seed: r.Int(), Epoch: r.Uvarint(), Err: r.String()}
}

// AppendWire implements runtime.WireMessage.
func (m *Shutdown) AppendWire(w *runtime.WireWriter) {
	w.String(m.Reason)
}

// DecodeWire implements runtime.WireMessage.
func (*Shutdown) DecodeWire(r *runtime.WireReader) any {
	return &Shutdown{Reason: r.String()}
}
