package distsweep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flowercdn/internal/harness"
	"flowercdn/internal/metrics"
	"flowercdn/internal/runtime"
	"flowercdn/internal/sweep"
)

// RunRecord is the portable projection of a harness.Result: exactly the
// fields the sweep's aggregation and CSV/series renderers consume,
// carried with bit-exact float64s (fixed 8-byte IEEE encoding — never
// text) so a record written on one machine and aggregated on another
// reproduces the in-process sweep's output byte for byte. Per-run bulk
// that aggregation never touches (distributions, quantiles, traces,
// per-protocol counter maps) deliberately stays behind on the worker.
type RunRecord struct {
	Protocol   string
	Population int
	Duration   int64
	Backend    string

	HitRatio       float64
	TailHitRatio   float64
	MeanLookupMs   float64
	MeanTransferMs float64
	MeanHops       float64

	Queries    uint64
	Hits       uint64
	Misses     uint64
	Unresolved uint64

	Fingerprint uint64
	Series      []metrics.SeriesPoint
}

// newRecord projects a completed run onto its portable record.
func newRecord(res *harness.Result) *RunRecord {
	return &RunRecord{
		Protocol:       string(res.Protocol),
		Population:     res.Population,
		Duration:       res.Duration,
		Backend:        res.Backend,
		HitRatio:       res.HitRatio,
		TailHitRatio:   res.TailHitRatio,
		MeanLookupMs:   res.MeanLookupMs,
		MeanTransferMs: res.MeanTransferMs,
		MeanHops:       res.MeanHops,
		Queries:        res.Queries,
		Hits:           res.Hits,
		Misses:         res.Misses,
		Unresolved:     res.Unresolved,
		Fingerprint:    res.Fingerprint,
		Series:         res.Series,
	}
}

// Result reconstitutes the harness result the aggregation consumes.
func (rec *RunRecord) Result() *harness.Result {
	return &harness.Result{
		Protocol:       harness.Protocol(rec.Protocol),
		Population:     rec.Population,
		Duration:       rec.Duration,
		Backend:        rec.Backend,
		HitRatio:       rec.HitRatio,
		TailHitRatio:   rec.TailHitRatio,
		MeanLookupMs:   rec.MeanLookupMs,
		MeanTransferMs: rec.MeanTransferMs,
		MeanHops:       rec.MeanHops,
		Queries:        rec.Queries,
		Hits:           rec.Hits,
		Misses:         rec.Misses,
		Unresolved:     rec.Unresolved,
		Fingerprint:    rec.Fingerprint,
		Series:         rec.Series,
	}
}

// appendWire writes the record body — shared between ResultMsg (the
// wire) and the per-cell record files (disk), so both are the same
// canonical encoding.
func (rec *RunRecord) appendWire(w *runtime.WireWriter) {
	w.String(rec.Protocol)
	w.Int(rec.Population)
	w.Varint(rec.Duration)
	w.String(rec.Backend)
	w.F64(rec.HitRatio)
	w.F64(rec.TailHitRatio)
	w.F64(rec.MeanLookupMs)
	w.F64(rec.MeanTransferMs)
	w.F64(rec.MeanHops)
	w.Uvarint(rec.Queries)
	w.Uvarint(rec.Hits)
	w.Uvarint(rec.Misses)
	w.Uvarint(rec.Unresolved)
	w.U64(rec.Fingerprint)
	w.Uvarint(uint64(len(rec.Series)))
	for _, p := range rec.Series {
		w.Varint(p.Start)
		w.F64(p.HitRatio)
		w.Uvarint(p.Queries)
		w.F64(p.MeanLookupMs)
		w.F64(p.MeanTransferMs)
		w.F64(p.Evictions)
	}
}

func decodeRunRecord(r *runtime.WireReader) *RunRecord {
	rec := &RunRecord{
		Protocol:       r.String(),
		Population:     r.Int(),
		Duration:       r.Varint(),
		Backend:        r.String(),
		HitRatio:       r.F64(),
		TailHitRatio:   r.F64(),
		MeanLookupMs:   r.F64(),
		MeanTransferMs: r.F64(),
		MeanHops:       r.F64(),
		Queries:        r.Uvarint(),
		Hits:           r.Uvarint(),
		Misses:         r.Uvarint(),
		Unresolved:     r.Uvarint(),
		Fingerprint:    r.U64(),
	}
	if n := r.ArrayLen(8); n > 0 && r.Err() == nil {
		rec.Series = make([]metrics.SeriesPoint, n)
		for i := range rec.Series {
			rec.Series[i] = metrics.SeriesPoint{
				Start:          r.Varint(),
				HitRatio:       r.F64(),
				Queries:        r.Uvarint(),
				MeanLookupMs:   r.F64(),
				MeanTransferMs: r.F64(),
				Evictions:      r.F64(),
			}
		}
	}
	return rec
}

// Per-cell record files, the coordinator's resume state:
//
//	header = "FCRC" | version u8 | spec sum u64 BE | cell u32 BE
//	record = u32 BE body length | body
//	body   = uvarint seed index | RunRecord (canonical binary)
//
// Records are appended (and fsynced) one write each as jobs complete.
// A coordinator crash can tear the last record; the loader detects the
// torn tail and the opener truncates it away, so those jobs simply
// re-run. A header whose spec sum disagrees is a hard error — an
// out-dir can only ever be resumed with the spec that created it.

var recordMagic = [4]byte{'F', 'C', 'R', 'C'}

const (
	recordVersion    = 1
	recordHeaderSize = 4 + 1 + 8 + 4
	// maxRecordBytes bounds one record body; larger prefixes indicate a
	// corrupt file, not a real record.
	maxRecordBytes = 16 << 20
)

// cellLog is one cell's append-only record file.
type cellLog struct {
	f   *os.File
	buf []byte
}

func cellPath(dir string, cell int) string {
	return filepath.Join(dir, fmt.Sprintf("cell-%05d.rec", cell))
}

// openCellLog opens (creating if absent) cell c's record file under
// dir, validates its header against the spec fingerprint, loads every
// completed record, and truncates any crash-torn tail so the file is
// append-clean. It returns the open log and the loaded records keyed
// by seed index.
func openCellLog(dir string, cell int, sum uint64) (*cellLog, map[int]*RunRecord, error) {
	path := cellPath(dir, cell)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if info.Size() == 0 {
		var hdr [recordHeaderSize]byte
		copy(hdr[:4], recordMagic[:])
		hdr[4] = recordVersion
		binary.BigEndian.PutUint64(hdr[5:13], sum)
		binary.BigEndian.PutUint32(hdr[13:17], uint32(cell))
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &cellLog{f: f}, map[int]*RunRecord{}, nil
	}

	var hdr [recordHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("distsweep: %s: short header: %w", path, err)
	}
	if [4]byte(hdr[:4]) != recordMagic || hdr[4] != recordVersion {
		f.Close()
		return nil, nil, fmt.Errorf("distsweep: %s is not a v%d record file", path, recordVersion)
	}
	if got := binary.BigEndian.Uint64(hdr[5:13]); got != sum {
		f.Close()
		return nil, nil, fmt.Errorf("distsweep: %s belongs to a different spec (sum %#x, ours %#x) — point -out-dir elsewhere or remove it", path, got, sum)
	}
	if got := int(binary.BigEndian.Uint32(hdr[13:17])); got != cell {
		f.Close()
		return nil, nil, fmt.Errorf("distsweep: %s claims cell %d, expected %d", path, got, cell)
	}

	recs := map[int]*RunRecord{}
	good := int64(recordHeaderSize)
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn length prefix: truncate below
			}
			f.Close()
			return nil, nil, err
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxRecordBytes {
			break // corrupt prefix: treat the rest as torn
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(f, body); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn body
			}
			f.Close()
			return nil, nil, err
		}
		r := runtime.NewWireReader(body)
		seed := int(r.Uvarint())
		rec := decodeRunRecord(r)
		if r.Err() != nil || r.Len() != 0 {
			break // torn or corrupt record: stop here, re-run the rest
		}
		recs[seed] = rec
		good += 4 + int64(n)
	}
	// Drop any torn tail so appended records start at a clean boundary.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &cellLog{f: f}, recs, nil
}

// append durably writes one completed record.
func (l *cellLog) append(seed int, rec *RunRecord) error {
	w := runtime.NewWireWriter(append(l.buf[:0], 0, 0, 0, 0))
	w.Uvarint(uint64(seed))
	rec.appendWire(w)
	if err := w.Err(); err != nil {
		return err
	}
	buf := w.Finish()
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	l.buf = buf
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *cellLog) close() error { return l.f.Close() }

// openOutDir opens every cell's log under dir (creating the directory
// as needed), returning the logs (index-aligned with spec.Cells) and
// all previously completed jobs.
func openOutDir(dir string, spec sweep.Spec, sum uint64) ([]*cellLog, map[jobKey]*RunRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	logs := make([]*cellLog, len(spec.Cells))
	done := map[jobKey]*RunRecord{}
	for c := range spec.Cells {
		log, recs, err := openCellLog(dir, c, sum)
		if err != nil {
			for _, l := range logs {
				if l != nil {
					l.close()
				}
			}
			return nil, nil, err
		}
		logs[c] = log
		for seed, rec := range recs {
			if seed < len(spec.Seeds) {
				done[jobKey{c, seed}] = rec
			}
		}
	}
	return logs, done, nil
}
