package distsweep

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"flowercdn/internal/harness"
	"flowercdn/internal/metrics"
	_ "flowercdn/internal/protocols" // register the built-in drivers
	"flowercdn/internal/sim"
	"flowercdn/internal/socknet"
	"flowercdn/internal/sweep"
)

// tinyConfig is a CI-sized run (a few hundred ms), matching the sweep
// package's determinism tests.
func tinyConfig(protocol harness.Protocol) harness.Config {
	cfg := harness.QuickConfig()
	cfg.Protocol = protocol
	cfg.Population = 100
	cfg.Duration = 2 * sim.Hour
	cfg.Workload.Sites = 8
	cfg.Workload.ActiveSites = 2
	cfg.Workload.ObjectsPerSite = 50
	return cfg
}

func tinySpec() sweep.Spec {
	return sweep.Spec{
		Cells: []sweep.Cell{
			{Name: "flower", Config: tinyConfig(harness.ProtocolFlower)},
			{Name: "squirrel", Config: tinyConfig(harness.ProtocolSquirrel)},
		},
		Seeds: []uint64{1, 2},
	}
}

// eventLog collects coordinator/worker events thread-safely.
type eventLog struct {
	mu     sync.Mutex
	events []string
}

func (l *eventLog) add(s string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, s)
}

func (l *eventLog) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.events...)
}

func (l *eventLog) contains(sub string) bool {
	for _, e := range l.all() {
		if strings.Contains(e, sub) {
			return true
		}
	}
	return false
}

func (l *eventLog) waitFor(t *testing.T, sub string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !l.contains(sub) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for event containing %q; have %v", sub, l.all())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertSameResult fails unless the distributed aggregates are
// bit-identical to the in-process ones: identical rendered tables and
// CSVs (the artifacts the equality gate in CI diffs) and DeepEqual
// cell statistics.
func assertSameResult(t *testing.T, want, got *sweep.Result) {
	t.Helper()
	if got.Table() != want.Table() {
		t.Errorf("tables differ:\nin-process:\n%s\ndistributed:\n%s", want.Table(), got.Table())
	}
	if got.CSV() != want.CSV() {
		t.Errorf("CSVs differ:\nin-process:\n%s\ndistributed:\n%s", want.CSV(), got.CSV())
	}
	if got.SeriesCSV() != want.SeriesCSV() {
		t.Errorf("series CSVs differ")
	}
	for i := range want.Cells {
		// Compare aggregate statistics only: records deliberately project
		// away per-run bulk, so the Runs slices differ by design.
		w, g := want.Cells[i], got.Cells[i]
		w.Runs, g.Runs = nil, nil
		if !reflect.DeepEqual(w, g) {
			t.Errorf("cell %d aggregates differ:\nin-process: %+v\ndistributed: %+v", i, w, g)
		}
	}
}

// runWorkers runs n workers concurrently against the coordinator and
// waits for all of them; worker errors fail the test.
func runWorkers(t *testing.T, n int, cfg WorkerConfig) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wcfg := cfg
		wcfg.Name = fmt.Sprintf("w%d", i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(wcfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// The headline property: a distributed sweep at 1, 2 and 4 workers
// produces aggregates bit-identical to sweep.Run of the same spec.
func TestDistributedMatchesInProcess(t *testing.T) {
	spec := tinySpec()
	want, err := sweep.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			coord, err := StartCoordinator(CoordinatorConfig{
				Listen: "127.0.0.1:0",
				Spec:   spec,
				OutDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			runWorkers(t, workers, WorkerConfig{Coordinator: coord.Addr(), Spec: spec})
			got, err := coord.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if got.Workers != workers {
				t.Errorf("Workers = %d, want %d", got.Workers, workers)
			}
			assertSameResult(t, want, got)
		})
	}
}

// Both codecs carry the protocol; gob is the compatibility fallback.
func TestDistributedGobCodec(t *testing.T) {
	spec := sweep.Spec{Cells: tinySpec().Cells[:1], Seeds: []uint64{1}}
	want, err := sweep.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runDistributed(t, spec, CoordinatorConfig{Codec: "gob"}, WorkerConfig{Codec: "gob"})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got)
}

// runDistributed is the one-coordinator one-worker convenience used by
// the smaller tests. Zero fields of ccfg/wcfg are filled in.
func runDistributed(t *testing.T, spec sweep.Spec, ccfg CoordinatorConfig, wcfg WorkerConfig) (*sweep.Result, error) {
	t.Helper()
	ccfg.Listen = "127.0.0.1:0"
	ccfg.Spec = spec
	if ccfg.OutDir == "" {
		ccfg.OutDir = t.TempDir()
	}
	coord, err := StartCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	wcfg.Coordinator = coord.Addr()
	wcfg.Spec = spec
	runWorkers(t, 1, wcfg)
	return coord.Wait()
}

// A worker that dies mid-job forfeits its lease on connection loss and
// the job is reassigned; the surviving worker finishes the sweep and
// the aggregates are still exact.
func TestWorkerKillMidJobReassigns(t *testing.T) {
	spec := tinySpec()
	want, err := sweep.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	log := &eventLog{}
	coord, err := StartCoordinator(CoordinatorConfig{
		Listen:  "127.0.0.1:0",
		Spec:    spec,
		OutDir:  t.TempDir(),
		OnEvent: log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// The doomed worker: a raw stream that takes one job and dies
	// without a word — the kill -9 shape of worker loss.
	s, err := socknet.DialStream(coord.Addr(), DefaultCodec, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(&Hello{Worker: "doomed", SpecSum: SpecSum(spec)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil { // Welcome
		t.Fatal(err)
	}
	if err := s.Send(&JobRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil { // JobAssign
		t.Fatal(err)
	}
	s.Close() // dies holding the lease

	log.waitFor(t, "worker doomed lost")
	runWorkers(t, 1, WorkerConfig{Coordinator: coord.Addr(), Spec: spec})
	got, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !log.contains("requeued 1 leased job") {
		t.Errorf("no requeue event; events: %v", log.all())
	}
	assertSameResult(t, want, got)
}

// A worker that goes silent past the lease forfeits the job to
// reassignment; when its (bogus) result finally lands under the old
// epoch it is discarded, so a straggler can never corrupt aggregates.
func TestStragglerResultDiscardedByEpoch(t *testing.T) {
	spec := tinySpec()
	want, err := sweep.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	log := &eventLog{}
	coord, err := StartCoordinator(CoordinatorConfig{
		Listen:  "127.0.0.1:0",
		Spec:    spec,
		OutDir:  t.TempDir(),
		Lease:   200 * time.Millisecond,
		OnEvent: log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// The straggler: takes a job, never heartbeats, stays connected.
	s, err := socknet.DialStream(coord.Addr(), DefaultCodec, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Send(&Hello{Worker: "straggler", SpecSum: SpecSum(spec)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(&JobRequest{}); err != nil {
		t.Fatal(err)
	}
	raw, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	assign, ok := raw.(*JobAssign)
	if !ok {
		t.Fatalf("expected a JobAssign, got %T", raw)
	}

	// The lease expires and the job is reassigned to a real worker
	// (heartbeating well inside the short lease)...
	log.waitFor(t, "lease(s) expired")
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(WorkerConfig{
			Coordinator: coord.Addr(), Spec: spec, Name: "real", Heartbeat: 50 * time.Millisecond,
		})
	}()
	log.waitFor(t, fmt.Sprintf("cell %d seed %d assigned to real (epoch %d)", assign.Cell, assign.Seed, assign.Epoch+1))

	// ...and only then does the straggler's poisoned result arrive.
	// Acceptance would skew every aggregate; the epoch discards it.
	if err := s.Send(&ResultMsg{Cell: assign.Cell, Seed: assign.Seed, Epoch: assign.Epoch,
		Rec: &RunRecord{Protocol: "flower", Backend: "sim", HitRatio: 999}}); err != nil {
		t.Fatal(err)
	}
	log.waitFor(t, "discarding stale result")

	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}
	got, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got)
}

// A restarted coordinator resumes from the out-dir: completed records
// are loaded, their jobs never re-run, and the final aggregates are
// still bit-identical to the in-process sweep.
func TestCoordinatorRestartResume(t *testing.T) {
	spec := tinySpec()
	want, err := sweep.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	outDir := t.TempDir()
	total := len(spec.Cells) * len(spec.Seeds)

	// Phase 1: complete at least two of the four jobs, then "crash".
	done := make(chan struct{})
	var once sync.Once
	c1, err := StartCoordinator(CoordinatorConfig{
		Listen: "127.0.0.1:0",
		Spec:   spec,
		OutDir: outDir,
		OnEvent: func(e string) {
			if strings.Contains(e, "(2/4)") {
				once.Do(func() { close(done) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w1done := make(chan struct{})
	go func() {
		defer close(w1done)
		// The worker dies with the coordinator; any error is expected.
		RunWorker(WorkerConfig{Coordinator: c1.Addr(), Spec: spec, Name: "phase1"}) //nolint:errcheck
	}()
	<-done
	c1.Close()
	<-w1done

	// Phase 2: a fresh coordinator on the same out-dir runs only the
	// remainder. (The phase-1 worker may have landed another result
	// between the trigger event and Close, so "at least 2, not all".)
	log2 := &eventLog{}
	c2, err := StartCoordinator(CoordinatorConfig{
		Listen:  "127.0.0.1:0",
		Spec:    spec,
		OutDir:  outDir,
		OnEvent: log2.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resumed := -1
	for _, e := range log2.all() {
		if _, err := fmt.Sscanf(e, "resumed %d completed", &resumed); err == nil {
			break
		}
	}
	if resumed < 2 || resumed >= total {
		t.Fatalf("resumed %d job(s), want at least 2 and fewer than %d; events: %v", resumed, total, log2.all())
	}

	ran := &eventLog{}
	runWorkers(t, 1, WorkerConfig{Coordinator: c2.Addr(), Spec: spec, OnEvent: ran.add})
	got, err := c2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// No completed job ran twice: the phase-2 worker executed exactly
	// the missing runs.
	runs := 0
	for _, e := range ran.all() {
		if strings.Contains(e, "running cell") {
			runs++
		}
	}
	if runs != total-resumed {
		t.Errorf("phase-2 worker ran %d job(s), want %d (events: %v)", runs, total-resumed, ran.all())
	}
	assertSameResult(t, want, got)
}

// An out-dir written under one spec refuses to resume another.
func TestOutDirSpecMismatch(t *testing.T) {
	spec := sweep.Spec{Cells: tinySpec().Cells[:1], Seeds: []uint64{1}}
	outDir := t.TempDir()
	if _, err := runDistributed(t, spec, CoordinatorConfig{OutDir: outDir}, WorkerConfig{}); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seeds = []uint64{9}
	_, err := StartCoordinator(CoordinatorConfig{Listen: "127.0.0.1:0", Spec: other, OutDir: outDir})
	if err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("err = %v, want different-spec refusal", err)
	}
}

// A worker whose flags produced a different spec is refused by
// fingerprint before any job is assigned.
func TestWorkerSpecMismatchRefused(t *testing.T) {
	spec := tinySpec()
	coord, err := StartCoordinator(CoordinatorConfig{Listen: "127.0.0.1:0", Spec: spec, OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	drifted := spec
	drifted.Seeds = []uint64{1, 3}
	err = RunWorker(WorkerConfig{Coordinator: coord.Addr(), Spec: drifted})
	if err == nil || !strings.Contains(err.Error(), "spec mismatch") {
		t.Fatalf("err = %v, want spec-mismatch refusal", err)
	}
}

// Torn tails (a coordinator killed mid-append) are detected, truncated
// away and re-run, never half-loaded.
func TestRecordFileTornTail(t *testing.T) {
	dir := t.TempDir()
	sum := uint64(0xfeedface)
	l, recs, err := openCellLog(dir, 0, sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh file loaded %d records", len(recs))
	}
	rec := &RunRecord{Protocol: "flower", Backend: "sim", HitRatio: 0.5, Queries: 10}
	if err := l.append(0, rec); err != nil {
		t.Fatal(err)
	}
	if err := l.append(1, rec); err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-record: a length prefix promising more bytes
	// than exist.
	if _, err := l.f.Write([]byte{0, 0, 0, 200, 'g', 'a', 'r', 'b'}); err != nil {
		t.Fatal(err)
	}
	l.close()

	l2, recs, err := openCellLog(dir, 0, sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0] == nil || recs[1] == nil {
		t.Fatalf("reloaded %d records, want the 2 intact ones", len(recs))
	}
	if recs[0].HitRatio != 0.5 || recs[0].Queries != 10 {
		t.Fatalf("record changed across reload: %+v", recs[0])
	}
	// The torn tail was truncated: appending and reloading stays clean.
	if err := l2.append(2, rec); err != nil {
		t.Fatal(err)
	}
	l2.close()
	l3, recs, err := openCellLog(dir, 0, sum)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.close()
	if len(recs) != 3 {
		t.Fatalf("after tear+append reload got %d records, want 3", len(recs))
	}
}

// Validate refuses the config shapes that cannot shard across
// processes.
func TestValidateRejectsNonDistributable(t *testing.T) {
	cases := map[string]func(*harness.Config){
		"backend": func(c *harness.Config) { c.Backend = "realtime" },
		"hooks":   func(c *harness.Config) { c.OnWindow = func(metrics.SeriesPoint) {} },
		"trace":   func(c *harness.Config) { c.Trace = &harness.TraceConfig{} },
		"mem":     func(c *harness.Config) { c.MeasureMem = true },
	}
	for name, mutate := range cases {
		spec := tinySpec()
		cfg := spec.Cells[0].Config
		mutate(&cfg)
		spec.Cells[0].Config = cfg
		if err := Validate(spec); err == nil {
			t.Errorf("%s: Validate accepted a non-distributable spec", name)
		}
	}
}
