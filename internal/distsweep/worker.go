package distsweep

import (
	"fmt"
	"os"
	"sync"
	"time"

	"flowercdn/internal/harness"
	"flowercdn/internal/socknet"
	"flowercdn/internal/sweep"
)

// DefaultHeartbeat is the worker's progress period when
// WorkerConfig.Heartbeat is unset — far inside DefaultLease, so a
// healthy worker never forfeits a long run.
const DefaultHeartbeat = 2 * time.Second

// DefaultDialTimeout is how long a worker keeps retrying the
// coordinator's address before giving up (the coordinator may still be
// loading its out-dir when the worker process starts).
const DefaultDialTimeout = 15 * time.Second

// WorkerConfig describes one worker process's session.
type WorkerConfig struct {
	// Coordinator is the coordinator's dial address.
	Coordinator string
	// Spec must be the identical sweep the coordinator shards — built
	// from the same flags by the same binary. The handshake compares
	// SpecSum fingerprints.
	Spec sweep.Spec
	// Codec names the wire codec (DefaultCodec when empty); it must
	// match the coordinator's.
	Codec string
	// Name labels this worker in coordinator events; defaults to
	// "worker-<pid>".
	Name string
	// DialTimeout bounds the dial-retry loop (DefaultDialTimeout
	// when <= 0).
	DialTimeout time.Duration
	// Heartbeat is the progress period while a run executes
	// (DefaultHeartbeat when <= 0).
	Heartbeat time.Duration
	// OnEvent, when set, receives one-line progress events. It must not
	// block.
	OnEvent func(string)
}

// RunWorker connects to the coordinator, pulls (cell, seed) jobs one
// at a time, runs each with harness.Run, and streams the results back
// until the coordinator says Shutdown. It returns nil on a clean
// shutdown and an error when the session breaks (connection loss, run
// failure, spec mismatch).
func RunWorker(cfg WorkerConfig) error {
	if err := Validate(cfg.Spec); err != nil {
		return err
	}
	codec := cfg.Codec
	if codec == "" {
		codec = DefaultCodec
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	event := func(format string, args ...any) {
		if cfg.OnEvent != nil {
			cfg.OnEvent(fmt.Sprintf(format, args...))
		}
	}

	s, err := dialRetry(cfg.Coordinator, codec, cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer s.Close()

	if err := s.Send(&Hello{Worker: name, SpecSum: SpecSum(cfg.Spec)}); err != nil {
		return err
	}
	msg, err := s.Recv()
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case *Welcome:
		event("connected to %s: %d jobs, %d already done", cfg.Coordinator, m.Total, m.Done)
	case *Shutdown:
		return fmt.Errorf("distsweep: coordinator refused worker: %s", m.Reason)
	default:
		return fmt.Errorf("distsweep: expected Welcome, got %T", msg)
	}

	jobs := 0
	for {
		if err := s.Send(&JobRequest{}); err != nil {
			return err
		}
		msg, err := s.Recv()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case *Shutdown:
			event("shutdown: %s (%d job(s) completed here)", m.Reason, jobs)
			return nil
		case *JobAssign:
			if m.Cell < 0 || m.Cell >= len(cfg.Spec.Cells) || m.Seed < 0 || m.Seed >= len(cfg.Spec.Seeds) {
				return fmt.Errorf("distsweep: assigned job (%d, %d) outside the spec", m.Cell, m.Seed)
			}
			event("running cell %q seed %d", cfg.Spec.Cells[m.Cell].Name, cfg.Spec.Seeds[m.Seed])
			rec, runErr := runJob(cfg, s, m)
			if runErr != nil {
				s.Send(&JobFailed{Cell: m.Cell, Seed: m.Seed, Epoch: m.Epoch, //nolint:errcheck // best-effort report before exiting
					Err: runErr.Error()})
				return runErr
			}
			if err := s.Send(&ResultMsg{Cell: m.Cell, Seed: m.Seed, Epoch: m.Epoch, Rec: rec}); err != nil {
				return err
			}
			jobs++
		default:
			return fmt.Errorf("distsweep: unexpected %T while awaiting a job", msg)
		}
	}
}

// runJob executes one assigned run, heartbeating progress alongside so
// the coordinator's lease stays fresh for as long as the run genuinely
// executes.
func runJob(cfg WorkerConfig, s *socknet.Stream, m *JobAssign) (*RunRecord, error) {
	hc := cfg.Spec.Cells[m.Cell].Config
	hc.Seed = cfg.Spec.Seeds[m.Seed]

	hb := cfg.Heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	start := time.Now()
	go func() {
		defer wg.Done()
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// Best-effort: a send failure here means the connection
				// is gone, which the main loop discovers on its own.
				s.Send(&Progress{Cell: m.Cell, Seed: m.Seed, Epoch: m.Epoch, //nolint:errcheck
					ElapsedMs: time.Since(start).Milliseconds()})
			}
		}
	}()
	res, err := harness.Run(hc)
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return newRecord(res), nil
}

// dialRetry keeps dialing until the coordinator answers or the timeout
// lapses. Definitive handshake disagreements (wrong codec, mesh peer,
// registry mismatch) surface immediately — retrying cannot fix a build.
func dialRetry(addr, codec string, timeout time.Duration) (*socknet.Stream, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		s, err := socknet.DialStream(addr, codec, timeout)
		if err == nil {
			return s, nil
		}
		if socknet.IsHandshakeError(err) || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(200 * time.Millisecond)
	}
}
