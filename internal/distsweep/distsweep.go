// Package distsweep shards a sweep's (cell, seed) jobs across OS
// processes — one coordinator, any number of workers — over the socket
// backend's stream framing (socknet.Stream), so sweep populations can
// grow past what one machine's cores cover.
//
// The seam is deliberately thin: a sweep's runs are independent and its
// results are keyed by (cell, seed) index, so distribution is pure job
// scheduling and aggregation is merge-only. The coordinator owns the
// job queue and a lease table (per-job deadline, progress-message
// liveness, at-most-once result acceptance: a job lost to a dead or
// silent worker is reassigned under a bumped lease epoch, and the
// straggler's late result is discarded by epoch). Workers pull one job
// at a time, run harness.Run locally, and stream the result back.
//
// Configurations never cross the wire — they contain function hooks
// and protocol option maps that have no canonical encoding. Instead,
// coordinator and workers each build the identical sweep.Spec from the
// same CLI flags, and the handshake compares SpecSum fingerprints so a
// drifted worker fails fast with a named cause.
//
// Completed results append to per-cell record files under the
// coordinator's out-dir (one canonical-binary record per (cell, seed)),
// so a restarted coordinator resumes: records already on disk are
// loaded, their jobs never re-run. Final aggregation converts records
// back to harness results and reduces them through sweep.Aggregate —
// the same function the in-process sweep uses, over the same job
// ordering, with float64s carried bit-exactly — so a distributed
// sweep's aggregates are bit-identical to an in-process run's at any
// worker count.
//
// Example (the flowerbench -dist-coordinator / -dist-worker surface):
//
//	coord, _ := distsweep.StartCoordinator(distsweep.CoordinatorConfig{
//	    Listen: "127.0.0.1:7100", Spec: spec, OutDir: "dist-out",
//	})
//	// on each worker machine, same spec from the same flags:
//	go distsweep.RunWorker(distsweep.WorkerConfig{
//	    Coordinator: "host:7100", Spec: spec,
//	})
//	res, err := coord.Wait() // *sweep.Result, bit-identical to sweep.Run
package distsweep

import (
	"fmt"
	"hash/fnv"

	"flowercdn/internal/sweep"
)

// jobKey identifies one (cell, seed) job by spec index.
type jobKey struct {
	cell, seed int
}

// SpecSum fingerprints a sweep spec: FNV-1a over the seed set and every
// cell's name and configuration rendering. Coordinator and workers must
// agree on it before any job is assigned — it is the distributed
// analogue of building the spec once and passing it by pointer. The
// rendering relies on fmt's sorted map printing, so it is deterministic
// across processes of the same build; Validate rejects the config
// fields (function hooks) whose rendering would not be.
func SpecSum(spec sweep.Spec) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "seeds:%v\n", spec.Seeds)
	for _, c := range spec.Cells {
		fmt.Fprintf(h, "cell %q: %+v\n", c.Name, c.Config)
	}
	return h.Sum64()
}

// Validate checks that spec is distributable on top of being runnable:
// every cell must be a self-contained deterministic sim-backend run.
// Callback hooks cannot cross a process boundary, per-run traces and
// observability sinks would strand on the worker, and a socket-backend
// cell is itself a process group — all named errors here, instead of
// silent divergence between a local and a distributed sweep.
func Validate(spec sweep.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	for _, c := range spec.Cells {
		cfg := c.Config
		if b := cfg.ResolvedBackend(); b != "sim" {
			return fmt.Errorf("distsweep: cell %q runs backend %q; distributed sweeps shard deterministic sim runs only", c.Name, b)
		}
		if cfg.OnWindow != nil || cfg.OnCheckpoint != nil {
			return fmt.Errorf("distsweep: cell %q has callback hooks, which cannot cross a process boundary", c.Name)
		}
		if cfg.Trace != nil {
			return fmt.Errorf("distsweep: cell %q enables tracing; trace records would strand on the worker", c.Name)
		}
		if cfg.Obs != nil {
			return fmt.Errorf("distsweep: cell %q attaches an obs server, which is per-process", c.Name)
		}
		if cfg.MeasureMem {
			return fmt.Errorf("distsweep: cell %q sets MeasureMem; heap samples are not carried in result records", c.Name)
		}
	}
	return nil
}
