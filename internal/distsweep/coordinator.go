package distsweep

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"flowercdn/internal/harness"
	"flowercdn/internal/runtime"
	"flowercdn/internal/socknet"
	"flowercdn/internal/sweep"
)

// DefaultLease is the per-job lease when CoordinatorConfig.Lease is
// unset: a worker silent (no progress message) this long forfeits its
// job to reassignment. Workers heartbeat every few seconds, so only a
// dead or wedged worker ever forfeits.
const DefaultLease = 2 * time.Minute

// DefaultCodec is the wire codec of the coordinator/worker protocol
// when none is named. Binary is the natural choice: the messages all
// carry canonical marshallers and the result records reuse the same
// encoding on disk.
const DefaultCodec = "binary"

// CoordinatorConfig describes one coordinator.
type CoordinatorConfig struct {
	// Listen is the TCP address workers dial ("127.0.0.1:0" binds an
	// ephemeral port; read it back via Addr).
	Listen string
	// Spec is the sweep to shard. Workers must build the identical spec
	// (the handshake enforces SpecSum equality).
	Spec sweep.Spec
	// OutDir holds the resumable per-cell record files.
	OutDir string
	// Codec names the wire codec (DefaultCodec when empty).
	Codec string
	// Lease is the per-job deadline (DefaultLease when <= 0).
	Lease time.Duration
	// OnEvent, when set, receives one-line progress events
	// (connections, completions, reassignments). It may be called from
	// multiple goroutines and must not block.
	OnEvent func(string)
}

// lease is one outstanding job assignment.
type lease struct {
	epoch    uint64
	worker   string
	deadline time.Time
}

// Coordinator owns a distributed sweep: job queue, lease table, result
// files and final aggregation. Start it with StartCoordinator, collect
// with Wait, release resources with Close.
type Coordinator struct {
	cfg   CoordinatorConfig
	spec  sweep.Spec
	sum   uint64
	codec string
	lease time.Duration
	ln    net.Listener
	logs  []*cellLog

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []jobKey
	epochs   map[jobKey]uint64
	leases   map[jobKey]*lease
	done     map[jobKey]*RunRecord
	conns    map[*socknet.Stream]struct{}
	workers  map[string]bool
	failure  error
	finished bool
	closed   bool

	finCh    chan struct{}
	stopScan chan struct{}
	wg       sync.WaitGroup
}

// StartCoordinator validates the spec, loads (or creates) the out-dir,
// queues every not-yet-completed job and starts serving workers. A
// fully-resumed sweep (every record already on disk) finishes
// immediately; late workers still get a clean Shutdown.
func StartCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := Validate(cfg.Spec); err != nil {
		return nil, err
	}
	if cfg.OutDir == "" {
		return nil, errors.New("distsweep: coordinator needs an out-dir for resumable result files")
	}
	codec := cfg.Codec
	if codec == "" {
		codec = DefaultCodec
	}
	if _, err := runtime.NewCodec(codec); err != nil {
		return nil, fmt.Errorf("distsweep: %w", err)
	}
	leaseFor := cfg.Lease
	if leaseFor <= 0 {
		leaseFor = DefaultLease
	}
	sum := SpecSum(cfg.Spec)
	logs, done, err := openOutDir(cfg.OutDir, cfg.Spec, sum)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		for _, l := range logs {
			l.close()
		}
		return nil, fmt.Errorf("distsweep: listen %s: %w", cfg.Listen, err)
	}

	c := &Coordinator{
		cfg:      cfg,
		spec:     cfg.Spec,
		sum:      sum,
		codec:    codec,
		lease:    leaseFor,
		ln:       ln,
		logs:     logs,
		epochs:   map[jobKey]uint64{},
		leases:   map[jobKey]*lease{},
		done:     done,
		conns:    map[*socknet.Stream]struct{}{},
		workers:  map[string]bool{},
		finCh:    make(chan struct{}),
		stopScan: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	// Queue in (cell, seed) order — the same job order the in-process
	// sweep hands to its pool.
	for cell := range c.spec.Cells {
		for seed := range c.spec.Seeds {
			k := jobKey{cell, seed}
			if _, ok := done[k]; !ok {
				c.pending = append(c.pending, k)
			}
		}
	}
	if n := len(done); n > 0 {
		c.event("resumed %d completed job(s) from %s", n, cfg.OutDir)
	}
	if len(c.pending) == 0 {
		c.mu.Lock()
		c.finishLocked(nil)
		c.mu.Unlock()
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.scanLeases()
	return c, nil
}

// Addr is the bound listen address — the value workers dial (and what
// -spawn-workers passes to its children when Listen used port 0).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Wait blocks until every job has a result (or the sweep aborts) and
// returns the aggregates — computed by sweep.Aggregate over the merged
// records, so they are bit-identical to an in-process sweep.Run of the
// same spec. Result.Workers counts the distinct workers that served.
func (c *Coordinator) Wait() (*sweep.Result, error) {
	<-c.finCh
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return nil, c.failure
	}
	ns := len(c.spec.Seeds)
	results := make([]*harness.Result, len(c.spec.Cells)*ns)
	for k, rec := range c.done {
		results[k.cell*ns+k.seed] = rec.Result()
	}
	res := sweep.Aggregate(c.spec, results)
	res.Workers = len(c.workers)
	return res, nil
}

// Close releases everything: listener, worker connections, record
// files. Safe after Wait (the normal sequence) and also mid-sweep, in
// which case Wait returns an error. Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	clean := c.finished && c.failure == nil
	c.finishLocked(errors.New("distsweep: coordinator closed"))
	c.mu.Unlock()

	// After a clean completion, give connected workers a moment to ask
	// for their next job and receive Shutdown — severing immediately
	// would turn every worker's orderly exit into an EOF error.
	if clean {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			c.mu.Lock()
			n := len(c.conns)
			c.mu.Unlock()
			if n == 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	c.mu.Lock()
	conns := make([]*socknet.Stream, 0, len(c.conns))
	for s := range c.conns {
		conns = append(conns, s)
	}
	c.mu.Unlock()

	close(c.stopScan)
	c.ln.Close()
	for _, s := range conns {
		s.Close()
	}
	c.wg.Wait()
	var firstErr error
	for _, l := range c.logs {
		if err := l.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// finishLocked ends the sweep exactly once; err == nil means complete.
// Callers hold c.mu.
func (c *Coordinator) finishLocked(err error) {
	if c.finished {
		return
	}
	c.finished = true
	c.failure = err
	c.cond.Broadcast()
	close(c.finCh)
}

func (c *Coordinator) event(format string, args ...any) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(fmt.Sprintf(format, args...))
	}
}

func (c *Coordinator) validKey(cell, seed int) bool {
	return cell >= 0 && cell < len(c.spec.Cells) && seed >= 0 && seed < len(c.spec.Seeds)
}

// acceptLoop admits workers until Close.
func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serve(conn)
		}()
	}
}

// serve handles one worker connection for its lifetime.
func (c *Coordinator) serve(nc net.Conn) {
	s, err := socknet.AcceptStream(nc, c.codec)
	if err != nil {
		c.event("worker handshake failed: %v", err)
		return
	}
	defer s.Close()

	// Register before the first Recv so Close can sever a connection at
	// any stage — an unregistered blocked read would hang Close's drain.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.conns[s] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.conns, s)
		c.mu.Unlock()
	}()

	msg, err := s.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*Hello)
	if !ok {
		c.event("expected Hello, got %T; dropping connection", msg)
		return
	}
	if hello.SpecSum != c.sum {
		c.event("worker %s built a different spec (%#x vs %#x); refusing", hello.Worker, hello.SpecSum, c.sum)
		s.Send(&Shutdown{Reason: fmt.Sprintf( //nolint:errcheck // best-effort refusal
			"spec mismatch: worker %#x, coordinator %#x — run the worker with the coordinator's exact flags and binary", hello.SpecSum, c.sum)})
		return
	}

	c.mu.Lock()
	c.workers[hello.Worker] = true
	total := len(c.spec.Cells) * len(c.spec.Seeds)
	ndone := len(c.done)
	c.mu.Unlock()
	if err := s.Send(&Welcome{Total: total, Done: ndone}); err != nil {
		return
	}
	c.event("worker %s connected (%d/%d jobs done)", hello.Worker, ndone, total)

	// held tracks the leases this connection owns, so a lost worker's
	// jobs requeue immediately instead of waiting out the lease.
	held := map[jobKey]uint64{}
	defer c.releaseHeld(hello.Worker, held)

	for {
		msg, err := s.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *JobRequest:
			assign, bye := c.nextJob(hello.Worker)
			if bye != nil {
				s.Send(bye) //nolint:errcheck // the worker may already be gone
				return
			}
			held[jobKey{assign.Cell, assign.Seed}] = assign.Epoch
			if err := s.Send(assign); err != nil {
				return
			}
			c.event("cell %d seed %d assigned to %s (epoch %d)", assign.Cell, assign.Seed, hello.Worker, assign.Epoch)
		case *Progress:
			if c.validKey(m.Cell, m.Seed) {
				c.renew(m)
			}
		case *ResultMsg:
			if !c.validKey(m.Cell, m.Seed) || m.Rec == nil {
				c.event("malformed result from worker %s; dropping connection", hello.Worker)
				return
			}
			delete(held, jobKey{m.Cell, m.Seed})
			c.accept(hello.Worker, m)
		case *JobFailed:
			if !c.validKey(m.Cell, m.Seed) {
				return
			}
			delete(held, jobKey{m.Cell, m.Seed})
			c.mu.Lock()
			c.finishLocked(fmt.Errorf("distsweep: cell %q seed %d: %s",
				c.spec.Cells[m.Cell].Name, c.spec.Seeds[m.Seed], m.Err))
			c.mu.Unlock()
		default:
			c.event("unexpected %T from worker %s; dropping connection", msg, hello.Worker)
			return
		}
	}
}

// releaseHeld requeues the jobs a departed connection still leased —
// unless a scanner or reassignment got there first (epoch moved on) or
// the job completed anyway.
func (c *Coordinator) releaseHeld(worker string, held map[jobKey]uint64) {
	c.mu.Lock()
	requeued := 0
	for k, e := range held {
		if _, ok := c.done[k]; ok {
			continue
		}
		if c.epochs[k] != e {
			continue
		}
		if _, leased := c.leases[k]; !leased {
			continue
		}
		delete(c.leases, k)
		c.pending = append(c.pending, k)
		requeued++
	}
	if requeued > 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	if requeued > 0 {
		c.event("worker %s lost; requeued %d leased job(s)", worker, requeued)
	}
}

// nextJob blocks until a job is available (or the sweep ends). Exactly
// one of the returns is non-nil.
func (c *Coordinator) nextJob(worker string) (*JobAssign, *Shutdown) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.finished {
			reason := "sweep complete"
			if c.failure != nil {
				reason = c.failure.Error()
			}
			return nil, &Shutdown{Reason: reason}
		}
		if len(c.pending) > 0 {
			k := c.pending[0]
			c.pending = c.pending[1:]
			c.epochs[k]++
			e := c.epochs[k]
			c.leases[k] = &lease{epoch: e, worker: worker, deadline: time.Now().Add(c.lease)}
			return &JobAssign{Cell: k.cell, Seed: k.seed, Epoch: e}, nil
		}
		c.cond.Wait()
	}
}

// renew extends a live job's lease on a progress message.
func (c *Coordinator) renew(m *Progress) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := jobKey{m.Cell, m.Seed}
	if l, ok := c.leases[k]; ok && l.epoch == m.Epoch {
		l.deadline = time.Now().Add(c.lease)
	}
}

// accept applies one result: at most once per job, current epoch only.
// A duplicate or straggler result is discarded — its record is
// identical to the accepted one anyway (sim runs are deterministic),
// but at-most-once keeps the file and the done-count exact.
func (c *Coordinator) accept(worker string, m *ResultMsg) {
	k := jobKey{m.Cell, m.Seed}
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	if _, dup := c.done[k]; dup {
		c.mu.Unlock()
		c.event("discarding duplicate result for cell %d seed %d from %s", k.cell, k.seed, worker)
		return
	}
	if cur := c.epochs[k]; cur != m.Epoch {
		c.mu.Unlock()
		c.event("discarding stale result for cell %d seed %d (epoch %d, current %d) from straggler %s",
			k.cell, k.seed, m.Epoch, cur, worker)
		return
	}
	// Persist before marking done: a record on disk is the durable
	// "never run this job again" bit a restarted coordinator trusts.
	if err := c.logs[k.cell].append(k.seed, m.Rec); err != nil {
		c.finishLocked(fmt.Errorf("distsweep: writing record for cell %d seed %d: %w", k.cell, k.seed, err))
		c.mu.Unlock()
		return
	}
	delete(c.leases, k)
	// An expired-but-not-reassigned job also sits in pending; the work
	// arrived after all, so drop it from the queue.
	for i, p := range c.pending {
		if p == k {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	c.done[k] = m.Rec
	n, total := len(c.done), len(c.spec.Cells)*len(c.spec.Seeds)
	if n == total {
		c.finishLocked(nil)
	}
	c.mu.Unlock()
	c.event("cell %d seed %d done by %s (%d/%d)", k.cell, k.seed, worker, n, total)
}

// scanLeases reassigns jobs whose worker went silent past the lease.
func (c *Coordinator) scanLeases() {
	defer c.wg.Done()
	period := c.lease / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-c.stopScan:
			return
		case <-tick.C:
		}
		now := time.Now()
		c.mu.Lock()
		expired := 0
		for k, l := range c.leases {
			if now.After(l.deadline) {
				delete(c.leases, k)
				c.pending = append(c.pending, k)
				expired++
			}
		}
		if expired > 0 {
			c.cond.Broadcast()
		}
		c.mu.Unlock()
		if expired > 0 {
			c.event("%d lease(s) expired; job(s) requeued for reassignment", expired)
		}
	}
}

// RunCoordinator is StartCoordinator + Wait + Close in one call — the
// simple entry point when no worker spawning needs the address first.
func RunCoordinator(cfg CoordinatorConfig) (*sweep.Result, error) {
	c, err := StartCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	res, werr := c.Wait()
	if cerr := c.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	return res, werr
}
