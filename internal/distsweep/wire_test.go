package distsweep

import (
	"testing"

	"flowercdn/internal/metrics"
	"flowercdn/internal/wiretest"
)

// Fully-populated exemplars through every codec: DeepEqual round
// trips, byte-identical binary re-encode (the canonical-encoding
// property the record files rely on).
func TestWireRoundTrips(t *testing.T) {
	rec := &RunRecord{
		Protocol:       "flower",
		Population:     400,
		Duration:       28800000,
		Backend:        "sim",
		HitRatio:       0.7312498123,
		TailHitRatio:   0.81,
		MeanLookupMs:   132.25,
		MeanTransferMs: 57.5,
		MeanHops:       3.25,
		Queries:        12345,
		Hits:           9000,
		Misses:         3000,
		Unresolved:     345,
		Fingerprint:    0xdeadbeefcafef00d,
		Series: []metrics.SeriesPoint{
			{Start: 0, HitRatio: 0.25, Queries: 100, MeanLookupMs: 200, MeanTransferMs: 80, Evictions: 3},
			{Start: 3600000, HitRatio: 0.75, Queries: 150, MeanLookupMs: 120, MeanTransferMs: 60},
		},
	}
	for _, msg := range []any{
		&Hello{Worker: "worker-7", SpecSum: 0x1234567890abcdef},
		&Welcome{Total: 40, Done: 13},
		&JobRequest{},
		&JobAssign{Cell: 3, Seed: 2, Epoch: 5},
		&Progress{Cell: 3, Seed: 2, Epoch: 5, ElapsedMs: 1234},
		&ResultMsg{Cell: 3, Seed: 2, Epoch: 5, Rec: rec},
		&ResultMsg{Cell: 0, Seed: 0, Epoch: 1}, // nil record
		&JobFailed{Cell: 1, Seed: 0, Epoch: 2, Err: "harness: population must be positive"},
		&Shutdown{Reason: "sweep complete"},
	} {
		wiretest.RoundTrip(t, msg)
	}
}
