package squirrel

import (
	"fmt"

	"flowercdn/internal/chord"
	"flowercdn/internal/proto"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
)

// Squirrel registers itself with the protocol runtime; the harness
// drives the baseline through the same proto.System face as every
// other deployment.

func init() {
	proto.Register(proto.Info{
		Name:         "squirrel",
		Summary:      "Squirrel (PODC 2002): one Chord ring, per-object home directories, random redirection",
		Compare:      true,
		Order:        2,
		CheckOptions: CheckDriverOptions,
	}, NewDriver)
	// Socket-backend wire types (interface-typed payloads).
	runtime.RegisterWireType(queryMsg{}, homeResp{})
}

// Option keys the driver reads (defaults in parentheses):
//
//	directory-cap      int     delegates a home remembers per object (4)
//	provider-attempts  int     delegates probed before the origin (1)
//	cache-policy       string  per-peer store eviction policy ("none")
//	cache-capacity     int     per-peer store capacity, objects
//
// Unknown keys are ignored.

// lowerOptions resolves the option map into a validated Config —
// shared by the factory and the registry's static CheckOptions hook.
func lowerOptions(opts proto.Options) (Config, proto.CacheConfig, error) {
	cfg := DefaultConfig()
	if opts.Bool("chord-demo", false) {
		cfg.Chord = chord.DemoConfig()
	}
	cfg.DirectoryCap = opts.Int("directory-cap", cfg.DirectoryCap)
	cfg.ProviderAttempts = opts.Int("provider-attempts", cfg.ProviderAttempts)
	cfg.QueryTimeout = opts.Duration("query-timeout", cfg.QueryTimeout)
	cacheCfg, err := proto.CacheConfigFromOptions(opts)
	if err != nil {
		return cfg, cacheCfg, fmt.Errorf("squirrel: %w", err)
	}
	return cfg, cacheCfg, cfg.Validate()
}

// CheckDriverOptions statically validates the driver's options.
func CheckDriverOptions(opts proto.Options) error {
	_, _, err := lowerOptions(opts)
	return err
}

// NewDriver builds a Squirrel deployment driver.
func NewDriver(env proto.Env, opts proto.Options) (proto.System, error) {
	cfg, cacheCfg, err := lowerOptions(opts)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg, Deps{
		Net:      env.Net,
		RNG:      env.RNG,
		Workload: env.Workload,
		Origins:  env.Origins,
		Metrics:  env.Metrics,
		NewStore: cacheCfg.StoreFactory(env),
		Follower: env.Follower,
		Trace:    env.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &runtimeDriver{sys: sys, env: env, idRNG: env.RNG.Split("identities")}, nil
}

type runtimeDriver struct {
	sys   *System
	env   proto.Env
	idRNG *rnd.RNG
}

func (d *runtimeDriver) Start() {}
func (d *runtimeDriver) Stop()  {}

// SeedCount matches the Flower deployments' bootstrap population so
// the ramps are comparable; Squirrel's seeds are ordinary ring members.
func (d *runtimeDriver) SeedCount() int { return proto.DefaultSeedCount(d.env) }

func (d *runtimeDriver) SpawnSeed(int) (proto.Individual, func()) {
	ind := d.NewIndividual()
	return ind, d.Spawn(ind)
}

func (d *runtimeDriver) NewIndividual() proto.Individual {
	return d.sys.NewIdentity(d.env.Workload.AssignInterest(d.idRNG))
}

func (d *runtimeDriver) Spawn(ind proto.Individual) func() {
	_, kill := d.sys.SpawnIdentity(ind.(Identity))
	return kill
}

func (d *runtimeDriver) Stats() proto.Stats {
	return proto.Stats{
		proto.StatPeersSpawned: float64(d.sys.spawned),
		proto.StatAlivePeers:   float64(d.sys.AliveMembers()),
	}
}

// RingMembers implements proto.RingInspector: one snapshot record per
// alive, joined ring member, in creation order.
func (d *runtimeDriver) RingMembers() []proto.RingMember {
	var out []proto.RingMember
	for _, p := range d.sys.peers {
		if p.dead || !p.joined {
			continue
		}
		self := p.node.Self()
		m := proto.RingMember{Node: self.Node, ID: self.ID, Pred: ringNodeOf(p.node.Predecessor())}
		for _, s := range p.node.SuccessorList() {
			m.Succs = append(m.Succs, ringNodeOf(s))
		}
		out = append(out, m)
	}
	return out
}

func ringNodeOf(e chord.Entry) proto.RingNode {
	if !e.Valid() {
		return proto.RingNode{Node: runtime.None}
	}
	return proto.RingNodeOf(e.Node, e.ID)
}
