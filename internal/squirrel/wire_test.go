package squirrel

import (
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/runtime"
	"flowercdn/internal/wiretest"
)

func TestWireRoundTrips(t *testing.T) {
	k := content.Key{Site: 4, Object: 2}
	wiretest.RoundTrip(t, queryMsg{Seq: 3, Key: k, Client: 7})
	wiretest.RoundTrip(t, homeResp{Seq: 3, Providers: []runtime.NodeID{1, 5}})
	wiretest.RoundTrip(t, homeResp{Seq: 4})
}
