package squirrel

import (
	"flowercdn/internal/content"
	"flowercdn/internal/runtime"
	"flowercdn/internal/trace"
)

// Binary wire marshallers for the driver's messages.

func (m queryMsg) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.Seq)
	m.Key.AppendWire(w)
	w.Node(m.Client)
}

func (queryMsg) DecodeWire(r *runtime.WireReader) any {
	var m queryMsg
	m.Seq = r.Uvarint()
	m.Key = content.DecodeKeyWire(r)
	m.Client = r.Node()
	return m
}

func (m homeResp) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.Seq)
	w.Nodes(m.Providers)
	trace.AppendHopsWire(w, m.Path)
}

func (homeResp) DecodeWire(r *runtime.WireReader) any {
	var m homeResp
	m.Seq = r.Uvarint()
	m.Providers = r.Nodes()
	m.Path = trace.DecodeHopsWire(r)
	return m
}
