package squirrel

import (
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/simrt"
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/metrics"
	"flowercdn/internal/topology"
	"flowercdn/internal/workload"
)

type fixture struct {
	t       *testing.T
	eng     *simrt.Runtime
	net     runtime.Transport
	rng     *rnd.RNG
	work    *workload.Workload
	origins *workload.Origins
	coll    *metrics.Collector
	sys     *System
	peers   []*Peer
	kills   []func()
}

func newFixture(t *testing.T, seed uint64) *fixture {
	t.Helper()
	rng := rnd.New(seed)
	topo := topology.MustNew(topology.DefaultConfig(), rng.Split("topo"))
	eng := simrt.New(topo)
	net := eng.Net()
	wcfg := workload.DefaultConfig()
	wcfg.Sites = 4
	wcfg.ObjectsPerSite = 50
	wcfg.ActiveSites = 2
	wcfg.QueryMeanInterval = 2 * runtime.Minute
	work, err := workload.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	origins := workload.NewOrigins(work, net, rng.Split("origins"))
	coll := metrics.NewCollector(runtime.Hour)
	sys, err := NewSystem(DefaultConfig(), Deps{Net: net, RNG: rng.Split("squirrel"), Workload: work, Origins: origins, Metrics: coll})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, eng: eng, net: net, rng: rng, work: work, origins: origins, coll: coll, sys: sys}
}

func (f *fixture) spawn(site content.SiteID) *Peer {
	p, kill := f.sys.SpawnPeer(site)
	f.peers = append(f.peers, p)
	f.kills = append(f.kills, kill)
	return p
}

func (f *fixture) run(d int64) { f.eng.Run(f.eng.Now() + d) }

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.DirectoryCap = 0 },
		func(c *Config) { c.ProviderAttempts = 0 },
		func(c *Config) { c.QueryTimeout = 0 },
		func(c *Config) { c.QueryRetries = 0 },
		func(c *Config) { c.Chord.SuccessorListLen = 0 },
	}
	for i, mut := range bads {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewSystem(DefaultConfig(), Deps{}); err == nil {
		t.Fatal("missing deps accepted")
	}
}

func TestPeersFormRing(t *testing.T) {
	f := newFixture(t, 1)
	for i := 0; i < 12; i++ {
		f.spawn(content.SiteID(i % 4))
		f.run(30 * runtime.Second)
	}
	f.run(10 * runtime.Minute)
	for i, p := range f.peers {
		if !p.Joined() {
			t.Fatalf("peer %d never joined the ring", i)
		}
	}
	if f.sys.AliveMembers() != 12 {
		t.Fatalf("AliveMembers = %d, want 12", f.sys.AliveMembers())
	}
}

func TestFirstQueryMissesThenDelegateHit(t *testing.T) {
	f := newFixture(t, 2)
	for i := 0; i < 10; i++ {
		f.spawn(0) // all on the active site
		f.run(30 * runtime.Second)
	}
	f.run(3 * runtime.Hour)
	if f.coll.Count(metrics.Miss) == 0 {
		t.Fatal("no misses: first fetches must come from the origin")
	}
	if f.coll.Count(metrics.HitDirectory) == 0 {
		t.Fatal("no delegate hits despite popular Zipf objects and shared homes")
	}
	// The directory state must actually live on home nodes.
	totalDir := 0
	for _, p := range f.peers {
		totalDir += p.DirectorySize()
	}
	if totalDir == 0 {
		t.Fatal("no home node holds any directory entries")
	}
}

func TestHomeFailureLosesDirectory(t *testing.T) {
	f := newFixture(t, 3)
	for i := 0; i < 10; i++ {
		f.spawn(0)
		f.run(30 * runtime.Second)
	}
	f.run(2 * runtime.Hour)
	// Kill the peer holding the largest directory slice.
	var victim *Peer
	for _, p := range f.peers {
		if victim == nil || p.DirectorySize() > victim.DirectorySize() {
			victim = p
		}
	}
	if victim.DirectorySize() == 0 {
		t.Fatal("setup: no directory accumulated")
	}
	victim.kill()
	if victim.Alive() {
		t.Fatal("kill did not mark peer dead")
	}
	// The directory died with it; the ring heals and new homes start
	// empty. Fresh peers keep querying and the system keeps operating.
	before := f.coll.Total()
	for i := 0; i < 3; i++ {
		f.spawn(0)
	}
	f.run(2 * runtime.Hour)
	if f.coll.Total() == before {
		t.Fatal("queries stopped after a home failure")
	}
}

func TestNonActivePeersDoNotQuery(t *testing.T) {
	f := newFixture(t, 4)
	p := f.spawn(3) // inactive site
	f.run(runtime.Hour)
	if !p.Joined() {
		t.Fatal("inactive-site peer should still join the ring (churn load)")
	}
	if p.Store().Len() != 0 {
		t.Fatal("inactive-site peer fetched content")
	}
}

func TestDelegateCapBounded(t *testing.T) {
	f := newFixture(t, 5)
	home := f.spawn(3)
	f.run(runtime.Minute)
	k := content.Key{Site: 0, Object: 1}
	for i := 0; i < 20; i++ {
		home.addDelegate(k, runtime.NodeID(100+i))
	}
	if got := len(home.dir[k]); got != f.sys.cfg.DirectoryCap {
		t.Fatalf("directory holds %d delegates, want cap %d", got, f.sys.cfg.DirectoryCap)
	}
	// Most recent delegates are retained.
	last := home.dir[k][len(home.dir[k])-1]
	if last != runtime.NodeID(119) {
		t.Fatalf("newest delegate lost: tail is %d", last)
	}
	// Duplicates are not re-added.
	home.addDelegate(k, runtime.NodeID(119))
	if len(home.dir[k]) != f.sys.cfg.DirectoryCap {
		t.Fatal("duplicate delegate changed directory size")
	}
}

func TestLookupLatencyReflectsMultiHopRouting(t *testing.T) {
	f := newFixture(t, 6)
	const n = 24
	for i := 0; i < n; i++ {
		f.spawn(0)
		f.run(20 * runtime.Second)
	}
	f.run(4 * runtime.Hour)
	if f.coll.Total() < 50 {
		t.Fatalf("too few queries recorded: %d", f.coll.Total())
	}
	// Multi-hop DHT routing across random localities must produce mean
	// lookup latencies far above one intra-locality RTT.
	if mean := f.coll.MeanLookupLatency(); mean < 200 {
		t.Fatalf("mean lookup latency %.0f ms suspiciously low for DHT routing", mean)
	}
}

func TestKillIdempotentAndSilent(t *testing.T) {
	f := newFixture(t, 7)
	p := f.spawn(0)
	f.run(runtime.Minute)
	p.kill()
	p.kill()
	f.run(runtime.Hour) // no panics from stray timers
	if p.Alive() {
		t.Fatal("peer alive after kill")
	}
}
