// Package squirrel implements the comparison baseline of the paper's
// evaluation: Squirrel (Iyer, Rowstron, Druschel, PODC 2002), the
// decentralized P2P web cache, in its *directory* (redirection)
// variant — the one the paper describes as sharing "some similarities
// with Flower-CDN wrt. the directory structure".
//
// Every participant joins one Chord ring at a uniformly hashed
// identifier. The *home node* of an object is the ring successor of
// hash(object). The home keeps a small directory of recent downloaders
// (delegates) of the object and redirects clients to a RANDOM delegate
// — no locality awareness, the property the paper's Fig. 5 exposes.
// The directory lives only at the home node: when the home fails, the
// directory is "abruptly lost" (Sec. 2), which is what breaks
// Squirrel's hit ratio under churn in Fig. 3.
package squirrel

import (
	"errors"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"

	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/ids"
	"flowercdn/internal/metrics"
	"flowercdn/internal/topology"
	"flowercdn/internal/trace"
	"flowercdn/internal/workload"
)

// Config tunes the baseline.
type Config struct {
	// Chord configures the overlay all peers join.
	Chord chord.Config
	// DirectoryCap bounds the number of delegates a home remembers per
	// object (Squirrel's paper uses ~4).
	DirectoryCap int
	// ProviderAttempts bounds how many suggested delegates a client
	// probes before the origin.
	ProviderAttempts int
	// QueryTimeout bounds one routed query attempt; QueryRetries is the
	// number of attempts.
	QueryTimeout int64
	QueryRetries int
}

// DefaultConfig returns the baseline parameters. ProviderAttempts is 1
// because Squirrel's home redirects the client to a single randomly
// chosen delegate; the protocol was designed for a stable corporate
// LAN and has no delegate-failure recovery — exactly the behaviour the
// paper's churn evaluation exposes.
func DefaultConfig() Config {
	return Config{
		Chord:            chord.DefaultConfig(),
		DirectoryCap:     4,
		ProviderAttempts: 1,
		QueryTimeout:     10 * runtime.Second,
		QueryRetries:     3,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Chord.Validate(); err != nil {
		return fmt.Errorf("squirrel: %w", err)
	}
	if c.DirectoryCap < 1 {
		return errors.New("squirrel: directory cap must be at least 1")
	}
	if c.ProviderAttempts < 1 {
		return errors.New("squirrel: need at least one provider attempt")
	}
	if c.QueryTimeout <= 0 || c.QueryRetries < 1 {
		return errors.New("squirrel: query timeout/retries out of range")
	}
	return nil
}

// Deps are the substrate handles (identical shape to flower.Deps so the
// harness can drive both protocols uniformly).
type Deps struct {
	Net      runtime.Transport
	RNG      *rnd.RNG
	Workload *workload.Workload
	Origins  *workload.Origins
	Metrics  metrics.Emitter
	// NewStore builds each individual's content store; nil means
	// unbounded (content.NewStore — the paper's storage model).
	NewStore func() *content.Store
	// Follower marks a process that must not found the ring (see
	// proto.Env.Follower); meaningful only on multi-process backends.
	Follower bool
	// Trace is the optional per-query lookup tracer (nil = disabled).
	Trace *trace.Tracer
}

// System is one Squirrel deployment.
type System struct {
	cfg      Config
	net      runtime.Transport
	eng      runtime.Clock
	rng      *rnd.RNG
	work     *workload.Workload
	origins  *workload.Origins
	coll     metrics.Emitter
	tracer   *trace.Tracer
	newStore func() *content.Store

	// registry is the ring-member gateway set, mirrored across
	// processes on multi-process backends (chord.Registry).
	registry chord.Registry
	// peers tracks every peer ever spawned in creation order, for
	// ring-state inspection (dead peers are skipped).
	peers    []*Peer
	follower bool
	spawned  uint64
	querySeq uint64
}

// NewSystem validates and builds a deployment.
func NewSystem(cfg Config, d Deps) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if d.Net == nil || d.RNG == nil || d.Workload == nil || d.Origins == nil || d.Metrics == nil {
		return nil, errors.New("squirrel: missing dependency")
	}
	newStore := d.NewStore
	if newStore == nil {
		newStore = content.NewStore
	}
	s := &System{
		cfg:      cfg,
		net:      d.Net,
		eng:      d.Net.Clock(),
		rng:      d.RNG,
		work:     d.Workload,
		origins:  d.Origins,
		coll:     d.Metrics,
		tracer:   d.Trace,
		newStore: newStore,
		follower: d.Follower,
	}
	s.registry.BindBus(d.Net)
	return s, nil
}

func (s *System) gateway(exclude runtime.NodeID) chord.Entry {
	return s.registry.PickAlive(s.rng, s.net.Alive, exclude)
}

// Identity is the persistent part of a participant (see
// flower.Identity): interest, location and cached content survive
// offline periods; only the network address and ring position are per
// session. Squirrel's distributed directory does NOT survive — it
// lives at whatever node is currently home.
type Identity struct {
	Site      content.SiteID
	Placement topology.Placement
	Store     *content.Store
}

// NewIdentity draws a fresh individual at a random placement.
func (s *System) NewIdentity(site content.SiteID) Identity {
	return Identity{
		Site:      site,
		Placement: s.net.Topology().Place(s.rng),
		Store:     s.newStore(),
	}
}

// SpawnPeer creates a brand-new participant with the given interest at
// a random placement and returns it with its kill function.
func (s *System) SpawnPeer(site content.SiteID) (*Peer, func()) {
	return s.SpawnIdentity(s.NewIdentity(site))
}

// SpawnIdentity brings an individual online for one session.
func (s *System) SpawnIdentity(id Identity) (*Peer, func()) {
	s.spawned++
	store := id.Store
	if store == nil {
		store = s.newStore()
	}
	p := &Peer{
		sys:   s,
		site:  id.Site,
		store: store,
		rng:   s.rng.Split(fmt.Sprintf("squirrel-%d", s.spawned)),
		dir:   make(map[content.Key][]runtime.NodeID),
	}
	p.nid = s.net.Join(p, id.Placement)
	ringID := ids.HashString(fmt.Sprintf("squirrel-peer-%d", p.nid))
	node, err := chord.NewNode(s.cfg.Chord, s.net, p.rng.Split("chord"), p, p.nid, ringID)
	if err != nil {
		panic(err) // config validated
	}
	p.node = node
	s.peers = append(s.peers, p)
	p.enterRing(3)
	return p, p.kill
}

// Peers returns every peer ever spawned, in creation order (dead ones
// included; callers filter by Alive).
func (s *System) Peers() []*Peer { return s.peers }

func (s *System) nextSeq() uint64 {
	s.querySeq++
	return s.querySeq
}

// AliveMembers counts registered alive ring members (diagnostics).
func (s *System) AliveMembers() int {
	n := 0
	for _, e := range s.registry.Entries {
		if s.net.Alive(e.Node) {
			n++
		}
	}
	return n
}

// ---- wire messages ----

// queryMsg routes over Chord to the home node of Key.
type queryMsg struct {
	Seq    uint64
	Key    content.Key
	Client runtime.NodeID
}

// homeResp is the home node's redirect, sent directly to the client.
type homeResp struct {
	Seq       uint64
	Providers []runtime.NodeID
	// Path carries the query's overlay route plus the home hop back to
	// the client on traced runs (nil otherwise).
	Path []trace.Hop
}

// Peer is one Squirrel participant.
type Peer struct {
	sys   *System
	nid   runtime.NodeID
	rng   *rnd.RNG
	site  content.SiteID
	store *content.Store
	node  *chord.Node

	// dir is this node's slice of the distributed directory: object →
	// recent delegates, newest last, capped at DirectoryCap. It dies
	// with the node.
	dir map[content.Key][]runtime.NodeID

	query      *activeQuery
	queryTimer runtime.Timer
	joined     bool
	dead       bool
}

type activeQuery struct {
	seq        uint64
	key        content.Key
	start      int64
	attempt    int
	timeout    runtime.Timer
	candidates []runtime.NodeID
	// redirected marks the first home response consumed; retries share
	// the query's seq, so a late duplicate must not restart the probe
	// chain mid-probe.
	redirected bool
	// path is the hop-by-hop trace on traced runs (nil otherwise).
	path []trace.Hop
}

// NodeID returns the peer's network address.
func (p *Peer) NodeID() runtime.NodeID { return p.nid }

// Store exposes the local cache.
func (p *Peer) Store() *content.Store { return p.store }

// Joined reports ring membership.
func (p *Peer) Joined() bool { return p.joined }

// DirectorySize returns the number of objects this home node indexes.
func (p *Peer) DirectorySize() int { return len(p.dir) }

// Alive reports liveness.
func (p *Peer) Alive() bool { return !p.dead }

// enterRing joins the Chord overlay, retrying a few times during
// bootstrap storms; the first peer creates the ring. On a follower
// process a peer never creates a ring of its own — it waits for a
// gateway announced over the bus instead.
func (p *Peer) enterRing(attempts int) {
	if p.dead {
		return
	}
	gw := p.sys.gateway(runtime.None)
	if !gw.Valid() {
		if p.sys.follower {
			p.sys.eng.Schedule(200*runtime.Millisecond, func() { p.enterRing(attempts) })
			return
		}
		p.node.Create()
		p.onJoined()
		return
	}
	p.node.Join(gw, func(err error) {
		if p.dead {
			return
		}
		if err != nil {
			if attempts > 1 {
				p.sys.eng.Schedule(10*runtime.Second, func() { p.enterRing(attempts - 1) })
			}
			return
		}
		p.onJoined()
	})
}

func (p *Peer) onJoined() {
	p.joined = true
	p.sys.registry.Add(p.node.Self())
	if p.sys.work.Active(p.site) {
		p.scheduleNextQuery(p.sys.work.FirstQueryDelay(p.rng))
	}
}

func (p *Peer) scheduleNextQuery(delay int64) {
	p.queryTimer = p.sys.eng.Schedule(delay, func() {
		if p.dead {
			return
		}
		p.issueQuery()
		p.scheduleNextQuery(p.sys.work.NextQueryDelay(p.rng))
	})
}

func (p *Peer) kill() {
	if p.dead {
		return
	}
	p.dead = true
	p.node.Stop()
	if p.queryTimer != nil {
		p.queryTimer.Cancel()
	}
	p.query = nil
	p.sys.net.Fail(p.nid)
}

// objectKey hashes an object name onto the ring (home = successor).
func objectKey(k content.Key) ids.ID {
	return ids.Hash2(uint64(uint32(k.Site)), uint64(uint32(k.Object)))
}

// issueQuery starts one query through the distributed directory.
func (p *Peer) issueQuery() {
	if p.dead || p.query != nil || !p.joined {
		return
	}
	key, ok := p.sys.work.PickObject(p.rng, p.site, p.store)
	if !ok {
		return
	}
	q := &activeQuery{seq: p.sys.nextSeq(), key: key, start: p.sys.eng.Now()}
	if p.sys.tracer.Enabled() {
		q.path = trace.Append(q.path, trace.Hop{
			Kind: trace.HopIssue, Node: p.nid, Loc: p.sys.net.Locality(p.nid), At: q.start})
	}
	p.query = q
	p.sendQuery(q)
}

func (p *Peer) sendQuery(q *activeQuery) {
	if p.dead || p.query != q {
		return
	}
	q.attempt++
	msg := queryMsg{Seq: q.seq, Key: q.key, Client: p.nid}
	if p.sys.tracer.Enabled() {
		// The routed path segment starts empty; the home ships it back
		// (with its own hop appended) in homeResp.Path.
		p.node.RouteTraced(objectKey(q.key), msg, nil)
	} else {
		p.node.Route(objectKey(q.key), msg)
	}
	q.timeout = p.sys.eng.Schedule(p.sys.cfg.QueryTimeout, func() {
		if p.dead || p.query != q {
			return
		}
		if q.attempt < p.sys.cfg.QueryRetries {
			p.sendQuery(q)
			return
		}
		// The overlay failed us entirely: origin.
		p.resolve(q, metrics.Miss, p.sys.origins.Node(q.key.Site))
	})
}

// OnRouted implements chord.App: this node is the home for the queried
// object.
func (p *Peer) OnRouted(_ ids.ID, payload any, _ runtime.NodeID, hops int, path []trace.Hop) {
	m, ok := payload.(queryMsg)
	if !ok || p.dead {
		return
	}
	// Hop accounting at the home: the overlay forwardings this query
	// took, surfaced as the run's mean-hops stat.
	now := p.sys.eng.Now()
	p.sys.coll.Emit(metrics.CounterEvent(now, "lookup_hops", float64(hops)))
	p.sys.coll.Emit(metrics.CounterEvent(now, "routed_queries", 1))
	p.sys.tracer.Delivered(hops)
	delegates := p.dir[m.Key]
	// Random redirection — Squirrel has no locality information.
	resp := homeResp{Seq: m.Seq}
	if p.sys.tracer.Enabled() {
		resp.Path = trace.Append(path, trace.Hop{
			Kind: trace.HopHome, Node: p.nid, Loc: p.sys.net.Locality(p.nid), At: now})
	}
	perm := p.rng.Perm(len(delegates))
	for _, i := range perm {
		if len(resp.Providers) >= p.sys.cfg.ProviderAttempts {
			break
		}
		if delegates[i] != m.Client {
			resp.Providers = append(resp.Providers, delegates[i])
		}
	}
	// Optimistically record the requester as a future delegate: it is
	// about to fetch the object (from a delegate or the origin).
	p.addDelegate(m.Key, m.Client)
	p.sys.net.Send(p.nid, m.Client, resp)
}

func (p *Peer) addDelegate(k content.Key, nid runtime.NodeID) {
	ds := p.dir[k]
	for _, d := range ds {
		if d == nid {
			return
		}
	}
	ds = append(ds, nid)
	if len(ds) > p.sys.cfg.DirectoryCap {
		ds = ds[len(ds)-p.sys.cfg.DirectoryCap:]
	}
	p.dir[k] = ds
}

// onHomeResp continues the query with the home's redirect.
func (p *Peer) onHomeResp(m homeResp) {
	q := p.query
	if q == nil || q.seq != m.Seq || q.redirected {
		return
	}
	q.redirected = true
	if q.timeout != nil {
		q.timeout.Cancel()
	}
	q.candidates = m.Providers
	q.path = trace.Concat(q.path, m.Path)
	p.probeDelegate(q)
}

func (p *Peer) probeDelegate(q *activeQuery) {
	if p.dead || p.query != q {
		return
	}
	if len(q.candidates) == 0 {
		p.resolve(q, metrics.Miss, p.sys.origins.Node(q.key.Site))
		return
	}
	target := q.candidates[0]
	q.candidates = q.candidates[1:]
	timeout := 2*p.sys.net.Latency(p.nid, target) + 300*runtime.Millisecond
	p.sys.net.Request(p.nid, target, workload.FetchReq{Key: q.key}, timeout,
		func(resp any, err error) {
			if p.dead || p.query != q {
				return
			}
			served := err == nil && resp.(workload.FetchResp).Served
			if p.sys.tracer.Enabled() {
				q.path = trace.Append(q.path, trace.Hop{
					Kind: trace.HopProbe, Node: target,
					Loc: p.sys.net.Locality(target), At: p.sys.eng.Now(),
					// A probe that answered but could not serve is a stale
					// delegate entry — the summary false-positive flag.
					FalsePositive: err == nil && !served,
				})
			}
			if !served {
				p.probeDelegate(q)
				return
			}
			p.resolve(q, metrics.HitDirectory, target)
		})
}

// resolve records metrics and performs the transfer.
func (p *Peer) resolve(q *activeQuery, outcome metrics.Outcome, provider runtime.NodeID) {
	if p.query != q {
		return
	}
	if q.timeout != nil {
		q.timeout.Cancel()
	}
	p.query = nil
	now := p.sys.eng.Now()
	dist := p.sys.net.Latency(p.nid, provider)
	// Same lookup-latency definition as Flower-CDN: time to reach the
	// destination that will provide the object (see flower.resolve).
	lookup := now - q.start
	if outcome == metrics.Miss {
		lookup += dist
	} else if lookup > dist {
		lookup -= dist
	}
	p.sys.coll.Emit(metrics.QueryEvent(now, outcome, lookup, dist))
	if tr := p.sys.tracer; tr.Enabled() {
		tr.Emit(now, &trace.Record{
			Query: q.seq, Client: p.nid, Loc: p.sys.net.Locality(p.nid),
			Key: q.key.Uint64(), Outcome: outcome, Attempts: q.attempt,
			Hops: trace.Append(q.path, trace.Hop{
				Kind: trace.HopServe, Node: provider, Loc: p.sys.net.Locality(provider), At: now}),
		})
	}
	if outcome == metrics.Miss {
		p.sys.net.Request(p.nid, provider, workload.FetchReq{Key: q.key}, 0,
			func(_ any, err error) {
				if p.dead || err != nil {
					return
				}
				p.store.Add(q.key)
			})
		return
	}
	p.store.Add(q.key)
}

// ---- runtime.Handler ----

// HandleMessage dispatches Chord traffic and protocol messages.
func (p *Peer) HandleMessage(from runtime.NodeID, msg any) {
	if p.dead {
		return
	}
	if p.node.HandleMessage(from, msg) {
		return
	}
	if m, ok := msg.(homeResp); ok {
		p.onHomeResp(m)
	}
}

// HandleRequest dispatches Chord RPCs and content fetches.
func (p *Peer) HandleRequest(from runtime.NodeID, req any) (any, error) {
	if p.dead {
		return nil, errors.New("squirrel: dead peer")
	}
	if resp, err, ok := p.node.HandleRequest(from, req); ok {
		return resp, err
	}
	if r, ok := req.(workload.FetchReq); ok {
		return workload.FetchResp{Key: r.Key, Served: p.store.Has(r.Key)}, nil
	}
	return nil, fmt.Errorf("squirrel: unhandled request %T", req)
}
