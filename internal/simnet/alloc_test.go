package simnet

import "testing"

// nopNode discards everything: the alloc guards must measure the
// transport, not a recording handler's slice growth.
type nopNode struct{}

func (nopNode) HandleMessage(NodeID, any)              {}
func (nopNode) HandleRequest(NodeID, any) (any, error) { return nil, nil }

// TestSendDeliveryAllocs pins Send plus its delivery at zero
// steady-state allocations: the pooled delivery records (with their
// one-time pre-bound run closures) and the engine's timer slab make a
// message round trip the heap-neutral path the big-cell populations
// depend on. One allocation per message at 100k nodes is hundreds of
// MB of garbage per simulated hour.
func TestSendDeliveryAllocs(t *testing.T) {
	f := newFixture(t)
	a := f.join(nopNode{})
	b := f.join(nopNode{})
	for i := 0; i < 64; i++ { // warm up the delivery pool and slab
		f.net.Send(a, b, "warm")
		f.eng.RunAll()
	}
	avg := testing.AllocsPerRun(100, func() {
		f.net.Send(a, b, "steady")
		f.eng.RunAll()
	})
	if avg > 0 {
		t.Errorf("Send+delivery allocates %.2f objects per message; want 0", avg)
	}
}
