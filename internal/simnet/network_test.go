package simnet

import (
	"errors"
	"testing"

	"flowercdn/internal/sim"
	"flowercdn/internal/topology"
)

// echoNode records messages and answers RPCs by echoing the request.
type echoNode struct {
	msgs []any
	from []NodeID
	rpcs int
	err  error // returned from HandleRequest when non-nil
}

func (e *echoNode) HandleMessage(from NodeID, msg any) {
	e.msgs = append(e.msgs, msg)
	e.from = append(e.from, from)
}

func (e *echoNode) HandleRequest(from NodeID, req any) (any, error) {
	e.rpcs++
	if e.err != nil {
		return nil, e.err
	}
	return req, nil
}

type fixture struct {
	eng  *sim.Engine
	topo *topology.Topology
	net  *Network
	rng  *sim.RNG
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(11)
	topo, err := topology.New(topology.DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: eng, topo: topo, net: New(eng.Clock(), topo), rng: rng}
}

func (f *fixture) join(h Handler) NodeID {
	return f.net.Join(h, f.topo.Place(f.rng))
}

func TestSendDeliversWithLatency(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	bn := &echoNode{}
	b := f.join(bn)
	f.net.Send(a, b, "hello")
	if len(bn.msgs) != 0 {
		t.Fatal("message delivered instantly; should wait for latency")
	}
	f.eng.RunAll()
	if len(bn.msgs) != 1 || bn.msgs[0] != "hello" || bn.from[0] != a {
		t.Fatalf("delivery wrong: msgs=%v from=%v", bn.msgs, bn.from)
	}
	lat := f.net.Latency(a, b)
	if f.eng.Now() != lat {
		t.Fatalf("delivered at %d, want link latency %d", f.eng.Now(), lat)
	}
	if lat < 10 || lat > 500 {
		t.Fatalf("latency %d out of model bounds", lat)
	}
}

func TestSendToDeadNodeDropped(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	bn := &echoNode{}
	b := f.join(bn)
	f.net.Fail(b)
	f.net.Send(a, b, "x")
	f.eng.RunAll()
	if len(bn.msgs) != 0 {
		t.Fatal("dead node received a message")
	}
	st := f.net.Stats()
	if st.MessagesDropped != 1 {
		t.Fatalf("MessagesDropped = %d, want 1", st.MessagesDropped)
	}
}

func TestFailDuringFlightDropsMessage(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	bn := &echoNode{}
	b := f.join(bn)
	f.net.Send(a, b, "x")
	// Fail the target before the message lands.
	f.eng.Schedule(1, func() { f.net.Fail(b) })
	f.eng.RunAll()
	if len(bn.msgs) != 0 {
		t.Fatal("message delivered to node that failed mid-flight")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	bn := &echoNode{}
	b := f.join(bn)
	var got any
	var gotErr error
	called := 0
	f.net.Request(a, b, 42, 0, func(resp any, err error) {
		called++
		got, gotErr = resp, err
	})
	f.eng.RunAll()
	if called != 1 {
		t.Fatalf("callback ran %d times, want 1", called)
	}
	if gotErr != nil || got != 42 {
		t.Fatalf("resp=%v err=%v", got, gotErr)
	}
	if bn.rpcs != 1 {
		t.Fatalf("handler saw %d rpcs, want 1", bn.rpcs)
	}
	want := f.net.Latency(a, b) * 2
	if f.eng.Now() != want {
		t.Fatalf("round trip completed at %d, want %d", f.eng.Now(), want)
	}
}

func TestRequestApplicationError(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	appErr := errors.New("wrong role")
	b := f.join(&echoNode{err: appErr})
	var gotErr error
	f.net.Request(a, b, "q", 0, func(_ any, err error) { gotErr = err })
	f.eng.RunAll()
	if !errors.Is(gotErr, appErr) {
		t.Fatalf("err = %v, want application error", gotErr)
	}
}

func TestRequestToDeadNodeTimesOut(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	b := f.join(&echoNode{})
	f.net.Fail(b)
	var gotErr error
	called := 0
	f.net.Request(a, b, "q", 1000, func(_ any, err error) { called++; gotErr = err })
	f.eng.RunAll()
	if called != 1 || !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("called=%d err=%v, want one timeout", called, gotErr)
	}
	if f.eng.Now() < 1000 {
		t.Fatalf("timeout fired early at %d", f.eng.Now())
	}
	if f.net.Stats().RequestsTimedOut != 1 {
		t.Fatalf("RequestsTimedOut = %d, want 1", f.net.Stats().RequestsTimedOut)
	}
}

func TestRequestCallbackSuppressedIfRequesterDies(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	b := f.join(&echoNode{})
	called := 0
	f.net.Request(a, b, "q", 0, func(any, error) { called++ })
	f.eng.Schedule(1, func() { f.net.Fail(a) })
	f.eng.RunAll()
	if called != 0 {
		t.Fatal("dead requester's callback ran")
	}
}

func TestRequestTimeoutNotDoubleFired(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	b := f.join(&echoNode{})
	called := 0
	// Tiny timeout: the deadline fires before the response returns.
	f.net.Request(a, b, "q", 1, func(any, error) { called++ })
	f.eng.RunAll()
	if called != 1 {
		t.Fatalf("callback ran %d times, want exactly 1", called)
	}
}

func TestAliveBookkeeping(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	b := f.join(&echoNode{})
	if f.net.AliveCount() != 2 || f.net.TotalJoined() != 2 {
		t.Fatal("counts wrong after joins")
	}
	f.net.Fail(a)
	f.net.Fail(a) // idempotent
	if f.net.AliveCount() != 1 {
		t.Fatalf("AliveCount = %d after one failure", f.net.AliveCount())
	}
	if f.net.Alive(a) || !f.net.Alive(b) {
		t.Fatal("Alive() wrong")
	}
	if f.net.Alive(None) || f.net.Alive(NodeID(99)) {
		t.Fatal("Alive() true for invalid ids")
	}
}

func TestForEachAlive(t *testing.T) {
	f := newFixture(t)
	var all []NodeID
	for i := 0; i < 5; i++ {
		all = append(all, f.join(&echoNode{}))
	}
	f.net.Fail(all[2])
	var seen []NodeID
	f.net.ForEachAlive(func(id NodeID) { seen = append(seen, id) })
	if len(seen) != 4 {
		t.Fatalf("visited %d nodes, want 4", len(seen))
	}
	for _, id := range seen {
		if id == all[2] {
			t.Fatal("visited dead node")
		}
	}
}

func TestLatencySymmetry(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	b := f.join(&echoNode{})
	if f.net.Latency(a, b) != f.net.Latency(b, a) {
		t.Fatal("latency not symmetric")
	}
}

type sized struct{ n int }

func (s sized) WireBytes() int { return s.n }

func TestByteAccounting(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	b := f.join(&echoNode{})
	f.net.Send(a, b, sized{n: 1000})
	f.net.Send(a, b, "plain")
	f.eng.RunAll()
	st := f.net.Stats()
	if st.BytesSent != 1000+DefaultMessageBytes {
		t.Fatalf("BytesSent = %d, want %d", st.BytesSent, 1000+DefaultMessageBytes)
	}
	if st.MessagesSent != 2 || st.MessagesDelivered != 2 {
		t.Fatalf("message counts: %+v", st)
	}
}

func TestLocalityExposed(t *testing.T) {
	f := newFixture(t)
	pl := f.topo.PlaceAt(topology.Locality(3), f.rng)
	id := f.net.Join(&echoNode{}, pl)
	if f.net.Locality(id) != pl.Loc {
		t.Fatalf("Locality = %d, want %d", f.net.Locality(id), pl.Loc)
	}
}

func TestPanicsOnProtocolBugs(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Send to unregistered", func() { f.net.Send(a, NodeID(99), "x") })
	mustPanic("Request nil cb", func() { f.net.Request(a, a, "x", 0, nil) })
	mustPanic("Join nil handler", func() { f.net.Join(nil, topology.Placement{}) })
}
