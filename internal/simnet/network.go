// Package simnet is the message layer every protocol node in this
// repository communicates through. It binds the discrete-event engine
// (internal/sim) to the latency model (internal/topology) and provides:
//
//   - a registry of nodes with join/fail lifecycle (fail-only churn, as
//     in the paper's evaluation: peers never leave gracefully unless a
//     protocol explicitly models it);
//   - one-way Send with per-link latency;
//   - Request/response RPCs with timeouts, used for everything that is
//     conversational (stabilization probes, keepalives, directory
//     queries, shuffle exchanges);
//   - message and byte accounting for overhead measurements.
//
// Messages to dead nodes are silently dropped, so failure detection is
// always timeout-driven, like on a real network.
package simnet

import (
	"fmt"

	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
)

// The vocabulary types of the message layer are defined by the
// backend-agnostic seam (internal/runtime) and aliased here, so code
// written against the concrete simulated network and code written
// against the Transport interface interoperate without conversion.
type (
	// NodeID names a node for the lifetime of a run.
	NodeID = runtime.NodeID
	// Handler is implemented by every protocol node.
	Handler = runtime.Handler
	// Sizer lets a message report its approximate wire size.
	Sizer = runtime.Sizer
	// Stats accumulates traffic counters for a run.
	Stats = runtime.TransportStats
)

// None is the zero-ish sentinel for "no node".
const None = runtime.None

// Errors surfaced to Request callers.
var (
	// ErrTimeout: no response within the deadline (dead target, dead
	// requester-side delivery, or dropped en route).
	ErrTimeout = runtime.ErrTimeout
	// ErrNoSuchNode: the target NodeID was never registered.
	ErrNoSuchNode = runtime.ErrNoSuchNode
)

// DefaultMessageBytes approximates a small control message (headers +
// a few identifiers).
const DefaultMessageBytes = runtime.DefaultMessageBytes

type nodeState struct {
	handler Handler
	place   topology.Placement
	alive   bool
	joined  int64
	died    int64
}

// Network implements the full Transport seam.
var _ runtime.Transport = (*Network)(nil)

// Network is the central message switch — the loopback reference
// implementation of runtime.Transport. It delivers through whatever
// runtime.Clock drives it: the discrete-event engine (deterministic
// simulation, via internal/simrt) or the wall-clock loop
// (internal/rtnet), with identical latency, loss and accounting
// semantics. Like the engine it is single-goroutine: every call must
// happen on the clock's callback goroutine (or before the run starts).
type Network struct {
	clock runtime.Clock
	topo  *topology.Topology
	nodes []nodeState
	alive int
	stats Stats

	// DefaultRPCTimeout is used when Request is called with timeout <= 0.
	DefaultRPCTimeout int64

	// lossRate drops each one-way transmission with this probability —
	// failure injection beyond churn. Zero (the default) is the paper's
	// reliable-link model.
	lossRate float64
	lossRNG  *rnd.RNG

	// Free lists for the per-message delivery records and per-RPC state
	// records. Every Send schedules one closure and every Request up to
	// three; allocating those closures per call dominated object churn
	// in whole-run profiles. The records carry pre-bound closures, so a
	// steady-state Send or Request allocates nothing. Single-goroutine
	// like the rest of the switch, so plain slices suffice.
	deliveryPool []*delivery
	rpcPool      []*rpcState
}

// delivery is the pooled one-way message-delivery record: the closure
// handed to the clock is bound once, at record creation, and the record
// is recycled the moment its fields are copied out — before the handler
// runs, so reentrant Sends can reuse it immediately.
type delivery struct {
	n        *Network
	from, to NodeID
	msg      any
	run      func()
}

func (n *Network) getDelivery() *delivery {
	if len(n.deliveryPool) > 0 {
		d := n.deliveryPool[len(n.deliveryPool)-1]
		n.deliveryPool = n.deliveryPool[:len(n.deliveryPool)-1]
		return d
	}
	d := &delivery{n: n}
	d.run = d.deliver
	return d
}

func (d *delivery) deliver() {
	n, from, to, msg := d.n, d.from, d.to, d.msg
	d.msg = nil
	n.deliveryPool = append(n.deliveryPool, d)
	st := &n.nodes[to]
	if !st.alive {
		n.stats.MessagesDropped++
		return
	}
	n.stats.MessagesDelivered++
	st.handler.HandleMessage(from, msg)
}

// rpcState is the pooled per-Request record. Up to three scheduled
// closures reference it (deadline, request leg, response leg); refs
// counts the ones still outstanding and the record returns to the pool
// only when the last of them has run or been provably cancelled —
// recycling earlier would let a stale response leg fire with a reused
// record's fields.
type rpcState struct {
	n        *Network
	from, to NodeID
	resp     any
	err      error
	cb       func(resp any, err error)
	deadline runtime.Timer

	refs          int
	done          bool
	deadlineFired bool

	onDeadline func()
	onDeliver  func()
	onRespond  func()

	req any
}

func (n *Network) getRPC() *rpcState {
	if len(n.rpcPool) > 0 {
		r := n.rpcPool[len(n.rpcPool)-1]
		n.rpcPool = n.rpcPool[:len(n.rpcPool)-1]
		return r
	}
	r := &rpcState{n: n}
	r.onDeadline = r.deadlineFire
	r.onDeliver = r.deliverReq
	r.onRespond = r.deliverResp
	return r
}

// finish runs the callback exactly once; a dead requester never
// observes the outcome.
func (r *rpcState) finish(resp any, err error) {
	if r.done {
		return
	}
	r.done = true
	if !r.n.Alive(r.from) {
		return
	}
	r.cb(resp, err)
}

func (r *rpcState) maybeRecycle() {
	if r.refs != 0 {
		return
	}
	n := r.n
	r.req, r.resp, r.err, r.cb = nil, nil, nil, nil
	r.deadline = nil
	n.rpcPool = append(n.rpcPool, r)
}

func (r *rpcState) deadlineFire() {
	r.deadlineFired = true
	r.refs--
	if !r.done {
		r.n.stats.RequestsTimedOut++
	}
	r.finish(nil, ErrTimeout)
	r.maybeRecycle()
}

func (r *rpcState) deliverReq() {
	r.refs--
	n := r.n
	st := &n.nodes[r.to]
	if !st.alive {
		// Dropped on the floor; the deadline will fire.
		n.stats.MessagesDropped++
		r.maybeRecycle()
		return
	}
	n.stats.MessagesDelivered++
	resp, err := st.handler.HandleRequest(r.from, r.req)
	// Response leg.
	n.stats.MessagesSent++
	n.stats.BytesSent += uint64(messageBytes(resp))
	if n.lost() {
		n.stats.MessagesDropped++
		r.maybeRecycle()
		return
	}
	r.resp, r.err = resp, err
	r.refs++
	n.clock.Schedule(n.Latency(r.to, r.from), r.onRespond)
}

func (r *rpcState) deliverResp() {
	r.refs--
	if !r.deadlineFired {
		// The deadline can no longer fire; release its reference too.
		r.deadline.Cancel()
		r.refs--
	}
	r.finish(r.resp, r.err)
	r.maybeRecycle()
}

// New builds an empty network delivering through the given clock and
// sampling link latency from the given topology.
func New(clock runtime.Clock, topo *topology.Topology) *Network {
	return &Network{
		clock:             clock,
		topo:              topo,
		DefaultRPCTimeout: 4 * runtime.Second,
	}
}

// Clock exposes the clock driving deliveries (protocol nodes schedule
// their periodic work through it).
func (n *Network) Clock() runtime.Clock { return n.clock }

// Topology exposes the latency model.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// SetLossRate enables random message loss: every one-way transmission
// (sends, RPC requests and RPC responses independently) is dropped with
// probability p. Used by the failure-injection tests and ablations;
// p = 0 restores reliable links. Panics on p outside [0, 1) or a nil
// rng with p > 0.
func (n *Network) SetLossRate(p float64, rng *rnd.RNG) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("simnet: loss rate %g out of [0, 1)", p))
	}
	if p > 0 && rng == nil {
		panic("simnet: loss rate needs an RNG")
	}
	n.lossRate = p
	n.lossRNG = rng
}

// lost draws one loss decision.
func (n *Network) lost() bool {
	return n.lossRate > 0 && n.lossRNG.Bool(n.lossRate)
}

// Join registers a handler at the given placement and returns its fresh
// NodeID.
func (n *Network) Join(h Handler, place topology.Placement) NodeID {
	if h == nil {
		panic("simnet: Join with nil handler")
	}
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, nodeState{
		handler: h,
		place:   place,
		alive:   true,
		joined:  n.clock.Now(),
		died:    -1,
	})
	n.alive++
	return id
}

// Fail marks a node dead. In-flight messages to it will be dropped on
// delivery; it stops receiving forever (re-joining means a new NodeID).
// Failing an already-dead node is a no-op.
func (n *Network) Fail(id NodeID) {
	if !n.valid(id) {
		return
	}
	st := &n.nodes[id]
	if !st.alive {
		return
	}
	st.alive = false
	st.died = n.clock.Now()
	st.handler = nil // release protocol state for GC
	n.alive--
}

func (n *Network) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes)
}

// Alive reports whether id is registered and not failed.
func (n *Network) Alive(id NodeID) bool {
	return n.valid(id) && n.nodes[id].alive
}

// AliveCount returns the number of currently-alive nodes.
func (n *Network) AliveCount() int { return n.alive }

// TotalJoined returns how many nodes have ever joined.
func (n *Network) TotalJoined() int { return len(n.nodes) }

// Placement returns where a node sits in the topology. It remains valid
// after the node fails (used for post-mortem metrics).
func (n *Network) Placement(id NodeID) topology.Placement {
	if !n.valid(id) {
		panic(fmt.Sprintf("simnet: Placement of unknown node %d", id))
	}
	return n.nodes[id].place
}

// Locality returns the physical locality of a node.
func (n *Network) Locality(id NodeID) topology.Locality {
	return n.Placement(id).Loc
}

// Latency returns the one-way latency between two nodes in ms.
func (n *Network) Latency(a, b NodeID) int64 {
	return n.topo.Latency(n.Placement(a).Pos, n.Placement(b).Pos)
}

func messageBytes(msg any) int {
	if s, ok := msg.(Sizer); ok {
		return s.WireBytes()
	}
	return DefaultMessageBytes
}

// Send delivers msg to `to` after the one-way link latency. If the
// target is dead at delivery time the message is dropped. Sending from
// a dead node is allowed (the datagram was on the wire when it died is
// the mental model for zero-delay sequences, and it keeps protocol code
// simpler); sends to unregistered IDs panic, because they indicate a
// protocol bug rather than churn.
func (n *Network) Send(from, to NodeID, msg any) {
	if !n.valid(to) {
		panic(fmt.Sprintf("simnet: Send to unregistered node %d", to))
	}
	n.stats.MessagesSent++
	n.stats.BytesSent += uint64(messageBytes(msg))
	if n.lost() {
		n.stats.MessagesDropped++
		return
	}
	delay := n.Latency(from, to)
	d := n.getDelivery()
	d.from, d.to, d.msg = from, to, msg
	n.clock.Schedule(delay, d.run)
}

// Request performs an RPC: req travels to the target (one-way latency),
// the target's HandleRequest runs, and the response travels back
// (one-way latency). cb runs exactly once: with the response, with the
// handler's application error, or with ErrTimeout if either leg fails
// or the deadline expires first. A timeout <= 0 selects
// DefaultRPCTimeout.
//
// If the *requester* is dead when the response arrives, cb is not run:
// dead peers take no actions.
func (n *Network) Request(from, to NodeID, req any, timeout int64, cb func(resp any, err error)) {
	if cb == nil {
		panic("simnet: Request with nil callback")
	}
	if !n.valid(to) {
		panic(fmt.Sprintf("simnet: Request to unregistered node %d", to))
	}
	if timeout <= 0 {
		timeout = n.DefaultRPCTimeout
	}
	n.stats.RequestsIssued++
	n.stats.MessagesSent++
	n.stats.BytesSent += uint64(messageBytes(req))

	r := n.getRPC()
	r.from, r.to, r.req, r.cb = from, to, req, cb
	r.done, r.deadlineFired = false, false

	// Deadline: fires unless a response beat it.
	r.refs = 1
	r.deadline = n.clock.Schedule(timeout, r.onDeadline)

	if n.lost() {
		// Request leg dropped in transit; the deadline will fire.
		n.stats.MessagesDropped++
		return
	}
	r.refs++
	n.clock.Schedule(n.Latency(from, to), r.onDeliver)
}

// ForEachAlive visits every alive node id (ascending). The visitor must
// not join or fail nodes while iterating.
func (n *Network) ForEachAlive(visit func(id NodeID)) {
	for i := range n.nodes {
		if n.nodes[i].alive {
			visit(NodeID(i))
		}
	}
}
