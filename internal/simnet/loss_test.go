package simnet

import (
	"errors"
	"math"
	"testing"

	"flowercdn/internal/sim"
)

func TestLossRateValidation(t *testing.T) {
	f := newFixture(t)
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("loss rate %g accepted", p)
				}
			}()
			f.net.SetLossRate(p, f.rng)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("loss without rng accepted")
			}
		}()
		f.net.SetLossRate(0.1, nil)
	}()
	// Zero without rng is fine (disables loss).
	f.net.SetLossRate(0, nil)
}

func TestSendLossRateEmpirical(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	bn := &echoNode{}
	b := f.join(bn)
	const p = 0.3
	f.net.SetLossRate(p, sim.NewRNG(99))
	const n = 5000
	for i := 0; i < n; i++ {
		f.net.Send(a, b, i)
	}
	f.eng.RunAll()
	got := float64(len(bn.msgs)) / n
	if math.Abs(got-(1-p)) > 0.03 {
		t.Fatalf("delivery rate %.3f, want ~%.2f", got, 1-p)
	}
	if f.net.Stats().MessagesDropped == 0 {
		t.Fatal("drops not counted")
	}
}

func TestRequestSurvivesLossViaTimeout(t *testing.T) {
	// Under loss, every request still completes exactly once: either
	// with a response or with ErrTimeout.
	f := newFixture(t)
	a := f.join(&echoNode{})
	b := f.join(&echoNode{})
	f.net.SetLossRate(0.4, sim.NewRNG(7))
	const n = 500
	completions, timeouts := 0, 0
	for i := 0; i < n; i++ {
		f.net.Request(a, b, i, 2000, func(_ any, err error) {
			completions++
			if errors.Is(err, ErrTimeout) {
				timeouts++
			}
		})
	}
	f.eng.RunAll()
	if completions != n {
		t.Fatalf("%d/%d requests completed", completions, n)
	}
	if timeouts == 0 || timeouts == n {
		t.Fatalf("timeouts = %d of %d; expected a mix under 40%% loss", timeouts, n)
	}
}

func TestZeroLossIsReliable(t *testing.T) {
	f := newFixture(t)
	a := f.join(&echoNode{})
	bn := &echoNode{}
	b := f.join(bn)
	f.net.SetLossRate(0.5, sim.NewRNG(3))
	f.net.SetLossRate(0, nil) // restore reliability
	for i := 0; i < 200; i++ {
		f.net.Send(a, b, i)
	}
	f.eng.RunAll()
	if len(bn.msgs) != 200 {
		t.Fatalf("reliable network delivered %d/200", len(bn.msgs))
	}
}
