// Package protocols registers every built-in protocol driver with the
// internal/proto registry (the database/sql driver pattern). Import it
// for side effects wherever deployments are launched by name — the
// façade does, which covers both CLIs and the examples; test packages
// that call the harness directly import it themselves.
package protocols

import (
	_ "flowercdn/internal/baseline" // origin-only, chord-global
	_ "flowercdn/internal/flower"   // flower
	_ "flowercdn/internal/koorde"   // koorde-global
	_ "flowercdn/internal/petalup"  // petalup
	_ "flowercdn/internal/squirrel" // squirrel
)
