package chord

import (
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
)

// Registry is the bootstrap gateway set every deployment keeps: the
// ring members a brand-new client may submit its first query through —
// the simulation's stand-in for out-of-band entry points (the
// supported websites themselves). On a multi-process backend the set
// is mirrored across processes over the transport's announcement Bus,
// so a member registered anywhere becomes a gateway everywhere; on
// single-process backends BindBus is a no-op and the Registry is plain
// local state.
//
// Entries is exported because gateway selection is protocol policy:
// deployments index and lazily prune the slice directly (dead entries
// are swap-removed as they are drawn, without announcements — every
// process prunes its own mirror against its own liveness view).
type Registry struct {
	Entries []Entry
	bus     runtime.Bus
}

// GatewayAnnounce and GatewayRetract are the bus messages mirroring
// registry changes across processes. They are shared by every
// deployment — only one protocol runs per process, so the types need
// no protocol tag.
type GatewayAnnounce struct{ E Entry }
type GatewayRetract struct{ Node runtime.NodeID }

func init() {
	runtime.RegisterWireType(GatewayAnnounce{}, GatewayRetract{})
}

// BindBus subscribes the registry to the transport's announcement bus
// when there is one. Call once, at deployment construction.
func (r *Registry) BindBus(net runtime.Transport) {
	bus := runtime.BusOf(net)
	if bus == nil {
		return
	}
	r.bus = bus
	bus.Subscribe(func(msg any) {
		switch m := msg.(type) {
		case GatewayAnnounce:
			r.addLocal(m.E)
		case GatewayRetract:
			r.removeLocal(m.Node)
		}
	})
}

// Add records a new gateway and announces it to the other processes.
func (r *Registry) Add(e Entry) {
	r.addLocal(e)
	if r.bus != nil {
		r.bus.Announce(GatewayAnnounce{E: e})
	}
}

// Remove drops a gateway (a demoted-but-alive member that would
// otherwise swallow routed queries) and mirrors the removal.
func (r *Registry) Remove(nid runtime.NodeID) {
	r.removeLocal(nid)
	if r.bus != nil {
		r.bus.Announce(GatewayRetract{Node: nid})
	}
}

// addLocal appends one entry, deduplicating by node.
func (r *Registry) addLocal(e Entry) {
	for _, have := range r.Entries {
		if have.Node == e.Node {
			return
		}
	}
	r.Entries = append(r.Entries, e)
}

// removeLocal swap-removes the entry for nid, if present.
func (r *Registry) removeLocal(nid runtime.NodeID) {
	for i, e := range r.Entries {
		if e.Node == nid {
			r.Entries[i] = r.Entries[len(r.Entries)-1]
			r.Entries = r.Entries[:len(r.Entries)-1]
			return
		}
	}
}

// Len returns the number of recorded gateways (alive or not).
func (r *Registry) Len() int { return len(r.Entries) }

// PickAlive draws a uniformly random alive gateway, excluding one node
// (usually a member just observed dead; pass runtime.None to exclude
// nothing) and lazily swap-removing dead entries as they are drawn.
// Prunes are local only — every process ages its own mirror against
// its own liveness view; no retraction is announced. Returns NoEntry
// when no eligible gateway remains.
func (r *Registry) PickAlive(rng *rnd.RNG, alive func(runtime.NodeID) bool, exclude runtime.NodeID) Entry {
	for len(r.Entries) > 0 {
		i := rng.Intn(len(r.Entries))
		e := r.Entries[i]
		if alive(e.Node) && e.Node != exclude {
			return e
		}
		// Prune: swap-remove. (Excluded-but-alive entries are removed
		// from this scan's perspective only if dead; keep alive excluded
		// ones by tolerating a few extra draws.)
		if !alive(e.Node) {
			r.Entries[i] = r.Entries[len(r.Entries)-1]
			r.Entries = r.Entries[:len(r.Entries)-1]
			continue
		}
		// Alive but excluded: try again; with only the excluded node
		// left, give up to avoid spinning.
		if len(r.Entries) == 1 {
			return NoEntry
		}
	}
	return NoEntry
}
