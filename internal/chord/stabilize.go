package chord

import (
	"flowercdn/internal/runtime"
	"sort"

	"flowercdn/internal/ids"
)

// stabilize is Chord's periodic successor repair: ask the successor for
// its predecessor and successor list, adopt a closer successor if one
// appeared, merge the list, and notify.
func (n *Node) stabilize() {
	if n.stopped {
		return
	}
	succ := n.Successor()
	if succ.Node == n.self.Node {
		// Alone on the ring; if someone notified us, adopt them.
		if n.pred.Valid() && n.pred.Node != n.self.Node {
			n.succs = []Entry{n.pred}
			return
		}
		// Stranded: every known successor died before repair. Try an
		// emergency re-join through a cached contact.
		n.rescue()
		return
	}
	n.net.Request(n.self.Node, succ.Node, neighborsReq{}, n.cfg.RPCTimeout,
		func(resp any, err error) {
			if n.stopped {
				return
			}
			if err != nil {
				n.dropSuccessor(succ)
				return
			}
			nb := resp.(neighborsResp)
			if nb.Pred.Valid() && nb.Pred.Node != n.self.Node &&
				ids.Between(nb.Pred.ID, n.self.ID, succ.ID) {
				// A node slid in between us and our successor.
				n.adoptSuccessor(nb.Pred, nil)
			} else {
				n.mergeSuccList(succ, nb.Succs)
			}
			n.notifySuccessor()
		})
}

// rememberContact keeps a bounded, deduplicated cache of ring members
// seen through maintenance traffic, newest last.
func (n *Node) rememberContact(e Entry) {
	if !e.Valid() || e.Node == n.self.Node {
		return
	}
	const cap = 16
	for i, c := range n.contacts {
		if c.Node == e.Node {
			// Move to the back (freshest) in place: this runs for every
			// successor-list entry of every stabilize round, so it must
			// not reallocate.
			copy(n.contacts[i:], n.contacts[i+1:])
			n.contacts[len(n.contacts)-1] = e
			return
		}
	}
	if len(n.contacts) >= cap {
		// Evict the stalest in place, keeping the backing array.
		copy(n.contacts, n.contacts[1:])
		n.contacts[len(n.contacts)-1] = e
		return
	}
	n.contacts = append(n.contacts, e)
}

// rescue attempts an emergency re-join via the freshest cached contact:
// resolve our own successor through it and re-enter the ring. One
// attempt per stabilize round; dead contacts are discarded.
func (n *Node) rescue() {
	for len(n.contacts) > 0 {
		c := n.contacts[len(n.contacts)-1]
		n.contacts = n.contacts[:len(n.contacts)-1]
		if c.Node == n.self.Node {
			continue
		}
		n.lookupVia(c, n.self.ID, func(owner Entry, _ int, err error) {
			if n.stopped || err != nil {
				return
			}
			if owner.Node == n.self.Node || !owner.Valid() {
				return
			}
			if n.Successor().Node != n.self.Node {
				return // already rescued through another path
			}
			n.succs = []Entry{owner}
			n.notifySuccessor()
			n.stabilize()
		})
		return
	}
}

// adoptSuccessor makes e the immediate successor and keeps the tail.
func (n *Node) adoptSuccessor(e Entry, tail []Entry) {
	n.rememberContact(e)
	list := n.succsSpare[:0]
	list = append(list, e)
	for _, s := range n.succs {
		if len(list) >= n.cfg.SuccessorListLen {
			break
		}
		if s.Node != e.Node && s.Node != n.self.Node {
			list = append(list, s)
		}
	}
	for _, s := range tail {
		if len(list) >= n.cfg.SuccessorListLen {
			break
		}
		if s.Node != e.Node && s.Node != n.self.Node && !containsNode(list, s.Node) {
			list = append(list, s)
		}
	}
	// Double-buffer: the list was built into the spare while reading the
	// live one; swap so next round reuses today's live backing array.
	n.succsSpare = n.succs[:0]
	n.succs = list
}

// mergeSuccList rebuilds the successor list as succ followed by succ's
// own list.
func (n *Node) mergeSuccList(succ Entry, theirs []Entry) {
	list := n.succsSpare[:0]
	list = append(list, succ)
	n.rememberContact(succ)
	for _, s := range theirs {
		n.rememberContact(s)
		if len(list) >= n.cfg.SuccessorListLen {
			continue
		}
		if s.Node != n.self.Node && !containsNode(list, s.Node) {
			list = append(list, s)
		}
	}
	n.succsSpare = n.succs[:0]
	n.succs = list
}

func containsNode(list []Entry, node runtime.NodeID) bool {
	for _, e := range list {
		if e.Node == node {
			return true
		}
	}
	return false
}

// dropSuccessor removes a dead successor and falls back to the next
// live candidate in the list; with the list exhausted the node points
// at itself and waits to be re-discovered (it still owns its arc).
func (n *Node) dropSuccessor(dead Entry) {
	out := n.succs[:0]
	for _, s := range n.succs {
		if s.Node != dead.Node {
			out = append(out, s)
		}
	}
	n.succs = out
	if len(n.succs) == 0 {
		n.succs = []Entry{n.self}
	}
	n.clearFingersFor(dead)
}

func (n *Node) notifySuccessor() {
	succ := n.Successor()
	if succ.Node == n.self.Node {
		return
	}
	n.net.Send(n.self.Node, succ.Node, notifyMsg{From: n.self})
}

// onNotify implements notify(n'): adopt n' as predecessor if closer.
// Adopting a closer predecessor shrinks this node's arc, so claim
// records for positions that now fall on the new predecessor's arc are
// transferred to it — otherwise the new arc owner would re-grant a
// position that is already reserved (the duplicate-directory race).
func (n *Node) onNotify(from Entry) {
	if n.stopped || from.Node == n.self.Node {
		return
	}
	n.rememberContact(from)
	if !n.pred.Valid() || n.pred.Node == n.self.Node ||
		ids.Between(from.ID, n.pred.ID, n.self.ID) {
		old := n.pred
		n.pred = from
		n.transferClaims(old, from)
	}
	// A lone node adopts its first contact as successor too.
	if n.Successor().Node == n.self.Node {
		n.succs = []Entry{from}
	}
}

// transferClaims ships reservations for positions in (old, new] to the
// new predecessor, which now owns that arc. Positions are visited in
// sorted order: every Send consumes a message-loss draw when loss
// injection is on, so map-iteration order here would otherwise make
// lossy runs nondeterministic.
func (n *Node) transferClaims(old, new Entry) {
	if len(n.claims) == 0 {
		return
	}
	positions := make([]ids.ID, 0, len(n.claims))
	for pos := range n.claims {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		c := n.claims[pos]
		if pos == new.ID {
			// The new predecessor IS the position's holder (the granted
			// claimant that just integrated). It rejects rival claims by
			// identity; we keep the record so rivals that still route to
			// us are denied too — deleting it would let us double-grant.
			continue
		}
		var moved bool
		if !old.Valid() || old.Node == n.self.Node {
			// We previously answered for the whole reachable arc; keep
			// only what is still ours: (new, self].
			moved = !ids.BetweenRightIncl(pos, new.ID, n.self.ID)
		} else {
			moved = ids.BetweenRightIncl(pos, old.ID, new.ID)
		}
		if moved {
			n.net.Send(n.self.Node, new.Node, claimTransfer{Pos: pos, Claimant: c.claimant})
			delete(n.claims, pos)
		}
	}
}

// onClaimTransfer installs a reservation handed over by the previous
// arc owner; an existing local record wins (it is newer information).
func (n *Node) onClaimTransfer(m claimTransfer) {
	if n.stopped {
		return
	}
	if _, ok := n.claims[m.Pos]; ok {
		return
	}
	n.claims[m.Pos] = claim{claimant: m.Claimant, expires: n.eng.Now() + n.cfg.ClaimTTL}
}

// onNeighbors answers a stabilize probe.
func (n *Node) onNeighbors() (neighborsResp, error) {
	succs := make([]Entry, len(n.succs))
	copy(succs, n.succs)
	return neighborsResp{Pred: n.pred, Succs: succs}, nil
}

// checkPredecessor probes the predecessor and clears it on timeout, so
// a dead predecessor's slot can be re-taken via notify.
func (n *Node) checkPredecessor() {
	if n.stopped || !n.pred.Valid() || n.pred.Node == n.self.Node {
		return
	}
	pred := n.pred
	n.net.Request(n.self.Node, pred.Node, pingReq{}, n.cfg.RPCTimeout,
		func(_ any, err error) {
			if n.stopped {
				return
			}
			if err != nil && n.pred.Node == pred.Node {
				n.pred = NoEntry
				n.clearFingersFor(pred)
			}
		})
}

// fixFingers refreshes FingersPerFix finger entries per firing, cycling
// through the table. Finger i targets self.ID + 2^i.
func (n *Node) fixFingers() {
	if n.stopped {
		return
	}
	for k := 0; k < n.cfg.FingersPerFix; k++ {
		i := n.nextFix
		n.nextFix = (n.nextFix + 1) % ids.Bits
		target := n.self.ID.AddPow2(i)
		idx := i
		n.Lookup(target, func(owner Entry, _ int, err error) {
			if n.stopped {
				return
			}
			if err != nil {
				n.fingers[idx] = NoEntry
				return
			}
			if owner.Node == n.self.Node {
				n.fingers[idx] = NoEntry // own arc: no shortcut needed
				return
			}
			n.fingers[idx] = owner
		})
	}
}

// pingFingers probes a rotating window of distinct finger nodes and
// clears entries whose node fails to answer. A stale-but-alive finger
// merely costs extra hops; a dead finger silently swallows every
// one-way routed message sent through it, so under heavy churn this
// probe is what keeps lookup latency bounded.
func (n *Node) pingFingers() {
	if n.stopped {
		return
	}
	// Collect distinct finger nodes in table order, reusing the node's
	// scratch slice (this fires every FingerPingInterval on every node;
	// the distinct-node count is small, so linear dedup beats a map).
	nodes := n.pingScratch[:0]
	for _, f := range n.fingers {
		if !f.Valid() || f.Node == n.self.Node {
			continue
		}
		if containsNode(nodes, f.Node) {
			continue
		}
		nodes = append(nodes, f)
	}
	n.pingScratch = nodes
	if len(nodes) == 0 {
		return
	}
	start := n.nextPing % len(nodes)
	count := n.cfg.FingersPerPing
	if count > len(nodes) {
		count = len(nodes)
	}
	n.nextPing += count
	for k := 0; k < count; k++ {
		target := nodes[(start+k)%len(nodes)]
		n.net.Request(n.self.Node, target.Node, pingReq{}, n.cfg.RPCTimeout,
			func(_ any, err error) {
				if n.stopped || err == nil {
					return
				}
				n.clearFingersFor(target)
				n.dropIfSuccessor(target)
			})
	}
}

// dropIfSuccessor removes a node discovered dead from the successor
// list without waiting for the next stabilize round.
func (n *Node) dropIfSuccessor(dead Entry) {
	if containsNode(n.succs, dead.Node) {
		n.dropSuccessor(dead)
	}
}

// clearFingersFor wipes table entries pointing at a node believed dead,
// so routing stops forwarding into a black hole before the next
// refresh.
func (n *Node) clearFingersFor(dead Entry) {
	for i, f := range n.fingers {
		if f.Valid() && f.Node == dead.Node {
			n.fingers[i] = NoEntry
		}
	}
}

// Announce sends a notify to an arbitrary ring member, volunteering
// this node as its predecessor if closer. Applications use it to
// restore visibility when an ownership audit shows the ring routing
// around them.
func (n *Node) Announce(to Entry) {
	if n.stopped || !to.Valid() || to.Node == n.self.Node {
		return
	}
	n.net.Send(n.self.Node, to.Node, notifyMsg{From: n.self})
}

// Neighbors fetches target's predecessor and successor list — the same
// RPC stabilize uses, exported for overlays layered on the chord
// substrate: internal/koorde refreshes its de Bruijn pointer set from
// the ring neighborhood of a looked-up owner. cb runs once, on this
// node's clock goroutine; it is not called after Stop.
func (n *Node) Neighbors(target Entry, cb func(pred Entry, succs []Entry, err error)) {
	if !target.Valid() {
		cb(NoEntry, nil, ErrLookupFailed)
		return
	}
	n.net.Request(n.self.Node, target.Node, neighborsReq{}, n.cfg.RPCTimeout,
		func(resp any, err error) {
			if n.stopped {
				return
			}
			if err != nil {
				cb(NoEntry, nil, err)
				return
			}
			nb := resp.(neighborsResp)
			cb(nb.Pred, nb.Succs, nil)
		})
}

// FingerTable returns a copy of the non-empty finger entries, for
// diagnostics and tests.
func (n *Node) FingerTable() []Entry {
	var out []Entry
	for _, f := range n.fingers {
		if f.Valid() {
			out = append(out, f)
		}
	}
	return out
}
