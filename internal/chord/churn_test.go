package chord

import (
	"flowercdn/internal/runtime"
	"fmt"
	"testing"

	"flowercdn/internal/ids"
)

// TestRingSurvivesSustainedChurn joins and fails nodes continuously and
// verifies the survivors still form a consistent ring and resolve
// lookups correctly afterwards.
func TestRingSurvivesSustainedChurn(t *testing.T) {
	f := newRing(t, 40)
	const base = 20
	for i := 0; i < base; i++ {
		f.addPeer(ids.HashString(fmt.Sprintf("base-%d", i)))
	}
	f.settle(10 * runtime.Minute)

	// Churn: every 30 s one random peer fails and a new one joins.
	next := base
	for round := 0; round < 30; round++ {
		alive := f.aliveSorted()
		if len(alive) > 4 {
			victim := alive[f.rng.Intn(len(alive))]
			victim.node.Stop()
			f.net.Fail(victim.nid)
		}
		f.addPeer(ids.HashString(fmt.Sprintf("churn-%d", next)))
		next++
		f.settle(30 * runtime.Second)
	}
	// Chord guarantees eventual consistency: give stabilization bounded
	// time to converge after the churn stops, checking each round.
	consistent := false
	for round := 0; round < 40 && !consistent; round++ {
		f.settle(runtime.Minute)
		consistent = f.ringConsistent()
	}
	if !consistent {
		f.checkRingConsistent() // report the precise inconsistency
	}

	for trial := 0; trial < 25; trial++ {
		key := ids.ID(f.rng.Uint64())
		want := f.wantOwner(key)
		src := f.aliveSorted()[f.rng.Intn(len(f.aliveSorted()))]
		var got Entry
		src.node.Lookup(key, func(o Entry, _ int, err error) {
			if err == nil {
				got = o
			}
		})
		f.settle(runtime.Minute)
		if got.Node != want.nid {
			t.Fatalf("post-churn lookup wrong: got %v want %v", got, want.node.Self())
		}
	}
}

// TestClaimTransfersToNewPredecessor verifies the duplicate-prevention
// mechanism: a claim granted by the old arc owner must block rivals
// even after a new node takes over the arc.
func TestClaimTransfersToNewPredecessor(t *testing.T) {
	f := newRing(t, 41)
	a := f.addPeer(1 << 20)
	owner := f.addPeer(1 << 50) // owns (1<<20, 1<<50]
	f.settle(5 * runtime.Minute)

	// A claimant reserves pos at the owner but stalls before joining.
	pos := ids.ID(1 << 45)
	stalled := &testPeer{}
	stalled.nid = f.net.Join(stalled, f.net.Topology().Place(f.rng))
	granted := false
	f.net.Request(stalled.nid, owner.nid, claimReq{Pos: pos, Claimant: Entry{Node: stalled.nid, ID: pos}}, 0,
		func(resp any, err error) {
			if err == nil {
				granted = resp.(claimResp).Granted
			}
		})
	f.settle(runtime.Minute)
	if !granted {
		t.Fatal("setup: claim not granted")
	}

	// A new node integrates between the claimed position and the owner,
	// becoming the position's new arc owner.
	mid := f.addPeer(ids.ID(1<<45 + 1<<30))
	f.settle(5 * runtime.Minute)
	if owner.node.Predecessor().Node != mid.nid {
		t.Fatalf("setup: new node did not become predecessor (pred=%v)", owner.node.Predecessor())
	}

	// A rival claims through the ring: the transferred record must deny
	// it and point at the stalled claimant.
	rival := &testPeer{}
	rival.nid = f.net.Join(rival, f.net.Topology().Place(f.rng))
	n, _ := NewNode(f.cfg, f.net, f.rng.Split("rival"), rival, rival.nid, pos)
	rival.node = n
	var gotErr error
	var current Entry
	done := false
	n.JoinAt(a.node.Self(), func(cur Entry, err error) { current, gotErr, done = cur, err, true })
	f.settle(2 * runtime.Minute)
	if !done {
		t.Fatal("rival claim never resolved")
	}
	if gotErr == nil {
		t.Fatal("rival claim granted despite transferred reservation")
	}
	if current.Node != stalled.nid {
		t.Fatalf("rival pointed at %v, want stalled claimant %d", current, stalled.nid)
	}
}

// TestPingFingersEvictsDead verifies the dead-finger probe.
func TestPingFingersEvictsDead(t *testing.T) {
	f := newRing(t, 42)
	for i := 0; i < 10; i++ {
		f.addPeer(ids.HashString(fmt.Sprintf("pf-%d", i)))
	}
	f.settle(20 * runtime.Minute) // build fingers
	src := f.aliveSorted()[0]
	fingers := src.node.FingerTable()
	if len(fingers) == 0 {
		t.Fatal("setup: no fingers built")
	}
	// Kill every node src's fingers point at.
	for _, e := range fingers {
		for _, p := range f.peers {
			if p.nid == e.Node && f.net.Alive(p.nid) {
				p.node.Stop()
				f.net.Fail(p.nid)
			}
		}
	}
	// Within a few ping rounds, all dead fingers are cleared.
	f.settle(10 * f.cfg.FingerPingInterval)
	for _, e := range src.node.FingerTable() {
		if !f.net.Alive(e.Node) {
			t.Fatalf("dead finger %v survived the ping sweep", e)
		}
	}
}

// TestOwnsKeyDeniesDuringHealing: a node with a cleared predecessor
// must not serialize claims (the duplicate-position defence).
func TestOwnsKeyDeniesDuringHealing(t *testing.T) {
	f := newRing(t, 43)
	a := f.addPeer(100)
	b := f.addPeer(200)
	f.settle(10 * runtime.Minute)
	// Simulate a cleared predecessor on b.
	b.node.pred = NoEntry
	if b.node.OwnsKey(150) {
		t.Fatal("node with unknown predecessor claimed arc ownership")
	}
	if !b.node.OwnsKey(200) {
		t.Fatal("node must still own its exact identifier")
	}
	_ = a
}

// TestAnnounceRestoresVisibility: a node the ring routes around can
// re-insert itself by announcing to the arc owner.
func TestAnnounceRestoresVisibility(t *testing.T) {
	f := newRing(t, 44)
	a := f.addPeer(1 << 20)
	b := f.addPeer(1 << 40)
	f.settle(5 * runtime.Minute)
	// Surgically hide b: a forgets it entirely.
	a.node.succs = []Entry{a.node.self}
	a.node.pred = a.node.self
	for i := range a.node.fingers {
		a.node.fingers[i] = NoEntry
	}
	// b announces itself to a.
	b.node.Announce(a.node.Self())
	f.settle(5 * runtime.Minute)
	f.checkRingConsistent()
}

// TestLookupLatencyAccumulatesHops: lookups from a member across a
// settled ring report positive hop counts and complete within the
// engine's simulated latency budget.
func TestLookupHopAccounting(t *testing.T) {
	f := newRing(t, 45)
	for i := 0; i < 12; i++ {
		f.addPeer(ids.HashString(fmt.Sprintf("h-%d", i)))
	}
	f.settle(20 * runtime.Minute)
	src := f.aliveSorted()[0]
	key := f.aliveSorted()[6].node.Self().ID // somebody else's exact ID
	var hops int
	start := f.eng.Now()
	var took int64
	src.node.Lookup(key, func(_ Entry, h int, err error) {
		if err != nil {
			t.Errorf("lookup failed: %v", err)
		}
		hops = h
		took = f.eng.Now() - start
	})
	f.settle(runtime.Minute)
	if hops < 1 {
		t.Fatalf("hops = %d, want >= 1 for a remote key", hops)
	}
	if took <= 0 || took > 10*runtime.Second {
		t.Fatalf("lookup took %d ms, outside plausible bounds", took)
	}
}
