package chord

import (
	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
	"flowercdn/internal/trace"
)

// Client lets a peer that is NOT a ring member issue lookups and route
// payloads through a gateway member. This is how new clients use
// D-ring in the paper: they submit queries to the overlay without
// joining the structured layer themselves.
type Client struct {
	resolver
	cfg Config
	net runtime.Transport
	eng runtime.Clock
	me  runtime.NodeID
}

// NewClient builds a lookup client for the peer at me.
func NewClient(cfg Config, net runtime.Transport, me runtime.NodeID) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, net: net, eng: net.Clock(), me: me}
	c.resolver.init()
	return c, nil
}

// LookupVia resolves key's owner through the gateway ring member,
// retrying on timeout like Node.Lookup.
func (c *Client) LookupVia(gateway Entry, key ids.ID, cb func(owner Entry, hops int, err error)) {
	c.attempt(gateway, key, c.cfg.LookupRetries, cb)
}

func (c *Client) attempt(gateway Entry, key ids.ID, attempts int, cb func(Entry, int, error)) {
	req := nextReqID()
	p := &pendingLookup{cb: cb, retries: attempts - 1, key: key}
	c.pending[req] = p
	p.timer = c.eng.Schedule(c.cfg.LookupTimeout, func() { c.timedOut(req, gateway) })
	c.net.Send(c.me, gateway.Node, routeMsg{Key: key, ReqID: req, Origin: c.me})
}

func (c *Client) timedOut(req uint64, gateway Entry) {
	p, ok := c.pending[req]
	if !ok {
		return
	}
	if p.retries <= 0 {
		delete(c.pending, req)
		p.cb(NoEntry, 0, ErrLookupFailed)
		return
	}
	p.retries--
	delete(c.pending, req)
	fresh := nextReqID()
	c.pending[fresh] = p
	p.timer = c.eng.Schedule(c.cfg.LookupTimeout, func() { c.timedOut(fresh, gateway) })
	c.net.Send(c.me, gateway.Node, routeMsg{Key: p.key, ReqID: fresh, Origin: c.me})
}

// RouteVia sends an application payload toward key's owner through the
// gateway. One-way and best-effort; the owner's application answers the
// origin directly.
func (c *Client) RouteVia(gateway Entry, key ids.ID, payload any) {
	c.net.Send(c.me, gateway.Node, routeMsg{Key: key, Payload: payload, Origin: c.me})
}

// RouteViaTraced is RouteVia with hop tracing: path (owned by the
// message from here on) accumulates one HopRoute per overlay
// forwarding. The gateway handoff itself is not a ring forwarding and
// adds no hop, matching the Hops accounting.
func (c *Client) RouteViaTraced(gateway Entry, key ids.ID, payload any, path []trace.Hop) {
	c.net.Send(c.me, gateway.Node, routeMsg{Key: key, Payload: payload, Origin: c.me, Traced: true, Path: path})
}

// HandleMessage consumes lookup replies addressed to this client. It
// reports whether the message was Chord client traffic.
func (c *Client) HandleMessage(_ runtime.NodeID, msg any) bool {
	if m, ok := msg.(lookupReply); ok {
		return c.consumeReply(m)
	}
	return false
}
