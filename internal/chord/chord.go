// Package chord implements the Chord distributed hash table (Stoica et
// al., SIGCOMM 2001) on the simulated network, including recursive
// routing with hop accounting, finger tables, successor lists,
// periodic stabilization, and failure repair — "its routing and churn
// stabilization protocols", which the paper simulates as the substrate
// for both D-ring and the Squirrel baseline.
//
// Beyond textbook Chord, two features the paper's D-ring needs are
// provided:
//
//   - joining at a *chosen* identifier (directory-peer positions are
//     deterministic functions of (website, locality, instance));
//   - a claim protocol that serializes concurrent attempts to occupy
//     the same vacant position ("several peers may simultaneously
//     target the same vacant position; the one that first integrates
//     into D-ring succeeds", Sec. 5.2.2).
//
// A node is a component owned by an application peer: the application
// implements runtime.Handler and delegates Chord traffic to the node via
// HandleMessage/HandleRequest (both report whether they consumed the
// input).
package chord

import (
	"errors"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"
	"sync/atomic"

	"flowercdn/internal/ids"
	"flowercdn/internal/trace"
)

// Entry identifies a ring member: its network address and ring
// position. The zero value is not meaningful; use NoEntry for "none".
type Entry struct {
	Node runtime.NodeID
	ID   ids.ID
}

// NoEntry is the sentinel for an absent entry.
var NoEntry = Entry{Node: runtime.None}

// Valid reports whether the entry names a node.
func (e Entry) Valid() bool { return e.Node != runtime.None }

func (e Entry) String() string {
	if !e.Valid() {
		return "<none>"
	}
	return fmt.Sprintf("n%d@%s", e.Node, e.ID.Short())
}

// Config tunes the maintenance cadence.
type Config struct {
	// SuccessorListLen is the length of the successor list used for
	// failure repair (Chord suggests O(log N); 8 covers our rings).
	SuccessorListLen int
	// StabilizeInterval is the period of the successor-pointer repair
	// loop.
	StabilizeInterval int64
	// FixFingersInterval is the period of finger refresh; FingersPerFix
	// fingers are refreshed per firing.
	FixFingersInterval int64
	FingersPerFix      int
	// FingerPingInterval is the period of finger liveness probes;
	// FingersPerPing distinct finger nodes are pinged per firing. Dead
	// fingers black-hole one-way routed messages, so detecting them
	// fast matters far more under churn than re-pointing them
	// optimally.
	FingerPingInterval int64
	FingersPerPing     int
	// CheckPredInterval is the period of predecessor liveness probes.
	CheckPredInterval int64
	// RPCTimeout bounds every maintenance RPC.
	RPCTimeout int64
	// MaxHops is the routing TTL; messages exceeding it are dropped
	// (protects against transient ring inconsistency loops).
	MaxHops int
	// LookupTimeout bounds one routing attempt; LookupRetries is how
	// many attempts a Lookup makes before reporting failure.
	LookupTimeout int64
	LookupRetries int
	// ClaimTTL is how long a granted-but-not-yet-integrated position
	// claim blocks rival claimants.
	ClaimTTL int64
}

// DefaultConfig returns maintenance cadence suitable for the paper's
// churn level (mean uptime 60 min): pointers repair within tens of
// seconds, far faster than the mean failure interarrival per node.
func DefaultConfig() Config {
	return Config{
		SuccessorListLen:   8,
		StabilizeInterval:  30 * runtime.Second,
		FixFingersInterval: 40 * runtime.Second,
		FingersPerFix:      4,
		FingerPingInterval: 20 * runtime.Second,
		FingersPerPing:     4,
		CheckPredInterval:  45 * runtime.Second,
		RPCTimeout:         2 * runtime.Second,
		MaxHops:            2 * ids.Bits,
		LookupTimeout:      5 * runtime.Second,
		LookupRetries:      3,
		ClaimTTL:           30 * runtime.Second,
	}
}

// DemoConfig returns the overlay timescales for compressed wall-clock
// demos (harness.RealtimeDemoConfig and the socket backend): Table 1's
// protocol periods compress ~3600×, and the ring's maintenance must
// compress with them or it never stabilizes inside a seconds-scale
// horizon. Timeouts stay bounded below by the topology's real
// latencies (up to 500 ms one-way), so they shrink less than the
// intervals do.
func DemoConfig() Config {
	cfg := DefaultConfig()
	cfg.StabilizeInterval = 300 * runtime.Millisecond
	cfg.FixFingersInterval = 400 * runtime.Millisecond
	cfg.FingerPingInterval = 250 * runtime.Millisecond
	cfg.CheckPredInterval = 450 * runtime.Millisecond
	cfg.RPCTimeout = 1200 * runtime.Millisecond
	cfg.LookupTimeout = 2 * runtime.Second
	cfg.ClaimTTL = 2 * runtime.Second
	return cfg
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.SuccessorListLen < 1 {
		return errors.New("chord: successor list must hold at least 1 entry")
	}
	if c.StabilizeInterval <= 0 || c.FixFingersInterval <= 0 || c.CheckPredInterval <= 0 {
		return errors.New("chord: maintenance intervals must be positive")
	}
	if c.FingersPerFix < 1 {
		return errors.New("chord: FingersPerFix must be at least 1")
	}
	if c.FingerPingInterval <= 0 || c.FingersPerPing < 1 {
		return errors.New("chord: finger ping cadence out of range")
	}
	if c.RPCTimeout <= 0 || c.LookupTimeout <= 0 {
		return errors.New("chord: timeouts must be positive")
	}
	if c.MaxHops < 1 || c.LookupRetries < 1 {
		return errors.New("chord: MaxHops and LookupRetries must be at least 1")
	}
	if c.ClaimTTL <= 0 {
		return errors.New("chord: ClaimTTL must be positive")
	}
	return nil
}

// App receives application payloads routed over the ring.
type App interface {
	// OnRouted runs at the node that terminates routing for key. origin
	// is the network address that issued Route (it may not be a ring
	// member); hops is the number of overlay forwardings taken. path is
	// the hop-by-hop trace accumulated along the way — nil unless the
	// payload was injected with RouteTraced/RouteViaTraced.
	OnRouted(key ids.ID, payload any, origin runtime.NodeID, hops int, path []trace.Hop)
}

// Errors reported by lookups and joins.
var (
	ErrLookupFailed = errors.New("chord: lookup failed after retries")
	ErrOccupied     = errors.New("chord: position already occupied")
	ErrClaimDenied  = errors.New("chord: position claimed by another peer")
	ErrStopped      = errors.New("chord: node stopped")
)

// ---- wire messages ----

func init() {
	// The overlay's messages cross process boundaries on the socket
	// backend; register them with the shared wire-type registry so the
	// gob codec can decode them out of interface-typed frame fields.
	runtime.RegisterWireType(
		routeMsg{}, lookupReply{}, notifyMsg{},
		neighborsReq{}, neighborsResp{},
		pingReq{}, pingResp{},
		claimReq{}, claimResp{}, claimTransfer{},
	)
}

// routeMsg is forwarded greedily toward the owner of Key.
type routeMsg struct {
	Key     ids.ID
	Payload any    // nil for pure lookups
	ReqID   uint64 // nonzero: owner must send lookupReply to Origin
	Origin  runtime.NodeID
	Hops    int
	Deliver bool // set on the final hop: receiver is the owner
	// Traced marks a traced query: every forwarding appends a HopRoute
	// to Path. Untraced messages never touch Path, so the disabled
	// tracing path allocates nothing.
	Traced bool
	Path   []trace.Hop
}

// lookupReply answers a Lookup directly to its origin.
type lookupReply struct {
	ReqID uint64
	Owner Entry
	Hops  int
}

// notifyMsg implements Chord's notify(n').
type notifyMsg struct {
	From Entry
}

// neighborsReq/neighborsResp implement the stabilize probe (fetch
// predecessor and successor list in one RPC).
type neighborsReq struct{}

type neighborsResp struct {
	Pred  Entry
	Succs []Entry
}

// pingReq checks liveness.
type pingReq struct{}
type pingResp struct{}

// claimReq asks the current owner of Pos's arc to reserve the vacant
// position Pos for Claimant.
type claimReq struct {
	Pos      ids.ID
	Claimant Entry
}

type claimResp struct {
	Granted bool
	// Current is the entry blocking the claim when not granted: either
	// the node already at Pos, or the rival claimant holding the
	// reservation.
	Current Entry
}

// claimTransfer hands a reservation to the node that just became the
// owner of the arc containing Pos. Without it, a rival claiming through
// the new owner would be granted a duplicate position.
type claimTransfer struct {
	Pos      ids.ID
	Claimant Entry
}

type pendingLookup struct {
	cb      func(owner Entry, hops int, err error)
	timer   runtime.Timer
	retries int
	key     ids.ID
}

// reqCounter hands out lookup request IDs unique across every resolver
// in the process, so a peer that owns both a ring Node and a non-member
// Client can tell their replies apart. It is atomic because a process
// may run many independent simulations concurrently (internal/sweep);
// ID values only key reply matching, so cross-run interleaving cannot
// influence any run's behavior.
var reqCounter atomic.Uint64

func nextReqID() uint64 {
	return reqCounter.Add(1)
}

// resolver matches lookupReply messages to pending lookups. Both full
// nodes and non-member Clients embed it.
type resolver struct {
	pending map[uint64]*pendingLookup
}

func (r *resolver) init() { r.pending = make(map[uint64]*pendingLookup) }

// consumeReply reports whether the reply belonged to this resolver; an
// unknown ID may belong to another component of the same peer (or be a
// stale retry), so the caller must keep dispatching on false.
func (r *resolver) consumeReply(m lookupReply) bool {
	p, ok := r.pending[m.ReqID]
	if !ok {
		return false
	}
	delete(r.pending, m.ReqID)
	p.timer.Cancel()
	p.cb(m.Owner, m.Hops, nil)
	return true
}

// Node is one Chord ring member.
type Node struct {
	resolver
	cfg  Config
	net  runtime.Transport
	eng  runtime.Clock
	rng  *rnd.RNG
	app  App
	self Entry

	pred     Entry
	succs    []Entry // succs[0] is the immediate successor; never empty once started
	fingers  []Entry
	nextFix  int
	nextPing int

	// succsSpare and pingScratch are reusable backing arrays for the
	// per-round successor-list rebuild and the finger-ping dedup — both
	// fire on every node every maintenance interval, so allocating there
	// dominates a run's garbage (see BenchmarkFig3HitRatioOverTime).
	succsSpare  []Entry
	pingScratch []Entry

	claims map[ids.ID]claim // position reservations this node granted

	// contacts is a small cache of recently seen ring members used for
	// emergency re-joins: a node whose successor list drains completely
	// (every entry died before repair) would otherwise be stranded at
	// succ == self forever, invisible to the ring.
	contacts []Entry

	timers  []runtime.Ticker
	stopped bool
	started bool
}

type claim struct {
	claimant Entry
	expires  int64
}

// NewNode constructs a ring member for the application peer at nodeID
// that will sit at ring position ringID. Call Create or Join to enter a
// ring, after which the component must see all chord traffic via
// HandleMessage/HandleRequest.
func NewNode(cfg Config, net runtime.Transport, rng *rnd.RNG, app App, nodeID runtime.NodeID, ringID ids.ID) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if app == nil {
		return nil, errors.New("chord: nil app")
	}
	n := &Node{
		cfg:     cfg,
		net:     net,
		eng:     net.Clock(),
		rng:     rng,
		app:     app,
		self:    Entry{Node: nodeID, ID: ringID},
		pred:    NoEntry,
		fingers: make([]Entry, ids.Bits),
		claims:  make(map[ids.ID]claim),
	}
	for i := range n.fingers {
		n.fingers[i] = NoEntry
	}
	n.resolver.init()
	return n, nil
}

// Self returns this node's entry.
func (n *Node) Self() Entry { return n.self }

// Successor returns the immediate successor (self on a fresh ring).
func (n *Node) Successor() Entry {
	if len(n.succs) == 0 {
		return n.self
	}
	return n.succs[0]
}

// SuccessorList returns a copy of the successor list.
func (n *Node) SuccessorList() []Entry {
	out := make([]Entry, len(n.succs))
	copy(out, n.succs)
	return out
}

// Predecessor returns the current predecessor (possibly NoEntry).
func (n *Node) Predecessor() Entry { return n.pred }

// Stopped reports whether Stop was called.
func (n *Node) Stopped() bool { return n.stopped }

// Create starts a brand-new ring with this node as its only member.
func (n *Node) Create() {
	n.succs = []Entry{n.self}
	n.pred = n.self
	n.start()
}

// Join enters the ring known through gateway. cb runs once with nil on
// success or an error when the gateway could not resolve our position.
func (n *Node) Join(gateway Entry, cb func(error)) {
	if n.started {
		panic("chord: Join on started node")
	}
	n.lookupVia(gateway, n.self.ID, func(owner Entry, _ int, err error) {
		if n.stopped {
			return
		}
		if err != nil {
			cb(err)
			return
		}
		if owner.Node == n.self.Node {
			cb(fmt.Errorf("chord: join resolved to self"))
			return
		}
		n.succs = []Entry{owner}
		n.pred = NoEntry
		n.start()
		// Stabilize immediately: a single-entry successor list is a
		// single point of failure until the first merge, and under heavy
		// churn that successor may not survive a full interval.
		n.stabilize()
		cb(nil)
	})
}

func (n *Node) start() {
	n.started = true
	jitter := func(p int64) int64 { return n.rng.UniformDuration(0, p) }
	n.timers = append(n.timers,
		n.eng.Every(jitter(n.cfg.StabilizeInterval), n.cfg.StabilizeInterval, n.stabilize),
		n.eng.Every(jitter(n.cfg.FixFingersInterval), n.cfg.FixFingersInterval, n.fixFingers),
		n.eng.Every(jitter(n.cfg.FingerPingInterval), n.cfg.FingerPingInterval, n.pingFingers),
		n.eng.Every(jitter(n.cfg.CheckPredInterval), n.cfg.CheckPredInterval, n.checkPredecessor),
	)
}

// Stop cancels all maintenance. The owning peer calls it when failing
// or leaving.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	for _, t := range n.timers {
		t.Cancel()
	}
	for id, p := range n.pending {
		p.timer.Cancel()
		delete(n.pending, id)
	}
}
