package chord

import (
	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
	"flowercdn/internal/trace"
)

// Binary wire marshallers for the overlay's messages (the
// runtime.WireMessage side of the types registered in chord.go and
// registry.go). Field order mirrors the struct declarations; ring
// identifiers travel as fixed 8-byte words because they are uniform
// hashes and would cost 10 bytes as varints.

// AppendWire appends an Entry: node address plus ring position.
func (e Entry) AppendWire(w *runtime.WireWriter) {
	w.Node(e.Node)
	w.U64(uint64(e.ID))
}

// DecodeEntryWire reads one Entry.
func DecodeEntryWire(r *runtime.WireReader) Entry {
	n := r.Node()
	id := ids.ID(r.U64())
	return Entry{Node: n, ID: id}
}

// AppendEntriesWire appends a length-prefixed Entry slice.
func AppendEntriesWire(w *runtime.WireWriter, es []Entry) {
	w.Uvarint(uint64(len(es)))
	for _, e := range es {
		e.AppendWire(w)
	}
}

// DecodeEntriesWire reads a length-prefixed Entry slice (nil when
// empty). Each entry costs at least nine bytes on the wire.
func DecodeEntriesWire(r *runtime.WireReader) []Entry {
	n := r.ArrayLen(9)
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]Entry, n)
	for i := range out {
		out[i] = DecodeEntryWire(r)
	}
	return out
}

func (m routeMsg) AppendWire(w *runtime.WireWriter) {
	w.U64(uint64(m.Key))
	w.Any(m.Payload)
	w.Uvarint(m.ReqID)
	w.Node(m.Origin)
	w.Int(m.Hops)
	w.Bool(m.Deliver)
	w.Bool(m.Traced)
	trace.AppendHopsWire(w, m.Path)
}

func (routeMsg) DecodeWire(r *runtime.WireReader) any {
	var m routeMsg
	m.Key = ids.ID(r.U64())
	m.Payload = r.Any()
	m.ReqID = r.Uvarint()
	m.Origin = r.Node()
	m.Hops = r.Int()
	m.Deliver = r.Bool()
	m.Traced = r.Bool()
	m.Path = trace.DecodeHopsWire(r)
	return m
}

func (m lookupReply) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.ReqID)
	m.Owner.AppendWire(w)
	w.Int(m.Hops)
}

func (lookupReply) DecodeWire(r *runtime.WireReader) any {
	var m lookupReply
	m.ReqID = r.Uvarint()
	m.Owner = DecodeEntryWire(r)
	m.Hops = r.Int()
	return m
}

func (m notifyMsg) AppendWire(w *runtime.WireWriter) { m.From.AppendWire(w) }

func (notifyMsg) DecodeWire(r *runtime.WireReader) any {
	return notifyMsg{From: DecodeEntryWire(r)}
}

func (neighborsReq) AppendWire(*runtime.WireWriter) {}

func (neighborsReq) DecodeWire(*runtime.WireReader) any { return neighborsReq{} }

func (m neighborsResp) AppendWire(w *runtime.WireWriter) {
	m.Pred.AppendWire(w)
	AppendEntriesWire(w, m.Succs)
}

func (neighborsResp) DecodeWire(r *runtime.WireReader) any {
	var m neighborsResp
	m.Pred = DecodeEntryWire(r)
	m.Succs = DecodeEntriesWire(r)
	return m
}

func (pingReq) AppendWire(*runtime.WireWriter) {}

func (pingReq) DecodeWire(*runtime.WireReader) any { return pingReq{} }

func (pingResp) AppendWire(*runtime.WireWriter) {}

func (pingResp) DecodeWire(*runtime.WireReader) any { return pingResp{} }

func (m claimReq) AppendWire(w *runtime.WireWriter) {
	w.U64(uint64(m.Pos))
	m.Claimant.AppendWire(w)
}

func (claimReq) DecodeWire(r *runtime.WireReader) any {
	var m claimReq
	m.Pos = ids.ID(r.U64())
	m.Claimant = DecodeEntryWire(r)
	return m
}

func (m claimResp) AppendWire(w *runtime.WireWriter) {
	w.Bool(m.Granted)
	m.Current.AppendWire(w)
}

func (claimResp) DecodeWire(r *runtime.WireReader) any {
	var m claimResp
	m.Granted = r.Bool()
	m.Current = DecodeEntryWire(r)
	return m
}

func (m claimTransfer) AppendWire(w *runtime.WireWriter) {
	w.U64(uint64(m.Pos))
	m.Claimant.AppendWire(w)
}

func (claimTransfer) DecodeWire(r *runtime.WireReader) any {
	var m claimTransfer
	m.Pos = ids.ID(r.U64())
	m.Claimant = DecodeEntryWire(r)
	return m
}

func (m GatewayAnnounce) AppendWire(w *runtime.WireWriter) { m.E.AppendWire(w) }

func (GatewayAnnounce) DecodeWire(r *runtime.WireReader) any {
	return GatewayAnnounce{E: DecodeEntryWire(r)}
}

func (m GatewayRetract) AppendWire(w *runtime.WireWriter) { w.Node(m.Node) }

func (GatewayRetract) DecodeWire(r *runtime.WireReader) any {
	return GatewayRetract{Node: r.Node()}
}
