package chord

import (
	"sort"
	"testing"

	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
)

// busHub wires N fake per-process buses together the way the socket
// backend's announcement bus does: an Announce from one process is
// delivered to every OTHER process's subscribers, never back to the
// announcer (the announcer already applied the change locally).
type busHub struct {
	peers []*fakeBus
}

type fakeBus struct {
	// The embedded nil Transport makes the fake satisfy
	// runtime.Transport so BindBus accepts it; the registry only ever
	// uses the Bus half, so the nil methods are never reached.
	runtime.Transport
	hub  *busHub
	subs []func(msg any)
}

func (h *busHub) bus() *fakeBus {
	b := &fakeBus{hub: h}
	h.peers = append(h.peers, b)
	return b
}

func (b *fakeBus) Announce(msg any) {
	for _, p := range b.hub.peers {
		if p == b {
			continue
		}
		for _, fn := range p.subs {
			fn(msg)
		}
	}
}

func (b *fakeBus) Subscribe(fn func(msg any)) { b.subs = append(b.subs, fn) }

func nodesOf(r *Registry) []runtime.NodeID {
	var out []runtime.NodeID
	for _, e := range r.Entries {
		out = append(out, e.Node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameNodes(a, b []runtime.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRegistryAddDeduplicates(t *testing.T) {
	var r Registry
	r.Add(Entry{Node: 1, ID: 10})
	r.Add(Entry{Node: 1, ID: 10})
	r.Add(Entry{Node: 2, ID: 20})
	if r.Len() != 2 {
		t.Fatalf("Len = %d after duplicate Add, want 2", r.Len())
	}
}

func TestRegistryRemoveAbsentIsNoop(t *testing.T) {
	var r Registry
	r.Add(Entry{Node: 1, ID: 10})
	r.Remove(99)
	if r.Len() != 1 {
		t.Fatalf("Len = %d after removing an absent node, want 1", r.Len())
	}
	r.Remove(1)
	if r.Len() != 0 {
		t.Fatalf("Len = %d after removing the only node, want 0", r.Len())
	}
}

// TestRegistryMirrorConvergence is the unit-level version of what PR
// 5's socket smoke only checked end-to-end: registries bound to
// cooperating buses converge on the same gateway set no matter which
// process each Add/Remove originates from.
func TestRegistryMirrorConvergence(t *testing.T) {
	hub := &busHub{}
	regs := make([]*Registry, 3)
	for i := range regs {
		regs[i] = &Registry{}
		regs[i].BindBus(hub.bus())
	}

	regs[0].Add(Entry{Node: 1, ID: 10})
	regs[1].Add(Entry{Node: 2, ID: 20})
	regs[2].Add(Entry{Node: 3, ID: 30})
	regs[1].Remove(1)

	want := nodesOf(regs[0])
	for i, r := range regs {
		if got := nodesOf(r); !sameNodes(got, want) {
			t.Fatalf("registry %d diverged: %v vs %v", i, got, want)
		}
	}
	if !sameNodes(want, []runtime.NodeID{2, 3}) {
		t.Fatalf("converged set %v, want [2 3]", want)
	}
}

// TestRegistryAnnounceRetractRace pins down the interleaving semantics:
// the mirrors are last-write-wins per delivery order, so whichever of
// Add/Remove lands second decides — but every mirror must decide the
// SAME way, and a re-Add after a retract must resurrect the entry on
// every mirror (the dedup check must not swallow it).
func TestRegistryAnnounceRetractRace(t *testing.T) {
	hub := &busHub{}
	a, b := &Registry{}, &Registry{}
	a.BindBus(hub.bus())
	b.BindBus(hub.bus())

	// Add then retract, from different processes: everyone ends empty.
	a.Add(Entry{Node: 7, ID: 70})
	b.Remove(7)
	if a.Len() != 0 || b.Len() != 0 {
		t.Fatalf("after add/retract: a=%v b=%v, want both empty", nodesOf(a), nodesOf(b))
	}

	// Retract then re-add: the entry must come back on both sides.
	a.Add(Entry{Node: 7, ID: 70})
	if !sameNodes(nodesOf(a), nodesOf(b)) || a.Len() != 1 {
		t.Fatalf("re-add did not resurrect: a=%v b=%v", nodesOf(a), nodesOf(b))
	}

	// A duplicate announce arriving at a mirror that already has the
	// entry (both sides add the same node) must not double it.
	b.Add(Entry{Node: 7, ID: 70})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("cross-announce duplicated the entry: a=%v b=%v", nodesOf(a), nodesOf(b))
	}
}

// TestRegistryFollowerMirrors checks the pure-follower role: a
// registry that only listens (a process whose own members never become
// gateways) still tracks the leaders' announcements and retractions.
func TestRegistryFollowerMirrors(t *testing.T) {
	hub := &busHub{}
	leader, follower := &Registry{}, &Registry{}
	leader.BindBus(hub.bus())
	follower.BindBus(hub.bus())

	for i := 1; i <= 5; i++ {
		leader.Add(Entry{Node: runtime.NodeID(i), ID: 0})
	}
	leader.Remove(3)
	if got := nodesOf(follower); !sameNodes(got, []runtime.NodeID{1, 2, 4, 5}) {
		t.Fatalf("follower mirror %v, want [1 2 4 5]", got)
	}
}

// TestRegistryPickAlivePolls exercises the lazy liveness polling:
// PickAlive prunes dead entries as it draws them — locally only, no
// retraction announced — honors the exclusion, and reports NoEntry
// once nothing eligible remains.
func TestRegistryPickAlivePolls(t *testing.T) {
	hub := &busHub{}
	a, b := &Registry{}, &Registry{}
	a.BindBus(hub.bus())
	b.BindBus(hub.bus())
	for i := 1; i <= 4; i++ {
		a.Add(Entry{Node: runtime.NodeID(i), ID: 0})
	}

	// Process a's liveness view: nodes 1 and 2 died.
	alive := func(n runtime.NodeID) bool { return n >= 3 }
	rng := rnd.New(1)
	for i := 0; i < 20; i++ {
		e := a.PickAlive(rng, alive, runtime.None)
		if !e.Valid() || !alive(e.Node) {
			t.Fatalf("draw %d returned %v", i, e)
		}
	}
	if a.Len() != 2 {
		t.Fatalf("dead entries not pruned: Len = %d, want 2", a.Len())
	}
	// Prunes are local: the other mirror still holds all four until its
	// own draws age them out.
	if b.Len() != 4 {
		t.Fatalf("prune leaked across the bus: follower Len = %d, want 4", b.Len())
	}

	// Excluding one of the two survivors always yields the other.
	for i := 0; i < 20; i++ {
		if e := a.PickAlive(rng, alive, 3); e.Node != 4 {
			t.Fatalf("exclusion violated: drew %v", e)
		}
	}
	// With only the excluded node eligible, give up rather than spin.
	a.removeLocal(4)
	if e := a.PickAlive(rng, alive, 3); e.Valid() {
		t.Fatalf("PickAlive returned %v with only the excluded node left, want NoEntry", e)
	}

	// All dead: NoEntry, and the scan empties the slice.
	everyoneDead := func(runtime.NodeID) bool { return false }
	if e := b.PickAlive(rng, everyoneDead, runtime.None); e.Valid() {
		t.Fatalf("PickAlive over a dead set returned %v", e)
	}
	if b.Len() != 0 {
		t.Fatalf("dead scan left %d entries", b.Len())
	}
}
