package chord

import (
	"flowercdn/internal/ids"
)

// onClaim serializes attempts to occupy a vacant position on this
// node's arc (paper Sec. 5.2.2: several peers may simultaneously target
// the same vacant directory position; only the first succeeds). The
// current owner of the arc containing Pos acts as the serialization
// point: it grants the first claim and denies every rival, pointing it
// at the granted claimant. Two nodes at the same ring identifier would
// corrupt ring arithmetic, so a reservation is NEVER released on time
// alone — the winner may already be integrated yet invisible to
// lookups for a stabilization period. Instead, a denied claim triggers
// an asynchronous liveness probe of the record's claimant (rate-limited
// by ClaimTTL); only a confirmed-dead claimant frees the position for
// the rival's retry.
func (n *Node) onClaim(r claimReq) (claimResp, error) {
	// If we *are* the claimed position, it is occupied by definition.
	if r.Pos == n.self.ID {
		return claimResp{Granted: false, Current: n.self}, nil
	}
	if c, ok := n.claims[r.Pos]; ok {
		if c.claimant.Node == r.Claimant.Node {
			// Same peer retrying: still its reservation.
			return claimResp{Granted: true}, nil
		}
		n.verifyClaimant(r.Pos)
		return claimResp{Granted: false, Current: c.claimant}, nil
	}
	// Only the arc owner may serialize claims. During ring healing a
	// stale node can still receive a claim routed through old pointers;
	// granting from there would allow duplicate positions.
	if !n.OwnsKey(r.Pos) {
		return claimResp{Granted: false, Current: NoEntry}, nil
	}
	n.claims[r.Pos] = claim{claimant: r.Claimant, expires: n.eng.Now() + n.cfg.ClaimTTL}
	return claimResp{Granted: true}, nil
}

// verifyClaimant pings the holder of a reservation and frees the
// position if it is dead. ClaimTTL acts as a probe rate limit so claim
// storms do not multiply pings.
func (n *Node) verifyClaimant(pos ids.ID) {
	c, ok := n.claims[pos]
	if !ok || n.eng.Now() < c.expires {
		return
	}
	c.expires = n.eng.Now() + n.cfg.ClaimTTL
	n.claims[pos] = c
	claimant := c.claimant
	n.net.Request(n.self.Node, claimant.Node, pingReq{}, n.cfg.RPCTimeout,
		func(_ any, err error) {
			if n.stopped || err == nil {
				return
			}
			if cur, ok := n.claims[pos]; ok && cur.claimant.Node == claimant.Node {
				delete(n.claims, pos)
			}
		})
}

// JoinAt occupies the specific ring position pos, which must equal the
// node's own ring ID. The sequence is: resolve pos's current owner via
// the gateway, detect occupancy, reserve the position with the owner,
// then join with the owner as successor. cb receives:
//
//   - nil on success (this node is now the directory peer at pos);
//   - ErrOccupied with current set to the incumbent;
//   - ErrClaimDenied with current set to the winning rival;
//   - ErrLookupFailed when the ring could not be consulted.
func (n *Node) JoinAt(gateway Entry, cb func(current Entry, err error)) {
	if n.started {
		panic("chord: JoinAt on started node")
	}
	pos := n.self.ID
	n.lookupVia(gateway, pos, func(owner Entry, _ int, err error) {
		if n.stopped {
			return
		}
		if err != nil {
			cb(NoEntry, err)
			return
		}
		if owner.ID == pos {
			// Somebody (maybe a freshly integrated rival) already sits
			// exactly at the position.
			cb(owner, ErrOccupied)
			return
		}
		n.net.Request(n.self.Node, owner.Node, claimReq{Pos: pos, Claimant: n.self},
			n.cfg.RPCTimeout, func(resp any, rerr error) {
				if n.stopped {
					return
				}
				if rerr != nil {
					// Owner died mid-claim; report as a lookup failure so
					// the caller retries from scratch.
					cb(NoEntry, ErrLookupFailed)
					return
				}
				cr := resp.(claimResp)
				if !cr.Granted {
					// Current may be the reserved claimant (its ID equals
					// pos) or NoEntry when the probed node was not the
					// arc owner; either way the claim lost.
					cb(cr.Current, ErrClaimDenied)
					return
				}
				n.succs = []Entry{owner}
				n.pred = NoEntry
				n.start()
				// Announce immediately instead of waiting a stabilize
				// period: the owner's predecessor pointer is how the rest
				// of the ring discovers us. Stabilize right away too, so
				// the successor list stops being a single point of
				// failure.
				n.notifySuccessor()
				n.stabilize()
				cb(NoEntry, nil)
			})
	})
}

// OwnsKey reports whether, per this node's current view, key falls on
// its arc (pred, self]. A single-node ring owns every key. With an
// unknown predecessor (cleared by a liveness probe, mid-healing) the
// answer is NO: granting position claims without a known arc boundary
// is how duplicate directory positions are born — the claimant simply
// retries once the ring converges. Note that a predecessor pointer at
// a *dead* node still defines the correct arc arithmetic, so the
// common heal path (my predecessor just died, its replacement claims
// through me) is granted immediately.
func (n *Node) OwnsKey(key ids.ID) bool {
	if key == n.self.ID {
		return true
	}
	if n.pred.Node == n.self.Node {
		return true // alone on the ring
	}
	if !n.pred.Valid() {
		return false // healing: arc boundary unknown, deny and let retry
	}
	if key == n.pred.ID {
		// The key IS our predecessor's position. Claims for it reach us
		// only when that predecessor died (a live holder would have
		// received the routed claim itself), and its replacement is
		// exactly the claim we must serialize — D-ring positions are
		// reused across holder generations.
		return true
	}
	return ids.BetweenRightIncl(key, n.pred.ID, n.self.ID)
}
