package chord

import (
	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
	"flowercdn/internal/trace"
)

// Lookup resolves the owner (successor) of key, retrying on timeout.
// cb runs exactly once with (owner, overlay hops, nil) or (NoEntry, 0,
// ErrLookupFailed). The accumulated simulated time until cb runs is the
// lookup latency the metrics record.
func (n *Node) Lookup(key ids.ID, cb func(owner Entry, hops int, err error)) {
	n.lookupAttempt(key, n.cfg.LookupRetries, cb, n.routeLocal)
}

// lookupVia resolves key through an external gateway — used while
// joining, before this node can route itself.
func (n *Node) lookupVia(gateway Entry, key ids.ID, cb func(Entry, int, error)) {
	n.lookupAttempt(key, n.cfg.LookupRetries, cb, func(m routeMsg) {
		n.net.Send(n.self.Node, gateway.Node, m)
	})
}

// lookupAttempt registers a pending lookup and injects the route
// message with the given starter, retrying until attempts run out.
func (n *Node) lookupAttempt(key ids.ID, attempts int, cb func(Entry, int, error), start func(routeMsg)) {
	req := nextReqID()
	p := &pendingLookup{cb: cb, retries: attempts - 1, key: key}
	n.pending[req] = p
	p.timer = n.eng.Schedule(n.cfg.LookupTimeout, func() { n.lookupTimedOut(req, start) })
	start(routeMsg{Key: key, ReqID: req, Origin: n.self.Node})
}

func (n *Node) lookupTimedOut(req uint64, start func(routeMsg)) {
	p, ok := n.pending[req]
	if !ok {
		return
	}
	if n.stopped {
		delete(n.pending, req)
		p.cb(NoEntry, 0, ErrStopped)
		return
	}
	if p.retries <= 0 {
		delete(n.pending, req)
		p.cb(NoEntry, 0, ErrLookupFailed)
		return
	}
	p.retries--
	// Re-key the pending entry under a fresh request id so a straggler
	// reply to the old attempt is ignored (it would double-fire cb).
	delete(n.pending, req)
	fresh := nextReqID()
	n.pending[fresh] = p
	p.timer = n.eng.Schedule(n.cfg.LookupTimeout, func() { n.lookupTimedOut(fresh, start) })
	start(routeMsg{Key: p.key, ReqID: fresh, Origin: n.self.Node})
}

// Route forwards an application payload to the owner of key; the
// owner's App.OnRouted fires. Delivery is best-effort one-way, exactly
// like the paper's query routing: a lost query is recovered by the
// application's own retry (a client re-submits).
func (n *Node) Route(key ids.ID, payload any) {
	n.routeLocal(routeMsg{Key: key, Payload: payload, Origin: n.self.Node})
}

// RouteTraced is Route with hop tracing: path (owned by the message
// from here on) accumulates one HopRoute per overlay forwarding and
// arrives at the owner's OnRouted.
func (n *Node) RouteTraced(key ids.ID, payload any, path []trace.Hop) {
	n.routeLocal(routeMsg{Key: key, Payload: payload, Origin: n.self.Node, Traced: true, Path: path})
}

// routeLocal treats this node as the current routing step without
// consuming network latency (a node consulting itself is local work).
func (n *Node) routeLocal(m routeMsg) {
	n.routeStep(m)
}

// routeStep implements one step of recursive Chord routing.
func (n *Node) routeStep(m routeMsg) {
	if n.stopped {
		return
	}
	if m.Deliver {
		n.deliver(m)
		return
	}
	if m.Hops >= n.cfg.MaxHops {
		return // TTL exceeded: drop; origin's timeout recovers
	}
	succ := n.Successor()
	// Single-node ring or self-owned key: deliver locally.
	if succ.Node == n.self.Node || m.Key == n.self.ID {
		n.deliver(m)
		return
	}
	if ids.BetweenRightIncl(m.Key, n.self.ID, succ.ID) {
		// Our successor owns the key: final hop.
		m.Deliver = true
		m.Hops++
		n.traceForward(&m, succ.Node)
		n.net.Send(n.self.Node, succ.Node, m)
		return
	}
	next := n.closestPreceding(m.Key)
	if next.Node == n.self.Node || !next.Valid() {
		// Routing state offers nothing closer; fall forward along the
		// ring to guarantee progress.
		next = succ
	}
	m.Hops++
	n.traceForward(&m, next.Node)
	n.net.Send(n.self.Node, next.Node, m)
}

// traceForward records one overlay forwarding on a traced message —
// kept beside the Hops increments so the traced path's HopRoute count
// equals Hops by construction.
func (n *Node) traceForward(m *routeMsg, dest runtime.NodeID) {
	if !m.Traced {
		return
	}
	m.Path = trace.Append(m.Path, trace.Hop{
		Kind: trace.HopRoute,
		Node: dest,
		Loc:  n.net.Locality(dest),
		At:   n.eng.Now(),
	})
}

// deliver terminates routing at this node.
func (n *Node) deliver(m routeMsg) {
	if m.ReqID != 0 {
		reply := lookupReply{ReqID: m.ReqID, Owner: n.self, Hops: m.Hops}
		if m.Origin == n.self.Node {
			// Local lookup that resolved to ourselves.
			n.consumeReply(reply)
		} else {
			n.net.Send(n.self.Node, m.Origin, reply)
		}
	}
	if m.Payload != nil {
		n.app.OnRouted(m.Key, m.Payload, m.Origin, m.Hops, m.Path)
	}
}

// closestPreceding scans fingers and the successor list for the node
// with the largest ID in (self, key) — the classic greedy step.
func (n *Node) closestPreceding(key ids.ID) Entry {
	best := NoEntry
	consider := func(e Entry) {
		if !e.Valid() || e.Node == n.self.Node {
			return
		}
		if !ids.Between(e.ID, n.self.ID, key) {
			return
		}
		if !best.Valid() || ids.Between(best.ID, n.self.ID, e.ID) {
			best = e
		}
	}
	for i := len(n.fingers) - 1; i >= 0; i-- {
		consider(n.fingers[i])
	}
	for _, s := range n.succs {
		consider(s)
	}
	return best
}

// HandleMessage consumes Chord one-way messages. It reports whether the
// message belonged to Chord; the owning peer tries other components
// when it returns false.
func (n *Node) HandleMessage(from runtime.NodeID, msg any) bool {
	switch m := msg.(type) {
	case routeMsg:
		n.routeStep(m)
		return true
	case lookupReply:
		return n.consumeReply(m)
	case notifyMsg:
		n.onNotify(m.From)
		return true
	case claimTransfer:
		n.onClaimTransfer(m)
		return true
	default:
		return false
	}
}

// HandleRequest consumes Chord RPCs; handled reports whether the
// request was Chord traffic.
func (n *Node) HandleRequest(from runtime.NodeID, req any) (resp any, err error, handled bool) {
	switch r := req.(type) {
	case neighborsReq:
		resp, err = n.onNeighbors()
		return resp, err, true
	case pingReq:
		return pingResp{}, nil, true
	case claimReq:
		resp, err = n.onClaim(r)
		return resp, err, true
	default:
		return nil, nil, false
	}
}
