package chord

import (
	"errors"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/simrt"
	"fmt"
	"sort"
	"testing"

	"flowercdn/internal/ids"
	"flowercdn/internal/topology"
	"flowercdn/internal/trace"
)

// testPeer is the minimal application peer wrapping a chord Node.
type testPeer struct {
	node   *Node
	nid    runtime.NodeID
	routed []routedRecord
}

type routedRecord struct {
	key    ids.ID
	origin runtime.NodeID
	hops   int
	pay    any
}

func (p *testPeer) OnRouted(key ids.ID, payload any, origin runtime.NodeID, hops int, _ []trace.Hop) {
	p.routed = append(p.routed, routedRecord{key: key, origin: origin, hops: hops, pay: payload})
}

func (p *testPeer) HandleMessage(from runtime.NodeID, msg any) {
	if p.node.HandleMessage(from, msg) {
		return
	}
}

func (p *testPeer) HandleRequest(from runtime.NodeID, req any) (any, error) {
	if resp, err, ok := p.node.HandleRequest(from, req); ok {
		return resp, err
	}
	return nil, fmt.Errorf("unhandled request %T", req)
}

type ringFixture struct {
	t     *testing.T
	eng   *simrt.Runtime
	net   runtime.Transport
	rng   *rnd.RNG
	cfg   Config
	peers []*testPeer
}

func newRing(t *testing.T, seed uint64) *ringFixture {
	t.Helper()
	rng := rnd.New(seed)
	topo := topology.MustNew(topology.DefaultConfig(), rng)
	eng := simrt.New(topo)
	return &ringFixture{
		t:   t,
		eng: eng,
		net: eng.Net(),
		rng: rng,
		cfg: DefaultConfig(),
	}
}

// addPeer creates a peer at ring position id; if first, it creates the
// ring, otherwise it joins via peers[0].
func (f *ringFixture) addPeer(id ids.ID) *testPeer {
	f.t.Helper()
	p := &testPeer{}
	p.nid = f.net.Join(p, f.net.Topology().Place(f.rng))
	n, err := NewNode(f.cfg, f.net, f.rng.Split(fmt.Sprint(id)), p, p.nid, id)
	if err != nil {
		f.t.Fatal(err)
	}
	p.node = n
	if len(f.peers) == 0 {
		n.Create()
	} else {
		// Join through any alive member; under churn fixtures the first
		// peer may be long dead.
		var gw Entry
		for _, q := range f.peers {
			if f.net.Alive(q.nid) {
				gw = q.node.Self()
				break
			}
		}
		if !gw.Valid() {
			f.t.Fatalf("no alive gateway for join of %s", id)
		}
		joined := false
		attempts := 0
		var try func()
		try = func() {
			attempts++
			n.Join(gw, func(err error) {
				if err == nil {
					joined = true
					return
				}
				if attempts < 3 {
					f.eng.Schedule(10*runtime.Second, try)
				}
			})
		}
		try()
		f.eng.Run(f.eng.Now() + 2*runtime.Minute)
		if !joined {
			// Churny rings can defeat a join; treat the peer as dead so
			// consistency checks skip it.
			n.Stop()
			f.net.Fail(p.nid)
		}
	}
	f.peers = append(f.peers, p)
	return p
}

// settle runs enough simulated time for stabilization to converge.
func (f *ringFixture) settle(d int64) {
	f.eng.Run(f.eng.Now() + d)
}

// aliveSorted returns alive peers sorted by ring ID.
func (f *ringFixture) aliveSorted() []*testPeer {
	var out []*testPeer
	for _, p := range f.peers {
		if f.net.Alive(p.nid) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].node.Self().ID < out[j].node.Self().ID })
	return out
}

// wantOwner computes the reference successor of key over alive peers.
func (f *ringFixture) wantOwner(key ids.ID) *testPeer {
	alive := f.aliveSorted()
	for _, p := range alive {
		if p.node.Self().ID >= key {
			return p
		}
	}
	return alive[0] // wrap
}

// ringConsistent reports whether successor pointers of alive peers form
// the sorted cycle.
func (f *ringFixture) ringConsistent() bool {
	alive := f.aliveSorted()
	for i, p := range alive {
		want := alive[(i+1)%len(alive)]
		if p.node.Successor().Node != want.nid {
			return false
		}
	}
	return true
}

// checkRingConsistent verifies that successor pointers of alive peers
// form the sorted cycle.
func (f *ringFixture) checkRingConsistent() {
	f.t.Helper()
	alive := f.aliveSorted()
	for i, p := range alive {
		want := alive[(i+1)%len(alive)]
		got := p.node.Successor()
		if got.Node != want.nid {
			f.t.Fatalf("peer %s successor = %s, want %s",
				p.node.Self(), got, want.node.Self())
		}
	}
}

func TestSingleNodeRingOwnsEverything(t *testing.T) {
	f := newRing(t, 1)
	p := f.addPeer(ids.ID(1000))
	f.settle(2 * runtime.Minute)
	var owner Entry
	p.node.Lookup(ids.ID(12345), func(o Entry, _ int, err error) {
		if err != nil {
			t.Fatal(err)
		}
		owner = o
	})
	f.settle(10 * runtime.Second)
	if owner.Node != p.nid {
		t.Fatalf("single node should own all keys, got %s", owner)
	}
}

func TestRingFormsAndStabilizes(t *testing.T) {
	f := newRing(t, 2)
	idsList := []ids.ID{100, 5000, 2 << 40, 9 << 55, 3 << 30, 7 << 50, 1 << 20, 5 << 60}
	for _, id := range idsList {
		f.addPeer(id)
	}
	f.settle(5 * runtime.Minute)
	f.checkRingConsistent()
	// Predecessors must also be consistent.
	alive := f.aliveSorted()
	for i, p := range alive {
		want := alive[(i+len(alive)-1)%len(alive)]
		if got := p.node.Predecessor(); !got.Valid() || got.Node != want.nid {
			t.Fatalf("peer %s predecessor = %s, want %s", p.node.Self(), got, want.node.Self())
		}
	}
}

func TestLookupFindsCorrectOwner(t *testing.T) {
	f := newRing(t, 3)
	for i := 0; i < 16; i++ {
		f.addPeer(ids.HashString(fmt.Sprintf("node-%d", i)))
	}
	f.settle(10 * runtime.Minute)
	f.checkRingConsistent()

	misses := 0
	for trial := 0; trial < 50; trial++ {
		key := ids.ID(f.rng.Uint64())
		want := f.wantOwner(key)
		src := f.peers[f.rng.Intn(len(f.peers))]
		var got Entry
		var gerr error
		src.node.Lookup(key, func(o Entry, hops int, err error) { got, gerr = o, err })
		f.settle(runtime.Minute)
		if gerr != nil {
			t.Fatalf("lookup error: %v", gerr)
		}
		if got.Node != want.nid {
			misses++
		}
	}
	if misses != 0 {
		t.Fatalf("%d/50 lookups resolved to wrong owner on a stable ring", misses)
	}
}

func TestLookupHopCountLogarithmic(t *testing.T) {
	f := newRing(t, 4)
	const n = 32
	for i := 0; i < n; i++ {
		f.addPeer(ids.HashString(fmt.Sprintf("n%d", i)))
	}
	f.settle(20 * runtime.Minute) // let fingers build
	total, count := 0, 0
	for trial := 0; trial < 40; trial++ {
		key := ids.ID(f.rng.Uint64())
		src := f.peers[f.rng.Intn(len(f.peers))]
		src.node.Lookup(key, func(_ Entry, hops int, err error) {
			if err == nil {
				total += hops
				count++
			}
		})
		f.settle(30 * runtime.Second)
	}
	if count < 35 {
		t.Fatalf("only %d/40 lookups completed", count)
	}
	avg := float64(total) / float64(count)
	// With fingers built, average hops should be well under n/2 (linear
	// scan) — around log2(32)=5.
	if avg > 10 {
		t.Fatalf("average hops %.1f too high for %d-node ring with fingers", avg, n)
	}
}

func TestRingHealsAfterFailures(t *testing.T) {
	f := newRing(t, 5)
	for i := 0; i < 12; i++ {
		f.addPeer(ids.HashString(fmt.Sprintf("peer%d", i)))
	}
	f.settle(10 * runtime.Minute)
	// Kill 4 peers, including adjacent ones.
	alive := f.aliveSorted()
	for _, idx := range []int{1, 2, 7, 10} {
		p := alive[idx]
		p.node.Stop()
		f.net.Fail(p.nid)
	}
	f.settle(10 * runtime.Minute)
	f.checkRingConsistent()
	// Lookups route correctly again.
	for trial := 0; trial < 20; trial++ {
		key := ids.ID(f.rng.Uint64())
		want := f.wantOwner(key)
		src := f.aliveSorted()[f.rng.Intn(len(f.aliveSorted()))]
		var got Entry
		src.node.Lookup(key, func(o Entry, _ int, err error) {
			if err == nil {
				got = o
			}
		})
		f.settle(runtime.Minute)
		if got.Node != want.nid {
			t.Fatalf("post-failure lookup for %s: got %v, want %v", key, got, want.node.Self())
		}
	}
}

func TestRoutePayloadReachesOwner(t *testing.T) {
	f := newRing(t, 6)
	for i := 0; i < 8; i++ {
		f.addPeer(ids.HashString(fmt.Sprintf("r%d", i)))
	}
	f.settle(10 * runtime.Minute)
	key := ids.ID(f.rng.Uint64())
	want := f.wantOwner(key)
	src := f.peers[0]
	src.node.Route(key, "query-payload")
	f.settle(runtime.Minute)
	if len(want.routed) != 1 {
		t.Fatalf("owner received %d routed messages, want 1", len(want.routed))
	}
	rec := want.routed[0]
	if rec.key != key || rec.origin != src.nid || rec.pay != "query-payload" {
		t.Fatalf("routed record %+v wrong", rec)
	}
}

func TestClientLookupAndRoute(t *testing.T) {
	f := newRing(t, 7)
	for i := 0; i < 8; i++ {
		f.addPeer(ids.HashString(fmt.Sprintf("c%d", i)))
	}
	f.settle(10 * runtime.Minute)

	// A non-member client.
	cl := &clientPeer{}
	cl.nid = f.net.Join(cl, f.net.Topology().Place(f.rng))
	c, err := NewClient(f.cfg, f.net, cl.nid)
	if err != nil {
		t.Fatal(err)
	}
	cl.client = c

	key := ids.ID(f.rng.Uint64())
	want := f.wantOwner(key)
	gw := f.peers[3].node.Self()
	var got Entry
	c.LookupVia(gw, key, func(o Entry, hops int, err error) {
		if err != nil {
			t.Errorf("client lookup failed: %v", err)
			return
		}
		if hops < 0 {
			t.Errorf("negative hops")
		}
		got = o
	})
	f.settle(runtime.Minute)
	if got.Node != want.nid {
		t.Fatalf("client lookup owner %v, want %v", got, want.node.Self())
	}

	c.RouteVia(gw, key, "from-client")
	f.settle(runtime.Minute)
	found := false
	for _, r := range want.routed {
		if r.pay == "from-client" && r.origin == cl.nid {
			found = true
		}
	}
	if !found {
		t.Fatal("client-routed payload did not reach owner")
	}
}

type clientPeer struct {
	nid    runtime.NodeID
	client *Client
}

func (c *clientPeer) HandleMessage(from runtime.NodeID, msg any) {
	c.client.HandleMessage(from, msg)
}
func (c *clientPeer) HandleRequest(runtime.NodeID, any) (any, error) {
	return nil, errors.New("client has no rpcs")
}

func TestLookupTimesOutWhenGatewayDead(t *testing.T) {
	f := newRing(t, 8)
	p := f.addPeer(1 << 40)
	q := f.addPeer(1 << 50)
	f.settle(5 * runtime.Minute)
	q.node.Stop()
	f.net.Fail(q.nid)

	cl := &clientPeer{}
	cl.nid = f.net.Join(cl, f.net.Topology().Place(f.rng))
	c, _ := NewClient(f.cfg, f.net, cl.nid)
	cl.client = c
	var gotErr error
	done := false
	c.LookupVia(q.node.Self(), ids.ID(5), func(_ Entry, _ int, err error) {
		gotErr = err
		done = true
	})
	f.settle(5 * runtime.Minute)
	if !done {
		t.Fatal("callback never ran")
	}
	if !errors.Is(gotErr, ErrLookupFailed) {
		t.Fatalf("err = %v, want ErrLookupFailed", gotErr)
	}
	_ = p
}

func TestJoinAtVacantPosition(t *testing.T) {
	f := newRing(t, 9)
	a := f.addPeer(1 << 20)
	f.addPeer(1 << 40)
	f.settle(5 * runtime.Minute)

	pos := ids.ID(1 << 30) // vacant, owned by the 1<<40 node
	p := &testPeer{}
	p.nid = f.net.Join(p, f.net.Topology().Place(f.rng))
	n, _ := NewNode(f.cfg, f.net, f.rng.Split("joiner"), p, p.nid, pos)
	p.node = n
	var joinErr error
	done := false
	n.JoinAt(a.node.Self(), func(_ Entry, err error) { joinErr, done = err, true })
	f.settle(runtime.Minute)
	if !done || joinErr != nil {
		t.Fatalf("JoinAt: done=%v err=%v", done, joinErr)
	}
	f.peers = append(f.peers, p)
	f.settle(5 * runtime.Minute)
	f.checkRingConsistent()
	// The position now resolves to the new node.
	var owner Entry
	a.node.Lookup(pos, func(o Entry, _ int, err error) {
		if err == nil {
			owner = o
		}
	})
	f.settle(runtime.Minute)
	if owner.Node != p.nid {
		t.Fatalf("position owner %v after JoinAt, want new node", owner)
	}
}

func TestJoinAtOccupiedPosition(t *testing.T) {
	f := newRing(t, 10)
	a := f.addPeer(1 << 20)
	b := f.addPeer(1 << 30)
	f.settle(5 * runtime.Minute)

	p := &testPeer{}
	p.nid = f.net.Join(p, f.net.Topology().Place(f.rng))
	n, _ := NewNode(f.cfg, f.net, f.rng.Split("dup"), p, p.nid, ids.ID(1<<30))
	p.node = n
	var gotErr error
	var current Entry
	n.JoinAt(a.node.Self(), func(cur Entry, err error) { current, gotErr = cur, err })
	f.settle(runtime.Minute)
	if !errors.Is(gotErr, ErrOccupied) {
		t.Fatalf("err = %v, want ErrOccupied", gotErr)
	}
	if current.Node != b.nid {
		t.Fatalf("current = %v, want incumbent %v", current, b.node.Self())
	}
}

func TestConcurrentClaimsOnlyOneWins(t *testing.T) {
	f := newRing(t, 11)
	a := f.addPeer(1 << 20)
	f.addPeer(1 << 50)
	f.settle(5 * runtime.Minute)

	pos := ids.ID(1 << 40)
	results := make(map[int]error)
	mkJoiner := func(i int) {
		p := &testPeer{}
		p.nid = f.net.Join(p, f.net.Topology().Place(f.rng))
		n, _ := NewNode(f.cfg, f.net, f.rng.Split(fmt.Sprintf("claimant%d", i)), p, p.nid, pos)
		p.node = n
		n.JoinAt(a.node.Self(), func(_ Entry, err error) { results[i] = err })
	}
	mkJoiner(0)
	mkJoiner(1)
	mkJoiner(2)
	f.settle(2 * runtime.Minute)
	if len(results) != 3 {
		t.Fatalf("only %d/3 claim attempts resolved", len(results))
	}
	wins := 0
	for i, err := range results {
		if err == nil {
			wins++
		} else if !errors.Is(err, ErrClaimDenied) && !errors.Is(err, ErrOccupied) {
			t.Fatalf("claimant %d got unexpected error %v", i, err)
		}
	}
	if wins != 1 {
		t.Fatalf("%d claimants won, want exactly 1", wins)
	}
}

func TestClaimExpiresWhenClaimantDies(t *testing.T) {
	f := newRing(t, 12)
	a := f.addPeer(1 << 20)
	f.addPeer(1 << 50)
	f.settle(5 * runtime.Minute)

	pos := ids.ID(1 << 40)
	// First claimant wins then dies before integrating.
	p1 := &testPeer{}
	p1.nid = f.net.Join(p1, f.net.Topology().Place(f.rng))
	n1, _ := NewNode(f.cfg, f.net, f.rng.Split("dying"), p1, p1.nid, pos)
	p1.node = n1
	// Claim directly via the owner, without completing the join.
	owner := f.wantOwner(pos)
	granted := false
	f.net.Request(p1.nid, owner.nid, claimReq{Pos: pos, Claimant: n1.Self()}, 0,
		func(resp any, err error) {
			if err == nil {
				granted = resp.(claimResp).Granted
			}
		})
	f.settle(runtime.Minute)
	if !granted {
		t.Fatal("setup: first claim not granted")
	}
	f.net.Fail(p1.nid)

	// A rival is first denied (pointed at the dead claimant), which
	// triggers the owner's liveness probe of the reservation.
	f.settle(f.cfg.ClaimTTL + runtime.Second)
	p2 := &testPeer{}
	p2.nid = f.net.Join(p2, f.net.Topology().Place(f.rng))
	n2, _ := NewNode(f.cfg, f.net, f.rng.Split("second"), p2, p2.nid, pos)
	p2.node = n2
	var err2 error
	done := false
	n2.JoinAt(a.node.Self(), func(cur Entry, err error) { err2, done = err, true })
	f.settle(2 * runtime.Minute)
	if !done {
		t.Fatal("second claim never resolved")
	}
	if !errors.Is(err2, ErrClaimDenied) {
		t.Fatalf("rival should be denied while the record stands, got %v", err2)
	}
	// The probe has confirmed the claimant dead by now; a retry wins.
	p3 := &testPeer{}
	p3.nid = f.net.Join(p3, f.net.Topology().Place(f.rng))
	n3, _ := NewNode(f.cfg, f.net, f.rng.Split("third"), p3, p3.nid, pos)
	p3.node = n3
	var err3 error
	done3 := false
	n3.JoinAt(a.node.Self(), func(_ Entry, err error) { err3, done3 = err, true })
	f.settle(2 * runtime.Minute)
	if !done3 {
		t.Fatal("retry claim never resolved")
	}
	if err3 != nil {
		t.Fatalf("retry after dead-claimant probe should win, got %v", err3)
	}
}

func TestOwnsKey(t *testing.T) {
	f := newRing(t, 13)
	f.addPeer(100)
	f.addPeer(200)
	f.addPeer(300)
	f.settle(10 * runtime.Minute)
	alive := f.aliveSorted()
	// Peer with ID 200 owns (100, 200]; it also answers for its
	// predecessor's exact position 100 (replacement-claim serialization
	// — see OwnsKey).
	p := alive[1]
	if !p.node.OwnsKey(150) || !p.node.OwnsKey(200) {
		t.Fatal("peer should own keys in (100,200]")
	}
	if !p.node.OwnsKey(100) {
		t.Fatal("peer must answer for its predecessor's exact position")
	}
	if p.node.OwnsKey(250) || p.node.OwnsKey(99) {
		t.Fatal("peer claims keys outside its arc")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.SuccessorListLen = 0 },
		func(c *Config) { c.StabilizeInterval = 0 },
		func(c *Config) { c.FingersPerFix = 0 },
		func(c *Config) { c.RPCTimeout = 0 },
		func(c *Config) { c.MaxHops = 0 },
		func(c *Config) { c.LookupRetries = 0 },
		func(c *Config) { c.ClaimTTL = 0 },
	}
	for i, mut := range bads {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStopCancelsPendingLookups(t *testing.T) {
	f := newRing(t, 14)
	a := f.addPeer(1 << 20)
	f.addPeer(1 << 40)
	f.settle(5 * runtime.Minute)
	got := make(chan error, 1)
	a.node.Lookup(ids.ID(1<<30), func(_ Entry, _ int, err error) {
		select {
		case got <- err:
		default:
		}
	})
	a.node.Stop()
	f.settle(5 * runtime.Minute)
	// Either the lookup completed before Stop took effect (reply already
	// in flight resolves on arrival) or it error out; it must not hang.
	select {
	case <-got:
	default:
		// Acceptable: stopped nodes may drop pending work silently when
		// the reply round-trip is lost; ensure no panic happened and the
		// node is stopped.
		if !a.node.Stopped() {
			t.Fatal("node not stopped")
		}
	}
}
