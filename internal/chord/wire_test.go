package chord

import (
	"testing"

	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
	"flowercdn/internal/wiretest"
)

// TestWireRoundTrips pushes a populated exemplar of every chord
// message through each registered codec. routeMsg carries a nested
// registered payload, so the interface-tagging path (WireWriter.Any)
// is exercised with real contents here, not just nil.
func TestWireRoundTrips(t *testing.T) {
	e := Entry{Node: 7, ID: ids.ID(0x9e3779b97f4a7c15)}
	for _, msg := range []any{
		routeMsg{Key: ids.ID(42), Payload: GatewayAnnounce{E: e}, ReqID: 9, Origin: 3, Hops: 2, Deliver: true},
		routeMsg{Key: ids.ID(1)}, // pure lookup: nil payload survives too
		lookupReply{ReqID: 9, Owner: e, Hops: 4},
		notifyMsg{From: e},
		neighborsReq{},
		neighborsResp{Pred: e, Succs: []Entry{e, {Node: 8, ID: 1}}},
		pingReq{},
		pingResp{},
		claimReq{Pos: ids.ID(77), Claimant: e},
		claimResp{Granted: true, Current: e},
		claimResp{Current: NoEntry},
		claimTransfer{Pos: ids.ID(5), Claimant: e},
		GatewayAnnounce{E: e},
		GatewayRetract{Node: runtime.None},
	} {
		wiretest.RoundTrip(t, msg)
	}
}
