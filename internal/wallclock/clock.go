// Package wallclock is the single wall-clock run loop every real-time
// backend paces itself with: a runtime.Clock backed by real
// time.Timers that fires callbacks serialized onto one goroutine (so
// protocol code stays lock-free, exactly as on the discrete-event
// engine), ordered by the same (deadline, seq) total order.
//
// Two backends drive it: internal/rtnet (the in-process "realtime"
// loopback) and internal/socknet (the multi-process "socket" TCP
// transport). Scheduling is safe from any goroutine — transport reader
// goroutines hand deliveries to the loop through Schedule — but
// callbacks only ever execute inside Run, one at a time.
package wallclock

import (
	"container/heap"
	"sync"
	"time"

	"flowercdn/internal/runtime"
)

// timer is the one-shot timer handle. Its state is guarded by the
// owning clock's mutex so Cancel is safe from any goroutine, even
// though callbacks only ever run on the loop.
type timer struct {
	c         *Clock
	when      int64
	seq       uint64
	fn        func()
	fired     bool
	cancelled bool
}

func (t *timer) Cancel() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.cancelled || t.fired {
		return false
	}
	t.cancelled = true
	t.fn = nil
	return true
}

func (t *timer) Fired() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	return t.fired
}

func (t *timer) Cancelled() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	return t.cancelled
}

func (t *timer) When() int64 { return t.when }

// timerHeap orders by (when, seq) like the engine's event queue, so
// same-deadline timers fire in schedule order.
type timerHeap []*timer

func (q timerHeap) Len() int { return len(q) }
func (q timerHeap) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q timerHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *timerHeap) Push(x any)   { *q = append(*q, x.(*timer)) }
func (q *timerHeap) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}

// Clock is the wall-clock implementation of runtime.Clock. Time is
// int64 milliseconds since the clock was created; deadlines are kept in
// a heap and executed by Run — the single run loop — when the wall
// clock reaches them. Scheduling is safe from any goroutine; callbacks
// run only on the goroutine inside Run, one at a time.
type Clock struct {
	mu        sync.Mutex
	start     time.Time
	queue     timerHeap
	seq       uint64
	processed uint64
	stopped   bool
	// wake kicks Run out of its idle sleep when an earlier deadline is
	// scheduled from outside the loop or Stop is called.
	wake chan struct{}
}

// NewClock starts a wall clock at time zero (= now).
func NewClock() *Clock {
	return &Clock{start: time.Now(), wake: make(chan struct{}, 1)}
}

// elapsed is Now without the lock dance; callers hold no lock (reads
// only immutable start).
func (c *Clock) elapsed() int64 { return int64(time.Since(c.start) / time.Millisecond) }

// Now returns wall-clock milliseconds since the run started.
func (c *Clock) Now() int64 { return c.elapsed() }

// Schedule runs fn after delay wall-clock milliseconds.
func (c *Clock) Schedule(delay int64, fn func()) runtime.Timer {
	if delay < 0 {
		delay = 0
	}
	return c.At(c.elapsed()+delay, fn)
}

// At runs fn when the wall clock reaches t (clamped to now).
func (c *Clock) At(t int64, fn func()) runtime.Timer {
	if fn == nil {
		panic("wallclock: At called with nil function")
	}
	c.mu.Lock()
	now := c.elapsed()
	if t < now {
		t = now
	}
	c.seq++
	tm := &timer{c: c, when: t, seq: c.seq, fn: fn}
	heap.Push(&c.queue, tm)
	c.mu.Unlock()
	c.kick()
	return tm
}

// ticker implements runtime.Ticker by rearming a fresh one-shot timer
// after every firing.
type ticker struct {
	c         *Clock
	period    int64
	fn        func()
	mu        sync.Mutex
	inner     *timer
	cancelled bool
}

func (p *ticker) fire() {
	p.mu.Lock()
	if p.cancelled {
		p.mu.Unlock()
		return
	}
	fn := p.fn
	fired := p.inner.when
	p.mu.Unlock()
	fn()
	p.mu.Lock()
	if !p.cancelled {
		// Rearm at a fixed multiple of the fire *deadline*, like the
		// engine's PeriodicTimer: cadence stays `period` regardless of
		// callback duration or loop latency (At clamps a missed deadline
		// to now, so a slow callback catches up instead of backlogging).
		p.inner = p.c.At(fired+p.period, p.fire).(*timer)
	}
	p.mu.Unlock()
}

func (p *ticker) Cancel() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancelled {
		return
	}
	p.cancelled = true
	if p.inner != nil {
		p.inner.Cancel()
	}
	p.fn = nil
}

func (p *ticker) Cancelled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cancelled
}

// Every schedules fn every period wall-clock milliseconds, first firing
// after firstDelay. Period must be positive.
func (c *Clock) Every(firstDelay, period int64, fn func()) runtime.Ticker {
	if period <= 0 {
		panic("wallclock: Every called with non-positive period")
	}
	p := &ticker{c: c, period: period, fn: fn}
	// Hold p.mu across the first arm: if the timer is due immediately,
	// fire() on the run loop blocks on p.mu until p.inner is assigned,
	// so its locked rearm cannot race this write.
	p.mu.Lock()
	p.inner = c.Schedule(firstDelay, p.fire).(*timer)
	p.mu.Unlock()
	return p
}

// Stop makes the in-progress Run return after the current callback.
func (c *Clock) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
	c.kick()
}

// kick wakes an idle Run (non-blocking; a pending wake is enough).
func (c *Clock) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Processed returns the number of callbacks executed so far.
func (c *Clock) Processed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.processed
}

// Pending returns the number of queued timers, including cancelled ones
// not yet discarded.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Run is the run loop: it executes due timers in (deadline, seq) order,
// sleeping on a real time.Timer between deadlines, until the wall clock
// passes `until` (ms since clock start) or Stop is called. Timers due
// at or before `until` are executed; later ones remain queued. It
// returns the number of callbacks executed by this call.
func (c *Clock) Run(until int64) uint64 {
	var executed uint64
	for {
		c.mu.Lock()
		if c.stopped {
			c.stopped = false
			c.mu.Unlock()
			return executed
		}
		for len(c.queue) > 0 && c.queue[0].cancelled {
			heap.Pop(&c.queue)
		}
		now := c.elapsed()
		if len(c.queue) > 0 && c.queue[0].when <= until && c.queue[0].when <= now {
			t := heap.Pop(&c.queue).(*timer)
			t.fired = true
			fn := t.fn
			t.fn = nil
			c.processed++
			c.mu.Unlock()
			fn() // outside the lock: callbacks schedule freely
			executed++
			continue
		}
		// Nothing due yet: sleep until the next deadline or the horizon.
		if now >= until {
			c.mu.Unlock()
			return executed
		}
		target := until
		if len(c.queue) > 0 && c.queue[0].when < target {
			target = c.queue[0].when
		}
		c.mu.Unlock()
		if d := time.Duration(target-now) * time.Millisecond; d > 0 {
			idle := time.NewTimer(d)
			select {
			case <-idle.C:
			case <-c.wake:
				idle.Stop()
			}
		}
	}
}
