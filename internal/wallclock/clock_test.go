package wallclock

import (
	"testing"
)

// TestTimerOrdering checks that same-deadline timers fire in schedule
// order and differently-deadlined timers fire by deadline — the same
// (when, seq) total order the engine guarantees.
func TestTimerOrdering(t *testing.T) {
	c := NewClock()
	var got []int
	c.Schedule(30, func() { got = append(got, 3) })
	c.Schedule(10, func() { got = append(got, 1) })
	c.Schedule(10, func() { got = append(got, 2) }) // same deadline, later seq
	c.Run(60)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order %v, want [1 2 3]", got)
	}
}

func TestTimerCancel(t *testing.T) {
	c := NewClock()
	fired := false
	tm := c.Schedule(20, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel reported no effect")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel reported effect")
	}
	c.Run(50)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Cancelled() || tm.Fired() {
		t.Fatalf("state after cancel: cancelled=%v fired=%v", tm.Cancelled(), tm.Fired())
	}
}

func TestRunHorizonAndScheduleDuringRun(t *testing.T) {
	c := NewClock()
	var fired []int64
	c.Schedule(10, func() {
		fired = append(fired, c.Now())
		c.Schedule(15, func() { fired = append(fired, c.Now()) }) // due ~25
	})
	c.Schedule(500, func() { fired = append(fired, -1) }) // beyond horizon
	n := c.Run(100)
	if n != 2 {
		t.Fatalf("processed %d callbacks, want 2", n)
	}
	if len(fired) != 2 || fired[1] < 20 {
		t.Fatalf("fired at %v, want two firings with the second at >= 20ms", fired)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending %d, want the beyond-horizon timer queued", c.Pending())
	}
}

func TestTickerFiresAndStops(t *testing.T) {
	c := NewClock()
	count := 0
	tick := c.Every(5, 10, func() { count++ })
	c.Run(48)
	if count < 3 {
		t.Fatalf("ticker fired %d times in 48ms with period 10, want >= 3", count)
	}
	tick.Cancel()
	if !tick.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	before := count
	c.Run(80)
	if count != before {
		t.Fatalf("ticker fired after Cancel: %d -> %d", before, count)
	}
}

func TestStopInterruptsRun(t *testing.T) {
	c := NewClock()
	c.Schedule(5, func() { c.Stop() })
	c.Schedule(40, func() { t.Fatal("callback after Stop") })
	c.Run(60)
	if c.Pending() != 1 {
		t.Fatalf("pending %d after Stop, want 1", c.Pending())
	}
}
