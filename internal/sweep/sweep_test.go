package sweep

import (
	"reflect"
	"strings"
	"testing"

	"flowercdn/internal/harness"
	_ "flowercdn/internal/protocols" // register the built-in drivers
	"flowercdn/internal/sim"
)

// tinyConfig is a CI-sized run: a few hundred ms of wall time, so a
// multi-cell multi-seed grid stays well inside go test defaults.
func tinyConfig() harness.Config {
	cfg := harness.QuickConfig()
	cfg.Population = 100
	cfg.Duration = 2 * sim.Hour
	cfg.Workload.Sites = 8
	cfg.Workload.ActiveSites = 2
	cfg.Workload.ObjectsPerSite = 50
	return cfg
}

func tinyGrid() []Cell {
	flower := tinyConfig()
	squirrel := tinyConfig()
	squirrel.Protocol = harness.ProtocolSquirrel
	petalup := tinyConfig()
	petalup.Protocol = harness.ProtocolPetalUp
	petalup.Options = map[string]any{"load-limit": 10}
	// A capacity-bounded cell rides in the determinism grid: eviction
	// decisions must be as schedule-independent as everything else
	// (TestDeterministicAcrossWorkerCounts diffs the full per-seed
	// results, fingerprints included, at workers 1 vs 8).
	bounded := tinyConfig()
	bounded.Options = map[string]any{"cache-policy": "lru", "cache-capacity": 6}
	return []Cell{
		{Name: "flower", Config: flower},
		{Name: "squirrel", Config: squirrel},
		{Name: "petalup", Config: petalup},
		{Name: "flower/lru6", Config: bounded},
	}
}

func TestSpecValidate(t *testing.T) {
	ok := Spec{Cells: tinyGrid(), Seeds: []uint64{1}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"no cells", Spec{Seeds: []uint64{1}}},
		{"no seeds", Spec{Cells: tinyGrid()}},
		{"unnamed cell", Spec{Cells: []Cell{{Config: tinyConfig()}}, Seeds: []uint64{1}}},
		{"duplicate name", Spec{
			Cells: []Cell{{Name: "a", Config: tinyConfig()}, {Name: "a", Config: tinyConfig()}},
			Seeds: []uint64{1},
		}},
		{"bad config", Spec{
			Cells: []Cell{{Name: "a", Config: harness.Config{Protocol: "nope"}}},
			Seeds: []uint64{1},
		}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

// TestDeterministicAcrossWorkerCounts is the core contract: the same
// grid and seed set produce identical aggregates whether the sweep runs
// serially or eight-wide.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	serial, err := Run(Spec{Cells: tinyGrid(), Seeds: seeds, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(Spec{Cells: tinyGrid(), Seeds: seeds, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Workers != 1 {
		t.Fatalf("serial workers = %d", serial.Workers)
	}
	if parallel.Workers < 2 {
		t.Fatalf("parallel workers = %d", parallel.Workers)
	}
	if len(serial.Cells) != len(parallel.Cells) {
		t.Fatalf("cell count %d vs %d", len(serial.Cells), len(parallel.Cells))
	}
	for i := range serial.Cells {
		s, p := serial.Cells[i], parallel.Cells[i]
		// Compare the full per-seed results, not just the aggregates:
		// every run must be bit-identical regardless of scheduling.
		for j := range s.Runs {
			if !reflect.DeepEqual(s.Runs[j], p.Runs[j]) {
				t.Errorf("cell %q seed %d: runs differ between worker counts", s.Name, s.Seeds[j])
			}
		}
		if s.HitRatio != p.HitRatio || s.TailHitRatio != p.TailHitRatio ||
			s.MeanLookupMs != p.MeanLookupMs || s.MeanTransferMs != p.MeanTransferMs {
			t.Errorf("cell %q: aggregates differ between worker counts", s.Name)
		}
	}
	if serial.Table() != parallel.Table() {
		t.Error("Table() differs between worker counts")
	}
	if serial.CSV() != parallel.CSV() {
		t.Error("CSV() differs between worker counts")
	}
}

func TestAggregates(t *testing.T) {
	seeds := []uint64{7, 8, 9}
	res, err := Run(Spec{Cells: tinyGrid()[:1], Seeds: seeds, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRuns != 3 {
		t.Fatalf("TotalRuns = %d, want 3", res.TotalRuns)
	}
	c := res.Cells[0]
	if c.HitRatio.N != 3 || len(c.Runs) != 3 {
		t.Fatalf("expected 3 observations, got N=%d runs=%d", c.HitRatio.N, len(c.Runs))
	}
	if c.HitRatio.Mean <= 0 || c.HitRatio.Mean > 1 {
		t.Fatalf("hit ratio mean %v out of (0, 1]", c.HitRatio.Mean)
	}
	if c.Queries.Mean <= 0 {
		t.Fatalf("no queries recorded: %+v", c.Queries)
	}
	if c.HitRatio.Min > c.HitRatio.Mean || c.HitRatio.Max < c.HitRatio.Mean {
		t.Fatalf("min/mean/max inconsistent: %+v", c.HitRatio)
	}
	for j, r := range c.Runs {
		if r.Protocol != harness.ProtocolFlower {
			t.Fatalf("run %d protocol %q", j, r.Protocol)
		}
	}
	// Workers above the job count are trimmed.
	if res.Workers != 3 {
		t.Fatalf("Workers = %d, want trimmed to 3", res.Workers)
	}
}

func TestFormat(t *testing.T) {
	res, err := Run(Spec{Cells: tinyGrid()[:2], Seeds: []uint64{1, 2}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	for _, want := range []string{"flower", "squirrel", "2 cells x 2 seeds", "hit ratio"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table() missing %q:\n%s", want, table)
		}
	}
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 cells:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "cell,protocol,population,seeds,hit_mean") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
	for _, line := range lines {
		if got := strings.Count(line, ","); got != len(csvHeader)-1 {
			t.Errorf("CSV line has %d commas, want %d: %s", got, len(csvHeader)-1, line)
		}
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("plain: %q", got)
	}
	if got := csvEscape(`a,b"c`); got != `"a,b""c"` {
		t.Errorf("escaped: %q", got)
	}
}
