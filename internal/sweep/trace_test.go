package sweep

import (
	"bytes"
	"testing"

	"flowercdn/internal/harness"
	"flowercdn/internal/trace"
)

// TestTracedSweepDeterministicAcrossWorkerCounts extends the sweep's
// scheduling-independence contract to tracing: the same traced grid
// produces identical per-query trace streams at workers 1 and 8.
// Traces are per-run state behind a run-local collector, so worker
// interleaving has nothing to perturb — this pins that it stays true.
func TestTracedSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	traced := func() []Cell {
		cells := tinyGrid()[:2] // flower + squirrel: routed and local paths
		for i := range cells {
			cells[i].Config.Trace = &harness.TraceConfig{}
		}
		return cells
	}
	seeds := []uint64{1, 2, 3}
	serial, err := Run(Spec{Cells: traced(), Seeds: seeds, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(Spec{Cells: traced(), Seeds: seeds, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Cells {
		s, p := serial.Cells[i], parallel.Cells[i]
		for j := range s.Runs {
			if len(s.Runs[j].Traces) == 0 {
				t.Fatalf("cell %q seed %d: traced run collected no records", s.Name, seeds[j])
			}
			var a, b bytes.Buffer
			if err := trace.WriteCSV(&a, s.Runs[j].Traces); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteCSV(&b, p.Runs[j].Traces); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("cell %q seed %d: per-query traces differ between worker counts",
					s.Name, seeds[j])
			}
		}
	}
}
