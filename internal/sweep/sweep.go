// Package sweep runs grids of experiment configurations across many
// seeds in parallel and aggregates the results. It is the scaffolding
// behind every multi-run number this repository reports: the paper's
// own evaluation (Sec. 6) quotes single-run figures, whereas a sweep
// repeats each cell of a configuration grid (protocol × population ×
// churn × gossip period × …) under a set of seeds and reports per-cell
// mean / stddev / 95% confidence intervals via internal/metrics.
//
// Each run gets its own discrete-event engine and RNG tree, so runs
// share no mutable state and the fan-out across a bounded worker pool
// is embarrassingly parallel. Results are keyed by (cell, seed) index,
// never by completion order, so a sweep's aggregates are bit-identical
// whatever the worker count.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"flowercdn/internal/harness"
	"flowercdn/internal/metrics"
)

// Cell is one grid point: a named configuration. The Seed field of the
// config is ignored — the sweep overwrites it with each seed in turn.
type Cell struct {
	// Name labels the cell in tables and CSV ("flower/P=3000").
	Name string
	// Config is the full experiment configuration for this cell.
	Config harness.Config
}

// Spec describes one sweep: the grid, the seed set shared by every
// cell, and the parallelism bound.
type Spec struct {
	// Cells is the configuration grid, in presentation order.
	Cells []Cell
	// Seeds is applied to every cell; each (cell, seed) pair is one
	// independent run.
	Seeds []uint64
	// Workers bounds concurrent runs; <= 0 means GOMAXPROCS.
	Workers int
}

// Validate checks the spec, including every cell configuration, so a
// bad grid fails fast instead of after minutes of simulation.
func (s Spec) Validate() error {
	if len(s.Cells) == 0 {
		return errors.New("sweep: no cells")
	}
	if len(s.Seeds) == 0 {
		return errors.New("sweep: no seeds")
	}
	seen := make(map[string]bool, len(s.Cells))
	for i, c := range s.Cells {
		if c.Name == "" {
			return fmt.Errorf("sweep: cell %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("sweep: duplicate cell name %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.Config.Validate(); err != nil {
			return fmt.Errorf("sweep: cell %q: %w", c.Name, err)
		}
	}
	return nil
}

// CellResult aggregates one cell over all seeds.
type CellResult struct {
	Name       string
	Protocol   harness.Protocol
	Population int
	// Seeds echoes the spec's seed set, in run order.
	Seeds []uint64

	// The paper's three metrics (tail hit ratio is the Table 2 view),
	// each summarized over the seed set.
	HitRatio       metrics.Stat
	TailHitRatio   metrics.Stat
	MeanLookupMs   metrics.Stat
	MeanTransferMs metrics.Stat
	// MeanHops summarizes overlay routing cost per routed query, for
	// deployments that report hop counts (0 for the rest) — the metric
	// the Koorde-vs-Chord comparison turns on.
	MeanHops metrics.Stat
	// Queries and Unresolved summarize load and failure diagnostics.
	Queries    metrics.Stat
	Unresolved metrics.Stat

	// Runs holds the underlying per-seed results, index-aligned with
	// Seeds, for callers that need more than the aggregates.
	Runs []*harness.Result
}

// Result is the outcome of one sweep.
type Result struct {
	// Cells is index-aligned with the spec's grid.
	Cells []CellResult
	// Workers is the resolved parallelism the sweep ran with.
	Workers int
	// TotalRuns is len(Cells) * len(Seeds).
	TotalRuns int
}

// Run executes the sweep: len(Cells) × len(Seeds) independent
// simulations fanned out over the worker pool, aggregated per cell.
// The aggregates depend only on the spec, not on scheduling.
func Run(spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nc, ns := len(spec.Cells), len(spec.Seeds)
	jobs := nc * ns
	if workers > jobs {
		workers = jobs
	}

	// results[cell*ns + seedIdx]; errs likewise. Slots are written by
	// exactly one worker each, so no locking beyond the job counter.
	results := make([]*harness.Result, jobs)
	errs := make([]error, jobs)

	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range next {
				cfg := spec.Cells[j/ns].Config
				cfg.Seed = spec.Seeds[j%ns]
				results[j], errs[j] = harness.Run(cfg)
			}
		}()
	}
	for j := 0; j < jobs; j++ {
		next <- j
	}
	close(next)
	wg.Wait()

	// First error by job index wins, so the reported failure is also
	// independent of scheduling.
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %q seed %d: %w",
				spec.Cells[j/ns].Name, spec.Seeds[j%ns], err)
		}
	}

	out := Aggregate(spec, results)
	out.Workers = workers
	return out, nil
}

// Aggregate folds per-run results into the sweep's per-cell aggregates.
// results must hold one result per (cell, seed) pair in cell-major
// order: results[c*len(spec.Seeds)+s] is cell c under seed s.
//
// Run calls it on its own fan-out; the distributed sweep coordinator
// (internal/distsweep) calls it on records merged back from worker
// processes. Both paths reduce through this one function over the same
// job ordering, which is what makes a distributed sweep's aggregates
// bit-identical to an in-process run's.
func Aggregate(spec Spec, results []*harness.Result) *Result {
	nc, ns := len(spec.Cells), len(spec.Seeds)
	out := &Result{TotalRuns: nc * ns}
	for c := 0; c < nc; c++ {
		runs := results[c*ns : (c+1)*ns]
		cr := CellResult{
			Name:       spec.Cells[c].Name,
			Protocol:   spec.Cells[c].Config.Protocol,
			Population: spec.Cells[c].Config.Population,
			Seeds:      append([]uint64(nil), spec.Seeds...),
			Runs:       runs,
		}
		var hit, tail, lookup, transfer, hops, queries, unresolved []float64
		for _, r := range runs {
			hit = append(hit, r.HitRatio)
			tail = append(tail, r.TailHitRatio)
			lookup = append(lookup, r.MeanLookupMs)
			transfer = append(transfer, r.MeanTransferMs)
			hops = append(hops, r.MeanHops)
			queries = append(queries, float64(r.Queries))
			unresolved = append(unresolved, float64(r.Unresolved))
		}
		cr.HitRatio = metrics.Summarize(hit)
		cr.TailHitRatio = metrics.Summarize(tail)
		cr.MeanLookupMs = metrics.Summarize(lookup)
		cr.MeanTransferMs = metrics.Summarize(transfer)
		cr.MeanHops = metrics.Summarize(hops)
		cr.Queries = metrics.Summarize(queries)
		cr.Unresolved = metrics.Summarize(unresolved)
		out.Cells = append(out.Cells, cr)
	}
	return out
}
