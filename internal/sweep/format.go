package sweep

import (
	"fmt"
	"strings"

	"flowercdn/internal/metrics"
)

// Table renders the sweep as an aligned text table, one row per cell,
// with mean ± 95% CI for each metric.
func (r *Result) Table() string {
	var b strings.Builder
	// Worker count is deliberately absent: the table depends only on
	// the grid and seeds, never on how the sweep was scheduled.
	fmt.Fprintf(&b, "Sweep: %d cells x %d seeds (%d runs)\n",
		len(r.Cells), seedsPerCell(r), r.TotalRuns)
	fmt.Fprintf(&b, "  %-28s %-13s %-7s %-16s %-16s %-18s %-18s %-12s\n",
		"cell", "protocol", "P", "hit ratio", "tail hit", "lookup (ms)", "transfer (ms)", "hops")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-28s %-13s %-7d %-16s %-16s %-18s %-18s %-12s\n",
			c.Name, c.Protocol, c.Population,
			c.HitRatio, c.TailHitRatio, msStat(c.MeanLookupMs), msStat(c.MeanTransferMs),
			hopStat(c.MeanHops))
	}
	return b.String()
}

func seedsPerCell(r *Result) int {
	if len(r.Cells) == 0 {
		return 0
	}
	return len(r.Cells[0].Seeds)
}

func msStat(s metrics.Stat) string {
	if s.N < 2 {
		return fmt.Sprintf("%.0f", s.Mean)
	}
	return fmt.Sprintf("%.0f ±%.0f", s.Mean, s.CI95)
}

// hopStat renders the overlay hop column: "-" for deployments that
// report no hop counts (origin-only has no overlay to hop across).
func hopStat(s metrics.Stat) string {
	if s.Mean == 0 {
		return "-"
	}
	if s.N < 2 {
		return fmt.Sprintf("%.2f", s.Mean)
	}
	return fmt.Sprintf("%.2f ±%.2f", s.Mean, s.CI95)
}

// csvHeader is the fixed column set CSV emits.
var csvHeader = []string{
	"cell", "protocol", "population", "seeds",
	"hit_mean", "hit_stddev", "hit_ci95",
	"tail_hit_mean", "tail_hit_stddev", "tail_hit_ci95",
	"lookup_ms_mean", "lookup_ms_stddev", "lookup_ms_ci95",
	"transfer_ms_mean", "transfer_ms_stddev", "transfer_ms_ci95",
	"hops_mean", "hops_stddev", "hops_ci95",
	"queries_mean", "unresolved_mean",
}

// CSV renders the sweep as RFC-4180-ish comma-separated values with a
// header row — the machine-readable companion to Table.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(csvHeader, ","))
	b.WriteByte('\n')
	for _, c := range r.Cells {
		fields := []string{
			csvEscape(c.Name),
			string(c.Protocol),
			fmt.Sprintf("%d", c.Population),
			fmt.Sprintf("%d", len(c.Seeds)),
		}
		for _, s := range []metrics.Stat{c.HitRatio, c.TailHitRatio, c.MeanLookupMs, c.MeanTransferMs, c.MeanHops} {
			fields = append(fields,
				fmt.Sprintf("%g", s.Mean),
				fmt.Sprintf("%g", s.Stddev),
				fmt.Sprintf("%g", s.CI95))
		}
		fields = append(fields,
			fmt.Sprintf("%g", c.Queries.Mean),
			fmt.Sprintf("%g", c.Unresolved.Mean))
		b.WriteString(strings.Join(fields, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// seriesCSVHeader heads the per-window series export.
var seriesCSVHeader = []string{
	"cell", "protocol", "population", "seed",
	"window_start_ms", "hit_ratio", "queries", "mean_lookup_ms", "mean_transfer_ms",
	"evictions",
}

// SeriesCSV renders every run's per-window time series — the
// plot-friendly long format behind Fig. 3-style charts: one row per
// (cell, seed, window) with the window's hit ratio, query count, mean
// lookup/transfer latencies and cache evictions as aggregated by
// metrics.Windowed.
func (r *Result) SeriesCSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(seriesCSVHeader, ","))
	b.WriteByte('\n')
	for _, c := range r.Cells {
		for i, run := range c.Runs {
			for _, p := range run.Series {
				fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%g,%d,%g,%g,%g\n",
					csvEscape(c.Name), c.Protocol, c.Population, c.Seeds[i],
					p.Start, p.HitRatio, p.Queries, p.MeanLookupMs, p.MeanTransferMs, p.Evictions)
			}
		}
	}
	return b.String()
}

// csvEscape quotes a field if it contains a comma, quote or newline.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
