package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"flowercdn/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	s := NewServer(0)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	s.Observe(metrics.QueryEvent(0, metrics.HitDirectory, 120, 80))
	s.Observe(metrics.QueryEvent(1, metrics.Miss, 300, 200))
	s.Observe(metrics.CounterEvent(1, "gossip.sent", 3))

	code, body := get(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"queries_total 2", "hits_total 1", "hit_ratio 0.5", `counter{name="gossip.sent"} 3`} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

// Stop is idempotent and concurrency-safe: the harness stops an
// attached server when the run returns, and the owning process may
// stop it again on its own shutdown path.
func TestStopIdempotent(t *testing.T) {
	s := NewServer(0)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, "http://"+addr+"/metrics"); code != http.StatusOK {
		t.Fatalf("status %d before stop", code)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Stop(); err != nil {
				t.Errorf("Stop: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := s.Stop(); err != nil {
		t.Fatalf("repeated Stop: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("endpoint still serving after Stop")
	}
}

// Stop on a never-started server is a no-op, so harness error paths
// can stop unconditionally.
func TestStopBeforeStart(t *testing.T) {
	s := NewServer(0)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Fatalf("Addr = %q before Start", s.Addr())
	}
}
