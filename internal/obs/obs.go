// Package obs is the live observability endpoint for wall-clock runs:
// a metrics.Sink that taps the run's event pipeline (attach it via
// harness.Config.Obs) and serves the current aggregates plus the most
// recent query traces over HTTP while the run is still executing.
//
// Two routes:
//
//	/metrics  plain-text name/value lines (Prometheus exposition
//	          style): query totals, hit ratio, mean lookup latency,
//	          every protocol counter, and the trace tally.
//	/traces   the most recent trace records as JSON (?n= caps the
//	          count; default all retained).
//
// The server is caller-built: NewServer, Start to bind, attach to a
// run. The harness stops an attached server when the run returns, so
// the endpoint's lifetime matches the run it observes (a socket
// follower that exits early would otherwise leave the port serving
// stale aggregates); Stop is idempotent, so the owning process may
// also stop it explicitly. Observe is safe to call concurrently with
// HTTP reads; on the sim backend it works too (the endpoint just sees
// simulated time race by).
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"flowercdn/internal/metrics"
	"flowercdn/internal/trace"
)

// DefaultKeepTraces is the trace ring capacity when NewServer is given
// a non-positive keep.
const DefaultKeepTraces = 256

// Server accumulates live run state and serves it over HTTP.
type Server struct {
	mu         sync.Mutex
	queries    uint64
	hits       uint64
	unresolved uint64
	lookupSum  int64
	counters   map[string]float64

	// traces is a ring of the most recent records; next is the write
	// cursor, total the lifetime count.
	traces []*trace.Record
	next   int
	total  uint64

	// srvMu guards the listener/server pair: Start, Stop and Addr can
	// race when the harness stops the server as the run unwinds while
	// the owning process is also shutting it down.
	srvMu sync.Mutex
	ln    net.Listener
	srv   *http.Server
}

// NewServer builds a server retaining the last keep traces
// (DefaultKeepTraces when keep <= 0).
func NewServer(keep int) *Server {
	if keep <= 0 {
		keep = DefaultKeepTraces
	}
	return &Server{
		counters: make(map[string]float64),
		traces:   make([]*trace.Record, 0, keep),
	}
}

// Observe implements metrics.Sink.
func (s *Server) Observe(ev metrics.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Kind {
	case metrics.KindQuery:
		s.queries++
		if ev.Outcome.IsHit() {
			s.hits++
		}
		if ev.Outcome == metrics.Unresolved {
			s.unresolved++
		} else {
			s.lookupSum += ev.LookupLatency
		}
	case metrics.KindCounter:
		s.counters[ev.Counter] += ev.Delta
	case metrics.KindTrace:
		rec, ok := ev.Trace.(*trace.Record)
		if !ok {
			return
		}
		s.total++
		if len(s.traces) < cap(s.traces) {
			s.traces = append(s.traces, rec)
			return
		}
		s.traces[s.next] = rec
		s.next = (s.next + 1) % len(s.traces)
	}
}

// AddTrace records one trace directly — the entry point for records
// shipped home over a multi-process bus, which bypass the local
// metrics pipeline.
func (s *Server) AddTrace(rec *trace.Record) {
	if rec == nil {
		return
	}
	s.Observe(metrics.TraceEvent(0, rec))
}

// Start binds addr (e.g. "127.0.0.1:0") and serves until Stop. It
// returns the bound address, so callers may pass port 0.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/traces", s.handleTraces)
	s.srvMu.Lock()
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	srv := s.srv
	s.srvMu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Stop
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.srvMu.Lock()
	defer s.srvMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// stopGrace bounds how long Stop waits for in-flight scrapes.
const stopGrace = 2 * time.Second

// Stop shuts the endpoint down gracefully: the listener closes at
// once, in-flight /metrics and /traces responses get stopGrace to
// finish, stragglers are cut off. Stop is idempotent and safe to call
// concurrently — the harness stops an attached server when its run
// returns, and the owning process may stop it again on its own way
// out.
func (s *Server) Stop() error {
	s.srvMu.Lock()
	srv := s.srv
	s.srv = nil
	s.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), stopGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	return nil
}

// snapshotTraces returns the retained records, oldest first.
func (s *Server) snapshotTraces() []*trace.Record {
	out := make([]*trace.Record, 0, len(s.traces))
	if len(s.traces) == cap(s.traces) && cap(s.traces) > 0 {
		out = append(out, s.traces[s.next:]...)
		out = append(out, s.traces[:s.next]...)
		return out
	}
	return append(out, s.traces...)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	queries, hits, unresolved := s.queries, s.hits, s.unresolved
	lookupSum, total := s.lookupSum, s.total
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	vals := make([]float64, len(names))
	for i, k := range names {
		vals[i] = s.counters[k]
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "queries_total %d\n", queries)
	fmt.Fprintf(w, "hits_total %d\n", hits)
	fmt.Fprintf(w, "unresolved_total %d\n", unresolved)
	hitRatio := 0.0
	if queries > 0 {
		hitRatio = float64(hits) / float64(queries)
	}
	fmt.Fprintf(w, "hit_ratio %g\n", hitRatio)
	meanLookup := 0.0
	if served := queries - unresolved; served > 0 {
		meanLookup = float64(lookupSum) / float64(served)
	}
	fmt.Fprintf(w, "mean_lookup_ms %g\n", meanLookup)
	fmt.Fprintf(w, "traces_total %d\n", total)
	for i, k := range names {
		fmt.Fprintf(w, "counter{name=%q} %g\n", k, vals[i])
	}
}

// traceJSON is the wire form of one record on /traces.
type traceJSON struct {
	Query    uint64    `json:"query"`
	Client   int64     `json:"client"`
	Loc      int       `json:"loc"`
	Key      uint64    `json:"key"`
	Outcome  string    `json:"outcome"`
	Attempts int       `json:"attempts"`
	Hops     []hopJSON `json:"hops"`
}

type hopJSON struct {
	Kind          string `json:"kind"`
	Node          int64  `json:"node"`
	Loc           int    `json:"loc"`
	At            int64  `json:"at_ms"`
	FalsePositive bool   `json:"false_positive,omitempty"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := s.snapshotTraces()
	s.mu.Unlock()
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(recs) {
			recs = recs[len(recs)-n:]
		}
	}
	out := make([]traceJSON, len(recs))
	for i, rec := range recs {
		tj := traceJSON{
			Query:    rec.Query,
			Client:   int64(rec.Client),
			Loc:      int(rec.Loc),
			Key:      rec.Key,
			Outcome:  rec.Outcome.String(),
			Attempts: rec.Attempts,
			Hops:     make([]hopJSON, len(rec.Hops)),
		}
		for j, h := range rec.Hops {
			tj.Hops[j] = hopJSON{
				Kind: h.Kind.String(), Node: int64(h.Node),
				Loc: int(h.Loc), At: h.At, FalsePositive: h.FalsePositive,
			}
		}
		out[i] = tj
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}
