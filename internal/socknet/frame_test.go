package socknet

import (
	"encoding/gob"
	"testing"

	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
)

// benchPayload stands in for a typical protocol message: a few
// identifiers and a modest key slice, like a directory push.
type benchPayload struct {
	Seq  uint64
	From runtime.NodeID
	Keys []uint64
}

func init() { gob.Register(benchPayload{}) }

func testFrame() frame {
	keys := make([]uint64, 32)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	return frame{
		Kind:    frameSend,
		From:    3,
		To:      7,
		Payload: benchPayload{Seq: 42, From: 3, Keys: keys},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	in := testFrame()
	b, err := encodeFrame(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.From != in.From || out.To != in.To {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	p, ok := out.Payload.(benchPayload)
	if !ok {
		t.Fatalf("payload decoded as %T", out.Payload)
	}
	i := 31
	want := uint64(i) * 0x9e3779b97f4a7c15
	if p.Seq != 42 || len(p.Keys) != 32 || p.Keys[31] != want {
		t.Fatalf("payload mismatch: %+v", p)
	}
}

func TestFrameRoundTripJoin(t *testing.T) {
	in := frame{Kind: frameJoin, ID: 12, Place: topology.Placement{Pos: topology.Point{X: 0.25, Y: 0.75}, Loc: 4}}
	b, err := encodeFrame(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != frameJoin || out.ID != 12 || out.Place != in.Place {
		t.Fatalf("join frame mismatch: %+v", out)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	b, err := encodeFrame(testFrame())
	if err != nil {
		t.Fatal(err)
	}
	b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := decodeFrame(b); err == nil {
		t.Fatal("corrupt length prefix accepted")
	}
}

// BenchmarkFrameEncode and BenchmarkFrameDecode price the gob framing:
// the per-message serialization cost the socket backend pays that the
// single-process backends never do.
func BenchmarkFrameEncode(b *testing.B) {
	f := testFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeFrame(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	buf, err := encodeFrame(testFrame())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameRoundTrip is the committed trajectory number: one
// message through the full encode + decode path.
func BenchmarkFrameRoundTrip(b *testing.B) {
	f := testFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := encodeFrame(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := decodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}
