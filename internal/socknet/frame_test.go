package socknet

import (
	"bytes"
	"testing"

	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
)

// benchPayload stands in for a typical protocol message: a few
// identifiers and a modest key slice, like a directory push. It is
// registered like any protocol wire type and carries a binary
// marshaller, so every codec can move it.
type benchPayload struct {
	Seq  uint64
	From runtime.NodeID
	Keys []uint64
}

func (p benchPayload) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(p.Seq)
	w.Node(p.From)
	w.Uvarint(uint64(len(p.Keys)))
	for _, k := range p.Keys {
		w.U64(k)
	}
}

func (benchPayload) DecodeWire(r *runtime.WireReader) any {
	var p benchPayload
	p.Seq = r.Uvarint()
	p.From = r.Node()
	n := r.ArrayLen(8)
	if r.Err() == nil && n > 0 {
		p.Keys = make([]uint64, n)
		for i := range p.Keys {
			p.Keys[i] = r.U64()
		}
	}
	return p
}

func init() { runtime.RegisterWireType(benchPayload{}) }

func testCodec(t testing.TB, name string) runtime.Codec {
	t.Helper()
	c, err := runtime.NewCodec(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// codecNames enumerates the registered codecs every frame test runs
// under.
var codecNames = []string{"gob", "binary"}

func testFrame() frame {
	keys := make([]uint64, 32)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	return frame{
		Kind:    frameSend,
		From:    3,
		To:      7,
		Payload: benchPayload{Seq: 42, From: 3, Keys: keys},
	}
}

// encodeBatch renders frames as one wire batch (the flusher's output).
func encodeBatch(t testing.TB, c runtime.Codec, frames ...frame) []byte {
	t.Helper()
	batch := make([]byte, batchHeader)
	for _, f := range frames {
		b, err := appendFrame(nil, f, c)
		if err != nil {
			t.Fatal(err)
		}
		batch = appendSubFrame(batch, b)
	}
	finishBatch(batch)
	return batch
}

func TestFrameRoundTrip(t *testing.T) {
	for _, name := range codecNames {
		t.Run(name, func(t *testing.T) {
			c := testCodec(t, name)
			in := testFrame()
			b, err := appendFrame(nil, in, c)
			if err != nil {
				t.Fatal(err)
			}
			out, err := decodeFrameBody(b, c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Kind != in.Kind || out.From != in.From || out.To != in.To {
				t.Fatalf("header mismatch: %+v vs %+v", out, in)
			}
			p, ok := out.Payload.(benchPayload)
			if !ok {
				t.Fatalf("payload decoded as %T", out.Payload)
			}
			i := 31
			want := uint64(i) * 0x9e3779b97f4a7c15
			if p.Seq != 42 || len(p.Keys) != 32 || p.Keys[31] != want {
				t.Fatalf("payload mismatch: %+v", p)
			}
		})
	}
}

func TestFrameRoundTripJoin(t *testing.T) {
	for _, name := range codecNames {
		t.Run(name, func(t *testing.T) {
			c := testCodec(t, name)
			in := frame{Kind: frameJoin, ID: 12, Place: topology.Placement{Pos: topology.Point{X: 0.25, Y: 0.75}, Loc: 4}}
			b, err := appendFrame(nil, in, c)
			if err != nil {
				t.Fatal(err)
			}
			out, err := decodeFrameBody(b, c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Kind != frameJoin || out.ID != 12 || out.Place != in.Place {
				t.Fatalf("join frame mismatch: %+v", out)
			}
		})
	}
}

func TestBatchRoundTrip(t *testing.T) {
	for _, name := range codecNames {
		t.Run(name, func(t *testing.T) {
			c := testCodec(t, name)
			in := []frame{
				{Kind: frameJoin, ID: 5, Place: topology.Placement{Loc: 2}},
				testFrame(),
				{Kind: frameFail, ID: 5},
			}
			batch := encodeBatch(t, c, in...)
			var body []byte
			n, err := readBatch(bytes.NewReader(batch), &body)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(batch) {
				t.Fatalf("readBatch consumed %d of %d bytes", n, len(batch))
			}
			var got []frame
			count, err := forEachFrame(body, c, func(f frame) { got = append(got, f) })
			if err != nil {
				t.Fatal(err)
			}
			if count != len(in) || len(got) != len(in) {
				t.Fatalf("decoded %d frames, want %d", count, len(in))
			}
			for i := range in {
				if got[i].Kind != in[i].Kind || got[i].ID != in[i].ID {
					t.Fatalf("frame %d header mismatch: %+v vs %+v", i, got[i], in[i])
				}
			}
		})
	}
}

func TestBatchRejectsOversizedLength(t *testing.T) {
	c := testCodec(t, "binary")
	batch := encodeBatch(t, c, testFrame())
	batch[0], batch[1], batch[2], batch[3] = 0xff, 0xff, 0xff, 0xff
	var body []byte
	if _, err := readBatch(bytes.NewReader(batch), &body); err == nil {
		t.Fatal("corrupt length prefix accepted")
	}
}

func TestUnmarshallableTypePanicsWithName(t *testing.T) {
	c := testCodec(t, "binary")
	type localOnly struct{ X int }
	if _, err := appendFrame(nil, frame{Kind: frameSend, Payload: localOnly{X: 1}}, c); err == nil {
		t.Fatal("unregistered payload encoded")
	}
}

// BenchmarkFrameEncode and BenchmarkFrameDecode price the framing per
// codec: the per-message serialization cost the socket backend pays
// that the single-process backends never do.
func BenchmarkFrameEncode(b *testing.B) {
	for _, name := range codecNames {
		b.Run(name, func(b *testing.B) {
			c := testCodec(b, name)
			f := testFrame()
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = appendFrame(buf[:0], f, c)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	for _, name := range codecNames {
		b.Run(name, func(b *testing.B) {
			c := testCodec(b, name)
			buf, err := appendFrame(nil, testFrame(), c)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := decodeFrameBody(buf, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrameRoundTrip is the committed trajectory number: one
// message through the full encode + decode path.
func BenchmarkFrameRoundTrip(b *testing.B) {
	for _, name := range codecNames {
		b.Run(name, func(b *testing.B) {
			c := testCodec(b, name)
			f := testFrame()
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = appendFrame(buf[:0], f, c)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := decodeFrameBody(buf, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
