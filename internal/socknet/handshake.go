package socknet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"flowercdn/internal/runtime"
)

// Connection preamble: the first bytes BOTH sides write on a fresh
// mesh connection, before any frame. It pins everything two processes
// must agree on to exchange traffic at all — wire format version,
// payload codec, and the wire-type registry fingerprint (which fixes
// the binary codec's tag table) — plus the sender's group coordinates.
// A mismatched peer fails the handshake with a named cause instead of
// a gob decode panic or a silent mark-dead.
//
//	preamble = "FCDN" | version u8 | registry sum u64 BE |
//	           group u32 BE | groups u32 BE | codec len u8 | codec name

var preambleMagic = [4]byte{'F', 'C', 'D', 'N'}

// wireVersion is the frame format version; bump on any envelope
// change (v2: batched frames, codec-encoded payloads).
const wireVersion = 2

// preambleFixed is the byte count before the variable-length codec name.
const preambleFixed = 4 + 1 + 8 + 4 + 4 + 1

// preamble is one side's identity announcement.
type preamble struct {
	version byte
	sum     uint64
	group   int
	groups  int
	codec   string
}

// handshakeError marks a definitive protocol disagreement: retrying
// the dial cannot help, so dialPeer surfaces it immediately instead of
// burning the mesh-formation deadline.
type handshakeError struct{ msg string }

func (e *handshakeError) Error() string { return e.msg }

func handshakeErrf(format string, args ...any) error {
	return &handshakeError{msg: fmt.Sprintf(format, args...)}
}

// IsHandshakeError reports whether err is a definitive protocol
// disagreement (bad magic, version/codec/registry mismatch, wrong
// endpoint kind). Dial-retry loops give up immediately on these:
// redialing cannot change what either binary was built with.
func IsHandshakeError(err error) bool {
	var he *handshakeError
	return errors.As(err, &he)
}

// appendPreamble renders our preamble.
func appendPreamble(b []byte, codec string, group, groups int) []byte {
	if len(codec) > 255 {
		panic("socknet: codec name too long for preamble")
	}
	b = append(b, preambleMagic[:]...)
	b = append(b, wireVersion)
	b = binary.BigEndian.AppendUint64(b, runtime.WireRegistrySum())
	b = binary.BigEndian.AppendUint32(b, uint32(group))
	b = binary.BigEndian.AppendUint32(b, uint32(groups))
	b = append(b, byte(len(codec)))
	return append(b, codec...)
}

// readPreamble reads the peer's preamble off the connection.
func readPreamble(r io.Reader) (preamble, error) {
	var hdr [preambleFixed]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return preamble{}, fmt.Errorf("socknet: read preamble: %w", err)
	}
	if !bytes.Equal(hdr[:4], preambleMagic[:]) {
		return preamble{}, handshakeErrf("peer is not a flowercdn socket backend (bad magic %q)", hdr[:4])
	}
	p := preamble{
		version: hdr[4],
		sum:     binary.BigEndian.Uint64(hdr[5:13]),
		group:   int(binary.BigEndian.Uint32(hdr[13:17])),
		groups:  int(binary.BigEndian.Uint32(hdr[17:21])),
	}
	name := make([]byte, hdr[21])
	if _, err := io.ReadFull(r, name); err != nil {
		return preamble{}, fmt.Errorf("socknet: read preamble codec: %w", err)
	}
	p.codec = string(name)
	return p, nil
}

// checkPreamble verifies the peer's preamble against our own identity.
// expectGroup is the peer group we dialed, or -1 on the accepting side
// (where any higher-indexed group is legitimate).
func (t *Transport) checkPreamble(p preamble, expectGroup int) error {
	if p.version != wireVersion {
		return handshakeErrf("wire format version mismatch: peer runs v%d, we run v%d", p.version, wireVersion)
	}
	if p.codec != t.codec.Name() {
		return handshakeErrf("codec mismatch: peer runs %q, we run %q", p.codec, t.codec.Name())
	}
	if p.sum != runtime.WireRegistrySum() {
		return handshakeErrf("wire-type registry mismatch (%#x vs %#x): peers built with different protocol sets", p.sum, runtime.WireRegistrySum())
	}
	if p.groups != t.groups {
		return handshakeErrf("group count mismatch: peer says %d groups, we say %d", p.groups, t.groups)
	}
	if expectGroup >= 0 {
		if p.group != expectGroup {
			return handshakeErrf("dialed group %d but peer claims to be group %d", expectGroup, p.group)
		}
		return nil
	}
	if p.group <= t.group || p.group >= t.groups {
		return handshakeErrf("accepted hello from group %d (we are %d of %d; dial order inverted?)", p.group, t.group, t.groups)
	}
	return nil
}
