package socknet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
)

// The wire protocol: length-prefixed gob frames. Every frame is an
// independent gob stream (type info included), prefixed by a 4-byte
// big-endian length, so the reader can slice one frame off the
// connection without sharing decoder state across frames — a broken
// frame poisons nothing but itself. Interface-typed payloads decode
// because every concrete message type crossing a process boundary is
// gob-registered up front from the runtime wire-type registry
// (runtime.RegisterWireType).

// frameKind discriminates the frame union.
type frameKind uint8

const (
	// frameHello opens a connection: the dialer identifies its group.
	frameHello frameKind = iota + 1
	// frameJoin mirrors a node registration to every other process.
	frameJoin
	// frameFail mirrors a node failure.
	frameFail
	// frameSend carries a one-way message to the target's owner.
	frameSend
	// frameRequest carries an RPC request leg; frameResponse the reply.
	frameRequest
	frameResponse
	// frameAnnounce carries a Bus broadcast (protocol bootstrap state).
	frameAnnounce
)

// frame is the single wire message. Which fields are meaningful
// depends on Kind; gob omits zero fields, so the union costs little.
type frame struct {
	Kind frameKind

	// Hello.
	Group  int
	Groups int

	// Join / Fail subject.
	ID    runtime.NodeID
	Place topology.Placement

	// Send / Request addressing.
	From runtime.NodeID
	To   runtime.NodeID

	// Request / Response correlation. HasErr marks a handler
	// application error, whose message rides in Err — an explicit flag,
	// not an empty-string sentinel, so an error with an empty message
	// still resolves as an error on the requester's side.
	ReqID  uint64
	HasErr bool
	Err    string

	// Send message, Request req, Response resp, or Announce body.
	Payload any
}

// maxFrameBytes bounds a single frame read — anything larger indicates
// a corrupt length prefix, not a real message.
const maxFrameBytes = 64 << 20

// encodeFrame renders one length-prefixed frame.
func encodeFrame(f frame) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("socknet: encode %v frame: %w", f.Kind, err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b, nil
}

// readFrame reads one length-prefixed frame off r.
func readFrame(r io.Reader) (frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBytes {
		return frame{}, 0, fmt.Errorf("socknet: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, 0, err
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return frame{}, 0, fmt.Errorf("socknet: decode frame: %w", err)
	}
	return f, int(n) + 4, nil
}

// decodeFrame decodes one encoded frame (length prefix included) —
// the in-memory inverse of encodeFrame, used by the codec benchmark.
func decodeFrame(b []byte) (frame, error) {
	f, _, err := readFrame(bytes.NewReader(b))
	return f, err
}

// RemoteError is a handler's application error reconstructed on the
// requester's side of a process boundary. Only the message survives
// the trip; protocols in this repository treat application errors as
// opaque (they branch on err != nil), so that is sufficient.
type RemoteError string

func (e RemoteError) Error() string { return string(e) }

// WireStats counts actual serialized traffic — the real frame bytes on
// the wire, as opposed to TransportStats.BytesSent's modeled message
// sizes (which stay comparable across backends). The gap between the
// two is the serialization overhead the simulation never paid.
type WireStats struct {
	FramesSent    uint64
	BytesSent     uint64
	FramesRead    uint64
	BytesRead     uint64
	BrokenConns   uint64
	FramesDropped uint64 // frames for a group whose connection was down
}
