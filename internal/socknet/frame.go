package socknet

import (
	"encoding/binary"
	"fmt"
	"io"

	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
)

// The wire protocol, format v2: length-prefixed BATCHES of frames.
//
//	batch     = u32 big-endian body length | sub-frame*
//	sub-frame = uvarint frame length | frame
//	frame     = kind byte | header fields | payload
//
// Frame headers (addressing, correlation IDs, join placements) are
// hand-rolled canonical binary regardless of codec; only the payload —
// the interface-typed protocol message — goes through the configured
// runtime.Codec, so "gob" and "binary" runs share one envelope and one
// batching path. The payload is the frame's trailing bytes: the
// sub-frame length delimits it, no inner prefix needed.
//
// Connections open with a preamble (see appendPreamble), not a frame:
// magic, format version, codec name and the wire-type registry
// checksum, so mismatched builds fail the handshake with a clear error
// instead of corrupting mid-run traffic — the PR-5 sharp edge.

// frameKind discriminates the frame union.
type frameKind uint8

const (
	// frameJoin mirrors a node registration to every other process.
	frameJoin frameKind = iota + 1
	// frameFail mirrors a node failure.
	frameFail
	// frameSend carries a one-way message to the target's owner.
	frameSend
	// frameRequest carries an RPC request leg; frameResponse the reply.
	frameRequest
	frameResponse
	// frameAnnounce carries a Bus broadcast (protocol bootstrap state).
	frameAnnounce
)

// frame is the single wire message. Which fields are meaningful
// depends on Kind.
type frame struct {
	Kind frameKind

	// Join / Fail subject.
	ID    runtime.NodeID
	Place topology.Placement

	// Send / Request addressing.
	From runtime.NodeID
	To   runtime.NodeID

	// Request / Response correlation. HasErr marks a handler
	// application error, whose message rides in Err — an explicit flag,
	// not an empty-string sentinel, so an error with an empty message
	// still resolves as an error on the requester's side.
	ReqID  uint64
	HasErr bool
	Err    string

	// Send message, Request req, Response resp, or Announce body.
	Payload any
}

// carriesPayload reports whether k's frame ends in a codec-encoded
// message.
func carriesPayload(k frameKind) bool {
	switch k {
	case frameSend, frameRequest, frameResponse, frameAnnounce:
		return true
	}
	return false
}

// maxBatchBytes bounds a single batch read — anything larger indicates
// a corrupt length prefix, not real traffic.
const maxBatchBytes = 64 << 20

// batchHeader is the length-prefix placeholder a pending batch buffer
// starts with.
const batchHeader = 4

// appendFrame appends one frame body (no sub-frame length prefix).
func appendFrame(buf []byte, f frame, codec runtime.Codec) ([]byte, error) {
	w := runtime.NewWireWriter(append(buf, byte(f.Kind)))
	switch f.Kind {
	case frameJoin:
		w.Node(f.ID)
		w.F64(f.Place.Pos.X)
		w.F64(f.Place.Pos.Y)
		w.Int(int(f.Place.Loc))
	case frameFail:
		w.Node(f.ID)
	case frameSend:
		w.Node(f.From)
		w.Node(f.To)
	case frameRequest:
		w.Uvarint(f.ReqID)
		w.Node(f.From)
		w.Node(f.To)
	case frameResponse:
		w.Uvarint(f.ReqID)
		w.Bool(f.HasErr)
		if f.HasErr {
			w.String(f.Err)
		}
	case frameAnnounce:
	default:
		return nil, fmt.Errorf("socknet: encode frame with invalid kind %d", f.Kind)
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	if !carriesPayload(f.Kind) {
		return w.Finish(), nil
	}
	out, err := codec.AppendMessage(w.Finish(), f.Payload)
	if err != nil {
		return nil, fmt.Errorf("socknet: encode %T payload: %w", f.Payload, err)
	}
	return out, nil
}

// decodeFrameBody decodes one frame body — the inverse of appendFrame.
// Arbitrary input yields an error, never a panic.
func decodeFrameBody(b []byte, codec runtime.Codec) (frame, error) {
	r := runtime.NewWireReader(b)
	var f frame
	f.Kind = frameKind(r.U8())
	switch f.Kind {
	case frameJoin:
		f.ID = r.Node()
		f.Place.Pos.X = r.F64()
		f.Place.Pos.Y = r.F64()
		f.Place.Loc = runtime.Locality(r.Int())
	case frameFail:
		f.ID = r.Node()
	case frameSend:
		f.From = r.Node()
		f.To = r.Node()
	case frameRequest:
		f.ReqID = r.Uvarint()
		f.From = r.Node()
		f.To = r.Node()
	case frameResponse:
		f.ReqID = r.Uvarint()
		f.HasErr = r.Bool()
		if f.HasErr {
			f.Err = r.String()
		}
	case frameAnnounce:
	default:
		if err := r.Err(); err != nil {
			return frame{}, err
		}
		return frame{}, fmt.Errorf("socknet: frame kind %d out of range", f.Kind)
	}
	if err := r.Err(); err != nil {
		return frame{}, err
	}
	if !carriesPayload(f.Kind) {
		if r.Len() != 0 {
			return frame{}, fmt.Errorf("socknet: %d trailing bytes after %v frame", r.Len(), f.Kind)
		}
		return f, nil
	}
	msg, err := codec.DecodeMessage(r.Rest())
	if err != nil {
		return frame{}, fmt.Errorf("socknet: decode %v payload: %w", f.Kind, err)
	}
	f.Payload = msg
	return f, nil
}

// appendSubFrame appends one encoded frame to a batch under assembly:
// its uvarint length, then its bytes.
func appendSubFrame(batch, frameBytes []byte) []byte {
	batch = binary.AppendUvarint(batch, uint64(len(frameBytes)))
	return append(batch, frameBytes...)
}

// finishBatch patches the leading length prefix of a pending batch
// buffer (built starting from batchHeader placeholder bytes).
func finishBatch(batch []byte) {
	binary.BigEndian.PutUint32(batch[:batchHeader], uint32(len(batch)-batchHeader))
}

// readBatch reads one length-prefixed batch body off r into *body
// (reused across calls) and returns the total wire bytes consumed.
func readBatch(r io.Reader, body *[]byte) (int, error) {
	var hdr [batchHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxBatchBytes {
		return 0, fmt.Errorf("socknet: batch length %d out of range", n)
	}
	if cap(*body) < int(n) {
		*body = make([]byte, n)
	}
	*body = (*body)[:n]
	if _, err := io.ReadFull(r, *body); err != nil {
		return 0, err
	}
	return int(n) + batchHeader, nil
}

// forEachFrame walks a batch body, decoding every sub-frame. Every
// length prefix must account exactly for the bytes it precedes; any
// slack is an error.
func forEachFrame(body []byte, codec runtime.Codec, visit func(frame)) (int, error) {
	count := 0
	for len(body) > 0 {
		n, sz := binary.Uvarint(body)
		if sz <= 0 || n == 0 || n > uint64(len(body)-sz) {
			return count, fmt.Errorf("socknet: bad sub-frame length prefix")
		}
		f, err := decodeFrameBody(body[sz:sz+int(n)], codec)
		if err != nil {
			return count, err
		}
		visit(f)
		count++
		body = body[sz+int(n):]
	}
	return count, nil
}

// RemoteError is a handler's application error reconstructed on the
// requester's side of a process boundary. Only the message survives
// the trip; protocols in this repository treat application errors as
// opaque (they branch on err != nil), so that is sufficient.
type RemoteError string

func (e RemoteError) Error() string { return string(e) }

// WireStats counts actual serialized traffic — the real frame bytes on
// the wire, as opposed to TransportStats.BytesSent's modeled message
// sizes (which stay comparable across backends). The gap between the
// two is the serialization overhead the simulation never paid.
// Frames-per-batch is FramesSent/BatchesSent (resp. read side).
type WireStats struct {
	Codec         string
	FramesSent    uint64
	BytesSent     uint64
	BatchesSent   uint64
	FramesRead    uint64
	BytesRead     uint64
	BatchesRead   uint64
	BrokenConns   uint64
	FramesDropped uint64 // frames for a group whose connection was down
}
