package socknet

import (
	"bufio"
	"fmt"
	"net"
	"testing"
)

// BenchmarkBatchedThroughput prices the write-side batching decision:
// the same message stream pushed through a real localhost TCP pair as
// one-frame batches (every message its own syscall — the pre-batching
// behavior) versus 8 and 64 frames per batch. Each frame is encoded
// per message, exactly like writeFrame does; the reader decodes every
// frame through the readLoop's readBatch/forEachFrame path. The
// msgs/s metric is the headline; ns/op is per message end to end.
func BenchmarkBatchedThroughput(b *testing.B) {
	for _, name := range codecNames {
		for _, size := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/batch=%d", name, size), func(b *testing.B) {
				benchBatchedThroughput(b, name, size)
			})
		}
	}
}

func benchBatchedThroughput(b *testing.B, codecName string, size int) {
	c := testCodec(b, codecName)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- conn
	}()
	cli, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	srv, ok := <-accepted
	if !ok {
		b.Fatal("accept failed")
	}
	defer srv.Close()

	total := b.N
	readDone := make(chan error, 1)
	go func() {
		br := bufio.NewReaderSize(srv, 1<<16)
		var body []byte
		seen := 0
		for seen < total {
			if _, err := readBatch(br, &body); err != nil {
				readDone <- err
				return
			}
			n, err := forEachFrame(body, c, func(frame) {})
			if err != nil {
				readDone <- err
				return
			}
			seen += n
		}
		readDone <- nil
	}()

	f := testFrame()
	var fb []byte
	batch := make([]byte, batchHeader, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < total; {
		k := size
		if total-sent < k {
			k = total - sent
		}
		batch = batch[:batchHeader]
		for i := 0; i < k; i++ {
			fb, err = appendFrame(fb[:0], f, c)
			if err != nil {
				b.Fatal(err)
			}
			batch = appendSubFrame(batch, fb)
		}
		finishBatch(batch)
		if _, err := cli.Write(batch); err != nil {
			b.Fatal(err)
		}
		sent += k
	}
	if err := <-readDone; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(total)/s, "msgs/s")
	}
}
