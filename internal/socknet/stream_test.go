package socknet

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"flowercdn/internal/runtime"
)

// streamPair builds a connected client/server stream pair over a real
// localhost TCP connection under the named codec.
func streamPair(t *testing.T, codec string) (client, server *Stream) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ln.Accept()
		if err != nil {
			srvErr = err
			return
		}
		server, srvErr = AcceptStream(c, codec)
	}()
	client, err = DialStream(ln.Addr().String(), codec, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestStreamRoundTrip(t *testing.T) {
	for _, codec := range runtime.Codecs() {
		t.Run(codec, func(t *testing.T) {
			client, server := streamPair(t, codec)

			// Both directions, with a registered wire type.
			want := benchPayload{Seq: 42, From: 7, Keys: []uint64{1, 2, 3}}
			if err := client.Send(want); err != nil {
				t.Fatal(err)
			}
			got, err := server.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if p, ok := got.(benchPayload); !ok || p.Seq != 42 || len(p.Keys) != 3 {
				t.Fatalf("server received %#v, want %#v", got, want)
			}
			if err := server.Send(benchPayload{Seq: 43, From: 1}); err != nil {
				t.Fatal(err)
			}
			back, err := client.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if p, ok := back.(benchPayload); !ok || p.Seq != 43 {
				t.Fatalf("client received %#v", back)
			}
		})
	}
}

func TestStreamCloseUnblocksRecv(t *testing.T) {
	client, server := streamPair(t, "")
	done := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		done <- err
	}()
	client.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil error after peer close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on peer close")
	}
	if server.Close() != nil || server.Close() != nil {
		// Close is idempotent; repeated calls return the first result.
		t.Fatal("repeated Close reported an error")
	}
}

func TestStreamHandshakeRejectsCodecMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		AcceptStream(c, "binary") //nolint:errcheck // the dialer's error is asserted
	}()
	_, err = DialStream(ln.Addr().String(), "gob", time.Second)
	var he *handshakeError
	if !errors.As(err, &he) || !strings.Contains(err.Error(), "codec mismatch") {
		t.Fatalf("dial error = %v, want codec-mismatch handshake error", err)
	}
}

// A stream endpoint must refuse a mesh process's hello (and name the
// cause) rather than read frames it cannot interpret.
func TestStreamHandshakeRejectsMeshPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// A mesh process's preamble: group 1 of 3.
		c.Write(appendPreamble(nil, "gob", 1, 3)) //nolint:errcheck
	}()
	_, err = DialStream(ln.Addr().String(), "gob", time.Second)
	var he *handshakeError
	if !errors.As(err, &he) || !strings.Contains(err.Error(), "mesh process") {
		t.Fatalf("dial error = %v, want mesh-peer handshake error", err)
	}
}
