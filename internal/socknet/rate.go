package socknet

import "time"

// Adaptive batching: the Nagle-style coalescing window only pays for
// itself when more frames are coming. A connection observing a high
// frame rate holds batches open for the full configured window (many
// frames per syscall); a trickling or idle connection flushes
// immediately, since waiting would add latency and coalesce nothing.
// The estimator below tracks the observed per-connection frame rate
// and scales the effective window between those two extremes.
const (
	// rateAlpha is the EWMA weight of the newest inter-arrival gap
	// (TCP RTT-estimator style: smooth, but responsive within ~8
	// samples).
	rateAlpha = 0.125
	// idleResetNs: a gap this long means the connection went idle, so
	// the smoothed gap restarts from the observed one instead of
	// averaging the idle period in over many samples. Chosen far above
	// any plausible batch window and below human-visible latency.
	idleResetNs = int64(50 * time.Millisecond)
	// fullWindowFrames is the expected frame count within one full
	// window at which the window stops growing: at 8+ expected frames
	// per batch the syscall amortization is already won.
	fullWindowFrames = 8.0
)

// rateEstimator smooths a connection's frame inter-arrival gap.
// Guarded by the owning conn's mutex; the zero value is ready to use
// and reports "idle".
type rateEstimator struct {
	lastNs int64   // arrival time of the previous frame (0 = none yet)
	gapNs  float64 // EWMA inter-arrival gap (0 = no estimate yet)
}

// observe records one frame arrival at nowNs (monotonic-based
// nanoseconds; only differences are used).
func (e *rateEstimator) observe(nowNs int64) {
	if e.lastNs != 0 {
		switch gap := float64(nowNs - e.lastNs); {
		case nowNs-e.lastNs >= idleResetNs:
			// The connection was idle: clear the estimate instead of
			// blending the idle eternity in — the next decision treats
			// the connection as fresh (immediate flush), and two busy
			// frames rebuild the estimate from scratch.
			e.gapNs = 0
		case e.gapNs == 0:
			e.gapNs = gap
		default:
			e.gapNs += rateAlpha * (gap - e.gapNs)
		}
	}
	e.lastNs = nowNs
}

// window returns the effective coalescing window in [0, max] for the
// current rate estimate. With no estimate (or a gap so long that no
// second frame is expected within max) it returns 0 — idle flushes
// immediately. As the expected number of frames per full window rises
// from 1 toward fullWindowFrames the window ramps linearly up to max.
func (e *rateEstimator) window(max time.Duration) time.Duration {
	if max <= 0 || e.gapNs <= 0 {
		return 0
	}
	expected := float64(max) / e.gapNs // frames expected within a full window
	if expected <= 1 {
		return 0
	}
	if expected >= fullWindowFrames {
		return max
	}
	return time.Duration(float64(max) * (expected - 1) / (fullWindowFrames - 1))
}
