package socknet

import (
	"fmt"
	"reflect"
	"testing"

	// Pull in every protocol driver so the full wire-type registry —
	// chord, gossip, flower, squirrel, baseline, koorde, workload — is
	// populated, exactly as a real deployment populates it.
	_ "flowercdn/internal/protocols"

	"flowercdn/internal/runtime"
)

// TestAllWireTypesBinaryMarshallable is the forcing function for new
// protocol messages: every type in the wire registry must carry a
// binary marshaller, so a RegisterWireType call without a WireMessage
// implementation next to it fails here instead of at runtime under
// -codec binary.
func TestAllWireTypesBinaryMarshallable(t *testing.T) {
	for _, v := range runtime.WireTypes() {
		if _, ok := v.(runtime.WireMessage); !ok {
			t.Errorf("%T is registered as a wire type but does not implement runtime.WireMessage — add AppendWire/DecodeWire next to its RegisterWireType call", v)
		}
	}
}

// TestCodecEquivalence sends an exemplar of every registered wire type
// through the real frame path under each codec and asserts the
// delivered payloads are identical: switching -codec must never change
// what a handler observes. Exemplars are reflect-filled so a field one
// codec silently drops surfaces as a diff rather than a lucky
// zero-for-zero match (interface-typed fields stay nil here; populated
// nested messages are covered by the per-package wire tests).
func TestCodecEquivalence(t *testing.T) {
	codecs := make([]runtime.Codec, 0, 2)
	for _, name := range runtime.Codecs() {
		codecs = append(codecs, testCodec(t, name))
	}
	for _, proto := range runtime.WireTypes() {
		proto := proto
		t.Run(fmt.Sprintf("%T", proto), func(t *testing.T) {
			seed := 0
			msg := fillValue(reflect.TypeOf(proto), &seed)
			f := frame{Kind: frameSend, From: 1, To: 2, Payload: msg}
			delivered := make([]any, len(codecs))
			for i, c := range codecs {
				b, err := appendFrame(nil, f, c)
				if err != nil {
					t.Fatalf("%s encode: %v", c.Name(), err)
				}
				out, err := decodeFrameBody(b, c)
				if err != nil {
					t.Fatalf("%s decode: %v", c.Name(), err)
				}
				delivered[i] = out.Payload
			}
			for i := 1; i < len(codecs); i++ {
				if !reflect.DeepEqual(delivered[0], delivered[i]) {
					t.Fatalf("delivered payloads differ:\n%s: %#v\n%s: %#v",
						codecs[0].Name(), delivered[0], codecs[i].Name(), delivered[i])
				}
			}
			if !reflect.DeepEqual(delivered[0], msg) {
				t.Fatalf("payload changed in flight:\nsent: %#v\n got: %#v", msg, delivered[0])
			}
		})
	}
}

// fillValue builds a deterministic non-zero exemplar of typ: every
// settable field gets a value derived from the running seed.
func fillValue(typ reflect.Type, seed *int) any {
	v := reflect.New(typ).Elem()
	fill(v, seed)
	return v.Interface()
}

func fill(v reflect.Value, seed *int) {
	*seed++
	s := *seed
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(s%2 == 1)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(s))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(s))
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(s) / 4)
	case reflect.String:
		v.SetString(fmt.Sprintf("s%d", s))
	case reflect.Slice:
		sl := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < sl.Len(); i++ {
			fill(sl.Index(i), seed)
		}
		v.Set(sl)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fill(v.Index(i), seed)
		}
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		for i := 0; i < 2; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			fill(k, seed)
			val := reflect.New(v.Type().Elem()).Elem()
			fill(val, seed)
			m.SetMapIndex(k, val)
		}
		v.Set(m)
	case reflect.Pointer:
		p := reflect.New(v.Type().Elem())
		fill(p.Elem(), seed)
		v.Set(p)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				fill(f, seed)
			}
		}
	case reflect.Interface:
		// Left nil: nil must survive both codecs; populated nested
		// messages are the per-package wire tests' job.
	}
}
