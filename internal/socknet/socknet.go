// Package socknet is the socket backend: a runtime.Transport over real
// TCP connections, so the identical protocol code that runs on the
// deterministic simulator and the in-process realtime loopback runs
// across OS process boundaries. It registers itself as the "socket"
// backend.
//
// Topology of a run: N cooperating processes ("groups"), each hosting
// one slice of the population behind a single TCP listener. The
// peer-address registry — the full index-ordered address list — is
// configuration every process starts with; at startup the group forms
// a full mesh (process g dials every lower-indexed process, accepts
// from every higher-indexed one) and exchanges hello frames before any
// protocol traffic flows.
//
// NodeIDs are stride-partitioned: process g mints IDs g, g+N, g+2N, …,
// so ownership is derivable from the ID alone with no coordination.
// Join and Fail are mirrored to every process (a frame per event);
// remote state — placement, aliveness — is therefore locally readable,
// at the cost of staleness bounded by one network round trip. The
// owning process stays authoritative: a message to a dead node is
// dropped where the node lives, exactly like the single-process
// backends.
//
// Message semantics mirror internal/simnet: Send and Request sample
// per-link latency from the same topology model (applied on the
// sender's clock before the frame hits the wire — localhost TCP adds
// its real cost on top) and the same loss knob; timeouts are always
// local to the requester. Scheduling runs on the shared
// internal/wallclock run loop, one goroutine per process, so protocol
// code stays lock-free here too. Like the realtime backend, runs are
// NOT reproducible; unlike it, messages genuinely serialize — batched,
// length-prefixed frames whose payloads go through a pluggable
// runtime.Codec ("gob" by default, "binary" for the hand-rolled hot
// path) — which is the honest price of crossing a process boundary
// (WireStats reports it).
package socknet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
	"flowercdn/internal/wallclock"
)

func init() {
	runtime.RegisterBackend("socket", func(cfg runtime.BackendConfig) (runtime.Runtime, error) {
		if cfg.Socket == nil {
			return nil, errors.New(`socknet: backend "socket" needs BackendConfig.Socket (listen address, peer list, group index)`)
		}
		tr, err := Dial(Config{
			Socket:   *cfg.Socket,
			Topo:     cfg.Topo,
			LossRate: cfg.LossRate,
			LossRNG:  cfg.LossRNG,
		})
		if err != nil {
			return nil, err
		}
		// The clock is created only once the mesh is up, so every
		// process's time zero — and therefore its horizon — aligns to
		// within a round trip rather than to process spawn skew.
		clock := wallclock.NewClock()
		tr.Bind(clock)
		return &Runtime{clock: clock, net: tr}, nil
	})
}

// Runtime implements runtime.Runtime over the wall-clock run loop and
// the TCP transport. It additionally implements io.Closer; the harness
// closes it when the run ends, which tears down the listener, the mesh
// connections and the reader goroutines.
type Runtime struct {
	clock *wallclock.Clock
	net   *Transport
}

// Clock returns the wall clock pacing this process.
func (r *Runtime) Clock() runtime.Clock { return r.clock }

// Net returns the TCP transport.
func (r *Runtime) Net() runtime.Transport { return r.net }

// Network exposes the concrete transport (wire stats, etc.).
func (r *Runtime) Network() *Transport { return r.net }

// Run drives the loop until the wall clock passes `until` (ms).
func (r *Runtime) Run(until int64) uint64 { return r.clock.Run(until) }

// Close shuts the transport down.
func (r *Runtime) Close() error { return r.net.Close() }

// Config assembles a Transport.
type Config struct {
	// Socket names the process group (listen address, index-ordered
	// peer list, this process's index).
	Socket runtime.SocketConfig
	// Topo is the latency/locality model deliveries sample from. Every
	// process must build the identical topology (same seed), since
	// latency between two placements is computed wherever the send
	// happens.
	Topo *topology.Topology
	// LossRate drops each one-way transmission with this probability;
	// LossRNG draws the decisions (required when LossRate > 0). Loss is
	// sampled independently per process.
	LossRate float64
	LossRNG  *rnd.RNG
	// DefaultRPCTimeout is used when Request is called with timeout
	// <= 0 (default 4 s, matching simnet).
	DefaultRPCTimeout int64
	// ReadyTimeout bounds mesh formation: how long Dial waits for every
	// group to be connected (default 30 s — CI process spawns included).
	ReadyTimeout time.Duration
}

// Batching defaults: a sub-millisecond Nagle-style window bounds the
// latency cost, the byte cap bounds batch size (and memory) under
// load. cfg.Socket can override both.
const (
	defaultBatchWindow = 200 * time.Microsecond
	defaultBatchBytes  = 64 << 10
)

// maxPendBytes bounds the bytes queued toward one peer; a peer that
// far behind is as good as dead (the batching-era analogue of the old
// outbox-capacity cutoff).
const maxPendBytes = 32 << 20

// nodeState is one mirror entry. Remote nodes carry a nil handler.
type nodeState struct {
	handler runtime.Handler
	place   topology.Placement
	alive   bool
	local   bool
}

// pendingReq is one outstanding cross-process RPC on the requester.
type pendingReq struct {
	from     runtime.NodeID
	cb       func(resp any, err error)
	deadline runtime.Timer
}

// conn is one mesh connection. Writes coalesce: the run loop appends
// encoded frames to the pending batch and moves on; a dedicated writer
// goroutine flushes the batch — one length prefix, one syscall — when
// the coalescing window elapses or the byte cap is hit. A stalled peer
// therefore never blocks the run loop; one that falls maxPendBytes
// behind (or cannot take one batch within writeDeadline) is treated as
// gone.
type conn struct {
	c net.Conn

	mu         sync.Mutex
	pend       []byte // batch under assembly (starts with the length placeholder)
	spare      []byte // previous batch buffer, recycled by the flusher
	pendFrames int
	pendMsgs   int // message-bearing frames pending (drop accounting)
	firstAt    time.Time
	rate       rateEstimator // scales the coalescing window with load

	kick     chan struct{} // cap 1: pending data / early-flush signal
	stop     chan struct{}
	stopOnce sync.Once
}

// take swaps the pending batch out for flushing (nil if empty).
func (cn *conn) take() (batch []byte, frames int) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.pendFrames == 0 {
		return nil, 0
	}
	batch, frames = cn.pend, cn.pendFrames
	if cn.spare == nil {
		cn.spare = make([]byte, batchHeader, defaultBatchBytes+batchHeader)
	}
	cn.pend = cn.spare[:batchHeader]
	cn.spare = nil
	cn.pendFrames = 0
	cn.pendMsgs = 0
	return batch, frames
}

// shutdown terminates the writer and closes the socket (idempotent).
func (cn *conn) shutdown() {
	cn.stopOnce.Do(func() { close(cn.stop) })
	cn.c.Close()
}

// writeDeadline bounds one batch write; a peer stalled longer than
// this is treated as gone.
const writeDeadline = 10 * time.Second

// Transport implements runtime.Transport (and runtime.Bus) over the
// mesh. All state is mutex-guarded: reader goroutines update the
// mirror directly, while handler callbacks only ever run on the
// wall-clock goroutine.
var _ runtime.Transport = (*Transport)(nil)
var _ runtime.Bus = (*Transport)(nil)

type Transport struct {
	topo   *topology.Topology
	group  int
	groups int

	codec       runtime.Codec
	batchWindow time.Duration
	batchBytes  int

	mu          sync.Mutex
	clock       runtime.Clock
	nextLocal   runtime.NodeID
	nodes       map[runtime.NodeID]*nodeState
	total       int
	alive       int
	stats       runtime.TransportStats
	wire        WireStats
	lossRate    float64
	lossRNG     *rnd.RNG
	reqSeq      uint64
	pending     map[uint64]*pendingReq
	subs        []func(msg any)
	conns       []*conn               // indexed by group; nil = self or down
	handshakes  map[net.Conn]struct{} // accepted conns still reading hello
	buffered    []frame               // deliverable frames that arrived before Bind
	missing     int                   // groups not yet connected
	readyCh     chan struct{}
	readyClosed bool
	handErr     error // first handshake error, surfaced by Dial
	closed      bool

	defaultRPCTimeout int64

	lis net.Listener
	wg  sync.WaitGroup
}

// Dial listens on the configured address, forms the full mesh with
// every other group (dialing lower indexes, accepting higher ones) and
// returns once all connections are up. The returned Transport has no
// clock yet; Bind one before traffic flows (the backend factory does).
func Dial(cfg Config) (*Transport, error) {
	if err := cfg.Socket.Validate(); err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", cfg.Socket.Listen)
	if err != nil {
		return nil, fmt.Errorf("socknet: listen %s: %w", cfg.Socket.Listen, err)
	}
	return DialListener(cfg, lis)
}

// DialListener is Dial over a pre-opened listener — tests use it to
// bind ephemeral ports before the peer list is assembled.
func DialListener(cfg Config, lis net.Listener) (*Transport, error) {
	if err := cfg.Socket.Validate(); err != nil {
		lis.Close()
		return nil, err
	}
	if cfg.Topo == nil {
		lis.Close()
		return nil, errors.New("socknet: config needs a topology")
	}
	if cfg.LossRate > 0 && cfg.LossRNG == nil {
		lis.Close()
		return nil, errors.New("socknet: loss rate needs an RNG")
	}
	if cfg.DefaultRPCTimeout <= 0 {
		cfg.DefaultRPCTimeout = 4 * runtime.Second
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 30 * time.Second
	}
	codec, err := runtime.NewCodec(cfg.Socket.Codec)
	if err != nil {
		lis.Close()
		return nil, fmt.Errorf("socknet: %w", err)
	}
	batchWindow := cfg.Socket.BatchWindow
	switch {
	case batchWindow == 0:
		batchWindow = defaultBatchWindow
	case batchWindow < 0:
		batchWindow = 0 // flush every frame immediately
	}
	batchBytes := cfg.Socket.BatchBytes
	if batchBytes <= 0 {
		batchBytes = defaultBatchBytes
	}

	groups := cfg.Socket.Groups()
	t := &Transport{
		topo:              cfg.Topo,
		group:             cfg.Socket.Group,
		groups:            groups,
		codec:             codec,
		batchWindow:       batchWindow,
		batchBytes:        batchBytes,
		nextLocal:         runtime.NodeID(cfg.Socket.Group),
		nodes:             make(map[runtime.NodeID]*nodeState),
		lossRate:          cfg.LossRate,
		lossRNG:           cfg.LossRNG,
		pending:           make(map[uint64]*pendingReq),
		conns:             make([]*conn, groups),
		handshakes:        make(map[net.Conn]struct{}),
		missing:           groups - 1,
		readyCh:           make(chan struct{}),
		defaultRPCTimeout: cfg.DefaultRPCTimeout,
		lis:               lis,
	}
	if t.missing == 0 {
		t.readyClosed = true
		close(t.readyCh)
	} else {
		t.wg.Add(1)
		go t.acceptLoop()
		for h := 0; h < t.group; h++ {
			h := h
			t.wg.Add(1)
			go t.dialPeer(h, cfg.Socket.Peers[h], cfg.ReadyTimeout)
		}
	}
	if err := t.waitReady(cfg.ReadyTimeout); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// waitReady blocks until the mesh is complete or the timeout expires.
func (t *Transport) waitReady(d time.Duration) error {
	select {
	case <-t.readyCh:
	case <-time.After(d):
		t.mu.Lock()
		missing := t.missing
		err := t.handErr
		t.mu.Unlock()
		if err != nil {
			return fmt.Errorf("socknet: group %d mesh formation failed: %w", t.group, err)
		}
		return fmt.Errorf("socknet: group %d timed out with %d group(s) unconnected after %v", t.group, missing, d)
	}
	t.mu.Lock()
	err := t.handErr
	t.mu.Unlock()
	if err != nil {
		return fmt.Errorf("socknet: group %d mesh formation failed: %w", t.group, err)
	}
	return nil
}

// Bind attaches the run-loop clock and flushes any deliverable frames
// that raced mesh formation. Must be called exactly once, before the
// run starts.
func (t *Transport) Bind(clock runtime.Clock) {
	t.mu.Lock()
	if t.clock != nil {
		t.mu.Unlock()
		panic("socknet: Bind called twice")
	}
	t.clock = clock
	buffered := t.buffered
	t.buffered = nil
	t.mu.Unlock()
	for _, f := range buffered {
		t.dispatch(f)
	}
}

// Group returns this process's index; Groups the process count.
func (t *Transport) Group() int  { return t.group }
func (t *Transport) Groups() int { return t.groups }

// owner maps a NodeID to the group that hosts it.
func (t *Transport) owner(id runtime.NodeID) int { return int(id) % t.groups }

// ---- mesh formation ----

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.lis.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.handshakeAccepted(c)
	}
}

// exchangePreambles writes our preamble and reads the peer's, both
// under deadlines. Writing first on both sides cannot deadlock: a
// preamble is far smaller than any socket buffer.
func (t *Transport) exchangePreambles(c net.Conn) (preamble, error) {
	c.SetDeadline(time.Now().Add(writeDeadline))
	defer c.SetDeadline(time.Time{})
	if _, err := c.Write(appendPreamble(nil, t.codec.Name(), t.group, t.groups)); err != nil {
		return preamble{}, fmt.Errorf("socknet: write preamble: %w", err)
	}
	return readPreamble(c)
}

// handshakeAccepted exchanges preambles with a dialer and registers
// the connection. The conn is tracked while the (deadline-bounded)
// exchange is in flight so Close can cut it short instead of waiting
// it out.
func (t *Transport) handshakeAccepted(c net.Conn) {
	defer t.wg.Done()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return
	}
	t.handshakes[c] = struct{}{}
	t.mu.Unlock()
	p, err := t.exchangePreambles(c)
	t.mu.Lock()
	delete(t.handshakes, c)
	t.mu.Unlock()
	if err == nil {
		err = t.checkPreamble(p, -1)
	}
	if err != nil {
		// A definitive disagreement fails the whole mesh with its cause;
		// a garbled or abandoned connection (port scanner, dying peer)
		// just goes away — the dialer retries.
		var he *handshakeError
		if errors.As(err, &he) {
			t.failHandshake(fmt.Errorf("hello from %s: %w", c.RemoteAddr(), err))
		}
		c.Close()
		return
	}
	t.register(p.group, c)
}

// dialPeer connects to a lower-indexed group, retrying while the
// peer's listener comes up. A preamble mismatch is fatal immediately —
// redialing an incompatible peer cannot succeed.
func (t *Transport) dialPeer(group int, addr string, timeout time.Duration) {
	defer t.wg.Done()
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		if t.isClosed() {
			return
		}
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			var p preamble
			if p, err = t.exchangePreambles(c); err == nil {
				err = t.checkPreamble(p, group)
			}
			if err == nil {
				t.register(group, c)
				return
			}
			c.Close()
			var he *handshakeError
			if errors.As(err, &he) {
				t.failHandshake(fmt.Errorf("dial group %d (%s): %w", group, addr, err))
				return
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			t.failHandshake(fmt.Errorf("dial group %d (%s): %v", group, addr, lastErr))
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// register installs a completed connection and starts its reader and
// writer.
func (t *Transport) register(group int, c net.Conn) {
	t.mu.Lock()
	if t.closed || t.conns[group] != nil {
		t.mu.Unlock()
		c.Close()
		return
	}
	cn := &conn{
		c:     c,
		pend:  make([]byte, batchHeader, defaultBatchBytes+batchHeader),
		spare: make([]byte, batchHeader, defaultBatchBytes+batchHeader),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	t.conns[group] = cn
	t.missing--
	if t.missing == 0 && !t.readyClosed {
		t.readyClosed = true
		close(t.readyCh)
	}
	t.mu.Unlock()
	t.wg.Add(2)
	go t.readLoop(group, cn)
	go t.writeLoop(group, cn)
}

// writeLoop flushes one connection's pending batches. Woken by the
// first frame of a batch (and again when the byte cap is crossed), it
// holds the batch open for the coalescing window, then writes it with
// one syscall. Runs until the connection breaks or the transport shuts
// it down.
func (t *Transport) writeLoop(group int, cn *conn) {
	defer t.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-cn.stop:
			return
		case <-cn.kick:
		}
		for {
			cn.mu.Lock()
			size := len(cn.pend) - batchHeader
			firstAt := cn.firstAt
			// The window adapts to the observed frame rate: full
			// t.batchWindow on a busy connection, zero on an idle one
			// (flush immediately — waiting would coalesce nothing).
			window := cn.rate.window(t.batchWindow)
			cn.mu.Unlock()
			if size <= 0 {
				break // batch flushed under us; wait for the next kick
			}
			if size < t.batchBytes {
				if wait := window - time.Since(firstAt); wait > 0 {
					timer.Reset(wait)
					select {
					case <-cn.stop:
						timer.Stop()
						return
					case <-cn.kick:
						// Byte cap crossed mid-window: re-evaluate now.
						if !timer.Stop() {
							<-timer.C
						}
						continue
					case <-timer.C:
					}
				}
			}
			if !t.flushConn(group, cn) {
				return
			}
		}
	}
}

// flushConn writes the pending batch (if any) as one frame-batch.
// Returns false when the connection broke.
func (t *Transport) flushConn(group int, cn *conn) bool {
	batch, frames := cn.take()
	if frames == 0 {
		return true
	}
	finishBatch(batch)
	cn.c.SetWriteDeadline(time.Now().Add(writeDeadline))
	_, err := cn.c.Write(batch)
	if err != nil {
		t.connBroken(group)
		return false
	}
	t.mu.Lock()
	t.wire.BatchesSent++
	t.wire.FramesSent += uint64(frames)
	t.wire.BytesSent += uint64(len(batch))
	t.mu.Unlock()
	cn.mu.Lock()
	if cn.spare == nil {
		cn.spare = batch[:batchHeader] // recycle for the next swap
	}
	cn.mu.Unlock()
	return true
}

// failHandshake records the first mesh-formation error and unblocks
// Dial.
func (t *Transport) failHandshake(err error) {
	t.mu.Lock()
	if t.handErr == nil {
		t.handErr = err
	}
	if !t.readyClosed {
		t.readyClosed = true
		close(t.readyCh) // unblock waitReady with the error
	}
	t.mu.Unlock()
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// readLoop slices batches off one connection until it breaks. The body
// buffer is reused across batches — decoded frames never alias it (the
// wire vocabulary copies, codecs guarantee no aliasing).
func (t *Transport) readLoop(group int, cn *conn) {
	defer t.wg.Done()
	var body []byte
	for {
		n, err := readBatch(cn.c, &body)
		if err != nil {
			t.connBroken(group)
			return
		}
		frames, err := forEachFrame(body, t.codec, t.dispatch)
		t.mu.Lock()
		t.wire.BatchesRead++
		t.wire.FramesRead += uint64(frames)
		t.wire.BytesRead += uint64(n)
		t.mu.Unlock()
		if err != nil {
			t.connBroken(group)
			return
		}
	}
}

// connBroken tears one connection down: its group's nodes are marked
// dead (they are unreachable forever — NodeIDs are never reused) and
// frames toward it are dropped from now on. Frames still pending in
// the write batch die with it, so they are accounted as drops — the
// Sent = Delivered + Dropped reconciliation survives a peer's death.
func (t *Transport) connBroken(group int) {
	t.mu.Lock()
	cn := t.conns[group]
	t.conns[group] = nil
	if cn != nil && !t.closed {
		t.wire.BrokenConns++
		for id, st := range t.nodes {
			if st.alive && !st.local && t.owner(id) == group {
				st.alive = false
				t.alive--
			}
		}
		cn.mu.Lock()
		t.wire.FramesDropped += uint64(cn.pendFrames)
		t.stats.MessagesDropped += uint64(cn.pendMsgs)
		cn.pendFrames = 0
		cn.pendMsgs = 0
		cn.mu.Unlock()
	}
	t.mu.Unlock()
	if cn != nil {
		cn.shutdown()
	}
}

// framePool recycles per-frame encode scratch buffers, so the steady
// state allocates nothing on the encode path.
var framePool = sync.Pool{New: func() any { return &frameScratch{} }}

type frameScratch struct{ b []byte }

// writeFrame serializes f into one group's pending batch and wakes its
// flusher. Encode failures are programming bugs (an unregistered or
// unmarshallable wire type) and panic with the offending type. Frames
// toward a group whose connection is down — or whose pending batch has
// grown past maxPendBytes, meaning the peer is hopelessly behind — are
// dropped; message-bearing kinds also count as MessagesDropped, so the
// Sent = Delivered + Dropped reconciliation the other backends satisfy
// survives a peer's death here too.
func (t *Transport) writeFrame(group int, f frame) {
	fs := framePool.Get().(*frameScratch)
	b, err := appendFrame(fs.b[:0], f, t.codec)
	if err != nil {
		panic(fmt.Sprintf("socknet: cannot encode frame payload %T — is the type missing a runtime.RegisterWireType or a runtime.WireMessage implementation? (%v)", f.Payload, err))
	}
	fs.b = b
	t.mu.Lock()
	cn := t.conns[group]
	if cn == nil {
		t.dropFrameLocked(f)
		t.mu.Unlock()
		framePool.Put(fs)
		return
	}
	t.mu.Unlock()

	cn.mu.Lock()
	if len(cn.pend)+len(b) > maxPendBytes {
		cn.mu.Unlock()
		framePool.Put(fs)
		t.mu.Lock()
		t.dropFrameLocked(f)
		t.mu.Unlock()
		// maxPendBytes behind: the peer is stalled beyond our tolerance.
		// Cut it loose like a write timeout would.
		t.connBroken(group)
		return
	}
	now := time.Now()
	cn.rate.observe(now.UnixNano())
	first := cn.pendFrames == 0
	if first {
		cn.firstAt = now
	}
	cn.pend = appendSubFrame(cn.pend, b)
	cn.pendFrames++
	switch f.Kind {
	case frameSend, frameRequest, frameResponse:
		cn.pendMsgs++
	}
	capped := len(cn.pend)-batchHeader >= t.batchBytes
	cn.mu.Unlock()
	framePool.Put(fs)

	if first || capped {
		select {
		case cn.kick <- struct{}{}:
		default:
		}
	}
}

// dropFrameLocked accounts one undeliverable frame (mu held). Send,
// request and response frames carry a protocol message, so their loss
// is a message drop; join/fail/announce are control plane and count
// only as wire-level drops.
func (t *Transport) dropFrameLocked(f frame) {
	t.wire.FramesDropped++
	switch f.Kind {
	case frameSend, frameRequest, frameResponse:
		t.stats.MessagesDropped++
	}
}

// broadcast writes one frame to every connected group.
func (t *Transport) broadcast(f frame) {
	for g := 0; g < t.groups; g++ {
		if g == t.group {
			continue
		}
		t.writeFrame(g, f)
	}
}

// dispatch routes one received frame. Mirror updates apply
// immediately (no clock needed — they are state, not behavior);
// deliverable frames are handed to the run loop so handlers only ever
// execute there.
func (t *Transport) dispatch(f frame) {
	switch f.Kind {
	case frameJoin:
		t.mu.Lock()
		if _, dup := t.nodes[f.ID]; !dup {
			t.nodes[f.ID] = &nodeState{place: f.Place, alive: true}
			t.total++
			t.alive++
		}
		t.mu.Unlock()
	case frameFail:
		t.mu.Lock()
		if st, ok := t.nodes[f.ID]; ok && st.alive {
			st.alive = false
			t.alive--
		}
		t.mu.Unlock()
	case frameSend, frameRequest, frameResponse, frameAnnounce:
		t.mu.Lock()
		clock := t.clock
		if clock == nil {
			t.buffered = append(t.buffered, f)
			t.mu.Unlock()
			return
		}
		t.mu.Unlock()
		switch f.Kind {
		case frameSend:
			clock.Schedule(0, func() { t.deliverLocal(f.From, f.To, f.Payload) })
		case frameRequest:
			clock.Schedule(0, func() { t.serveRemoteRequest(f) })
		case frameResponse:
			clock.Schedule(0, func() { t.resolveRequest(f.ReqID, f.Payload, f.HasErr, f.Err) })
		case frameAnnounce:
			clock.Schedule(0, func() { t.deliverAnnounce(f.Payload) })
		}
	}
}

// Close shuts the transport down: listener, connections, readers. It
// is idempotent. In-flight frames on the peers' side surface there as
// broken connections, which mark this process's nodes dead — the same
// observable outcome as a process crash, which is the only honest
// story a real network can tell.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*conn, len(t.conns))
	copy(conns, t.conns)
	pendingHs := make([]net.Conn, 0, len(t.handshakes))
	for c := range t.handshakes {
		pendingHs = append(pendingHs, c)
	}
	t.mu.Unlock()
	t.lis.Close()
	for _, cn := range conns {
		if cn != nil {
			cn.shutdown()
		}
	}
	for _, c := range pendingHs {
		c.Close() // cut in-flight hello reads short
	}
	t.wg.Wait()
	return nil
}

// ---- runtime.Transport ----

// Clock returns the bound run-loop clock.
func (t *Transport) Clock() runtime.Clock {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock
}

// Topology returns the shared latency model.
func (t *Transport) Topology() *topology.Topology { return t.topo }

// Stats snapshots this process's traffic counters. Counters are
// per-process: sends count where they are issued, deliveries where the
// target lives; group-wide totals are the sum over processes.
func (t *Transport) Stats() runtime.TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// WireStats snapshots the actual serialized traffic.
func (t *Transport) WireStats() WireStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	ws := t.wire
	ws.Codec = t.codec.Name()
	return ws
}

// Join registers a local handler and mirrors the registration to every
// other process.
func (t *Transport) Join(h runtime.Handler, place topology.Placement) runtime.NodeID {
	if h == nil {
		panic("socknet: Join with nil handler")
	}
	t.mu.Lock()
	id := t.nextLocal
	t.nextLocal += runtime.NodeID(t.groups)
	t.nodes[id] = &nodeState{handler: h, place: place, alive: true, local: true}
	t.total++
	t.alive++
	t.mu.Unlock()
	t.broadcast(frame{Kind: frameJoin, ID: id, Place: place})
	return id
}

// Fail marks a local node dead and mirrors the failure. Failing a
// remote node is a protocol bug (kill closures are local) and panics;
// failing an already-dead local node is a no-op.
func (t *Transport) Fail(id runtime.NodeID) {
	t.mu.Lock()
	st, ok := t.nodes[id]
	if !ok || !st.alive {
		t.mu.Unlock()
		return
	}
	if !st.local {
		t.mu.Unlock()
		panic(fmt.Sprintf("socknet: Fail of remote node %d (owned by group %d)", id, t.owner(id)))
	}
	st.alive = false
	st.handler = nil // release protocol state for GC
	t.alive--
	t.mu.Unlock()
	t.broadcast(frame{Kind: frameFail, ID: id})
}

// Alive reports whether id is known and not failed. For remote nodes
// the answer can be stale by up to a network round trip; the owning
// process remains authoritative at delivery time.
func (t *Transport) Alive(id runtime.NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.nodes[id]
	return ok && st.alive
}

// AliveCount returns the number of alive nodes across the whole group
// (local + mirrored).
func (t *Transport) AliveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.alive
}

// TotalJoined returns how many nodes ever joined across the group.
func (t *Transport) TotalJoined() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Placement returns a node's position. Unknown local IDs are protocol
// bugs and panic (as on simnet); an unknown *remote* ID — its join
// frame still in flight — yields the zero Placement rather than a
// panic, because a third process can legitimately name a node before
// our mirror has caught up.
func (t *Transport) Placement(id runtime.NodeID) topology.Placement {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.placementLocked(id)
}

func (t *Transport) placementLocked(id runtime.NodeID) topology.Placement {
	if st, ok := t.nodes[id]; ok {
		return st.place
	}
	if id >= 0 && t.owner(id) != t.group {
		return topology.Placement{}
	}
	panic(fmt.Sprintf("socknet: Placement of unknown local node %d", id))
}

// Locality returns the physical locality of a node.
func (t *Transport) Locality(id runtime.NodeID) topology.Locality {
	return t.Placement(id).Loc
}

// Latency returns the modeled one-way latency between two nodes in ms.
func (t *Transport) Latency(a, b runtime.NodeID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.latencyLocked(a, b)
}

func (t *Transport) latencyLocked(a, b runtime.NodeID) int64 {
	sa, oka := t.nodes[a]
	sb, okb := t.nodes[b]
	if !oka || !okb {
		// A mirror miss (join frame in flight): deliver without modeled
		// delay rather than guess.
		return 0
	}
	return t.topo.Latency(sa.place.Pos, sb.place.Pos)
}

func (t *Transport) lostLocked() bool {
	return t.lossRate > 0 && t.lossRNG.Bool(t.lossRate)
}

func (t *Transport) aliveLocked(id runtime.NodeID) bool {
	st, ok := t.nodes[id]
	return ok && st.alive
}

// ForEachAlive visits every alive node id (ascending), local and
// mirrored. The snapshot is taken atomically; the visitor runs outside
// the lock and must not join or fail nodes while iterating.
func (t *Transport) ForEachAlive(visit func(id runtime.NodeID)) {
	t.mu.Lock()
	ids := make([]runtime.NodeID, 0, t.alive)
	for id, st := range t.nodes {
		if st.alive {
			ids = append(ids, id)
		}
	}
	t.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		visit(id)
	}
}

// Send delivers msg to `to` after the modeled one-way latency (plus
// the real wire cost when `to` lives in another process). Sends to
// unregistered local IDs panic; an unknown remote ID is forwarded to
// its owner, who is authoritative.
func (t *Transport) Send(from, to runtime.NodeID, msg any) {
	if to < 0 {
		panic(fmt.Sprintf("socknet: Send to invalid node %d", to))
	}
	t.mu.Lock()
	owner := t.owner(to)
	if _, known := t.nodes[to]; !known && owner == t.group {
		t.mu.Unlock()
		panic(fmt.Sprintf("socknet: Send to unregistered node %d", to))
	}
	t.stats.MessagesSent++
	t.stats.BytesSent += uint64(messageBytes(msg))
	if t.lostLocked() {
		t.stats.MessagesDropped++
		t.mu.Unlock()
		return
	}
	delay := t.latencyLocked(from, to)
	clock := t.clock
	t.mu.Unlock()
	if owner == t.group {
		clock.Schedule(delay, func() { t.deliverLocal(from, to, msg) })
	} else {
		clock.Schedule(delay, func() {
			t.writeFrame(owner, frame{Kind: frameSend, From: from, To: to, Payload: msg})
		})
	}
}

// deliverLocal hands a message to a locally-hosted node (runs on the
// clock goroutine).
func (t *Transport) deliverLocal(from, to runtime.NodeID, msg any) {
	t.mu.Lock()
	st, ok := t.nodes[to]
	if !ok || !st.alive || st.handler == nil {
		t.stats.MessagesDropped++
		t.mu.Unlock()
		return
	}
	t.stats.MessagesDelivered++
	h := st.handler
	t.mu.Unlock()
	h.HandleMessage(from, msg)
}

// Request performs an RPC with the same observable semantics as
// simnet: cb runs exactly once — with the response, with the handler's
// application error (reconstructed as a RemoteError across a process
// boundary), or with ErrTimeout. Timeouts are always decided on the
// requester's clock.
func (t *Transport) Request(from, to runtime.NodeID, req any, timeout int64, cb func(resp any, err error)) {
	if cb == nil {
		panic("socknet: Request with nil callback")
	}
	if to < 0 {
		panic(fmt.Sprintf("socknet: Request to invalid node %d", to))
	}
	t.mu.Lock()
	owner := t.owner(to)
	if _, known := t.nodes[to]; !known && owner == t.group {
		t.mu.Unlock()
		panic(fmt.Sprintf("socknet: Request to unregistered node %d", to))
	}
	if timeout <= 0 {
		timeout = t.defaultRPCTimeout
	}
	t.stats.RequestsIssued++
	t.stats.MessagesSent++
	t.stats.BytesSent += uint64(messageBytes(req))
	t.reqSeq++
	id := t.reqSeq
	t.pending[id] = &pendingReq{from: from, cb: cb}
	lost := t.lostLocked()
	if lost {
		t.stats.MessagesDropped++
	}
	delay := t.latencyLocked(from, to)
	clock := t.clock
	t.mu.Unlock()

	dl := clock.Schedule(timeout, func() { t.requestTimeout(id) })
	t.mu.Lock()
	if pr, ok := t.pending[id]; ok {
		pr.deadline = dl
	} else {
		dl.Cancel()
	}
	t.mu.Unlock()
	if lost {
		return // request leg dropped in transit; the deadline will fire
	}
	if owner == t.group {
		clock.Schedule(delay, func() { t.serveLocalRequest(id, from, to, req) })
	} else {
		clock.Schedule(delay, func() {
			t.writeFrame(owner, frame{Kind: frameRequest, ReqID: id, From: from, To: to, Payload: req})
		})
	}
}

// serveLocalRequest runs the target handler for a same-process RPC and
// schedules the response leg (clock goroutine).
func (t *Transport) serveLocalRequest(id uint64, from, to runtime.NodeID, req any) {
	resp, hasErr, errStr, back, ok := t.runHandler(from, to, req)
	if !ok {
		return // dropped; the deadline will fire
	}
	t.clockNow().Schedule(back, func() { t.resolveRequest(id, resp, hasErr, errStr) })
}

// serveRemoteRequest runs the target handler for a cross-process RPC
// and schedules the response frame (clock goroutine).
func (t *Transport) serveRemoteRequest(f frame) {
	resp, hasErr, errStr, back, ok := t.runHandler(f.From, f.To, f.Payload)
	if !ok {
		return
	}
	origin := t.owner(f.From)
	t.clockNow().Schedule(back, func() {
		t.writeFrame(origin, frame{Kind: frameResponse, ReqID: f.ReqID, Payload: resp, HasErr: hasErr, Err: errStr})
	})
}

// runHandler is the shared owner-side RPC logic: deliver to the target
// if alive, account the response leg, sample its loss, return the
// response and the back latency. ok=false means the deadline should
// fire instead.
func (t *Transport) runHandler(from, to runtime.NodeID, req any) (resp any, hasErr bool, errStr string, back int64, ok bool) {
	t.mu.Lock()
	st, known := t.nodes[to]
	if !known || !st.alive || st.handler == nil {
		t.stats.MessagesDropped++
		t.mu.Unlock()
		return nil, false, "", 0, false
	}
	t.stats.MessagesDelivered++
	h := st.handler
	t.mu.Unlock()

	r, err := h.HandleRequest(from, req)

	t.mu.Lock()
	t.stats.MessagesSent++
	t.stats.BytesSent += uint64(messageBytes(r))
	if t.lostLocked() {
		t.stats.MessagesDropped++
		t.mu.Unlock()
		return nil, false, "", 0, false
	}
	back = t.latencyLocked(to, from)
	t.mu.Unlock()
	if err != nil {
		hasErr = true
		errStr = err.Error()
	}
	return r, hasErr, errStr, back, true
}

// clockNow returns the bound clock (never nil after Bind).
func (t *Transport) clockNow() runtime.Clock {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock
}

// requestTimeout fires a pending request's deadline (clock goroutine).
func (t *Transport) requestTimeout(id uint64) {
	t.mu.Lock()
	pr, ok := t.pending[id]
	if !ok {
		t.mu.Unlock()
		return
	}
	delete(t.pending, id)
	t.stats.RequestsTimedOut++
	alive := t.aliveLocked(pr.from)
	t.mu.Unlock()
	if alive { // a dead requester never observes the outcome
		pr.cb(nil, runtime.ErrTimeout)
	}
}

// resolveRequest completes a pending request with its response (clock
// goroutine).
func (t *Transport) resolveRequest(id uint64, resp any, hasErr bool, errStr string) {
	t.mu.Lock()
	pr, ok := t.pending[id]
	if !ok {
		t.mu.Unlock()
		return // deadline beat the response
	}
	delete(t.pending, id)
	alive := t.aliveLocked(pr.from)
	dl := pr.deadline
	t.mu.Unlock()
	if dl != nil {
		dl.Cancel()
	}
	if !alive {
		return
	}
	var err error
	if hasErr {
		err = RemoteError(errStr)
	}
	pr.cb(resp, err)
}

// ---- runtime.Bus ----

// Announce broadcasts msg to every other process; their subscribers
// run on their clock goroutines. The announcing process's subscribers
// are NOT invoked — the announcer already holds the state it is
// sharing.
func (t *Transport) Announce(msg any) {
	t.broadcast(frame{Kind: frameAnnounce, Payload: msg})
}

// Subscribe adds an announcement subscriber.
func (t *Transport) Subscribe(fn func(msg any)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.subs = append(t.subs, fn)
}

// deliverAnnounce fans one announcement out to the subscribers (clock
// goroutine).
func (t *Transport) deliverAnnounce(msg any) {
	t.mu.Lock()
	subs := make([]func(any), len(t.subs))
	copy(subs, t.subs)
	t.mu.Unlock()
	for _, fn := range subs {
		fn(msg)
	}
}

// messageBytes mirrors simnet's wire-size model so TransportStats stay
// comparable across backends; WireStats carries the real frame bytes.
func messageBytes(msg any) int {
	if s, ok := msg.(runtime.Sizer); ok {
		return s.WireBytes()
	}
	return runtime.DefaultMessageBytes
}
