package socknet

import (
	"bytes"
	"math"
	"testing"

	"flowercdn/internal/runtime"
)

// fuzzSeedFrames is every frame kind the backend really sends, so the
// fuzzers start from valid wire bytes and mutate outward.
func fuzzSeedFrames() []frame {
	return []frame{
		{Kind: frameJoin, ID: 12},
		{Kind: frameFail, ID: 7},
		{Kind: frameSend, From: 3, To: 9, Payload: benchPayload{Seq: 1, Keys: []uint64{2, 3}}},
		{Kind: frameRequest, From: 1, To: 2, ReqID: 99, Payload: benchPayload{Seq: 5}},
		{Kind: frameResponse, ReqID: 99, HasErr: true, Err: "boom"},
		{Kind: frameAnnounce, Payload: benchPayload{Seq: 8}},
	}
}

// FuzzFrameRoundTrip throws arbitrary bytes at the gob-codec frame
// decoder: a frame off the wire is attacker-ish input (a corrupt peer,
// a truncated connection), so decodeFrameBody must fail cleanly —
// never panic — and anything it does accept must survive a
// re-encode/re-decode cycle with its header intact. (gob bytes are not
// canonical, so the assertion is header equality; the binary codec's
// stronger byte-identity property lives in FuzzBinaryFrameRoundTrip.)
func FuzzFrameRoundTrip(f *testing.F) {
	codec, err := runtime.NewCodec("gob")
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range fuzzSeedFrames() {
		b, err := appendFrame(nil, s, codec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := decodeFrameBody(data, codec)
		if err != nil {
			return // rejected cleanly — that is the contract
		}
		enc, err := appendFrame(nil, in, codec)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v (%+v)", err, in)
		}
		out, err := decodeFrameBody(enc, codec)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v (%+v)", err, in)
		}
		if out.Kind != in.Kind || out.ID != in.ID || !samePlace(out.Place, in.Place) ||
			out.From != in.From || out.To != in.To ||
			out.ReqID != in.ReqID || out.HasErr != in.HasErr || out.Err != in.Err {
			t.Fatalf("header changed across round trip: %+v vs %+v", out, in)
		}
	})
}

// samePlace compares placements by float bit pattern, so a fuzzed NaN
// coordinate (which survives the trip bit-exactly) still counts equal.
func samePlace(a, b runtime.Placement) bool {
	return math.Float64bits(a.Pos.X) == math.Float64bits(b.Pos.X) &&
		math.Float64bits(a.Pos.Y) == math.Float64bits(b.Pos.Y) &&
		a.Loc == b.Loc
}

// FuzzBinaryFrameRoundTrip is the binary codec's stronger property:
// arbitrary bytes never panic, and any accepted frame re-encodes to
// EXACTLY the input bytes — the encoding is canonical (minimal
// varints, sorted map keys, strict bools), so decode followed by
// encode is the identity on the accepted set.
func FuzzBinaryFrameRoundTrip(f *testing.F) {
	codec, err := runtime.NewCodec("binary")
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range fuzzSeedFrames() {
		b, err := appendFrame(nil, s, codec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := decodeFrameBody(data, codec)
		if err != nil {
			return
		}
		enc, err := appendFrame(nil, in, codec)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v (%+v)", err, in)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted frame is not canonical:\n in: %x\nout: %x", data, enc)
		}
	})
}

// FuzzBinaryDecode targets the codec layer beneath the frame envelope:
// DecodeMessage on arbitrary bytes must fail cleanly, and accepted
// messages must re-encode byte-identically.
func FuzzBinaryDecode(f *testing.F) {
	codec, err := runtime.NewCodec("binary")
	if err != nil {
		f.Fatal(err)
	}
	for _, msg := range []any{
		nil,
		benchPayload{Seq: 7, From: 3, Keys: []uint64{1, 2, 3}},
	} {
		b, err := codec.AppendMessage(nil, msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{0})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := codec.DecodeMessage(data)
		if err != nil {
			return
		}
		enc, err := codec.AppendMessage(nil, msg)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v (%#v)", err, msg)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted message is not canonical:\n in: %x\nout: %x", data, enc)
		}
	})
}

// FuzzFrameReadPrefix checks the batch envelope: any prefix/body
// combination must either yield a batch or an error, the reader must
// never consume past the batch it was told about, and the sub-frame
// walk must account every length prefix exactly.
func FuzzFrameReadPrefix(f *testing.F) {
	codec, err := runtime.NewCodec("binary")
	if err != nil {
		f.Fatal(err)
	}
	valid := make([]byte, batchHeader)
	fb, err := appendFrame(nil, frame{Kind: frameJoin, ID: 3}, codec)
	if err != nil {
		f.Fatal(err)
	}
	valid = appendSubFrame(valid, fb)
	finishBatch(valid)
	f.Add(valid, []byte("trailing"))
	f.Add([]byte{0, 0, 0, 1, 0}, []byte{})
	f.Fuzz(func(t *testing.T, data, trailer []byte) {
		r := bytes.NewReader(append(append([]byte{}, data...), trailer...))
		before := r.Len()
		var body []byte
		n, err := readBatch(r, &body)
		if err != nil {
			return
		}
		if consumed := before - r.Len(); consumed != n {
			t.Fatalf("readBatch reported %d bytes but consumed %d", n, consumed)
		}
		if n != len(body)+batchHeader {
			t.Fatalf("batch body %d bytes but %d consumed", len(body), n)
		}
		// The sub-frame walk either errors or accounts for every byte of
		// the body — forEachFrame only terminates cleanly at exactly zero
		// remaining bytes, so a clean walk IS the exactness property.
		if _, err := forEachFrame(body, codec, func(frame) {}); err != nil {
			return
		}
	})
}
