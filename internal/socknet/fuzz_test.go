package socknet

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip throws arbitrary bytes at the frame decoder: a
// frame off the wire is attacker-ish input (a corrupt peer, a truncated
// connection), so decodeFrame must fail cleanly — never panic — and
// anything it does accept must survive a re-encode/re-decode cycle with
// its header intact.
func FuzzFrameRoundTrip(f *testing.F) {
	// Seed the corpus with every frame kind the backend really sends,
	// so the fuzzer starts from valid wire bytes and mutates outward.
	seeds := []frame{
		{Kind: frameHello, Group: 1, Groups: 3},
		{Kind: frameJoin, ID: 12},
		{Kind: frameFail, ID: 7},
		{Kind: frameSend, From: 3, To: 9, Payload: benchPayload{Seq: 1, Keys: []uint64{2, 3}}},
		{Kind: frameRequest, From: 1, To: 2, ReqID: 99, Payload: benchPayload{Seq: 5}},
		{Kind: frameResponse, ReqID: 99, HasErr: true, Err: "boom"},
		{Kind: frameAnnounce, Payload: benchPayload{Seq: 8}},
	}
	for _, s := range seeds {
		b, err := encodeFrame(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := decodeFrame(data)
		if err != nil {
			return // rejected cleanly — that is the contract
		}
		// Accepted frames must round-trip: re-encode and compare the
		// header fields (the payload is interface-typed; kind-specific
		// tests cover it).
		enc, err := encodeFrame(in)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v (%+v)", err, in)
		}
		out, err := decodeFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v (%+v)", err, in)
		}
		if out.Kind != in.Kind || out.Group != in.Group || out.Groups != in.Groups ||
			out.ID != in.ID || out.From != in.From || out.To != in.To ||
			out.ReqID != in.ReqID || out.HasErr != in.HasErr || out.Err != in.Err {
			t.Fatalf("header changed across round trip: %+v vs %+v", out, in)
		}
	})
}

// FuzzFrameReadPrefix checks the length-prefix path specifically: any
// prefix/body combination must either yield a frame or an error, and
// the reader must never read past the frame it was told about.
func FuzzFrameReadPrefix(f *testing.F) {
	valid, err := encodeFrame(frame{Kind: frameJoin, ID: 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, []byte("trailing"))
	f.Add([]byte{0, 0, 0, 1, 0}, []byte{})
	f.Fuzz(func(t *testing.T, data, trailer []byte) {
		r := bytes.NewReader(append(append([]byte{}, data...), trailer...))
		before := r.Len()
		_, n, err := readFrame(r)
		if err != nil {
			return
		}
		if consumed := before - r.Len(); consumed != n {
			t.Fatalf("readFrame reported %d bytes but consumed %d", n, consumed)
		}
	})
}
