package socknet

import (
	"testing"
	"time"
)

// feed pushes n arrivals with a fixed gap into e, starting at start,
// and returns the time after the last arrival.
func feed(e *rateEstimator, start int64, n int, gap int64) int64 {
	now := start
	for i := 0; i < n; i++ {
		e.observe(now)
		now += gap
	}
	return now
}

func TestRateEstimatorZeroValueIsIdle(t *testing.T) {
	var e rateEstimator
	if w := e.window(200 * time.Microsecond); w != 0 {
		t.Errorf("zero-value estimator window = %v, want 0 (no history must flush immediately)", w)
	}
	// A single observation still has no gap estimate.
	e.observe(1_000_000)
	if w := e.window(200 * time.Microsecond); w != 0 {
		t.Errorf("single-arrival window = %v, want 0", w)
	}
}

func TestRateEstimatorBusyReachesFullWindow(t *testing.T) {
	const max = 200 * time.Microsecond
	var e rateEstimator
	// Frames every 10µs: 20 expected per window, far past the ramp.
	feed(&e, 1_000_000, 32, int64(10*time.Microsecond))
	if w := e.window(max); w != max {
		t.Errorf("busy connection window = %v, want the full %v", w, max)
	}
}

func TestRateEstimatorSlowFlushesImmediately(t *testing.T) {
	const max = 200 * time.Microsecond
	var e rateEstimator
	// One frame per millisecond: no second frame expected inside max,
	// so holding the batch open would only add latency.
	feed(&e, 1_000_000, 32, int64(time.Millisecond))
	if w := e.window(max); w != 0 {
		t.Errorf("slow connection window = %v, want 0", w)
	}
}

func TestRateEstimatorRampIsMonotonic(t *testing.T) {
	const max = 200 * time.Microsecond
	// Between 1 and fullWindowFrames expected frames per window the
	// window must grow with the rate and stay inside (0, max).
	gaps := []int64{
		int64(150 * time.Microsecond), // ~1.3 expected
		int64(100 * time.Microsecond), // 2 expected
		int64(50 * time.Microsecond),  // 4 expected
		int64(30 * time.Microsecond),  // ~6.7 expected
	}
	var prev time.Duration
	for _, gap := range gaps {
		var e rateEstimator
		feed(&e, 1_000_000, 64, gap)
		w := e.window(max)
		if w <= 0 || w >= max {
			t.Fatalf("gap %v: window %v outside the open ramp (0, %v)", time.Duration(gap), w, max)
		}
		if w <= prev {
			t.Fatalf("gap %v: window %v not greater than %v at the previous (slower) rate", time.Duration(gap), w, prev)
		}
		prev = w
	}
}

func TestRateEstimatorIdleGapResets(t *testing.T) {
	const max = 200 * time.Microsecond
	var e rateEstimator
	now := feed(&e, 1_000_000, 64, int64(10*time.Microsecond))
	if w := e.window(max); w != max {
		t.Fatalf("precondition: busy window = %v, want %v", w, max)
	}
	// The connection goes quiet, then one frame arrives. The idle gap
	// must replace the estimate, not be EWMA-blended in: the very next
	// window decision sees an idle connection and flushes immediately.
	e.observe(now + idleResetNs)
	if w := e.window(max); w != 0 {
		t.Errorf("window after idle gap = %v, want 0 (idle reset)", w)
	}
}

func TestRateEstimatorRecoversAfterIdle(t *testing.T) {
	const max = 200 * time.Microsecond
	var e rateEstimator
	now := feed(&e, 1_000_000, 64, int64(10*time.Microsecond))
	now += idleResetNs // idle pause resets the estimate
	// Traffic resumes at a busy clip: the estimator must converge back
	// to the full window.
	feed(&e, now, 32, int64(10*time.Microsecond))
	if w := e.window(max); w != max {
		t.Errorf("window after busy recovery = %v, want %v", w, max)
	}
}

func TestRateEstimatorDisabledWindow(t *testing.T) {
	var e rateEstimator
	feed(&e, 1_000_000, 32, int64(10*time.Microsecond))
	if w := e.window(0); w != 0 {
		t.Errorf("window(0) = %v, want 0 (immediate-flush configuration)", w)
	}
}
