package socknet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"flowercdn/internal/runtime"
)

// Stream is a point-to-point message channel over one TCP connection,
// speaking the socket backend's wire envelope: the same connection
// preamble (magic, format version, codec name, wire-type registry sum)
// followed by length-prefixed batches, each batch carrying exactly one
// codec-encoded message. It is the transport under internal/distsweep's
// coordinator/worker protocol — anything whose message types are
// registered with runtime.RegisterWireType can ride it, under either
// codec.
//
// A stream announces itself with group coordinates (0, 0) in the
// preamble, which no mesh process can produce (a mesh always has at
// least one group), so a stream endpoint dialed by a mesh process — or
// vice versa — fails the handshake with a named cause instead of a
// decode error mid-traffic.
//
// Send is safe for concurrent use (a worker's heartbeat goroutine
// writes alongside its main loop); Recv must be called from a single
// goroutine. Close unblocks a pending Recv and is idempotent.
type Stream struct {
	c     net.Conn
	codec runtime.Codec

	wmu  sync.Mutex
	wbuf []byte
	rbuf []byte

	closeOnce sync.Once
	closeErr  error
}

// streamHandshakeTimeout bounds the preamble exchange; a peer that
// cannot produce ~30 bytes in this window is not a flowercdn endpoint.
const streamHandshakeTimeout = 10 * time.Second

// DialStream connects to a stream endpoint at addr and performs the
// preamble handshake under the named codec ("" = gob, the registry
// default).
func DialStream(addr, codecName string, timeout time.Duration) (*Stream, error) {
	if timeout <= 0 {
		timeout = streamHandshakeTimeout
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("socknet: dial stream %s: %w", addr, err)
	}
	return newStream(c, codecName)
}

// AcceptStream wraps a just-accepted connection into a Stream,
// performing the server side of the preamble handshake. On error the
// connection is closed.
func AcceptStream(c net.Conn, codecName string) (*Stream, error) {
	return newStream(c, codecName)
}

// newStream runs the symmetric handshake: both sides write their
// preamble first, then read and check the peer's. The writes are tiny,
// so writing before reading cannot deadlock.
func newStream(c net.Conn, codecName string) (*Stream, error) {
	if codecName == "" {
		codecName = runtime.DefaultCodec
	}
	codec, err := runtime.NewCodec(codecName)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("socknet: stream codec: %w", err)
	}
	c.SetDeadline(time.Now().Add(streamHandshakeTimeout)) //nolint:errcheck
	if _, err := c.Write(appendPreamble(nil, codec.Name(), 0, 0)); err != nil {
		c.Close()
		return nil, fmt.Errorf("socknet: stream preamble write: %w", err)
	}
	p, err := readPreamble(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := checkStreamPreamble(p, codec); err != nil {
		c.Close()
		return nil, err
	}
	c.SetDeadline(time.Time{}) //nolint:errcheck
	return &Stream{c: c, codec: codec}, nil
}

// checkStreamPreamble verifies a peer's preamble against a stream
// endpoint's identity — the stream-mode analogue of
// (*Transport).checkPreamble.
func checkStreamPreamble(p preamble, codec runtime.Codec) error {
	if p.version != wireVersion {
		return handshakeErrf("wire format version mismatch: peer runs v%d, we run v%d", p.version, wireVersion)
	}
	if p.groups != 0 || p.group != 0 {
		return handshakeErrf("peer is a socket-backend mesh process (group %d of %d), not a stream endpoint", p.group, p.groups)
	}
	if p.codec != codec.Name() {
		return handshakeErrf("codec mismatch: peer runs %q, we run %q", p.codec, codec.Name())
	}
	if p.sum != runtime.WireRegistrySum() {
		return handshakeErrf("wire-type registry mismatch (%#x vs %#x): peers built with different protocol sets", p.sum, runtime.WireRegistrySum())
	}
	return nil
}

// Send encodes msg and writes it as one batch. The concrete type of
// msg must be registered with runtime.RegisterWireType.
func (s *Stream) Send(msg any) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	buf := append(s.wbuf[:0], 0, 0, 0, 0) // batchHeader length placeholder
	buf, err := s.codec.AppendMessage(buf, msg)
	if err != nil {
		return err
	}
	if len(buf)-batchHeader > maxBatchBytes {
		return fmt.Errorf("socknet: stream message %T is %d bytes (max %d)", msg, len(buf)-batchHeader, maxBatchBytes)
	}
	finishBatch(buf)
	s.wbuf = buf
	s.c.SetWriteDeadline(time.Now().Add(writeDeadline)) //nolint:errcheck
	if _, err := s.c.Write(buf); err != nil {
		return fmt.Errorf("socknet: stream write: %w", err)
	}
	return nil
}

// Recv blocks for the next message. It returns an error once the
// stream is closed (locally or by the peer).
func (s *Stream) Recv() (any, error) {
	if _, err := readBatch(s.c, &s.rbuf); err != nil {
		return nil, err
	}
	return s.codec.DecodeMessage(s.rbuf)
}

// RemoteAddr reports the peer's address, for logs.
func (s *Stream) RemoteAddr() string { return s.c.RemoteAddr().String() }

// Close tears the connection down, unblocking any pending Recv.
func (s *Stream) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.c.Close() })
	return s.closeErr
}
