package socknet

import (
	"net"
	"sync"
	"testing"

	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
	"flowercdn/internal/transporttest"
	"flowercdn/internal/wallclock"
)

// newLocalGroup assembles n socknet transports meshed over localhost
// TCP inside the test process: each instance listens on an ephemeral
// port, dials the others, and gets its own wall-clock run loop — the
// same wiring as n separate OS processes, minus the fork.
func newLocalGroup(t *testing.T, n int, topoSeed uint64, lossRate float64, lossSeed uint64, codec string) *transporttest.World {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		addrs[i] = lis.Addr().String()
	}

	transports := make([]*Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := Config{
				Socket: runtime.SocketConfig{Listen: addrs[i], Peers: addrs, Group: i, Codec: codec},
				// Every instance builds the identical topology from the
				// shared seed, exactly like cooperating processes do.
				Topo:     topology.MustNew(topology.DefaultConfig(), rnd.New(topoSeed)),
				LossRate: lossRate,
				LossRNG:  rnd.New(lossSeed + uint64(i)),
			}
			transports[i], errs[i] = DialListener(cfg, listeners[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("instance %d failed to mesh: %v", i, err)
		}
	}

	clocks := make([]*wallclock.Clock, n)
	world := &transporttest.World{}
	for i, tr := range transports {
		clocks[i] = wallclock.NewClock()
		tr.Bind(clocks[i])
		world.Transports = append(world.Transports, tr)
	}
	world.Run = func(until int64) {
		var rw sync.WaitGroup
		for _, c := range clocks {
			c := c
			rw.Add(1)
			go func() {
				defer rw.Done()
				c.Run(until)
			}()
		}
		rw.Wait()
	}
	world.Close = func() {
		for _, tr := range transports {
			tr.Close()
		}
	}
	return world
}

// TestTransportConformance runs the shared Transport contract suite
// across three genuinely TCP-connected transport instances, once per
// registered codec: the same Send/Request/timeout/loss contracts must
// hold whether the frames carry gob or hand-rolled binary payloads.
func TestTransportConformance(t *testing.T) {
	transporttest.RunCodecs(t, func(codec string) transporttest.Factory {
		return func(t *testing.T, topoSeed uint64, lossRate float64, lossSeed uint64, instances int) *transporttest.World {
			return newLocalGroup(t, instances, topoSeed, lossRate, lossSeed, codec)
		}
	})
}

// TestStrideOwnership pins the NodeID partition scheme: instance g
// mints g, g+N, g+2N, … so ownership needs no coordination.
func TestStrideOwnership(t *testing.T) {
	w := newLocalGroup(t, 3, 1, 0, 0, "")
	topo := w.Transports[0].Topology()
	pl := topology.Placement{Pos: topology.Point{X: 0.5, Y: 0.5}, Loc: topo.LocalityOf(topology.Point{X: 0.5, Y: 0.5})}
	defer w.Close()

	for g := 0; g < 3; g++ {
		first := w.Transports[g].Join(nopHandler{}, pl)
		second := w.Transports[g].Join(nopHandler{}, pl)
		if int(first)%3 != g || int(second)%3 != g {
			t.Errorf("instance %d minted ids %d, %d — not its stride class", g, first, second)
		}
		if second != first+3 {
			t.Errorf("instance %d stride step: %d then %d, want +3", g, first, second)
		}
	}
}

// TestAnnounceBus checks the Bus capability: an announcement reaches
// every other instance's subscribers (on their run loops) and never
// loops back to the announcer.
func TestAnnounceBus(t *testing.T) {
	w := newLocalGroup(t, 3, 1, 0, 0, "binary")
	defer w.Close()

	var mu sync.Mutex
	got := make([]int, 3)
	for i, tr := range w.Transports {
		i := i
		runtime.BusOf(tr).Subscribe(func(msg any) {
			if p, ok := msg.(transporttest.Ping); ok && p.N == 77 {
				mu.Lock()
				got[i]++
				mu.Unlock()
			}
		})
	}
	runtime.BusOf(w.Transports[1]).Announce(transporttest.Ping{N: 77})

	deadline := int64(0)
	for deadline < 4000 {
		deadline += 25
		w.Run(deadline)
		mu.Lock()
		done := got[0] == 1 && got[2] == 1
		mu.Unlock()
		if done {
			break
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0] != 1 || got[2] != 1 {
		t.Fatalf("announcement counts %v, want exactly one at instances 0 and 2", got)
	}
	if got[1] != 0 {
		t.Fatalf("announcement looped back to the announcer (%d)", got[1])
	}
}

// TestPeerShutdownMarksGroupDead checks the crash/shutdown story: when
// a process goes away, every other process marks its nodes dead — the
// same observable outcome churn produces, so protocol code needs no
// special case.
func TestPeerShutdownMarksGroupDead(t *testing.T) {
	w := newLocalGroup(t, 3, 1, 0, 0, "")
	defer w.Close()
	topo := w.Transports[0].Topology()
	pl := topology.Placement{Pos: topology.Point{X: 0.5, Y: 0.5}, Loc: topo.LocalityOf(topology.Point{X: 0.5, Y: 0.5})}

	id := w.Transports[2].Join(nopHandler{}, pl)
	waitCond(t, w, func() bool { return w.Transports[0].Alive(id) })

	// Instance 2 goes away — a finished (or crashed) process.
	w.Transports[2].(*Transport).Close()
	waitCond(t, w, func() bool { return !w.Transports[0].Alive(id) })
	if w.Transports[0].AliveCount() != 0 {
		t.Fatalf("alive count %d after peer shutdown, want 0", w.Transports[0].AliveCount())
	}
}

func waitCond(t *testing.T, w *transporttest.World, cond func() bool) {
	t.Helper()
	until := int64(0)
	for until < 5000 {
		if cond() {
			return
		}
		until += 25
		w.Run(until)
	}
	t.Fatal("condition never held")
}

type nopHandler struct{}

func (nopHandler) HandleMessage(runtime.NodeID, any)              {}
func (nopHandler) HandleRequest(runtime.NodeID, any) (any, error) { return nil, nil }
