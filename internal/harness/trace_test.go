package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"flowercdn/internal/metrics"
	"flowercdn/internal/obs"
	"flowercdn/internal/proto"
	_ "flowercdn/internal/protocols"
	"flowercdn/internal/trace"
)

// tracedTinyConfig is the shared cell for the trace tests: tinyConfig
// with tracing on.
func tracedTinyConfig() Config {
	cfg := tinyConfig()
	cfg.Trace = &TraceConfig{}
	return cfg
}

// traceCSV renders a run's records through the canonical CSV writer —
// the byte stream the determinism assertions compare.
func traceCSV(t *testing.T, recs []*trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminismSim: the same sim cell run twice produces
// byte-identical trace streams — tracing inherits the simulator's
// determinism instead of weakening it.
func TestTraceDeterminismSim(t *testing.T) {
	cfg := tracedTinyConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Traces) == 0 {
		t.Fatal("traced run produced no records")
	}
	csvA, csvB := traceCSV(t, a.Traces), traceCSV(t, b.Traces)
	if !bytes.Equal(csvA, csvB) {
		t.Fatalf("same cell, different trace streams (%d vs %d bytes)", len(csvA), len(csvB))
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints diverged: %x vs %x", a.Fingerprint, b.Fingerprint)
	}
}

// TestTraceDoesNotChangeFingerprint pins the zero-overhead contract at
// run level: enabling tracing must not move a single simulated event —
// same fingerprint, same aggregates — because trace records ride their
// own metrics kind and no message's modeled size grows.
func TestTraceDoesNotChangeFingerprint(t *testing.T) {
	plain, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(tracedTinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint != traced.Fingerprint {
		t.Fatalf("tracing changed the fingerprint: %x vs %x", plain.Fingerprint, traced.Fingerprint)
	}
	if plain.Queries != traced.Queries || plain.Hits != traced.Hits {
		t.Fatalf("tracing changed aggregates: %d/%d vs %d/%d queries/hits",
			plain.Queries, plain.Hits, traced.Queries, traced.Hits)
	}
	if len(plain.Traces) != 0 {
		t.Fatalf("untraced run collected %d records", len(plain.Traces))
	}
}

// TestTraceOnRecordCallback: the streaming hook sees every record the
// collector keeps.
func TestTraceOnRecordCallback(t *testing.T) {
	streamed := 0
	cfg := tinyConfig()
	cfg.Trace = &TraceConfig{OnRecord: func(rec *trace.Record) {
		if rec == nil || len(rec.Hops) == 0 {
			t.Error("callback received an empty record")
		}
		streamed++
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(res.Traces) {
		t.Fatalf("callback saw %d records, collector kept %d", streamed, len(res.Traces))
	}
}

// checkWellFormed asserts the per-record trace invariants every
// backend and protocol must uphold: hops exist, start with the issuing
// client, advance in nondecreasing time, and terminate at the serving
// node (HopServe).
func checkWellFormed(t *testing.T, recs []*trace.Record) {
	t.Helper()
	for _, rec := range recs {
		if len(rec.Hops) == 0 {
			t.Fatalf("query %d: empty path", rec.Query)
		}
		first, last := rec.Hops[0], rec.Hops[len(rec.Hops)-1]
		if first.Kind != trace.HopIssue || first.Node != rec.Client {
			t.Fatalf("query %d: path starts %v@%d, want issue@%d", rec.Query, first.Kind, first.Node, rec.Client)
		}
		if last.Kind != trace.HopServe {
			t.Fatalf("query %d: terminal hop is %v, not serve", rec.Query, last.Kind)
		}
		for i := 1; i < len(rec.Hops); i++ {
			if rec.Hops[i].At < rec.Hops[i-1].At {
				t.Fatalf("query %d: hop %d time %d < %d", rec.Query, i, rec.Hops[i].At, rec.Hops[i-1].At)
			}
		}
	}
}

// TestTraceConformanceSim runs every registered protocol on the sim
// backend with tracing and checks the uniform contract: well-formed
// records for everything that answers queries, and — the acceptance
// bar — the trace-derived mean hop count equal to the counter-derived
// Result.MeanHops, exactly, because both tallies are incremented at
// the same delivery sites.
func TestTraceConformanceSim(t *testing.T) {
	for _, name := range proto.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := RealtimeDemoConfig(50, 10_000)
			cfg.Backend = "sim"
			cfg.Protocol = Protocol(name)
			cfg.Trace = &TraceConfig{}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkWellFormed(t, res.Traces)
			info, _ := proto.Lookup(name)
			if info.Compare && len(res.Traces) == 0 {
				t.Fatalf("comparable protocol emitted no traces over %d queries", res.Queries)
			}
			if got, want := res.TraceStats.MeanHops(), res.MeanHops; got != want {
				t.Fatalf("trace-derived mean hops %v != counter-derived %v", got, want)
			}
		})
	}
}

// TestTraceConformanceRealtime repeats the conformance check on the
// wall-clock backend (~1.5 s per protocol): the same invariants hold
// when hops are stamped from a real clock on live goroutines.
func TestTraceConformanceRealtime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short mode")
	}
	for _, name := range proto.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := RealtimeDemoConfig(50, 1500)
			cfg.Protocol = Protocol(name)
			cfg.Trace = &TraceConfig{}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkWellFormed(t, res.Traces)
			if got, want := res.TraceStats.MeanHops(), res.MeanHops; got != want {
				t.Fatalf("trace-derived mean hops %v != counter-derived %v", got, want)
			}
		})
	}
}

// TestGoldenTraces pins the routing structure the traces must reveal
// at quick scale: flower resolves queries inside the client's locality
// with (nearly) no overlay routing, while the global baselines pay the
// ring — chord-global around log2(P)/2 hops per routed query,
// koorde-global meaningfully fewer — and the gap is visible in the
// per-hop breakdown, not just the aggregate counters.
func TestGoldenTraces(t *testing.T) {
	run := func(p Protocol) (*Result, trace.Breakdown) {
		cfg := tracedTinyConfig()
		cfg.Protocol = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Traces) == 0 {
			t.Fatalf("%s: no traces", p)
		}
		return res, trace.Analyze(res.Traces, res.HopLatency)
	}

	_, flower := run(ProtocolFlower)
	chordRes, chord := run(Protocol("chord-global"))
	koordeRes, koorde := run(Protocol("koorde-global"))

	// Flower's directory lives in the client's locality: queries route
	// through (almost) no overlay hops and mostly resolve locally.
	if flower.MeanRouteHops > 0.5 {
		t.Fatalf("flower mean route hops %.2f, want ~0", flower.MeanRouteHops)
	}
	if flower.WithinLocality < 0.10 {
		t.Fatalf("flower within-locality share %.3f, want the dominant hit mode", flower.WithinLocality)
	}
	// The global baselines pay the overlay on every query: chord about
	// log2(P)/2, koorde fewer (the degree-2 de Bruijn bound).
	if chord.MeanRouteHops < 3.0 || chord.MeanRouteHops > 6.5 {
		t.Fatalf("chord-global mean route hops %.2f, want ~log2(P)/2", chord.MeanRouteHops)
	}
	if koorde.MeanRouteHops < 1.5 || koorde.MeanRouteHops > 4.5 {
		t.Fatalf("koorde-global mean route hops %.2f", koorde.MeanRouteHops)
	}
	if koorde.MeanRouteHops >= chord.MeanRouteHops {
		t.Fatalf("koorde (%.2f hops) should beat chord (%.2f hops)",
			koorde.MeanRouteHops, chord.MeanRouteHops)
	}
	// The breakdown's hop tally is the counters' tally, not a parallel
	// reality: trace-derived means match Result.MeanHops exactly.
	for _, c := range []struct {
		res *Result
		bd  trace.Breakdown
	}{{chordRes, chord}, {koordeRes, koorde}} {
		if got, want := c.res.TraceStats.MeanHops(), c.res.MeanHops; got != want {
			t.Fatalf("trace stats mean hops %v != counter mean hops %v", got, want)
		}
	}
	// And the report renders the split (link vs queue) when given the
	// topology latency function.
	if !chord.Split {
		t.Fatal("breakdown did not compute the link/queue split despite a latency function")
	}
	if !strings.Contains(chord.Format(), "link-ms") {
		t.Fatal("formatted breakdown is missing the latency split columns")
	}
}

// TestTraceLiveEndpoint exercises the observability server end to end
// on a realtime run: /metrics serves the live aggregate lines and
// /traces serves the collected records as JSON. The endpoints are
// probed from the window hook — mid-run — because the harness stops an
// attached server when the run returns; a post-run probe would hit a
// closed listener by design. It also asserts exactly that: the
// endpoint must be gone once Run is over.
func TestTraceLiveEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short mode")
	}
	srv := obs.NewServer(0)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	// The window hook runs on the run loop, not the test goroutine, so
	// it only records; all assertions happen after Run returns. Each
	// window overwrites the bodies — the last successful probe wins.
	var metricsBody, tracesBody string
	cfg := RealtimeDemoConfig(50, 1500)
	cfg.Trace = &TraceConfig{}
	cfg.Obs = srv
	cfg.OnWindow = func(metrics.SeriesPoint) {
		if b, err := tryGet(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
			metricsBody = b
		}
		if b, err := tryGet(fmt.Sprintf("http://%s/traces", addr)); err == nil {
			tracesBody = b
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries on the realtime run")
	}

	if metricsBody == "" {
		t.Fatal("no successful /metrics probe during the run")
	}
	for _, want := range []string{"queries_total", "hit_ratio", "traces_total"} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("/metrics is missing %q:\n%s", want, metricsBody)
		}
	}

	var traces []struct {
		Query uint64 `json:"query"`
		Hops  []struct {
			Kind string `json:"kind"`
		} `json:"hops"`
	}
	if err := json.Unmarshal([]byte(tracesBody), &traces); err != nil {
		t.Fatalf("/traces is not JSON: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("/traces served no records mid-run")
	}
	if last := traces[len(traces)-1]; len(last.Hops) == 0 || last.Hops[len(last.Hops)-1].Kind != "serve" {
		t.Fatalf("served trace is malformed: %+v", last)
	}

	// The run is over; the harness must have shut the endpoint down
	// with it (the follower-shutdown contract).
	if _, err := tryGet(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Fatal("obs endpoint still serving after the run returned")
	}
}

// tryGet is an HTTP GET without test plumbing, callable off the test
// goroutine.
func tryGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
