package harness

import (
	"testing"

	"flowercdn/internal/proto"
	_ "flowercdn/internal/protocols"
)

// TestCrossBackendSmokeSim runs every registered protocol at toy scale
// on the deterministic backend with the compressed demo timescales and
// asserts the basic health signals: queries flow, the population is
// alive at the end, and every head-to-head protocol achieves a
// non-zero hit ratio.
func TestCrossBackendSmokeSim(t *testing.T) {
	for _, name := range proto.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := RealtimeDemoConfig(50, 10_000)
			cfg.Backend = "sim"
			cfg.Protocol = Protocol(name)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Queries == 0 {
				t.Fatal("no queries at all")
			}
			if res.AlivePeers == 0 {
				t.Fatal("no peers alive at the end of the run")
			}
			info, _ := proto.Lookup(name)
			if info.Compare && res.Hits == 0 {
				t.Fatalf("comparable protocol served zero hits over %d queries", res.Queries)
			}
			if res.Fingerprint == 0 {
				t.Fatal("zero fingerprint")
			}
			if res.Backend != "sim" {
				t.Fatalf("result backend %q", res.Backend)
			}
		})
	}
}

// TestCacheBoundedSmokeSim runs every registered protocol once more
// with an LRU-bounded store small enough that evictions must happen:
// the cache seam is threaded through every driver, and a bounded run
// completes cleanly on the deterministic backend.
func TestCacheBoundedSmokeSim(t *testing.T) {
	for _, name := range proto.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := RealtimeDemoConfig(50, 10_000)
			cfg.Backend = "sim"
			cfg.Protocol = Protocol(name)
			cfg.Options["cache-policy"] = "lru"
			cfg.Options["cache-capacity"] = 2
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Queries == 0 {
				t.Fatal("no queries at all")
			}
			if res.AlivePeers == 0 {
				t.Fatal("no peers alive at the end of the run")
			}
			if res.ProtoStat("evictions") == 0 {
				t.Fatalf("%s at capacity 2 never evicted over %d queries", name, res.Queries)
			}
		})
	}
}

// TestCrossBackendSmokeRealtime runs every registered protocol on the
// wall-clock backend for a short horizon each — this test genuinely
// takes ~1.5 s per protocol — and asserts clean completion with live
// queries. Hit assertions are limited to the query-dense flower family:
// at seconds-scale horizons the sparser protocols' hit counts are
// legitimately noisy (that's what the deterministic leg above pins
// down).
func TestCrossBackendSmokeRealtime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short mode")
	}
	for _, name := range proto.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := RealtimeDemoConfig(50, 1500)
			cfg.Protocol = Protocol(name)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Backend != "realtime" {
				t.Fatalf("result backend %q", res.Backend)
			}
			if res.Queries == 0 {
				t.Fatal("no queries at all on the realtime backend")
			}
			if res.AlivePeers == 0 {
				t.Fatal("no peers alive at the end of the run")
			}
			if (name == "flower" || name == "petalup") && res.Hits == 0 {
				t.Fatalf("%s served zero hits over %d queries", name, res.Queries)
			}
		})
	}
}

// TestCacheBoundedSmokeRealtime repeats the bounded-cache smoke on the
// wall-clock backend: the eviction path runs outside the simulator
// too, with live eviction counters and a clean shutdown. ~1.5 s per
// protocol.
func TestCacheBoundedSmokeRealtime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short mode")
	}
	for _, name := range proto.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := RealtimeDemoConfig(50, 1500)
			cfg.Protocol = Protocol(name)
			cfg.Options["cache-policy"] = "lru"
			cfg.Options["cache-capacity"] = 2
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Backend != "realtime" {
				t.Fatalf("result backend %q", res.Backend)
			}
			if res.Queries == 0 {
				t.Fatal("no queries at all on the realtime backend")
			}
			if res.AlivePeers == 0 {
				t.Fatal("no peers alive at the end of the run")
			}
			if res.ProtoStat("evictions") == 0 {
				t.Fatalf("%s at capacity 2 never evicted over %d queries", name, res.Queries)
			}
		})
	}
}
