package harness

import (
	"fmt"
	"sort"
	"strings"

	"flowercdn/internal/metrics"
	"flowercdn/internal/proto"
	"flowercdn/internal/runtime"
)

// FormatTable1 renders the run's parameter sheet in the shape of the
// paper's Table 1.
func FormatTable1(cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Simulation Parameters\n")
	fmt.Fprintf(&b, "  %-28s %v\n", "Latency (ms)", fmt.Sprintf("%d-%d", cfg.Topology.MinLatency, cfg.Topology.MaxLatency))
	fmt.Fprintf(&b, "  %-28s %d\n", "Nb of localities (k)", cfg.Topology.Localities)
	fmt.Fprintf(&b, "  %-28s %d\n", "Nb of websites (|W|)", cfg.Workload.Sites)
	fmt.Fprintf(&b, "  %-28s %d\n", "Mean population size (P)", cfg.Population)
	fmt.Fprintf(&b, "  %-28s %d min\n", "Mean uptime of a peer (m)", cfg.MeanUptime/runtime.Minute)
	fmt.Fprintf(&b, "  %-28s %d\n", "Nb of objects/website", cfg.Workload.ObjectsPerSite)
	fmt.Fprintf(&b, "  %-28s 1 query every %d min\n", "Query rate at a peer", cfg.Workload.QueryMeanInterval/runtime.Minute)
	fmt.Fprintf(&b, "  %-28s %d (of %d)\n", "Active websites", cfg.Workload.ActiveSites, cfg.Workload.Sites)
	// The fallbacks mirror flower.DefaultConfig's Table 1 values (the
	// harness no longer imports protocol packages); the façade always
	// lowers both keys, so the fallbacks only show for direct harness
	// callers that left Options empty.
	fmt.Fprintf(&b, "  %-28s %.2f\n", "Push threshold", cfg.Options.Float("push-threshold", 0.5))
	fmt.Fprintf(&b, "  %-28s %d min\n", "Gossip/keepalive period", cfg.Options.Duration("gossip-period", runtime.Hour)/runtime.Minute)
	return b.String()
}

// FormatFig3 renders the hit-ratio-over-time comparison (paper Fig. 3)
// as one row per window.
func FormatFig3(f, s *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: hit ratio over time (P=%d)\n", f.Population)
	fmt.Fprintf(&b, "  %-8s %-12s %-12s\n", "hour", "Flower-CDN", "Squirrel")
	n := len(f.Series)
	if len(s.Series) > n {
		n = len(s.Series)
	}
	for i := 0; i < n; i++ {
		var fv, sv string
		if i < len(f.Series) {
			fv = fmt.Sprintf("%.3f", f.Series[i].HitRatio)
		}
		if i < len(s.Series) {
			sv = fmt.Sprintf("%.3f", s.Series[i].HitRatio)
		}
		fmt.Fprintf(&b, "  %-8d %-12s %-12s\n", i+1, fv, sv)
	}
	improve := 0.0
	if s.TailHitRatio > 0 {
		improve = (f.TailHitRatio - s.TailHitRatio) / s.TailHitRatio * 100
	}
	fmt.Fprintf(&b, "  final: Flower %.3f vs Squirrel %.3f (improvement %+.0f%%)\n",
		f.TailHitRatio, s.TailHitRatio, improve)
	return b.String()
}

// FormatFig4 renders the lookup-latency distributions (paper Fig. 4).
func FormatFig4(f, s *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: lookup latency distribution (P=%d)\n", f.Population)
	fmt.Fprintf(&b, "  Flower-CDN : %s\n", f.Lookup)
	fmt.Fprintf(&b, "  Squirrel   : %s\n", s.Lookup)
	fmt.Fprintf(&b, "  within 150 ms: Flower %.0f%%, Squirrel %.0f%% (paper: 66%% vs n/a)\n",
		100*f.Lookup.CDFAt(150), 100*s.Lookup.CDFAt(150))
	fmt.Fprintf(&b, "  beyond 1200 ms: Flower %.0f%%, Squirrel %.0f%% (paper: n/a vs 75%%)\n",
		100*f.Lookup.TailFraction(1200), 100*s.Lookup.TailFraction(1200))
	return b.String()
}

// FormatFig5 renders the transfer-distance distributions (paper Fig. 5).
func FormatFig5(f, s *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: transfer distance distribution (P=%d)\n", f.Population)
	fmt.Fprintf(&b, "  Flower-CDN : %s\n", f.Transfer)
	fmt.Fprintf(&b, "  Squirrel   : %s\n", s.Transfer)
	fmt.Fprintf(&b, "  within 100 ms: Flower %.0f%%, Squirrel %.0f%% (paper: 62%% vs 22%%)\n",
		100*f.Transfer.CDFAt(100), 100*s.Transfer.CDFAt(100))
	return b.String()
}

// FormatTable2 renders the scalability sweep (paper Table 2).
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Scalability in Flower-CDN and Squirrel\n")
	fmt.Fprintf(&b, "  %-6s %-12s %-10s %-12s %-12s\n", "P", "approach", "hit ratio", "lookup", "transfer")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6d %-12s %-10.2f %-12s %-12s\n", r.Population, "Squirrel",
			r.Squirrel.TailHitRatio, fmtMs(r.Squirrel.MeanLookupMs), fmtMs(r.Squirrel.MeanTransferMs))
		fmt.Fprintf(&b, "  %-6s %-12s %-10.2f %-12s %-12s\n", "", "Flower-CDN",
			r.Flower.TailHitRatio, fmtMs(r.Flower.MeanLookupMs), fmtMs(r.Flower.MeanTransferMs))
	}
	if last := len(rows) - 1; last >= 0 {
		r := rows[last]
		if r.Flower.MeanLookupMs > 0 && r.Flower.MeanTransferMs > 0 {
			fmt.Fprintf(&b, "  improvement at P=%d: lookup x%.1f, transfer x%.1f\n",
				r.Population,
				r.Squirrel.MeanLookupMs/r.Flower.MeanLookupMs,
				r.Squirrel.MeanTransferMs/r.Flower.MeanTransferMs)
		}
	}
	return b.String()
}

func fmtMs(v float64) string { return fmt.Sprintf("%.0f ms", v) }

// fmtDuration prints an experiment horizon in hours at paper scale and
// in seconds for sub-hour (realtime demo) runs.
func fmtDuration(ms int64) string {
	if ms >= runtime.Hour {
		return fmt.Sprintf("%d h", ms/runtime.Hour)
	}
	return fmt.Sprintf("%.1f s", float64(ms)/float64(runtime.Second))
}

// FormatSummary renders one run's headline numbers.
func FormatSummary(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s P=%d (%s): hit ratio %.3f (tail %.3f), lookup %.0f ms, transfer %.0f ms\n",
		r.Protocol, r.Population, fmtDuration(r.Duration), r.HitRatio, r.TailHitRatio, r.MeanLookupMs, r.MeanTransferMs)
	fmt.Fprintf(&b, "  queries %d (hits %d: gossip %d, directory %d, summary %d; misses %d)\n",
		r.Queries, r.Hits, r.GossipHits, r.DirectoryHits, r.DirSummaryHits, r.Misses)
	fmt.Fprintf(&b, "  alive peers %d, events %d, messages %d\n",
		r.AlivePeers, r.EventsProcessed, r.NetStats.MessagesSent)
	// Generic protocol stats, sorted for stable output; the well-known
	// gauges already printed above are skipped.
	keys := make([]string, 0, len(r.Proto))
	for k := range r.Proto {
		if k == proto.StatAlivePeers {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		fmt.Fprintf(&b, " ")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%g", k, r.Proto[k])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Fig4Bounds re-exports the metric bucket bounds for callers printing
// their own headers.
var Fig4Bounds = metrics.Fig4Bounds

// Fig5Bounds re-exports the transfer bucket bounds.
var Fig5Bounds = metrics.Fig5Bounds
