package harness

import (
	"testing"

	"flowercdn/internal/metrics"
	_ "flowercdn/internal/protocols"
)

// TestFingerprintDeterministic runs the same cell twice and demands
// identical fingerprints — the in-process half of the cross-process CI
// check (make fingerprint-check), and the mechanical tripwire for any
// future map-order nondeterminism feeding the event stream.
func TestFingerprintDeterministic(t *testing.T) {
	cfg := QuickConfig()
	cfg.Population = 120
	cfg.Duration /= 4
	cfg.MessageLossRate = 0.05 // loss consumes RNG draws per send: the historically fragile path

	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == 0 {
		t.Fatal("zero fingerprint")
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same cell, different fingerprints: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}

	// A different seed must perturb the fingerprint (the hash actually
	// covers the run, not just the config).
	cfg.Seed++
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatalf("different seeds, same fingerprint %016x", a.Fingerprint)
	}
}

// TestOnWindowFiresLive checks the per-window observer: closed windows
// are surfaced during the run, in order, and match the final series.
func TestOnWindowFiresLive(t *testing.T) {
	cfg := QuickConfig()
	cfg.Population = 80
	cfg.Duration /= 2
	var live []metrics.SeriesPoint
	cfg.OnWindow = func(p metrics.SeriesPoint) { live = append(live, p) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("OnWindow never fired")
	}
	for i, p := range live {
		if i >= len(res.Series) {
			// Windows silent through end-of-run are surfaced live as
			// empty points even though the final series never
			// materializes them.
			if p.Queries != 0 {
				t.Fatalf("live-only window %d has %d queries", i, p.Queries)
			}
			continue
		}
		if p.Start != res.Series[i].Start || p.Queries != res.Series[i].Queries {
			t.Fatalf("live window %d = %+v, final series says %+v", i, p, res.Series[i])
		}
	}
}
