// Package harness assembles full simulation runs reproducing the
// paper's evaluation (Sec. 6): it wires the engine, topology, network,
// workload, origins, churn and one protocol deployment together, runs
// the experiment, and renders the same tables and figures the paper
// reports — Fig. 3 (hit ratio over time), Fig. 4 (lookup latency
// distribution), Fig. 5 (transfer distance distribution) and Table 2
// (scalability sweep), plus the Table 1 parameter sheet.
//
// The harness knows no concrete protocol: deployments are resolved by
// name through the internal/proto registry and driven through the
// proto.System interface, configuration flows down as an opaque
// proto.Options map, and measurements flow back as a typed event
// stream aggregated by internal/metrics. Callers must ensure the
// protocols they name are registered (importing internal/protocols
// registers every built-in one).
package harness

import (
	"errors"
	"fmt"
	"io"
	goruntime "runtime" // aliased: flowercdn/internal/runtime owns the plain name

	"flowercdn/internal/churn"
	"flowercdn/internal/metrics"
	"flowercdn/internal/obs"
	"flowercdn/internal/proto"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
	"flowercdn/internal/trace"
	"flowercdn/internal/workload"

	// The harness resolves backends solely through the runtime registry;
	// importing the built-in backends keeps every harness caller able to
	// name them, the same way internal/protocols registers the drivers.
	// socknet is additionally imported for its WireStats type, the
	// serialized-traffic report the socket backend alone can produce.
	_ "flowercdn/internal/rtnet"
	_ "flowercdn/internal/simrt"
	"flowercdn/internal/socknet"
)

// Protocol names the deployment under test; any name registered with
// internal/proto is valid. The constants cover the built-ins.
type Protocol string

const (
	// ProtocolFlower is classic Flower-CDN.
	ProtocolFlower Protocol = "flower"
	// ProtocolPetalUp is Flower-CDN with directory splitting enabled.
	ProtocolPetalUp Protocol = "petalup"
	// ProtocolSquirrel is the paper's baseline.
	ProtocolSquirrel Protocol = "squirrel"
	// ProtocolChordGlobal is a global Chord directory without locality.
	ProtocolChordGlobal Protocol = "chord-global"
	// ProtocolKoordeGlobal is chord-global's deployment scheme routed
	// over Koorde de Bruijn edges.
	ProtocolKoordeGlobal Protocol = "koorde-global"
	// ProtocolOriginOnly sends every query to the origin (the floor).
	ProtocolOriginOnly Protocol = "origin-only"
)

// Config describes one experiment run. DefaultConfig reproduces
// Table 1.
type Config struct {
	Protocol Protocol
	// Backend names the runtime backend the run executes on: "sim"
	// (default — the deterministic discrete-event engine), "realtime"
	// (wall-clock timers; the run genuinely takes Duration to finish)
	// or "socket" (wall-clock timers with the population partitioned
	// across cooperating OS processes over TCP — see Socket). Any name
	// registered with internal/runtime is valid.
	Backend string
	// Socket describes this process's slot in a socket-backend group:
	// listen address, the full index-ordered peer list and our index.
	// Required when Backend is "socket"; must be nil otherwise. The
	// harness derives the process's population share, seed subset and
	// per-group RNG streams from it, so N processes running the same
	// Config (differing only in Socket.Group) form one population.
	Socket *runtime.SocketConfig
	// Seed drives all randomness; equal seeds give identical runs on
	// the sim backend.
	Seed uint64
	// Population is P, the mean population size churn converges to.
	Population int
	// Duration is the experiment length (Table 1 runs: 24 h).
	Duration int64
	// SeedStagger is the gap between initial bootstrap-participant
	// joins.
	SeedStagger int64

	Topology topology.Config
	Workload workload.Config
	// MeanUptime is m (Table 1: 60 min).
	MeanUptime int64
	// LocalitySkew biases which locality a joining client lands in: 0
	// (the paper's setting) distributes arrivals uniformly over the k
	// localities; larger values Zipf-concentrate them into low-index
	// localities (exponent = LocalitySkew), modelling a geographically
	// skewed audience. Locality-blind protocols ignore it.
	LocalitySkew float64
	// MessageLossRate injects random one-way message loss on top of
	// churn (0 = the paper's reliable links).
	MessageLossRate float64

	// Options carries protocol-specific knobs, interpreted by the
	// registered driver (see each driver's documented keys). Keys a
	// protocol does not understand are ignored, so one option set can
	// serve a whole comparison grid.
	Options proto.Options

	// SeriesWindow is the Fig. 3 bucketing (1 h).
	SeriesWindow int64
	// TailWindows is how many final windows Table 2's hit ratio
	// averages over.
	TailWindows int

	// OnWindow, when set, is called at the close of every SeriesWindow
	// with that window's aggregates — live per-window metrics for
	// wall-clock runs (on the sim backend it fires too, just at
	// simulation speed). It runs on the run's callback goroutine and
	// must not block.
	OnWindow func(metrics.SeriesPoint)

	// ChurnSchedule layers deterministic adversarial churn events on
	// top of the background Poisson churn: mass joins, correlated mass
	// failures, flapping bursts. Events fire at their absolute sim
	// times on the run's callback goroutine; on a multi-process backend
	// each process applies the schedule to its own population share.
	ChurnSchedule []ChurnEvent
	// Checkpoints are absolute run times at which OnCheckpoint fires —
	// the hook internal/ringcheck uses to snapshot overlay state
	// between churn events. Ignored when OnCheckpoint is nil.
	Checkpoints []int64
	// OnCheckpoint runs at each checkpoint with the deployment under
	// test (assert on it via proto.RingInspector). It runs on the
	// run's callback goroutine and must not block.
	OnCheckpoint func(now int64, sys proto.System)
	// MeasureMem samples Go heap statistics at the end of the run (after
	// a forced GC, with the deployment still live) into Result.MemStats.
	// The per-node quotient is the number the big-cell benchmarks track;
	// it is meaningful only when this process hosts the whole population,
	// so it is left nil for multi-process socket groups.
	MeasureMem bool

	// Trace opts the run into per-query lookup tracing (see
	// internal/trace). Nil — the default — is the zero-overhead
	// disabled state: drivers skip all hop construction and the run
	// fingerprint is unchanged. When set, every completed query's
	// hop-by-hop record lands in Result.Traces; on a socket group,
	// follower processes additionally ship their records home over the
	// announcement bus, so group 0 collects the whole population's.
	Trace *TraceConfig

	// Obs, when set, is attached to the run's metrics pipeline so the
	// live observability server sees queries, counters and traces as
	// they happen (realtime/socket runs; works on sim too). The caller
	// builds and starts the server; the harness stops it when the run
	// returns (Stop is idempotent, so a caller-side stop stays safe),
	// keeping the endpoint's lifetime tied to the run it reports on.
	Obs *obs.Server
}

// TraceConfig opts a run into per-query lookup tracing.
type TraceConfig struct {
	// OnRecord, when set, receives every completed query's record as
	// it is emitted, on the run's callback goroutine; it must not
	// block. Records are also collected into Result.Traces regardless.
	OnRecord func(*trace.Record)
}

// ChurnEvent is one scheduled adversarial churn action. FailFraction
// kills that share of the currently-online sessions (uniformly chosen,
// never announced — like every churn departure); Join brings that many
// individuals online immediately, each with a fresh exponential
// lifetime. A single event may do both (fail first, then join).
type ChurnEvent struct {
	// At is the absolute run time of the event, in ms.
	At int64
	// FailFraction of currently-online sessions to kill, in [0, 1].
	FailFraction float64
	// Join is the number of immediate arrivals.
	Join int
}

// ResolvedBackend returns the backend this config runs on ("sim" when
// unset).
func (c Config) ResolvedBackend() string {
	if c.Backend == "" {
		return "sim"
	}
	return c.Backend
}

// groupInfo returns this process's slot in the process group: (0, 1)
// for single-process backends.
func (c Config) groupInfo() (group, groups int) {
	if c.Socket != nil && len(c.Socket.Peers) > 0 {
		return c.Socket.Group, len(c.Socket.Peers)
	}
	return 0, 1
}

// groupShare splits an integer quantity (population, seed count)
// evenly over the group, remainder to the low indexes.
func groupShare(total, group, groups int) int {
	share := total / groups
	if group < total%groups {
		share++
	}
	return share
}

// DefaultConfig returns the paper's simulation parameters (Table 1)
// for P = 3000 and Flower-CDN.
func DefaultConfig() Config {
	return Config{
		Protocol:     ProtocolFlower,
		Seed:         1,
		Population:   3000,
		Duration:     24 * runtime.Hour,
		SeedStagger:  time2sPerSeed,
		Topology:     topology.DefaultConfig(),
		Workload:     workload.DefaultConfig(),
		MeanUptime:   60 * runtime.Minute,
		SeriesWindow: 1 * runtime.Hour,
		TailWindows:  3,
	}
}

const time2sPerSeed = 2 * runtime.Second

// QuickConfig returns a scaled-down experiment that preserves the
// paper's proportions (active-site share, per-petal densities, churn
// ratio) while running in seconds instead of minutes. Tests, examples
// and the default benchmarks use it; cmd/flowerbench runs the full
// Table 1 scale.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Population = 400
	cfg.Duration = 8 * runtime.Hour
	cfg.Workload.Sites = 20
	cfg.Workload.ActiveSites = 3
	cfg.Workload.ObjectsPerSite = 200
	cfg.SeedStagger = 1 * runtime.Second
	return cfg
}

// RealtimeDemoConfig returns a configuration scaled for wall-clock
// execution on the "realtime" backend: a small population with the
// paper's timescales compressed roughly 3600× (sub-second gossip and
// keepalive periods, queries every ~50 ms, 1 s metric windows), so a
// seconds-scale horizon exhibits the full protocol lifecycle — seed
// bootstrap, directory registration, petal gossip, churn — in real
// time. horizon is wall-clock milliseconds.
func RealtimeDemoConfig(population int, horizon int64) Config {
	cfg := DefaultConfig()
	cfg.Backend = "realtime"
	cfg.Population = population
	cfg.Duration = horizon
	cfg.SeedStagger = 10 * runtime.Millisecond
	cfg.Topology.Localities = 3
	cfg.Workload.Sites = 3
	cfg.Workload.ActiveSites = 3
	cfg.Workload.ObjectsPerSite = 120
	cfg.Workload.QueryMeanInterval = 50 * runtime.Millisecond
	cfg.Workload.ZipfAlpha = 1.0
	// Churn fast enough to ramp the population within the demo (the
	// arrival gap is MeanUptime/P) while still failing sessions on
	// camera; floor it so sub-second horizons stay sane.
	cfg.MeanUptime = horizon / 2
	if cfg.MeanUptime < 2*runtime.Second {
		cfg.MeanUptime = 2 * runtime.Second
	}
	cfg.SeriesWindow = 1 * runtime.Second
	cfg.TailWindows = 2
	cfg.Options = proto.Options{
		"gossip-period":      250 * runtime.Millisecond,
		"keepalive-interval": 250 * runtime.Millisecond,
		// Table 1's 10 s query timeout and 30 s bootstrap-claim retry
		// dwarf a seconds-scale horizon: a peer whose first routed query
		// or seed claim fails would stall for the whole demo. Compress
		// both like every other timescale.
		"query-timeout":    1500 * runtime.Millisecond,
		"seed-retry-delay": 400 * runtime.Millisecond,
		// The ring's own maintenance must compress with everything else
		// or it never stabilizes inside the horizon.
		"chord-demo": true,
	}
	return cfg
}

// SocketDemoConfig returns RealtimeDemoConfig scaled for the socket
// backend: the same compressed timescales, with the population spread
// over the process group described by sock. The seed stagger is wider
// than the realtime demo's because bootstrap seeds claim D-ring
// positions across process boundaries — each claim needs the founding
// announcement to have crossed the bus first. population and horizon
// are GROUP-wide: pass the same values to every process.
func SocketDemoConfig(population int, horizon int64, sock runtime.SocketConfig) Config {
	cfg := RealtimeDemoConfig(population, horizon)
	cfg.Backend = "socket"
	cfg.Socket = &sock
	cfg.SeedStagger = 50 * runtime.Millisecond
	return cfg
}

// Validate checks the configuration. Protocol names resolve against
// the runtime registry, so a protocol package must be imported (see
// internal/protocols) before its name validates.
func (c Config) Validate() error {
	if !proto.Registered(string(c.Protocol)) {
		return fmt.Errorf("harness: unknown protocol %q (registered: %v)", c.Protocol, proto.Names())
	}
	if !runtime.BackendRegistered(c.ResolvedBackend()) {
		return fmt.Errorf("harness: unknown backend %q (registered: %v)", c.ResolvedBackend(), runtime.Backends())
	}
	if c.ResolvedBackend() == "socket" {
		if c.Socket == nil {
			return errors.New(`harness: backend "socket" needs Config.Socket (listen address, peer list, group index)`)
		}
		if err := c.Socket.Validate(); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
	} else if c.Socket != nil {
		return fmt.Errorf("harness: Config.Socket set but backend is %q", c.ResolvedBackend())
	}
	if err := proto.Check(string(c.Protocol), c.Options); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	if c.Population < 1 {
		return errors.New("harness: population must be positive")
	}
	if c.Duration <= 0 {
		return errors.New("harness: duration must be positive")
	}
	if c.SeriesWindow <= 0 {
		return errors.New("harness: series window must be positive")
	}
	if c.MeanUptime <= 0 {
		return errors.New("harness: mean uptime must be positive")
	}
	if c.LocalitySkew < 0 {
		return errors.New("harness: locality skew must be non-negative")
	}
	if c.MessageLossRate < 0 || c.MessageLossRate >= 1 {
		return errors.New("harness: message loss rate out of [0, 1)")
	}
	for i, ev := range c.ChurnSchedule {
		if ev.At < 0 {
			return fmt.Errorf("harness: churn event %d at negative time %d", i, ev.At)
		}
		if ev.FailFraction < 0 || ev.FailFraction > 1 {
			return fmt.Errorf("harness: churn event %d fail fraction %g out of [0, 1]", i, ev.FailFraction)
		}
		if ev.Join < 0 {
			return fmt.Errorf("harness: churn event %d joins %d", i, ev.Join)
		}
	}
	return c.Workload.Validate()
}

// Result is the outcome of one run.
type Result struct {
	Protocol   Protocol
	Population int
	Duration   int64

	// HitRatio is cumulative over the run; TailHitRatio covers the
	// final TailWindows windows (the "after 24 simulation hours" view).
	HitRatio     float64
	TailHitRatio float64

	MeanLookupMs   float64
	MeanTransferMs float64
	// MeanHops is the mean overlay hop count per routed directory
	// query, for deployments that report per-query hop counts through
	// the "lookup_hops"/"routed_queries" counter pair (the structured
	// overlays do; origin-only has no overlay and reports 0).
	MeanHops float64

	// Quantiles complement the paper's means.
	LookupQuantiles   metrics.LatencySummary
	TransferQuantiles metrics.LatencySummary

	Series   []metrics.SeriesPoint
	Lookup   metrics.Distribution
	Transfer metrics.Distribution

	Queries    uint64
	Hits       uint64
	Misses     uint64
	Unresolved uint64

	// Outcome breakdown (outcomes a protocol never produces stay 0).
	GossipHits     uint64
	DirectoryHits  uint64
	DirSummaryHits uint64

	// AlivePeers is the population at the end of the run (the
	// well-known "alive_peers" gauge every deployment reports).
	AlivePeers int
	// Backend names the runtime backend the run executed on.
	Backend string
	// Fingerprint is an FNV-1a hash over the run's per-window query,
	// transfer and message counts. On the sim backend it is a
	// deterministic function of the configuration: two processes
	// running the same cell must produce the same value, so diffing
	// fingerprints across processes catches map-order nondeterminism
	// mechanically (see make fingerprint-check).
	Fingerprint uint64
	// Proto holds the deployment's generic counters and gauges: its
	// Stats() snapshot merged over the counter events it streamed
	// through the metrics pipeline during the run.
	Proto proto.Stats

	NetStats        runtime.TransportStats
	EventsProcessed uint64
	// Wire reports the actual serialized traffic — frame bytes, batch
	// counts, the codec in use — when the backend has a wire at all
	// (socket backend only; nil elsewhere). Compare its BytesSent with
	// NetStats.BytesSent to see modeled versus real message sizes.
	Wire *socknet.WireStats
	// MemStats is the end-of-run heap sample (nil unless
	// Config.MeasureMem was set).
	MemStats *MemStats

	// Traces holds every trace record this process collected (nil when
	// Config.Trace was nil). On a socket group, group 0 also receives
	// the records follower processes shipped home over the bus.
	Traces []*trace.Record
	// TraceStats is the tracer's delivery tally — by construction it
	// reconciles exactly with the "lookup_hops"/"routed_queries"
	// counter pair behind MeanHops.
	TraceStats trace.Stats
	// HopLatency is the run's modeled link-latency function, kept for
	// per-hop breakdown attribution (trace.Analyze). Like Traces it is
	// only set on traced runs: a func value would defeat the DeepEqual
	// comparisons the sweep determinism tests run on untraced results.
	HopLatency trace.LatencyFunc
}

// MemStats is the end-of-run memory sample taken when Config.MeasureMem
// is set: live heap after a forced GC while the deployment (every peer,
// view, store and overlay table) is still reachable, so BytesPerNode is
// the steady-state per-node footprint the big-cell path budgets against.
type MemStats struct {
	// HeapAllocBytes is the live heap after runtime.GC().
	HeapAllocBytes uint64
	// TotalAllocBytes is cumulative bytes allocated over the process
	// lifetime (monotone; includes freed memory).
	TotalAllocBytes uint64
	// Mallocs is the cumulative allocation count.
	Mallocs uint64
	// BytesPerNode is HeapAllocBytes / Config.Population.
	BytesPerNode float64
}

// ProtoStat reads one generic protocol stat (0 when absent).
func (r *Result) ProtoStat(name string) float64 { return r.Proto[name] }

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := rnd.New(cfg.Seed)
	topo, err := topology.New(cfg.Topology, master.Split("topology"))
	if err != nil {
		return nil, err
	}
	rt, err := runtime.NewBackend(cfg.ResolvedBackend(), runtime.BackendConfig{
		Topo:     topo,
		LossRate: cfg.MessageLossRate,
		LossRNG:  master.Split("loss"),
		Socket:   cfg.Socket,
	})
	if err != nil {
		return nil, err
	}
	// Multi-process backends hold OS resources (listener, mesh
	// connections); release them when the run ends.
	if closer, ok := rt.(io.Closer); ok {
		defer closer.Close()
	}
	clock, net := rt.Clock(), rt.Net()
	work, err := workload.New(cfg.Workload)
	if err != nil {
		return nil, err
	}
	origins := workload.NewOrigins(work, net, master.Split("origins"))

	// The metrics pipeline: the deployment streams typed events; the
	// collector aggregates the paper's three metrics and the generic
	// per-window series, the counter sink tallies whatever protocol
	// vocabulary flows by.
	coll := metrics.NewCollector(cfg.SeriesWindow)
	counters := metrics.NewCounters()
	pipe := metrics.NewPipeline(coll, counters)
	if cfg.Obs != nil {
		pipe.Attach(cfg.Obs)
		// The endpoint's lifetime is the run's: without this, a process
		// that returns early (a socket follower whose group finishes
		// first, an error path) leaves the HTTP server answering with
		// frozen aggregates until process exit. Stop is idempotent, so
		// an owner that also stops it races nothing.
		defer cfg.Obs.Stop() //nolint:errcheck // shutdown is best-effort
	}

	// On a multi-process run every process derives its own protocol RNG
	// stream: with the shared stream each process would mint identical
	// individuals (same interests, same placements) — a population of
	// clones instead of one population. Topology and loss splits stay
	// shared so the latency model is identical everywhere.
	group, groups := cfg.groupInfo()
	protoRNG := master.Split(string(cfg.Protocol))
	if groups > 1 {
		protoRNG = protoRNG.Split(fmt.Sprintf("group-%d", group))
	}

	// Optional per-query tracing: the tracer streams completed records
	// into the pipeline, a trace.Collector gathers them for the Result,
	// and on a socket group follower processes ship each record home
	// over the announcement bus so group 0 sees the whole population's.
	var tracer *trace.Tracer
	var traceColl *trace.Collector
	if cfg.Trace != nil {
		tracer = trace.New(pipe)
		traceColl = &trace.Collector{}
		pipe.Attach(traceColl)
		if fn := cfg.Trace.OnRecord; fn != nil {
			pipe.Attach(traceTap{fn})
		}
		if bus := runtime.BusOf(net); bus != nil {
			if group > 0 {
				pipe.Attach(traceShip{bus})
			} else {
				bus.Subscribe(func(msg any) {
					rec, ok := msg.(*trace.Record)
					if !ok {
						return
					}
					traceColl.Add(rec)
					if cfg.Obs != nil {
						cfg.Obs.AddTrace(rec)
					}
				})
			}
		}
	}

	env := proto.Env{
		Clock:        clock,
		Net:          net,
		Topo:         topo,
		RNG:          protoRNG,
		Workload:     work,
		Origins:      origins,
		Metrics:      pipe,
		Trace:        tracer,
		LocalitySkew: cfg.LocalitySkew,
		// Exactly one process bootstraps the overlay; the others wait
		// for announced gateways (see proto.Env.Follower).
		Follower: group > 0,
	}
	sys, err := proto.New(string(cfg.Protocol), env, cfg.Options)
	if err != nil {
		return nil, err
	}

	// Per-window observer: samples the transport counters at every
	// window close (feeding the run fingerprint) and surfaces live
	// window aggregates through cfg.OnWindow.
	obs := newWindowObserver(cfg, clock, net, coll)

	processed, err := drive(cfg, rt, master, sys)
	if err != nil {
		return nil, err
	}

	res := &Result{Protocol: cfg.Protocol, Population: cfg.Population, Duration: cfg.Duration, Backend: cfg.ResolvedBackend()}
	res.HitRatio = coll.HitRatio()
	res.TailHitRatio = coll.TailHitRatio(cfg.TailWindows)
	res.MeanLookupMs = coll.MeanLookupLatency()
	res.MeanTransferMs = coll.MeanTransferDistance()
	res.LookupQuantiles = coll.LookupSummary()
	res.TransferQuantiles = coll.TransferSummary()
	res.Series = coll.HitRatioSeries()
	res.Lookup = coll.LookupDistribution(metrics.Fig4Bounds)
	res.Transfer = coll.TransferDistribution(metrics.Fig5Bounds)
	res.Queries = coll.Total()
	res.Hits = coll.Hits()
	res.Misses = coll.Count(metrics.Miss)
	res.Unresolved = coll.Count(metrics.Unresolved)
	res.GossipHits = coll.Count(metrics.HitLocalGossip)
	res.DirectoryHits = coll.Count(metrics.HitDirectory)
	res.DirSummaryHits = coll.Count(metrics.HitDirectorySummary)

	// Generic protocol stats: streamed counters first, the deployment's
	// own snapshot second (gauges measured at the end of the run win).
	res.Proto = proto.Stats(counters.Snapshot())
	for k, v := range sys.Stats() {
		res.Proto[k] = v
	}
	res.AlivePeers = int(res.Proto[proto.StatAlivePeers])
	if rq := res.Proto["routed_queries"]; rq > 0 {
		res.MeanHops = res.Proto["lookup_hops"] / rq
	}

	if traceColl != nil {
		res.Traces = traceColl.Records()
		res.TraceStats = tracer.Stats()
		res.HopLatency = net.Latency
	}

	res.NetStats = net.Stats()
	if ws, ok := net.(interface{ WireStats() socknet.WireStats }); ok {
		w := ws.WireStats()
		res.Wire = &w
	}
	res.EventsProcessed = processed
	res.Fingerprint = fingerprint(coll.Windows(), obs.windowMessages(), res.NetStats)
	if _, groups := cfg.groupInfo(); cfg.MeasureMem && groups == 1 {
		// Sample while sys (and through it every peer) is still
		// reachable, so the forced GC cannot collect the deployment we
		// are trying to weigh.
		goruntime.GC()
		var m goruntime.MemStats
		goruntime.ReadMemStats(&m)
		res.MemStats = &MemStats{
			HeapAllocBytes:  m.HeapAlloc,
			TotalAllocBytes: m.TotalAlloc,
			Mallocs:         m.Mallocs,
			BytesPerNode:    float64(m.HeapAlloc) / float64(cfg.Population),
		}
		goruntime.KeepAlive(sys)
	}
	return res, nil
}

// traceTap forwards each emitted trace record to the run's OnRecord
// callback.
type traceTap struct{ fn func(*trace.Record) }

// Observe implements metrics.Sink.
func (t traceTap) Observe(ev metrics.Event) {
	if ev.Kind != metrics.KindTrace {
		return
	}
	if rec, ok := ev.Trace.(*trace.Record); ok {
		t.fn(rec)
	}
}

// traceShip announces each locally-emitted record on the process-group
// bus so group 0 collects the whole population's traces.
type traceShip struct{ bus runtime.Bus }

// Observe implements metrics.Sink.
func (t traceShip) Observe(ev metrics.Event) {
	if ev.Kind != metrics.KindTrace {
		return
	}
	if rec, ok := ev.Trace.(*trace.Record); ok {
		t.bus.Announce(rec)
	}
}

// PopulationFactor is Table 1's "Total network size P * 1.3": the pool
// of persistent individuals churn cycles through online sessions. An
// individual's interest, location and cached content survive offline
// periods; each session is a fresh network identity.
const PopulationFactor = 1.3

// pool manages the persistent individuals of one run, protocol-
// agnostically: the concrete individual type belongs to the deployment.
type pool struct {
	rng     *rnd.RNG
	inds    []proto.Individual
	offline []int // indexes into inds
	cap     int
}

// take picks a random offline individual to revive, or reports (with
// idx -1) that a fresh one should be minted. ok is false when everyone
// is online already.
func (p *pool) take() (idx int, ind proto.Individual, ok bool) {
	if len(p.offline) > 0 {
		i := p.rng.Intn(len(p.offline))
		idx := p.offline[i]
		p.offline[i] = p.offline[len(p.offline)-1]
		p.offline = p.offline[:len(p.offline)-1]
		return idx, p.inds[idx], true
	}
	if len(p.inds) >= p.cap {
		return 0, nil, false
	}
	return -1, nil, true
}

// add registers a newly minted individual and returns its index.
func (p *pool) add(ind proto.Individual) int {
	p.inds = append(p.inds, ind)
	return len(p.inds) - 1
}

// release returns an individual to the offline set.
func (p *pool) release(idx int) {
	p.offline = append(p.offline, idx)
}

// session is one tracked online session. A session's kill closure may
// be claimed by several schedulers at once — its churn lifetime timer
// and a ChurnSchedule mass failure race freely — so stop is idempotent:
// whichever fires first wins, every later call is a no-op.
type session struct {
	kill func()
	dead bool
}

func (s *session) stop() {
	if s.dead {
		return
	}
	s.dead = true
	s.kill()
}

// drive runs the protocol-agnostic experiment choreography: spawn the
// deployment's bootstrap participants (staggered, each with a limited
// uptime like any other peer), then let churn cycle the persistent
// population through online sessions until the horizon — with any
// ChurnSchedule events and checkpoint callbacks layered on top. It
// returns the number of events the backend processed.
//
// On a multi-process backend the choreography partitions: process g of
// N hosts every bootstrap seed with index ≡ g (mod N) — at the seed's
// global stagger slot, so the join storm looks identical — and runs a
// churn process targeting its share of the population. The union over
// processes is the same experiment a single process would run.
func drive(cfg Config, rt runtime.Runtime, master *rnd.RNG, sys proto.System) (uint64, error) {
	clock := rt.Clock()
	group, groups := cfg.groupInfo()
	churnRNG := master.Split("churn")
	if groups > 1 {
		churnRNG = churnRNG.Split(fmt.Sprintf("group-%d", group))
	}
	// A group whose population share rounds to zero hosts only its seed
	// subset: the pool cap of 0 makes it decline every fresh churn
	// arrival (the churn process itself needs a positive target, so it
	// idles against the empty pool instead), keeping the union of
	// processes at the configured population.
	popShare := groupShare(cfg.Population, group, groups)
	pl := &pool{
		rng: churnRNG,
		cap: int(float64(popShare) * PopulationFactor),
	}
	churnTarget := popShare
	if churnTarget < 1 {
		churnTarget = 1
	}
	// Every online session is tracked so scheduled mass failures can
	// pick victims from the genuinely-alive set without double-killing
	// sessions whose own departure timer fires later.
	var live []*session
	track := func(kill func()) *session {
		s := &session{kill: kill}
		live = append(live, s)
		return s
	}
	spawn := func() func() {
		idx, ind, ok := pl.take()
		if !ok {
			return nil // everyone is online already
		}
		if idx < 0 {
			ind = sys.NewIndividual()
			idx = pl.add(ind)
		}
		kill := sys.Spawn(ind)
		i := idx
		return track(func() {
			kill()
			pl.release(i)
		}).stop
	}
	churnCfg := churn.Config{TargetPopulation: churnTarget, MeanUptime: cfg.MeanUptime}
	proc, err := churn.NewProcess(churnCfg, clock, churnRNG, spawn)
	if err != nil {
		return 0, err
	}

	sys.Start()
	seeds := sys.SeedCount()
	for i := 0; i < seeds; i++ {
		if i%groups != group {
			continue // another process hosts this seed
		}
		i := i
		clock.Schedule(int64(i)*cfg.SeedStagger, func() {
			ind, kill := sys.SpawnSeed(i)
			idx := pl.add(ind)
			clock.Schedule(proc.Lifetime(), track(func() {
				kill()
				pl.release(idx)
			}).stop)
		})
	}
	// Client arrivals start once the bootstrap population is up.
	clock.Schedule(int64(seeds)*cfg.SeedStagger, proc.Start)

	// Scheduled adversarial churn: failures pick victims by a
	// deterministic permutation of the (ordered) live-session slice, so
	// sim runs replay bit-identically; joins go through the same pool
	// and get ordinary exponential lifetimes.
	for _, ev := range cfg.ChurnSchedule {
		ev := ev
		clock.Schedule(ev.At, func() {
			kept := live[:0]
			for _, s := range live {
				if !s.dead {
					kept = append(kept, s)
				}
			}
			live = kept
			if n := int(ev.FailFraction*float64(len(live)) + 0.5); n > 0 {
				perm := churnRNG.Perm(len(live))
				for _, j := range perm[:n] {
					live[j].stop()
				}
			}
			for i := 0; i < groupShare(ev.Join, group, groups); i++ {
				stop := spawn()
				if stop == nil {
					break // pool exhausted
				}
				clock.Schedule(proc.Lifetime(), stop)
			}
		})
	}
	if cfg.OnCheckpoint != nil {
		for _, at := range cfg.Checkpoints {
			clock.Schedule(at, func() { cfg.OnCheckpoint(clock.Now(), sys) })
		}
	}
	processed := rt.Run(cfg.Duration)
	sys.Stop()
	return processed, nil
}

// RunComparison executes the same configuration under Flower-CDN and
// Squirrel with the same seed — the paper's head-to-head setup.
func RunComparison(cfg Config) (flowerRes, squirrelRes *Result, err error) {
	fc := cfg
	fc.Protocol = ProtocolFlower
	flowerRes, err = Run(fc)
	if err != nil {
		return nil, nil, err
	}
	sc := cfg
	sc.Protocol = ProtocolSquirrel
	squirrelRes, err = Run(sc)
	if err != nil {
		return nil, nil, err
	}
	return flowerRes, squirrelRes, nil
}

// Table2Row is one scalability data point.
type Table2Row struct {
	Population int
	Flower     *Result
	Squirrel   *Result
}

// RunTable2 sweeps the population sizes of Table 2.
func RunTable2(base Config, populations []int) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(populations))
	for _, p := range populations {
		cfg := base
		cfg.Population = p
		f, s, err := RunComparison(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Population: p, Flower: f, Squirrel: s})
	}
	return rows, nil
}
