// Package harness assembles full simulation runs reproducing the
// paper's evaluation (Sec. 6): it wires the engine, topology, network,
// workload, origins, churn and one protocol deployment together, runs
// the experiment, and renders the same tables and figures the paper
// reports — Fig. 3 (hit ratio over time), Fig. 4 (lookup latency
// distribution), Fig. 5 (transfer distance distribution) and Table 2
// (scalability sweep), plus the Table 1 parameter sheet.
package harness

import (
	"errors"
	"fmt"

	"flowercdn/internal/churn"
	"flowercdn/internal/content"
	"flowercdn/internal/flower"
	"flowercdn/internal/metrics"
	"flowercdn/internal/sim"
	"flowercdn/internal/simnet"
	"flowercdn/internal/squirrel"
	"flowercdn/internal/topology"
	"flowercdn/internal/workload"
)

// Protocol selects the deployment under test.
type Protocol string

const (
	// ProtocolFlower is classic Flower-CDN.
	ProtocolFlower Protocol = "flower"
	// ProtocolPetalUp is Flower-CDN with directory splitting enabled.
	ProtocolPetalUp Protocol = "petalup"
	// ProtocolSquirrel is the baseline.
	ProtocolSquirrel Protocol = "squirrel"
)

// Config describes one experiment run. DefaultConfig reproduces
// Table 1.
type Config struct {
	Protocol Protocol
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// Population is P, the mean population size churn converges to.
	Population int
	// Duration is the experiment length (Table 1 runs: 24 h).
	Duration int64
	// SeedStagger is the gap between initial directory-peer joins.
	SeedStagger int64

	Topology topology.Config
	Workload workload.Config
	// MeanUptime is m (Table 1: 60 min).
	MeanUptime int64
	// LocalitySkew biases which locality a joining client lands in: 0
	// (the paper's setting) distributes arrivals uniformly over the k
	// localities; larger values Zipf-concentrate them into low-index
	// localities (exponent = LocalitySkew), modelling a geographically
	// skewed audience. Seed directories still cover every locality so
	// the D-ring stays complete. Applies to the locality-aware Flower
	// protocols; Squirrel has no locality notion.
	LocalitySkew float64
	// MessageLossRate injects random one-way message loss on top of
	// churn (0 = the paper's reliable links).
	MessageLossRate float64

	Flower   flower.Config
	Squirrel squirrel.Config

	// PetalUpLoadLimit applies when Protocol == ProtocolPetalUp.
	PetalUpLoadLimit int

	// SeriesWindow is the Fig. 3 bucketing (1 h).
	SeriesWindow int64
	// TailWindows is how many final windows Table 2's hit ratio
	// averages over.
	TailWindows int
}

// DefaultConfig returns the paper's simulation parameters (Table 1)
// for P = 3000 and Flower-CDN.
func DefaultConfig() Config {
	return Config{
		Protocol:         ProtocolFlower,
		Seed:             1,
		Population:       3000,
		Duration:         24 * sim.Hour,
		SeedStagger:      time2sPerSeed,
		Topology:         topology.DefaultConfig(),
		Workload:         workload.DefaultConfig(),
		MeanUptime:       60 * sim.Minute,
		Flower:           flower.DefaultConfig(),
		Squirrel:         squirrel.DefaultConfig(),
		PetalUpLoadLimit: 30,
		SeriesWindow:     1 * sim.Hour,
		TailWindows:      3,
	}
}

const time2sPerSeed = 2 * sim.Second

// QuickConfig returns a scaled-down experiment that preserves the
// paper's proportions (active-site share, per-petal densities, churn
// ratio) while running in seconds instead of minutes. Tests, examples
// and the default benchmarks use it; cmd/flowerbench runs the full
// Table 1 scale.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Population = 400
	cfg.Duration = 8 * sim.Hour
	cfg.Workload.Sites = 20
	cfg.Workload.ActiveSites = 3
	cfg.Workload.ObjectsPerSite = 200
	cfg.SeedStagger = 1 * sim.Second
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Protocol {
	case ProtocolFlower, ProtocolPetalUp, ProtocolSquirrel:
	default:
		return fmt.Errorf("harness: unknown protocol %q", c.Protocol)
	}
	if c.Population < 1 {
		return errors.New("harness: population must be positive")
	}
	if c.Duration <= 0 {
		return errors.New("harness: duration must be positive")
	}
	if c.SeriesWindow <= 0 {
		return errors.New("harness: series window must be positive")
	}
	if c.MeanUptime <= 0 {
		return errors.New("harness: mean uptime must be positive")
	}
	if c.LocalitySkew < 0 {
		return errors.New("harness: locality skew must be non-negative")
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if err := c.Flower.Validate(); err != nil {
		return err
	}
	if err := c.Squirrel.Validate(); err != nil {
		return err
	}
	return nil
}

// Result is the outcome of one run.
type Result struct {
	Protocol   Protocol
	Population int
	Duration   int64

	// HitRatio is cumulative over the run; TailHitRatio covers the
	// final TailWindows windows (the "after 24 simulation hours" view).
	HitRatio     float64
	TailHitRatio float64

	MeanLookupMs   float64
	MeanTransferMs float64

	// Quantiles complement the paper's means.
	LookupQuantiles   metrics.LatencySummary
	TransferQuantiles metrics.LatencySummary

	Series   []metrics.SeriesPoint
	Lookup   metrics.Distribution
	Transfer metrics.Distribution

	Queries    uint64
	Hits       uint64
	Misses     uint64
	Unresolved uint64

	// Outcome breakdown for the Flower paths.
	GossipHits     uint64
	DirectoryHits  uint64
	DirSummaryHits uint64

	// Population diagnostics at the end of the run.
	AlivePeers      int
	AliveDirs       int
	DuplicateDirs   int
	FlowerStats     flower.Stats
	NetStats        simnet.Stats
	EventsProcessed uint64
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	master := sim.NewRNG(cfg.Seed)
	topo, err := topology.New(cfg.Topology, master.Split("topology"))
	if err != nil {
		return nil, err
	}
	net := simnet.New(eng, topo)
	if cfg.MessageLossRate > 0 {
		net.SetLossRate(cfg.MessageLossRate, master.Split("loss"))
	}
	work, err := workload.New(cfg.Workload)
	if err != nil {
		return nil, err
	}
	origins := workload.NewOrigins(work, net, master.Split("origins"))
	coll := metrics.NewCollector(cfg.SeriesWindow)

	churnCfg := churn.Config{TargetPopulation: cfg.Population, MeanUptime: cfg.MeanUptime}

	res := &Result{Protocol: cfg.Protocol, Population: cfg.Population, Duration: cfg.Duration}

	switch cfg.Protocol {
	case ProtocolFlower, ProtocolPetalUp:
		fcfg := cfg.Flower
		if cfg.Protocol == ProtocolPetalUp {
			fcfg.DirLoadLimit = cfg.PetalUpLoadLimit
		}
		sys, err := flower.NewSystem(fcfg, flower.Deps{
			Net: net, RNG: master.Split("flower"), Workload: work, Origins: origins, Metrics: coll,
		})
		if err != nil {
			return nil, err
		}
		if err := runFlower(cfg, eng, master, work, topo, churnCfg, sys); err != nil {
			return nil, err
		}
		res.AlivePeers = sys.AlivePeerCount()
		res.AliveDirs = sys.DirectoryCount()
		res.DuplicateDirs = sys.DuplicatePositions()
		res.FlowerStats = sys.Stats()
	case ProtocolSquirrel:
		sys, err := squirrel.NewSystem(cfg.Squirrel, squirrel.Deps{
			Net: net, RNG: master.Split("squirrel"), Workload: work, Origins: origins, Metrics: coll,
		})
		if err != nil {
			return nil, err
		}
		if err := runSquirrel(cfg, eng, master, work, churnCfg, sys); err != nil {
			return nil, err
		}
		res.AlivePeers = sys.AliveMembers()
	}

	res.HitRatio = coll.HitRatio()
	res.TailHitRatio = coll.TailHitRatio(cfg.TailWindows)
	res.MeanLookupMs = coll.MeanLookupLatency()
	res.MeanTransferMs = coll.MeanTransferDistance()
	res.LookupQuantiles = coll.LookupSummary()
	res.TransferQuantiles = coll.TransferSummary()
	res.Series = coll.HitRatioSeries()
	res.Lookup = coll.LookupDistribution(metrics.Fig4Bounds)
	res.Transfer = coll.TransferDistribution(metrics.Fig5Bounds)
	res.Queries = coll.Total()
	res.Hits = coll.Hits()
	res.Misses = coll.Count(metrics.Miss)
	res.Unresolved = coll.Count(metrics.Unresolved)
	res.GossipHits = coll.Count(metrics.HitLocalGossip)
	res.DirectoryHits = coll.Count(metrics.HitDirectory)
	res.DirSummaryHits = coll.Count(metrics.HitDirectorySummary)
	res.NetStats = net.Stats()
	res.EventsProcessed = eng.Processed()
	return res, nil
}

// PopulationFactor is Table 1's "Total network size P * 1.3": the pool
// of persistent individuals churn cycles through online sessions. An
// individual's interest, location and cached content survive offline
// periods; each session is a fresh network identity.
const PopulationFactor = 1.3

// flowerPool manages persistent individuals for the Flower runs.
type flowerPool struct {
	rng     *sim.RNG
	inds    []flower.Identity
	offline []int // indexes into inds
	cap     int
}

func (fp *flowerPool) take() (int, flower.Identity, bool) {
	if len(fp.offline) > 0 {
		i := fp.rng.Intn(len(fp.offline))
		idx := fp.offline[i]
		fp.offline[i] = fp.offline[len(fp.offline)-1]
		fp.offline = fp.offline[:len(fp.offline)-1]
		return idx, fp.inds[idx], true
	}
	if len(fp.inds) >= fp.cap {
		return 0, flower.Identity{}, false // everyone is online already
	}
	return -1, flower.Identity{}, true // caller mints a new individual
}

// runFlower seeds the initial D-ring (one directory peer per (website,
// locality), "which have limited uptimes and form the initial
// D-ring"), then lets churn cycle the persistent population through
// online sessions until the run ends.
func runFlower(cfg Config, eng *sim.Engine, master *sim.RNG, work *workload.Workload,
	topo *topology.Topology, churnCfg churn.Config, sys *flower.System) error {

	churnRNG := master.Split("churn")
	pool := &flowerPool{
		rng: churnRNG,
		cap: int(float64(cfg.Population) * PopulationFactor),
	}

	// Locality assignment for arriving clients: uniform by default, a
	// Zipf over locality indexes when LocalitySkew > 0. The uniform path
	// keeps the exact RNG draw sequence of skew-free runs, so existing
	// seeds reproduce bit-identically.
	pickLocality := func() topology.Locality {
		return topology.Locality(churnRNG.Intn(topo.Localities()))
	}
	if cfg.LocalitySkew > 0 {
		locZipf, err := workload.NewZipf(topo.Localities(), cfg.LocalitySkew)
		if err != nil {
			return err
		}
		pickLocality = func() topology.Locality {
			return topology.Locality(locZipf.Rank(churnRNG))
		}
	}

	spawn := func() func() {
		idx, id, ok := pool.take()
		if !ok {
			return nil
		}
		if idx < 0 {
			site := work.AssignInterest(churnRNG)
			loc := pickLocality()
			id = sys.NewIdentity(site, loc)
			pool.inds = append(pool.inds, id)
			idx = len(pool.inds) - 1
		}
		_, kill := sys.SpawnIdentity(id)
		i := idx
		return func() {
			kill()
			pool.offline = append(pool.offline, i)
		}
	}

	proc, err := churn.NewProcess(churnCfg, eng, churnRNG, spawn)
	if err != nil {
		return err
	}

	// Seed directories, staggered to let the ring form; each is a
	// persistent individual with a limited uptime like any other peer.
	k := topo.Localities()
	i := 0
	for s := 0; s < cfg.Workload.Sites; s++ {
		for l := 0; l < k; l++ {
			site, loc := content.SiteID(s), topology.Locality(l)
			at := int64(i) * cfg.SeedStagger
			i++
			eng.Schedule(at, func() {
				id := sys.NewIdentity(site, loc)
				pool.inds = append(pool.inds, id)
				idx := len(pool.inds) - 1
				_, kill := sys.SpawnSeedDirectoryIdentity(id)
				eng.Schedule(proc.Lifetime(), func() {
					kill()
					pool.offline = append(pool.offline, idx)
				})
			})
		}
	}

	// Client arrivals start once the initial ring is up.
	eng.Schedule(int64(i)*cfg.SeedStagger, proc.Start)
	eng.Run(cfg.Duration)
	return nil
}

// squirrelPool is the persistent-individual pool for the baseline.
type squirrelPool struct {
	rng     *sim.RNG
	inds    []squirrel.Identity
	offline []int
	cap     int
}

func (sp *squirrelPool) take() (int, squirrel.Identity, bool) {
	if len(sp.offline) > 0 {
		i := sp.rng.Intn(len(sp.offline))
		idx := sp.offline[i]
		sp.offline[i] = sp.offline[len(sp.offline)-1]
		sp.offline = sp.offline[:len(sp.offline)-1]
		return idx, sp.inds[idx], true
	}
	if len(sp.inds) >= sp.cap {
		return 0, squirrel.Identity{}, false
	}
	return -1, squirrel.Identity{}, true
}

// runSquirrel seeds the same number of initial members, then churns
// the same persistent-population model.
func runSquirrel(cfg Config, eng *sim.Engine, master *sim.RNG, work *workload.Workload,
	churnCfg churn.Config, sys *squirrel.System) error {

	churnRNG := master.Split("churn")
	pool := &squirrelPool{
		rng: churnRNG,
		cap: int(float64(cfg.Population) * PopulationFactor),
	}
	spawn := func() func() {
		idx, id, ok := pool.take()
		if !ok {
			return nil
		}
		if idx < 0 {
			id = sys.NewIdentity(work.AssignInterest(churnRNG))
			pool.inds = append(pool.inds, id)
			idx = len(pool.inds) - 1
		}
		_, kill := sys.SpawnIdentity(id)
		i := idx
		return func() {
			kill()
			pool.offline = append(pool.offline, i)
		}
	}
	proc, err := churn.NewProcess(churnCfg, eng, churnRNG, spawn)
	if err != nil {
		return err
	}
	seeds := cfg.Workload.Sites * cfg.Topology.Localities
	for i := 0; i < seeds; i++ {
		at := int64(i) * cfg.SeedStagger
		eng.Schedule(at, func() {
			kill := spawn()
			if kill != nil {
				eng.Schedule(proc.Lifetime(), kill)
			}
		})
	}
	eng.Schedule(int64(seeds)*cfg.SeedStagger, proc.Start)
	eng.Run(cfg.Duration)
	return nil
}

// RunComparison executes the same configuration under Flower-CDN and
// Squirrel with the same seed — the paper's head-to-head setup.
func RunComparison(cfg Config) (flowerRes, squirrelRes *Result, err error) {
	fc := cfg
	fc.Protocol = ProtocolFlower
	flowerRes, err = Run(fc)
	if err != nil {
		return nil, nil, err
	}
	sc := cfg
	sc.Protocol = ProtocolSquirrel
	squirrelRes, err = Run(sc)
	if err != nil {
		return nil, nil, err
	}
	return flowerRes, squirrelRes, nil
}

// Table2Row is one scalability data point.
type Table2Row struct {
	Population int
	Flower     *Result
	Squirrel   *Result
}

// RunTable2 sweeps the population sizes of Table 2.
func RunTable2(base Config, populations []int) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(populations))
	for _, p := range populations {
		cfg := base
		cfg.Population = p
		f, s, err := RunComparison(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Population: p, Flower: f, Squirrel: s})
	}
	return rows, nil
}
