package harness

import (
	"testing"

	"flowercdn/internal/sim"
)

// This file guards the cache-policy seam end to end: the unbounded
// default must be bit-identical to the pre-seam harness, bounded runs
// must stay deterministic, and hit ratio must respond monotonically to
// capacity.

// goldenTinyFingerprint is the tinyConfig() flower fingerprint
// captured on the seed revision, before content.Store grew the policy
// seam. The unbounded path must keep reproducing it exactly: this is
// the mechanical proof that the refactor is a no-op when no cache
// options are set.
const goldenTinyFingerprint = 0x70cd59a8eb49d1a1

func TestCacheNoneIsBitIdenticalToSeed(t *testing.T) {
	def, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if def.Fingerprint != goldenTinyFingerprint {
		t.Fatalf("default run fingerprint %#x, want seed-era %#x — the unbounded path changed behavior",
			def.Fingerprint, goldenTinyFingerprint)
	}
	explicit := tinyConfig()
	explicit.Options = map[string]any{"cache-policy": "none", "cache-capacity": 0}
	res, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != goldenTinyFingerprint {
		t.Fatalf("explicit cache-policy=none fingerprint %#x, want %#x",
			res.Fingerprint, goldenTinyFingerprint)
	}
	if res.ProtoStat("evictions") != 0 {
		t.Fatalf("none evicted %g objects", res.ProtoStat("evictions"))
	}
}

// TestBoundedCacheDeterministic: the same bounded cell twice must
// match exactly — evictions reorder nothing.
func TestBoundedCacheDeterministic(t *testing.T) {
	cfg := tinyConfig()
	cfg.Options = map[string]any{"cache-policy": "lru", "cache-capacity": 8}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("bounded runs diverged: %#x vs %#x", a.Fingerprint, b.Fingerprint)
	}
	if a.ProtoStat("evictions") == 0 {
		t.Fatal("capacity 8 produced no evictions")
	}
	if a.ProtoStat("evictions") != b.ProtoStat("evictions") {
		t.Fatalf("eviction counts diverged: %g vs %g",
			a.ProtoStat("evictions"), b.ProtoStat("evictions"))
	}
}

// TestCacheBracketMonotone: flower hit ratio must not decrease as
// capacity grows (tiny → medium → unbounded), and the bounded runs
// must actually differ from the unbounded one. This is the quick-scale
// version of the `flowerbench -grid capacity` knee.
func TestCacheBracketMonotone(t *testing.T) {
	run := func(opts map[string]any) *Result {
		cfg := tinyConfig()
		cfg.Duration = 5 * sim.Hour
		cfg.Options = opts
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tiny := run(map[string]any{"cache-policy": "lru", "cache-capacity": 4})
	medium := run(map[string]any{"cache-policy": "lru", "cache-capacity": 24})
	unbounded := run(nil)
	t.Logf("hit ratio: cap4 %.3f, cap24 %.3f, unbounded %.3f (evictions %g / %g / %g)",
		tiny.HitRatio, medium.HitRatio, unbounded.HitRatio,
		tiny.ProtoStat("evictions"), medium.ProtoStat("evictions"), unbounded.ProtoStat("evictions"))
	if tiny.HitRatio > medium.HitRatio || medium.HitRatio > unbounded.HitRatio {
		t.Fatalf("hit ratio not monotone in capacity: %.3f (cap 4) vs %.3f (cap 24) vs %.3f (unbounded)",
			tiny.HitRatio, medium.HitRatio, unbounded.HitRatio)
	}
	if tiny.ProtoStat("evictions") <= medium.ProtoStat("evictions") {
		t.Fatalf("smaller capacity evicted less: %g (cap 4) vs %g (cap 24)",
			tiny.ProtoStat("evictions"), medium.ProtoStat("evictions"))
	}
	if unbounded.ProtoStat("evictions") != 0 {
		t.Fatal("unbounded run evicted")
	}
}

// TestEvictionsAppearInWindowSeries: the per-window eviction counts
// behind the Fig. 3-style series are populated on a bounded run.
func TestEvictionsAppearInWindowSeries(t *testing.T) {
	cfg := tinyConfig()
	cfg.Options = map[string]any{"cache-policy": "lru", "cache-capacity": 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range res.Series {
		total += p.Evictions
	}
	if total == 0 {
		t.Fatal("no evictions in the window series")
	}
	if got := res.ProtoStat("evictions"); total != got {
		t.Fatalf("window series evictions %g != counter total %g", total, got)
	}
}

// TestSizeAwarePolicyRuns exercises the byte-cost path end to end.
func TestSizeAwarePolicyRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Options = map[string]any{"cache-policy": "size-aware", "cache-capacity": 8}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtoStat("evictions") == 0 {
		t.Fatal("size-aware at 8-object budget never evicted")
	}
	if res.Hits == 0 {
		t.Fatal("size-aware run served no hits")
	}
}
