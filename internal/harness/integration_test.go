package harness

import (
	"math"
	"testing"

	"flowercdn/internal/sim"
)

// TestFlowerInvariantsAfterRun checks structural invariants the
// protocol must maintain through a whole churny run.
func TestFlowerInvariantsAfterRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 5 * sim.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One directory per position: the audit protocol's invariant.
	if dup := res.ProtoStat("duplicate_positions"); dup != 0 {
		t.Fatalf("%g duplicate directory positions after the run", dup)
	}
	// The population stabilized near the target.
	if math.Abs(float64(res.AlivePeers-cfg.Population)) > 0.4*float64(cfg.Population) {
		t.Fatalf("alive population %d too far from target %d", res.AlivePeers, cfg.Population)
	}
	// Hit ratio trends upward: the last third of the run beats the
	// first third (the paper's "keeps on improving despite failures").
	n := len(res.Series)
	if n >= 3 {
		var early, late float64
		var earlyN, lateN int
		for i := 0; i < n/3; i++ {
			if res.Series[i].Queries > 0 {
				early += res.Series[i].HitRatio
				earlyN++
			}
		}
		for i := 2 * n / 3; i < n; i++ {
			if res.Series[i].Queries > 0 {
				late += res.Series[i].HitRatio
				lateN++
			}
		}
		if earlyN > 0 && lateN > 0 && late/float64(lateN) <= early/float64(earlyN) {
			t.Fatalf("hit ratio not improving: early %.3f late %.3f",
				early/float64(earlyN), late/float64(lateN))
		}
	}
	// Quantiles are populated and ordered.
	q := res.LookupQuantiles
	if q.P50 <= 0 || q.P50 > q.P90 || q.P90 > q.P99 {
		t.Fatalf("lookup quantiles malformed: %+v", q)
	}
}

// TestMessageLossInjection runs Flower-CDN over lossy links: the
// protocol must keep functioning (timeouts recover everything), with a
// hit ratio that degrades rather than collapses.
func TestMessageLossInjection(t *testing.T) {
	base := tinyConfig()
	base.Duration = 4 * sim.Hour
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	lossy := base
	lossy.MessageLossRate = 0.05
	lossyRes, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if lossyRes.Queries == 0 || lossyRes.Hits == 0 {
		t.Fatal("protocol stopped functioning under 5% message loss")
	}
	// 5% loss should not cost more than half the hit ratio.
	if lossyRes.TailHitRatio < clean.TailHitRatio/2 {
		t.Fatalf("hit ratio collapsed under loss: %.3f vs clean %.3f",
			lossyRes.TailHitRatio, clean.TailHitRatio)
	}
	if lossyRes.NetStats.MessagesDropped == 0 {
		t.Fatal("loss injection did not drop anything")
	}
}

// TestSquirrelInvariantsAfterRun sanity-checks the baseline the same
// way.
func TestSquirrelInvariantsAfterRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol = ProtocolSquirrel
	cfg.Duration = 4 * sim.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries")
	}
	// Squirrel's lookups pay multi-hop routing: its mean must exceed
	// the topology's maximum single link latency.
	if res.MeanLookupMs < 500 {
		t.Fatalf("squirrel lookup mean %.0f ms implausibly low", res.MeanLookupMs)
	}
	if res.AlivePeers == 0 {
		t.Fatal("population died out")
	}
}

// TestPetalUpChurnWithLoss drives PetalUp-CDN through churn plus lossy
// links: directory splitting must keep functioning when promotion and
// keepalive traffic can vanish (only flower/squirrel had end-to-end
// loss coverage before).
func TestPetalUpChurnWithLoss(t *testing.T) {
	base := tinyConfig()
	base.Protocol = ProtocolPetalUp
	base.Options = map[string]any{"load-limit": 5}
	base.Duration = 4 * sim.Hour
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	lossy := base
	lossy.MessageLossRate = 0.05
	lossyRes, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if lossyRes.Queries == 0 || lossyRes.Hits == 0 {
		t.Fatal("PetalUp stopped functioning under 5% message loss")
	}
	if lossyRes.NetStats.MessagesDropped == 0 {
		t.Fatal("loss injection did not drop anything")
	}
	// Splitting still happens under loss, and the hit ratio degrades
	// rather than collapses.
	if lossyRes.TailHitRatio < clean.TailHitRatio/3 {
		t.Fatalf("PetalUp hit ratio collapsed under loss: %.3f vs clean %.3f",
			lossyRes.TailHitRatio, clean.TailHitRatio)
	}
	if clean.ProtoStat("dir_promotions") == 0 {
		t.Fatal("load limit 5 never split a directory")
	}
}

// TestLossyRunsAreDeterministic is the regression test for the claim-
// transfer ordering bug: with loss injection on, every Send consumes a
// loss draw, so any map-iteration-order dependence in message emission
// makes runs diverge. Two identical lossy runs must match exactly —
// both under the paper's unbounded stores and under a bounded cache,
// where every eviction decision must be just as order-independent.
func TestLossyRunsAreDeterministic(t *testing.T) {
	for _, bounded := range []bool{false, true} {
		for _, p := range []Protocol{ProtocolFlower, ProtocolPetalUp, ProtocolSquirrel, ProtocolChordGlobal, ProtocolKoordeGlobal} {
			cfg := tinyConfig()
			cfg.Protocol = p
			cfg.Options = map[string]any{}
			if p == ProtocolPetalUp {
				cfg.Options["load-limit"] = 5
			}
			if bounded {
				cfg.Options["cache-policy"] = "lru"
				cfg.Options["cache-capacity"] = 10
			}
			cfg.Duration = 3 * sim.Hour
			cfg.MessageLossRate = 0.05
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.Queries != b.Queries || a.Hits != b.Hits || a.EventsProcessed != b.EventsProcessed {
				t.Fatalf("%s (bounded=%v): lossy runs diverged: %d/%d/%d vs %d/%d/%d", p, bounded,
					a.Queries, a.Hits, a.EventsProcessed, b.Queries, b.Hits, b.EventsProcessed)
			}
			if a.Fingerprint != b.Fingerprint {
				t.Fatalf("%s (bounded=%v): fingerprints diverged: %#x vs %#x", p, bounded,
					a.Fingerprint, b.Fingerprint)
			}
		}
	}
}

// TestPetalUpKeepsHitRatio: splitting directories must not cost
// significant hit ratio relative to classic Flower.
func TestPetalUpKeepsHitRatio(t *testing.T) {
	base := tinyConfig()
	base.Duration = 4 * sim.Hour
	classic, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	up := base
	up.Protocol = ProtocolPetalUp
	up.Options = map[string]any{"load-limit": 4}
	upRes, err := Run(up)
	if err != nil {
		t.Fatal(err)
	}
	if upRes.TailHitRatio < classic.TailHitRatio*0.5 {
		t.Fatalf("PetalUp hit ratio %.3f collapsed vs classic %.3f",
			upRes.TailHitRatio, classic.TailHitRatio)
	}
}
