package harness

import (
	"fmt"
	"testing"

	"flowercdn/internal/proto"
	"flowercdn/internal/ringcheck"
	"flowercdn/internal/sim"
)

// The ring-correctness invariant suite: every ring-structured
// deployment must satisfy Zave's Chord invariants — one ring, ordered,
// appendages connected — at checkpoints of deterministic runs under
// adversarial churn schedules layered on top of the background Poisson
// churn. `make invariants-smoke` runs exactly this test.

// invariantSchedules are the adversarial churn shapes, all against a
// 70-peer population: event times and checkpoint times in run-ms.
// Checkpoints sit ≥30 simulated minutes after the nearest event so the
// verdict is about self-repair, not about mid-failure turbulence.
var invariantSchedules = []struct {
	name        string
	events      []ChurnEvent
	checkpoints []int64
}{
	{
		name:        "mass-join",
		events:      []ChurnEvent{{At: 2 * sim.Hour, Join: 70}},
		checkpoints: []int64{90 * sim.Minute, 3 * sim.Hour, 5 * sim.Hour},
	},
	{
		name:        "mass-fail",
		events:      []ChurnEvent{{At: 2 * sim.Hour, FailFraction: 0.30}},
		checkpoints: []int64{90 * sim.Minute, 3 * sim.Hour, 5 * sim.Hour},
	},
	{
		name: "flapping",
		events: []ChurnEvent{
			{At: 2 * sim.Hour, FailFraction: 0.15},
			{At: 150 * sim.Minute, Join: 25},
			{At: 3 * sim.Hour, FailFraction: 0.15},
			{At: 210 * sim.Minute, Join: 25},
		},
		checkpoints: []int64{90 * sim.Minute, 5 * sim.Hour},
	},
	{
		name: "partition-heal",
		events: []ChurnEvent{
			{At: 2 * sim.Hour, FailFraction: 0.40},
			{At: 210 * sim.Minute, Join: 40},
		},
		checkpoints: []int64{90 * sim.Minute, 3 * sim.Hour, 5 * sim.Hour},
	},
}

// invariantProtocols maps each ring deployment to its oracle options
// (koorde adds the de Bruijn pointer check at its default degree).
var invariantProtocols = []struct {
	proto Protocol
	opts  ringcheck.Options
}{
	{ProtocolFlower, ringcheck.Options{}},
	{ProtocolSquirrel, ringcheck.Options{}},
	{ProtocolChordGlobal, ringcheck.Options{}},
	{ProtocolKoordeGlobal, ringcheck.Options{DegreeBits: 4}},
}

func invariantConfig(p Protocol) Config {
	cfg := QuickConfig()
	cfg.Protocol = p
	cfg.Population = 70
	cfg.Duration = 6 * sim.Hour
	cfg.Workload.Sites = 6
	cfg.Workload.ActiveSites = 3
	cfg.Workload.ObjectsPerSite = 60
	cfg.Topology.Localities = 3
	// Background churn stays mild so the scheduled events dominate the
	// ring's stress.
	cfg.MeanUptime = 10 * sim.Hour
	return cfg
}

func TestRingInvariantsUnderChurn(t *testing.T) {
	for _, pc := range invariantProtocols {
		for _, sched := range invariantSchedules {
			t.Run(fmt.Sprintf("%s/%s", pc.proto, sched.name), func(t *testing.T) {
				cfg := invariantConfig(pc.proto)
				cfg.ChurnSchedule = sched.events
				cfg.Checkpoints = sched.checkpoints

				type snapshot struct {
					at  int64
					rep ringcheck.Report
				}
				var snaps []snapshot
				cfg.OnCheckpoint = func(now int64, sys proto.System) {
					insp, ok := sys.(proto.RingInspector)
					if !ok {
						t.Errorf("%s does not implement proto.RingInspector", pc.proto)
						return
					}
					snaps = append(snaps, snapshot{at: now, rep: ringcheck.Check(insp.RingMembers(), pc.opts)})
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(snaps) != len(sched.checkpoints) {
					t.Fatalf("took %d snapshots, want %d", len(snaps), len(sched.checkpoints))
				}
				for _, s := range snaps {
					for _, v := range s.rep.Violations {
						t.Errorf("t=%dh%02dm: %s", s.at/sim.Hour, s.at%sim.Hour/sim.Minute, v)
					}
					if s.rep.RingSize < 3 {
						t.Errorf("t=%dm: ring collapsed to %d members (%d in snapshot)",
							s.at/sim.Minute, s.rep.RingSize, s.rep.Members)
					}
				}
				if res.AlivePeers == 0 {
					t.Fatal("population died out")
				}
				// The run is still a working CDN after the schedule.
				if res.Queries == 0 {
					t.Fatal("no queries issued")
				}
			})
		}
	}
}

// TestChurnScheduleActuallyChurns is the harness-level contract: a
// mass failure visibly drops the population and a mass join visibly
// raises it, and the kill bookkeeping survives the race between
// scheduled failures and the sessions' own lifetime timers.
func TestChurnScheduleActuallyChurns(t *testing.T) {
	base := invariantConfig(ProtocolSquirrel)
	base.Checkpoints = []int64{110 * sim.Minute, 130 * sim.Minute}

	var sizes []int
	base.OnCheckpoint = func(_ int64, sys proto.System) {
		sizes = append(sizes, len(sys.(proto.RingInspector).RingMembers()))
	}

	fail := base
	fail.ChurnSchedule = []ChurnEvent{{At: 2 * sim.Hour, FailFraction: 0.5}}
	if _, err := Run(fail); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[1] >= sizes[0] {
		t.Fatalf("mass failure did not shrink the ring: %v", sizes)
	}

	sizes = nil
	join := base
	join.ChurnSchedule = []ChurnEvent{{At: 2 * sim.Hour, Join: 120}}
	if _, err := Run(join); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[1] <= sizes[0] {
		t.Fatalf("mass join did not grow the ring: %v", sizes)
	}
}
