package harness

import (
	"testing"

	"flowercdn/internal/sim"
)

// The two reference deployments prove the pluggable-runtime seam: they
// were added without touching the harness, and they bracket Flower-CDN
// exactly as the comparison story requires.

// TestOriginOnlyIsTheFloor: no P2P system means no hits, ever, and a
// transfer distance equal to the client-origin latency.
func TestOriginOnlyIsTheFloor(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol = ProtocolOriginOnly
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries recorded")
	}
	if res.Hits != 0 || res.HitRatio != 0 {
		t.Fatalf("origin-only produced hits: %d (ratio %.3f)", res.Hits, res.HitRatio)
	}
	if res.Misses != res.Queries {
		t.Fatalf("misses %d != queries %d", res.Misses, res.Queries)
	}
	if res.MeanTransferMs <= 0 || res.MeanLookupMs != res.MeanTransferMs {
		t.Fatalf("origin-only latency accounting off: lookup %.1f transfer %.1f",
			res.MeanLookupMs, res.MeanTransferMs)
	}
	if res.ProtoStat("origin_fetches") != float64(res.Queries) {
		t.Fatalf("streamed counter origin_fetches=%g != queries %d",
			res.ProtoStat("origin_fetches"), res.Queries)
	}
	if res.AlivePeers == 0 {
		t.Fatal("population died out")
	}
}

// TestChordGlobalProducesDirectoryHits: the global directory serves a
// meaningful share of queries from peers (all hits are directory hits —
// there is no gossip in this protocol).
func TestChordGlobalProducesDirectoryHits(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol = ProtocolChordGlobal
	cfg.Duration = 5 * sim.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Hits == 0 {
		t.Fatalf("chord-global inactive: queries=%d hits=%d", res.Queries, res.Hits)
	}
	if res.GossipHits != 0 || res.DirSummaryHits != 0 {
		t.Fatalf("chord-global produced non-directory hits: gossip=%d summary=%d",
			res.GossipHits, res.DirSummaryHits)
	}
	if res.DirectoryHits != res.Hits {
		t.Fatalf("hits %d != directory hits %d", res.Hits, res.DirectoryHits)
	}
	if res.ProtoStat("summary_pushes") == 0 {
		t.Fatal("no summary refreshes streamed")
	}
	if res.AlivePeers == 0 {
		t.Fatal("population died out")
	}
}

// TestBaselineDeterminism: same seed, same stats — for both new
// baselines, as the runtime contract requires.
func TestBaselineDeterminism(t *testing.T) {
	for _, p := range []Protocol{ProtocolOriginOnly, ProtocolChordGlobal} {
		cfg := tinyConfig()
		cfg.Protocol = p
		cfg.Duration = 3 * sim.Hour
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Queries != b.Queries || a.Hits != b.Hits || a.EventsProcessed != b.EventsProcessed {
			t.Fatalf("%s: same seed diverged: %d/%d/%d vs %d/%d/%d", p,
				a.Queries, a.Hits, a.EventsProcessed, b.Queries, b.Hits, b.EventsProcessed)
		}
	}
}

// TestBaselinesBracketFlower is the comparison-story invariant:
// origin-only <= chord-global <= flower on (tail) hit ratio. The gap
// on either side is what locality-blind directory caching does and
// does not recover. It runs at the quick-compare scale (`flowerbench
// -grid compare`): at toy populations the ordering genuinely inverts,
// because a handful of peers per locality fragments flower's petals
// while a global directory aggregates the whole site.
func TestBaselinesBracketFlower(t *testing.T) {
	cfg := QuickConfig()

	origin := cfg
	origin.Protocol = ProtocolOriginOnly
	or, err := Run(origin)
	if err != nil {
		t.Fatal(err)
	}
	global := cfg
	global.Protocol = ProtocolChordGlobal
	gr, err := Run(global)
	if err != nil {
		t.Fatal(err)
	}
	flower := cfg
	flower.Protocol = ProtocolFlower
	fr, err := Run(flower)
	if err != nil {
		t.Fatal(err)
	}

	if or.TailHitRatio != 0 {
		t.Fatalf("origin-only tail hit ratio %.3f != 0", or.TailHitRatio)
	}
	if gr.TailHitRatio <= or.TailHitRatio {
		t.Fatalf("chord-global %.3f not above origin-only %.3f", gr.TailHitRatio, or.TailHitRatio)
	}
	if gr.TailHitRatio > fr.TailHitRatio {
		t.Fatalf("chord-global tail hit %.3f above flower %.3f — locality should still win",
			gr.TailHitRatio, fr.TailHitRatio)
	}
	// The locality gap itself: flower transfers must be meaningfully
	// shorter than the locality-blind baseline's.
	if fr.MeanTransferMs >= gr.MeanTransferMs {
		t.Fatalf("flower transfer %.0f ms not below chord-global %.0f ms",
			fr.MeanTransferMs, gr.MeanTransferMs)
	}
}
