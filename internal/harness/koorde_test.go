package harness

import (
	"testing"

	"flowercdn/internal/sim"
)

// koorde-global is chord-global's deployment scheme routed over Koorde
// de Bruijn edges: the hit-ratio story should match chord-global's
// almost exactly (same directory placement, same summaries), while the
// hop-count story is where the overlays separate.

// TestKoordeGlobalServesHits: the de Bruijn-routed directory works end
// to end — queries route, homes answer, providers serve.
func TestKoordeGlobalServesHits(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol = ProtocolKoordeGlobal
	cfg.Duration = 5 * sim.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Hits == 0 {
		t.Fatalf("koorde-global inactive: queries=%d hits=%d", res.Queries, res.Hits)
	}
	if res.GossipHits != 0 || res.DirSummaryHits != 0 {
		t.Fatalf("koorde-global produced non-directory hits: gossip=%d summary=%d",
			res.GossipHits, res.DirSummaryHits)
	}
	if res.DirectoryHits != res.Hits {
		t.Fatalf("hits %d != directory hits %d", res.Hits, res.DirectoryHits)
	}
	if res.MeanHops <= 0 {
		t.Fatalf("no hop accounting: mean hops %.2f", res.MeanHops)
	}
	if res.AlivePeers == 0 {
		t.Fatal("population died out")
	}
}

// TestKoordeGlobalDeterminism: same seed, same run — the runtime
// contract every deployment must honor.
func TestKoordeGlobalDeterminism(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol = ProtocolKoordeGlobal
	cfg.Duration = 3 * sim.Hour
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint || a.EventsProcessed != b.EventsProcessed {
		t.Fatalf("same seed diverged: %x/%d vs %x/%d",
			a.Fingerprint, a.EventsProcessed, b.Fingerprint, b.EventsProcessed)
	}
}

// TestKoordeBeatsChordOnHops is the paper-facing claim the overlay
// exists to demonstrate: identical workload, identical seed, and the
// de Bruijn graph's O(log n / log b) routing resolves queries in
// strictly fewer overlay hops than Chord's O(log n) finger walk.
func TestKoordeBeatsChordOnHops(t *testing.T) {
	cfg := QuickConfig()

	chordCfg := cfg
	chordCfg.Protocol = ProtocolChordGlobal
	cr, err := Run(chordCfg)
	if err != nil {
		t.Fatal(err)
	}
	koordeCfg := cfg
	koordeCfg.Protocol = ProtocolKoordeGlobal
	kr, err := Run(koordeCfg)
	if err != nil {
		t.Fatal(err)
	}

	if cr.MeanHops <= 0 || kr.MeanHops <= 0 {
		t.Fatalf("hop accounting missing: chord %.2f koorde %.2f", cr.MeanHops, kr.MeanHops)
	}
	t.Logf("mean hops: koorde %.2f vs chord %.2f", kr.MeanHops, cr.MeanHops)
	if kr.MeanHops >= cr.MeanHops {
		t.Fatalf("koorde mean hops %.2f not below chord-global's %.2f",
			kr.MeanHops, cr.MeanHops)
	}
	// Both must actually be answering queries for the comparison to
	// mean anything.
	if kr.Hits == 0 || cr.Hits == 0 {
		t.Fatalf("inactive run: chord hits=%d koorde hits=%d", cr.Hits, kr.Hits)
	}
}
