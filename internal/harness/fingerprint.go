package harness

import (
	"flowercdn/internal/metrics"
	"flowercdn/internal/runtime"
)

// This file implements the run fingerprint: an FNV-1a hash over the
// run's per-window query/transfer/message counts plus the final
// transport totals. On the sim backend the fingerprint is a pure
// function of the configuration, so running the same cell twice — in
// the same process or across processes — must produce the same value;
// any divergence points at nondeterminism (map iteration feeding the
// RNG or the event queue). CI runs the same cell in two separate
// processes and diffs the printed fingerprints (make fingerprint-check).

// windowObserver fires at every SeriesWindow close: it samples the
// transport's cumulative message counter (windowed message counts for
// the fingerprint) and surfaces the just-closed window's aggregates
// through cfg.OnWindow.
type windowObserver struct {
	msgSamples []uint64
	reported   int
}

func newWindowObserver(cfg Config, clock runtime.Clock, net runtime.Transport, coll *metrics.Collector) *windowObserver {
	o := &windowObserver{}
	clock.Every(cfg.SeriesWindow, cfg.SeriesWindow, func() {
		o.msgSamples = append(o.msgSamples, net.Stats().MessagesSent)
		if cfg.OnWindow == nil {
			return
		}
		// Report every window closed so far but not yet surfaced. The
		// aggregator materializes a window only once a query touches it
		// or a later one, so a window silent at its close is synthesized
		// as an empty point — identical to what the series will later
		// say about it.
		series := coll.HitRatioSeries()
		closed := len(o.msgSamples)
		for o.reported < closed {
			if o.reported < len(series) {
				cfg.OnWindow(series[o.reported])
			} else {
				cfg.OnWindow(metrics.SeriesPoint{Start: int64(o.reported) * cfg.SeriesWindow})
			}
			o.reported++
		}
	})
	return o
}

// windowMessages converts the cumulative samples into per-window sent
// counts.
func (o *windowObserver) windowMessages() []uint64 {
	out := make([]uint64, len(o.msgSamples))
	var prev uint64
	for i, cum := range o.msgSamples {
		out[i] = cum - prev
		prev = cum
	}
	return out
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// fingerprint hashes the per-window aggregates, the per-window message
// counts and the final transport totals with FNV-1a.
func fingerprint(w *metrics.Windowed, windowMessages []uint64, net runtime.TransportStats) uint64 {
	h := fnvOffset64
	for i := 0; i < w.Len(); i++ {
		agg := w.At(i)
		h = fnvMix(h, uint64(i))
		h = fnvMix(h, agg.Total)
		h = fnvMix(h, agg.Hits)
		h = fnvMix(h, agg.Served)
		h = fnvMix(h, uint64(agg.LookupSum))
		h = fnvMix(h, uint64(agg.TransferSum))
	}
	for i, m := range windowMessages {
		h = fnvMix(h, uint64(i))
		h = fnvMix(h, m)
	}
	h = fnvMix(h, net.MessagesSent)
	h = fnvMix(h, net.MessagesDelivered)
	h = fnvMix(h, net.MessagesDropped)
	h = fnvMix(h, net.BytesSent)
	h = fnvMix(h, net.RequestsIssued)
	h = fnvMix(h, net.RequestsTimedOut)
	return h
}
