package harness

import (
	"net"
	"sync"
	"testing"

	"flowercdn/internal/proto"
	_ "flowercdn/internal/protocols"
	"flowercdn/internal/runtime"
)

// runSocketGroup executes one full experiment split over `groups`
// cooperating harness.Run calls meshed over localhost TCP — the same
// wiring as `flowersim -backend socket -spawn-local N`, minus the OS
// processes. It returns the per-group results.
func runSocketGroup(t *testing.T, protocol Protocol, groups, population int, horizon int64) []*Result {
	t.Helper()
	listeners := make([]net.Listener, groups)
	addrs := make([]string, groups)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		// The harness backend listens itself; we only used the listener
		// to reserve an ephemeral port.
		lis.Close()
		listeners[i] = nil
	}

	results := make([]*Result, groups)
	errs := make([]error, groups)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := SocketDemoConfig(population, horizon, runtime.SocketConfig{
				Listen: addrs[g],
				Peers:  addrs,
				Group:  g,
			})
			cfg.Protocol = protocol
			results[g], errs[g] = Run(cfg)
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("group %d failed: %v", g, err)
		}
	}
	return results
}

// TestSocketBackendSmoke runs the flagship protocol across three
// TCP-connected harness instances: queries must flow in every group,
// hits must happen somewhere (content crossing process boundaries),
// and every group must shut down cleanly.
func TestSocketBackendSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock run")
	}
	results := runSocketGroup(t, ProtocolFlower, 3, 45, 6_000)

	var queries, hits, misses uint64
	for g, res := range results {
		if res.Backend != "socket" {
			t.Errorf("group %d result backend %q", g, res.Backend)
		}
		if res.Queries == 0 {
			t.Errorf("group %d issued no queries", g)
		}
		if res.AlivePeers == 0 {
			t.Errorf("group %d has no peers alive at the end", g)
		}
		queries += res.Queries
		hits += res.Hits
		misses += res.Misses
	}
	if queries == 0 || hits+misses == 0 {
		t.Fatalf("no live queries answered: %d queries, %d hits, %d misses", queries, hits, misses)
	}
	if hits == 0 {
		t.Errorf("no hits across %d queries — the petals never formed across processes", queries)
	}
}

// TestSocketBackendSmokeAllProtocols runs every registered protocol
// once over two groups at toy scale: the backend seam is genuinely
// protocol-agnostic, gob wire registrations included.
func TestSocketBackendSmokeAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock runs")
	}
	for _, name := range proto.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			results := runSocketGroup(t, Protocol(name), 2, 24, 4_000)
			var queries, answered uint64
			for _, res := range results {
				queries += res.Queries
				answered += res.Hits + res.Misses
			}
			if queries == 0 {
				t.Fatal("no queries at all")
			}
			if answered == 0 {
				t.Fatal("no query ever resolved")
			}
		})
	}
}

// TestSocketConfigValidation pins the config surface errors.
func TestSocketConfigValidation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Backend = "socket"
	if err := cfg.Validate(); err == nil {
		t.Fatal("socket backend without Socket config validated")
	}
	cfg.Socket = &runtime.SocketConfig{Listen: "127.0.0.1:0", Peers: []string{"127.0.0.1:0"}, Group: 1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range group validated")
	}
	cfg.Socket.Group = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid socket config rejected: %v", err)
	}
	sim := QuickConfig()
	sim.Socket = &runtime.SocketConfig{Listen: "x", Peers: []string{"x"}, Group: 0}
	if err := sim.Validate(); err == nil {
		t.Fatal("Socket config on sim backend validated")
	}
}
