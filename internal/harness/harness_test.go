package harness

import (
	"strings"
	"testing"

	_ "flowercdn/internal/protocols" // register the built-in drivers
	"flowercdn/internal/sim"
)

func tinyConfig() Config {
	cfg := QuickConfig()
	cfg.Population = 150
	cfg.Duration = 4 * sim.Hour
	cfg.Workload.Sites = 10
	cfg.Workload.ActiveSites = 2
	cfg.Workload.ObjectsPerSite = 100
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Protocol = "bogus" },
		func(c *Config) { c.Population = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.SeriesWindow = 0 },
		func(c *Config) { c.MeanUptime = 0 },
		func(c *Config) { c.LocalitySkew = -1 },
		func(c *Config) { c.MessageLossRate = 1 },
		func(c *Config) { c.Workload.ActiveSites = 0 },
	}
	for i, mut := range bads {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run accepted zero config")
	}
}

// TestBadOptionsFailValidation: driver option checks run at Validate
// time, so a bad knob fails a sweep before any simulation runs.
func TestBadOptionsFailValidation(t *testing.T) {
	cases := []Config{
		func() Config {
			c := tinyConfig()
			c.Protocol = ProtocolPetalUp
			c.Options = map[string]any{"load-limit": -5}
			return c
		}(),
		func() Config {
			c := tinyConfig()
			c.Options = map[string]any{"push-threshold": 2.0}
			return c
		}(),
		func() Config {
			c := tinyConfig()
			c.Protocol = ProtocolSquirrel
			c.Options = map[string]any{"directory-cap": 0}
			return c
		}(),
		func() Config {
			c := tinyConfig()
			c.Protocol = ProtocolChordGlobal
			c.Options = map[string]any{"refresh-interval": int64(-1)}
			return c
		}(),
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad options passed Validate", i)
		}
	}
}

func TestFlowerRunProducesActivity(t *testing.T) {
	cfg := tinyConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != ProtocolFlower {
		t.Fatalf("protocol = %q", res.Protocol)
	}
	if res.Queries == 0 {
		t.Fatal("no queries recorded")
	}
	if res.Hits == 0 {
		t.Fatal("no hits at all after hours of petal life")
	}
	if res.AlivePeers == 0 || res.ProtoStat("alive_directories") == 0 {
		t.Fatalf("population died out: peers=%d dirs=%g", res.AlivePeers, res.ProtoStat("alive_directories"))
	}
	if len(res.Series) == 0 {
		t.Fatal("no hit-ratio series")
	}
	if res.EventsProcessed == 0 || res.NetStats.MessagesSent == 0 {
		t.Fatal("no simulation activity recorded")
	}
}

func TestSquirrelRunProducesActivity(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol = ProtocolSquirrel
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries recorded")
	}
	if res.AlivePeers == 0 {
		t.Fatal("population died out")
	}
	if res.MeanLookupMs <= 0 {
		t.Fatal("no lookup latency recorded")
	}
}

func TestPetalUpRunWorks(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol = ProtocolPetalUp
	cfg.Options = map[string]any{"load-limit": 5}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries recorded")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 2 * sim.Hour
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Queries != b.Queries || a.Hits != b.Hits || a.EventsProcessed != b.EventsProcessed {
		t.Fatalf("same seed diverged: %d/%d/%d vs %d/%d/%d",
			a.Queries, a.Hits, a.EventsProcessed, b.Queries, b.Hits, b.EventsProcessed)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 2 * sim.Hour
	a, _ := Run(cfg)
	cfg.Seed = 999
	b, _ := Run(cfg)
	if a.EventsProcessed == b.EventsProcessed && a.Queries == b.Queries && a.Hits == b.Hits {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestComparisonShape(t *testing.T) {
	// The headline claims at reduced scale: Flower-CDN beats Squirrel on
	// hit ratio under churn, and resolves queries much faster.
	cfg := tinyConfig()
	cfg.Duration = 6 * sim.Hour
	f, s, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.TailHitRatio <= s.TailHitRatio {
		t.Fatalf("Flower tail hit ratio %.3f not above Squirrel %.3f",
			f.TailHitRatio, s.TailHitRatio)
	}
	if f.MeanLookupMs >= s.MeanLookupMs {
		t.Fatalf("Flower lookup %.0f ms not below Squirrel %.0f ms",
			f.MeanLookupMs, s.MeanLookupMs)
	}
	if f.MeanTransferMs >= s.MeanTransferMs {
		t.Fatalf("Flower transfer %.0f ms not below Squirrel %.0f ms",
			f.MeanTransferMs, s.MeanTransferMs)
	}
}

func TestFormatters(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 2 * sim.Hour
	f, s, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t1 := FormatTable1(cfg)
	if !strings.Contains(t1, "Push threshold") || !strings.Contains(t1, "10") {
		t.Fatalf("Table 1 render incomplete:\n%s", t1)
	}
	f3 := FormatFig3(f, s)
	if !strings.Contains(f3, "Flower-CDN") || !strings.Contains(f3, "hour") {
		t.Fatalf("Fig 3 render incomplete:\n%s", f3)
	}
	f4 := FormatFig4(f, s)
	if !strings.Contains(f4, "within 150 ms") {
		t.Fatalf("Fig 4 render incomplete:\n%s", f4)
	}
	f5 := FormatFig5(f, s)
	if !strings.Contains(f5, "within 100 ms") {
		t.Fatalf("Fig 5 render incomplete:\n%s", f5)
	}
	rows := []Table2Row{{Population: cfg.Population, Flower: f, Squirrel: s}}
	t2 := FormatTable2(rows)
	if !strings.Contains(t2, "Squirrel") || !strings.Contains(t2, "Flower-CDN") {
		t.Fatalf("Table 2 render incomplete:\n%s", t2)
	}
	sum := FormatSummary(f)
	if !strings.Contains(sum, "hit ratio") {
		t.Fatalf("summary render incomplete:\n%s", sum)
	}
}

func TestRunTable2SmallSweep(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 2 * sim.Hour
	rows, err := RunTable2(cfg, []int{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Population != 100 || rows[1].Population != 200 {
		t.Fatalf("rows wrong: %+v", rows)
	}
}
