// Package baseline provides the two reference deployments that bracket
// Flower-CDN in the evaluation:
//
//   - origin-only: no P2P system at all — every query goes straight to
//     the website's origin server. This is the floor any CDN must beat:
//     hit ratio zero by construction, transfer distance equal to the
//     client-origin latency.
//   - chord-global: a single global Chord directory with no locality
//     petals — peers index their cached content at a per-website home
//     node and queries are redirected to random providers. It isolates
//     how much of Flower-CDN's win comes from locality awareness
//     versus from having a P2P directory at all.
//
// Both register with the protocol runtime (internal/proto) and are
// driven by the harness exactly like the paper's protocols.
package baseline

import (
	"errors"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"

	"flowercdn/internal/content"
	"flowercdn/internal/metrics"
	"flowercdn/internal/proto"
	"flowercdn/internal/topology"
	"flowercdn/internal/workload"
)

func init() {
	proto.Register(proto.Info{
		Name:         "origin-only",
		Summary:      "no P2P system: every query fetches from the origin server (the floor)",
		Compare:      false, // degenerate floor; reachable by name, excluded from default grids
		Order:        4,
		CheckOptions: CheckOriginOnlyOptions,
	}, NewOriginOnlyDriver)
}

// CheckOriginOnlyOptions statically validates the driver's options —
// origin-only reads only the shared cache keys (its peers still cache
// what they fetch, the cache just never serves anyone else).
func CheckOriginOnlyOptions(opts proto.Options) error {
	_, err := proto.CacheConfigFromOptions(opts)
	return err
}

// Identity is the persistent participant state both baselines share:
// interest, placement and cache survive offline periods.
type Identity struct {
	Site      content.SiteID
	Placement topology.Placement
	Store     *content.Store
}

// NewOriginOnlyDriver builds the origin-only deployment. It reads only
// the shared cache options.
func NewOriginOnlyDriver(env proto.Env, opts proto.Options) (proto.System, error) {
	if env.Net == nil || env.RNG == nil || env.Workload == nil || env.Origins == nil || env.Metrics == nil {
		return nil, errors.New("baseline: missing dependency for origin-only")
	}
	cacheCfg, err := proto.CacheConfigFromOptions(opts)
	if err != nil {
		return nil, err
	}
	return &originDriver{env: env, idRNG: env.RNG.Split("identities"),
		newStore: cacheCfg.StoreFactory(env)}, nil
}

type originDriver struct {
	env      proto.Env
	idRNG    *rnd.RNG
	newStore func() *content.Store
	spawned  uint64
	alive    int
}

func (d *originDriver) Start() {}
func (d *originDriver) Stop()  {}

// SeedCount matches the other deployments' bootstrap population so the
// ramps are comparable; origin-only seeds are ordinary clients.
func (d *originDriver) SeedCount() int { return proto.DefaultSeedCount(d.env) }

func (d *originDriver) SpawnSeed(int) (proto.Individual, func()) {
	ind := d.NewIndividual()
	return ind, d.Spawn(ind)
}

func (d *originDriver) NewIndividual() proto.Individual {
	return Identity{
		Site:      d.env.Workload.AssignInterest(d.idRNG),
		Placement: d.env.Topo.Place(d.idRNG),
		Store:     d.newStore(),
	}
}

func (d *originDriver) Spawn(ind proto.Individual) func() {
	id := ind.(Identity)
	d.spawned++
	d.alive++
	p := &originPeer{
		d:     d,
		site:  id.Site,
		store: id.Store,
		rng:   d.env.RNG.Split(fmt.Sprintf("origin-peer-%d", d.spawned)),
	}
	p.nid = d.env.Net.Join(p, id.Placement)
	if d.env.Workload.Active(p.site) {
		p.scheduleNextQuery(p.d.env.Workload.FirstQueryDelay(p.rng))
	}
	return p.kill
}

func (d *originDriver) Stats() proto.Stats {
	return proto.Stats{
		proto.StatPeersSpawned: float64(d.spawned),
		proto.StatAlivePeers:   float64(d.alive),
	}
}

// originPeer is a pure client: it never serves, never joins an
// overlay, and resolves every query at the origin.
type originPeer struct {
	d     *originDriver
	nid   runtime.NodeID
	site  content.SiteID
	store *content.Store
	rng   *rnd.RNG
	timer runtime.Timer
	dead  bool
}

func (p *originPeer) scheduleNextQuery(delay int64) {
	p.timer = p.d.env.Clock.Schedule(delay, func() {
		if p.dead {
			return
		}
		p.issueQuery()
		p.scheduleNextQuery(p.d.env.Workload.NextQueryDelay(p.rng))
	})
}

func (p *originPeer) issueQuery() {
	key, ok := p.d.env.Workload.PickObject(p.rng, p.site, p.store)
	if !ok {
		return
	}
	env := p.d.env
	origin := env.Origins.Node(key.Site)
	now := env.Clock.Now()
	dist := env.Net.Latency(p.nid, origin)
	// The provider is known a priori; the lookup "resolves" in the one
	// leg it takes to reach the origin, and the transfer covers the
	// same distance back.
	env.Metrics.Emit(metrics.QueryEvent(now, metrics.Miss, dist, dist))
	env.Metrics.Emit(metrics.CounterEvent(now, "origin_fetches", 1))
	env.Net.Request(p.nid, origin, workload.FetchReq{Key: key}, 0,
		func(_ any, err error) {
			if p.dead || err != nil {
				return
			}
			p.store.Add(key)
		})
}

func (p *originPeer) kill() {
	if p.dead {
		return
	}
	p.dead = true
	p.d.alive--
	if p.timer != nil {
		p.timer.Cancel()
	}
	p.d.env.Net.Fail(p.nid)
}

// HandleMessage implements runtime.Handler; origin-only peers receive
// no protocol traffic.
func (p *originPeer) HandleMessage(runtime.NodeID, any) {}

// HandleRequest answers direct fetch probes for symmetry with the
// other deployments (nothing addresses them in this protocol).
func (p *originPeer) HandleRequest(_ runtime.NodeID, req any) (any, error) {
	if p.dead {
		return nil, errors.New("baseline: dead peer")
	}
	if r, ok := req.(workload.FetchReq); ok {
		return workload.FetchResp{Key: r.Key, Served: p.store.Has(r.Key)}, nil
	}
	return nil, fmt.Errorf("baseline: unhandled request %T", req)
}
