package baseline

import (
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/runtime"
	"flowercdn/internal/wiretest"
)

func TestWireRoundTrips(t *testing.T) {
	k := content.Key{Site: 2, Object: 8}
	wiretest.RoundTrip(t, cgQuery{Seq: 1, Key: k, Client: 3})
	wiretest.RoundTrip(t, cgHomeResp{Seq: 1, Providers: []runtime.NodeID{2, 9}})
	wiretest.RoundTrip(t, cgSummary{Node: 4, Keys: []content.Key{k, {Site: 2, Object: 9}}})
	wiretest.RoundTrip(t, cgSummary{Node: 4})
}
