package baseline

import (
	"flowercdn/internal/content"
	"flowercdn/internal/runtime"
	"flowercdn/internal/trace"
)

// Binary wire marshallers for the chord-global driver's messages.

func (m cgQuery) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.Seq)
	m.Key.AppendWire(w)
	w.Node(m.Client)
}

func (cgQuery) DecodeWire(r *runtime.WireReader) any {
	var m cgQuery
	m.Seq = r.Uvarint()
	m.Key = content.DecodeKeyWire(r)
	m.Client = r.Node()
	return m
}

func (m cgHomeResp) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.Seq)
	w.Nodes(m.Providers)
	trace.AppendHopsWire(w, m.Path)
}

func (cgHomeResp) DecodeWire(r *runtime.WireReader) any {
	var m cgHomeResp
	m.Seq = r.Uvarint()
	m.Providers = r.Nodes()
	m.Path = trace.DecodeHopsWire(r)
	return m
}

func (m cgSummary) AppendWire(w *runtime.WireWriter) {
	w.Node(m.Node)
	content.AppendKeysWire(w, m.Keys)
}

func (cgSummary) DecodeWire(r *runtime.WireReader) any {
	var m cgSummary
	m.Node = r.Node()
	m.Keys = content.DecodeKeysWire(r)
	return m
}
