package baseline

import (
	"errors"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"

	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/ids"
	"flowercdn/internal/metrics"
	"flowercdn/internal/proto"
	"flowercdn/internal/trace"
	"flowercdn/internal/workload"
)

// chord-global: every peer joins one global Chord ring; each website
// hashes to a *home node* (the ring successor of hash(site)) that
// keeps a directory of which peers cache which of the site's objects.
// Queries route to the home and are redirected to a RANDOM provider —
// there is no locality notion anywhere, which is exactly what this
// baseline isolates: directory caching without Flower-CDN's petals.
//
// The directory lives only at the current home. When the home fails it
// is lost abruptly (as in Squirrel); peers rebuild it lazily through
// periodic content-summary refreshes to their site's current home.

func init() {
	proto.Register(proto.Info{
		Name:         "chord-global",
		Summary:      "one global Chord directory per website, no locality petals",
		Compare:      true,
		Order:        3,
		CheckOptions: CheckChordGlobalOptions,
	}, NewChordGlobalDriver)
	// Socket-backend wire types (interface-typed payloads).
	runtime.RegisterWireType(cgQuery{}, cgHomeResp{}, cgSummary{})
}

// chordGlobalConfig tunes the baseline.
type chordGlobalConfig struct {
	Chord chord.Config
	// ProvidersPerReply bounds how many providers a home suggests.
	ProvidersPerReply int
	// IndexCap bounds remembered providers per object.
	IndexCap int
	// RefreshInterval is the period of content-summary pushes to the
	// site's current home (the lazy index rebuild after home churn).
	RefreshInterval int64
	// QueryTimeout bounds one routed query attempt; QueryRetries is
	// the number of attempts before the origin fallback.
	QueryTimeout int64
	QueryRetries int
}

// Option keys the driver reads (defaults in parentheses):
//
//	providers-per-reply  int       providers suggested per query (1, Squirrel's single random redirect)
//	index-cap            int       providers remembered per object (4, Squirrel's delegate cap)
//	refresh-interval     int64 ms  summary push period (2 x keepalive-interval, else 2 h —
//	                               summaries are bulk messages, so they refresh at half
//	                               the keepalive rate)
//	keepalive-interval   int64 ms  shared-vocabulary base for the refresh default
//	cache-policy         string    per-peer store eviction policy ("none")
//	cache-capacity       int       per-peer store capacity, objects
//
// The redirect and cap defaults deliberately match Squirrel's, so the
// baseline differs from it in exactly two ways — site-granular homes
// and the summary refresh — and from Flower-CDN in exactly one:
// locality. Unknown keys are ignored.

// lowerChordGlobalOptions resolves the option map into a validated
// config — shared by the factory and the registry's static
// CheckOptions hook.
func lowerChordGlobalOptions(opts proto.Options) (chordGlobalConfig, proto.CacheConfig, error) {
	chordCfg := chord.DefaultConfig()
	if opts.Bool("chord-demo", false) {
		chordCfg = chord.DemoConfig()
	}
	cfg := chordGlobalConfig{
		Chord:             chordCfg,
		ProvidersPerReply: opts.Int("providers-per-reply", 1),
		IndexCap:          opts.Int("index-cap", 4),
		RefreshInterval:   opts.Duration("refresh-interval", 2*opts.Duration("keepalive-interval", runtime.Hour)),
		QueryTimeout:      opts.Duration("query-timeout", 10*runtime.Second),
		QueryRetries:      3,
	}
	cacheCfg, err := proto.CacheConfigFromOptions(opts)
	if err != nil {
		return cfg, cacheCfg, fmt.Errorf("baseline: %w", err)
	}
	if cfg.ProvidersPerReply < 1 || cfg.IndexCap < 1 {
		return cfg, cacheCfg, fmt.Errorf("baseline: chord-global provider/index bounds must be positive (%d, %d)",
			cfg.ProvidersPerReply, cfg.IndexCap)
	}
	if cfg.RefreshInterval <= 0 {
		return cfg, cacheCfg, errors.New("baseline: chord-global refresh interval must be positive")
	}
	return cfg, cacheCfg, nil
}

// CheckChordGlobalOptions statically validates the driver's options.
func CheckChordGlobalOptions(opts proto.Options) error {
	_, _, err := lowerChordGlobalOptions(opts)
	return err
}

// NewChordGlobalDriver builds a chord-global deployment.
func NewChordGlobalDriver(env proto.Env, opts proto.Options) (proto.System, error) {
	if env.Net == nil || env.RNG == nil || env.Workload == nil || env.Origins == nil || env.Metrics == nil {
		return nil, errors.New("baseline: missing dependency for chord-global")
	}
	cfg, cacheCfg, err := lowerChordGlobalOptions(opts)
	if err != nil {
		return nil, err
	}
	d := &cgDriver{cfg: cfg, env: env, idRNG: env.RNG.Split("identities"),
		newStore: cacheCfg.StoreFactory(env)}
	d.registry.BindBus(env.Net)
	return d, nil
}

type cgDriver struct {
	cfg      chordGlobalConfig
	env      proto.Env
	idRNG    *rnd.RNG
	newStore func() *content.Store

	// registry is the ring-member gateway set, mirrored across
	// processes on multi-process backends (chord.Registry).
	registry chord.Registry
	// peers tracks every peer ever spawned in creation order — the
	// RingInspector snapshot source (dead peers are skipped).
	peers    []*cgPeer
	spawned  uint64
	alive    int
	querySeq uint64
}

func (d *cgDriver) Start() {}
func (d *cgDriver) Stop()  {}

func (d *cgDriver) SeedCount() int { return proto.DefaultSeedCount(d.env) }

func (d *cgDriver) SpawnSeed(int) (proto.Individual, func()) {
	ind := d.NewIndividual()
	return ind, d.Spawn(ind)
}

func (d *cgDriver) NewIndividual() proto.Individual {
	return Identity{
		Site:      d.env.Workload.AssignInterest(d.idRNG),
		Placement: d.env.Topo.Place(d.idRNG),
		Store:     d.newStore(),
	}
}

func (d *cgDriver) Spawn(ind proto.Individual) func() {
	id := ind.(Identity)
	d.spawned++
	d.alive++
	p := &cgPeer{
		d:     d,
		site:  id.Site,
		store: id.Store,
		rng:   d.env.RNG.Split(fmt.Sprintf("cg-peer-%d", d.spawned)),
		index: make(map[content.Key][]runtime.NodeID),
	}
	p.nid = d.env.Net.Join(p, id.Placement)
	ringID := ids.HashString(fmt.Sprintf("cg-peer-%d", p.nid))
	node, err := chord.NewNode(d.cfg.Chord, d.env.Net, p.rng.Split("chord"), p, p.nid, ringID)
	if err != nil {
		panic(err) // config validated at build time
	}
	p.node = node
	d.peers = append(d.peers, p)
	p.enterRing(3)
	return p.kill
}

func (d *cgDriver) Stats() proto.Stats {
	return proto.Stats{
		proto.StatPeersSpawned: float64(d.spawned),
		proto.StatAlivePeers:   float64(d.alive),
	}
}

// RingMembers implements proto.RingInspector: one snapshot record per
// alive, joined ring member, in creation order.
func (d *cgDriver) RingMembers() []proto.RingMember {
	var out []proto.RingMember
	for _, p := range d.peers {
		if p.dead || !p.joined {
			continue
		}
		out = append(out, ringMemberOf(p.node))
	}
	return out
}

// ringMemberOf snapshots one chord node's ring pointers.
func ringMemberOf(n *chord.Node) proto.RingMember {
	self := n.Self()
	m := proto.RingMember{Node: self.Node, ID: self.ID, Pred: ringNodeOf(n.Predecessor())}
	for _, s := range n.SuccessorList() {
		m.Succs = append(m.Succs, ringNodeOf(s))
	}
	return m
}

func ringNodeOf(e chord.Entry) proto.RingNode {
	if !e.Valid() {
		return proto.RingNode{Node: runtime.None}
	}
	return proto.RingNodeOf(e.Node, e.ID)
}

func (d *cgDriver) nextSeq() uint64 {
	d.querySeq++
	return d.querySeq
}

// gateway returns an alive registry entry, pruning dead ones lazily.
func (d *cgDriver) gateway() chord.Entry {
	return d.registry.PickAlive(d.idRNG, d.env.Net.Alive, runtime.None)
}

// siteKey hashes a website onto the ring; its successor is the site's
// directory home.
func siteKey(site content.SiteID) ids.ID {
	return ids.HashString(fmt.Sprintf("cg-site-%d", site))
}

// ---- wire messages ----

// cgQuery routes over Chord to the home node of the queried site.
type cgQuery struct {
	Seq    uint64
	Key    content.Key
	Client runtime.NodeID
}

// cgHomeResp is the home's redirect, sent directly to the client.
type cgHomeResp struct {
	Seq       uint64
	Providers []runtime.NodeID
	// Path carries the query's overlay route plus the home hop back to
	// the client on traced runs (nil otherwise).
	Path []trace.Hop
}

// cgSummary re-registers a peer's cached keys with the site's current
// home — the only mechanism that restores a directory after the home
// node fails.
type cgSummary struct {
	Node runtime.NodeID
	Keys []content.Key
}

// WireBytes sizes the summary by its key list.
func (s cgSummary) WireBytes() int { return 32 + 8*len(s.Keys) }

// cgPeer is one chord-global participant.
type cgPeer struct {
	d     *cgDriver
	nid   runtime.NodeID
	rng   *rnd.RNG
	site  content.SiteID
	store *content.Store
	node  *chord.Node

	// index is this node's slice of the directory: for every site this
	// node is currently home of, object → providers, capped at
	// IndexCap. It dies with the node.
	index map[content.Key][]runtime.NodeID

	query      *cgActiveQuery
	queryTimer runtime.Timer
	refresh    runtime.Ticker
	joined     bool
	dead       bool
}

type cgActiveQuery struct {
	seq        uint64
	key        content.Key
	start      int64
	attempt    int
	timeout    runtime.Timer
	candidates []runtime.NodeID
	// redirected marks the first home response consumed; retries share
	// the query's seq, so a late duplicate must not restart the probe
	// chain mid-probe.
	redirected bool
	// path is the hop-by-hop trace on traced runs (nil otherwise).
	path []trace.Hop
}

func (p *cgPeer) enterRing(attempts int) {
	if p.dead {
		return
	}
	gw := p.d.gateway()
	if !gw.Valid() {
		if p.d.env.Follower {
			// Never found a second ring on a follower process; wait for
			// an announced gateway instead.
			p.d.env.Clock.Schedule(200*runtime.Millisecond, func() { p.enterRing(attempts) })
			return
		}
		p.node.Create()
		p.onJoined()
		return
	}
	p.node.Join(gw, func(err error) {
		if p.dead {
			return
		}
		if err != nil {
			if attempts > 1 {
				p.d.env.Clock.Schedule(10*runtime.Second, func() { p.enterRing(attempts - 1) })
			}
			return
		}
		p.onJoined()
	})
}

func (p *cgPeer) onJoined() {
	p.joined = true
	p.d.registry.Add(p.node.Self())
	if p.d.env.Workload.Active(p.site) {
		p.scheduleNextQuery(p.d.env.Workload.FirstQueryDelay(p.rng))
	}
	// Content summaries refresh the site's directory at the current
	// home — jittered so a whole petal-less population doesn't push in
	// lockstep.
	p.refresh = p.d.env.Clock.Every(
		p.rng.UniformDuration(0, p.d.cfg.RefreshInterval), p.d.cfg.RefreshInterval, p.pushSummary)
	// A re-joining individual may carry a full cache from earlier
	// sessions; announce it without waiting a whole refresh period.
	if p.store.Len() > 0 {
		p.pushSummary()
	}
}

func (p *cgPeer) pushSummary() {
	if p.dead || !p.joined || p.store.Len() == 0 {
		return
	}
	p.node.Route(siteKey(p.site), cgSummary{Node: p.nid, Keys: p.store.Keys()})
	p.d.env.Metrics.Emit(metrics.CounterEvent(p.d.env.Clock.Now(), "summary_pushes", 1))
}

func (p *cgPeer) scheduleNextQuery(delay int64) {
	p.queryTimer = p.d.env.Clock.Schedule(delay, func() {
		if p.dead {
			return
		}
		p.issueQuery()
		p.scheduleNextQuery(p.d.env.Workload.NextQueryDelay(p.rng))
	})
}

func (p *cgPeer) kill() {
	if p.dead {
		return
	}
	p.dead = true
	p.d.alive--
	p.node.Stop()
	if p.queryTimer != nil {
		p.queryTimer.Cancel()
	}
	if p.refresh != nil {
		p.refresh.Cancel()
	}
	p.query = nil
	p.d.env.Net.Fail(p.nid)
}

func (p *cgPeer) issueQuery() {
	if p.dead || p.query != nil || !p.joined {
		return
	}
	key, ok := p.d.env.Workload.PickObject(p.rng, p.site, p.store)
	if !ok {
		return
	}
	q := &cgActiveQuery{seq: p.d.nextSeq(), key: key, start: p.d.env.Clock.Now()}
	if p.d.env.Trace.Enabled() {
		q.path = trace.Append(q.path, trace.Hop{
			Kind: trace.HopIssue, Node: p.nid, Loc: p.d.env.Net.Locality(p.nid), At: q.start})
	}
	p.query = q
	p.sendQuery(q)
}

func (p *cgPeer) sendQuery(q *cgActiveQuery) {
	if p.dead || p.query != q {
		return
	}
	q.attempt++
	msg := cgQuery{Seq: q.seq, Key: q.key, Client: p.nid}
	if p.d.env.Trace.Enabled() {
		// The routed path segment starts empty; the home ships it back
		// (with its own hop appended) in cgHomeResp.Path.
		p.node.RouteTraced(siteKey(q.key.Site), msg, nil)
	} else {
		p.node.Route(siteKey(q.key.Site), msg)
	}
	q.timeout = p.d.env.Clock.Schedule(p.d.cfg.QueryTimeout, func() {
		if p.dead || p.query != q {
			return
		}
		if q.attempt < p.d.cfg.QueryRetries {
			p.sendQuery(q)
			return
		}
		p.resolve(q, metrics.Miss, p.d.env.Origins.Node(q.key.Site))
	})
}

// OnRouted implements chord.App: this node currently terminates
// routing for some site key (it is that site's home) or receives a
// summary for it.
func (p *cgPeer) OnRouted(_ ids.ID, payload any, _ runtime.NodeID, hops int, path []trace.Hop) {
	if p.dead {
		return
	}
	switch m := payload.(type) {
	case cgQuery:
		// Hop accounting at the home: the overlay forwardings this
		// query took, surfaced as the run's mean-hops stat.
		now := p.d.env.Clock.Now()
		p.d.env.Metrics.Emit(metrics.CounterEvent(now, "lookup_hops", float64(hops)))
		p.d.env.Metrics.Emit(metrics.CounterEvent(now, "routed_queries", 1))
		p.d.env.Trace.Delivered(hops)
		providers := p.index[m.Key]
		resp := cgHomeResp{Seq: m.Seq}
		if p.d.env.Trace.Enabled() {
			resp.Path = trace.Append(path, trace.Hop{
				Kind: trace.HopHome, Node: p.nid, Loc: p.d.env.Net.Locality(p.nid), At: now})
		}
		// Random redirection — no locality information exists.
		for _, i := range p.rng.Perm(len(providers)) {
			if len(resp.Providers) >= p.d.cfg.ProvidersPerReply {
				break
			}
			if providers[i] != m.Client {
				resp.Providers = append(resp.Providers, providers[i])
			}
		}
		// The requester is about to hold the object (from a provider
		// or the origin): index it optimistically.
		p.addProvider(m.Key, m.Client)
		p.d.env.Net.Send(p.nid, m.Client, resp)
	case cgSummary:
		for _, k := range m.Keys {
			p.addProvider(k, m.Node)
		}
	}
}

func (p *cgPeer) addProvider(k content.Key, nid runtime.NodeID) {
	ps := p.index[k]
	for _, existing := range ps {
		if existing == nid {
			return
		}
	}
	ps = append(ps, nid)
	if len(ps) > p.d.cfg.IndexCap {
		ps = ps[len(ps)-p.d.cfg.IndexCap:]
	}
	p.index[k] = ps
}

func (p *cgPeer) onHomeResp(m cgHomeResp) {
	q := p.query
	if q == nil || q.seq != m.Seq || q.redirected {
		return
	}
	q.redirected = true
	if q.timeout != nil {
		q.timeout.Cancel()
	}
	q.candidates = m.Providers
	q.path = trace.Concat(q.path, m.Path)
	p.probeProvider(q)
}

func (p *cgPeer) probeProvider(q *cgActiveQuery) {
	if p.dead || p.query != q {
		return
	}
	if len(q.candidates) == 0 {
		p.resolve(q, metrics.Miss, p.d.env.Origins.Node(q.key.Site))
		return
	}
	target := q.candidates[0]
	q.candidates = q.candidates[1:]
	timeout := 2*p.d.env.Net.Latency(p.nid, target) + 300*runtime.Millisecond
	p.d.env.Net.Request(p.nid, target, workload.FetchReq{Key: q.key}, timeout,
		func(resp any, err error) {
			if p.dead || p.query != q {
				return
			}
			served := err == nil && resp.(workload.FetchResp).Served
			if p.d.env.Trace.Enabled() {
				q.path = trace.Append(q.path, trace.Hop{
					Kind: trace.HopProbe, Node: target,
					Loc: p.d.env.Net.Locality(target), At: p.d.env.Clock.Now(),
					// A probe that answered but could not serve is a stale
					// directory entry — the summary false-positive flag.
					FalsePositive: err == nil && !served,
				})
			}
			if !served {
				p.probeProvider(q)
				return
			}
			p.resolve(q, metrics.HitDirectory, target)
		})
}

// resolve records metrics and performs the transfer — the same
// lookup-latency definition as the other deployments (time to reach
// the destination that will provide the object).
func (p *cgPeer) resolve(q *cgActiveQuery, outcome metrics.Outcome, provider runtime.NodeID) {
	if p.query != q {
		return
	}
	if q.timeout != nil {
		q.timeout.Cancel()
	}
	p.query = nil
	env := p.d.env
	now := env.Clock.Now()
	dist := env.Net.Latency(p.nid, provider)
	lookup := now - q.start
	if outcome == metrics.Miss {
		lookup += dist
	} else if lookup > dist {
		lookup -= dist
	}
	env.Metrics.Emit(metrics.QueryEvent(now, outcome, lookup, dist))
	if tr := env.Trace; tr.Enabled() {
		tr.Emit(now, &trace.Record{
			Query: q.seq, Client: p.nid, Loc: env.Net.Locality(p.nid),
			Key: q.key.Uint64(), Outcome: outcome, Attempts: q.attempt,
			Hops: trace.Append(q.path, trace.Hop{
				Kind: trace.HopServe, Node: provider, Loc: env.Net.Locality(provider), At: now}),
		})
	}
	if outcome == metrics.Miss {
		env.Net.Request(p.nid, provider, workload.FetchReq{Key: q.key}, 0,
			func(_ any, err error) {
				if p.dead || err != nil {
					return
				}
				p.store.Add(q.key)
			})
		return
	}
	p.store.Add(q.key)
}

// ---- runtime.Handler ----

func (p *cgPeer) HandleMessage(from runtime.NodeID, msg any) {
	if p.dead {
		return
	}
	if p.node.HandleMessage(from, msg) {
		return
	}
	if m, ok := msg.(cgHomeResp); ok {
		p.onHomeResp(m)
	}
}

func (p *cgPeer) HandleRequest(from runtime.NodeID, req any) (any, error) {
	if p.dead {
		return nil, errors.New("baseline: dead peer")
	}
	if resp, err, ok := p.node.HandleRequest(from, req); ok {
		return resp, err
	}
	if r, ok := req.(workload.FetchReq); ok {
		return workload.FetchResp{Key: r.Key, Served: p.store.Has(r.Key)}, nil
	}
	return nil, fmt.Errorf("baseline: unhandled request %T", req)
}
