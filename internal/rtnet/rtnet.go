// Package rtnet is the wall-clock loopback backend: the identical
// protocol code that runs on the deterministic simulator executes here
// in real time. The run loop is the shared internal/wallclock Clock
// (real time.Timers, callbacks serialized exactly like the engine), and
// the transport is the same internal/simnet delivery logic driven by
// that clock — per-link latency sampled from the same topology model.
// It registers itself as the "realtime" backend.
//
// Runs are NOT reproducible: wall-clock arrival order replaces the
// engine's (when, seq) total order. Everything else — loss semantics,
// byte accounting, metrics windows — behaves identically.
package rtnet

import (
	"flowercdn/internal/runtime"
	"flowercdn/internal/simnet"
	"flowercdn/internal/topology"
	"flowercdn/internal/wallclock"
)

func init() {
	runtime.RegisterBackend("realtime", func(cfg runtime.BackendConfig) (runtime.Runtime, error) {
		rt := New(cfg.Topo)
		if cfg.LossRate > 0 {
			rt.net.SetLossRate(cfg.LossRate, cfg.LossRNG)
		}
		return rt, nil
	})
}

// Clock aliases the shared wall-clock run loop so existing callers keep
// compiling; new code should name internal/wallclock directly.
type Clock = wallclock.Clock

// NewClock starts a wall clock at time zero (= now).
func NewClock() *Clock { return wallclock.NewClock() }

// Runtime implements runtime.Runtime over the wall clock and the
// in-process loopback transport. The transport is the same delivery
// logic as the deterministic simulation (internal/simnet) — latency
// sampled from the identical topology model, identical loss and
// accounting semantics — but deliveries are scheduled on real
// time.Timers, so a run takes as long as its horizon says.
type Runtime struct {
	clock *wallclock.Clock
	net   *simnet.Network
}

// New builds a realtime backend over the given topology. The clock
// starts at zero immediately.
func New(topo *topology.Topology) *Runtime {
	clock := wallclock.NewClock()
	return &Runtime{clock: clock, net: simnet.New(clock, topo)}
}

// Clock returns the wall clock.
func (r *Runtime) Clock() runtime.Clock { return r.clock }

// Net returns the loopback transport.
func (r *Runtime) Net() runtime.Transport { return r.net }

// Network exposes the concrete transport (loss injection, etc.).
func (r *Runtime) Network() *simnet.Network { return r.net }

// Run drives the loop until the wall clock passes `until` (ms) — i.e.
// it genuinely takes that long — and returns callbacks executed. After
// Run returns no goroutines remain; pending timers are simply never
// executed.
func (r *Runtime) Run(until int64) uint64 { return r.clock.Run(until) }
