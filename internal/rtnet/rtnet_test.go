package rtnet

import (
	"testing"

	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
)

// TestLoopbackDelivery runs the simnet delivery logic over the wall
// clock: a Send arrives after the topology's link latency, and the
// transport's accounting matches the sim backend's semantics.
func TestLoopbackDelivery(t *testing.T) {
	rng := rnd.New(1)
	topo := topology.MustNew(topology.DefaultConfig(), rng)
	rt := New(topo)
	net := rt.Net()

	var deliveredAt int64 = -1
	a := net.Join(handlerFunc{}, topo.Place(rng))
	b := net.Join(handlerFunc{onMsg: func() { deliveredAt = rt.Clock().Now() }}, topo.Place(rng))

	net.Send(a, b, "ping")
	lat := net.Latency(a, b)
	rt.Run(lat + 200)

	if deliveredAt < 0 {
		t.Fatal("message never delivered")
	}
	if deliveredAt < lat {
		t.Fatalf("delivered at %dms, before the %dms link latency", deliveredAt, lat)
	}
	st := net.Stats()
	if st.MessagesSent != 1 || st.MessagesDelivered != 1 {
		t.Fatalf("stats %+v, want 1 sent / 1 delivered", st)
	}
}

// TestLoopbackRequest checks the RPC round trip over the wall clock.
func TestLoopbackRequest(t *testing.T) {
	rng := rnd.New(2)
	topo := topology.MustNew(topology.DefaultConfig(), rng)
	rt := New(topo)
	net := rt.Net()

	a := net.Join(handlerFunc{}, topo.Place(rng))
	b := net.Join(handlerFunc{onReq: func(req any) (any, error) { return "pong", nil }}, topo.Place(rng))

	var resp any
	var rerr error
	done := false
	net.Request(a, b, "ping", 2*runtime.Second, func(r any, err error) {
		resp, rerr, done = r, err, true
	})
	rt.Run(2*net.Latency(a, b) + 300)

	if !done {
		t.Fatal("request callback never ran")
	}
	if rerr != nil || resp != "pong" {
		t.Fatalf("resp=%v err=%v, want pong/nil", resp, rerr)
	}
}

type handlerFunc struct {
	onMsg func()
	onReq func(req any) (any, error)
}

func (h handlerFunc) HandleMessage(runtime.NodeID, any) {
	if h.onMsg != nil {
		h.onMsg()
	}
}

func (h handlerFunc) HandleRequest(_ runtime.NodeID, req any) (any, error) {
	if h.onReq != nil {
		return h.onReq(req)
	}
	return nil, nil
}
