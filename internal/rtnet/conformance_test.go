package rtnet

import (
	"testing"

	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
	"flowercdn/internal/transporttest"
)

// TestTransportConformance runs the shared Transport contract suite
// against the wall-clock loopback. Steps cost real time here, so the
// suite is the slow-but-honest leg of the contract matrix.
func TestTransportConformance(t *testing.T) {
	transporttest.RunCodecs(t, func(string) transporttest.Factory {
		return func(t *testing.T, topoSeed uint64, lossRate float64, lossSeed uint64, _ int) *transporttest.World {
			topo := topology.MustNew(topology.DefaultConfig(), rnd.New(topoSeed))
			rt := New(topo)
			if lossRate > 0 {
				rt.Network().SetLossRate(lossRate, rnd.New(lossSeed))
			}
			return &transporttest.World{
				Transports: []runtime.Transport{rt.Net()},
				Run:        func(until int64) { rt.Run(until) },
			}
		}
	})
}
