package rtnet

import (
	"testing"

	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
)

// TestTimerOrdering checks that same-deadline timers fire in schedule
// order and differently-deadlined timers fire by deadline — the same
// (when, seq) total order the engine guarantees.
func TestTimerOrdering(t *testing.T) {
	c := NewClock()
	var got []int
	c.Schedule(30, func() { got = append(got, 3) })
	c.Schedule(10, func() { got = append(got, 1) })
	c.Schedule(10, func() { got = append(got, 2) }) // same deadline, later seq
	c.Run(60)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order %v, want [1 2 3]", got)
	}
}

func TestTimerCancel(t *testing.T) {
	c := NewClock()
	fired := false
	tm := c.Schedule(20, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel reported no effect")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel reported effect")
	}
	c.Run(50)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Cancelled() || tm.Fired() {
		t.Fatalf("state after cancel: cancelled=%v fired=%v", tm.Cancelled(), tm.Fired())
	}
}

func TestRunHorizonAndScheduleDuringRun(t *testing.T) {
	c := NewClock()
	var fired []int64
	c.Schedule(10, func() {
		fired = append(fired, c.Now())
		c.Schedule(15, func() { fired = append(fired, c.Now()) }) // due ~25
	})
	c.Schedule(500, func() { fired = append(fired, -1) }) // beyond horizon
	n := c.Run(100)
	if n != 2 {
		t.Fatalf("processed %d callbacks, want 2", n)
	}
	if len(fired) != 2 || fired[1] < 20 {
		t.Fatalf("fired at %v, want two firings with the second at >= 20ms", fired)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending %d, want the beyond-horizon timer queued", c.Pending())
	}
}

func TestTickerFiresAndStops(t *testing.T) {
	c := NewClock()
	count := 0
	tick := c.Every(5, 10, func() { count++ })
	c.Run(48)
	if count < 3 {
		t.Fatalf("ticker fired %d times in 48ms with period 10, want >= 3", count)
	}
	tick.Cancel()
	if !tick.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	before := count
	c.Run(80)
	if count != before {
		t.Fatalf("ticker fired after Cancel: %d -> %d", before, count)
	}
}

func TestStopInterruptsRun(t *testing.T) {
	c := NewClock()
	c.Schedule(5, func() { c.Stop() })
	c.Schedule(40, func() { t.Fatal("callback after Stop") })
	c.Run(60)
	if c.Pending() != 1 {
		t.Fatalf("pending %d after Stop, want 1", c.Pending())
	}
}

// TestLoopbackDelivery runs the simnet delivery logic over the wall
// clock: a Send arrives after the topology's link latency, and the
// transport's accounting matches the sim backend's semantics.
func TestLoopbackDelivery(t *testing.T) {
	rng := rnd.New(1)
	topo := topology.MustNew(topology.DefaultConfig(), rng)
	rt := New(topo)
	net := rt.Net()

	var deliveredAt int64 = -1
	a := net.Join(handlerFunc{}, topo.Place(rng))
	b := net.Join(handlerFunc{onMsg: func() { deliveredAt = rt.Clock().Now() }}, topo.Place(rng))

	net.Send(a, b, "ping")
	lat := net.Latency(a, b)
	rt.Run(lat + 200)

	if deliveredAt < 0 {
		t.Fatal("message never delivered")
	}
	if deliveredAt < lat {
		t.Fatalf("delivered at %dms, before the %dms link latency", deliveredAt, lat)
	}
	st := net.Stats()
	if st.MessagesSent != 1 || st.MessagesDelivered != 1 {
		t.Fatalf("stats %+v, want 1 sent / 1 delivered", st)
	}
}

// TestLoopbackRequest checks the RPC round trip over the wall clock.
func TestLoopbackRequest(t *testing.T) {
	rng := rnd.New(2)
	topo := topology.MustNew(topology.DefaultConfig(), rng)
	rt := New(topo)
	net := rt.Net()

	a := net.Join(handlerFunc{}, topo.Place(rng))
	b := net.Join(handlerFunc{onReq: func(req any) (any, error) { return "pong", nil }}, topo.Place(rng))

	var resp any
	var rerr error
	done := false
	net.Request(a, b, "ping", 2*runtime.Second, func(r any, err error) {
		resp, rerr, done = r, err, true
	})
	rt.Run(2*net.Latency(a, b) + 300)

	if !done {
		t.Fatal("request callback never ran")
	}
	if rerr != nil || resp != "pong" {
		t.Fatalf("resp=%v err=%v, want pong/nil", resp, rerr)
	}
}

type handlerFunc struct {
	onMsg func()
	onReq func(req any) (any, error)
}

func (h handlerFunc) HandleMessage(runtime.NodeID, any) {
	if h.onMsg != nil {
		h.onMsg()
	}
}

func (h handlerFunc) HandleRequest(_ runtime.NodeID, req any) (any, error) {
	if h.onReq != nil {
		return h.onReq(req)
	}
	return nil, nil
}
