package transporttest

import "flowercdn/internal/runtime"

// Binary wire marshallers for the contract suite's probe messages, so
// the suite itself runs under every codec.

func (m Ping) AppendWire(w *runtime.WireWriter) { w.Int(m.N) }

func (Ping) DecodeWire(r *runtime.WireReader) any { return Ping{N: r.Int()} }

func (m Pong) AppendWire(w *runtime.WireWriter) { w.Int(m.N) }

func (Pong) DecodeWire(r *runtime.WireReader) any { return Pong{N: r.Int()} }

func (m Sized) AppendWire(w *runtime.WireWriter) { w.Int(m.N) }

func (Sized) DecodeWire(r *runtime.WireReader) any { return Sized{N: r.Int()} }
