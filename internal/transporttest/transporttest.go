// Package transporttest is the shared conformance suite every
// runtime.Transport backend must pass: the contract tests for Send and
// Request semantics, the Join/Fail lifecycle, latency and loss
// sampling, and TransportStats accounting. The three backends run it
// from their own test files — internal/simrt (the deterministic
// loopback), internal/rtnet (wall-clock loopback) and internal/socknet
// (real TCP across transport instances) — so a semantic drift between
// backends fails compilation-adjacent tests instead of surfacing as a
// protocol heisenbug.
//
// The suite drives a World: one or more transport instances sharing a
// single id space, plus a Run hook that advances every instance's
// clock to an absolute time and blocks. Single-process backends expose
// one instance; the socket backend exposes one per process group, all
// within the test process but genuinely connected over localhost TCP.
package transporttest

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
)

// World is one assembled backend universe.
type World struct {
	// Transports lists the cooperating transport instances sharing one
	// id space; single-process backends have exactly one.
	Transports []runtime.Transport
	// Run drives every instance's clock until absolute time `until`
	// (ms since the world started) and blocks until all return.
	Run func(until int64)
	// Close tears the world down (nil ok).
	Close func()

	now int64
}

// Factory builds a fresh world. topoSeed builds the topology (every
// instance of one world must build the identical topology from it);
// lossRate/lossSeed configure message loss; instances is the number of
// cooperating transport instances a multi-process backend should
// spawn (single-process backends ignore it).
type Factory func(t *testing.T, topoSeed uint64, lossRate float64, lossSeed uint64, instances int) *World

// Instances is how many transport instances the suite asks a
// multi-process backend for.
const Instances = 3

// Ping, Pong and Sized are the suite's wire messages, registered with
// the runtime wire-type registry so the socket backend can frame them.
type Ping struct{ N int }
type Pong struct{ N int }

// Sized reports an explicit wire size for the accounting test.
type Sized struct{ N int }

// SizedBytes is Sized's modeled wire size.
const SizedBytes = 1000

func (Sized) WireBytes() int { return SizedBytes }

func init() {
	runtime.RegisterWireType(Ping{}, Pong{}, Sized{})
}

// at returns the i-th instance (everything maps to instance 0 on
// single-process backends).
func (w *World) at(i int) runtime.Transport {
	if i >= len(w.Transports) {
		i = len(w.Transports) - 1
	}
	return w.Transports[i]
}

// step advances the world by d ms.
func (w *World) step(d int64) {
	w.now += d
	w.Run(w.now)
}

// eventually steps the world in small increments until cond holds,
// failing the test after a generous budget. On the sim backend the
// steps cost nothing; on wall-clock backends they are real time.
func (w *World) eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	const stepMs, budgetMs = 25, 8000
	if cond() {
		return
	}
	for spent := int64(0); spent < budgetMs; spent += stepMs {
		w.step(stepMs)
		if cond() {
			return
		}
	}
	t.Fatalf("condition never held: %s", what)
}

// aggregate sums the per-instance stats: sends count where issued,
// deliveries where the target lives, so only the sum is meaningful on
// a multi-process backend.
func (w *World) aggregate() runtime.TransportStats {
	var out runtime.TransportStats
	for _, tr := range w.Transports {
		s := tr.Stats()
		out.MessagesSent += s.MessagesSent
		out.MessagesDelivered += s.MessagesDelivered
		out.MessagesDropped += s.MessagesDropped
		out.BytesSent += s.BytesSent
		out.RequestsIssued += s.RequestsIssued
		out.RequestsTimedOut += s.RequestsTimedOut
	}
	return out
}

// recorder is a thread-safe test handler.
type recorder struct {
	mu    sync.Mutex
	msgs  []recorded
	onReq func(from runtime.NodeID, req any) (any, error)
	clock runtime.Clock // when set, stamps deliveries with its Now
}

type recorded struct {
	from runtime.NodeID
	msg  any
	at   int64
}

func (r *recorder) HandleMessage(from runtime.NodeID, msg any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	at := int64(-1)
	if r.clock != nil {
		at = r.clock.Now()
	}
	r.msgs = append(r.msgs, recorded{from: from, msg: msg, at: at})
}

func (r *recorder) HandleRequest(from runtime.NodeID, req any) (any, error) {
	r.mu.Lock()
	fn := r.onReq
	r.mu.Unlock()
	if fn != nil {
		return fn(from, req)
	}
	return nil, errors.New("transporttest: no request handler")
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func (r *recorder) first() recorded {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.msgs[0]
}

// place builds a placement at an explicit point of the unit square.
func place(topo *topology.Topology, x, y float64) topology.Placement {
	pos := topology.Point{X: x, Y: y}
	return topology.Placement{Pos: pos, Loc: topo.LocalityOf(pos)}
}

// Run executes the full conformance suite against the backend behind
// the factory.
func Run(t *testing.T, f Factory) {
	t.Run("SendDelivers", func(t *testing.T) { testSendDelivers(t, f) })
	t.Run("SendLatency", func(t *testing.T) { testSendLatency(t, f) })
	t.Run("SendToDeadDropped", func(t *testing.T) { testSendToDeadDropped(t, f) })
	t.Run("RequestResponse", func(t *testing.T) { testRequestResponse(t, f) })
	t.Run("RequestAppError", func(t *testing.T) { testRequestAppError(t, f) })
	t.Run("RequestTimeout", func(t *testing.T) { testRequestTimeout(t, f) })
	t.Run("LateDuplicateResponse", func(t *testing.T) { testLateDuplicateResponse(t, f) })
	t.Run("JoinFailLifecycle", func(t *testing.T) { testJoinFailLifecycle(t, f) })
	t.Run("LossSampling", func(t *testing.T) { testLossSampling(t, f) })
	t.Run("StatsAccounting", func(t *testing.T) { testStatsAccounting(t, f) })
	t.Run("ForEachAliveAscending", func(t *testing.T) { testForEachAlive(t, f) })
}

// RunCodecs executes the conformance suite once per registered wire
// codec. build returns a Factory configured for the named codec; the
// single-process backends have no serialization layer and simply
// ignore the name — running them anyway pins that the contract
// semantics are codec-independent, so a gob run and a binary run of
// the same scenario stay interchangeable.
func RunCodecs(t *testing.T, build func(codec string) Factory) {
	for _, name := range runtime.Codecs() {
		f := build(name)
		t.Run("codec="+name, func(t *testing.T) { Run(t, f) })
	}
}

func build(t *testing.T, f Factory, lossRate float64) *World {
	t.Helper()
	w := f(t, 1, lossRate, 99, Instances)
	if len(w.Transports) == 0 {
		t.Fatal("factory built a world with no transports")
	}
	if w.Close != nil {
		t.Cleanup(w.Close)
	}
	return w
}

func testSendDelivers(t *testing.T, f Factory) {
	w := build(t, f, 0)
	src, dst := w.at(0), w.at(1)
	topo := src.Topology()

	a := src.Join(&recorder{}, place(topo, 0.5, 0.5))
	rec := &recorder{clock: dst.Clock()}
	b := dst.Join(rec, place(topo, 0.5, 0.5))

	src.Send(a, b, Ping{N: 7})
	w.eventually(t, "message delivered", func() bool { return rec.count() > 0 })

	got := rec.first()
	if got.from != a {
		t.Errorf("delivered from %d, want %d", got.from, a)
	}
	if p, ok := got.msg.(Ping); !ok || p.N != 7 {
		t.Errorf("delivered %#v, want Ping{7}", got.msg)
	}
	st := w.aggregate()
	if st.MessagesSent < 1 || st.MessagesDelivered < 1 {
		t.Errorf("aggregate stats %+v, want >=1 sent and delivered", st)
	}
}

func testSendLatency(t *testing.T, f Factory) {
	w := build(t, f, 0)
	src, dst := w.at(0), w.at(1)
	topo := src.Topology()

	// Far corners of the unit square: the modeled latency is
	// substantial, so a backend skipping the latency model fails this
	// even with real network time in the loop.
	a := src.Join(&recorder{}, place(topo, 0.02, 0.02))
	rec := &recorder{clock: dst.Clock()}
	b := dst.Join(rec, place(topo, 0.98, 0.98))

	w.eventually(t, "join mirrored", func() bool { return src.Alive(b) && dst.Alive(a) })
	lat := src.Latency(a, b)
	if lat < topo.Config().MinLatency {
		t.Fatalf("modeled latency %dms below topology floor", lat)
	}
	sentAt := src.Clock().Now()
	src.Send(a, b, Ping{N: 1})
	w.eventually(t, "message delivered", func() bool { return rec.count() > 0 })

	// Clocks of one world start within a round trip of each other, so
	// a small slack absorbs the skew on wall-clock backends; the
	// modeled latency is hundreds of ms.
	const slackMs = 50
	elapsed := rec.first().at - sentAt
	if elapsed < lat-slackMs {
		t.Errorf("delivered after %dms, modeled link latency %dms", elapsed, lat)
	}
}

func testSendToDeadDropped(t *testing.T, f Factory) {
	w := build(t, f, 0)
	src, dst := w.at(0), w.at(1)
	topo := src.Topology()

	a := src.Join(&recorder{}, place(topo, 0.5, 0.5))
	rec := &recorder{}
	b := dst.Join(rec, place(topo, 0.5, 0.5))
	w.eventually(t, "join mirrored", func() bool { return src.Alive(b) })

	dst.Fail(b)
	w.eventually(t, "failure mirrored", func() bool { return !src.Alive(b) })

	src.Send(a, b, Ping{N: 1})
	w.eventually(t, "drop accounted", func() bool { return w.aggregate().MessagesDropped >= 1 })
	if rec.count() != 0 {
		t.Errorf("dead node received %d message(s)", rec.count())
	}
	if st := w.aggregate(); st.MessagesDelivered != 0 {
		t.Errorf("aggregate stats %+v, want 0 delivered", st)
	}
}

func testRequestResponse(t *testing.T, f Factory) {
	w := build(t, f, 0)
	src, dst := w.at(0), w.at(1)
	topo := src.Topology()

	a := src.Join(&recorder{}, place(topo, 0.5, 0.5))
	b := dst.Join(&recorder{onReq: func(_ runtime.NodeID, req any) (any, error) {
		return Pong{N: req.(Ping).N + 1}, nil
	}}, place(topo, 0.5, 0.5))
	w.eventually(t, "join mirrored", func() bool { return src.Alive(b) })

	var mu sync.Mutex
	var resp any
	var rerr error
	done := false
	src.Request(a, b, Ping{N: 41}, 5*runtime.Second, func(r any, err error) {
		mu.Lock()
		defer mu.Unlock()
		resp, rerr, done = r, err, true
	})
	w.eventually(t, "request resolved", func() bool { mu.Lock(); defer mu.Unlock(); return done })

	mu.Lock()
	defer mu.Unlock()
	if rerr != nil {
		t.Fatalf("request failed: %v", rerr)
	}
	if p, ok := resp.(Pong); !ok || p.N != 42 {
		t.Fatalf("response %#v, want Pong{42}", resp)
	}
	if st := w.aggregate(); st.RequestsIssued < 1 {
		t.Errorf("aggregate stats %+v, want >=1 request issued", st)
	}
}

func testRequestAppError(t *testing.T, f Factory) {
	w := build(t, f, 0)
	src, dst := w.at(0), w.at(1)
	topo := src.Topology()

	a := src.Join(&recorder{}, place(topo, 0.5, 0.5))
	b := dst.Join(&recorder{onReq: func(runtime.NodeID, any) (any, error) {
		return nil, errors.New("not my role")
	}}, place(topo, 0.5, 0.5))
	w.eventually(t, "join mirrored", func() bool { return src.Alive(b) })

	var mu sync.Mutex
	var rerr error
	done := false
	src.Request(a, b, Ping{N: 1}, 5*runtime.Second, func(_ any, err error) {
		mu.Lock()
		defer mu.Unlock()
		rerr, done = err, true
	})
	w.eventually(t, "request resolved", func() bool { mu.Lock(); defer mu.Unlock(); return done })

	mu.Lock()
	defer mu.Unlock()
	if rerr == nil {
		t.Fatal("application error did not reach the caller")
	}
	if errors.Is(rerr, runtime.ErrTimeout) {
		t.Fatalf("application error surfaced as timeout: %v", rerr)
	}
	if !strings.Contains(rerr.Error(), "not my role") {
		t.Fatalf("application error lost its message: %v", rerr)
	}
}

func testRequestTimeout(t *testing.T, f Factory) {
	w := build(t, f, 0)
	src, dst := w.at(0), w.at(1)
	topo := src.Topology()

	a := src.Join(&recorder{}, place(topo, 0.5, 0.5))
	b := dst.Join(&recorder{}, place(topo, 0.5, 0.5))
	w.eventually(t, "join mirrored", func() bool { return src.Alive(b) })
	dst.Fail(b)
	w.eventually(t, "failure mirrored", func() bool { return !src.Alive(b) })

	var mu sync.Mutex
	var rerr error
	done := false
	src.Request(a, b, Ping{N: 1}, 300, func(_ any, err error) {
		mu.Lock()
		defer mu.Unlock()
		rerr, done = err, true
	})
	w.eventually(t, "request timed out", func() bool { mu.Lock(); defer mu.Unlock(); return done })

	mu.Lock()
	defer mu.Unlock()
	if !errors.Is(rerr, runtime.ErrTimeout) {
		t.Fatalf("request to dead node resolved with %v, want ErrTimeout", rerr)
	}
	if st := w.aggregate(); st.RequestsTimedOut < 1 {
		t.Errorf("aggregate stats %+v, want >=1 request timed out", st)
	}
}

// testLateDuplicateResponse pins the stale-response contract: when a
// handler's reply arrives after the requester's timeout already fired,
// the backend must discard it silently — no panic, no double callback,
// and above all no leak into a later request's correlation slot. The
// trap is a backend that keys in-flight requests by something reusable
// (the node pair, say, instead of a unique sequence number): the first
// request's late reply would then resolve the second request with the
// wrong payload.
func testLateDuplicateResponse(t *testing.T, f Factory) {
	w := build(t, f, 0)
	src, dst := w.at(0), w.at(1)
	topo := src.Topology()

	// Far corners: the modeled one-way latency is large, so a timeout
	// of half of it is guaranteed to fire before the reply's return leg
	// lands — the reply is *in flight* when the requester gives up.
	a := src.Join(&recorder{}, place(topo, 0.02, 0.02))
	b := dst.Join(&recorder{onReq: func(_ runtime.NodeID, req any) (any, error) {
		return Pong{N: req.(Ping).N}, nil
	}}, place(topo, 0.98, 0.98))
	w.eventually(t, "join mirrored", func() bool { return src.Alive(b) && dst.Alive(a) })
	lat := src.Latency(a, b)
	if lat < 100 {
		t.Fatalf("modeled corner-to-corner latency %dms too small to race a timeout against", lat)
	}

	var mu sync.Mutex
	firstCalls := 0
	var firstErr error
	src.Request(a, b, Ping{N: 1}, lat/2, func(_ any, err error) {
		mu.Lock()
		defer mu.Unlock()
		firstCalls++
		firstErr = err
	})
	w.eventually(t, "first request timed out", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstCalls > 0
	})
	mu.Lock()
	if !errors.Is(firstErr, runtime.ErrTimeout) {
		t.Fatalf("first request resolved with %v, want ErrTimeout", firstErr)
	}
	mu.Unlock()

	// Let the orphaned reply complete its return leg (full round trip
	// plus slack) while no request is outstanding: the backend must
	// swallow it without panicking.
	w.step(2*lat + 200)

	// A second request on the same (a, b) pair must resolve with *its*
	// response, untouched by the first request's late reply.
	var resp any
	var rerr error
	secondDone := false
	src.Request(a, b, Ping{N: 2}, 10*runtime.Second, func(r any, err error) {
		mu.Lock()
		defer mu.Unlock()
		resp, rerr, secondDone = r, err, true
	})
	w.eventually(t, "second request resolved", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return secondDone
	})

	mu.Lock()
	defer mu.Unlock()
	if rerr != nil {
		t.Fatalf("second request failed: %v", rerr)
	}
	if p, ok := resp.(Pong); !ok || p.N != 2 {
		t.Fatalf("second request got %#v — the first request's late reply leaked in", resp)
	}
	if firstCalls != 1 {
		t.Fatalf("first request's callback ran %d times, want exactly 1", firstCalls)
	}
}

func testJoinFailLifecycle(t *testing.T, f Factory) {
	w := build(t, f, 0)
	topo := w.at(0).Topology()

	ids := make([]runtime.NodeID, 3)
	for i := range ids {
		ids[i] = w.at(i).Join(&recorder{}, place(topo, 0.3, 0.3+float64(i)/10))
	}
	for i := range ids {
		for j := range ids {
			if i != j && ids[i] == ids[j] {
				t.Fatalf("duplicate NodeID %d minted by instances %d and %d", ids[i], i, j)
			}
		}
	}
	// Every instance converges on the full view.
	for i, tr := range w.Transports {
		tr := tr
		w.eventually(t, fmt.Sprintf("instance %d sees all joins", i), func() bool {
			if tr.AliveCount() != len(ids) || tr.TotalJoined() != len(ids) {
				return false
			}
			for _, id := range ids {
				if !tr.Alive(id) {
					return false
				}
			}
			return true
		})
	}

	// Placement knowledge survives failure.
	victim := ids[1]
	placeBefore := w.at(1).Placement(victim)
	w.at(1).Fail(victim)
	for i, tr := range w.Transports {
		tr := tr
		w.eventually(t, fmt.Sprintf("instance %d sees the failure", i), func() bool {
			return !tr.Alive(victim) && tr.AliveCount() == len(ids)-1
		})
		if tr.TotalJoined() != len(ids) {
			t.Errorf("instance %d TotalJoined %d after failure, want %d", i, tr.TotalJoined(), len(ids))
		}
	}
	if got := w.at(1).Placement(victim); got != placeBefore {
		t.Errorf("placement changed across failure: %+v vs %+v", got, placeBefore)
	}
	// Failing a dead node is a no-op.
	w.at(1).Fail(victim)
	if n := w.at(1).AliveCount(); n != len(ids)-1 {
		t.Errorf("double Fail changed AliveCount to %d", n)
	}
}

func testLossSampling(t *testing.T, f Factory) {
	const lossRate = 0.4
	const n = 150
	w := build(t, f, lossRate)
	src, dst := w.at(0), w.at(1)
	topo := src.Topology()

	a := src.Join(&recorder{}, place(topo, 0.5, 0.5))
	rec := &recorder{}
	b := dst.Join(rec, place(topo, 0.5, 0.5))
	w.eventually(t, "join mirrored", func() bool { return src.Alive(b) })

	for i := 0; i < n; i++ {
		src.Send(a, b, Ping{N: i})
	}
	w.eventually(t, "all transmissions accounted", func() bool {
		st := w.aggregate()
		return st.MessagesDelivered+st.MessagesDropped == n
	})
	st := w.aggregate()
	if st.MessagesSent != n {
		t.Errorf("sent %d, want %d", st.MessagesSent, n)
	}
	if st.MessagesDropped == 0 || st.MessagesDelivered == 0 {
		t.Errorf("loss rate %.1f over %d sends: %d delivered / %d dropped — sampling looks broken",
			lossRate, n, st.MessagesDelivered, st.MessagesDropped)
	}
	if rec.count() != int(st.MessagesDelivered) {
		t.Errorf("handler saw %d messages, stats say %d delivered", rec.count(), st.MessagesDelivered)
	}
}

func testStatsAccounting(t *testing.T, f Factory) {
	w := build(t, f, 0)
	src, dst := w.at(0), w.at(1)
	topo := src.Topology()

	a := src.Join(&recorder{}, place(topo, 0.5, 0.5))
	rec := &recorder{}
	b := dst.Join(rec, place(topo, 0.5, 0.5))
	w.eventually(t, "join mirrored", func() bool { return src.Alive(b) })

	src.Send(a, b, Sized{N: 1})
	src.Send(a, b, Ping{N: 2})
	w.eventually(t, "both delivered", func() bool { return rec.count() == 2 })

	st := w.aggregate()
	if st.MessagesSent != 2 || st.MessagesDelivered != 2 {
		t.Errorf("stats %+v, want 2 sent / 2 delivered", st)
	}
	want := uint64(SizedBytes + runtime.DefaultMessageBytes)
	if st.BytesSent != want {
		t.Errorf("BytesSent %d, want %d (Sizer honored + default size)", st.BytesSent, want)
	}
}

func testForEachAlive(t *testing.T, f Factory) {
	w := build(t, f, 0)
	topo := w.at(0).Topology()

	var ids []runtime.NodeID
	for i := 0; i < 6; i++ {
		ids = append(ids, w.at(i%Instances).Join(&recorder{}, place(topo, 0.4, 0.4)))
	}
	w.eventually(t, "all joins visible everywhere", func() bool {
		for _, tr := range w.Transports {
			if tr.AliveCount() != len(ids) {
				return false
			}
		}
		return true
	})
	w.at(0).Fail(ids[0])
	w.eventually(t, "failure visible everywhere", func() bool {
		for _, tr := range w.Transports {
			if tr.AliveCount() != len(ids)-1 {
				return false
			}
		}
		return true
	})

	for i, tr := range w.Transports {
		var seen []runtime.NodeID
		tr.ForEachAlive(func(id runtime.NodeID) { seen = append(seen, id) })
		if len(seen) != len(ids)-1 {
			t.Errorf("instance %d visited %d nodes, want %d", i, len(seen), len(ids)-1)
		}
		for j := 1; j < len(seen); j++ {
			if seen[j-1] >= seen[j] {
				t.Errorf("instance %d visit order not ascending: %v", i, seen)
				break
			}
		}
		for _, id := range seen {
			if id == ids[0] {
				t.Errorf("instance %d visited the failed node", i)
			}
		}
	}
}
