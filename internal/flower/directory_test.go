package flower

import (
	"flowercdn/internal/runtime"
	"testing"

	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/dring"
	"flowercdn/internal/gossip"
	"flowercdn/internal/ids"
	"flowercdn/internal/metrics"
	"flowercdn/internal/topology"
)

// findSeed returns the seed directory of (site, loc).
func (f *fixture) findSeed(site content.SiteID, loc topology.Locality) *Peer {
	f.t.Helper()
	for _, p := range f.seeds {
		if p.Site() == site && p.Locality() == loc {
			return p
		}
	}
	f.t.Fatalf("no seed for site %d loc %d", site, loc)
	return nil
}

func TestExactSummaryRoundTrip(t *testing.T) {
	set := exactSummary{}
	keys := []content.Key{{Site: 3, Object: 7}, {Site: 0, Object: 0}, {Site: 100, Object: 499}}
	for _, k := range keys {
		set[k] = struct{}{}
	}
	for _, k := range keys {
		if !set.Contains(k.Uint64()) {
			t.Fatalf("exact summary missing %v", k)
		}
	}
	if set.Contains(content.Key{Site: 3, Object: 8}.Uint64()) {
		t.Fatal("exact summary has false positives")
	}
	if set.SizeBytes() != len(keys)*8 {
		t.Fatalf("SizeBytes = %d", set.SizeBytes())
	}
}

func TestLookupProvidersOrderingAndCap(t *testing.T) {
	f := newFixture(t, 20, nil)
	f.seedRing()
	dir := f.findSeed(0, 0)
	d := dir.Directory()
	// Install three members holding the same key, at varying distances
	// from a querying client.
	key := content.Key{Site: 0, Object: 1}
	var members []*Peer
	for i := 0; i < 4; i++ {
		m := f.spawn(0, 0)
		members = append(members, m)
	}
	f.run(5 * runtime.Minute)
	for _, m := range members {
		mi := dir.admitMember(m.NodeID())
		mi.keys[key] = struct{}{}
		d.addProvider(key, m.NodeID())
	}
	asker := members[0].NodeID()
	providers, fromSummary := d.lookupProviders(dir, key, asker)
	if fromSummary {
		t.Fatal("index hit reported as summary hit")
	}
	if len(providers) == 0 || len(providers) > dir.sys.cfg.ProviderAttempts+1 {
		t.Fatalf("provider count %d out of bounds", len(providers))
	}
	for _, p := range providers {
		if p == asker {
			t.Fatal("asker returned as its own provider")
		}
	}
	// Latency-sorted: each successive provider is no closer than the
	// previous.
	for i := 1; i < len(providers); i++ {
		if dir.net().Latency(asker, providers[i-1]) > dir.net().Latency(asker, providers[i]) {
			t.Fatal("providers not sorted by distance to asker")
		}
	}
}

func TestLookupProvidersFallsBackToSummaries(t *testing.T) {
	f := newFixture(t, 21, nil)
	f.seedRing()
	dir := f.findSeed(1, 0)
	d := dir.Directory()
	key := content.Key{Site: 1, Object: 9}
	other := f.spawn(1, 0)
	f.run(2 * runtime.Minute)
	// No index entry, but an old summary claims `other` holds the key.
	store := content.NewStore()
	store.Add(key)
	d.oldSummaries = append(d.oldSummaries, gossipEntryFor(other.NodeID(), store))
	providers, fromSummary := d.lookupProviders(dir, key, runtime.NodeID(9999))
	if !fromSummary {
		t.Fatal("summary fallback not flagged")
	}
	if len(providers) != 1 || providers[0] != other.NodeID() {
		t.Fatalf("providers = %v", providers)
	}
	// The asker itself is excluded even on the summary path.
	providers, _ = d.lookupProviders(dir, key, other.NodeID())
	if len(providers) != 0 {
		t.Fatal("asker suggested to itself via summaries")
	}
}

func gossipEntryFor(nid runtime.NodeID, store *content.Store) gossip.Entry {
	return gossip.Entry{Peer: nid, Meta: ContactMeta{Summary: store.Summary()}}
}

func TestViewSeedIncludesDirectoryAndMembers(t *testing.T) {
	f := newFixture(t, 22, nil)
	f.seedRing()
	dir := f.findSeed(0, 1)
	for i := 0; i < 3; i++ {
		m := f.spawn(0, 1)
		_ = m
	}
	f.run(10 * runtime.Minute)
	seed := dir.viewSeed(runtime.NodeID(424242))
	foundSelf := false
	for _, e := range seed {
		if e.Peer == dir.NodeID() {
			foundSelf = true
			meta, ok := e.Meta.(ContactMeta)
			if !ok || meta.Dir.Node != dir.NodeID() {
				t.Fatal("directory's own seed entry lacks self dir-info")
			}
		}
	}
	if !foundSelf {
		t.Fatal("view seed does not include the directory itself")
	}
	// Excluded client never appears.
	seed = dir.viewSeed(dir.NodeID())
	for _, e := range seed {
		if e.Peer == dir.NodeID() {
			t.Fatal("excluded peer present in seed")
		}
	}
}

func TestMemberExpiryRemovesIndexEntries(t *testing.T) {
	f := newFixture(t, 23, nil)
	f.seedRing()
	dir := f.findSeed(0, 0)
	d := dir.Directory()
	key := content.Key{Site: 0, Object: 3}
	ghost := runtime.NodeID(31337) // never sends keepalives
	mi := dir.admitMember(ghost)
	mi.keys[key] = struct{}{}
	d.addProvider(key, ghost)
	// Two sweeps beyond the TTL clear it.
	f.run(3 * f.sys.cfg.KeepaliveInterval)
	if _, ok := d.members[ghost]; ok {
		t.Fatal("silent member survived the TTL sweep")
	}
	if _, ok := d.index[key]; ok {
		t.Fatal("expired member's index entries survived")
	}
}

func TestDeadProviderReportPrunesIndex(t *testing.T) {
	f := newFixture(t, 24, nil)
	f.seedRing()
	dir := f.findSeed(0, 0)
	d := dir.Directory()
	key := content.Key{Site: 0, Object: 4}
	dead := runtime.NodeID(777)
	mi := dir.admitMember(dead)
	mi.keys[key] = struct{}{}
	d.addProvider(key, dead)
	dir.HandleMessage(runtime.NodeID(1), deadProviderReport{Dead: dead})
	if _, ok := d.members[dead]; ok {
		t.Fatal("reported-dead member still in view")
	}
	if _, ok := d.index[key]; ok {
		t.Fatal("reported-dead member still indexed")
	}
}

func TestCollabSiblingsSameSiteOnly(t *testing.T) {
	f := newFixture(t, 25, nil)
	f.seedRing()
	f.run(10 * runtime.Minute) // let successor lists fill
	dir := f.findSeed(1, 0)
	sibs := dir.collabSiblings()
	if len(sibs) == 0 {
		t.Fatal("no collaboration siblings despite seeded site neighbours")
	}
	for _, s := range sibs {
		if !dring.SameSite(s.ID, dir.Site()) {
			t.Fatalf("sibling %v belongs to another site", s)
		}
		if s.Node == dir.NodeID() {
			t.Fatal("directory returned itself as sibling")
		}
	}
	// Disabled collaboration returns nothing.
	f2 := newFixture(t, 26, func(c *Config) { c.DirCollaboration = false })
	f2.seedRing()
	f2.run(10 * runtime.Minute)
	if sibs := f2.findSeed(1, 0).collabSiblings(); len(sibs) != 0 {
		t.Fatalf("collaboration disabled but siblings returned: %v", sibs)
	}
}

func TestForeignQueryNotAdmitted(t *testing.T) {
	f := newFixture(t, 27, nil)
	f.seedRing()
	dir := f.findSeed(0, 0)
	before := dir.Directory().MemberCount()
	if _, err := dir.HandleRequest(runtime.NodeID(555), dirQueryReq{
		Key: content.Key{Site: 0, Object: 1}, Client: runtime.NodeID(555), Foreign: true,
	}); err != nil {
		t.Fatal(err)
	}
	if dir.Directory().MemberCount() != before {
		t.Fatal("foreign collab query was admitted to the member view")
	}
	// A native query IS admitted.
	if _, err := dir.HandleRequest(runtime.NodeID(556), dirQueryReq{
		Key: content.Key{Site: 0, Object: 1}, Client: runtime.NodeID(556),
	}); err != nil {
		t.Fatal(err)
	}
	if dir.Directory().MemberCount() != before+1 {
		t.Fatal("native query not admitted")
	}
}

func TestNonDirectoryRejectsDirectoryRPCs(t *testing.T) {
	f := newFixture(t, 28, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(5 * runtime.Minute)
	if c.Role() != RoleContent {
		t.Fatal("setup: client did not join")
	}
	for _, req := range []any{keepaliveReq{}, pushReq{}, dirQueryReq{}} {
		if _, err := c.HandleRequest(runtime.NodeID(1), req); err == nil {
			t.Fatalf("content peer accepted %T", req)
		}
	}
}

func TestDemotionYieldsToWinner(t *testing.T) {
	f := newFixture(t, 29, nil)
	f.seedRing()
	dir := f.findSeed(2, 0)
	// Fake a winning rival and demote.
	winner := f.spawn(2, 0)
	f.run(2 * runtime.Minute)
	entry := dirEntryOf(winner.NodeID(), dir.Directory().Pos())
	dir.demoteToContentPeer(entry)
	if dir.Role() != RoleContent {
		t.Fatalf("role after demotion = %v", dir.Role())
	}
	if dir.Directory() != nil || dir.chordNode != nil {
		t.Fatal("directory state not torn down")
	}
	if dir.DirInfo().Node != winner.NodeID() {
		t.Fatal("demoted peer does not point at the winner")
	}
	if f.sys.Stats().Demotions == 0 {
		t.Fatal("demotion not counted")
	}
	// Demoted peers are pruned from the gateway registry.
	for _, e := range f.sys.registry.Entries {
		if e.Node == dir.NodeID() {
			t.Fatal("demoted peer still registered as gateway")
		}
	}
}

func TestDirectClientQueryToWrongNodeRedirects(t *testing.T) {
	f := newFixture(t, 30, nil)
	f.seedRing()
	// A content peer (not a directory) receives a direct client query:
	// it must answer with a vacancy signal, not drop it.
	c := f.spawn(0, 0)
	f.run(5 * runtime.Minute)
	probe := newProbePeer(f)
	c.HandleMessage(probe.nid, clientQueryMsg{
		Seq: 99, Key: content.Key{Site: 0, Object: 1},
		Client: probe.nid, Site: 0, Loc: c.Locality(),
	})
	f.run(runtime.Minute)
	if len(probe.vacants) != 1 || probe.vacants[0].Seq != 99 {
		t.Fatalf("wrong-node direct query not redirected: %+v", probe.vacants)
	}
}

// probePeer records protocol messages sent to it.
type probePeer struct {
	nid     runtime.NodeID
	vacants []vacantResp
	resps   []dirQueryResp
}

func newProbePeer(f *fixture) *probePeer {
	p := &probePeer{}
	p.nid = f.net.Join(p, f.net.Topology().Place(f.rng))
	return p
}

func (p *probePeer) HandleMessage(_ runtime.NodeID, msg any) {
	switch m := msg.(type) {
	case vacantResp:
		p.vacants = append(p.vacants, m)
	case dirQueryResp:
		p.resps = append(p.resps, m)
	}
}

func (p *probePeer) HandleRequest(runtime.NodeID, any) (any, error) {
	return nil, nil
}

func dirEntryOf(nid runtime.NodeID, pos ids.ID) chord.Entry {
	return chord.Entry{Node: nid, ID: pos}
}

func TestMetricsOutcomesAfterLongRun(t *testing.T) {
	f := newFixture(t, 31, nil)
	f.seedRing()
	for i := 0; i < 6; i++ {
		f.spawn(0, 0)
	}
	f.run(3 * runtime.Hour)
	if f.coll.Count(metrics.Unresolved) > f.coll.Total()/10 {
		t.Fatalf("too many unresolved queries: %d of %d",
			f.coll.Count(metrics.Unresolved), f.coll.Total())
	}
}
