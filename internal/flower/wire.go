package flower

import (
	"fmt"
	"math"
	"sort"

	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/gossip"
	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
	"flowercdn/internal/trace"
)

// Binary wire marshallers for every flower message registered in
// driver.go. Maps (the directory index, exact summaries) are encoded
// with sorted keys and decoded enforcing strictly ascending order, so
// the encoding stays canonical — any accepted byte stream re-encodes
// to exactly the same bytes.

func appendSite(w *runtime.WireWriter, s content.SiteID) { w.Varint(int64(s)) }

func decodeSite(r *runtime.WireReader) content.SiteID {
	v := r.Varint()
	if r.Err() == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		r.Fail(fmt.Errorf("flower: site id %d out of range", v))
		return 0
	}
	return content.SiteID(v)
}

func (m clientQueryMsg) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.Seq)
	m.Key.AppendWire(w)
	w.Node(m.Client)
	appendSite(w, m.Site)
	w.Int(int(m.Loc))
	w.Bool(m.JoinOnly)
	w.Int(m.Scanned)
	trace.AppendHopsWire(w, m.Path)
}

func (clientQueryMsg) DecodeWire(r *runtime.WireReader) any {
	var m clientQueryMsg
	m.Seq = r.Uvarint()
	m.Key = content.DecodeKeyWire(r)
	m.Client = r.Node()
	m.Site = decodeSite(r)
	m.Loc = runtime.Locality(r.Int())
	m.JoinOnly = r.Bool()
	m.Scanned = r.Int()
	m.Path = trace.DecodeHopsWire(r)
	return m
}

func (m dirQueryResp) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.Seq)
	w.Nodes(m.Providers)
	w.Bool(m.FromSummary)
	m.Dir.AppendWire(w)
	gossip.AppendEntriesWire(w, m.Seed)
	chord.AppendEntriesWire(w, m.CollabWith)
	trace.AppendHopsWire(w, m.Path)
}

func (dirQueryResp) DecodeWire(r *runtime.WireReader) any {
	var m dirQueryResp
	m.Seq = r.Uvarint()
	m.Providers = r.Nodes()
	m.FromSummary = r.Bool()
	m.Dir = chord.DecodeEntryWire(r)
	m.Seed = gossip.DecodeEntriesWire(r)
	m.CollabWith = chord.DecodeEntriesWire(r)
	m.Path = trace.DecodeHopsWire(r)
	return m
}

func (m vacantResp) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.Seq)
	w.U64(uint64(m.Pos))
}

func (vacantResp) DecodeWire(r *runtime.WireReader) any {
	var m vacantResp
	m.Seq = r.Uvarint()
	m.Pos = ids.ID(r.U64())
	return m
}

func (m dirQueryReq) AppendWire(w *runtime.WireWriter) {
	m.Key.AppendWire(w)
	w.Node(m.Client)
	w.Bool(m.Foreign)
}

func (dirQueryReq) DecodeWire(r *runtime.WireReader) any {
	var m dirQueryReq
	m.Key = content.DecodeKeyWire(r)
	m.Client = r.Node()
	m.Foreign = r.Bool()
	return m
}

func (m dirQueryReply) AppendWire(w *runtime.WireWriter) {
	w.Nodes(m.Providers)
	w.Bool(m.FromSummary)
	chord.AppendEntriesWire(w, m.CollabWith)
}

func (dirQueryReply) DecodeWire(r *runtime.WireReader) any {
	var m dirQueryReply
	m.Providers = r.Nodes()
	m.FromSummary = r.Bool()
	m.CollabWith = chord.DecodeEntriesWire(r)
	return m
}

func (m keepaliveReq) AppendWire(w *runtime.WireWriter) {
	appendSite(w, m.Site)
	w.Int(int(m.Loc))
}

func (keepaliveReq) DecodeWire(r *runtime.WireReader) any {
	var m keepaliveReq
	m.Site = decodeSite(r)
	m.Loc = runtime.Locality(r.Int())
	return m
}

func (keepaliveResp) AppendWire(*runtime.WireWriter) {}

func (keepaliveResp) DecodeWire(*runtime.WireReader) any { return keepaliveResp{} }

func (m pushReq) AppendWire(w *runtime.WireWriter) {
	appendSite(w, m.Site)
	w.Int(int(m.Loc))
	content.AppendKeysWire(w, m.Keys)
}

func (pushReq) DecodeWire(r *runtime.WireReader) any {
	var m pushReq
	m.Site = decodeSite(r)
	m.Loc = runtime.Locality(r.Int())
	m.Keys = content.DecodeKeysWire(r)
	return m
}

func (pushResp) AppendWire(*runtime.WireWriter) {}

func (pushResp) DecodeWire(*runtime.WireReader) any { return pushResp{} }

func (m deadProviderReport) AppendWire(w *runtime.WireWriter) { w.Node(m.Dead) }

func (deadProviderReport) DecodeWire(r *runtime.WireReader) any {
	return deadProviderReport{Dead: r.Node()}
}

func (m promoteMsg) AppendWire(w *runtime.WireWriter) { w.U64(uint64(m.Pos)) }

func (promoteMsg) DecodeWire(r *runtime.WireReader) any {
	return promoteMsg{Pos: ids.ID(r.U64())}
}

func (m promotedMsg) AppendWire(w *runtime.WireWriter) { m.NewDir.AppendWire(w) }

func (promotedMsg) DecodeWire(r *runtime.WireReader) any {
	return promotedMsg{NewDir: chord.DecodeEntryWire(r)}
}

func (m handoffMsg) AppendWire(w *runtime.WireWriter) {
	w.U64(uint64(m.Pos))
	keys := make([]content.Key, 0, len(m.Index))
	for k := range m.Index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Uint64() < keys[j].Uint64() })
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		k.AppendWire(w)
		w.Nodes(m.Index[k])
	}
	w.Nodes(m.Members)
}

func (handoffMsg) DecodeWire(r *runtime.WireReader) any {
	var m handoffMsg
	m.Pos = ids.ID(r.U64())
	n := r.ArrayLen(3)
	if r.Err() == nil && n > 0 {
		m.Index = make(map[content.Key][]runtime.NodeID, n)
		var prev uint64
		for i := 0; i < n; i++ {
			k := content.DecodeKeyWire(r)
			if r.Err() != nil {
				break
			}
			if u := k.Uint64(); i > 0 && u <= prev {
				r.Fail(fmt.Errorf("flower: handoff index keys out of order"))
				break
			} else {
				prev = u
			}
			m.Index[k] = r.Nodes()
		}
	}
	m.Members = r.Nodes()
	return m
}

func (m ContactMeta) AppendWire(w *runtime.WireWriter) {
	w.Any(m.Summary)
	w.U64(uint64(m.Dir.Pos))
	w.Node(m.Dir.Node)
	w.Int(m.Dir.Age)
}

func (ContactMeta) DecodeWire(r *runtime.WireReader) any {
	var m ContactMeta
	if v := r.Any(); v != nil {
		sp, ok := v.(SummaryProvider)
		if !ok {
			r.Fail(fmt.Errorf("flower: contact summary %T is not a SummaryProvider", v))
			return m
		}
		m.Summary = sp
	}
	m.Dir.Pos = ids.ID(r.U64())
	m.Dir.Node = r.Node()
	m.Dir.Age = r.Int()
	return m
}

func (s exactSummary) AppendWire(w *runtime.WireWriter) {
	keys := make([]content.Key, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Uint64() < keys[j].Uint64() })
	content.AppendKeysWire(w, keys)
}

func (exactSummary) DecodeWire(r *runtime.WireReader) any {
	n := r.ArrayLen(2)
	var s exactSummary
	if r.Err() == nil && n > 0 {
		s = make(exactSummary, n)
		var prev uint64
		for i := 0; i < n; i++ {
			k := content.DecodeKeyWire(r)
			if r.Err() != nil {
				break
			}
			if u := k.Uint64(); i > 0 && u <= prev {
				r.Fail(fmt.Errorf("flower: summary keys out of order"))
				break
			} else {
				prev = u
			}
			s[k] = struct{}{}
		}
	}
	return s
}
