package flower

import (
	"flowercdn/internal/runtime"
	"strings"
	"testing"

	"flowercdn/internal/bloom"
	"flowercdn/internal/content"
)

func TestRoleStrings(t *testing.T) {
	cases := map[Role]string{
		RoleClient:    "client",
		RoleContent:   "content",
		RoleDirectory: "directory",
		Role(42):      "role(42)",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Fatalf("Role(%d).String() = %q, want %q", int(r), r.String(), want)
		}
	}
}

func TestSelfMetaBloomVsExact(t *testing.T) {
	fb := newFixture(t, 60, nil)
	fb.seedRing()
	cb := fb.spawn(0, 0)
	cb.store.Add(content.Key{Site: 0, Object: 5})
	meta := cb.selfMeta()
	if _, ok := meta.Summary.(*bloom.Filter); !ok {
		t.Fatalf("default summary type %T, want *bloom.Filter", meta.Summary)
	}
	if !meta.Summary.Contains(content.Key{Site: 0, Object: 5}.Uint64()) {
		t.Fatal("bloom summary missing stored key")
	}

	fe := newFixture(t, 61, func(c *Config) { c.ExactSummaries = true })
	fe.seedRing()
	ce := fe.spawn(0, 0)
	ce.store.Add(content.Key{Site: 0, Object: 5})
	meta = ce.selfMeta()
	if _, ok := meta.Summary.(exactSummary); !ok {
		t.Fatalf("ablation summary type %T, want exactSummary", meta.Summary)
	}
	if !meta.Summary.Contains(content.Key{Site: 0, Object: 5}.Uint64()) {
		t.Fatal("exact summary missing stored key")
	}
	if meta.Summary.Contains(content.Key{Site: 0, Object: 6}.Uint64()) {
		t.Fatal("exact summary reported a false positive")
	}
}

func TestDeadPeerHandlersSilent(t *testing.T) {
	f := newFixture(t, 62, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(5 * runtime.Minute)
	c.kill()
	// Messages to a dead peer's handler must be inert.
	c.HandleMessage(runtime.NodeID(1), dirQueryResp{Seq: 1})
	if _, err := c.HandleRequest(runtime.NodeID(1), keepaliveReq{}); err == nil {
		t.Fatal("dead peer accepted an RPC")
	}
}

func TestStatsStringsAndSummaryBytes(t *testing.T) {
	// Wire-size hints used for byte accounting must be positive and
	// scale with payload size.
	small := pushReq{Keys: make([]content.Key, 1)}
	big := pushReq{Keys: make([]content.Key, 100)}
	if small.WireBytes() <= 0 || big.WireBytes() <= small.WireBytes() {
		t.Fatal("pushReq wire size not monotone")
	}
	r := dirQueryResp{Providers: make([]runtime.NodeID, 3)}
	if r.WireBytes() <= 0 {
		t.Fatal("dirQueryResp wire size non-positive")
	}
	h := handoffMsg{
		Index:   map[content.Key][]runtime.NodeID{{Site: 1, Object: 2}: {3, 4}},
		Members: []runtime.NodeID{3, 4},
	}
	if h.WireBytes() <= 0 {
		t.Fatal("handoff wire size non-positive")
	}
}

func TestDirInfoStringsViaSummary(t *testing.T) {
	f := newFixture(t, 63, nil)
	f.seedRing()
	dir := f.findSeed(0, 0)
	// Smoke the exported accessors.
	d := dir.Directory()
	if d.Pos() == 0 && d.Instance() != 0 {
		t.Fatal("directory accessors inconsistent")
	}
	if got := dir.Role().String(); !strings.Contains(got, "directory") {
		t.Fatalf("role string %q", got)
	}
	if d.QueriesHandled() > 1000000 {
		t.Fatal("implausible query counter")
	}
}
