package flower

import (
	"testing"

	"flowercdn/internal/bloom"
	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/gossip"
	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
	"flowercdn/internal/wiretest"
)

// TestWireRoundTrips pushes populated exemplars of every flower
// message through each registered codec — including the deep-nesting
// cases the reflect-driven equivalence test cannot reach: gossip
// entries whose Meta is a ContactMeta whose Summary is a Bloom filter
// or an exact set.
func TestWireRoundTrips(t *testing.T) {
	dir := chord.Entry{Node: 5, ID: ids.ID(0xdeadbeef)}
	k1 := content.Key{Site: 1, Object: 10}
	k2 := content.Key{Site: 1, Object: 11}
	bf := bloom.NewForCapacity(50, 0.02)
	bf.Add(k1.Uint64())
	bf.Add(k2.Uint64())
	meta := ContactMeta{
		Summary: bf,
		Dir:     DirInfo{Pos: ids.ID(3), Node: 5, Age: 2},
	}
	seed := []gossip.Entry{
		{Peer: 9, Age: 1, Meta: meta},
		{Peer: 11, Age: 0, Meta: ContactMeta{Summary: exactSummary{k1: {}, k2: {}}}},
	}
	for _, msg := range []any{
		clientQueryMsg{Seq: 4, Key: k1, Client: 8, Site: 1, Loc: 2, JoinOnly: true, Scanned: 1},
		dirQueryResp{Seq: 4, Providers: []runtime.NodeID{3, 9}, FromSummary: true, Dir: dir, Seed: seed, CollabWith: []chord.Entry{dir}},
		dirQueryResp{Seq: 5, Dir: chord.NoEntry},
		vacantResp{Seq: 4, Pos: ids.ID(99)},
		dirQueryReq{Key: k2, Client: 3, Foreign: true},
		dirQueryReply{Providers: []runtime.NodeID{1}, CollabWith: []chord.Entry{dir}},
		keepaliveReq{Site: 1, Loc: 3},
		keepaliveResp{},
		pushReq{Site: 1, Loc: 2, Keys: []content.Key{k1, k2}},
		pushResp{},
		deadProviderReport{Dead: 12},
		promoteMsg{Pos: ids.ID(7)},
		promotedMsg{NewDir: dir},
		handoffMsg{
			Pos:     ids.ID(8),
			Index:   map[content.Key][]runtime.NodeID{k1: {2, 4}, k2: {6}},
			Members: []runtime.NodeID{2, 4, 6},
		},
		handoffMsg{Pos: ids.ID(9)},
		meta,
		ContactMeta{Dir: DirInfo{Node: runtime.None}},
		exactSummary{k1: {}, k2: {}},
	} {
		wiretest.RoundTrip(t, msg)
	}
}
