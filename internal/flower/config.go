package flower

import (
	"errors"
	"flowercdn/internal/runtime"
	"fmt"

	"flowercdn/internal/chord"
	"flowercdn/internal/gossip"
)

// Config gathers every protocol parameter of Flower-CDN and PetalUp-CDN.
type Config struct {
	// Chord configures the D-ring substrate.
	Chord chord.Config
	// Gossip configures petal membership (Table 1: 1 hour period).
	Gossip gossip.Config

	// KeepaliveInterval is the period of content-peer keepalives to the
	// directory (Table 1 ties it to the gossip period: 1 hour).
	KeepaliveInterval int64
	// MemberTTLFactor: a directory expires members silent for
	// MemberTTLFactor * KeepaliveInterval.
	MemberTTLFactor float64
	// PushThreshold is the changed fraction of the local store beyond
	// which a content peer pushes its delta (Table 1: 0.5).
	PushThreshold float64

	// AuditInterval is how often a directory verifies through a
	// third-party lookup that the ring still routes its position to it,
	// demoting itself when a duplicate won the seat and re-announcing
	// itself when the ring routes around it.
	AuditInterval int64
	// QueryTimeout bounds one attempt of a client query over D-ring.
	QueryTimeout int64
	// SeedRetryDelay is how long a bootstrap seed waits before retrying
	// a transiently failed D-ring position claim. The paper-scale
	// default (30 s) is negligible against a 24 h run; compressed demo
	// timescales shrink it so multi-process bootstrap completes within
	// a seconds-scale horizon.
	SeedRetryDelay int64
	// QueryRetries is how many gateways a new client tries before
	// falling back to claiming the position itself.
	QueryRetries int
	// GossipCandidates bounds how many summary-matching petal contacts
	// a query probes before falling back to the directory.
	GossipCandidates int
	// ProviderAttempts bounds how many directory-suggested providers a
	// client probes before falling back to the origin.
	ProviderAttempts int

	// DirLoadLimit is PetalUp-CDN's per-instance load limit, measured —
	// as in Sec. 4 — in content peers per directory view. Zero disables
	// splitting, which is classic Flower-CDN.
	DirLoadLimit int

	// DirCollaboration lets a directory that cannot resolve a query ask
	// the same website's directory in another locality before declaring
	// a miss (Sec. 3.2: "directory peers of the same website may
	// collaborate to provide content of ws").
	DirCollaboration bool

	// ExactSummaries replaces Bloom content summaries with exact key
	// sets — the ablation quantifying what Bloom false positives cost
	// (wasted probes) against what they save (summary bytes).
	ExactSummaries bool
}

// DefaultConfig returns the paper's Table 1 parameters for classic
// Flower-CDN.
func DefaultConfig() Config {
	return Config{
		Chord:             chord.DefaultConfig(),
		Gossip:            gossip.DefaultConfig(),
		KeepaliveInterval: 1 * runtime.Hour,
		MemberTTLFactor:   1.6,
		PushThreshold:     0.5,
		AuditInterval:     4 * runtime.Minute,
		QueryTimeout:      10 * runtime.Second,
		SeedRetryDelay:    30 * runtime.Second,
		QueryRetries:      3,
		GossipCandidates:  3,
		ProviderAttempts:  2,
		DirLoadLimit:      0,
		DirCollaboration:  true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Chord.Validate(); err != nil {
		return fmt.Errorf("flower: %w", err)
	}
	if err := c.Gossip.Validate(); err != nil {
		return fmt.Errorf("flower: %w", err)
	}
	if c.KeepaliveInterval <= 0 {
		return errors.New("flower: keepalive interval must be positive")
	}
	if c.MemberTTLFactor <= 1 {
		return errors.New("flower: member TTL factor must exceed 1 keepalive period")
	}
	if c.PushThreshold <= 0 || c.PushThreshold > 1 {
		return errors.New("flower: push threshold must be in (0, 1]")
	}
	if c.AuditInterval <= 0 {
		return errors.New("flower: audit interval must be positive")
	}
	if c.QueryTimeout <= 0 {
		return errors.New("flower: query timeout must be positive")
	}
	if c.SeedRetryDelay <= 0 {
		return errors.New("flower: seed retry delay must be positive")
	}
	if c.QueryRetries < 1 {
		return errors.New("flower: need at least one query attempt")
	}
	if c.GossipCandidates < 0 || c.ProviderAttempts < 1 {
		return errors.New("flower: candidate limits out of range")
	}
	if c.DirLoadLimit < 0 {
		return errors.New("flower: negative directory load limit")
	}
	return nil
}
