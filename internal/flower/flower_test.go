package flower

import (
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/simrt"
	"fmt"
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/dring"
	"flowercdn/internal/metrics"
	"flowercdn/internal/topology"
	"flowercdn/internal/workload"
)

// fixture assembles a miniature Flower-CDN world: a small catalog, two
// localities, fast maintenance timers.
type fixture struct {
	t       *testing.T
	eng     *simrt.Runtime
	net     runtime.Transport
	rng     *rnd.RNG
	work    *workload.Workload
	origins *workload.Origins
	coll    *metrics.Collector
	sys     *System
	seeds   []*Peer
}

func newFixture(t *testing.T, seed uint64, mut func(*Config)) *fixture {
	t.Helper()
	rng := rnd.New(seed)
	tcfg := topology.DefaultConfig()
	tcfg.Localities = 2
	topo := topology.MustNew(tcfg, rng.Split("topo"))
	eng := simrt.New(topo)
	net := eng.Net()

	wcfg := workload.DefaultConfig()
	wcfg.Sites = 4
	wcfg.ObjectsPerSite = 50
	wcfg.ActiveSites = 3
	wcfg.QueryMeanInterval = 2 * runtime.Minute
	work, err := workload.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	origins := workload.NewOrigins(work, net, rng.Split("origins"))
	coll := metrics.NewCollector(runtime.Hour)

	cfg := DefaultConfig()
	cfg.Gossip.Period = 5 * runtime.Minute
	cfg.KeepaliveInterval = 10 * runtime.Minute
	if mut != nil {
		mut(&cfg)
	}
	sys, err := NewSystem(cfg, Deps{Net: net, RNG: rng.Split("flower"), Workload: work, Origins: origins, Metrics: coll})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, eng: eng, net: net, rng: rng, work: work, origins: origins, coll: coll, sys: sys}
}

// seedRing spawns one directory per (site, locality) and lets the ring
// stabilize.
func (f *fixture) seedRing() {
	f.t.Helper()
	k := f.net.Topology().Localities()
	for s := 0; s < f.work.Config().Sites; s++ {
		for l := 0; l < k; l++ {
			site, loc := content.SiteID(s), topology.Locality(l)
			f.eng.Schedule(int64(len(f.seeds))*200, func() {
				p, _ := f.sys.SpawnSeedDirectory(site, loc)
				f.seeds = append(f.seeds, p)
			})
		}
	}
	f.run(10 * runtime.Minute)
	for _, p := range f.seeds {
		if p.Role() != RoleDirectory {
			f.t.Fatalf("seed %d (site %d loc %d) role = %v, want directory",
				p.NodeID(), p.Site(), p.Locality(), p.Role())
		}
	}
}

func (f *fixture) run(d int64) {
	f.eng.Run(f.eng.Now() + d)
}

// spawn creates a client and runs until its arrival settles.
func (f *fixture) spawn(site content.SiteID, loc topology.Locality) *Peer {
	p, _ := f.sys.SpawnClientAt(site, loc)
	return p
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.KeepaliveInterval = 0 },
		func(c *Config) { c.MemberTTLFactor = 1 },
		func(c *Config) { c.PushThreshold = 0 },
		func(c *Config) { c.PushThreshold = 1.5 },
		func(c *Config) { c.QueryTimeout = 0 },
		func(c *Config) { c.QueryRetries = 0 },
		func(c *Config) { c.ProviderAttempts = 0 },
		func(c *Config) { c.DirLoadLimit = -1 },
		func(c *Config) { c.Chord.MaxHops = 0 },
		func(c *Config) { c.Gossip.Period = 0 },
	}
	for i, mut := range bads {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewSystemRequiresDeps(t *testing.T) {
	if _, err := NewSystem(DefaultConfig(), Deps{}); err == nil {
		t.Fatal("missing deps accepted")
	}
}

func TestDirInfoFresher(t *testing.T) {
	pos := dring.Position(1, 0, 0)
	cur := DirInfo{Pos: pos, Node: 5, Age: 3}
	if !(DirInfo{Pos: pos, Node: 9, Age: 1}).Fresher(cur) {
		t.Fatal("younger record should be fresher")
	}
	if (DirInfo{Pos: pos, Node: 9, Age: 3}).Fresher(cur) {
		t.Fatal("equal age is not fresher")
	}
	if (DirInfo{Pos: dring.Position(1, 1, 0), Node: 9, Age: 0}).Fresher(cur) {
		t.Fatal("different position must never merge")
	}
	orphan := DirInfo{Pos: pos, Node: runtime.None}
	if !(DirInfo{Pos: pos, Node: 9, Age: 7}).Fresher(orphan) {
		t.Fatal("any valid record beats an orphaned one")
	}
	if (DirInfo{Pos: pos, Node: runtime.None, Age: 0}).Fresher(cur) {
		t.Fatal("invalid record is never fresher")
	}
}

func TestSeedRingForms(t *testing.T) {
	f := newFixture(t, 1, nil)
	f.seedRing()
	want := f.work.Config().Sites * f.net.Topology().Localities()
	if got := f.sys.DirectoryCount(); got != want {
		t.Fatalf("alive directories = %d, want %d", got, want)
	}
	// Every seed holds its deterministic position.
	for _, p := range f.seeds {
		wantPos := dring.Position(p.Site(), p.Locality(), 0)
		if p.Directory().Pos() != wantPos {
			t.Fatalf("seed at wrong position: %v != %v", p.Directory().Pos(), wantPos)
		}
	}
}

func TestFirstQueryMissThenJoinPetal(t *testing.T) {
	f := newFixture(t, 2, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(5 * runtime.Minute)
	if c.Role() != RoleContent {
		t.Fatalf("client role = %v after first query, want content", c.Role())
	}
	if c.Store().Len() == 0 {
		t.Fatal("client did not store its first object")
	}
	if f.coll.Count(metrics.Miss) == 0 {
		t.Fatal("first query in an empty petal should miss to origin")
	}
	if !c.DirInfo().Valid() {
		t.Fatal("client did not adopt its directory")
	}
	wantPos := dring.Position(0, c.Locality(), 0)
	if c.DirInfo().Pos != wantPos {
		t.Fatalf("client dir position %v, want %v", c.DirInfo().Pos, wantPos)
	}
}

func TestPushPopulatesDirectoryIndex(t *testing.T) {
	f := newFixture(t, 3, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(5 * runtime.Minute)
	// Find the directory of c's petal and check the index holds c's key.
	var dir *Peer
	for _, p := range f.seeds {
		if p.Site() == 0 && p.Locality() == c.Locality() {
			dir = p
		}
	}
	if dir == nil {
		t.Fatal("no directory seed found")
	}
	if dir.Directory().IndexSize() == 0 {
		t.Fatal("directory index empty after client's first push")
	}
	if dir.Directory().MemberCount() == 0 {
		t.Fatal("client not in directory view")
	}
}

func TestSecondClientGetsDirectoryHit(t *testing.T) {
	f := newFixture(t, 4, nil)
	f.seedRing()
	// Client A populates the petal with Zipf-popular objects.
	a := f.spawn(0, 0)
	f.run(30 * runtime.Minute)
	_ = a
	hitsBefore := f.coll.Hits()
	// A wave of clients in the same petal: their queries should start
	// hitting content peers.
	for i := 0; i < 6; i++ {
		f.spawn(0, 0)
	}
	f.run(40 * runtime.Minute)
	if f.coll.Hits() == hitsBefore {
		t.Fatal("no P2P hits despite populated petal")
	}
}

func TestGossipSummaryHits(t *testing.T) {
	f := newFixture(t, 5, nil)
	f.seedRing()
	for i := 0; i < 5; i++ {
		f.spawn(1, 1)
	}
	// Long run: petal members gossip summaries and resolve locally.
	f.run(4 * runtime.Hour)
	if f.coll.Count(metrics.HitLocalGossip) == 0 {
		t.Fatal("no gossip-path hits after hours of petal life")
	}
	// Transfer distances for gossip hits should be intra-locality short;
	// check the overall transfer distribution has mass under 100ms.
	td := f.coll.TransferDistribution(metrics.Fig5Bounds)
	if td.CDFAt(100) == 0 {
		t.Fatal("no transfers within 100ms despite locality-aware petals")
	}
}

func TestNonActiveSiteJoinOnly(t *testing.T) {
	f := newFixture(t, 6, nil)
	f.seedRing()
	c := f.spawn(3, 0) // site 3 is inactive (ActiveSites=3 → 0,1,2)
	f.run(5 * runtime.Minute)
	if c.Role() != RoleContent {
		t.Fatalf("non-active peer role = %v, want content (joined petal)", c.Role())
	}
	// A join-only arrival fetches nothing and issues no content queries
	// (active-site seed directories do query, so global metrics cannot
	// be compared; the peer's own state is the observable).
	if c.Store().Len() != 0 {
		t.Fatal("join-only peer should not have fetched content")
	}
	if c.queryTimer != nil {
		t.Fatal("join-only peer must not run a query loop")
	}
}

func TestDirectoryFailureReplacedByContentPeer(t *testing.T) {
	f := newFixture(t, 7, nil)
	f.seedRing()
	// Build a petal with members.
	var members []*Peer
	for i := 0; i < 4; i++ {
		members = append(members, f.spawn(0, 0))
	}
	f.run(30 * runtime.Minute)
	loc := members[0].Locality()
	var dir *Peer
	for _, p := range f.seeds {
		if p.Site() == 0 && p.Locality() == loc {
			dir = p
		}
	}
	// Kill the directory; keepalives/pushes detect and a member claims.
	dir.kill()
	f.run(3 * f.sys.cfg.KeepaliveInterval)
	var newDir *Peer
	for _, m := range members {
		if m.Alive() && m.Role() == RoleDirectory {
			newDir = m
		}
	}
	if newDir == nil {
		t.Fatal("no content peer took over the directory position")
	}
	if newDir.Directory().Pos() != dring.Position(0, loc, 0) {
		t.Fatal("replacement took the wrong position")
	}
	if f.sys.Stats().DirReplacements == 0 {
		t.Fatal("replacement counter not bumped")
	}
	// Survivors converge on the new directory via gossip/keepalive.
	f.run(3 * f.sys.cfg.KeepaliveInterval)
	for _, m := range members {
		if !m.Alive() || m == newDir {
			continue
		}
		if m.DirInfo().Node != newDir.NodeID() {
			t.Fatalf("member %d still points at %d, want new directory %d",
				m.NodeID(), m.DirInfo().Node, newDir.NodeID())
		}
	}
}

func TestVacantPositionClaimedByNewClient(t *testing.T) {
	f := newFixture(t, 8, nil)
	f.seedRing()
	// Kill the site-2/loc-1 directory; its petal is empty so nobody
	// replaces it until a client arrives.
	var dir *Peer
	for _, p := range f.seeds {
		if p.Site() == 2 && p.Locality() == 1 {
			dir = p
		}
	}
	dir.kill()
	f.run(2 * runtime.Minute)
	c := f.spawn(2, 1)
	f.run(10 * runtime.Minute)
	if c.Role() != RoleDirectory {
		t.Fatalf("client role = %v, want directory (vacancy claim)", c.Role())
	}
	if f.sys.Stats().VacancyClaims == 0 {
		t.Fatal("vacancy claim counter not bumped")
	}
	// Its first query was still resolved (via origin).
	if f.coll.Count(metrics.Miss) == 0 {
		t.Fatal("claiming client's query was not resolved")
	}
}

func TestPetalUpPromotesUnderLoad(t *testing.T) {
	f := newFixture(t, 9, func(c *Config) {
		c.DirLoadLimit = 3
	})
	f.seedRing()
	for i := 0; i < 12; i++ {
		f.spawn(0, 0)
		f.run(2 * runtime.Minute)
	}
	f.run(30 * runtime.Minute)
	st := f.sys.Stats()
	if st.DirPromotions == 0 {
		t.Fatal("no PetalUp promotions despite load limit 3 and 12 arrivals")
	}
	// No instance should be wildly above the limit (new members keep
	// arriving between promotion trigger and integration, so allow
	// slack).
	var dirs []*Peer
	for _, p := range f.seeds {
		if p.Alive() && p.Site() == 0 && p.Role() == RoleDirectory {
			dirs = append(dirs, p)
		}
	}
	_ = dirs
}

func TestPetalUpScanReachesSecondInstance(t *testing.T) {
	f := newFixture(t, 10, func(c *Config) {
		c.DirLoadLimit = 2
	})
	f.seedRing()
	loc := topology.Locality(0)
	for i := 0; i < 10; i++ {
		f.spawn(0, loc)
		f.run(3 * runtime.Minute)
	}
	f.run(20 * runtime.Minute)
	// Some directory instance beyond 0 must exist for petal (0, loc).
	found := false
	f.net.ForEachAlive(func(id runtime.NodeID) {})
	// Inspect via stats: promotions imply instance >= 1 joined.
	if f.sys.Stats().DirPromotions == 0 {
		t.Fatal("expected at least one promotion")
	}
	_ = found
}

func TestGracefulLeaveHandsOffDirectory(t *testing.T) {
	f := newFixture(t, 11, nil)
	f.seedRing()
	var members []*Peer
	for i := 0; i < 3; i++ {
		members = append(members, f.spawn(0, 0))
	}
	f.run(30 * runtime.Minute)
	loc := members[0].Locality()
	var dir *Peer
	for _, p := range f.seeds {
		if p.Site() == 0 && p.Locality() == loc {
			dir = p
		}
	}
	indexBefore := dir.Directory().IndexSize()
	if indexBefore == 0 {
		t.Fatal("setup: directory index empty")
	}
	dir.Leave()
	f.run(5 * runtime.Minute)
	var newDir *Peer
	for _, m := range members {
		if m.Alive() && m.Role() == RoleDirectory {
			newDir = m
		}
	}
	if newDir == nil {
		t.Fatal("handoff recipient did not take the position")
	}
	if newDir.Directory().IndexSize() == 0 {
		t.Fatal("handoff lost the directory index")
	}
}

func TestKilledPeerIsSilent(t *testing.T) {
	f := newFixture(t, 12, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(5 * runtime.Minute)
	c.kill()
	c.kill() // idempotent
	if c.Alive() {
		t.Fatal("killed peer reports alive")
	}
	msgs := f.net.Stats().MessagesSent
	f.run(2 * runtime.Hour)
	_ = msgs // other peers keep talking; just ensure no panic occurred
}

func TestQueryLoopSkipsWhenQueryOutstanding(t *testing.T) {
	f := newFixture(t, 13, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(5 * runtime.Minute)
	// Inject a stuck query; the loop must not replace it.
	stuck := &activeQuery{seq: 999999, key: content.Key{Site: 0, Object: 49}, start: f.eng.Now()}
	c.query = stuck
	c.issueQuery()
	if c.query != stuck {
		t.Fatal("issueQuery replaced an outstanding query")
	}
	c.query = nil
}

func TestStatsSnapshot(t *testing.T) {
	f := newFixture(t, 14, nil)
	f.seedRing()
	st := f.sys.Stats()
	if st.PeersSpawned == 0 {
		t.Fatal("spawn counter not tracking")
	}
	if fmt.Sprint(RoleClient, RoleContent, RoleDirectory) == "" {
		t.Fatal("role strings empty")
	}
}
