package flower

import (
	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/runtime"
)

// startKeepalive arms the content-peer maintenance loop (Sec. 5.1):
// each period the peer ages its dir-info, pings its directory, and —
// through the ping's failure — detects directory departures.
func (p *Peer) startKeepalive() {
	if p.keepaliveTimer != nil {
		return
	}
	period := p.sys.cfg.KeepaliveInterval
	p.keepaliveTimer = p.eng().Every(p.rng.UniformDuration(period/4, period), period, p.keepaliveTick)
}

func (p *Peer) keepaliveTick() {
	if p.dead || p.role != RoleContent {
		return
	}
	if !p.dirInfo.Valid() {
		// Orphaned: rediscover the petal's directory over D-ring.
		p.rejoinPetal()
		return
	}
	p.dirInfo.Age++
	if p.needsFullPush() {
		// A push both registers us and rebuilds the new directory's
		// index; it doubles as this period's keepalive.
		p.maybePush()
		return
	}
	dirNode := p.dirInfo.Node
	p.net().Request(p.nid, dirNode, keepaliveReq{Site: p.site, Loc: p.loc},
		p.sys.cfg.Chord.RPCTimeout, func(_ any, err error) {
			if p.dead {
				return
			}
			if err != nil {
				p.dirContactFailed(dirNode)
				return
			}
			if p.dirInfo.Node == dirNode {
				p.dirMisses = 0
				p.dirInfo.Age = 0
			}
		})
}

// needsFullPush reports whether the current directory has never
// received our full store.
func (p *Peer) needsFullPush() bool {
	return p.dirInfo.Valid() && p.dirInfo.Node != p.syncedDir && p.store.Len() > 0
}

// maybePush sends stored-content updates to the directory: the full
// store when the directory node changed since our last sync
// (replacement/promotion recovery, Sec. 5.2.2), otherwise the delta
// once the changed fraction reaches the threshold (Sec. 5.1). A push
// doubles as a keepalive: the directory refreshes the member's
// freshness on receipt.
func (p *Peer) maybePush() {
	if p.dead || p.role != RoleContent || !p.dirInfo.Valid() {
		return
	}
	full := p.needsFullPush()
	if !full && p.store.ChangedFraction() < p.sys.cfg.PushThreshold {
		return
	}
	var keys []content.Key
	if full {
		keys = p.store.Keys()
		p.store.TakeDelta() // the full set subsumes any pending delta
	} else {
		keys = p.store.TakeDelta()
	}
	if len(keys) == 0 {
		return
	}
	dirNode := p.dirInfo.Node
	p.net().Request(p.nid, dirNode, pushReq{Site: p.site, Loc: p.loc, Keys: keys},
		p.sys.cfg.Chord.RPCTimeout, func(_ any, err error) {
			if p.dead {
				return
			}
			if err != nil {
				p.dirContactFailed(dirNode)
				return
			}
			if p.dirInfo.Node == dirNode {
				p.dirMisses = 0
				p.dirInfo.Age = 0
			}
			p.syncedDir = dirNode
		})
}

// dirContactFailed handles one failed exchange with the directory. A
// single lost message is not death: the peer probes once more before
// starting the replacement protocol, which keeps lossy links (the
// failure-injection configurations) from churning directories that are
// alive and well.
func (p *Peer) dirContactFailed(dirNode runtime.NodeID) {
	if p.dead || p.dirInfo.Node != dirNode {
		return
	}
	p.dirMisses++
	if p.dirMisses < 2 {
		p.eng().Schedule(2*runtime.Second, func() {
			if p.dead || p.dirInfo.Node != dirNode {
				return
			}
			p.net().Request(p.nid, dirNode, keepaliveReq{Site: p.site, Loc: p.loc},
				p.sys.cfg.Chord.RPCTimeout, func(_ any, err error) {
					if p.dead {
						return
					}
					if err != nil {
						p.dirContactFailed(dirNode)
						return
					}
					if p.dirInfo.Node == dirNode {
						p.dirMisses = 0
						p.dirInfo.Age = 0
					}
				})
		})
		return
	}
	p.dirMisses = 0
	p.onDirectoryDead(dirNode)
}

// onDirectoryDead reacts to a confirmed-dead directory
// (Sec. 5.2.1): "the replacement is performed by the first peer related
// to ws and loc that detects the failure". Every detector races through
// the claim protocol; losers adopt the winner.
func (p *Peer) onDirectoryDead(deadNode runtime.NodeID) {
	if p.dead || p.replacing {
		return
	}
	if p.dirInfo.Node != deadNode {
		return // stale detection: we already moved on
	}
	if p.role != RoleContent {
		// Clients just forget the pointer; their next query re-routes
		// over D-ring.
		p.dirInfo = DirInfo{Node: runtime.None}
		return
	}
	pos := p.dirInfo.Pos
	p.dirInfo = DirInfo{Pos: pos, Node: runtime.None, Age: 0}
	p.lastDeadDir = deadNode
	p.replacing = true
	p.claimDirectoryPosition(pos, deadNode, func(current chord.Entry, err error) {
		p.replacing = false
		if p.dead {
			return
		}
		if err == nil {
			p.sys.dirReplacement++
			return
		}
		if current.Valid() && current.Node != deadNode {
			// Somebody else won (or already held) the position: adopt
			// them and sync our store into their rebuilding index; the
			// push also registers us in their view, and gossip spreads
			// the fresh dir-info (age 0) through the petal.
			p.dirInfo = DirInfo{Pos: pos, Node: current.Node, Age: 0}
			if p.needsFullPush() {
				p.maybePush()
				return
			}
			p.net().Request(p.nid, current.Node, keepaliveReq{Site: p.site, Loc: p.loc},
				p.sys.cfg.Chord.RPCTimeout, func(_ any, kerr error) {
					if p.dead {
						return
					}
					if kerr != nil && p.dirInfo.Node == current.Node {
						p.dirInfo = DirInfo{Pos: pos, Node: runtime.None}
					}
				})
			return
		}
		// Claim failed without a visible incumbent (ring trouble).
		// Rediscover through the normal D-ring path shortly — waiting a
		// whole keepalive period would leave the petal orphaned.
		p.eng().Schedule(45*runtime.Second, func() {
			if !p.dead && p.role == RoleContent && !p.dirInfo.Valid() {
				p.rejoinPetal()
			}
		})
	})
}

// rejoinPetal routes a membership-only query over D-ring to rediscover
// (or trigger recreation of) the petal's directory.
func (p *Peer) rejoinPetal() {
	if p.query != nil {
		return // an active query will re-establish contact by itself
	}
	p.startClientQuery(content.Key{}, true)
}
