package flower

import (
	"flowercdn/internal/rnd"
	"fmt"

	"flowercdn/internal/bloom"
	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/proto"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
	"flowercdn/internal/workload"
)

// This file adapts the Flower-CDN System to the pluggable protocol
// runtime (internal/proto): the package registers itself under
// "flower", and internal/petalup registers the splitting variant via
// NewPetalUpDriver. The harness only ever sees the proto.System face.

func init() {
	proto.Register(proto.Info{
		Name:         "flower",
		Summary:      "Flower-CDN: locality-aware petals behind a D-ring directory overlay (Sec. 3)",
		Compare:      true,
		Order:        0,
		CheckOptions: CheckDriverOptions,
	}, NewDriver)
	// Every concrete type a flower deployment ships inside an
	// interface-typed field (Send/Request payloads, gossip metadata,
	// bus announcements) — the socket backend's gob codec needs them
	// registered before any frame crosses a process boundary.
	runtime.RegisterWireType(
		clientQueryMsg{}, dirQueryResp{}, vacantResp{},
		dirQueryReq{}, dirQueryReply{},
		keepaliveReq{}, keepaliveResp{},
		pushReq{}, pushResp{}, deadProviderReport{},
		promoteMsg{}, promotedMsg{}, handoffMsg{},
		ContactMeta{}, exactSummary{}, &bloom.Filter{},
	)
}

// Option keys the flower-family drivers read (all optional; defaults
// are the paper's Table 1 values):
//
//	gossip-period       int64 ms   petal gossip period
//	keepalive-interval  int64 ms   content-peer keepalive (default: gossip-period)
//	query-timeout       int64 ms   one D-ring routed query attempt (Table 1: 10 s)
//	seed-retry-delay    int64 ms   bootstrap-claim retry pacing (default 30 s)
//	chord-demo          bool       compressed overlay maintenance timescales
//	                               (chord.DemoConfig) for seconds-scale demos
//	push-threshold      float64    changed-store fraction triggering a push
//	dir-collaboration   bool       same-website cross-locality collaboration
//	exact-summaries     bool       exact key sets instead of Bloom summaries
//	load-limit          int        PetalUp per-directory member limit
//	cache-policy        string     per-peer store eviction policy (internal/cache)
//	cache-capacity      int        per-peer store capacity, objects
//
// Unknown keys are ignored (they may target another protocol in the
// same sweep).

// NewDriver builds the classic Flower-CDN deployment driver.
func NewDriver(env proto.Env, opts proto.Options) (proto.System, error) {
	return newDriver(env, opts, false)
}

// NewPetalUpDriver builds the PetalUp-CDN variant: identical protocol
// code with the per-directory load limit enabled (Sec. 4).
func NewPetalUpDriver(env proto.Env, opts proto.Options) (proto.System, error) {
	return newDriver(env, opts, true)
}

// DefaultPetalUpLoadLimit is the per-directory member limit PetalUp
// runs use when the "load-limit" option is absent.
const DefaultPetalUpLoadLimit = 30

// lowerOptions resolves the option map into a full protocol Config and
// validates it — shared by the factories and the registry's static
// CheckOptions hook, so a bad knob fails a sweep before any
// simulation runs.
func lowerOptions(opts proto.Options, petalUp bool) (Config, proto.CacheConfig, error) {
	cfg := DefaultConfig()
	if opts.Bool("chord-demo", false) {
		cfg.Chord = chord.DemoConfig()
	}
	cfg.Gossip.Period = opts.Duration("gossip-period", cfg.Gossip.Period)
	cfg.KeepaliveInterval = opts.Duration("keepalive-interval", cfg.Gossip.Period)
	cfg.QueryTimeout = opts.Duration("query-timeout", cfg.QueryTimeout)
	cfg.SeedRetryDelay = opts.Duration("seed-retry-delay", cfg.SeedRetryDelay)
	cfg.PushThreshold = opts.Float("push-threshold", cfg.PushThreshold)
	cfg.DirCollaboration = opts.Bool("dir-collaboration", cfg.DirCollaboration)
	cfg.ExactSummaries = opts.Bool("exact-summaries", cfg.ExactSummaries)
	if petalUp {
		cfg.DirLoadLimit = opts.Int("load-limit", DefaultPetalUpLoadLimit)
		if cfg.DirLoadLimit <= 0 {
			return cfg, proto.CacheConfig{}, fmt.Errorf("flower: petalup load-limit must be positive, got %d", cfg.DirLoadLimit)
		}
	}
	cacheCfg, err := proto.CacheConfigFromOptions(opts)
	if err != nil {
		return cfg, cacheCfg, fmt.Errorf("flower: %w", err)
	}
	return cfg, cacheCfg, cfg.Validate()
}

// CheckDriverOptions statically validates classic-flower options.
func CheckDriverOptions(opts proto.Options) error {
	_, _, err := lowerOptions(opts, false)
	return err
}

// CheckPetalUpDriverOptions statically validates PetalUp options.
func CheckPetalUpDriverOptions(opts proto.Options) error {
	_, _, err := lowerOptions(opts, true)
	return err
}

func newDriver(env proto.Env, opts proto.Options, petalUp bool) (proto.System, error) {
	cfg, cacheCfg, err := lowerOptions(opts, petalUp)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg, Deps{
		Net:      env.Net,
		RNG:      env.RNG,
		Workload: env.Workload,
		Origins:  env.Origins,
		Metrics:  env.Metrics,
		NewStore: cacheCfg.StoreFactory(env),
		Follower: env.Follower,
		Trace:    env.Trace,
	})
	if err != nil {
		return nil, err
	}
	d := &runtimeDriver{sys: sys, env: env, idRNG: env.RNG.Split("identities")}
	// Locality assignment for arriving clients: uniform over the k
	// localities by default, Zipf-concentrated when the harness asks
	// for a geographically skewed audience. Seed directories still
	// cover every locality, so the D-ring stays complete either way.
	d.pickLocality = func() topology.Locality {
		return topology.Locality(d.idRNG.Intn(env.Topo.Localities()))
	}
	if env.LocalitySkew > 0 {
		locZipf, err := workload.NewZipf(env.Topo.Localities(), env.LocalitySkew)
		if err != nil {
			return nil, err
		}
		d.pickLocality = func() topology.Locality {
			return topology.Locality(locZipf.Rank(d.idRNG))
		}
	}
	return d, nil
}

// runtimeDriver is the proto.System adapter over a *System.
type runtimeDriver struct {
	sys          *System
	env          proto.Env
	idRNG        *rnd.RNG
	pickLocality func() topology.Locality
}

func (d *runtimeDriver) Start() {}
func (d *runtimeDriver) Stop()  {}

// SeedCount is one directory peer per (website, locality) — the
// paper's initial D-ring.
func (d *runtimeDriver) SeedCount() int { return proto.DefaultSeedCount(d.env) }

// SpawnSeed brings up the initial directory peer for the i-th
// (website, locality) pair; like every participant it is a persistent
// individual with a limited uptime.
func (d *runtimeDriver) SpawnSeed(i int) (proto.Individual, func()) {
	k := d.env.Topo.Localities()
	site, loc := content.SiteID(i/k), topology.Locality(i%k)
	id := d.sys.NewIdentity(site, loc)
	_, kill := d.sys.SpawnSeedDirectoryIdentity(id)
	return id, kill
}

func (d *runtimeDriver) NewIndividual() proto.Individual {
	site := d.env.Workload.AssignInterest(d.idRNG)
	return d.sys.NewIdentity(site, d.pickLocality())
}

func (d *runtimeDriver) Spawn(ind proto.Individual) func() {
	_, kill := d.sys.SpawnIdentity(ind.(Identity))
	return kill
}

// RingMembers implements proto.RingInspector: one snapshot record per
// alive, integrated D-ring directory peer, in creation order. Clients
// and not-yet-integrated claimants are not ring members.
func (d *runtimeDriver) RingMembers() []proto.RingMember {
	var out []proto.RingMember
	for _, p := range d.sys.peers {
		if p.dead || p.chordNode == nil || p.dir == nil {
			continue
		}
		self := p.chordNode.Self()
		m := proto.RingMember{Node: self.Node, ID: self.ID, Pred: ringNodeOf(p.chordNode.Predecessor())}
		for _, s := range p.chordNode.SuccessorList() {
			m.Succs = append(m.Succs, ringNodeOf(s))
		}
		out = append(out, m)
	}
	return out
}

func ringNodeOf(e chord.Entry) proto.RingNode {
	if !e.Valid() {
		return proto.RingNode{Node: runtime.None}
	}
	return proto.RingNodeOf(e.Node, e.ID)
}

func (d *runtimeDriver) Stats() proto.Stats {
	st := d.sys.Stats()
	return proto.Stats{
		proto.StatPeersSpawned: float64(st.PeersSpawned),
		proto.StatAlivePeers:   float64(d.sys.AlivePeerCount()),
		"alive_directories":    float64(d.sys.DirectoryCount()),
		"duplicate_positions":  float64(d.sys.DuplicatePositions()),
		"dir_promotions":       float64(st.DirPromotions),
		"dir_replacements":     float64(st.DirReplacements),
		"vacancy_claims":       float64(st.VacancyClaims),
		"demotions":            float64(st.Demotions),
	}
}
