package flower

import (
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"

	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/dring"
	"flowercdn/internal/gossip"
	"flowercdn/internal/ids"
	"flowercdn/internal/topology"
	"flowercdn/internal/workload"
)

// dringPosition is a thin alias so protocol code reads like the paper.
func dringPosition(site content.SiteID, loc topology.Locality, instance int) ids.ID {
	return dring.Position(site, loc, instance)
}

// Role describes what a peer currently is.
type Role int

const (
	// RoleClient: arrived, not yet admitted to a petal.
	RoleClient Role = iota
	// RoleContent: member of a petal, serving and querying content.
	RoleContent
	// RoleDirectory: content peer additionally holding a D-ring
	// directory position.
	RoleDirectory
)

func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleContent:
		return "content"
	case RoleDirectory:
		return "directory"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Peer is one Flower-CDN participant. It implements runtime.Handler and
// dispatches to its Chord, gossip and protocol components.
type Peer struct {
	sys  *System
	nid  runtime.NodeID
	rng  *rnd.RNG
	site content.SiteID
	loc  topology.Locality

	role  Role
	store *content.Store

	gsp     *gossip.Protocol
	dirInfo DirInfo

	// Directory role state (nil unless RoleDirectory).
	dir       *directoryState
	chordNode *chord.Node

	// Client-mode D-ring access.
	chordClient *chord.Client

	// Active query state machine (a peer has at most one outstanding
	// query: the mean think time of 6 minutes dwarfs resolution time).
	query *activeQuery
	// qspare recycles the previous activeQuery; candScratch is the
	// reusable candidate-selection buffer of contentQuery. Both exist
	// because a query fires every few simulated minutes on every active
	// peer, so per-query allocations add up across a whole run.
	qspare      *activeQuery
	candScratch []provCand

	keepaliveTimer runtime.Ticker
	queryTimer     runtime.Timer
	dead           bool
	replacing      bool // a directory-replacement attempt is in flight
	// lastDeadDir remembers the most recently detected dead directory so
	// stale gossip cannot re-install a pointer to it.
	lastDeadDir runtime.NodeID
	// dirMisses counts consecutive failed directory exchanges; the
	// replacement protocol starts only after a confirming probe also
	// fails (one lost message is not death).
	dirMisses int
	// syncedDir is the directory node that holds our full store in its
	// index. When dir-info moves to a different node (replacement,
	// promotion, adoption), the next push ships the whole store — the
	// Sec. 5.2.2 reconstruction: a new directory "gradually constructs
	// its view and directory-index as its content peers discover its
	// join and send it push messages".
	syncedDir runtime.NodeID
}

// NodeID returns the peer's network address.
func (p *Peer) NodeID() runtime.NodeID { return p.nid }

// Role returns the peer's current role.
func (p *Peer) Role() Role { return p.role }

// Site returns the website the peer is interested in.
func (p *Peer) Site() content.SiteID { return p.site }

// Locality returns the peer's physical locality.
func (p *Peer) Locality() topology.Locality { return p.loc }

// Store exposes the local content cache (read-mostly; tests use it).
func (p *Peer) Store() *content.Store { return p.store }

// DirInfo returns the peer's current record of its directory.
func (p *Peer) DirInfo() DirInfo { return p.dirInfo }

// ViewSize returns the gossip view size (tests and load metrics).
func (p *Peer) ViewSize() int { return p.gsp.Size() }

// Directory exposes directory-role state, nil for non-directories.
func (p *Peer) Directory() *directoryState { return p.dir }

// Alive reports whether the peer is still running.
func (p *Peer) Alive() bool { return !p.dead }

func (p *Peer) initGossip() {
	g, err := gossip.New(p.sys.cfg.Gossip, p.sys.net, p.rng.Split("gossip"), p.nid, (*gossipApp)(p))
	if err != nil {
		panic(fmt.Sprintf("flower: gossip init: %v", err)) // config was validated
	}
	p.gsp = g
	p.dirInfo = DirInfo{Node: runtime.None}
	p.lastDeadDir = runtime.None
	p.syncedDir = runtime.None
}

// startLife begins the arrival behaviour: active-site peers start the
// query loop; others request petal membership immediately.
func (p *Peer) startLife() {
	if p.sys.work.Active(p.site) {
		p.scheduleNextQuery(p.sys.work.FirstQueryDelay(p.rng))
	} else {
		p.eng().Schedule(p.sys.work.FirstQueryDelay(p.rng), func() {
			if !p.dead && p.role == RoleClient {
				p.startClientQuery(content.Key{}, true)
			}
		})
	}
}

// scheduleNextQuery arms the query loop: a peer submits queries "on a
// regular basis, as soon as it arrives until it fails" (Sec. 6.1).
func (p *Peer) scheduleNextQuery(delay int64) {
	p.queryTimer = p.eng().Schedule(delay, func() {
		if p.dead {
			return
		}
		p.issueQuery()
		p.scheduleNextQuery(p.sys.work.NextQueryDelay(p.rng))
	})
}

// kill fails the peer: all components stop and the network drops it.
func (p *Peer) kill() {
	if p.dead {
		return
	}
	p.dead = true
	p.gsp.Stop()
	if p.chordNode != nil {
		p.chordNode.Stop()
	}
	if p.keepaliveTimer != nil {
		p.keepaliveTimer.Cancel()
	}
	if p.queryTimer != nil {
		p.queryTimer.Cancel()
	}
	p.query = nil
	p.sys.net.Fail(p.nid)
}

func (p *Peer) eng() runtime.Clock     { return p.sys.eng }
func (p *Peer) net() runtime.Transport { return p.sys.net }

// selfEntry returns the peer's ring identity (only meaningful for
// directories).
func (p *Peer) selfEntry() chord.Entry {
	if p.chordNode != nil {
		return p.chordNode.Self()
	}
	return chord.NoEntry
}

// selfMeta builds the descriptor gossip ships about this peer: a fresh
// content summary (Bloom by default, exact sets under the ablation)
// plus the current dir-info.
func (p *Peer) selfMeta() ContactMeta {
	var sum SummaryProvider
	if p.sys.cfg.ExactSummaries {
		set := make(exactSummary, p.store.Len())
		for _, k := range p.store.Keys() {
			set[k] = struct{}{}
		}
		sum = set
	} else {
		sum = p.store.Summary()
	}
	return ContactMeta{Summary: sum, Dir: p.dirInfo}
}

// ---- runtime.Handler ----

// HandleMessage dispatches one-way messages to components and protocol
// handlers.
func (p *Peer) HandleMessage(from runtime.NodeID, msg any) {
	if p.dead {
		return
	}
	if p.chordNode != nil && p.chordNode.HandleMessage(from, msg) {
		return
	}
	if p.chordClient != nil && p.chordClient.HandleMessage(from, msg) {
		return
	}
	switch m := msg.(type) {
	case clientQueryMsg:
		// Reaches us outside D-ring routing: either a PetalUp scan
		// forward from the previous instance (Sec. 4) or a direct query
		// from a client that learned our address through a denied claim.
		p.onDirectClientQuery(m)
	case dirQueryResp:
		p.onDirQueryResp(m)
	case vacantResp:
		p.onVacantResp(m)
	case promoteMsg:
		p.onPromote(m)
	case promotedMsg:
		p.onPromoted(from, m)
	case handoffMsg:
		p.onHandoff(m)
	case deadProviderReport:
		// Trust the reporter: a timeout is the only way anyone learns of
		// a death, and the member re-registers on its next keepalive if
		// the report was spurious.
		if p.dir != nil {
			p.removeMember(m.Dead)
		}
	}
}

// HandleRequest dispatches RPCs.
func (p *Peer) HandleRequest(from runtime.NodeID, req any) (any, error) {
	if p.dead {
		return nil, fmt.Errorf("flower: dead peer")
	}
	if p.chordNode != nil {
		if resp, err, ok := p.chordNode.HandleRequest(from, req); ok {
			return resp, err
		}
	}
	if resp, err, ok := p.gsp.HandleRequest(from, req); ok {
		return resp, err
	}
	switch r := req.(type) {
	case workload.FetchReq:
		return workload.FetchResp{Key: r.Key, Served: p.store.Has(r.Key)}, nil
	case keepaliveReq:
		return p.onKeepalive(from, r)
	case pushReq:
		return p.onPush(from, r)
	case dirQueryReq:
		return p.onMemberQuery(from, r)
	default:
		return nil, fmt.Errorf("flower: unhandled request %T", req)
	}
}

// ---- gossip hooks ----

// gossipApp adapts Peer to the gossip.App interface without polluting
// Peer's method set.
type gossipApp Peer

func (g *gossipApp) SelfDescriptor() any { return (*Peer)(g).selfMeta() }

func (g *gossipApp) OnExchange(peer runtime.NodeID, received []gossip.Entry) {
	p := (*Peer)(g)
	if p.dead {
		return
	}
	// Reconcile dir-info (Sec. 5.1): same position, keep smaller age.
	// Directories are their own authority and never adopt.
	if p.role == RoleDirectory {
		return
	}
	adopted := false
	for _, e := range received {
		meta, ok := e.Meta.(ContactMeta)
		if !ok {
			continue
		}
		if meta.Dir.Node != p.lastDeadDir && meta.Dir.Fresher(p.dirInfo) {
			p.dirInfo = meta.Dir
			adopted = true
		}
	}
	if adopted && p.needsFullPush() {
		// Learned of a replacement directory through gossip: rebuild its
		// index with our store without waiting for the next keepalive.
		p.maybePush()
	}
}

func (g *gossipApp) OnContactDead(peer runtime.NodeID) {
	// Nothing beyond the view eviction gossip already did; the
	// directory finds out through missing keepalives.
}
