package flower

import (
	"flowercdn/internal/runtime"
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/gossip"
	"flowercdn/internal/metrics"
)

func TestFullPushOnDirectoryChange(t *testing.T) {
	f := newFixture(t, 50, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(30 * runtime.Minute)
	if c.Role() != RoleContent || c.Store().Len() == 0 {
		t.Fatal("setup: client did not join and fetch")
	}
	objects := c.Store().Len()

	// The directory dies and c is the only member: it replaces it...
	oldDir := f.findSeed(0, c.Locality())
	oldDir.kill()
	f.run(3 * f.sys.cfg.KeepaliveInterval)
	// ... or a new client claimed it first. Either way, SOME directory
	// for the petal must have c's full store indexed again.
	dirs := f.sys.PetalDirectories(0, c.Locality())
	if len(dirs) == 0 {
		t.Fatal("petal has no directory after replacement window")
	}
	total := 0
	for _, d := range dirs {
		total += d.Directory().IndexSize()
	}
	if c.Alive() && c.Role() == RoleContent && total < objects {
		t.Fatalf("index holds %d objects, want >= %d (full push on re-sync)", total, objects)
	}
}

func TestNeedsFullPushSemantics(t *testing.T) {
	f := newFixture(t, 51, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(10 * runtime.Minute)
	if c.Role() != RoleContent {
		t.Fatal("setup: not a content peer")
	}
	// After a successful push cycle the peer is synced.
	f.run(f.sys.cfg.KeepaliveInterval)
	if c.Store().Len() > 0 && c.needsFullPush() {
		t.Fatal("peer with synced store still wants a full push")
	}
	// Pointing dir-info at a different node re-arms the full push.
	c.dirInfo.Node = runtime.NodeID(123456)
	if c.Store().Len() > 0 && !c.needsFullPush() {
		t.Fatal("directory change did not arm a full push")
	}
}

func TestGossipAdoptionOfFresherDirInfo(t *testing.T) {
	f := newFixture(t, 52, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(10 * runtime.Minute)
	pos := c.DirInfo().Pos
	app := (*gossipApp)(c)
	// Adoption triggers a full-push RPC, so the fabricated directories
	// must be real network nodes.
	rival := newProbePeer(f)
	deadDir := newProbePeer(f)

	// A fresher record (younger age, same position) is adopted.
	c.dirInfo.Age = 4
	fresher := DirInfo{Pos: pos, Node: rival.nid, Age: 1}
	app.OnExchange(runtime.NodeID(5), []gossip.Entry{{Peer: 5, Meta: ContactMeta{Dir: fresher}}})
	if c.DirInfo().Node != rival.nid {
		t.Fatal("fresher dir-info not adopted")
	}
	// A record pointing at the last known-dead directory is refused.
	c.lastDeadDir = deadDir.nid
	stale := DirInfo{Pos: pos, Node: deadDir.nid, Age: 0}
	app.OnExchange(runtime.NodeID(6), []gossip.Entry{{Peer: 6, Meta: ContactMeta{Dir: stale}}})
	if c.DirInfo().Node == deadDir.nid {
		t.Fatal("known-dead directory re-adopted via gossip")
	}
	// Directories never adopt.
	dir := f.findSeed(0, 0)
	(*gossipApp)(dir).OnExchange(runtime.NodeID(7), []gossip.Entry{{
		Peer: 7, Meta: ContactMeta{Dir: DirInfo{Pos: dir.Directory().Pos(), Node: 111, Age: 0}},
	}})
	if dir.DirInfo().Node != dir.NodeID() {
		t.Fatal("directory adopted foreign dir-info about its own position")
	}
}

func TestKeepaliveAgesAndResets(t *testing.T) {
	f := newFixture(t, 53, nil)
	f.seedRing()
	c := f.spawn(1, 0)
	f.run(10 * runtime.Minute)
	if c.Role() != RoleContent {
		t.Fatal("setup: not content")
	}
	// Run several keepalive periods: age must keep returning to 0 while
	// the directory lives.
	f.run(3 * f.sys.cfg.KeepaliveInterval)
	if c.DirInfo().Age > 1 {
		t.Fatalf("dir-info age %d with a live directory", c.DirInfo().Age)
	}
}

func TestOrphanRejoinsViaDring(t *testing.T) {
	f := newFixture(t, 54, nil)
	f.seedRing()
	c := f.spawn(2, 0)
	f.run(10 * runtime.Minute)
	if c.Role() != RoleContent {
		t.Fatal("setup: not content")
	}
	// Orphan the peer: no directory known at all.
	c.dirInfo = DirInfo{Node: runtime.None}
	f.run(2 * f.sys.cfg.KeepaliveInterval)
	if !c.DirInfo().Valid() {
		t.Fatal("orphaned content peer did not rediscover its directory")
	}
}

func TestReplacementRace(t *testing.T) {
	// Several members detect the directory's death nearly at once; the
	// claim protocol must leave exactly one directory per position.
	f := newFixture(t, 55, nil)
	f.seedRing()
	var members []*Peer
	for i := 0; i < 5; i++ {
		members = append(members, f.spawn(0, 0))
	}
	f.run(30 * runtime.Minute)
	loc := members[0].Locality()
	f.findSeed(0, loc).kill()
	// Force prompt detection in every member.
	for _, m := range members {
		if m.Alive() && m.Role() == RoleContent {
			m.keepaliveTick()
		}
	}
	f.run(5 * runtime.Minute)
	if dups := f.sys.DuplicatePositions(); dups != 0 {
		t.Fatalf("replacement race left %d duplicate positions", dups)
	}
	dirs := f.sys.PetalDirectories(0, loc)
	if len(dirs) != 1 {
		t.Fatalf("petal has %d directories, want exactly 1", len(dirs))
	}
}

func TestMissRecordsOriginTransfer(t *testing.T) {
	f := newFixture(t, 56, nil)
	f.seedRing()
	f.spawn(0, 0)
	f.run(10 * runtime.Minute)
	if f.coll.Count(metrics.Miss) == 0 {
		t.Fatal("first query should miss")
	}
	// Misses must carry a positive transfer distance (the origin is a
	// real topology node).
	td := f.coll.TransferDistribution([]int64{5})
	if td.Fraction(0) > 0.5 {
		t.Fatal("transfer distances implausibly small for origin fetches")
	}
}

func TestPushThresholdRespected(t *testing.T) {
	// With threshold 1.0 pushes happen only when the entire store is
	// new (i.e. the first object, and full re-syncs).
	f := newFixture(t, 57, func(c *Config) { c.PushThreshold = 1.0 })
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(2 * runtime.Hour)
	if c.Alive() && c.Role() == RoleContent && c.Store().Len() > 1 {
		if c.Store().PendingChanges() == 0 && c.Store().Len() > 2 {
			t.Fatal("threshold-1.0 peer pushed mid-accumulation deltas")
		}
	}
}

func TestContentKeySkippedWhenStoreFull(t *testing.T) {
	f := newFixture(t, 58, nil)
	f.seedRing()
	c := f.spawn(0, 0)
	f.run(5 * runtime.Minute)
	// Fill the entire catalog: the query loop must go quiet, not panic.
	for o := 0; o < f.work.Config().ObjectsPerSite; o++ {
		c.store.Add(content.Key{Site: 0, Object: content.ObjectID(o)})
	}
	before := f.coll.Total()
	c.issueQuery()
	f.run(runtime.Minute)
	if c.query != nil {
		t.Fatal("query issued despite complete catalog")
	}
	_ = before
}
