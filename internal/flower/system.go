// Package flower implements the paper's primary contribution: the
// Flower-CDN hybrid P2P content distribution network (Sec. 3), its
// PetalUp-CDN scalability extension (Sec. 4, enabled by
// Config.DirLoadLimit), and the churn maintenance protocols (Sec. 5).
//
// The architecture is two-layered:
//
//   - petals: per-(website, locality) gossip clusters of content peers
//     that cache and serve the website's objects to nearby clients;
//   - D-ring: a Chord overlay populated only by directory peers, one
//     (or, under PetalUp, several) per petal, at deterministic ring
//     positions derived from (website, locality, instance), serving as
//     the lookup entry point for new clients.
//
// A peer's life: it arrives as a *client*, submits its first query over
// D-ring, is served (from the petal or the origin), then joins the
// petal as a *content peer* — resolving its later queries through petal
// gossip and its directory, and serving other peers in turn. Content
// peers may be promoted to *directory peers* to replace failures
// (Sec. 5.2) or to absorb load (Sec. 4).
package flower

import (
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"
	"sort"

	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/dring"
	"flowercdn/internal/ids"
	"flowercdn/internal/metrics"
	"flowercdn/internal/topology"
	"flowercdn/internal/trace"
	"flowercdn/internal/workload"
)

// System is one Flower-CDN deployment inside a simulation run. It owns
// the shared environment and the bootstrap directory registry — the
// stand-in for the out-of-band entry points (the supported websites
// themselves) through which real clients would discover D-ring.
type System struct {
	cfg     Config
	net     runtime.Transport
	eng     runtime.Clock
	rng     *rnd.RNG
	work    *workload.Workload
	origins *workload.Origins
	coll    metrics.Emitter
	tracer  *trace.Tracer
	// newStore builds each individual's content store (unbounded by
	// default, policy-bounded when the run sets cache options).
	newStore func() *content.Store

	// registry holds entries believed to be alive D-ring members; dead
	// ones are pruned lazily as they are handed out. On multi-process
	// backends it is mirrored across processes over the transport's bus
	// (chord.Registry) — the paper's out-of-band entry points (the
	// supported websites) made concrete.
	registry chord.Registry
	// follower marks a process that must wait for an announced gateway
	// instead of founding the D-ring (multi-process backends only).
	follower bool
	// peers tracks every spawned peer for measurement only; protocol
	// logic never consults it (that would be cheating the distribution).
	peers []*Peer

	peersSpawned   uint64
	dirPromotions  uint64
	dirReplacement uint64
	vacancyClaims  uint64
	demotions      uint64
	querySeq       uint64
}

// Deps are the substrate handles a System runs on. Metrics is any
// event emitter — the harness passes a full metrics.Pipeline, library
// callers and tests can pass a bare *metrics.Collector.
type Deps struct {
	Net      runtime.Transport
	RNG      *rnd.RNG
	Workload *workload.Workload
	Origins  *workload.Origins
	Metrics  metrics.Emitter
	// NewStore builds each individual's content store; nil means
	// unbounded (content.NewStore — the paper's storage model).
	NewStore func() *content.Store
	// Follower marks a process that must not found the D-ring (see
	// proto.Env.Follower); meaningful only on multi-process backends.
	Follower bool
	// Trace is the optional per-query tracer; nil disables tracing.
	Trace *trace.Tracer
}

// NewSystem validates the config and builds an empty deployment.
func NewSystem(cfg Config, d Deps) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if d.Net == nil || d.RNG == nil || d.Workload == nil || d.Origins == nil || d.Metrics == nil {
		return nil, fmt.Errorf("flower: missing dependency in %+v", d)
	}
	newStore := d.NewStore
	if newStore == nil {
		newStore = content.NewStore
	}
	s := &System{
		cfg:      cfg,
		net:      d.Net,
		eng:      d.Net.Clock(),
		rng:      d.RNG,
		work:     d.Workload,
		origins:  d.Origins,
		coll:     d.Metrics,
		tracer:   d.Trace,
		newStore: newStore,
		follower: d.Follower,
	}
	// On a multi-process backend, mirror the gateway registry over the
	// bus: ring-member registrations announced by other processes feed
	// our registry and vice versa, so a client anywhere can discover a
	// directory anywhere.
	s.registry.BindBus(d.Net)
	return s, nil
}

// Config returns the deployment's configuration.
func (s *System) Config() Config { return s.cfg }

// Stats exposes protocol-level counters for the harness.
type Stats struct {
	PeersSpawned    uint64
	DirPromotions   uint64 // PetalUp splits
	DirReplacements uint64 // failure repairs (Sec. 5.2.1)
	VacancyClaims   uint64 // new-client joins at vacant positions
	Demotions       uint64 // duplicate-position audits resolved
}

// Stats returns a snapshot of protocol counters.
func (s *System) Stats() Stats {
	return Stats{
		PeersSpawned:    s.peersSpawned,
		DirPromotions:   s.dirPromotions,
		DirReplacements: s.dirReplacement,
		VacancyClaims:   s.vacancyClaims,
		Demotions:       s.demotions,
	}
}

// DuplicatePositions counts alive directory peers beyond one per
// position — the invariant the audit protocol drives back to zero.
func (s *System) DuplicatePositions() int {
	per := map[ids.ID]int{}
	for _, p := range s.peers {
		if p.Alive() && p.dir != nil {
			per[p.dir.pos]++
		}
	}
	dups := 0
	for _, n := range per {
		if n > 1 {
			dups += n - 1
		}
	}
	return dups
}

// registerDirectory records a new ring member as a bootstrap gateway
// and, on multi-process backends, announces it to the other processes.
func (s *System) registerDirectory(e chord.Entry) {
	s.registry.Add(e)
}

// unregisterDirectory removes a demoted peer from the gateway registry
// (dead ones are pruned lazily, but a demoted peer is alive and would
// otherwise swallow routed queries) and mirrors the removal.
func (s *System) unregisterDirectory(nid runtime.NodeID) {
	s.registry.Remove(nid)
}

// gateway returns an alive registry entry, excluding one node (usually
// the directory just observed dead), pruning dead entries as it scans.
// Returns NoEntry when the registry is empty.
func (s *System) gateway(exclude runtime.NodeID) chord.Entry {
	return s.registry.PickAlive(s.rng, s.net.Alive, exclude)
}

// DirectoryCount returns the number of currently-alive registered
// directory peers (diagnostic).
func (s *System) DirectoryCount() int {
	n := 0
	for _, e := range s.registry.Entries {
		if s.net.Alive(e.Node) {
			n++
		}
	}
	return n
}

// Peers returns every peer ever spawned (measurement only; includes
// dead ones — filter with Peer.Alive).
func (s *System) Peers() []*Peer { return s.peers }

// PetalDirectories returns the alive directory instances currently
// serving petal (site, loc), in instance order (measurement only).
func (s *System) PetalDirectories(site content.SiteID, loc topology.Locality) []*Peer {
	var out []*Peer
	for _, p := range s.peers {
		if p.Alive() && p.dir != nil && dring.SamePetal(p.dir.pos, site, loc) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].dir.instance < out[j].dir.instance })
	return out
}

// AlivePeerCount returns the number of alive peers (diagnostic).
func (s *System) AlivePeerCount() int {
	n := 0
	for _, p := range s.peers {
		if p.Alive() {
			n++
		}
	}
	return n
}

// Identity is the persistent part of a participant. The paper's churn
// model (total network size 1.3·P) cycles a fixed population of
// individuals through online sessions: every session gets a fresh
// network address, but the individual's interest, physical location
// and — crucially — its cached content survive offline periods ("a
// content peer has enough storage potential to avoid replacing its
// content through the experiment's duration").
type Identity struct {
	Site      content.SiteID
	Placement topology.Placement
	Store     *content.Store
}

// NewIdentity draws a fresh individual interested in site, located in
// loc, with an empty cache.
func (s *System) NewIdentity(site content.SiteID, loc topology.Locality) Identity {
	return Identity{
		Site:      site,
		Placement: s.net.Topology().PlaceAt(loc, s.rng),
		Store:     s.newStore(),
	}
}

// SpawnIdentity brings an individual online as a new client; its
// persistent store comes back with it (and will be re-indexed by its
// petal's directory through the full push on re-join).
func (s *System) SpawnIdentity(id Identity) (*Peer, func()) {
	p := s.newPeer(id)
	p.startLife()
	return p, p.kill
}

// SpawnSeedDirectory creates the initial directory peer for (site,
// loc) at a position-0 D-ring slot. The first seed creates the ring;
// later seeds join through an existing member. The paper starts each
// run with k*|W| = 600 such peers ("one directory peer per couple
// (website, locality)"). The returned kill function fails the peer.
func (s *System) SpawnSeedDirectory(site content.SiteID, loc topology.Locality) (*Peer, func()) {
	return s.SpawnSeedDirectoryIdentity(s.NewIdentity(site, loc))
}

// SpawnSeedDirectoryIdentity is SpawnSeedDirectory for a persistent
// individual.
func (s *System) SpawnSeedDirectoryIdentity(id Identity) (*Peer, func()) {
	p := s.newPeer(id)
	site, loc := id.Site, id.Placement.Loc
	pos := dringPosition(site, loc, 0)
	switch {
	case s.registry.Len() > 0:
		p.seedClaim(pos, 5)
	case s.follower:
		// A follower process never founds a second, disjoint D-ring:
		// wait for the bootstrap process's founding announcement to
		// arrive over the bus, then claim through it.
		p.awaitGateway(pos, 5)
	default:
		p.becomeFoundingDirectory(pos)
	}
	return p, p.kill
}

// awaitGateway polls the registry until a bus announcement provides a
// gateway, then proceeds with the normal seed claim. The poll is cheap
// and ends with the peer's session, so no attempt bound is needed.
func (p *Peer) awaitGateway(pos ids.ID, attempts int) {
	if p.dead {
		return
	}
	if p.sys.registry.Len() == 0 {
		p.eng().Schedule(200*runtime.Millisecond, func() { p.awaitGateway(pos, attempts) })
		return
	}
	p.seedClaim(pos, attempts)
}

// seedClaim claims a seed position with retries: during the initial
// join storm the forming ring occasionally fails a lookup or denies a
// claim while an arc boundary is unknown.
func (p *Peer) seedClaim(pos ids.ID, attempts int) {
	p.claimDirectoryPosition(pos, runtime.None, func(current chord.Entry, err error) {
		if p.dead || err == nil {
			return
		}
		if current.Valid() {
			// Somebody genuinely beat us to the seat; live on as a
			// plain client of that directory.
			p.dirInfo = DirInfo{Pos: pos, Node: current.Node, Age: 0}
			p.startLife()
			return
		}
		// Transient failure (lookup timeout or healing denial): retry.
		if attempts <= 1 {
			p.startLife()
			return
		}
		p.eng().Schedule(p.sys.cfg.SeedRetryDelay, func() { p.seedClaim(pos, attempts-1) })
	})
}

// SpawnClient creates a fresh participant with the given interest at a
// random placement: an active-site client starts its query loop, any
// other peer immediately requests petal membership. The returned kill
// function fails the peer (fail-only churn).
func (s *System) SpawnClient(site content.SiteID) (*Peer, func()) {
	loc := topology.Locality(s.rng.Intn(s.net.Topology().Localities()))
	return s.SpawnClientAt(site, loc)
}

// SpawnClientAt is SpawnClient pinned to a locality — used by the
// PetalUp flash-crowd experiments.
func (s *System) SpawnClientAt(site content.SiteID, loc topology.Locality) (*Peer, func()) {
	return s.SpawnIdentity(s.NewIdentity(site, loc))
}

func (s *System) newPeer(id Identity) *Peer {
	s.peersSpawned++
	store := id.Store
	if store == nil {
		store = s.newStore()
	}
	p := &Peer{
		sys:   s,
		site:  id.Site,
		loc:   id.Placement.Loc,
		store: store,
		rng:   s.rng.Split(fmt.Sprintf("peer-%d", s.peersSpawned)),
	}
	p.nid = s.net.Join(p, id.Placement)
	p.initGossip()
	s.peers = append(s.peers, p)
	return p
}

// nextQuerySeq hands out query correlation tags.
func (s *System) nextQuerySeq() uint64 {
	s.querySeq++
	return s.querySeq
}
