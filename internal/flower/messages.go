package flower

import (
	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/gossip"
	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
	"flowercdn/internal/trace"
)

// DirInfo is the record every content peer keeps about its directory
// peer (paper Sec. 5.1): the D-ring position, the node currently
// holding it, and an age incremented each keepalive period and reset on
// contact. When two content peers gossip, dir-infos for the same
// position are reconciled by keeping the smaller age — that is how news
// of a replaced directory spreads through a petal.
type DirInfo struct {
	Pos  ids.ID
	Node runtime.NodeID
	Age  int
}

// Valid reports whether the record points at a node.
func (d DirInfo) Valid() bool { return d.Node != runtime.None }

// Fresher reports whether d should replace cur: same position and
// strictly smaller age (Sec. 5.1's reconciliation rule). Any valid
// record beats an invalidated one for the same position, which is how
// an orphaned content peer re-learns its petal's directory via gossip.
func (d DirInfo) Fresher(cur DirInfo) bool {
	if !d.Valid() || d.Pos != cur.Pos {
		return false
	}
	if !cur.Valid() {
		return true
	}
	return d.Age < cur.Age
}

// ContactMeta is the per-contact metadata petal gossip carries: the
// contact's content summary and its view of the directory.
type ContactMeta struct {
	Summary SummaryProvider
	Dir     DirInfo
}

// SummaryProvider abstracts Bloom summaries so the ablation bench can
// swap in exact sets.
type SummaryProvider interface {
	Contains(key uint64) bool
	SizeBytes() int
}

// ---- client <-> directory messages ----

// clientQueryMsg is the query a new client routes over D-ring to the
// directory position of its (site, locality) petal. JoinOnly marks the
// arrival of a peer for a non-active website, which just wants petal
// membership ("simply added to its petal upon its arrival").
type clientQueryMsg struct {
	Seq      uint64
	Key      content.Key
	Client   runtime.NodeID
	Site     content.SiteID
	Loc      topology.Locality
	JoinOnly bool
	// Scanned counts the PetalUp directory instances this query has
	// visited (Sec. 4's sequential scan).
	Scanned int
	// Path carries trace hops accumulated on the directory side (scan
	// forwards between PetalUp instances); empty when tracing is off.
	Path []trace.Hop
}

// dirQueryResp answers a routed clientQueryMsg directly to the client.
type dirQueryResp struct {
	Seq       uint64
	Providers []runtime.NodeID
	// FromSummary marks providers recovered from a freshly promoted
	// directory's old gossip summaries rather than its index.
	FromSummary bool
	// Dir is the responding directory's identity; the client adopts it.
	Dir chord.Entry
	// Seed is a view bootstrap: a subset of the directory's member view
	// (Sec. 4: a new instance "provides them with a subset of its old
	// view so that they initialize their view of the petal").
	Seed []gossip.Entry
	// CollabWith lists same-website directory peers (ring neighbours by
	// key construction) worth asking when the local petal cannot serve
	// the object (Sec. 3.2: "directory peers of the same website ws may
	// collaborate to provide content of ws").
	CollabWith []chord.Entry
	// Path is the traced directory-side hop segment (ring route + scan
	// forwards + the answering directory); empty when tracing is off.
	// Trace hops do not count toward the modeled response size.
	Path []trace.Hop
}

func (r dirQueryResp) WireBytes() int { return 64 + len(r.Providers)*8 + len(r.Seed)*192 }

// vacantResp tells a client that the directory position its query was
// routed to is vacant; the client may claim it (join case 2 of
// Sec. 5.2.2).
type vacantResp struct {
	Seq uint64
	Pos ids.ID
}

// ---- content peer <-> directory RPCs ----

// dirQueryReq is a content peer's query to its own directory peer.
// Foreign marks a collaboration probe from another petal's client,
// which must not be admitted to this directory's member view.
type dirQueryReq struct {
	Key     content.Key
	Client  runtime.NodeID
	Foreign bool
}

// dirQueryReply answers dirQueryReq.
type dirQueryReply struct {
	Providers   []runtime.NodeID
	FromSummary bool
	CollabWith  []chord.Entry
}

// keepaliveReq is the periodic liveness signal from a content peer to
// its directory (Sec. 5.1); the directory uses it to expire dead
// members from its view and index.
type keepaliveReq struct {
	Site content.SiteID
	Loc  topology.Locality
}

type keepaliveResp struct{}

// pushReq carries the delta of a content peer's stored content to its
// directory, sent "whenever the percentage of its changes reaches a
// threshold".
type pushReq struct {
	Site content.SiteID
	Loc  topology.Locality
	Keys []content.Key
}

func (p pushReq) WireBytes() int { return 32 + len(p.Keys)*8 }

type pushResp struct{}

// deadProviderReport tells a directory that a redirect target did not
// answer, so it can expunge the stale pointer without waiting for the
// keepalive TTL.
type deadProviderReport struct {
	Dead runtime.NodeID
}

// ---- PetalUp promotion ----

// promoteMsg asks a content peer to join D-ring as directory instance
// Pos for its petal (Sec. 4: when all existing instances are
// overloaded, the final one "selects from its view the content peer to
// join D-ring as d^{i+1}").
type promoteMsg struct {
	Pos ids.ID
}

// promotedMsg notifies the old directory that the promotion succeeded,
// so it removes the promotee from its index ("the replacing content
// peer is then removed from the directory-index").
type promotedMsg struct {
	NewDir chord.Entry
}

// ---- handoff (voluntary leave, Sec. 5.2.2) ----

// handoffMsg transfers a leaving directory's view and directory-index
// to its replacement ("if the previous d had voluntarily left, it would
// have transferred a copy of its view and directory-index").
type handoffMsg struct {
	Pos     ids.ID
	Index   map[content.Key][]runtime.NodeID
	Members []runtime.NodeID
}

func (h handoffMsg) WireBytes() int {
	n := 32 + len(h.Members)*8
	for _, ps := range h.Index {
		n += 8 + len(ps)*8
	}
	return n
}
