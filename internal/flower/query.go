package flower

import (
	"flowercdn/internal/runtime"
	"sort"

	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/gossip"
	"flowercdn/internal/metrics"
	"flowercdn/internal/trace"
	"flowercdn/internal/workload"
)

// querySource tags which resolution path produced the provider, mapping
// onto the metrics outcome taxonomy.
type querySource int

const (
	srcGossip querySource = iota
	srcDirectory
	srcDirSummary
)

func (s querySource) outcome() metrics.Outcome {
	switch s {
	case srcGossip:
		return metrics.HitLocalGossip
	case srcDirSummary:
		return metrics.HitDirectorySummary
	default:
		return metrics.HitDirectory
	}
}

// provCand is one gossip-path provider candidate during selection.
type provCand struct {
	peer runtime.NodeID
	lat  int64
}

// activeQuery is the in-flight query state machine. A peer runs at most
// one at a time (think time, 6 min mean, dwarfs resolution time).
//
// Queries are pooled per peer (getQuery/putQuery): every callback that
// may outlive a query captures the seq it was created for and checks it
// against q.seq, because after recycling the same *activeQuery pointer
// identifies a different query. seq values are process-unique, so a
// stale callback can never pass the check.
type activeQuery struct {
	seq      uint64
	key      content.Key
	start    int64
	joinOnly bool

	attempt int // gateway attempts for D-ring routed queries
	timeout runtime.Timer

	source     querySource
	candidates []runtime.NodeID // remaining providers to probe

	// collab holds same-website sibling directories still to consult
	// before declaring a miss. Siblings never hand out further siblings
	// (Foreign queries carry no CollabWith), so collaboration is one
	// level deep.
	collab []chord.Entry

	// path accumulates trace hops while tracing is enabled; always
	// empty otherwise. The backing array survives recycling.
	path []trace.Hop
}

// getQuery takes the recycled query record (or allocates the peer's
// first); putQuery returns it once the query fully resolved. The
// candidate buffer's backing array survives recycling.
func (p *Peer) getQuery() *activeQuery {
	q := p.qspare
	if q == nil {
		return &activeQuery{}
	}
	p.qspare = nil
	*q = activeQuery{candidates: q.candidates[:0], path: q.path[:0]}
	return q
}

func (p *Peer) putQuery(q *activeQuery) {
	q.timeout = nil
	q.collab = nil
	p.qspare = q
}

// traceHop appends one hop to the active query's path when tracing is
// enabled; a no-op otherwise.
func (p *Peer) traceHop(q *activeQuery, kind trace.HopKind, node runtime.NodeID, fp bool) {
	if !p.sys.tracer.Enabled() {
		return
	}
	q.path = trace.Append(q.path, trace.Hop{
		Kind: kind, Node: node, Loc: p.net().Locality(node),
		At: p.eng().Now(), FalsePositive: fp,
	})
}

// ensureQueryLoop starts the periodic query process once, for peers of
// active websites.
func (p *Peer) ensureQueryLoop() {
	if p.dead || p.queryTimer != nil || !p.sys.work.Active(p.site) {
		return
	}
	p.scheduleNextQuery(p.sys.work.FirstQueryDelay(p.rng))
}

// issueQuery begins one query for an object the peer does not cache.
func (p *Peer) issueQuery() {
	if p.dead || p.query != nil {
		// An unresolved previous query is still in flight; skip this
		// round rather than interleave state machines.
		return
	}
	key, ok := p.sys.work.PickObject(p.rng, p.site, p.store)
	if !ok {
		return // caches the whole catalog: nothing left to request
	}
	q := p.getQuery()
	q.seq = p.sys.nextQuerySeq()
	q.key = key
	q.start = p.eng().Now()
	p.query = q
	p.traceHop(q, trace.HopIssue, p.nid, false)
	if p.role == RoleClient {
		p.sendRoutedQuery(q)
		return
	}
	p.contentQuery(q)
}

// startClientQuery is the arrival path: joinOnly requests petal
// membership for peers of non-active websites.
func (p *Peer) startClientQuery(key content.Key, joinOnly bool) {
	if p.query != nil {
		return
	}
	q := p.getQuery()
	q.seq = p.sys.nextQuerySeq()
	q.key = key
	q.start = p.eng().Now()
	q.joinOnly = joinOnly
	p.query = q
	p.traceHop(q, trace.HopIssue, p.nid, false)
	p.sendRoutedQuery(q)
}

// sendRoutedQuery submits the query to D-ring through a bootstrap
// gateway (Sec. 3.2: "a client located in loc submits its query to
// D-ring and gets redirected to the directory peer in charge").
func (p *Peer) sendRoutedQuery(q *activeQuery) {
	if p.dead || p.query != q {
		return
	}
	gw := p.sys.gateway(runtime.None)
	if !gw.Valid() {
		// No known ring member: we are (or believe we are) the first
		// participant; claim the petal's root directory position.
		p.claimFromQuery(q)
		return
	}
	if p.chordClient == nil {
		cl, err := chord.NewClient(p.sys.cfg.Chord, p.sys.net, p.nid)
		if err != nil {
			panic(err) // config validated at system construction
		}
		p.chordClient = cl
	}
	pos := dringPosition(p.site, p.loc, 0)
	msg := clientQueryMsg{
		Seq:      q.seq,
		Key:      q.key,
		Client:   p.nid,
		Site:     p.site,
		Loc:      p.loc,
		JoinOnly: q.joinOnly,
	}
	if p.sys.tracer.Enabled() {
		// The routed segment starts empty at the client: the overlay
		// stamps each forwarding and the directory ships the whole
		// segment back in its response.
		p.chordClient.RouteViaTraced(gw, pos, msg, nil)
	} else {
		p.chordClient.RouteVia(gw, pos, msg)
	}
	q.attempt++
	seq := q.seq
	q.timeout = p.eng().Schedule(p.sys.cfg.QueryTimeout, func() { p.routedQueryTimedOut(q, seq) })
}

func (p *Peer) routedQueryTimedOut(q *activeQuery, seq uint64) {
	if p.dead || p.query != q || q.seq != seq {
		return
	}
	if q.attempt < p.sys.cfg.QueryRetries {
		p.sendRoutedQuery(q)
		return
	}
	// Routing keeps failing: either the position is vacant behind dead
	// gateways or the ring is in bad shape. Try to claim the position
	// (join case 2); claimFromQuery falls back to the origin on defeat.
	p.claimFromQuery(q)
}

// claimFromQuery attempts to become the petal's directory because
// D-ring has no (reachable) directory for it — join case 2 of
// Sec. 5.2.2 for new clients, and the rejoin path for orphaned content
// peers.
func (p *Peer) claimFromQuery(q *activeQuery) {
	if p.dead || p.query != q {
		return
	}
	if p.chordNode != nil {
		// Already on the ring (a racing replacement promoted us while
		// this query was in flight): resolve from our own directory.
		if q.joinOnly {
			p.finishJoinOnly(q)
			return
		}
		p.directoryQuery(q)
		return
	}
	pos := dringPosition(p.site, p.loc, 0)
	seq := q.seq
	p.claimDirectoryPosition(pos, runtime.None, func(current chord.Entry, err error) {
		if p.dead || p.query != q || q.seq != seq {
			return
		}
		if err == nil {
			// We are the directory now; resolve our own query from what
			// we know (old summaries for a former content peer, the
			// origin for a brand-new client).
			p.sys.vacancyClaims++
			if q.joinOnly {
				p.finishJoinOnly(q)
				return
			}
			p.directoryQuery(q)
			return
		}
		if current.Valid() {
			// Somebody holds (or just won) the position: adopt and ask
			// them directly.
			p.dirInfo = DirInfo{Pos: pos, Node: current.Node, Age: 0}
			p.net().Send(p.nid, current.Node, clientQueryMsg{
				Seq: q.seq, Key: q.key, Client: p.nid,
				Site: p.site, Loc: p.loc, JoinOnly: q.joinOnly,
			})
			q.timeout = p.eng().Schedule(p.sys.cfg.QueryTimeout, func() { p.routedQueryTimedOut(q, seq) })
			return
		}
		// Ring unreachable altogether.
		if q.joinOnly {
			p.finishJoinOnly(q)
			return
		}
		p.fallbackOrigin(q)
	})
}

// onDirQueryResp handles the directory's answer to a routed query.
func (p *Peer) onDirQueryResp(m dirQueryResp) {
	q := p.query
	if q == nil || q.seq != m.Seq {
		return // stale or duplicate answer
	}
	if q.timeout != nil {
		q.timeout.Cancel()
	}
	if p.sys.tracer.Enabled() {
		// Merge the directory-side segment (ring route + scan forwards +
		// the answering directory) behind the client's issue hop.
		q.path = trace.Concat(q.path, m.Path)
	}
	// Adopt the directory and join the petal (Sec. 3.2: the client
	// "can join petal(ws, loc) as a content peer"). A peer that became
	// a directory itself while this answer travelled keeps pointing at
	// itself.
	if m.Dir.Valid() && p.role != RoleDirectory {
		p.dirInfo = DirInfo{Pos: m.Dir.ID, Node: m.Dir.Node, Age: 0}
	}
	p.joinPetal(m.Seed)
	// A re-joining content peer syncs its store with the (possibly new)
	// directory right away.
	p.maybePush()
	if q.joinOnly {
		p.finishJoinOnly(q)
		return
	}
	if m.FromSummary {
		q.source = srcDirSummary
	} else {
		q.source = srcDirectory
	}
	q.candidates = m.Providers
	q.collab = m.CollabWith
	p.probeCandidate(q, false)
}

// onVacantResp handles the "position vacant" signal from the ring node
// covering our directory position's arc.
func (p *Peer) onVacantResp(m vacantResp) {
	q := p.query
	if q == nil || q.seq != m.Seq {
		return
	}
	if q.timeout != nil {
		q.timeout.Cancel()
	}
	p.claimFromQuery(q)
}

// joinPetal transitions a client to content peer and seeds its view
// from the directory-provided contacts.
func (p *Peer) joinPetal(seed []gossip.Entry) {
	for _, e := range seed {
		if e.Peer == p.nid {
			continue
		}
		p.gsp.AddContact(e.Peer, e.Meta)
	}
	if p.role != RoleClient {
		return // already a member (re-join after directory change)
	}
	p.role = RoleContent
	p.gsp.Start()
	p.startKeepalive()
}

// finishJoinOnly completes a membership-only arrival (non-active
// websites are "simply added to [their] petal upon arrival"; no metrics
// are recorded because no content was requested).
func (p *Peer) finishJoinOnly(q *activeQuery) {
	if p.query == q {
		p.query = nil
		p.putQuery(q)
	}
}

// contentQuery is the resolution path for petal members (Sec. 3.1):
// first the gossip view's content summaries, then the directory, then
// the origin.
func (p *Peer) contentQuery(q *activeQuery) {
	// Locality-aware candidate selection: every petal contact whose
	// summary claims the object, nearest first.
	cands := p.candScratch[:0]
	for _, e := range p.gsp.View() {
		meta, ok := e.Meta.(ContactMeta)
		if !ok || meta.Summary == nil {
			continue
		}
		if meta.Summary.Contains(q.key.Uint64()) {
			cands = append(cands, provCand{peer: e.Peer, lat: p.net().Latency(p.nid, e.Peer)})
		}
	}
	p.candScratch = cands[:0]
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lat != cands[j].lat {
			return cands[i].lat < cands[j].lat
		}
		return cands[i].peer < cands[j].peer
	})
	limit := p.sys.cfg.GossipCandidates
	if len(cands) > limit {
		cands = cands[:limit]
	}
	q.source = srcGossip
	q.candidates = q.candidates[:0]
	for _, c := range cands {
		q.candidates = append(q.candidates, c.peer)
	}
	if len(q.candidates) > 0 {
		p.probeCandidate(q, true)
		return
	}
	p.directoryQuery(q)
}

// probeCandidate fetch-probes the head of q.candidates; gossipPath
// selects the fallback when candidates run out.
func (p *Peer) probeCandidate(q *activeQuery, gossipPath bool) {
	if p.dead || p.query != q {
		return
	}
	if len(q.candidates) == 0 {
		if gossipPath {
			p.directoryQuery(q)
		} else if len(q.collab) > 0 {
			p.collabQuery(q)
		} else {
			p.fallbackOrigin(q)
		}
		return
	}
	target := q.candidates[0]
	q.candidates = q.candidates[1:]
	// The prober knows its RTT estimate to the target; waiting a fixed
	// multi-second timeout for a neighbour 40 ms away would dominate
	// lookup latency under churn.
	timeout := 2*p.net().Latency(p.nid, target) + 300*runtime.Millisecond
	seq := q.seq
	p.net().Request(p.nid, target, workload.FetchReq{Key: q.key}, timeout,
		func(resp any, err error) {
			if p.dead || p.query != q || q.seq != seq {
				return
			}
			served := err == nil && resp.(workload.FetchResp).Served
			// An answered probe without the object is a stale summary or
			// Bloom false positive — the flag the per-hop report keys on.
			p.traceHop(q, trace.HopProbe, target, err == nil && !served)
			if err != nil {
				if gossipPath {
					// The contact is gone; drop it from the view so
					// searches stop considering it.
					p.gsp.RemoveContact(target)
				} else if p.dirInfo.Valid() {
					// Tell the directory its pointer is stale so the
					// index stops advertising a dead provider.
					p.net().Send(p.nid, p.dirInfo.Node, deadProviderReport{Dead: target})
				}
				p.probeCandidate(q, gossipPath)
				return
			}
			if !served {
				p.probeCandidate(q, gossipPath)
				return
			}
			p.resolve(q, q.source.outcome(), target)
		})
}

// directoryQuery consults the peer's directory (its own index when the
// peer IS a directory).
func (p *Peer) directoryQuery(q *activeQuery) {
	if p.dead || p.query != q {
		return
	}
	if p.dir != nil {
		// We are a directory: resolve from our own index/summaries.
		providers, fromSummary := p.dir.lookupProviders(p, q.key, p.nid)
		if fromSummary {
			q.source = srcDirSummary
		} else {
			q.source = srcDirectory
		}
		q.candidates = providers
		p.traceHop(q, trace.HopHome, p.nid, false)
		p.probeCandidate(q, false)
		return
	}
	if !p.dirInfo.Valid() {
		// No directory known: resolve via origin now; petal membership
		// recovery happens through the keepalive loop.
		p.fallbackOrigin(q)
		return
	}
	dirNode := p.dirInfo.Node
	seq := q.seq
	p.net().Request(p.nid, dirNode, dirQueryReq{Key: q.key, Client: p.nid}, p.sys.cfg.Chord.RPCTimeout,
		func(resp any, err error) {
			if p.dead || p.query != q || q.seq != seq {
				if err != nil && !p.dead {
					p.dirContactFailed(dirNode)
				}
				return
			}
			if err != nil {
				p.dirContactFailed(dirNode)
				p.fallbackOrigin(q)
				return
			}
			p.dirMisses = 0
			p.dirInfo.Age = 0 // fresh contact
			p.traceHop(q, trace.HopHome, dirNode, false)
			rep := resp.(dirQueryReply)
			if rep.FromSummary {
				q.source = srcDirSummary
			} else {
				q.source = srcDirectory
			}
			q.candidates = rep.Providers
			q.collab = rep.CollabWith
			p.probeCandidate(q, false)
		})
}

// collabQuery asks the next same-website sibling directory for
// providers before conceding a miss (Sec. 3.2's directory
// collaboration). A sibling hit is served from another locality's
// petal — farther than the local petal but still a P2P hit. Siblings
// are consulted sequentially until one yields providers or the list
// runs out.
func (p *Peer) collabQuery(q *activeQuery) {
	if p.dead || p.query != q {
		return
	}
	if len(q.collab) == 0 {
		p.fallbackOrigin(q)
		return
	}
	sib := q.collab[0]
	q.collab = q.collab[1:]
	seq := q.seq
	p.net().Request(p.nid, sib.Node, dirQueryReq{Key: q.key, Client: p.nid, Foreign: true},
		p.sys.cfg.Chord.RPCTimeout, func(resp any, err error) {
			if p.dead || p.query != q || q.seq != seq {
				return
			}
			if err != nil {
				p.collabQuery(q)
				return
			}
			p.traceHop(q, trace.HopHome, sib.Node, false)
			rep := resp.(dirQueryReply)
			if len(rep.Providers) == 0 {
				p.collabQuery(q)
				return
			}
			q.source = srcDirectory
			q.candidates = rep.Providers
			p.probeCandidate(q, false)
		})
}

// fallbackOrigin resolves the query at the origin web server — a miss
// for the P2P system.
func (p *Peer) fallbackOrigin(q *activeQuery) {
	if p.dead || p.query != q {
		return
	}
	origin := p.sys.origins.Node(q.key.Site)
	p.resolve(q, metrics.Miss, origin)
}

// resolve finalizes a query: record the paper's three metrics, then
// perform the transfer (fetch + store + push bookkeeping).
func (p *Peer) resolve(q *activeQuery, outcome metrics.Outcome, provider runtime.NodeID) {
	if p.query != q {
		return
	}
	if q.timeout != nil {
		q.timeout.Cancel()
	}
	p.query = nil
	now := p.eng().Now()
	dist := p.net().Latency(p.nid, provider)
	// Lookup latency is the paper's "latency taken to resolve a query
	// and reach the destination that will provide the requested
	// object". For verified hits the destination was reached one
	// response leg before now; for misses the query still has to travel
	// to the origin.
	lookup := now - q.start
	if outcome == metrics.Miss {
		lookup += dist
	} else if lookup > dist {
		lookup -= dist
	}
	p.sys.coll.Emit(metrics.QueryEvent(now, outcome, lookup, dist))
	if p.sys.tracer.Enabled() {
		// The record owns a copy of the path: q recycles below and its
		// backing array will be reused by the peer's next query.
		p.sys.tracer.Emit(now, &trace.Record{
			Query:    q.seq,
			Client:   p.nid,
			Loc:      p.loc,
			Key:      q.key.Uint64(),
			Outcome:  outcome,
			Attempts: q.attempt,
			Hops: trace.Append(trace.CopyHops(q.path), trace.Hop{
				Kind: trace.HopServe, Node: provider,
				Loc: p.net().Locality(provider), At: now,
			}),
		})
	}
	key := q.key // q recycles now; the fetch callback outlives it
	p.putQuery(q)
	if outcome == metrics.Miss {
		// The object still has to travel from the origin.
		p.net().Request(p.nid, provider, workload.FetchReq{Key: key}, 0,
			func(resp any, err error) {
				if p.dead || err != nil {
					return
				}
				p.acquire(key)
			})
		return
	}
	// Hit paths already verified the provider served the object.
	p.acquire(key)
}

// acquire stores a fetched object and runs the push-threshold check
// (Sec. 5.1).
func (p *Peer) acquire(key content.Key) {
	if !p.store.Add(key) {
		return
	}
	p.maybePush()
}
