package flower

import (
	"flowercdn/internal/runtime"
	"fmt"
	"sort"

	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/dring"
	"flowercdn/internal/gossip"
	"flowercdn/internal/ids"
	"flowercdn/internal/metrics"
	"flowercdn/internal/trace"
)

// directoryState is the extra state a peer carries while holding a
// D-ring directory position (Sec. 3.2): the directory-index mapping
// objects to the content peers that cache them, the member view with
// keepalive freshness, and — right after promotion — the content
// summaries retained from its life as a content peer, used to answer
// queries while the index rebuilds (Sec. 5.2.2).
type directoryState struct {
	pos      ids.ID
	instance int

	// index maps each object to the sorted NodeIDs of the content peers
	// caching it. A sorted slice instead of a per-key set: 8 bytes per
	// pointer, deterministic iteration by construction, and provider
	// lists are short (bounded in practice by petal size).
	index   map[content.Key][]runtime.NodeID
	members map[runtime.NodeID]*memberInfo

	// oldSummaries is the gossip-view snapshot taken at promotion.
	oldSummaries []gossip.Entry
	// summaryDeadline is when oldSummaries stop being trusted.
	summaryDeadline int64

	sweep runtime.Ticker
	audit runtime.Ticker

	// pendingPromotion guards against promoting several members at
	// once; it names the instance being created and when the attempt
	// expires.
	pendingPromotionPos ids.ID
	pendingPromotionExp int64

	queriesHandled uint64
	queriesScanned uint64 // PetalUp forwards to the next instance
}

type memberInfo struct {
	lastSeen int64
	keys     map[content.Key]struct{}
}

// searchNode locates nid in a sorted NodeID slice: the insertion index
// and whether it is present.
func searchNode(ps []runtime.NodeID, nid runtime.NodeID) (int, bool) {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps[mid] < nid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(ps) && ps[lo] == nid
}

// addProvider records nid as a provider of k, keeping the list sorted.
func (d *directoryState) addProvider(k content.Key, nid runtime.NodeID) {
	ps := d.index[k]
	i, ok := searchNode(ps, nid)
	if ok {
		return
	}
	ps = append(ps, 0)
	copy(ps[i+1:], ps[i:])
	ps[i] = nid
	d.index[k] = ps
}

// removeProvider forgets nid as a provider of k.
func (d *directoryState) removeProvider(k content.Key, nid runtime.NodeID) {
	ps := d.index[k]
	i, ok := searchNode(ps, nid)
	if !ok {
		return
	}
	ps = append(ps[:i], ps[i+1:]...)
	if len(ps) == 0 {
		delete(d.index, k)
	} else {
		d.index[k] = ps
	}
}

// Pos returns the directory's ring position.
func (d *directoryState) Pos() ids.ID { return d.pos }

// Instance returns the PetalUp instance number i of d^i.
func (d *directoryState) Instance() int { return d.instance }

// MemberCount returns the directory's load measure: "the number of
// content peers in its view" (Sec. 4).
func (d *directoryState) MemberCount() int { return len(d.members) }

// IndexSize returns the number of indexed objects.
func (d *directoryState) IndexSize() int { return len(d.index) }

// QueriesHandled returns how many client queries this instance
// processed.
func (d *directoryState) QueriesHandled() uint64 { return d.queriesHandled }

// exactSummary adapts a directory's per-member key set to the
// SummaryProvider interface so view seeds carry usable summaries.
type exactSummary map[content.Key]struct{}

func (s exactSummary) Contains(key uint64) bool {
	_, ok := s[content.Key{
		Site:   content.SiteID(key >> 32),
		Object: content.ObjectID(uint32(key)),
	}]
	return ok
}

func (s exactSummary) SizeBytes() int { return len(s) * 8 }

// becomeFoundingDirectory creates a brand-new D-ring with this peer as
// its first member at pos.
func (p *Peer) becomeFoundingDirectory(pos ids.ID) {
	node, err := chord.NewNode(p.sys.cfg.Chord, p.sys.net, p.rng.Split("chord"), p, p.nid, pos)
	if err != nil {
		panic(err)
	}
	p.chordNode = node
	node.Create()
	p.becomeDirectory(pos)
}

// claimDirectoryPosition tries to occupy pos on D-ring, serializing
// with rivals through the claim protocol. done (optional) receives the
// outcome; on errors `current` names the node holding or winning the
// position when known.
func (p *Peer) claimDirectoryPosition(pos ids.ID, exclude runtime.NodeID, done func(current chord.Entry, err error)) {
	if p.dead || p.chordNode != nil {
		if done != nil {
			done(chord.NoEntry, fmt.Errorf("flower: peer cannot claim (dead or already on ring)"))
		}
		return
	}
	gw := p.sys.gateway(exclude)
	if !gw.Valid() {
		if p.sys.follower {
			// A follower process never founds a ring — doing so would
			// splinter the population into disjoint overlays. Report
			// failure; the caller falls back to the origin and the next
			// query retries through whatever gateway the bus announces.
			if done != nil {
				done(chord.NoEntry, fmt.Errorf("flower: no reachable gateway on follower process"))
			}
			return
		}
		// No ring to join: found a new one. This only happens when every
		// registered directory is dead — the ring is gone.
		p.becomeFoundingDirectory(pos)
		if done != nil {
			done(chord.NoEntry, nil)
		}
		return
	}
	node, err := chord.NewNode(p.sys.cfg.Chord, p.sys.net, p.rng.Split("chord"), p, p.nid, pos)
	if err != nil {
		panic(err)
	}
	p.chordNode = node
	node.JoinAt(gw, func(current chord.Entry, err error) {
		if p.dead {
			return
		}
		if err != nil {
			// Not ours: discard the unstarted chord component.
			p.chordNode.Stop()
			p.chordNode = nil
			if done != nil {
				done(current, err)
			}
			return
		}
		p.becomeDirectory(pos)
		if done != nil {
			done(chord.NoEntry, nil)
		}
	})
}

// becomeDirectory installs the directory role once the peer holds pos.
func (p *Peer) becomeDirectory(pos ids.ID) {
	wasContent := p.role == RoleContent
	p.role = RoleDirectory
	p.dir = &directoryState{
		pos:      pos,
		instance: dring.InstanceOf(pos),
		index:    make(map[content.Key][]runtime.NodeID),
		members:  make(map[runtime.NodeID]*memberInfo),
	}
	// Keep the content summaries gathered while a content peer; they
	// answer queries until pushes rebuild the index (Sec. 5.2.2: "p can
	// try to answer first received queries from its content summaries").
	if wasContent {
		for _, e := range p.gsp.View() {
			if meta, ok := e.Meta.(ContactMeta); ok && meta.Summary != nil {
				p.dir.oldSummaries = append(p.dir.oldSummaries, e)
				_ = meta
			}
		}
		p.dir.summaryDeadline = p.eng().Now() + 2*p.sys.cfg.KeepaliveInterval
	}
	// Directories answer to themselves.
	p.dirInfo = DirInfo{Pos: pos, Node: p.nid, Age: 0}
	// The member keepalive loop is replaced by the directory sweep.
	if p.keepaliveTimer != nil {
		p.keepaliveTimer.Cancel()
		p.keepaliveTimer = nil
	}
	p.dir.sweep = p.eng().Every(p.sys.cfg.KeepaliveInterval, p.sys.cfg.KeepaliveInterval, p.directorySweep)
	// Audit soon after integration — duplicate-position races surface
	// within a stabilization period or two — and keep auditing: one
	// cheap lookup per AuditInterval keeps the one-directory-per-
	// position invariant self-healing under heavy ring churn.
	p.eng().Schedule(3*p.sys.cfg.Chord.StabilizeInterval, p.auditPosition)
	p.dir.audit = p.eng().Every(p.sys.cfg.AuditInterval, p.sys.cfg.AuditInterval, p.auditPosition)
	// A directory is still a petal member: keep gossiping so its own
	// summary and (self-pointing) dir-info spread.
	p.gsp.Start()
	p.sys.registerDirectory(chord.Entry{Node: p.nid, ID: pos})
	// Directory peers of active websites query like any other peer.
	p.ensureQueryLoop()
}

// memberTTL is how long a silent member stays in the view/index.
func (p *Peer) memberTTL() int64 {
	return int64(p.sys.cfg.MemberTTLFactor * float64(p.sys.cfg.KeepaliveInterval))
}

// directorySweep expires members that stopped sending keepalives
// (Sec. 5.1: the directory "can discover and remove expired pointers
// from its view and directory-index") and audits ring ownership.
func (p *Peer) directorySweep() {
	if p.dead || p.dir == nil {
		return
	}
	cutoff := p.eng().Now() - p.memberTTL()
	for nid, m := range p.dir.members {
		if m.lastSeen < cutoff {
			p.removeMember(nid)
		}
	}
	if p.dir.oldSummaries != nil && p.eng().Now() > p.dir.summaryDeadline {
		p.dir.oldSummaries = nil
	}
	p.auditPosition()
}

// auditPosition asks a third-party ring member who owns our position.
// Claim serialization can transiently double-grant while the ring heals
// (rival lookups resolving to different arc owners); whichever
// duplicate the converged ring does NOT route to demotes itself back to
// a content peer, restoring the one-directory-per-position invariant.
func (p *Peer) auditPosition() {
	if p.dead || p.dir == nil {
		return
	}
	gw := p.sys.gateway(p.nid)
	if !gw.Valid() {
		return
	}
	if p.chordClient == nil {
		cl, err := chord.NewClient(p.sys.cfg.Chord, p.sys.net, p.nid)
		if err != nil {
			panic(err)
		}
		p.chordClient = cl
	}
	pos := p.dir.pos
	p.chordClient.LookupVia(gw, pos, func(owner chord.Entry, _ int, err error) {
		if p.dead || p.dir == nil || p.dir.pos != pos || err != nil {
			return
		}
		if owner.Node == p.nid {
			return // the ring routes to us: all good
		}
		if owner.ID == pos {
			// A rival holds the position and the ring routes to it.
			p.demoteToContentPeer(owner)
			return
		}
		// The ring routes around us entirely (the arc owner doesn't know
		// us): volunteer as its predecessor to restore visibility.
		p.chordNode.Announce(owner)
	})
}

// demoteToContentPeer resolves a duplicate-position race: this peer
// yields the directory role to the peer the ring actually routes to.
func (p *Peer) demoteToContentPeer(winner chord.Entry) {
	if p.dir == nil {
		return
	}
	p.chordNode.Stop()
	p.chordNode = nil
	if p.dir.sweep != nil {
		p.dir.sweep.Cancel()
	}
	if p.dir.audit != nil {
		p.dir.audit.Cancel()
	}
	p.dir = nil
	p.role = RoleContent
	p.sys.demotions++
	p.sys.unregisterDirectory(p.nid)
	p.dirInfo = DirInfo{Pos: winner.ID, Node: winner.Node, Age: 0}
	p.syncedDir = runtime.None
	p.startKeepalive()
	p.maybePush()
}

func (p *Peer) removeMember(nid runtime.NodeID) {
	m, ok := p.dir.members[nid]
	if !ok {
		return
	}
	delete(p.dir.members, nid)
	for k := range m.keys {
		p.dir.removeProvider(k, nid)
	}
}

// admitMember records (or refreshes) a content peer in the view.
func (p *Peer) admitMember(nid runtime.NodeID) *memberInfo {
	m, ok := p.dir.members[nid]
	if !ok {
		m = &memberInfo{keys: make(map[content.Key]struct{})}
		p.dir.members[nid] = m
	}
	m.lastSeen = p.eng().Now()
	return m
}

// ---- RPC handlers (directory side) ----

var errNotDirectory = fmt.Errorf("flower: not a directory peer")

func (p *Peer) onKeepalive(from runtime.NodeID, _ keepaliveReq) (any, error) {
	if p.dir == nil {
		return nil, errNotDirectory
	}
	p.admitMember(from)
	return keepaliveResp{}, nil
}

func (p *Peer) onPush(from runtime.NodeID, r pushReq) (any, error) {
	if p.dir == nil {
		return nil, errNotDirectory
	}
	m := p.admitMember(from)
	for _, k := range r.Keys {
		m.keys[k] = struct{}{}
		p.dir.addProvider(k, from)
	}
	return pushResp{}, nil
}

func (p *Peer) onMemberQuery(from runtime.NodeID, r dirQueryReq) (any, error) {
	if p.dir == nil {
		return nil, errNotDirectory
	}
	if !r.Foreign {
		p.admitMember(from)
	}
	p.dir.queriesHandled++
	providers, fromSummary := p.dir.lookupProviders(p, r.Key, from)
	// The directory itself may cache the object.
	if p.store.Has(r.Key) && from != p.nid && len(providers) < p.sys.cfg.ProviderAttempts+1 {
		providers = append(providers, p.nid)
	}
	reply := dirQueryReply{Providers: providers, FromSummary: fromSummary}
	if len(providers) == 0 && !r.Foreign {
		reply.CollabWith = p.collabSiblings()
	}
	return reply, nil
}

// collabSiblings returns same-website directory peers drawn from this
// node's ring neighbourhood. D-ring's key layout makes all of a
// website's directory positions successive identifiers, so the
// successor list and predecessor are exactly where siblings live — no
// extra lookups needed. Collaboration effectively widens a query's
// reach from one petal to the website's whole set of petals, which is
// what lets hit ratios grow with scale (Sec. 6.2.2).
func (p *Peer) collabSiblings() []chord.Entry {
	if !p.sys.cfg.DirCollaboration || p.chordNode == nil {
		return nil
	}
	const maxSiblings = 5 // at most k-1 other localities matter
	var out []chord.Entry
	seen := map[runtime.NodeID]bool{p.nid: true}
	consider := func(e chord.Entry) {
		if len(out) >= maxSiblings || !e.Valid() || seen[e.Node] {
			return
		}
		if dring.SameSite(e.ID, p.site) {
			out = append(out, e)
			seen[e.Node] = true
		}
	}
	for _, e := range p.chordNode.SuccessorList() {
		consider(e)
	}
	consider(p.chordNode.Predecessor())
	return out
}

// lookupProviders resolves a key to candidate content peers: the
// directory-index first, then (within the trust window) the promoted
// peer's old content summaries. Providers are ordered by latency to the
// asking client — the locality-aware server selection that keeps
// transfer distances short. The asker itself is never returned.
func (d *directoryState) lookupProviders(p *Peer, key content.Key, asker runtime.NodeID) (providers []runtime.NodeID, fromSummary bool) {
	for _, nid := range d.index[key] {
		if nid != asker {
			providers = append(providers, nid)
		}
	}
	if len(providers) == 0 && d.oldSummaries != nil {
		for _, e := range d.oldSummaries {
			meta, ok := e.Meta.(ContactMeta)
			if !ok || meta.Summary == nil || e.Peer == asker {
				continue
			}
			if meta.Summary.Contains(key.Uint64()) {
				providers = append(providers, e.Peer)
			}
		}
		fromSummary = len(providers) > 0
	}
	sort.Slice(providers, func(i, j int) bool {
		li, lj := p.net().Latency(asker, providers[i]), p.net().Latency(asker, providers[j])
		if li != lj {
			return li < lj
		}
		return providers[i] < providers[j]
	})
	max := p.sys.cfg.ProviderAttempts + 1
	if len(providers) > max {
		providers = providers[:max]
	}
	return providers, fromSummary
}

// viewSeed samples member contacts for a joining client's initial view,
// with exact-set summaries built from pushed keys (Sec. 4: a directory
// "provides them with a subset of its old view so that they initialize
// their view of the petal").
func (p *Peer) viewSeed(exclude runtime.NodeID) []gossip.Entry {
	const seedSize = 8
	var nids []runtime.NodeID
	for nid := range p.dir.members {
		if nid != exclude {
			nids = append(nids, nid)
		}
	}
	sort.Slice(nids, func(i, j int) bool { return nids[i] < nids[j] })
	p.rng.Shuffle(len(nids), func(i, j int) { nids[i], nids[j] = nids[j], nids[i] })
	if len(nids) > seedSize {
		nids = nids[:seedSize]
	}
	seed := make([]gossip.Entry, 0, len(nids)+len(p.dir.oldSummaries)+1)
	// The directory itself is a petal member with cached content; seeding
	// it keeps the directory inside the gossip mesh.
	if p.nid != exclude {
		seed = append(seed, gossip.Entry{Peer: p.nid, Meta: p.selfMeta()})
	}
	for _, nid := range nids {
		seed = append(seed, gossip.Entry{
			Peer: nid,
			Meta: ContactMeta{
				Summary: exactSummary(p.dir.members[nid].keys),
				Dir:     p.dirInfo,
			},
		})
	}
	// A fresh PetalUp instance has no members yet: hand out its old view
	// so first clients can reach content peers managed by other
	// instances (Sec. 4's seeding of first clients).
	if len(seed) < seedSize {
		for _, e := range p.dir.oldSummaries {
			if len(seed) >= seedSize {
				break
			}
			if e.Peer != exclude {
				seed = append(seed, e)
			}
		}
	}
	return seed
}

// ---- client query processing ----

// OnRouted implements chord.App: a clientQueryMsg routed over D-ring
// lands here, at the node owning the queried position's arc.
func (p *Peer) OnRouted(key ids.ID, payload any, origin runtime.NodeID, hops int, path []trace.Hop) {
	m, ok := payload.(clientQueryMsg)
	if !ok || p.dead {
		return
	}
	// Hop accounting at the directory: the D-ring forwardings this
	// query took, surfaced as the run's mean-hops stat. The tracer keeps
	// the same tally so traces and counters can be cross-checked.
	now := p.eng().Now()
	p.sys.coll.Emit(metrics.CounterEvent(now, "lookup_hops", float64(hops)))
	p.sys.coll.Emit(metrics.CounterEvent(now, "routed_queries", 1))
	p.sys.tracer.Delivered(hops)
	p.handleClientQuery(key, m, path)
}

// onDirectClientQuery serves a clientQueryMsg that arrived as a plain
// message (scan forward or post-claim direct query) rather than through
// ring routing. A recipient that no longer serves the petal redirects
// the client back to D-ring discovery via a vacancy signal.
func (p *Peer) onDirectClientQuery(m clientQueryMsg) {
	if p.dir != nil && dring.SamePetal(p.dir.pos, m.Site, m.Loc) {
		p.handleClientQuery(p.dir.pos, m, m.Path)
		return
	}
	p.net().Send(p.nid, m.Client, vacantResp{Seq: m.Seq, Pos: dringPosition(m.Site, m.Loc, 0)})
}

// handleClientQuery serves a routed or directly-sent client query.
// path is the traced hop segment accumulated since the client issued
// the query (ring forwardings, earlier scan hops); nil when tracing is
// off or the message arrived by direct send.
func (p *Peer) handleClientQuery(routedKey ids.ID, m clientQueryMsg, path []trace.Hop) {
	if p.dir == nil || p.dir.pos != routedKey {
		// We merely cover the arc containing the position: it is vacant
		// (Sec. 5.2.2 join case 2 trigger).
		p.net().Send(p.nid, m.Client, vacantResp{Seq: m.Seq, Pos: routedKey})
		return
	}
	// PetalUp sequential scan (Sec. 4): an overloaded instance passes
	// the query along to d^{i+1}; the final instance absorbs it and, if
	// itself overloaded, recruits a new instance.
	if p.overloaded() {
		next := dringPosition(m.Site, m.Loc, p.dir.instance+1)
		succ := p.chordNode.Successor()
		if succ.Valid() && succ.ID == next && m.Scanned < dring.MaxInstances {
			m.Scanned++
			p.dir.queriesScanned++
			if p.sys.tracer.Enabled() {
				m.Path = trace.Append(path, trace.Hop{
					Kind: trace.HopScan, Node: succ.Node,
					Loc: p.net().Locality(succ.Node), At: p.eng().Now(),
				})
			}
			p.net().Send(p.nid, succ.Node, m)
			return
		}
		p.maybePromoteInstance(next)
	}
	p.dir.queriesHandled++
	p.admitMember(m.Client)
	resp := dirQueryResp{
		Seq:  m.Seq,
		Dir:  chord.Entry{Node: p.nid, ID: p.dir.pos},
		Seed: p.viewSeed(m.Client),
	}
	if !m.JoinOnly {
		resp.Providers, resp.FromSummary = p.dir.lookupProviders(p, m.Key, m.Client)
		// The directory itself may cache the object (it is a content
		// peer too): offer ourselves last.
		if p.store.Has(m.Key) && len(resp.Providers) < p.sys.cfg.ProviderAttempts+1 {
			resp.Providers = append(resp.Providers, p.nid)
		}
		if len(resp.Providers) == 0 {
			resp.CollabWith = p.collabSiblings()
		}
	}
	if p.sys.tracer.Enabled() {
		resp.Path = trace.Append(path, trace.Hop{
			Kind: trace.HopHome, Node: p.nid,
			Loc: p.net().Locality(p.nid), At: p.eng().Now(),
		})
	}
	p.net().Send(p.nid, m.Client, resp)
}

// overloaded applies PetalUp's load rule; classic Flower-CDN
// (DirLoadLimit == 0) is never overloaded.
func (p *Peer) overloaded() bool {
	return p.sys.cfg.DirLoadLimit > 0 && len(p.dir.members) >= p.sys.cfg.DirLoadLimit
}

// maybePromoteInstance recruits a content peer from the view as the
// next directory instance, at most one attempt at a time.
func (p *Peer) maybePromoteInstance(pos ids.ID) {
	d := p.dir
	now := p.eng().Now()
	if d.pendingPromotionPos == pos && now < d.pendingPromotionExp {
		return
	}
	if dring.InstanceOf(pos) >= dring.MaxInstances-1 {
		return
	}
	// Pick the most recently seen member: likeliest to be alive. Ties
	// (same millisecond) break by NodeID so the choice never depends on
	// map-iteration order.
	var best runtime.NodeID = runtime.None
	var bestSeen int64 = -1
	for nid, m := range d.members {
		if m.lastSeen > bestSeen || (m.lastSeen == bestSeen && nid < best) {
			best, bestSeen = nid, m.lastSeen
		}
	}
	if best == runtime.None {
		return
	}
	d.pendingPromotionPos = pos
	d.pendingPromotionExp = now + p.sys.cfg.Chord.ClaimTTL
	p.net().Send(p.nid, best, promoteMsg{Pos: pos})
}

// onPromote runs at the content peer chosen to become d^{i+1}.
func (p *Peer) onPromote(m promoteMsg) {
	if p.dead || p.role != RoleContent {
		return
	}
	oldDir := p.dirInfo.Node
	p.claimDirectoryPosition(m.Pos, runtime.None, func(current chord.Entry, err error) {
		if p.dead {
			return
		}
		if err != nil {
			return // somebody else got it, or the ring misbehaved; stay a content peer
		}
		p.sys.dirPromotions++
		// Tell the old directory so it removes us from its index
		// (Sec. 4: "the replacing content peer is then removed from the
		// directory-index of d^i").
		if oldDir != runtime.None {
			p.net().Send(p.nid, oldDir, promotedMsg{NewDir: p.selfEntry()})
		}
	})
}

// onPromoted runs at the old directory when its promotee integrated.
func (p *Peer) onPromoted(from runtime.NodeID, m promotedMsg) {
	if p.dir == nil {
		return
	}
	p.removeMember(from)
	if p.dir.pendingPromotionPos == m.NewDir.ID {
		p.dir.pendingPromotionExp = 0
	}
}

// Leave performs a graceful departure (Sec. 5.2.2's voluntary-leave
// path): a directory hands its view and index to a member before going;
// any peer then leaves the network. The evaluation's churn never calls
// this — peers always fail — but the protocol supports it.
func (p *Peer) Leave() {
	if p.dead {
		return
	}
	if p.dir != nil {
		var best runtime.NodeID = runtime.None
		var bestSeen int64 = -1
		for nid, m := range p.dir.members {
			if m.lastSeen > bestSeen || (m.lastSeen == bestSeen && nid < best) {
				best, bestSeen = nid, m.lastSeen
			}
		}
		if best != runtime.None {
			h := handoffMsg{Pos: p.dir.pos, Index: make(map[content.Key][]runtime.NodeID, len(p.dir.index))}
			for k, ps := range p.dir.index {
				h.Index[k] = append([]runtime.NodeID(nil), ps...) // already sorted
			}
			for nid := range p.dir.members {
				h.Members = append(h.Members, nid)
			}
			sort.Slice(h.Members, func(i, j int) bool { return h.Members[i] < h.Members[j] })
			p.net().Send(p.nid, best, h)
		}
	}
	p.kill()
}

// onHandoff runs at the member receiving a leaving directory's state:
// it claims the position and, on success, seeds its directory state
// with the transferred copy.
func (p *Peer) onHandoff(m handoffMsg) {
	if p.dead || p.role != RoleContent {
		return
	}
	index := m.Index
	members := m.Members
	p.claimDirectoryPosition(m.Pos, runtime.None, func(current chord.Entry, err error) {
		if p.dead || err != nil {
			return
		}
		p.sys.dirReplacement++
		now := p.eng().Now()
		for _, nid := range members {
			if nid == p.nid {
				continue
			}
			p.dir.members[nid] = &memberInfo{lastSeen: now, keys: make(map[content.Key]struct{})}
		}
		for k, ps := range index {
			for _, nid := range ps {
				if nid == p.nid {
					continue
				}
				p.dir.addProvider(k, nid)
				if mi, ok := p.dir.members[nid]; ok {
					mi.keys[k] = struct{}{}
				}
			}
		}
	})
}
