package dring

import (
	"testing"
	"testing/quick"

	"flowercdn/internal/content"
	"flowercdn/internal/ids"
	"flowercdn/internal/topology"
)

func TestRoundTripFields(t *testing.T) {
	f := func(site uint16, loc uint8, inst uint8) bool {
		s := content.SiteID(site % 1000)
		l := topology.Locality(int(loc) % MaxLocalities)
		i := int(inst) % MaxInstances
		id := Position(s, l, i)
		return LocalityOf(id) == l && InstanceOf(id) == i && SamePetal(id, s, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInstancesAreSuccessiveIDs(t *testing.T) {
	// PetalUp instances d^0..d^k must be consecutive ring identifiers.
	base := Position(7, 3, 0)
	for i := 1; i < 10; i++ {
		if Position(7, 3, i) != base.Add(uint64(i)) {
			t.Fatalf("instance %d not successive to base", i)
		}
	}
}

func TestLocalitiesOfOneSiteAreNeighbors(t *testing.T) {
	// All directory peers of one website share the 48-bit prefix, so
	// they form one contiguous ring segment.
	p0 := Position(12, 0, 0)
	for loc := topology.Locality(0); loc < 6; loc++ {
		id := Position(12, loc, 0)
		if SitePrefix(id) != SitePrefix(p0) {
			t.Fatalf("locality %d escaped the site segment", loc)
		}
		if !SameSite(id, 12) {
			t.Fatalf("SameSite false for own site at loc %d", loc)
		}
		if SameSite(id, 13) {
			t.Fatal("SameSite true for a different site")
		}
	}
}

func TestDifferentSitesScatter(t *testing.T) {
	// Site prefixes should be distinct (hash scatter) for a realistic
	// catalog size.
	seen := map[uint64]content.SiteID{}
	for s := content.SiteID(0); s < 500; s++ {
		p := SitePrefix(Position(s, 0, 0))
		if prev, dup := seen[p]; dup {
			t.Fatalf("sites %d and %d share a 48-bit prefix", prev, s)
		}
		seen[p] = s
	}
}

func TestSamePetalRejectsOtherPetals(t *testing.T) {
	id := Position(5, 2, 1)
	if SamePetal(id, 5, 3) {
		t.Fatal("matched wrong locality")
	}
	if SamePetal(id, 6, 2) {
		t.Fatal("matched wrong site")
	}
	// An arbitrary hash-ID almost surely matches no petal.
	random := ids.HashString("random-node")
	if SamePetal(random, 5, LocalityOf(random)) {
		t.Fatal("random id matched a petal")
	}
}

func TestPositionPanicsOutOfRange(t *testing.T) {
	for name, fn := range map[string]func(){
		"neg loc":  func() { Position(1, -1, 0) },
		"big loc":  func() { Position(1, MaxLocalities, 0) },
		"neg inst": func() { Position(1, 0, -1) },
		"big inst": func() { Position(1, 0, MaxInstances) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
