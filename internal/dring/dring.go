// Package dring implements D-ring's novel key-management service
// (paper Sec. 3.2): the deterministic assignment of ring positions to
// directory peers based on website and locality rather than uniform
// hashing.
//
// A position packs three fields into the 64-bit identifier:
//
//	[ 48-bit site prefix | 8-bit locality | 8-bit instance ]
//
// The site prefix is a hash of the website, so different websites
// scatter uniformly around the ring; the low 16 bits make all
// directory peers of one website — and all PetalUp instances of one
// (website, locality) — *successive* ring identifiers, which is exactly
// the neighborship property the paper relies on ("directory peers for
// the same website have successive peer IDs and are neighbors on
// D-ring"; PetalUp instances "have successive D-ring IDs").
//
// With 8 instance bits, up to 2^m = 256 instances d^i share one petal's
// directory load (the paper allows 2^m instances for a configurable m).
package dring

import (
	"fmt"

	"flowercdn/internal/content"
	"flowercdn/internal/ids"
	"flowercdn/internal/topology"
)

const (
	// InstanceBits is m: up to 2^m directory instances per (site, loc).
	InstanceBits = 8
	// MaxInstances is 2^m.
	MaxInstances = 1 << InstanceBits
	// LocalityBits bounds the number of localities the layout supports.
	LocalityBits   = 8
	MaxLocalities  = 1 << LocalityBits
	lowBits        = InstanceBits + LocalityBits
	instanceMask   = MaxInstances - 1
	localityMask   = (MaxLocalities - 1) << InstanceBits
	sitePrefixMask = ^(uint64(1)<<lowBits - 1)
)

// Position returns the D-ring identifier of directory peer d^instance
// for (site, loc).
func Position(site content.SiteID, loc topology.Locality, instance int) ids.ID {
	if int(loc) < 0 || int(loc) >= MaxLocalities {
		panic(fmt.Sprintf("dring: locality %d out of range", loc))
	}
	if instance < 0 || instance >= MaxInstances {
		panic(fmt.Sprintf("dring: instance %d out of range", instance))
	}
	prefix := uint64(ids.Hash2(uint64(site), 0x5eed)) & sitePrefixMask
	return ids.ID(prefix | uint64(loc)<<InstanceBits | uint64(instance))
}

// SitePrefix returns the 48-bit site prefix of an identifier (shifted
// into the high bits, low bits zero).
func SitePrefix(id ids.ID) uint64 { return uint64(id) & sitePrefixMask }

// LocalityOf extracts the locality field.
func LocalityOf(id ids.ID) topology.Locality {
	return topology.Locality((uint64(id) & localityMask) >> InstanceBits)
}

// InstanceOf extracts the instance field.
func InstanceOf(id ids.ID) int { return int(uint64(id) & instanceMask) }

// SamePetal reports whether id is a directory position (any instance)
// of the petal (site, loc).
func SamePetal(id ids.ID, site content.SiteID, loc topology.Locality) bool {
	return id == Position(site, loc, InstanceOf(id)) && LocalityOf(id) == loc
}

// SameSite reports whether id belongs to site (any locality/instance).
func SameSite(id ids.ID, site content.SiteID) bool {
	return SitePrefix(id) == SitePrefix(Position(site, 0, 0))
}
