package dring

import (
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/topology"
)

// FuzzPositionRoundTrip checks the bit-packing contract over the whole
// input space: every (site, locality, instance) triple must pack into
// an identifier whose fields extract back exactly, and the successive-
// IDs property the paper's neighborship argument rests on must hold
// for every adjacent instance pair.
func FuzzPositionRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint8(0), uint8(0))
	f.Add(uint32(1), uint8(3), uint8(200))
	f.Add(uint32(1<<31-1), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, rawSite uint32, rawLoc, rawInst uint8) {
		site := content.SiteID(rawSite % (1 << 31)) // SiteID is int32; keep it non-negative
		loc := topology.Locality(rawLoc)
		inst := int(rawInst)

		id := Position(site, loc, inst)
		if got := LocalityOf(id); got != loc {
			t.Fatalf("Position(%d,%d,%d): LocalityOf = %d", site, loc, inst, got)
		}
		if got := InstanceOf(id); got != inst {
			t.Fatalf("Position(%d,%d,%d): InstanceOf = %d", site, loc, inst, got)
		}
		if !SamePetal(id, site, loc) {
			t.Fatalf("Position(%d,%d,%d) not in its own petal", site, loc, inst)
		}
		if !SameSite(id, site) {
			t.Fatalf("Position(%d,%d,%d) not in its own site", site, loc, inst)
		}
		// The site prefix ignores locality and instance entirely.
		if SitePrefix(id) != SitePrefix(Position(site, 0, 0)) {
			t.Fatalf("site prefix varies with (loc,inst) for site %d", site)
		}
		// Successive instances are successive identifiers — the
		// neighborship property (paper Sec. 3.2).
		if inst+1 < MaxInstances {
			if next := Position(site, loc, inst+1); uint64(next) != uint64(id)+1 {
				t.Fatalf("instances not successive: %#x then %#x", uint64(id), uint64(next))
			}
		}
	})
}
