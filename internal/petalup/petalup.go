// Package petalup packages the PetalUp-CDN configuration (paper
// Sec. 4) and its dedicated experiment: PetalUp is Flower-CDN with the
// per-directory load limit enabled, so that a petal's directory role
// splits across successive D-ring instances d^0, d^1, ... as the petal
// grows. The mechanism itself lives in internal/flower (the scan,
// promotion and old-view seeding paths are shared protocol code); this
// package provides the preset, the flash-crowd workload that stresses
// it, and the load-bounding measurements DESIGN.md's extension
// experiment reports.
package petalup

import (
	"errors"
	"flowercdn/internal/runtime"
	"fmt"

	"flowercdn/internal/content"
	"flowercdn/internal/flower"
	"flowercdn/internal/topology"
)

// DefaultLoadLimit is the per-instance view limit used by the preset.
// The paper's petals "never surpass 30" members at the simulated
// scales, so a limit of 25 forces splitting to be observable.
const DefaultLoadLimit = 25

// Config returns a Flower-CDN configuration with PetalUp splitting
// enabled at the given load limit (content peers per directory view,
// the load measure of Sec. 4).
func Config(loadLimit int) flower.Config {
	cfg := flower.DefaultConfig()
	if loadLimit <= 0 {
		loadLimit = DefaultLoadLimit
	}
	cfg.DirLoadLimit = loadLimit
	return cfg
}

// FlashCrowdSpec describes the stress workload: Arrivals clients for
// one (site, locality) joining at ArrivalGap intervals — the flash
// crowd a suddenly popular website attracts.
type FlashCrowdSpec struct {
	Site       content.SiteID
	Loc        topology.Locality
	Arrivals   int
	ArrivalGap int64
	// Settle is how long to run after the last arrival.
	Settle int64
}

// DefaultFlashCrowd returns a crowd that overwhelms a single directory
// several times over.
func DefaultFlashCrowd() FlashCrowdSpec {
	return FlashCrowdSpec{
		Site:       0,
		Loc:        0,
		Arrivals:   120,
		ArrivalGap: 20 * runtime.Second,
		Settle:     2 * runtime.Hour,
	}
}

// Validate checks the spec.
func (s FlashCrowdSpec) Validate() error {
	if s.Arrivals < 1 {
		return errors.New("petalup: need at least one arrival")
	}
	if s.ArrivalGap < 0 || s.Settle < 0 {
		return errors.New("petalup: negative durations")
	}
	return nil
}

// LoadReport captures the directory-load outcome of a flash crowd.
type LoadReport struct {
	// Instances is the number of alive directory instances serving the
	// petal at measurement time.
	Instances int
	// MaxMembers is the largest per-instance view.
	MaxMembers int
	// TotalMembers sums members over instances.
	TotalMembers int
	// Promotions counts d^{i+1} recruitments system-wide.
	Promotions uint64
}

func (r LoadReport) String() string {
	return fmt.Sprintf("instances=%d maxMembers=%d totalMembers=%d promotions=%d",
		r.Instances, r.MaxMembers, r.TotalMembers, r.Promotions)
}

// Measure inspects the directory instances of one petal.
func Measure(sys *flower.System, site content.SiteID, loc topology.Locality) LoadReport {
	rep := LoadReport{Promotions: sys.Stats().DirPromotions}
	for _, p := range sys.PetalDirectories(site, loc) {
		rep.Instances++
		m := p.Directory().MemberCount()
		rep.TotalMembers += m
		if m > rep.MaxMembers {
			rep.MaxMembers = m
		}
	}
	return rep
}

// RunFlashCrowd drives the spec against an existing Flower/PetalUp
// system: it schedules the arrivals on the runtime's clock starting
// now, runs the backend through the settle period, and measures the
// petal's directory load. Every spawned client receives an infinite
// lifetime — the point is load, not churn.
func RunFlashCrowd(sys *flower.System, rt runtime.Runtime, spec FlashCrowdSpec) (LoadReport, error) {
	if err := spec.Validate(); err != nil {
		return LoadReport{}, err
	}
	clock := rt.Clock()
	for i := 0; i < spec.Arrivals; i++ {
		at := int64(i) * spec.ArrivalGap
		clock.Schedule(at, func() {
			sys.SpawnClientAt(spec.Site, spec.Loc)
		})
	}
	rt.Run(clock.Now() + int64(spec.Arrivals)*spec.ArrivalGap + spec.Settle)
	return Measure(sys, spec.Site, spec.Loc), nil
}
