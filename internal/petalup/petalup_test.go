package petalup

import (
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/simrt"
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/flower"
	"flowercdn/internal/metrics"
	"flowercdn/internal/topology"
	"flowercdn/internal/workload"
)

type world struct {
	*simrt.Runtime
	net runtime.Transport
	sys *flower.System
}

func buildWorld(t *testing.T, seed uint64, cfg flower.Config) *world {
	t.Helper()
	rng := rnd.New(seed)
	tcfg := topology.DefaultConfig()
	tcfg.Localities = 2
	topo := topology.MustNew(tcfg, rng.Split("topo"))
	eng := simrt.New(topo)
	net := eng.Net()
	wcfg := workload.DefaultConfig()
	wcfg.Sites = 2
	wcfg.ObjectsPerSite = 100
	wcfg.ActiveSites = 1
	wcfg.QueryMeanInterval = 2 * runtime.Minute
	work, err := workload.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	origins := workload.NewOrigins(work, net, rng.Split("origins"))
	coll := metrics.NewCollector(runtime.Hour)
	cfg.Gossip.Period = 5 * runtime.Minute
	cfg.KeepaliveInterval = 10 * runtime.Minute
	sys, err := flower.NewSystem(cfg, flower.Deps{
		Net: net, RNG: rng.Split("flower"), Workload: work, Origins: origins, Metrics: coll,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the D-ring.
	for s := 0; s < wcfg.Sites; s++ {
		for l := 0; l < tcfg.Localities; l++ {
			site, loc := content.SiteID(s), topology.Locality(l)
			eng.Schedule(int64(s*tcfg.Localities+l)*200, func() {
				sys.SpawnSeedDirectory(site, loc)
			})
		}
	}
	eng.Run(eng.Now() + 10*runtime.Minute)
	return &world{Runtime: eng, net: net, sys: sys}
}

func TestConfigPreset(t *testing.T) {
	cfg := Config(10)
	if cfg.DirLoadLimit != 10 {
		t.Fatalf("DirLoadLimit = %d, want 10", cfg.DirLoadLimit)
	}
	if Config(0).DirLoadLimit != DefaultLoadLimit {
		t.Fatal("zero limit should take the default")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidation(t *testing.T) {
	if err := DefaultFlashCrowd().Validate(); err != nil {
		t.Fatal(err)
	}
	if (FlashCrowdSpec{Arrivals: 0}).Validate() == nil {
		t.Fatal("zero arrivals accepted")
	}
	if (FlashCrowdSpec{Arrivals: 1, ArrivalGap: -1}).Validate() == nil {
		t.Fatal("negative gap accepted")
	}
	w := buildWorld(t, 99, Config(5))
	if _, err := RunFlashCrowd(w.sys, w, FlashCrowdSpec{Arrivals: 0}); err == nil {
		t.Fatal("RunFlashCrowd accepted invalid spec")
	}
}

func TestFlashCrowdSplitsDirectory(t *testing.T) {
	w := buildWorld(t, 1, Config(5))
	spec := FlashCrowdSpec{
		Site: 0, Loc: 0,
		Arrivals:   30,
		ArrivalGap: 30 * runtime.Second,
		Settle:     1 * runtime.Hour,
	}
	rep, err := RunFlashCrowd(w.sys, w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances < 2 {
		t.Fatalf("flash crowd did not split the directory: %s", rep)
	}
	if rep.Promotions == 0 {
		t.Fatalf("no promotions recorded: %s", rep)
	}
	if rep.TotalMembers == 0 {
		t.Fatalf("no members tracked: %s", rep)
	}
}

func TestClassicFlowerDoesNotSplit(t *testing.T) {
	w := buildWorld(t, 2, flower.DefaultConfig()) // DirLoadLimit = 0
	spec := FlashCrowdSpec{
		Site: 0, Loc: 0,
		Arrivals:   30,
		ArrivalGap: 30 * runtime.Second,
		Settle:     1 * runtime.Hour,
	}
	rep, err := RunFlashCrowd(w.sys, w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances != 1 {
		t.Fatalf("classic Flower grew %d instances, want 1", rep.Instances)
	}
	if rep.Promotions != 0 {
		t.Fatalf("classic Flower promoted instances: %s", rep)
	}
	// The single directory absorbs the whole crowd — the unbounded load
	// PetalUp exists to prevent.
	if rep.MaxMembers < 25 {
		t.Fatalf("single directory should hold most of the crowd, got %d", rep.MaxMembers)
	}
}

func TestPetalUpBoundsPerInstanceLoadBetterThanClassic(t *testing.T) {
	// Comparative claim of Sec. 4: with splitting, the max per-instance
	// view stays near the limit instead of growing with the crowd.
	limit := 6
	wUp := buildWorld(t, 3, Config(limit))
	spec := FlashCrowdSpec{Site: 0, Loc: 0, Arrivals: 40, ArrivalGap: 20 * runtime.Second, Settle: 90 * runtime.Minute}
	repUp, err := RunFlashCrowd(wUp.sys, wUp, spec)
	if err != nil {
		t.Fatal(err)
	}
	wCl := buildWorld(t, 3, flower.DefaultConfig())
	repCl, err := RunFlashCrowd(wCl.sys, wCl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if repUp.MaxMembers >= repCl.MaxMembers {
		t.Fatalf("PetalUp max load %d not below classic %d", repUp.MaxMembers, repCl.MaxMembers)
	}
}

func TestMeasureEmptyPetal(t *testing.T) {
	w := buildWorld(t, 4, Config(5))
	rep := Measure(w.sys, 1, 1) // petal with only its seed directory
	if rep.Instances != 1 {
		t.Fatalf("expected just the seed instance, got %d", rep.Instances)
	}
	if rep.MaxMembers != 0 || rep.TotalMembers != 0 {
		t.Fatalf("empty petal reports members: %s", rep)
	}
}
