package petalup

import (
	"flowercdn/internal/flower"
	"flowercdn/internal/proto"
)

// PetalUp-CDN registers itself with the protocol runtime. The driver
// is the flower driver with directory splitting enabled; its
// "load-limit" option (default flower.DefaultPetalUpLoadLimit) is the
// Sec. 4 per-directory member bound.
func init() {
	proto.Register(proto.Info{
		Name:         "petalup",
		Summary:      "PetalUp-CDN: Flower-CDN with per-directory load splitting (Sec. 4)",
		Compare:      true,
		Order:        1,
		CheckOptions: flower.CheckPetalUpDriverOptions,
	}, flower.NewPetalUpDriver)
}
